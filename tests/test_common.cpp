// Unit tests for the common utilities: config parsing, timers, RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace rsrpa {
namespace {

TEST(Config, ParsesArtifactStyleInput) {
  const std::string text =
      "N_NUCHI_EIGS: 768\n"
      "N_OMEGA: 8\n"
      "TOL_EIG: 4e-3 2e-3 5e-4 5e-4 5e-4 5e-4 5e-4 5e-4\n"
      "TOL_STERN_RES: 1e-2\n"
      "MAXIT_FILTERING: 10\n"
      "CHEB_DEGREE_RPA: 2\n"
      "FLAG_PQ_OPERATOR: 0\n"
      "FLAG_COCGINITIAL: 1\n";
  Config cfg = Config::parse(text);
  EXPECT_EQ(cfg.get_int("N_NUCHI_EIGS"), 768);
  EXPECT_EQ(cfg.get_int("N_OMEGA"), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("TOL_STERN_RES"), 1e-2);
  const auto tols = cfg.get_doubles("TOL_EIG");
  ASSERT_EQ(tols.size(), 8u);
  EXPECT_DOUBLE_EQ(tols[0], 4e-3);
  EXPECT_DOUBLE_EQ(tols[7], 5e-4);
  EXPECT_EQ(cfg.get_int("FLAG_COCGINITIAL"), 1);
}

TEST(Config, IgnoresCommentsAndBlankLines) {
  Config cfg = Config::parse("# header comment\n\nA: 1  # trailing\n   \nB: 2\n");
  EXPECT_EQ(cfg.get_int("A"), 1);
  EXPECT_EQ(cfg.get_int("B"), 2);
  EXPECT_EQ(cfg.keys().size(), 2u);
}

TEST(Config, MissingKeyThrows) {
  Config cfg = Config::parse("A: 1\n");
  EXPECT_THROW((void)cfg.get_int("B"), Error);
  EXPECT_EQ(cfg.get_int_or("B", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double_or("B", 2.5), 2.5);
}

TEST(Config, MalformedValueThrows) {
  Config cfg = Config::parse("A: xyz\n");
  EXPECT_THROW((void)cfg.get_int("A"), Error);
  EXPECT_THROW((void)cfg.get_double("A"), Error);
}

TEST(Config, RejectsTrailingGarbage) {
  // std::stoi("8 atoms") silently returns 8; the strict parser must not.
  Config cfg = Config::parse(
      "N_ATOMS: 8 atoms\n"
      "VERSION: 1.5.3\n"
      "TOL: 1e-3x\n"
      "COUNT: 12,\n"
      "HEX: 0x10\n"
      "FRACTION: 2.5\n");
  EXPECT_THROW((void)cfg.get_int("N_ATOMS"), Error);
  EXPECT_THROW((void)cfg.get_double("N_ATOMS"), Error);
  EXPECT_THROW((void)cfg.get_double("VERSION"), Error);
  EXPECT_THROW((void)cfg.get_double("TOL"), Error);
  EXPECT_THROW((void)cfg.get_int("COUNT"), Error);
  EXPECT_THROW((void)cfg.get_int("HEX"), Error);
  // An integer getter must not truncate a fractional value either.
  EXPECT_THROW((void)cfg.get_int("FRACTION"), Error);
}

TEST(Config, RejectsGarbageInNumberLists) {
  Config cfg = Config::parse("TOLS: 1e-3 2e-3x 5e-4\n");
  EXPECT_THROW((void)cfg.get_doubles("TOLS"), Error);
}

TEST(Config, AcceptsFullTokenNumbers) {
  Config cfg = Config::parse(
      "A: -42\n"
      "B: +17\n"
      "C: 2.5e-3\n"
      "D: +0.5\n"
      "E: -1e4\n");
  EXPECT_EQ(cfg.get_int("A"), -42);
  EXPECT_EQ(cfg.get_int("B"), 17);
  EXPECT_DOUBLE_EQ(cfg.get_double("C"), 2.5e-3);
  EXPECT_DOUBLE_EQ(cfg.get_double("D"), 0.5);
  EXPECT_DOUBLE_EQ(cfg.get_double("E"), -1e4);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("no colon here\n"), Error);
}

TEST(Config, SetOverridesValue) {
  Config cfg = Config::parse("A: 1\n");
  cfg.set("A", "5");
  EXPECT_EQ(cfg.get_int("A"), 5);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(KernelTimers, AccumulatesAndMerges) {
  KernelTimers a;
  a.add("matmult", 1.0);
  a.add("matmult", 0.5);
  a.add("eigensolve", 2.0);
  EXPECT_DOUBLE_EQ(a.get("matmult"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.5);

  KernelTimers b;
  b.add("matmult", 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("matmult"), 3.5);

  KernelTimers c;
  c.add("matmult", 1.0);
  c.merge_max(a);
  EXPECT_DOUBLE_EQ(c.get("matmult"), 3.5);
  EXPECT_DOUBLE_EQ(c.get("eigensolve"), 2.0);
}

TEST(KernelTimers, ScopedTimerAddsToBucket) {
  KernelTimers t;
  {
    ScopedKernelTimer scoped(t, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(t.get("work"), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, RademacherIsPlusMinusOne) {
  Rng rng(7);
  int plus = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.rademacher();
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    if (v == 1.0) ++plus;
  }
  // Both signs occur with roughly equal frequency.
  EXPECT_GT(plus, 350);
  EXPECT_LT(plus, 650);
}

TEST(Rng, NormalHasApproximatelyUnitVariance) {
  Rng rng(3);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Error, RequireMacroThrowsWithLocation) {
  try {
    RSRPA_REQUIRE_MSG(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
  }
}

TEST(Rng, DeriveIsDeterministicAndIndependentOfDrawHistory) {
  Rng a(42), b(42);
  // Perturb one parent's draw position: derivation must depend only on
  // (seed, stream), never on how many values the parent produced.
  for (int i = 0; i < 17; ++i) (void)b.uniform();
  Rng da = a.derive(3), db = b.derive(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(da.engine()(), db.engine()());
}

TEST(Rng, DerivedStreamsAreDecorrelated) {
  Rng parent(0x5eed);
  // Consecutive stream ids give unrelated sequences (splitmix64-mixed
  // seeds), and none collides with the parent's own stream.
  Rng s0 = parent.derive(0), s1 = parent.derive(1);
  int equal_01 = 0, equal_0p = 0;
  Rng fresh(0x5eed);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v0 = s0.engine()(), v1 = s1.engine()();
    if (v0 == v1) ++equal_01;
    if (v0 == fresh.engine()()) ++equal_0p;
  }
  EXPECT_EQ(equal_01, 0);
  EXPECT_EQ(equal_0p, 0);
}

TEST(Rng, DeriveByWorkItemIsScheduleIndependent) {
  // The threading contract: one derived stream per WORK ITEM fills the
  // same values regardless of the order the items are processed in.
  const Rng parent(99);
  std::vector<double> forward(8), backward(8);
  for (std::size_t j = 0; j < 8; ++j)
    forward[j] = parent.derive(j).uniform();
  for (std::size_t j = 8; j-- > 0;)
    backward[j] = parent.derive(j).uniform();
  EXPECT_EQ(forward, backward);
}

TEST(Timer, AtomicAddSecondsAccumulatesConcurrently) {
  std::atomic<double> bucket{0.0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&bucket] {
      for (int i = 0; i < 1000; ++i) atomic_add_seconds(bucket, 0.001);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_NEAR(bucket.load(), 4.0, 1e-9);
}

TEST(Rng, SaveLoadStateResumesTheExactSequence) {
  Rng a(123);
  for (int i = 0; i < 37; ++i) a.uniform();  // advance mid-stream
  const std::string state = a.save_state();
  Rng b = Rng::load_state(state);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SaveLoadStatePreservesTheDerivationSeed) {
  Rng a(99);
  for (int i = 0; i < 5; ++i) a.normal();
  Rng b = Rng::load_state(a.save_state());
  EXPECT_EQ(b.seed(), a.seed());
  // derive() keys on the constructor seed only, so derived streams agree
  // regardless of how far the engines have advanced.
  EXPECT_EQ(a.derive(7).uniform(), b.derive(7).uniform());
}

TEST(Rng, LoadStateRejectsMalformedInput) {
  EXPECT_THROW(Rng::load_state(""), Error);
  EXPECT_THROW(Rng::load_state("not a state"), Error);
}

TEST(Timer, WallClockChargesElapsedTimeToBucket) {
  std::atomic<double> bucket{0.0};
  {
    WallClock clock(bucket);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(bucket.load(), 0.005);
  {
    WallClock clock(bucket);  // scopes accumulate, not overwrite
  }
  EXPECT_GE(bucket.load(), 0.005);
}

}  // namespace
}  // namespace rsrpa
