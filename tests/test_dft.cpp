// Tests for the DFT substrate: CheFSI eigensolver, density, XC, SCF, and
// the KsSystem handoff (gap structure of the model silicon).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "dft/density.hpp"
#include "dft/ks_system.hpp"
#include "dft/mixing.hpp"
#include "dft/scf.hpp"
#include "dft/xc.hpp"
#include "la/blas.hpp"

namespace rsrpa::dft {
namespace {

using grid::Grid3D;
using ham::Crystal;
using ham::Hamiltonian;
using ham::ModelParams;

// Small shared fixture: an unperturbed Si8 cell on a coarse 11^3 grid.
std::shared_ptr<Hamiltonian> small_si8() {
  Rng rng(0);
  Crystal c = ham::make_silicon_chain(1, 0.0, rng);
  Grid3D g = Grid3D::cubic(11, ham::kSiLatticeConstant);
  return std::make_shared<Hamiltonian>(g, 4, std::move(c), ModelParams{});
}

TEST(Chefsi, ConvergesOnSmallSystem) {
  auto h = small_si8();
  Rng rng(7);
  ChefsiOptions opts;
  GroundState gs = solve_ground_state(*h, 8, opts, rng);
  EXPECT_TRUE(gs.converged);
  EXPECT_LE(gs.residual, opts.tol);
  // Eigenvalues ascending and below the upper bound.
  for (std::size_t j = 1; j < 8; ++j)
    EXPECT_LE(gs.eigenvalues[j - 1], gs.eigenvalues[j] + 1e-12);
  EXPECT_LT(gs.eigenvalues.back(), h->upper_bound());
  EXPECT_GT(gs.eigenvalues.front(), h->lower_bound());
}

TEST(Chefsi, EigenpairsSatisfyResidual) {
  auto h = small_si8();
  Rng rng(8);
  GroundState gs = solve_ground_state(*h, 6, ChefsiOptions{}, rng);
  const std::size_t n = h->grid().size();
  la::Matrix<double> hv(n, 6);
  h->apply_block<double>(gs.orbitals, hv);
  for (std::size_t j = 0; j < 6; ++j) {
    double res2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = hv(i, j) - gs.eigenvalues[j] * gs.orbitals(i, j);
      res2 += r * r;
    }
    EXPECT_LT(std::sqrt(res2), 1e-6);
  }
}

TEST(Chefsi, OrbitalsAreOrthonormal) {
  auto h = small_si8();
  Rng rng(9);
  GroundState gs = solve_ground_state(*h, 5, ChefsiOptions{}, rng);
  la::Matrix<double> g5(5, 5);
  la::gemm_tn(1.0, gs.orbitals, gs.orbitals, 0.0, g5);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_NEAR(g5(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Chefsi, FilterAmplifiesLowEnd) {
  auto h = small_si8();
  Rng rng(10);
  // Start from a converged low eigenvector plus a high-energy random
  // direction; one filter pass must shrink the high-energy content.
  GroundState gs = solve_ground_state(*h, 2, ChefsiOptions{}, rng);
  const std::size_t n = h->grid().size();
  la::Matrix<double> v(n, 1);
  rng.fill_uniform(v.col(0));
  // Project out the low eigenvectors to make it mostly high-energy.
  for (std::size_t j = 0; j < 2; ++j) {
    const double c = la::dot(gs.orbitals.col(j), v.col(0));
    la::axpy(-c, gs.orbitals.col(j), v.col(0));
  }
  la::Matrix<double> filtered = v;
  chebyshev_filter(*h, filtered, 8, gs.eigenvalues[1] + 0.05,
                   h->upper_bound(), gs.eigenvalues[0]);
  // Compare the Rayleigh quotient before and after: filtering pushes it
  // toward the low end of the spectrum.
  std::vector<double> hv(n);
  h->apply<double>(v.col(0), hv);
  const double rq_before = la::dot(v.col(0), hv) / la::dot(v.col(0), v.col(0));
  h->apply<double>(filtered.col(0), hv);
  const double rq_after =
      la::dot(filtered.col(0), hv) / la::dot(filtered.col(0), filtered.col(0));
  EXPECT_LT(rq_after, rq_before);
}

TEST(Density, IntegratesToElectronCount) {
  auto h = small_si8();
  Rng rng(11);
  GroundState gs = solve_ground_state(*h, 16, ChefsiOptions{}, rng);
  std::vector<double> rho = compute_density(gs.orbitals, h->grid());
  for (double r : rho) EXPECT_GE(r, 0.0);
  EXPECT_NEAR(integrate(rho, h->grid()), 32.0, 1e-8);
}

TEST(Xc, SlaterExchangeKnownValue) {
  // At rho = 1: ex = -(3/4)(3/pi)^{1/3}, vx = (4/3) ex.
  const XcEnergyDensity x = lda_xc(1.0);
  const double ex_exact = -0.75 * std::cbrt(3.0 / M_PI);
  // Correlation adds a small negative shift; exchange dominates.
  EXPECT_LT(x.exc, ex_exact);  // ec < 0
  EXPECT_GT(x.exc, ex_exact - 0.1);
  EXPECT_LT(x.vxc, 0.0);
}

TEST(Xc, ZeroDensityIsZero) {
  const XcEnergyDensity x = lda_xc(0.0);
  EXPECT_DOUBLE_EQ(x.exc, 0.0);
  EXPECT_DOUBLE_EQ(x.vxc, 0.0);
}

TEST(Xc, PotentialIsDerivativeOfEnergyDensity) {
  // vxc = d(rho exc)/d rho, checked with central differences across both
  // branches of the PZ parametrization.
  for (double rho : {0.005, 0.05, 0.5, 2.0}) {
    const double d = 1e-6 * rho;
    const double ep = (rho + d) * lda_xc(rho + d).exc;
    const double em = (rho - d) * lda_xc(rho - d).exc;
    const double fd = (ep - em) / (2 * d);
    EXPECT_NEAR(lda_xc(rho).vxc, fd, 5e-6 * std::abs(fd) + 1e-9) << rho;
  }
}

TEST(Xc, CorrelationBranchesMatchAtRsOne) {
  // The published PZ81 constants leave a well-known ~3e-5 Ha mismatch in
  // the correlation energy density at the rs = 1 seam; check we reproduce
  // the parametrization to that accuracy rather than an idealized joint.
  const double rho1 = 3.0 / (4.0 * M_PI);  // rs = 1
  const double below = lda_xc(rho1 * (1 + 1e-7)).exc;
  const double above = lda_xc(rho1 * (1 - 1e-7)).exc;
  EXPECT_NEAR(below, above, 1e-4);
}

TEST(KsSystem, ModelSiliconHasGapAtHalfBondFilling) {
  auto h = small_si8();
  Rng rng(12);
  KsSystem sys = make_ks_system(h, 16, ChefsiOptions{}, rng);
  EXPECT_EQ(sys.n_occ(), 16u);
  // The bond-charge model must produce a positive HOMO-LUMO gap: the
  // spectral property every Sternheimer difficulty claim relies on.
  EXPECT_GT(sys.gap(), 0.01);
  EXPECT_LT(sys.homo, 0.0);  // bound states
}

TEST(AndersonMixer, FirstStepIsDampedLinear) {
  AndersonMixer mixer(4, 0.5);
  std::vector<double> in = {1.0, 2.0}, out = {2.0, 4.0};
  std::vector<double> next = mixer.mix(in, out);
  EXPECT_DOUBLE_EQ(next[0], 1.5);
  EXPECT_DOUBLE_EQ(next[1], 3.0);
  EXPECT_EQ(mixer.history_size(), 1u);
}

TEST(AndersonMixer, SolvesLinearFixedPointFast) {
  // Fixed point of g(x) = A x + c with spectral radius < 1: Anderson
  // should reach it far faster than damped linear mixing.
  const std::size_t n = 12;
  Rng rng(77);
  la::Matrix<double> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      a(i, j) = 0.9 / static_cast<double>(n) *
                (i == j ? 5.0 : rng.uniform(-1, 1));
  std::vector<double> c(n);
  rng.fill_uniform(c);

  auto g = [&](const std::vector<double>& x) {
    std::vector<double> y = c;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) y[i] += a(i, j) * x[j];
    return y;
  };

  auto iterate = [&](bool anderson) {
    std::vector<double> x(n, 0.0);
    AndersonMixer mixer(6, 0.5);
    int it = 0;
    for (; it < 200; ++it) {
      std::vector<double> y = g(x);
      double res = 0.0;
      for (std::size_t i = 0; i < n; ++i) res += (y[i] - x[i]) * (y[i] - x[i]);
      if (std::sqrt(res) < 1e-10) break;
      if (anderson) {
        x = mixer.mix(x, y);
      } else {
        for (std::size_t i = 0; i < n; ++i) x[i] = 0.5 * (x[i] + y[i]);
      }
    }
    return it;
  };

  const int it_linear = iterate(false);
  const int it_anderson = iterate(true);
  EXPECT_LT(it_anderson, it_linear);
  EXPECT_LT(it_anderson, 40);
}

TEST(AndersonMixer, ResetClearsHistory) {
  AndersonMixer mixer(3, 0.4);
  std::vector<double> in = {1.0}, out = {2.0};
  mixer.mix(in, out);
  mixer.mix(in, out);
  EXPECT_GE(mixer.history_size(), 2u);
  mixer.reset();
  EXPECT_EQ(mixer.history_size(), 0u);
}

TEST(Scf, AndersonConvergesNoSlowerThanLinear) {
  Rng rng(14);
  Crystal c = ham::make_silicon_chain(1, 0.0, rng);
  Grid3D g = Grid3D::cubic(9, ham::kSiLatticeConstant);
  poisson::KroneckerLaplacian pois(g, 3);

  auto run = [&](ScfOptions::Mixing scheme) {
    Rng scf_rng(15);
    Crystal cc = c;
    Hamiltonian h(g, 3, std::move(cc), ModelParams{});
    ScfOptions opts;
    opts.scheme = scheme;
    opts.tol = 1e-6;
    opts.max_iter = 40;
    return run_scf(h, pois, 16, opts, scf_rng);
  };
  ScfResult lin = run(ScfOptions::Mixing::kLinear);
  ScfResult and_ = run(ScfOptions::Mixing::kAnderson);
  EXPECT_TRUE(lin.converged);
  EXPECT_TRUE(and_.converged);
  EXPECT_LE(and_.iterations, lin.iterations + 2);
  // Both reach the same fixed point.
  EXPECT_NEAR(and_.band_energy, lin.band_energy, 1e-3);
}

TEST(Scf, ConvergesAndKeepsElectronCount) {
  Rng rng(13);
  Crystal c = ham::make_silicon_chain(1, 0.0, rng);
  Grid3D g = Grid3D::cubic(11, ham::kSiLatticeConstant);
  Hamiltonian h(g, 4, std::move(c), ModelParams{});
  poisson::KroneckerLaplacian pois(g, 4);
  ScfOptions opts;
  opts.max_iter = 25;
  opts.tol = 1e-5;
  ScfResult res = run_scf(h, pois, 16, opts, rng);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(integrate(res.density, g), 32.0, 1e-6);
  // Eigenpairs are consistent with the final Hamiltonian.
  const std::size_t n = g.size();
  la::Matrix<double> hv(n, 16);
  h.apply_block<double>(res.gs.orbitals, hv);
  for (std::size_t j = 0; j < 16; ++j) {
    double res2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = hv(i, j) - res.gs.eigenvalues[j] * res.gs.orbitals(i, j);
      res2 += r * r;
    }
    EXPECT_LT(std::sqrt(res2), 1e-5);
  }
}

}  // namespace
}  // namespace rsrpa::dft
