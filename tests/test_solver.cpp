// Tests for the Krylov solver stack: block COCG (Algorithm 3), COCG,
// COCR, GMRES, the Galerkin initial guess (Eq. 13), dynamic block size
// selection (Algorithm 4), and the split inverse-Laplacian preconditioner.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.hpp"
#include "dft/ks_system.hpp"
#include "la/blas.hpp"
#include "la/lu.hpp"
#include "obs/event_log.hpp"
#include "solver/block_cocg.hpp"
#include "solver/block_cocr.hpp"
#include "solver/cocr.hpp"
#include "solver/dynamic_block.hpp"
#include "solver/galerkin_guess.hpp"
#include "solver/gmres.hpp"
#include "solver/preconditioner.hpp"
#include "solver/qmr_sym.hpp"
#include "solver/seed_projection.hpp"

namespace rsrpa::solver {
namespace {

using la::cplx;
using la::Matrix;

// Random complex-symmetric matrix with a diagonal shift controlling the
// conditioning — mirrors the Sternheimer structure (H - lambda + i omega).
Matrix<cplx> random_complex_symmetric(std::size_t n, Rng& rng,
                                      cplx diag_shift) {
  Matrix<cplx> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const cplx v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a(i, j) = v;
      a(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) a(i, i) += diag_shift;
  return a;
}

BlockOpC dense_op(const Matrix<cplx>& a) {
  return [&a](const Matrix<cplx>& in, Matrix<cplx>& out) {
    la::gemm_nn(cplx{1}, a, in, cplx{0}, out);
  };
}

Matrix<cplx> random_cblock(std::size_t n, std::size_t s, Rng& rng) {
  Matrix<cplx> b(n, s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i)
      b(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return b;
}

double block_error(const Matrix<cplx>& a, const Matrix<cplx>& b) {
  double e = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      e = std::max(e, std::abs(a(i, j) - b(i, j)));
  return e;
}

TEST(BlockCocg, SolvesDenseComplexSymmetricSystem) {
  Rng rng(1);
  const std::size_t n = 40, s = 4;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, s, rng);
  Matrix<cplx> y(n, s);
  SolverOptions opts;
  opts.tol = 1e-12;
  SolveReport rep = block_cocg(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.converged);
  Matrix<cplx> x_ref = la::lu_solve(a, b);
  EXPECT_LT(block_error(y, x_ref), 1e-9);
}

TEST(BlockCocg, RespectsInitialGuess) {
  Rng rng(2);
  const std::size_t n = 30, s = 2;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b = random_cblock(n, s, rng);
  // Exact solution as the initial guess: zero iterations needed.
  Matrix<cplx> y = la::lu_solve(a, b);
  SolveReport rep = block_cocg(dense_op(a), b, y);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, 0);
}

TEST(BlockCocg, ZeroRhsGivesZeroSolution) {
  Rng rng(3);
  Matrix<cplx> a = random_complex_symmetric(10, rng, cplx{4.0, 1.0});
  Matrix<cplx> b(10, 2);
  Matrix<cplx> y = random_cblock(10, 2, rng);
  SolveReport rep = block_cocg(dense_op(a), b, y);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(la::norm_fro(y), 0.0);
}

TEST(BlockCocg, DuplicateColumnsBreakDown) {
  Rng rng(4);
  const std::size_t n = 25;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{5.0, 1.0});
  Matrix<cplx> b = random_cblock(n, 2, rng);
  for (std::size_t i = 0; i < n; ++i) b(i, 1) = b(i, 0);  // rank-1 block
  Matrix<cplx> y(n, 2);
  EXPECT_THROW(block_cocg(dense_op(a), b, y), NumericalBreakdown);
}

TEST(BlockCocg, MatchesNonBlockCocgForSingleRhs) {
  Rng rng(5);
  const std::size_t n = 35;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{7.0, 1.5});
  Matrix<cplx> b = random_cblock(n, 1, rng);
  Matrix<cplx> y_block(n, 1);
  SolverOptions opts;
  opts.tol = 1e-11;
  SolveReport rb = block_cocg(dense_op(a), b, y_block, opts);

  std::vector<cplx> bb(n), yy(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) bb[i] = b(i, 0);
  SolveReport rs = cocg(dense_op(a), bb, yy, opts);

  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(rs.converged);
  EXPECT_EQ(rb.iterations, rs.iterations);  // identical recurrence at s=1
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y_block(i, 0) - yy[i]), 0.0, 1e-8);
}

TEST(BlockCocg, SingleRhsHistoryAndMatvecsMatchCocg) {
  // At s = 1 the block recurrence degenerates to the scalar one, so the
  // two independent implementations must agree step by step: identical
  // residual histories and identical operator-application counts.
  Rng rng(21);
  const std::size_t n = 35;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{7.0, 1.5});
  Matrix<cplx> b = random_cblock(n, 1, rng);
  SolverOptions opts;
  opts.tol = 1e-11;
  opts.record_history = true;

  Matrix<cplx> y_block(n, 1);
  SolveReport rb = block_cocg(dense_op(a), b, y_block, opts);

  std::vector<cplx> bb(n), yy(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) bb[i] = b(i, 0);
  SolveReport rs = cocg(dense_op(a), bb, yy, opts);

  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(rs.converged);
  EXPECT_EQ(rb.matvec_columns, rs.matvec_columns);
  ASSERT_FALSE(rb.history.empty());
  ASSERT_EQ(rb.history.size(), rs.history.size());
  for (std::size_t k = 0; k < rb.history.size(); ++k)
    EXPECT_NEAR(rb.history[k], rs.history[k],
                1e-10 * std::max(1.0, rb.history[k]))
        << "histories diverge at iteration " << k;
}

TEST(Cocg, SuspectMuAloneDoesNotAbortAConvergingSolve) {
  // Regression: the scalar path used to throw the moment |mu| fell under
  // the breakdown floor, even when the step it guarded was fine. It now
  // mirrors the block path's take-the-step-then-decide probe. For this
  // seed the smallest conjugacy ratio |mu| / (|u||p|) of the whole solve,
  // 1.39e-2 at iteration 19, belongs to a step whose residual DECREASES —
  // so a floor of 1.5e-2 flags it (the old code aborted here) while the
  // probe lets the solve run to convergence. And since the probe only
  // observes, the iteration is bit-for-bit the one the default floor
  // produces.
  Rng rng(23);
  const std::size_t n = 35;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{7.0, 1.5});
  Matrix<cplx> b = random_cblock(n, 1, rng);
  std::vector<cplx> bb(n);
  for (std::size_t i = 0; i < n; ++i) bb[i] = b(i, 0);

  SolverOptions opts;
  opts.tol = 1e-11;
  opts.record_history = true;

  std::vector<cplx> y_ref(n, cplx{});
  SolveReport ref = cocg(dense_op(a), bb, y_ref, opts);
  ASSERT_TRUE(ref.converged);

  opts.breakdown_tol = 1.5e-2;
  std::vector<cplx> y(n, cplx{});
  SolveReport rep = cocg(dense_op(a), bb, y, opts);

  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, ref.iterations);
  ASSERT_EQ(rep.history.size(), ref.history.size());
  for (std::size_t k = 0; k < rep.history.size(); ++k)
    EXPECT_EQ(rep.history[k], ref.history[k]) << "iteration " << k;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(y[i], y_ref[i]) << "entry " << i;
}

TEST(Cocg, GenuineQuasiNullBreakdownStillThrows) {
  // A = diag(1, 1, 2), b = (1, i, 1): one step in, the residual becomes a
  // quasi-null vector (w^T w = 0, w != 0) and the scalar recurrence has
  // nowhere to go — the softened probe must still raise the breakdown.
  Matrix<cplx> a(3, 3);
  a(0, 0) = cplx{1.0, 0.0};
  a(1, 1) = cplx{1.0, 0.0};
  a(2, 2) = cplx{2.0, 0.0};
  std::vector<cplx> b = {cplx{1.0, 0.0}, cplx{0.0, 1.0}, cplx{1.0, 0.0}};
  std::vector<cplx> y(3, cplx{});
  SolverOptions opts;
  opts.tol = 1e-12;
  EXPECT_THROW(cocg(dense_op(a), b, y, opts), NumericalBreakdown);
}

TEST(BlockCocg, LargerBlocksNeedNoMoreIterations) {
  // O'Leary: block Krylov convergence (in iterations) improves — or at
  // least does not degrade — with block size on a hard indefinite system.
  Rng rng(6);
  const std::size_t n = 120;
  Matrix<cplx> a(n, n);
  // Diagonal complex-symmetric matrix with an indefinite, near-origin
  // spectrum: lambda_i in [-1, 4] plus a small imaginary shift.
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) = cplx{-1.0 + 5.0 * double(i) / double(n - 1), 0.05};
  Matrix<cplx> b = random_cblock(n, 8, rng);
  SolverOptions opts;
  opts.tol = 1e-8;
  opts.max_iter = 4000;

  int iters_s1 = 0;
  for (std::size_t j = 0; j < 8; ++j) {
    Matrix<cplx> b1 = b.slice_cols(j, 1);
    Matrix<cplx> y1(n, 1);
    SolveReport r = block_cocg(dense_op(a), b1, y1, opts);
    EXPECT_TRUE(r.converged);
    iters_s1 = std::max(iters_s1, r.iterations);
  }
  Matrix<cplx> y8(n, 8);
  SolveReport r8 = block_cocg(dense_op(a), b, y8, opts);
  EXPECT_TRUE(r8.converged);
  EXPECT_LE(r8.iterations, iters_s1);
}

TEST(BlockCocg, HistoryIsRecordedAndDecreasesOverall) {
  Rng rng(7);
  const std::size_t n = 40;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{9.0, 2.0});
  Matrix<cplx> b = random_cblock(n, 3, rng);
  Matrix<cplx> y(n, 3);
  SolverOptions opts;
  opts.record_history = true;
  opts.tol = 1e-10;
  SolveReport rep = block_cocg(dense_op(a), b, y, opts);
  ASSERT_GE(rep.history.size(), 2u);
  EXPECT_LT(rep.history.back(), rep.history.front());
  EXPECT_LE(rep.history.back(), opts.tol);
}

TEST(Cocg, SolvesShiftedHamiltonianSystem) {
  // The real use case: (H - lambda I + i omega I) y = b.
  Rng rng(8);
  ham::Crystal c = ham::make_silicon_chain(1, 0.0, rng);
  grid::Grid3D g = grid::Grid3D::cubic(9, ham::kSiLatticeConstant);
  ham::Hamiltonian h(g, 3, std::move(c), ham::ModelParams{});
  const double lambda = -0.5, omega = 0.7;
  BlockOpC op = [&](const Matrix<cplx>& in, Matrix<cplx>& out) {
    h.apply_shifted_block(in, out, lambda, omega);
  };
  const std::size_t n = g.size();
  std::vector<cplx> b(n), y(n, cplx{});
  for (auto& v : b) v = {rng.uniform(-1, 1), 0.0};
  SolverOptions opts;
  opts.tol = 1e-10;
  opts.max_iter = 3000;
  SolveReport rep = cocg(op, b, y, opts);
  EXPECT_TRUE(rep.converged);
  // Verify the residual directly.
  std::vector<cplx> ay(n);
  h.apply_shifted(y, ay, lambda, omega);
  double err = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += std::norm(ay[i] - b[i]);
    bn += std::norm(b[i]);
  }
  EXPECT_LT(std::sqrt(err / bn), 1e-9);
}

TEST(BlockCocr, SolvesDenseComplexSymmetricSystem) {
  Rng rng(30);
  const std::size_t n = 40, s = 4;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, s, rng);
  Matrix<cplx> y(n, s);
  SolverOptions opts;
  opts.tol = 1e-11;
  SolveReport rep = block_cocr(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.converged);
  Matrix<cplx> x_ref = la::lu_solve(a, b);
  EXPECT_LT(block_error(y, x_ref), 1e-8);
}

TEST(BlockCocr, MatchesNonBlockCocrForSingleRhs) {
  Rng rng(31);
  const std::size_t n = 35;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{7.0, 1.5});
  Matrix<cplx> b = random_cblock(n, 1, rng);
  Matrix<cplx> y_block(n, 1);
  SolverOptions opts;
  opts.tol = 1e-10;
  SolveReport rb = block_cocr(dense_op(a), b, y_block, opts);

  std::vector<cplx> bb(n), yy(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) bb[i] = b(i, 0);
  SolveReport rs = cocr(dense_op(a), bb, yy, opts);
  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(rs.converged);
  EXPECT_EQ(rb.iterations, rs.iterations);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y_block(i, 0) - yy[i]), 0.0, 1e-8);
}

TEST(BlockCocr, ResidualHistoryIsSmootherOrEqualToBlockCocg) {
  // The residual-minimizing recurrence should not produce a larger final
  // residual than COCG for the same iteration budget on a hard system.
  Rng rng(32);
  const std::size_t n = 100, s = 2;
  Matrix<cplx> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) = cplx{-1.0 + 5.0 * double(i) / double(n - 1), 0.05};
  Matrix<cplx> b = random_cblock(n, s, rng);
  SolverOptions opts;
  opts.tol = 1e-30;  // force fixed iteration budget
  opts.max_iter = 40;
  opts.record_history = true;
  Matrix<cplx> y1(n, s), y2(n, s);
  SolveReport rg = block_cocg(dense_op(a), b, y1, opts);
  SolveReport rr = block_cocr(dense_op(a), b, y2, opts);
  // COCR residual peaks must not exceed COCG's worst spikes wildly; check
  // the final residual is comparable or better.
  EXPECT_LE(rr.relative_residual, 3.0 * rg.relative_residual + 1e-12);
}

TEST(BlockCocr, RespectsInitialGuess) {
  Rng rng(33);
  const std::size_t n = 30, s = 2;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b = random_cblock(n, s, rng);
  Matrix<cplx> y = la::lu_solve(a, b);
  SolveReport rep = block_cocr(dense_op(a), b, y);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, 0);
}

TEST(Cocr, SolvesComplexSymmetricSystem) {
  Rng rng(9);
  const std::size_t n = 40;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  SolverOptions opts;
  opts.tol = 1e-11;
  SolveReport rep = cocr(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.converged);
  Matrix<cplx> x_ref = la::lu_solve(a, b1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y[i] - x_ref(i, 0)), 0.0, 1e-8);
}

TEST(QmrSym, SolvesComplexSymmetricSystem) {
  Rng rng(40);
  const std::size_t n = 40;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  SolverOptions opts;
  opts.tol = 1e-10;
  SolveReport rep = qmr_sym(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.converged);
  Matrix<cplx> x_ref = la::lu_solve(a, b1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y[i] - x_ref(i, 0)), 0.0, 1e-7);
}

TEST(QmrSym, SmoothedResidualIsMonotoneUnlikeCocg) {
  // The point of QMR smoothing: on a highly indefinite spectrum the
  // smoothed residual history never increases, while raw COCG spikes.
  Rng rng(41);
  const std::size_t n = 150;
  Matrix<cplx> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) = cplx{-1.0 + 4.0 * double(i) / double(n - 1), 0.05};
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);

  SolverOptions opts;
  opts.tol = 1e-8;
  opts.max_iter = 5000;
  opts.record_history = true;
  SolveReport rep = qmr_sym(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.converged);
  for (std::size_t k = 1; k < rep.history.size(); ++k)
    EXPECT_LE(rep.history[k], rep.history[k - 1] * (1.0 + 1e-12)) << k;

  std::vector<cplx> y2(n, cplx{});
  SolveReport rc = cocg(dense_op(a), b, y2, opts);
  EXPECT_TRUE(rc.converged);
  bool cocg_spikes = false;
  for (std::size_t k = 1; k < rc.history.size(); ++k)
    cocg_spikes = cocg_spikes || rc.history[k] > rc.history[k - 1];
  EXPECT_TRUE(cocg_spikes);  // the indefinite spectrum makes COCG jump
}

TEST(QmrSym, RespectsInitialGuess) {
  Rng rng(42);
  const std::size_t n = 30;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{5.0, 1.0});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  Matrix<cplx> x_ref = la::lu_solve(a, b1);
  std::vector<cplx> b(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = b1(i, 0);
    y[i] = x_ref(i, 0);
  }
  SolveReport rep = qmr_sym(dense_op(a), b, y);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, 0);
}

TEST(Gmres, SolvesGeneralComplexSystem) {
  // GMRES requires no symmetry at all.
  Rng rng(10);
  const std::size_t n = 30;
  Matrix<cplx> a = random_cblock(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += cplx{7.0, 3.0};
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  GmresOptions opts;
  opts.tol = 1e-11;
  SolveReport rep = gmres(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.converged);
  Matrix<cplx> x_ref = la::lu_solve(a, b1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y[i] - x_ref(i, 0)), 0.0, 1e-8);
}

TEST(Gmres, RestartedConvergesOnHarderSystem) {
  Rng rng(11);
  const std::size_t n = 60;
  // Definite but slow enough that GMRES(10) must restart several times.
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{9.5, 1.0});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  GmresOptions opts;
  opts.restart = 10;  // force several restart cycles
  opts.max_iter = 2000;
  opts.tol = 1e-9;
  SolveReport rep = gmres(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.iterations, 10);  // actually restarted
}

TEST(GalerkinGuess, ExactWhenRhsInOccupiedSpan) {
  // If B = Psi C, the projected guess solves A Y = B exactly.
  Rng rng(12);
  ham::Crystal c = ham::make_silicon_chain(1, 0.0, rng);
  grid::Grid3D g = grid::Grid3D::cubic(9, ham::kSiLatticeConstant);
  auto h = std::make_shared<ham::Hamiltonian>(g, 3, std::move(c),
                                              ham::ModelParams{});
  Rng rng2(13);
  dft::KsSystem sys = dft::make_ks_system(h, 8, dft::ChefsiOptions{}, rng2);

  const std::size_t n = g.size(), s = 3;
  Matrix<double> coef(8, s);
  for (std::size_t j = 0; j < s; ++j) rng.fill_uniform(coef.col(j));
  Matrix<double> b(n, s);
  la::gemm_nn(1.0, sys.orbitals, coef, 0.0, b);

  const double lambda = sys.eigenvalues[5], omega = 0.4;
  Matrix<cplx> y0 = galerkin_initial_guess(sys.orbitals, sys.eigenvalues,
                                           lambda, omega, b);
  Matrix<cplx> ay(n, s);
  h->apply_shifted_block(y0, ay, lambda, omega);
  double err = 0.0;
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i)
      err = std::max(err, std::abs(ay(i, j) - cplx{b(i, j), 0.0}));
  EXPECT_LT(err, 1e-5);
}

TEST(GalerkinGuess, ReducesInitialResidual) {
  Rng rng(14);
  ham::Crystal c = ham::make_silicon_chain(1, 0.0, rng);
  grid::Grid3D g = grid::Grid3D::cubic(9, ham::kSiLatticeConstant);
  auto h = std::make_shared<ham::Hamiltonian>(g, 3, std::move(c),
                                              ham::ModelParams{});
  Rng rng2(15);
  dft::KsSystem sys = dft::make_ks_system(h, 16, dft::ChefsiOptions{}, rng2);

  const std::size_t n = g.size(), s = 4;
  Matrix<double> b(n, s);
  for (std::size_t j = 0; j < s; ++j) rng.fill_uniform(b.col(j));
  // Hardest regime: lambda at the top of the occupied spectrum, omega small.
  const double lambda = sys.eigenvalues.back(), omega = 0.02;

  Matrix<cplx> y0 = galerkin_initial_guess(sys.orbitals, sys.eigenvalues,
                                           lambda, omega, b);
  Matrix<cplx> ay(n, s);
  h->apply_shifted_block(y0, ay, lambda, omega);
  double res_guess = 0.0, res_zero = 0.0;
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      res_guess += std::norm(cplx{b(i, j), 0.0} - ay(i, j));
      res_zero += std::norm(cplx{b(i, j), 0.0});
    }
  EXPECT_LT(res_guess, res_zero);
}

TEST(DynamicBlock, SolvesAllSystemsAndRecordsChunks) {
  Rng rng(16);
  const std::size_t n = 60, n_rhs = 13;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b = random_cblock(n, n_rhs, rng);
  Matrix<cplx> y(n, n_rhs);
  DynamicBlockOptions opts;
  opts.solver.tol = 1e-10;
  DynamicBlockReport rep = solve_dynamic_block(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.all_converged);
  int total = 0;
  for (const ChunkRecord& cr : rep.chunks) total += cr.n_rhs;
  EXPECT_EQ(total, static_cast<int>(n_rhs));
  Matrix<cplx> x_ref = la::lu_solve(a, b);
  EXPECT_LT(block_error(y, x_ref), 1e-7);
}

TEST(DynamicBlock, RespectsMaxBlockCap) {
  Rng rng(17);
  const std::size_t n = 50, n_rhs = 16;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{5.0, 1.0});
  Matrix<cplx> b = random_cblock(n, n_rhs, rng);
  Matrix<cplx> y(n, n_rhs);
  DynamicBlockOptions opts;
  opts.max_block = 4;
  DynamicBlockReport rep = solve_dynamic_block(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.all_converged);
  for (const ChunkRecord& cr : rep.chunks) EXPECT_LE(cr.block_size, 4);
}

TEST(DynamicBlock, FixedModeUsesRequestedSize) {
  Rng rng(18);
  const std::size_t n = 40, n_rhs = 10;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{5.0, 1.0});
  Matrix<cplx> b = random_cblock(n, n_rhs, rng);
  Matrix<cplx> y(n, n_rhs);
  DynamicBlockOptions opts;
  opts.enabled = false;
  opts.fixed_block = 3;
  DynamicBlockReport rep = solve_dynamic_block(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.all_converged);
  // Chunks of 3 except a tail of 1: 3+3+3+1.
  ASSERT_EQ(rep.chunks.size(), 4u);
  EXPECT_EQ(rep.chunks[0].n_rhs, 3);
  EXPECT_EQ(rep.chunks[3].n_rhs, 1);
}

TEST(DynamicBlock, FallsBackOnDependentColumns) {
  Rng rng(19);
  const std::size_t n = 30;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{5.0, 1.0});
  Matrix<cplx> b = random_cblock(n, 4, rng);
  for (std::size_t i = 0; i < n; ++i) b(i, 3) = b(i, 2);  // duplicates
  Matrix<cplx> y(n, 4);
  DynamicBlockOptions opts;
  opts.enabled = false;
  opts.fixed_block = 4;
  obs::EventLog events;
  opts.events = &events;
  DynamicBlockReport rep = solve_dynamic_block(dense_op(a), b, y, opts);
  EXPECT_TRUE(rep.all_converged);
  ASSERT_EQ(rep.chunks.size(), 1u);
  EXPECT_TRUE(rep.chunks[0].fallback);
  // The recovery ladder deflates the rank-deficient 4-block twice: once
  // at the full block, once at the duplicate pair. The initial-residual
  // breakdown touches no state, so no restart is attempted, and the
  // surviving single columns converge without a solver swap.
  EXPECT_EQ(rep.chunks[0].deflations, 2);
  EXPECT_EQ(rep.chunks[0].restarts, 0);
  EXPECT_EQ(rep.chunks[0].solver_swaps, 0);
  EXPECT_EQ(rep.chunks[0].quarantined, 0);
  EXPECT_TRUE(rep.quarantined_columns.empty());
  // Each rung fires as a structured event carrying the chunk position and
  // size; the first deflation covers the whole 4-block.
  EXPECT_EQ(events.count(obs::events::kSolverBreakdown), 2u);
  ASSERT_EQ(events.count(obs::events::kBlockDeflation), 2u);
  const obs::Event* deflation = nullptr;
  for (const obs::Event& e : events.events())
    if (e.kind == obs::events::kBlockDeflation) {
      deflation = &e;
      break;
    }
  ASSERT_NE(deflation, nullptr);
  ASSERT_EQ(deflation->fields.size(), 2u);
  EXPECT_EQ(deflation->fields[0].first, "position");
  EXPECT_DOUBLE_EQ(deflation->fields[0].second, 0.0);
  EXPECT_EQ(deflation->fields[1].first, "block_size");
  EXPECT_DOUBLE_EQ(deflation->fields[1].second, 4.0);
  Matrix<cplx> x_ref = la::lu_solve(a, b);
  EXPECT_LT(block_error(y, x_ref), 1e-7);
}

TEST(DynamicBlock, ChunksRecordMatvecColumns) {
  Rng rng(22);
  const std::size_t n = 40, n_rhs = 6;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b = random_cblock(n, n_rhs, rng);
  Matrix<cplx> y(n, n_rhs);
  DynamicBlockReport rep =
      solve_dynamic_block(dense_op(a), b, y, DynamicBlockOptions{});
  long sum = 0;
  for (const ChunkRecord& cr : rep.chunks) {
    EXPECT_GT(cr.matvec_columns, 0);
    sum += cr.matvec_columns;
  }
  EXPECT_EQ(sum, rep.total_matvec_columns);
}

TEST(DynamicBlock, BlockSizeCountsSumToChunks) {
  Rng rng(20);
  const std::size_t n = 40, n_rhs = 9;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 2.0});
  Matrix<cplx> b = random_cblock(n, n_rhs, rng);
  Matrix<cplx> y(n, n_rhs);
  DynamicBlockReport rep =
      solve_dynamic_block(dense_op(a), b, y, DynamicBlockOptions{});
  int sum = 0;
  for (const auto& [size, count] : rep.block_size_counts()) sum += count;
  EXPECT_EQ(sum, static_cast<int>(rep.chunks.size()));
}

TEST(Preconditioner, SplitFormStaysComplexSymmetricAndConverges) {
  // Kinetic-dominated system: M = sigma0 - L/2 captures most of A, so the
  // preconditioned iteration should converge in fewer iterations.
  Rng rng(21);
  grid::Grid3D g = grid::Grid3D::cubic(8, 4.0);
  grid::StencilLaplacian lap(g, 2);
  poisson::KroneckerLaplacian klap(g, 2);
  const cplx zshift{0.4, 0.05};
  BlockOpC op = [&](const Matrix<cplx>& in, Matrix<cplx>& out) {
    lap.apply_block(in, out);
    for (std::size_t j = 0; j < in.cols(); ++j)
      for (std::size_t i = 0; i < in.rows(); ++i)
        out(i, j) = -0.5 * out(i, j) + zshift * in(i, j);
  };
  const std::size_t n = g.size();
  Matrix<cplx> b = random_cblock(n, 2, rng);
  SolverOptions opts;
  opts.tol = 1e-9;
  opts.max_iter = 5000;

  Matrix<cplx> y_plain(n, 2);
  SolveReport plain = block_cocg(op, b, y_plain, opts);
  ASSERT_TRUE(plain.converged);

  ShiftedLaplacianPrecond precond(klap, 0.4);
  Matrix<cplx> y_prec(n, 2);
  SolveReport prec = preconditioned_block_cocg(op, precond, b, y_prec, opts);
  ASSERT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
  EXPECT_LT(block_error(y_prec, y_plain), 1e-6);
}

TEST(SeedProjection, StoredBasisReproducesCocgIterates) {
  Rng rng(22);
  const std::size_t n = 40;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{7.0, 1.5});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y_seed(n, cplx{}), y_plain(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  SolverOptions opts;
  opts.tol = 1e-11;
  SeedBasis basis;
  SolveReport rs = cocg_store_basis(dense_op(a), b, y_seed, basis, opts);
  SolveReport rp = cocg(dense_op(a), b, y_plain, opts);
  EXPECT_TRUE(rs.converged);
  EXPECT_EQ(rs.iterations, rp.iterations);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y_seed[i] - y_plain[i]), 0.0, 1e-10);
  EXPECT_EQ(basis.directions.cols(), static_cast<std::size_t>(rs.iterations));
}

TEST(SeedProjection, DirectionsAreAConjugate) {
  Rng rng(23);
  const std::size_t n = 30;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  SeedBasis basis;
  SolverOptions opts;
  opts.tol = 1e-12;
  cocg_store_basis(dense_op(a), b, y, basis, opts);

  const std::size_t k = basis.directions.cols();
  ASSERT_GE(k, 2u);
  Matrix<cplx> ap(n, k);
  la::gemm_nn(cplx{1}, a, basis.directions, cplx{0}, ap);
  Matrix<cplx> ptap(k, k);
  la::gemm_tn(cplx{1}, basis.directions, ap, cplx{0}, ptap);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(std::abs(ptap(j, j) - basis.mu[j]), 0.0,
                1e-8 * std::abs(basis.mu[j]));
    for (std::size_t i = 0; i < k; ++i) {
      if (i == j) continue;
      // Off-diagonal conjugacy decays with short recurrences; nearby
      // directions must be conjugate to near machine precision.
      if (i + 1 == j || j + 1 == i)
        EXPECT_LT(std::abs(ptap(i, j)), 1e-6 * std::abs(basis.mu[j]));
    }
  }
}

TEST(SeedProjection, ExactForRhsInSeedKrylovSpace) {
  // Seed with b; once COCG converges, the Krylov space contains A^{-1} b,
  // so projecting b itself must reproduce the solution.
  Rng rng(24);
  const std::size_t n = 25;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  SeedBasis basis;
  SolverOptions opts;
  opts.tol = 1e-13;
  cocg_store_basis(dense_op(a), b, y, basis, opts);

  Matrix<cplx> y0 = seed_project(basis, b1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y0(i, 0) - y[i]), 0.0, 1e-7);
}

TEST(SeedProjection, GuessReducesResidualForRelatedRhs) {
  Rng rng(25);
  const std::size_t n = 35;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{6.0, 1.0});
  Matrix<cplx> b1 = random_cblock(n, 1, rng);
  std::vector<cplx> b(n), y(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b[i] = b1(i, 0);
  SeedBasis basis;
  SolverOptions opts;
  opts.tol = 1e-12;
  cocg_store_basis(dense_op(a), b, y, basis, opts);

  // Related RHS: seed plus a small perturbation.
  Matrix<cplx> b2(n, 1);
  for (std::size_t i = 0; i < n; ++i)
    b2(i, 0) = b1(i, 0) + cplx{0.01 * rng.uniform(-1, 1), 0.0};
  Matrix<cplx> y0 = seed_project(basis, b2);
  Matrix<cplx> ay(n, 1);
  la::gemm_nn(cplx{1}, a, y0, cplx{0}, ay);
  double res = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    res += std::norm(b2(i, 0) - ay(i, 0));
    bn += std::norm(b2(i, 0));
  }
  EXPECT_LT(std::sqrt(res / bn), 0.1);  // far below the zero-guess 1.0
}

}  // namespace
}  // namespace rsrpa::solver
