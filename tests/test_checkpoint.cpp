// Kill-and-resume tests for the run-checkpoint layer (io/checkpoint.hpp)
// and its driver wiring: a run killed right after any checkpoint and
// resumed from the file must reproduce the uninterrupted run's E_RPA,
// per-omega records, and run-report JSON bitwise (timing fields aside —
// wall clock is the one thing a restart legitimately changes). Labeled
// `checkpoint` in ctest so the suite can be run alone under
// -DRSRPA_SANITIZE=address builds.
//
// All runs here pin stern.dynamic_block = false: Algorithm 4 picks block
// sizes from measured wall time, which is exactly the kind of
// nondeterminism the resume-equivalence contract excludes (see
// docs/REPRODUCING.md, "Checkpoint and resume").
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "io/checkpoint.hpp"
#include "obs/run_report.hpp"
#include "par/parallel_rpa.hpp"
#include "rpa/erpa.hpp"
#include "rpa/presets.hpp"

namespace rsrpa {
namespace {

// Timing and wall-clock-derived fields: legitimately different between a
// straight-through and a killed+resumed run, stripped before the JSON
// comparison. Everything else must match byte for byte.
bool timing_key(const std::string& k) {
  static const std::set<std::string> kStrip = {
      "seconds",        "total_seconds",
      "timers",         "arithmetic_intensity",
      "sched",          "modeled",
      "modeled_total_seconds", "apply_work_seconds",
      "rank_apply_seconds",    "rank_error_seconds",
      "rank_timers"};
  return kStrip.count(k) > 0;
}

obs::Json strip_timing(const obs::Json& j) {
  if (j.is_object()) {
    obs::Json out = obs::Json::object();
    for (const auto& [key, value] : j.as_object())
      if (!timing_key(key)) out[key] = strip_timing(value);
    return out;
  }
  if (j.is_array()) {
    obs::Json out = obs::Json::array();
    for (const obs::Json& v : j.as_array()) out.push_back(strip_timing(v));
    return out;
  }
  return j;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test process: ctest runs cases concurrently and a
    // shared path would let one process's TearDown delete another's files.
    dir_ = std::filesystem::temp_directory_path() /
           ("rsrpa_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;

  static rpa::BuiltSystem& built() {
    static rpa::BuiltSystem b = [] {
      rpa::SystemPreset p = rpa::make_si_preset(1, false);
      p.grid_per_cell = 7;
      p.n_eig_per_atom = 2;  // n_eig = 16
      p.fd_radius = 3;
      return rpa::build_system(p);
    }();
    return b;
  }

  // Deterministic base configuration: fixed blocking so the computation
  // itself is schedule-independent and the bitwise contract applies.
  static rpa::RpaOptions base_options() {
    rpa::RpaOptions opts = built().default_rpa_options();
    opts.n_eig = 16;
    opts.ell = 3;
    opts.tol_eig = {4e-3, 2e-3, 2e-3};
    opts.stern.dynamic_block = false;
    opts.stern.fixed_block = 4;
    return opts;
  }

  // Persistent zero-matvec fault pinned to quadrature point 0, orbital 0
  // (the test_resilience drill): point 0 quarantines, the rest must not.
  static void add_point_fault(rpa::RpaOptions& opts) {
    opts.stern.fault.mode = solver::FaultMode::kZeroMatvec;
    opts.stern.fault.at_apply = 0;
    opts.stern.fault.period = 1;
    opts.stern.fault.max_faults = 1 << 30;
    opts.stern.fault.orbital = 0;
    opts.fault_omega = 0;
  }

  static void expect_bitwise_equal(const rpa::RpaResult& a,
                                   const rpa::RpaResult& b) {
    EXPECT_EQ(a.e_rpa, b.e_rpa);
    EXPECT_EQ(a.e_rpa_per_atom, b.e_rpa_per_atom);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.degraded, b.degraded);
    ASSERT_EQ(a.per_omega.size(), b.per_omega.size());
    for (std::size_t k = 0; k < a.per_omega.size(); ++k) {
      const rpa::OmegaRecord& ra = a.per_omega[k];
      const rpa::OmegaRecord& rb = b.per_omega[k];
      EXPECT_EQ(ra.e_term, rb.e_term) << "omega " << k;
      EXPECT_EQ(ra.error, rb.error) << "omega " << k;
      EXPECT_EQ(ra.eigenvalues, rb.eigenvalues) << "omega " << k;
      EXPECT_EQ(ra.quarantined_columns, rb.quarantined_columns);
      EXPECT_EQ(ra.quarantined_column_indices, rb.quarantined_column_indices);
    }
    EXPECT_EQ(strip_timing(obs::to_json(a)).dump(),
              strip_timing(obs::to_json(b)).dump());
  }
};

// ---------------------------------------------------------------------------
// Format layer.

TEST_F(CheckpointTest, RoundTripPreservesEveryField) {
  io::RunCheckpoint ck;
  ck.fingerprint = 0xdeadbeefcafef00dull;  // top bit set: stresses the
                                           // decimal-string encoding
  ck.completed_points = 2;
  ck.ell = 3;
  ck.e_rpa_partial = -1.2345678901234567;
  ck.degraded = true;
  ck.converged = false;
  ck.rng_state = Rng(42).save_state();
  for (int k = 0; k < 2; ++k) {
    rpa::OmegaRecord rec;
    rec.omega = 0.5 + k;
    rec.weight = 0.25 * (k + 1);
    rec.e_term = -0.125 * (k + 1);
    rec.converged = k == 1;
    rec.quarantined_columns = k == 0 ? 2 : 0;
    if (k == 0) rec.quarantined_column_indices = {3, 7};
    rec.eigenvalues = {-0.5, -0.25 - k};
    ck.per_omega.push_back(rec);
  }
  ck.stern.total_chunks = 11;
  ck.stern.block_size_chunks = {{4, 9}, {1, 2}};
  ck.stern.quarantined_columns = 2;
  ck.stern.quarantined_column_indices = {3, 7};
  ck.timers.add("nu_chi0", 1.5);
  ck.events.emit(obs::events::kQuadPointDegraded, "drill",
                 {{"omega_index", 0.0}});
  Rng vr(7);
  ck.v = la::Matrix<double>(13, 4);
  for (std::size_t j = 0; j < 4; ++j) vr.fill_uniform(ck.v.col(j));
  ck.parallel = true;
  ck.matmult_seconds = 0.5;
  ck.eigensolve_seconds = 0.25;
  ck.error_checks = 9;
  ck.rank_apply_seconds = {1.0, 2.0};
  ck.rank_error_seconds = {0.125, 0.5};

  io::save_run_checkpoint(path("rt.ckpt"), ck);
  io::RunCheckpoint r =
      io::load_run_checkpoint(path("rt.ckpt"), ck.fingerprint);

  EXPECT_EQ(r.fingerprint, ck.fingerprint);
  EXPECT_EQ(r.completed_points, 2);
  EXPECT_EQ(r.ell, 3);
  EXPECT_EQ(r.e_rpa_partial, ck.e_rpa_partial);
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.rng_state, ck.rng_state);
  ASSERT_EQ(r.per_omega.size(), 2u);
  EXPECT_EQ(r.per_omega[0].quarantined_column_indices,
            (std::vector<long>{3, 7}));
  EXPECT_EQ(r.per_omega[1].eigenvalues, ck.per_omega[1].eigenvalues);
  EXPECT_EQ(r.stern.total_chunks, 11);
  EXPECT_EQ(r.stern.block_size_chunks, ck.stern.block_size_chunks);
  EXPECT_EQ(r.stern.quarantined_column_indices, (std::vector<long>{3, 7}));
  EXPECT_EQ(r.timers.get("nu_chi0"), 1.5);
  EXPECT_EQ(r.events.size(), 1u);
  ASSERT_EQ(r.v.rows(), 13u);
  ASSERT_EQ(r.v.cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 13; ++i) EXPECT_EQ(r.v(i, j), ck.v(i, j));
  EXPECT_TRUE(r.parallel);
  EXPECT_EQ(r.matmult_seconds, 0.5);
  EXPECT_EQ(r.error_checks, 9);
  EXPECT_EQ(r.rank_apply_seconds, ck.rank_apply_seconds);
  EXPECT_EQ(r.rank_error_seconds, ck.rank_error_seconds);
}

TEST_F(CheckpointTest, FingerprintSeparatesRunsThatMustNotResume) {
  auto& b = built();
  const rpa::RpaOptions opts = base_options();
  const std::uint64_t base = io::run_fingerprint(b.ks, opts, 0);
  EXPECT_EQ(io::run_fingerprint(b.ks, opts, 0), base);  // deterministic

  rpa::RpaOptions o2 = opts;
  o2.seed += 1;
  EXPECT_NE(io::run_fingerprint(b.ks, o2, 0), base);
  rpa::RpaOptions o3 = opts;
  o3.tol_eig[1] = 2.0000000001e-3;
  EXPECT_NE(io::run_fingerprint(b.ks, o3, 0), base);
  rpa::RpaOptions o4 = opts;
  o4.stern.tol *= 2;
  EXPECT_NE(io::run_fingerprint(b.ks, o4, 0), base);
  // Same options, different driver (serial vs 2 ranks).
  EXPECT_NE(io::run_fingerprint(b.ks, opts, 2), base);
  // The checkpoint policy itself must NOT move the fingerprint.
  rpa::RpaOptions o5 = opts;
  o5.checkpoint.path = "elsewhere.ckpt";
  o5.checkpoint.resume = true;
  o5.checkpoint.halt_after_point = 1;
  EXPECT_EQ(io::run_fingerprint(b.ks, o5, 0), base);
}

TEST_F(CheckpointTest, TruncatedAndCorruptFilesAreRefused) {
  io::RunCheckpoint ck;
  ck.fingerprint = 1;
  ck.completed_points = 1;
  ck.ell = 2;
  ck.rng_state = Rng(1).save_state();
  ck.per_omega.emplace_back();
  ck.v = la::Matrix<double>(5, 2);
  io::save_run_checkpoint(path("c.ckpt"), ck);
  ASSERT_NO_THROW(io::load_run_checkpoint(path("c.ckpt")));

  // Torn write simulation: cut the file before the trailer.
  const auto full = std::filesystem::file_size(path("c.ckpt"));
  std::filesystem::copy_file(path("c.ckpt"), path("cut.ckpt"));
  std::filesystem::resize_file(path("cut.ckpt"), full - 8);
  EXPECT_THROW(io::load_run_checkpoint(path("cut.ckpt")), Error);
  std::filesystem::copy_file(path("c.ckpt"), path("half.ckpt"));
  std::filesystem::resize_file(path("half.ckpt"), full / 2);
  EXPECT_THROW(io::load_run_checkpoint(path("half.ckpt")), Error);

  std::ofstream bad(path("bad.ckpt"), std::ios::binary);
  bad << "NOTACKPT" << std::string(64, '\0');
  bad.close();
  EXPECT_THROW(io::load_run_checkpoint(path("bad.ckpt")), Error);

  // Fingerprint mismatch.
  EXPECT_THROW(io::load_run_checkpoint(path("c.ckpt"), 999), Error);
}

// ---------------------------------------------------------------------------
// Serial driver: kill after each quadrature point, resume, compare bitwise.

TEST_F(CheckpointTest, SerialKillAndResumeIsBitwiseIdentical) {
  auto& b = built();
  const rpa::RpaResult straight =
      rpa::compute_rpa_energy(b.ks, *b.klap, base_options());
  ASSERT_TRUE(std::isfinite(straight.e_rpa));

  for (int halt : {0, 1, 2}) {
    SCOPED_TRACE("halt after point " + std::to_string(halt));
    const std::string ckpt = path("serial.ckpt");
    std::filesystem::remove(ckpt);

    obs::EventLog lifecycle;
    rpa::RpaOptions killed = base_options();
    killed.checkpoint.path = ckpt;
    killed.checkpoint.events = &lifecycle;
    killed.checkpoint.halt_after_point = halt;
    EXPECT_THROW(rpa::compute_rpa_energy(b.ks, *b.klap, killed),
                 rpa::RunHalted);
    EXPECT_EQ(lifecycle.count(obs::events::kCheckpointWritten),
              static_cast<std::size_t>(halt + 1));
    ASSERT_TRUE(std::filesystem::exists(ckpt));

    obs::EventLog resumed_lifecycle;
    rpa::RpaOptions resumed = base_options();
    resumed.checkpoint.path = ckpt;
    resumed.checkpoint.resume = true;
    resumed.checkpoint.events = &resumed_lifecycle;
    const rpa::RpaResult r = rpa::compute_rpa_energy(b.ks, *b.klap, resumed);

    EXPECT_EQ(resumed_lifecycle.count(obs::events::kRunResumed), 1u);
    EXPECT_EQ(resumed_lifecycle.count(obs::events::kCheckpointWritten),
              static_cast<std::size_t>(2 - halt));
    // The lifecycle events stay out of the result log — it is part of the
    // bitwise contract.
    EXPECT_EQ(r.events.count(obs::events::kCheckpointWritten), 0u);
    EXPECT_EQ(r.events.count(obs::events::kRunResumed), 0u);
    expect_bitwise_equal(straight, r);
  }
}

TEST_F(CheckpointTest, SerialResumeAcrossAFaultedPointIsBitwiseIdentical) {
  // The injected fault quarantines columns at point 0, which exercises the
  // warm-start reseed before the point-0 checkpoint is written; the resume
  // must replay none of it and still match the straight-through run.
  auto& b = built();
  rpa::RpaOptions faulted = base_options();
  add_point_fault(faulted);
  const rpa::RpaResult straight =
      rpa::compute_rpa_energy(b.ks, *b.klap, faulted);
  ASSERT_TRUE(straight.degraded);
  ASSERT_GE(straight.events.count(obs::events::kWarmStartReseed), 1u);

  rpa::RpaOptions killed = faulted;
  killed.checkpoint.path = path("faulted.ckpt");
  killed.checkpoint.halt_after_point = 0;
  EXPECT_THROW(rpa::compute_rpa_energy(b.ks, *b.klap, killed),
               rpa::RunHalted);

  rpa::RpaOptions resumed = faulted;
  resumed.checkpoint.path = path("faulted.ckpt");
  resumed.checkpoint.resume = true;
  const rpa::RpaResult r = rpa::compute_rpa_energy(b.ks, *b.klap, resumed);
  expect_bitwise_equal(straight, r);
  // Downstream of the reseed the run is clean again.
  EXPECT_EQ(r.per_omega[1].quarantined_columns, 0);
  EXPECT_EQ(r.per_omega[2].quarantined_columns, 0);
}

TEST_F(CheckpointTest, MissingFileWithResumeStartsFresh) {
  auto& b = built();
  const rpa::RpaResult straight =
      rpa::compute_rpa_energy(b.ks, *b.klap, base_options());

  obs::EventLog lifecycle;
  rpa::RpaOptions opts = base_options();
  opts.checkpoint.path = path("fresh.ckpt");
  opts.checkpoint.resume = true;  // no file yet: fresh run, no error
  opts.checkpoint.events = &lifecycle;
  const rpa::RpaResult r = rpa::compute_rpa_energy(b.ks, *b.klap, opts);

  EXPECT_EQ(lifecycle.count(obs::events::kRunResumed), 0u);
  EXPECT_EQ(lifecycle.count(obs::events::kCheckpointWritten), 3u);
  expect_bitwise_equal(straight, r);
}

TEST_F(CheckpointTest, ResumeRefusesAMismatchedConfiguration) {
  auto& b = built();
  rpa::RpaOptions killed = base_options();
  killed.checkpoint.path = path("m.ckpt");
  killed.checkpoint.halt_after_point = 0;
  EXPECT_THROW(rpa::compute_rpa_energy(b.ks, *b.klap, killed),
               rpa::RunHalted);

  // Different subspace seed -> different run: the fingerprint refuses.
  rpa::RpaOptions other = base_options();
  other.seed += 1;
  other.checkpoint.path = path("m.ckpt");
  other.checkpoint.resume = true;
  EXPECT_THROW(rpa::compute_rpa_energy(b.ks, *b.klap, other), Error);

  // A serial checkpoint cannot seed the parallel driver either (the rank
  // count is part of the fingerprint).
  par::ParallelRpaOptions popts;
  popts.rpa = base_options();
  popts.rpa.checkpoint.path = path("m.ckpt");
  popts.rpa.checkpoint.resume = true;
  popts.n_ranks = 2;
  EXPECT_THROW(par::run_parallel_rpa(b.ks, *b.klap, popts), Error);
}

// ---------------------------------------------------------------------------
// Parallel driver: the checkpoint is cut at the rank-merge barrier.

TEST_F(CheckpointTest, ParallelKillAndResumeIsBitwiseIdentical) {
  auto& b = built();
  par::ParallelRpaOptions base;
  base.rpa = base_options();
  base.n_ranks = 2;
  const par::ParallelRpaResult straight =
      par::run_parallel_rpa(b.ks, *b.klap, base);
  ASSERT_TRUE(std::isfinite(straight.rpa.e_rpa));

  for (int halt : {0, 1, 2}) {
    SCOPED_TRACE("halt after point " + std::to_string(halt));
    const std::string ckpt = path("par.ckpt");
    std::filesystem::remove(ckpt);

    par::ParallelRpaOptions killed = base;
    killed.rpa.checkpoint.path = ckpt;
    killed.rpa.checkpoint.halt_after_point = halt;
    EXPECT_THROW(par::run_parallel_rpa(b.ks, *b.klap, killed),
                 rpa::RunHalted);

    obs::EventLog lifecycle;
    par::ParallelRpaOptions resumed = base;
    resumed.rpa.checkpoint.path = ckpt;
    resumed.rpa.checkpoint.resume = true;
    resumed.rpa.checkpoint.events = &lifecycle;
    const par::ParallelRpaResult r =
        par::run_parallel_rpa(b.ks, *b.klap, resumed);

    EXPECT_EQ(lifecycle.count(obs::events::kRunResumed), 1u);
    expect_bitwise_equal(straight.rpa, r.rpa);
    EXPECT_EQ(strip_timing(obs::to_json(straight)).dump(),
              strip_timing(obs::to_json(r)).dump());
  }
}

}  // namespace
}  // namespace rsrpa
