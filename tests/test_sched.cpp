// Unit tests for the sched task-parallel runtime: thread-count
// resolution, inline (serial) mode, fork/join with exception
// propagation, parallel_for coverage, the bitwise determinism of
// parallel_reduce across thread counts, and pool statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sched/sched.hpp"

namespace rsrpa::sched {
namespace {

TEST(ParseThreads, AcceptsPositiveIntegers) {
  EXPECT_EQ(parse_threads("1"), 1);
  EXPECT_EQ(parse_threads("4"), 4);
  EXPECT_EQ(parse_threads("128"), 128);
}

TEST(ParseThreads, RejectsEverythingElse) {
  EXPECT_EQ(parse_threads(nullptr), 0);
  EXPECT_EQ(parse_threads(""), 0);
  EXPECT_EQ(parse_threads("0"), 0);
  EXPECT_EQ(parse_threads("-3"), 0);
  EXPECT_EQ(parse_threads("abc"), 0);
  EXPECT_EQ(parse_threads("4x"), 0);   // trailing garbage
  EXPECT_EQ(parse_threads(" 4"), 0);   // leading whitespace
  EXPECT_EQ(parse_threads("3.5"), 0);
}

TEST(ResolveThreads, ExplicitCountWins) {
  ::setenv("RSRPA_THREADS", "7", 1);
  SchedOptions opts;
  opts.threads = 3;
  EXPECT_EQ(resolve_threads(opts), 3);
  ::unsetenv("RSRPA_THREADS");
}

TEST(ResolveThreads, EnvironmentOverridesAuto) {
  ::setenv("RSRPA_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(SchedOptions{}), 5);
  ::setenv("RSRPA_THREADS", "garbage", 1);
  EXPECT_GE(resolve_threads(SchedOptions{}), 1);  // falls back to hardware
  ::unsetenv("RSRPA_THREADS");
}

TEST(ThreadPool, InlineModeRunsOnCallerInOrder) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.serial());
  EXPECT_EQ(pool.threads(), 1);

  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i)
    group.run([&order, caller, i] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);
    });
  // Inline mode: every task already ran at submission.
  EXPECT_EQ(group.pending(), 0);
  group.wait();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);

  const PoolStats s = pool.stats();
  EXPECT_EQ(s.threads, 1);
  EXPECT_EQ(s.tasks, 8);
  EXPECT_EQ(s.inline_tasks, 8);
  EXPECT_EQ(s.steals, 0);
}

TEST(ThreadPool, RunsEveryTaskConcurrently) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.serial());
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  TaskGroup group(pool);
  for (int i = 0; i < kTasks; ++i)
    group.run([&hits, i] { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  group.wait();
  for (int i = 0; i < kTasks; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.tasks, kTasks);
  EXPECT_EQ(s.threads, 4);
  EXPECT_EQ(s.worker_tasks.size(), 4u);
  long sum = 0;
  for (long t : s.worker_tasks) sum += t;
  EXPECT_EQ(sum, s.tasks);
}

TEST(TaskGroup, WaitRethrowsTaskException) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The error is consumed: a second wait() is clean.
  group.wait();
}

TEST(TaskGroup, InlineModeDefersExceptionToWait) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  bool later_ran = false;
  EXPECT_NO_THROW(group.run([] { throw std::runtime_error("boom"); }));
  // Tasks submitted after a failed one still execute (inline mode).
  group.run([&later_ran] { later_ran = true; });
  EXPECT_TRUE(later_ran);
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, NestsInsideWorkerTasks) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i)
    outer.run([&pool, &total] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) inner.run([&total] { total.fetch_add(1); });
      inner.wait();
    });
  outer.wait();
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, 7, [&hits](std::size_t i) { hits[i].fetch_add(1); },
               pool);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeAndZeroGrainAreSafe) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(5, 5, 4, [&calls](std::size_t) { ++calls; }, pool);
  EXPECT_EQ(calls, 0);
  // grain 0 is clamped to 1, not a division hazard.
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, 0, [&hits](std::size_t i) { hits[i].fetch_add(1); },
               pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForRange, ChunksAreDisjointAndGrainBounded) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 103, kGrain = 10;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_range(
      0, kN, kGrain,
      [&](std::size_t b, std::size_t e) {
        std::lock_guard<std::mutex> lk(mu);
        chunks.emplace_back(b, e);
      },
      pool);
  std::set<std::size_t> seen;
  for (const auto& [b, e] : chunks) {
    EXPECT_LE(e - b, kGrain);
    for (std::size_t i = b; i < e; ++i) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), kN);
}

// The centerpiece guarantee: the same (range, grain) reduces to the SAME
// BITS at every thread count, because the pairwise combine tree's shape
// depends only on the chunk count.
TEST(ParallelReduce, BitwiseIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 1013;
  std::vector<double> x(kN);
  double v = 1e-8;
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = (i % 3 == 0 ? v : -0.37 * v);
    v *= 1.07;  // spread magnitudes so addition order matters
  }
  auto reduce_with = [&x](int threads) {
    ThreadPool pool(threads);
    return parallel_reduce(
        std::size_t{0}, x.size(), std::size_t{16}, 0.0,
        [&x](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += x[i];
          return s;
        },
        [](double a, double b) { return a + b; }, pool);
  };
  const double serial = reduce_with(1);
  for (int threads : {2, 3, 5, 8}) {
    const double threaded = reduce_with(threads);
    EXPECT_EQ(std::memcmp(&serial, &threaded, sizeof(double)), 0)
        << "threads=" << threads << ": " << serial << " vs " << threaded;
  }
}

TEST(ParallelReduce, ExactOnIntegersAndEmptyRange) {
  ThreadPool pool(4);
  const long sum = parallel_reduce(
      std::size_t{0}, std::size_t{100}, std::size_t{9}, 0L,
      [](std::size_t b, std::size_t e) {
        long s = 0;
        for (std::size_t i = b; i < e; ++i) s += static_cast<long>(i);
        return s;
      },
      [](long a, long b) { return a + b; }, pool);
  EXPECT_EQ(sum, 4950);

  const long empty = parallel_reduce(
      std::size_t{10}, std::size_t{10}, std::size_t{4}, -1L,
      [](std::size_t, std::size_t) { return 99L; },
      [](long a, long b) { return a + b; }, pool);
  EXPECT_EQ(empty, -1);  // identity untouched
}

TEST(PoolStats, SinceSubtractsBaseline) {
  ThreadPool pool(1);
  TaskGroup g1(pool);
  for (int i = 0; i < 3; ++i) g1.run([] {});
  g1.wait();
  const PoolStats base = pool.stats();

  TaskGroup g2(pool);
  for (int i = 0; i < 2; ++i) g2.run([] {});
  g2.wait();
  const PoolStats delta = pool.stats().since(base);
  EXPECT_EQ(delta.tasks, 2);
  EXPECT_EQ(delta.inline_tasks, 2);

  // Lane-count mismatch: fall back to the full snapshot, never subtract
  // incompatible vectors.
  PoolStats other;
  other.threads = 99;
  const PoolStats fallback = pool.stats().since(other);
  EXPECT_EQ(fallback.tasks, 5);
}

TEST(PoolStats, ResetClearsCounters) {
  ThreadPool pool(2);
  TaskGroup g(pool);
  for (int i = 0; i < 10; ++i) g.run([] {});
  g.wait();
  EXPECT_EQ(pool.stats().tasks, 10);
  pool.reset_stats();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.tasks, 0);
  EXPECT_EQ(s.steals, 0);
  EXPECT_EQ(s.busy_seconds, 0.0);
}

TEST(GlobalPool, SetGlobalThreadsReconfigures) {
  set_global_threads(3);
  EXPECT_EQ(global_pool().threads(), 3);
  std::atomic<int> total{0};
  parallel_for(0, 50, 1, [&total](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 50);
  set_global_threads(1);
  EXPECT_TRUE(global_pool().serial());
}

}  // namespace
}  // namespace rsrpa::sched
