// Tests for the Kronecker spectral Laplacian and the Poisson solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "grid/stencil.hpp"
#include "poisson/cg_poisson.hpp"
#include "poisson/kronecker.hpp"

namespace rsrpa::poisson {
namespace {

using grid::Grid3D;
using grid::StencilLaplacian;

void fill_mean_free(Rng& rng, std::span<double> x) {
  rng.fill_uniform(x);
  double mean = std::accumulate(x.begin(), x.end(), 0.0) / double(x.size());
  for (double& v : x) v -= mean;
}

TEST(Kronecker, SpectralLaplacianMatchesStencil) {
  Grid3D g(6, 7, 8, 3.0, 3.5, 4.0);
  const int r = 3;
  StencilLaplacian lap(g, r);
  KroneckerLaplacian klap(g, r);
  Rng rng(41);
  std::vector<double> v(g.size()), a(g.size()), b(g.size());
  rng.fill_uniform(v);
  lap.apply<double>(v, a);
  klap.apply_laplacian(v, b);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(Kronecker, NuIsInverseOfNegLaplacianOverFourPi) {
  // nu(-L/(4 pi)) x = x for mean-free x.
  Grid3D g = Grid3D::cubic(8, 4.0);
  const int r = 2;
  StencilLaplacian lap(g, r);
  KroneckerLaplacian klap(g, r);
  Rng rng(42);
  std::vector<double> x(g.size()), lx(g.size()), rec(g.size());
  fill_mean_free(rng, x);
  lap.apply<double>(x, lx);
  for (double& v : lx) v *= -1.0 / (4.0 * M_PI);
  klap.apply_nu(lx, rec);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(rec[i], x[i], 1e-8);
}

TEST(Kronecker, NuSqrtSquaresToNu) {
  Grid3D g = Grid3D::cubic(7, 3.5);
  KroneckerLaplacian klap(g, 4);
  Rng rng(43);
  std::vector<double> x(g.size()), once(g.size()), twice(g.size()),
      direct(g.size());
  rng.fill_uniform(x);
  klap.apply_nu_sqrt(x, once);
  klap.apply_nu_sqrt(once, twice);
  klap.apply_nu(x, direct);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(twice[i], direct[i], 1e-9);
}

TEST(Kronecker, NuInvSqrtInvertsNuSqrtOnMeanFree) {
  Grid3D g = Grid3D::cubic(6, 3.0);
  KroneckerLaplacian klap(g, 2);
  Rng rng(44);
  std::vector<double> x(g.size()), y(g.size()), rec(g.size());
  fill_mean_free(rng, x);
  klap.apply_nu_sqrt(x, y);
  klap.apply_nu_inv_sqrt(y, rec);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(rec[i], x[i], 1e-9);
}

TEST(Kronecker, ZeroModeMapsToZero) {
  Grid3D g = Grid3D::cubic(5, 2.5);
  KroneckerLaplacian klap(g, 2);
  std::vector<double> ones(g.size(), 1.0), out(g.size());
  klap.apply_nu(ones, out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-10);
  klap.apply_nu_sqrt(ones, out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Kronecker, NuIsPositiveOnMeanFreeFunctions) {
  Grid3D g = Grid3D::cubic(6, 3.0);
  KroneckerLaplacian klap(g, 3);
  Rng rng(45);
  for (int t = 0; t < 5; ++t) {
    std::vector<double> x(g.size()), nx(g.size());
    fill_mean_free(rng, x);
    klap.apply_nu(x, nx);
    double quad = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) quad += x[i] * nx[i];
    EXPECT_GT(quad, 0.0);
  }
}

TEST(Kronecker, SpectrumBoundsAreConsistent) {
  Grid3D g = Grid3D::cubic(9, 4.5);
  StencilLaplacian lap(g, 6);
  KroneckerLaplacian klap(g, 6);
  EXPECT_GT(klap.neg_laplacian_max(), 0.0);
  EXPECT_GT(klap.neg_laplacian_min_nonzero(), 0.0);
  EXPECT_LT(klap.neg_laplacian_min_nonzero(), klap.neg_laplacian_max());
  // The symbol-based stencil bound must bracket the Kronecker max.
  EXPECT_LE(klap.neg_laplacian_max(), -lap.min_eigenvalue_bound() + 1e-9);
}

TEST(Kronecker, BlockApplyMatchesVectorApply) {
  Grid3D g = Grid3D::cubic(6, 3.0);
  KroneckerLaplacian klap(g, 2);
  Rng rng(46);
  la::Matrix<double> v(g.size(), 3);
  for (std::size_t j = 0; j < 3; ++j) rng.fill_uniform(v.col(j));
  la::Matrix<double> ref = v;
  klap.apply_nu_sqrt_block(v);
  std::vector<double> out(g.size());
  for (std::size_t j = 0; j < 3; ++j) {
    klap.apply_nu_sqrt(ref.col(j), out);
    for (std::size_t i = 0; i < g.size(); ++i)
      EXPECT_NEAR(v(i, j), out[i], 1e-12);
  }
}

TEST(PoissonCg, AgreesWithSpectralSolver) {
  Grid3D g = Grid3D::cubic(10, 5.0);
  const int r = 4;
  StencilLaplacian lap(g, r);
  KroneckerLaplacian klap(g, r);
  Rng rng(47);
  std::vector<double> rho(g.size()), phi_cg(g.size()), phi_sp(g.size());
  fill_mean_free(rng, rho);
  PoissonCgReport rep = solve_poisson_cg(lap, rho, phi_cg, 1e-12);
  EXPECT_TRUE(rep.converged);
  klap.solve_poisson(rho, phi_sp);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(phi_cg[i], phi_sp[i], 1e-7);
}

TEST(PoissonCg, SolvesGaussianChargePair) {
  // A +/- Gaussian charge pair: check the residual of the PDE directly.
  Grid3D g = Grid3D::cubic(14, 7.0);
  StencilLaplacian lap(g, 4);
  std::vector<double> rho(g.size());
  const double s2 = 0.5;
  for (std::size_t iz = 0; iz < g.nz(); ++iz)
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        auto p = g.coords(ix, iy, iz);
        auto gauss = [&](double cx, double cy, double cz) {
          const double dx = Grid3D::min_image(p[0] - cx, g.lx());
          const double dy = Grid3D::min_image(p[1] - cy, g.ly());
          const double dz = Grid3D::min_image(p[2] - cz, g.lz());
          return std::exp(-(dx * dx + dy * dy + dz * dz) / (2 * s2));
        };
        rho[g.index(ix, iy, iz)] = gauss(1.75, 3.5, 3.5) - gauss(5.25, 3.5, 3.5);
      }
  std::vector<double> phi(g.size()), lphi(g.size());
  PoissonCgReport rep = solve_poisson_cg(lap, rho, phi, 1e-11);
  EXPECT_TRUE(rep.converged);
  lap.apply<double>(phi, lphi);
  // -L phi should reproduce 4 pi rho (rho here is already mean-free up to
  // symmetry; allow a loose absolute tolerance for the projected mean).
  double mean_rho = std::accumulate(rho.begin(), rho.end(), 0.0) / double(g.size());
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(-lphi[i], 4 * M_PI * (rho[i] - mean_rho), 1e-6);
}

TEST(PoissonCg, ZeroDensityGivesZeroPotential) {
  Grid3D g = Grid3D::cubic(6, 3.0);
  StencilLaplacian lap(g, 2);
  std::vector<double> rho(g.size(), 0.0), phi(g.size(), 1.0);
  PoissonCgReport rep = solve_poisson_cg(lap, rho, phi);
  EXPECT_TRUE(rep.converged);
  for (double v : phi) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace rsrpa::poisson
