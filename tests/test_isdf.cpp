// ISDF backend suite: interpolation-point selection, the compressed
// nu^{1/2} chi0 nu^{1/2} spectrum against the dense-direct oracle,
// run-report/observability integration, cooperative cancel, and the
// cross-driver result invariants all four backends must satisfy.
// Labeled `isdf` so it can be run alone under -DRSRPA_SANITIZE=address/
// thread builds: ctest -L isdf.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/config.hpp"
#include "direct/direct_rpa.hpp"
#include "direct/dense.hpp"
#include "isdf/compressed.hpp"
#include "isdf/erpa_isdf.hpp"
#include "isdf/fit.hpp"
#include "isdf/points.hpp"
#include "obs/run_report.hpp"
#include "rpa/presets.hpp"
#include "sched/thread_pool.hpp"
#include "svc/driver.hpp"
#include "svc/job.hpp"

namespace rsrpa {
namespace {

// Small enough for a fast full diagonalization (n_d = 125, n_occ = 16),
// large enough that the pair space has real numerical structure.
rpa::BuiltSystem tiny_system() {
  rpa::SystemPreset p = rpa::make_si_preset(1, /*paper_scale=*/false);
  p.grid_per_cell = 5;
  p.fd_radius = 2;
  p.n_eig_per_atom = 2;  // n_eig = 16
  return rpa::build_system(p);
}

class IsdfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { sys_ = new rpa::BuiltSystem(tiny_system()); }
  static void TearDownTestSuite() {
    delete sys_;
    sys_ = nullptr;
  }
  static rpa::BuiltSystem* sys_;
};

rpa::BuiltSystem* IsdfTest::sys_ = nullptr;

TEST_F(IsdfTest, VirtualPairWeightsAreFiniteAndPositive) {
  const la::EigResult eig = direct::full_diagonalization(*sys_->h);
  const std::size_t n_occ = sys_->ks.n_occ();
  std::vector<double> v = isdf::virtual_pair_weights(eig.values, n_occ, 0.05);
  ASSERT_EQ(v.size(), eig.values.size() - n_occ);
  for (double w : v) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GT(w, 0.0);  // all virtuals sit above the occupied mean here
  }
}

TEST_F(IsdfTest, SelectionIsDeterministicAndValid) {
  const la::EigResult eig = direct::full_diagonalization(*sys_->h);
  const std::size_t n_occ = sys_->ks.n_occ();
  const std::size_t n_d = sys_->ks.n_grid();
  std::vector<double> v = isdf::virtual_pair_weights(eig.values, n_occ, 0.05);

  isdf::PointSelection a =
      isdf::select_interpolation_points(eig, n_occ, v, 40, 4, Rng(123));
  isdf::PointSelection b =
      isdf::select_interpolation_points(eig, n_occ, v, 40, 4, Rng(123));
  EXPECT_EQ(a.points, b.points);

  ASSERT_EQ(a.points.size(), 40u);
  std::vector<bool> seen(n_d, false);
  for (std::size_t p : a.points) {
    ASSERT_LT(p, n_d);
    EXPECT_FALSE(seen[p]) << "duplicate interpolation point " << p;
    seen[p] = true;
  }
  ASSERT_EQ(a.r_diag.size(), 40u);
  for (std::size_t i = 1; i < a.r_diag.size(); ++i)
    EXPECT_LE(a.r_diag[i], a.r_diag[i - 1] + 1e-14);
}

TEST_F(IsdfTest, EnergyBitwiseStableAcrossThreadCounts) {
  isdf::IsdfRpaOptions opts;
  opts.ell = 2;
  opts.nip = 60;

  sched::set_global_threads(1);
  isdf::IsdfRpaResult serial =
      isdf::compute_rpa_energy_isdf(sys_->ks, *sys_->klap, opts);
  sched::set_global_threads(4);
  isdf::IsdfRpaResult threaded =
      isdf::compute_rpa_energy_isdf(sys_->ks, *sys_->klap, opts);
  sched::set_global_threads(0);

  EXPECT_EQ(serial.points, threaded.points);
  EXPECT_EQ(serial.e_rpa, threaded.e_rpa);
  EXPECT_EQ(serial.e_rpa_per_atom, threaded.e_rpa_per_atom);
}

TEST_F(IsdfTest, FullRankFullTraceMatchesDirect) {
  const std::size_t n_d = sys_->ks.n_grid();
  direct::DirectRpaResult dres = direct::compute_direct_rpa(
      *sys_->h, sys_->ks.n_occ(), *sys_->klap, 4, false, /*n_keep=*/0);

  isdf::IsdfRpaOptions opts;
  opts.ell = 4;
  opts.nip = n_d;  // no compression: the interpolation basis is complete
  opts.n_eig = 0;  // full trace
  isdf::IsdfRpaResult ires =
      isdf::compute_rpa_energy_isdf(sys_->ks, *sys_->klap, opts);

  EXPECT_TRUE(ires.converged);
  EXPECT_NEAR(ires.e_rpa_per_atom, dres.e_rpa_per_atom, 5e-6);
}

TEST_F(IsdfTest, TruncatedTraceMatchesDirectTruncated) {
  const std::size_t n_d = sys_->ks.n_grid();
  const std::size_t n_keep = 16;
  direct::DirectRpaResult dres = direct::compute_direct_rpa(
      *sys_->h, sys_->ks.n_occ(), *sys_->klap, 4, false, n_keep);

  isdf::IsdfRpaOptions opts;
  opts.ell = 4;
  opts.nip = n_d;
  opts.n_eig = n_keep;
  isdf::IsdfRpaResult ires =
      isdf::compute_rpa_energy_isdf(sys_->ks, *sys_->klap, opts);

  EXPECT_EQ(ires.n_eig, n_keep);
  EXPECT_NEAR(ires.e_rpa_per_atom, dres.e_rpa_per_atom, 5e-6);
}

TEST_F(IsdfTest, EnergyConvergesWithNip) {
  direct::DirectRpaResult dres = direct::compute_direct_rpa(
      *sys_->h, sys_->ks.n_occ(), *sys_->klap, 2, false, /*n_keep=*/0);

  auto gap_at = [&](std::size_t nip) {
    isdf::IsdfRpaOptions opts;
    opts.ell = 2;
    opts.nip = nip;
    isdf::IsdfRpaResult r =
        isdf::compute_rpa_energy_isdf(sys_->ks, *sys_->klap, opts);
    return std::abs(r.e_rpa_per_atom - dres.e_rpa_per_atom);
  };

  const double coarse = gap_at(40);
  const double fine = gap_at(120);
  EXPECT_LT(fine, coarse + 1e-12);
  EXPECT_LT(fine, 1e-3);  // nip = 120 of n_d = 125 is near-exact
}

TEST_F(IsdfTest, RunReportJsonCarriesStandardFields) {
  isdf::IsdfRpaOptions opts;
  opts.ell = 3;
  opts.nip = 50;
  isdf::IsdfRpaResult res =
      isdf::compute_rpa_energy_isdf(sys_->ks, *sys_->klap, opts);

  obs::Json j = obs::to_json(res);
  ASSERT_NE(j.find("e_rpa"), nullptr);
  ASSERT_NE(j.find("e_rpa_per_atom"), nullptr);
  EXPECT_EQ(j.at("e_rpa").as_double(), res.e_rpa);
  EXPECT_EQ(static_cast<std::size_t>(j.at("nip").as_int()), res.nip);
  ASSERT_NE(j.find("per_omega"), nullptr);
  EXPECT_EQ(j.at("per_omega").as_array().size(), 3u);
  // Every omega row must carry the standard telemetry the obs tooling
  // consumes: trace term, wall seconds, modeled flops/bytes.
  for (const obs::Json& row : j.at("per_omega").as_array()) {
    ASSERT_NE(row.find("e_term"), nullptr);
    ASSERT_NE(row.find("seconds"), nullptr);
    EXPECT_GT(row.at("matvec_flops").as_double(), 0.0);
    EXPECT_GT(row.at("matvec_bytes").as_double(), 0.0);
  }
  ASSERT_NE(j.find("timers"), nullptr);
  ASSERT_NE(j.at("timers").find(isdf::kernels::kAssemble), nullptr);
  // The selection event ships in the log.
  ASSERT_NE(j.find("events"), nullptr);
  bool saw_selected = false;
  for (const obs::Json& ev : j.at("events").as_array())
    if (ev.at("kind").as_string() == obs::events::kIsdfPointsSelected)
      saw_selected = true;
  EXPECT_TRUE(saw_selected);
}

TEST_F(IsdfTest, PreCancelledRunStopsAtFirstBoundary) {
  rpa::RunControl control;
  control.request_cancel();
  isdf::IsdfRpaOptions opts;
  opts.ell = 2;
  opts.nip = 40;
  opts.control = &control;
  EXPECT_THROW(isdf::compute_rpa_energy_isdf(sys_->ks, *sys_->klap, opts),
               rpa::RunCancelled);
}

// Satellite: every backend's result must satisfy the same bookkeeping
// invariants — per-atom energy consistent with the total, one row per
// quadrature point, positive wall time — so downstream tooling can treat
// the four report shapes uniformly.
TEST(CrossDriver, ResultInvariantsHoldForAllFourMethods) {
  const char* methods[] = {"sternheimer", "direct", "isdf", "slq"};
  for (const char* m : methods) {
    SCOPED_TRACE(m);
    std::string cfg;
    cfg += "GRID_PER_CELL: 5\n";
    cfg += "FD_RADIUS: 2\n";
    cfg += "N_EIG_PER_ATOM: 2\n";
    cfg += "N_NUCHI_EIGS: 16\n";
    cfg += "N_OMEGA: 2\n";
    cfg += "METHOD: ";
    cfg += m;
    cfg += "\n";
    const svc::JobSpec spec = svc::parse_job(Config::parse(cfg));
    rpa::BuiltSystem sys = rpa::build_system(spec.preset);
    svc::DriverRun run = svc::run_driver(spec, sys, spec.options, nullptr);

    EXPECT_EQ(run.method, svc::method_from_string(m));
    EXPECT_TRUE(std::isfinite(run.e_rpa));
    EXPECT_LT(run.e_rpa, 0.0);  // correlation energy is negative
    const double n_atoms = static_cast<double>(spec.preset.n_atoms());
    EXPECT_NEAR(run.e_rpa_per_atom * n_atoms, run.e_rpa,
                1e-12 * std::abs(run.e_rpa));
    EXPECT_EQ(run.per_omega.size(), 2u);
    for (const svc::DriverOmegaRow& row : run.per_omega) {
      EXPECT_GT(row.omega, 0.0);
      EXPECT_TRUE(std::isfinite(row.e_term));
    }
    EXPECT_GT(run.total_seconds, 0.0);
    // The structured payload lands under the standard scalar names.
    ASSERT_NE(run.report.find("e_rpa"), nullptr);
    ASSERT_NE(run.report.find("e_rpa_per_atom"), nullptr);
    EXPECT_NEAR(run.report.at("e_rpa").as_double(), run.e_rpa, 0.0);
    ASSERT_NE(run.report.find("total_seconds"), nullptr);
    EXPECT_GT(run.report.at("total_seconds").as_double(), 0.0);
  }
}

}  // namespace
}  // namespace rsrpa
