// Tests for the observability layer: the JSON document type (dump/parse
// round trips), the event log serialization, the telemetry-struct
// serializers of run_report, and the file writer the benches use.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/blas.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "solver/dynamic_block.hpp"

namespace rsrpa::obs {
namespace {

// ----- Json value semantics and dump -----

TEST(Json, ScalarTypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_EQ(Json(-7L).as_int(), -7);
  EXPECT_DOUBLE_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json(3).as_double(), 3.0);  // int promotes
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_THROW((void)Json(1).as_string(), Error);
  EXPECT_THROW((void)Json("x").as_int(), Error);
}

TEST(Json, DumpCompactForms) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
  Json obj = Json::object();
  obj["a"] = 1;
  obj["b"] = Json::array();
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[]}");
}

TEST(Json, DoublesDumpAsValidJsonNumbers) {
  // A whole-valued double must keep a decimal marker so it parses back as
  // a double, and non-finite values must become null (JSON has no NaN).
  EXPECT_EQ(Json(1.0).dump(), "1.0");
  Json back = Json::parse(Json(0.1).dump());
  EXPECT_DOUBLE_EQ(back.as_double(), 0.1);
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj["z"] = 1;
  obj["a"] = 2;
  obj["m"] = 3;
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  obj["a"] = 9;  // overwrite keeps position
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(Json, FindAndAt) {
  Json obj = Json::object();
  obj["x"] = 5;
  ASSERT_NE(obj.find("x"), nullptr);
  EXPECT_EQ(obj.find("x")->as_int(), 5);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_EQ(obj.at("x").as_int(), 5);
  EXPECT_THROW((void)obj.at("missing"), Error);
  EXPECT_EQ(Json(3).find("x"), nullptr);  // non-object: no match, no throw
}

// ----- Parse and round trip -----

TEST(Json, ParsesNestedDocument) {
  const Json j = Json::parse(
      R"({"name":"run","n":3,"ok":true,"x":null,)"
      R"("arr":[1,2.5,"s",[],{}],"nested":{"k":-7}})");
  EXPECT_EQ(j.at("name").as_string(), "run");
  EXPECT_EQ(j.at("n").as_int(), 3);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_TRUE(j.at("x").is_null());
  ASSERT_EQ(j.at("arr").size(), 5u);
  EXPECT_DOUBLE_EQ(j.at("arr").as_array()[1].as_double(), 2.5);
  EXPECT_EQ(j.at("nested").at("k").as_int(), -7);
}

TEST(Json, RoundTripsThroughDumpAndParse) {
  Json j = Json::object();
  j["text"] = "tab\there \"quoted\" \\ backslash\nnewline";
  j["control"] = std::string("a\x01z");
  j["big"] = 123456789012345LL;
  j["neg"] = -2.5e-300;
  Json arr = Json::array();
  for (int i = 0; i < 5; ++i) arr.push_back(i * 1.1);
  j["arr"] = std::move(arr);

  for (int indent : {-1, 0, 2}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back.dump(), j.dump()) << "indent=" << indent;
  }
}

TEST(Json, ParsesUnicodeEscapes) {
  const Json j = Json::parse(R"("aAé✓")");
  EXPECT_EQ(j.as_string(), "aA\xc3\xa9\xe2\x9c\x93");  // A, e-acute, checkmark
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":}"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);     // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("{'a':1}"), Error);  // single quotes
}

TEST(Json, FileWriterRoundTrips) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rsrpa_obs_test" / "nested";
  const fs::path path = dir / "report.json";
  fs::remove_all(dir.parent_path());

  Json j = Json::object();
  j["alpha"] = 1;
  j["beta"] = Json::array();
  j["beta"].push_back(2.5);
  write_json_file(path.string(), j);  // creates parent directories
  const Json back = read_json_file(path.string());
  EXPECT_EQ(back.dump(), j.dump());
  fs::remove_all(dir.parent_path());

  EXPECT_THROW(read_json_file("/nonexistent/nope.json"), Error);
}

// ----- EventLog -----

TEST(EventLog, EmitCountAndMerge) {
  EventLog log;
  EXPECT_TRUE(log.empty());
  log.emit(events::kSingleColumnFallback, "breakdown", {{"position", 3}});
  log.emit(events::kEigensolveCollapse, "", {{"omega", 0.02}});
  log.emit(events::kSingleColumnFallback, "again");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(events::kSingleColumnFallback), 2u);
  EXPECT_EQ(log.count(events::kTraceTermDomain), 0u);

  EventLog other;
  other.emit(events::kTraceTermDomain, "mu >= 1", {{"mu", 1.5}});
  log.merge(other);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.count(events::kTraceTermDomain), 1u);
}

TEST(EventLog, RoundTripsThroughJson) {
  EventLog log;
  log.emit(events::kSingleColumnFallback, "mu pivot 1e-17",
           {{"position", 4}, {"block_size", 8}});
  log.emit(events::kTraceTermDomain, "ln(1 - mu) undefined",
           {{"omega_index", 7}, {"mu", 1.25}});

  const Json j = to_json(log);
  const EventLog back = event_log_from_json(Json::parse(j.dump(2)));
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    const Event& a = log.events()[i];
    const Event& b = back.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.detail, b.detail);
    ASSERT_EQ(a.fields.size(), b.fields.size());
    for (std::size_t f = 0; f < a.fields.size(); ++f) {
      EXPECT_EQ(a.fields[f].first, b.fields[f].first);
      EXPECT_DOUBLE_EQ(a.fields[f].second, b.fields[f].second);
    }
  }
}

// ----- Telemetry-struct serializers -----

TEST(RunReport, KernelTimersSerialize) {
  KernelTimers t;
  t.add("nu_chi0", 1.5);
  t.add("matmult", 0.25);
  t.add("nu_chi0", 0.5);
  const Json j = to_json(t);
  EXPECT_DOUBLE_EQ(j.at("nu_chi0").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(j.at("matmult").as_double(), 0.25);
}

TEST(RunReport, SolveReportSerializesHistory) {
  solver::SolveReport rep;
  rep.iterations = 12;
  rep.relative_residual = 3e-11;
  rep.converged = true;
  rep.matvec_columns = 48;
  rep.history = {1.0, 0.1, 3e-11};
  const Json j = Json::parse(to_json(rep).dump());
  EXPECT_EQ(j.at("iterations").as_int(), 12);
  EXPECT_EQ(j.at("matvec_columns").as_int(), 48);
  EXPECT_TRUE(j.at("converged").as_bool());
  ASSERT_EQ(j.at("history").size(), 3u);
  EXPECT_DOUBLE_EQ(j.at("history").as_array()[2].as_double(), 3e-11);
}

// The ISSUE's acceptance case: a dynamic-block run with a real recovery
// (the ladder deflating a rank-deficient block), its histogram, and its
// events, all surviving the writer -> parser round trip.
TEST(RunReport, DynamicBlockReportAndEventsRoundTripThroughWriter) {
  Rng rng(4);
  const std::size_t n = 30;
  la::Matrix<la::cplx> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const la::cplx v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a(i, j) = v;
      a(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) a(i, i) += la::cplx{5.0, 1.0};

  la::Matrix<la::cplx> b(n, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < n; ++i)
      b(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (std::size_t i = 0; i < n; ++i) b(i, 3) = b(i, 2);  // force breakdown

  la::Matrix<la::cplx> y(n, 4);
  solver::DynamicBlockOptions opts;
  opts.enabled = false;
  opts.fixed_block = 4;
  EventLog elog;
  opts.events = &elog;
  const solver::BlockOpC op = [&a](const la::Matrix<la::cplx>& in,
                                   la::Matrix<la::cplx>& out) {
    la::gemm_nn(la::cplx{1}, a, in, la::cplx{0}, out);
  };
  const solver::DynamicBlockReport rep =
      solver::solve_dynamic_block(op, b, y, opts);
  // Full block deflates to halves, the duplicate pair deflates to singles.
  ASSERT_EQ(elog.count(events::kBlockDeflation), 2u);

  RunReport report("dynamic_block_roundtrip");
  report.set("solve", to_json(rep));
  report.set("events", to_json(elog));

  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "rsrpa_obs_test_report.json";
  report.write(path.string());
  const Json back = read_json_file(path.string());
  fs::remove(path);

  EXPECT_EQ(back.at("schema").as_string(), kRunReportSchema);
  EXPECT_EQ(back.at("name").as_string(), "dynamic_block_roundtrip");

  // The serialized histogram must agree with block_size_counts().
  const Json& hist = back.at("solve").at("block_size_counts");
  const auto counts = rep.block_size_counts();
  EXPECT_EQ(hist.as_object().size(), counts.size());
  for (const auto& [size, count] : counts)
    EXPECT_EQ(hist.at(std::to_string(size)).as_int(), count);
  EXPECT_EQ(back.at("solve").at("fallback_chunks").as_int(), 1);
  EXPECT_EQ(back.at("solve").at("total_matvec_columns").as_int(),
            rep.total_matvec_columns);
  EXPECT_EQ(back.at("solve").at("total_deflations").as_int(), 2);
  EXPECT_EQ(back.at("solve").at("total_restarts").as_int(), 0);
  EXPECT_EQ(back.at("solve").at("quarantined_columns").as_array().size(), 0u);

  // And the recovery events come back intact.
  const EventLog back_events = event_log_from_json(back.at("events"));
  ASSERT_EQ(back_events.count(events::kBlockDeflation), 2u);
  for (const Event& e : back_events.events()) {
    if (e.kind != events::kBlockDeflation) continue;
    EXPECT_EQ(e.fields[1].first, "block_size");
    EXPECT_DOUBLE_EQ(e.fields[1].second, 4.0);
    break;
  }
}

TEST(RunReport, OmegaRecordReportsDomainViolations) {
  rpa::OmegaRecord rec;
  rec.omega = 0.02;
  rec.weight = 0.053;
  rec.e_term = -0.5;
  rec.converged = false;
  rec.invalid_terms = 2;
  rec.worst_mu = 1.7;
  rec.eigenvalues = {-3.0, -1.0};
  const Json j = Json::parse(to_json(rec).dump());
  EXPECT_EQ(j.at("invalid_terms").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("worst_mu").as_double(), 1.7);
  EXPECT_FALSE(j.at("converged").as_bool());

  // A clean record omits the violation fields entirely.
  rpa::OmegaRecord clean;
  clean.converged = true;
  const Json cj = to_json(clean);
  EXPECT_EQ(cj.find("invalid_terms"), nullptr);
  EXPECT_EQ(cj.find("worst_mu"), nullptr);
}

TEST(RunReport, RpaResultSerializesAllSections) {
  rpa::RpaResult res;
  res.e_rpa = -1.25;
  res.e_rpa_per_atom = -0.15625;
  res.converged = true;
  res.total_seconds = 4.2;
  rpa::OmegaRecord rec;
  rec.omega = 49.36;
  rec.filter_iterations = 3;
  rec.eigenvalues = {-0.5};
  res.per_omega.push_back(rec);
  res.timers.add(rpa::kernels::kNuChi0, 3.0);
  res.stern.matvec_columns = 1234;
  res.events.emit(events::kEigensolveCollapse, "", {{"omega", 49.36}});

  const Json j = Json::parse(to_json(res).dump(2));
  EXPECT_DOUBLE_EQ(j.at("e_rpa").as_double(), -1.25);
  ASSERT_EQ(j.at("per_omega").size(), 1u);
  EXPECT_EQ(j.at("per_omega").as_array()[0].at("filter_iterations").as_int(),
            3);
  EXPECT_EQ(j.at("sternheimer").at("matvec_columns").as_int(), 1234);
  EXPECT_DOUBLE_EQ(j.at("timers").at(rpa::kernels::kNuChi0).as_double(), 3.0);
  EXPECT_EQ(j.at("events").size(), 1u);
}

TEST(RunReport, ParallelResultCarriesPerRankTimers) {
  par::ParallelRpaResult res;
  res.n_ranks = 2;
  res.rank_apply_seconds = {1.0, 2.0};
  res.rank_error_seconds = {0.25, 0.5};
  res.modeled.nu_chi0 = 2.0;
  res.modeled.eval_error = 0.5;
  const Json j = Json::parse(to_json(res).dump());
  ASSERT_EQ(j.at("ranks").size(), 2u);
  const Json& r1 = j.at("ranks").as_array()[1];
  EXPECT_EQ(r1.at("rank").as_int(), 1);
  EXPECT_DOUBLE_EQ(
      r1.at("timers").at(rpa::kernels::kNuChi0).as_double(), 2.0);
  EXPECT_DOUBLE_EQ(
      r1.at("timers").at(rpa::kernels::kEvalError).as_double(), 0.5);
  EXPECT_DOUBLE_EQ(j.at("modeled").at("total").as_double(), 2.5);
}

}  // namespace
}  // namespace rsrpa::obs
