// Tests for the crystal builder, model potential, nonlocal projectors and
// Hamiltonian applies.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "la/blas.hpp"

namespace rsrpa::ham {
namespace {

using grid::Grid3D;

Crystal unperturbed_si8() {
  Rng rng(0);
  return make_silicon_chain(1, 0.0, rng);
}

TEST(Crystal, Si8HasEightAtomsSixteenBonds) {
  Crystal c = unperturbed_si8();
  EXPECT_EQ(c.n_atoms(), 8u);
  // Diamond: 4 bonds per atom, each shared by two atoms.
  EXPECT_EQ(c.bonds().size(), 16u);
  EXPECT_EQ(c.n_occupied(), 16u);
}

TEST(Crystal, ChainReplicatesAlongZ) {
  Rng rng(1);
  Crystal c = make_silicon_chain(3, 0.0, rng);
  EXPECT_EQ(c.n_atoms(), 24u);
  EXPECT_EQ(c.bonds().size(), 48u);
  EXPECT_DOUBLE_EQ(c.lz(), 3.0 * kSiLatticeConstant);
  EXPECT_DOUBLE_EQ(c.lx(), kSiLatticeConstant);
}

TEST(Crystal, BondLengthsAreNearIdeal) {
  Crystal c = unperturbed_si8();
  const double ideal = diamond_nn_distance(kSiLatticeConstant);
  for (const Bond& b : c.bonds()) {
    const double dx =
        Grid3D::min_image(c.atoms()[b.a].pos[0] - c.atoms()[b.b].pos[0], c.lx());
    const double dy =
        Grid3D::min_image(c.atoms()[b.a].pos[1] - c.atoms()[b.b].pos[1], c.ly());
    const double dz =
        Grid3D::min_image(c.atoms()[b.a].pos[2] - c.atoms()[b.b].pos[2], c.lz());
    EXPECT_NEAR(std::sqrt(dx * dx + dy * dy + dz * dz), ideal, 1e-9);
  }
}

TEST(Crystal, PerturbationMovesAtomsButKeepsTopology) {
  Rng rng(2);
  Crystal c = make_silicon_chain(1, 0.02, rng);
  EXPECT_EQ(c.n_atoms(), 8u);
  EXPECT_EQ(c.bonds().size(), 16u);  // 2% of a is far below bond tolerance
  Rng rng2(2);
  Crystal ref = make_silicon_chain(1, 0.0, rng2);
  double total_shift = 0.0;
  for (std::size_t i = 0; i < 8; ++i)
    for (int d = 0; d < 3; ++d)
      total_shift += std::abs(c.atoms()[i].pos[d] - ref.atoms()[i].pos[d]);
  EXPECT_GT(total_shift, 0.0);
}

TEST(Crystal, RemoveAtomCreatesVacancy) {
  Crystal c = unperturbed_si8();
  c.remove_atom(4);
  c.rebuild_bonds(diamond_nn_distance(kSiLatticeConstant));
  EXPECT_EQ(c.n_atoms(), 7u);
  EXPECT_EQ(c.n_occupied(), 14u);
  EXPECT_EQ(c.bonds().size(), 12u);  // the removed atom had 4 bonds
}

TEST(Potential, IsNegativeAndDeepestNearBonds) {
  Grid3D g = Grid3D::cubic(15, kSiLatticeConstant);
  Crystal c = unperturbed_si8();
  ModelParams p;
  const std::vector<double> v = build_local_potential(g, c, p);
  double vmin = 0.0;
  for (double x : v) {
    EXPECT_LE(x, 1e-12);
    vmin = std::min(vmin, x);
  }
  EXPECT_LT(vmin, -p.v_bond * 0.5);
}

TEST(Nonlocal, ProjectorTermIsSymmetricPsd) {
  Grid3D g = Grid3D::cubic(12, kSiLatticeConstant);
  Crystal c = unperturbed_si8();
  ModelParams p;
  NonlocalProjectors nl(g, c, p);
  EXPECT_EQ(nl.n_projectors(), 8u);
  Rng rng(21);
  std::vector<double> u(g.size()), v(g.size());
  rng.fill_uniform(u);
  rng.fill_uniform(v);
  std::vector<double> nu(g.size(), 0.0), nv(g.size(), 0.0);
  nl.apply_add<double>(u, nu);
  nl.apply_add<double>(v, nv);
  // Symmetry: <u, N v> = <v, N u>; positivity: <u, N u> >= 0.
  EXPECT_NEAR(la::dot(u, nv), la::dot(v, nu), 1e-10 * std::abs(la::dot(u, nv)) + 1e-12);
  EXPECT_GE(la::dot(u, nu), 0.0);
}

TEST(Nonlocal, OperatorNormBoundsRayleighQuotients) {
  Grid3D g = Grid3D::cubic(12, kSiLatticeConstant);
  Crystal c = unperturbed_si8();
  ModelParams p;
  NonlocalProjectors nl(g, c, p);
  const double norm = nl.operator_norm();
  EXPECT_GT(norm, 0.0);
  EXPECT_LE(norm, p.proj_gamma * 8.0 + 1e-9);
  Rng rng(22);
  for (int t = 0; t < 5; ++t) {
    std::vector<double> u(g.size()), nu(g.size(), 0.0);
    rng.fill_uniform(u);
    nl.apply_add<double>(u, nu);
    EXPECT_LE(la::dot(u, nu) / la::dot(u, u), norm + 1e-9);
  }
}

TEST(Nonlocal, ZeroGammaIsNoOp) {
  Grid3D g = Grid3D::cubic(10, kSiLatticeConstant);
  Crystal c = unperturbed_si8();
  ModelParams p;
  p.proj_gamma = 0.0;
  NonlocalProjectors nl(g, c, p);
  EXPECT_EQ(nl.n_projectors(), 0u);
  EXPECT_DOUBLE_EQ(nl.operator_norm(), 0.0);
}

TEST(Hamiltonian, IsSymmetric) {
  Grid3D g = Grid3D::cubic(11, kSiLatticeConstant);
  Hamiltonian h(g, 4, unperturbed_si8(), ModelParams{});
  Rng rng(23);
  std::vector<double> u(g.size()), v(g.size()), hu(g.size()), hv(g.size());
  rng.fill_uniform(u);
  rng.fill_uniform(v);
  h.apply<double>(u, hu);
  h.apply<double>(v, hv);
  EXPECT_NEAR(la::dot(u, hv), la::dot(v, hu),
              1e-10 * std::abs(la::dot(u, hv)));
}

TEST(Hamiltonian, BoundsContainRayleighQuotients) {
  Grid3D g = Grid3D::cubic(11, kSiLatticeConstant);
  Hamiltonian h(g, 4, unperturbed_si8(), ModelParams{});
  Rng rng(24);
  for (int t = 0; t < 8; ++t) {
    std::vector<double> u(g.size()), hu(g.size());
    rng.fill_uniform(u);
    h.apply<double>(u, hu);
    const double rq = la::dot(u, hu) / la::dot(u, u);
    EXPECT_GE(rq, h.lower_bound() - 1e-9);
    EXPECT_LE(rq, h.upper_bound() + 1e-9);
  }
}

TEST(Hamiltonian, ShiftedApplyMatchesDefinition) {
  Grid3D g = Grid3D::cubic(9, kSiLatticeConstant);
  Hamiltonian h(g, 3, unperturbed_si8(), ModelParams{});
  Rng rng(25);
  la::Matrix<la::cplx> in(g.size(), 2), out(g.size(), 2), href(g.size(), 2);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < g.size(); ++i)
      in(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const double lambda = -0.3, omega = 0.7;
  h.apply_shifted_block(in, out, lambda, omega);
  h.apply_block<la::cplx>(in, href);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < g.size(); ++i) {
      const la::cplx expect =
          href(i, j) + la::cplx{-lambda, omega} * in(i, j);
      EXPECT_NEAR(std::abs(out(i, j) - expect), 0.0, 1e-12);
    }
}

TEST(Hamiltonian, ShiftedOperatorIsComplexSymmetric) {
  // <u, A v> = <v, A u> with the UNCONJUGATED bilinear form — the property
  // COCG is built on.
  Grid3D g = Grid3D::cubic(9, kSiLatticeConstant);
  Hamiltonian h(g, 3, unperturbed_si8(), ModelParams{});
  Rng rng(26);
  std::vector<la::cplx> u(g.size()), v(g.size()), au(g.size()), av(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    u[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    v[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  h.apply_shifted(u, au, -0.2, 0.31);
  h.apply_shifted(v, av, -0.2, 0.31);
  const la::cplx uav = la::dot_u(u, av);
  const la::cplx vau = la::dot_u(v, au);
  EXPECT_NEAR(std::abs(uav - vau), 0.0, 1e-9 * std::abs(uav));
}

TEST(Hamiltonian, SetLocalPotentialRefreshesBounds) {
  Grid3D g = Grid3D::cubic(9, kSiLatticeConstant);
  Hamiltonian h(g, 3, unperturbed_si8(), ModelParams{});
  std::vector<double> v(g.size(), 5.0);
  h.set_local_potential(v);
  // With a constant potential the local contribution to both bounds is 5.
  EXPECT_DOUBLE_EQ(h.lower_bound(), 5.0);
  EXPECT_GT(h.upper_bound(), 5.0);
}

}  // namespace
}  // namespace rsrpa::ham
