// Cross-module property tests: parameterized sweeps over shapes, radii,
// spectra and orders that complement the per-module unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <algorithm>
#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "grid/stencil.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"
#include "poisson/kronecker.hpp"
#include "rpa/quadrature.hpp"
#include "solver/block_cocg.hpp"
#include "solver/chebyshev.hpp"

namespace rsrpa {
namespace {

using la::cplx;
using la::Matrix;

// ---------- GEMM shape sweep ----------

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, AllVariantsMatchNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n));
  Matrix<double> a(static_cast<std::size_t>(m), static_cast<std::size_t>(k));
  Matrix<double> b(static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  for (std::size_t j = 0; j < a.cols(); ++j) rng.fill_uniform(a.col(j));
  for (std::size_t j = 0; j < b.cols(); ++j) rng.fill_uniform(b.col(j));

  // gemm_nn against the naive triple loop.
  Matrix<double> c(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  la::gemm_nn(1.0, a, b, 0.0, c);
  for (std::size_t j = 0; j < c.cols(); ++j)
    for (std::size_t i = 0; i < c.rows(); ++i) {
      double ref = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) ref += a(i, p) * b(p, j);
      ASSERT_NEAR(c(i, j), ref, 1e-11 * (1.0 + std::abs(ref)));
    }

  // gemm_tn(A, B2) against gemm_nn(A^T, B2) with B2 sized to A's rows.
  Matrix<double> b2(a.rows(), 3);
  for (std::size_t j = 0; j < 3; ++j) rng.fill_uniform(b2.col(j));
  Matrix<double> c2(a.cols(), 3), ref2(a.cols(), 3);
  la::gemm_tn(1.0, a, b2, 0.0, c2);
  Matrix<double> at = a.transposed();
  la::gemm_nn(1.0, at, b2, 0.0, ref2);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < c2.rows(); ++i)
      ASSERT_NEAR(c2(i, j), ref2(i, j), 1e-11 * (1.0 + std::abs(ref2(i, j))));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(8, 1, 8), std::make_tuple(13, 13, 13),
                      std::make_tuple(64, 3, 2), std::make_tuple(3, 64, 2),
                      std::make_tuple(2, 3, 64), std::make_tuple(65, 33, 17)));

// ---------- Eigensolver on structured spectra ----------

class EigSpectra : public ::testing::TestWithParam<int> {};

TEST_P(EigSpectra, RecoversPlantedSpectrum) {
  // Build A = Q diag(d) Q^T with a planted spectrum (clustered, degenerate
  // or spread depending on the case) and check recovery.
  const int kind = GetParam();
  const std::size_t n = 30;
  Rng rng(static_cast<std::uint64_t>(77 + kind));
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case 0: d[i] = static_cast<double>(i);  // well separated
        break;
      case 1: d[i] = (i < n / 2) ? 1.0 : 2.0;  // two degenerate clusters
        break;
      case 2: d[i] = 1.0 + 1e-8 * static_cast<double>(i);  // near degenerate
        break;
      default: d[i] = std::pow(10.0, -static_cast<double>(i) / 4.0);  // decaying
    }
  }
  Matrix<double> q(n, n);
  for (std::size_t j = 0; j < n; ++j) rng.fill_uniform(q.col(j));
  la::orthonormalize(q);
  Matrix<double> qd = q;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) qd(i, j) *= d[j];
  Matrix<double> qt = q.transposed();
  Matrix<double> a(n, n);
  la::gemm_nn(1.0, qd, qt, 0.0, a);

  std::vector<double> got = la::sym_eigvals(a);
  std::sort(d.begin(), d.end());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(got[i], d[i], 1e-9 * (1.0 + std::abs(d[i]))) << "kind " << kind;
}

INSTANTIATE_TEST_SUITE_P(Kinds, EigSpectra, ::testing::Values(0, 1, 2, 3));

// ---------- Stencil vs Kronecker across radii and anisotropy ----------

class StencilKronecker
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StencilKronecker, AgreeOnRandomFunctions) {
  const auto [radius, shape] = GetParam();
  const grid::Grid3D g = (shape == 0)
                             ? grid::Grid3D(6, 6, 6, 3.0, 3.0, 3.0)
                             : grid::Grid3D(5, 7, 9, 2.0, 3.5, 5.4);
  grid::StencilLaplacian lap(g, radius);
  poisson::KroneckerLaplacian klap(g, radius);
  Rng rng(static_cast<std::uint64_t>(radius * 10 + shape));
  std::vector<double> v(g.size()), a(g.size()), b(g.size());
  rng.fill_uniform(v);
  lap.apply<double>(v, a);
  klap.apply_laplacian(v, b);
  for (std::size_t i = 0; i < g.size(); ++i)
    ASSERT_NEAR(a[i], b[i], 1e-8 * (1.0 + std::abs(a[i])));
}

INSTANTIATE_TEST_SUITE_P(RadiiShapes, StencilKronecker,
                         ::testing::Combine(::testing::Values(1, 2, 4, 6),
                                            ::testing::Values(0, 1)));

// ---------- Quadrature order sweep ----------

class QuadratureOrder : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureOrder, ConvergesOnSmoothSemiInfiniteIntegral) {
  // int_0^inf omega / (1 + omega^2)^2 domega = 1/2.
  const int ell = GetParam();
  const auto pts = rpa::rpa_frequency_quadrature(ell);
  double integral = 0.0;
  for (const auto& p : pts) {
    const double d = 1.0 + p.omega * p.omega;
    integral += p.weight * p.omega / (d * d);
  }
  // Error shrinks with order; assert a generous order-dependent band.
  const double tol = ell >= 16 ? 2e-4 : (ell >= 8 ? 4e-3 : 6e-2);
  EXPECT_NEAR(integral, 0.5, tol) << "ell = " << ell;
}

INSTANTIATE_TEST_SUITE_P(Orders, QuadratureOrder,
                         ::testing::Values(4, 8, 16, 24));

// ---------- Chebyshev filter degree sweep ----------

class FilterDegree : public ::testing::TestWithParam<int> {};

TEST_P(FilterDegree, DampsUnwantedIntervalByChebyshevBound) {
  // Diagonal operator: components inside [a, b] must shrink relative to
  // the amplified wanted component by at least the Chebyshev growth.
  const int degree = GetParam();
  const std::size_t n = 64;
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = -2.0 + 2.0 * static_cast<double>(i) / (n - 1);  // [-2, 0]
  solver::BlockOpR op = [&d](const Matrix<double>& in, Matrix<double>& out) {
    for (std::size_t j = 0; j < in.cols(); ++j)
      for (std::size_t i = 0; i < in.rows(); ++i)
        out(i, j) = d[i] * in(i, j);
  };
  Matrix<double> v(n, 1);
  v.fill(1.0);  // equal weight on every eigencomponent
  const double a = -0.5, b = 0.0, a0 = -2.0;
  solver::chebyshev_filter_op(op, v, degree, a, b, a0);

  // Inside the damped interval the filtered magnitude is bounded by the
  // (normalized) Chebyshev value at the wanted edge.
  double damped_max = 0.0, wanted = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] >= a)
      damped_max = std::max(damped_max, std::abs(v(i, 0)));
    if (std::abs(d[i] - a0) < 0.05) wanted = std::abs(v(i, 0));
  }
  EXPECT_GT(wanted, damped_max) << "degree " << degree;
  if (degree >= 4) EXPECT_GT(wanted, 5.0 * damped_max);
}

INSTANTIATE_TEST_SUITE_P(Degrees, FilterDegree, ::testing::Values(1, 2, 4, 8));

// ---------- Block COCG across spectrum difficulty ----------

class CocgDifficulty : public ::testing::TestWithParam<double> {};

TEST_P(CocgDifficulty, IterationsGrowAsShiftShrinks) {
  // Diagonal indefinite operator with imaginary shift omega: smaller
  // omega means a nearer-singular system and more iterations — the (j,k)
  // difficulty gradient of paper SS III-B.
  const double omega = GetParam();
  const std::size_t n = 200;
  Matrix<cplx> a(n, n);
  Rng rng(31);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) = cplx{-0.5 + 3.0 * static_cast<double>(i) / (n - 1), omega};
  solver::BlockOpC op = [&a](const Matrix<cplx>& in, Matrix<cplx>& out) {
    la::gemm_nn(cplx{1}, a, in, cplx{0}, out);
  };
  Matrix<cplx> b(n, 2), y(n, 2);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < n; ++i)
      b(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  solver::SolverOptions opts;
  opts.tol = 1e-8;
  opts.max_iter = 20000;
  solver::SolveReport rep = solver::block_cocg(op, b, y, opts);
  EXPECT_TRUE(rep.converged);

  // Store iterations in a static map keyed by omega for the cross-check.
  static std::map<double, int> iters;
  iters[omega] = rep.iterations;
  if (iters.size() == 3) {
    EXPECT_GE(iters[0.02], iters[0.31]);
    EXPECT_GE(iters[0.31], iters[8.8]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, CocgDifficulty,
                         ::testing::Values(8.8, 0.31, 0.02));

// ---------- LU pivot ratio tracks conditioning ----------

class LuConditioning : public ::testing::TestWithParam<double> {};

TEST_P(LuConditioning, SolveErrorScalesWithCondition) {
  const double cond = GetParam();
  const std::size_t n = 24;
  Rng rng(41);
  Matrix<double> q(n, n);
  for (std::size_t j = 0; j < n; ++j) rng.fill_uniform(q.col(j));
  la::orthonormalize(q);
  // A = Q D Q^T with condition number `cond`.
  Matrix<double> qd = q;
  for (std::size_t j = 0; j < n; ++j) {
    const double s =
        std::pow(cond, -static_cast<double>(j) / (n - 1));  // 1 .. 1/cond
    for (std::size_t i = 0; i < n; ++i) qd(i, j) *= s;
  }
  Matrix<double> a(n, n), qt = q.transposed();
  la::gemm_nn(1.0, qd, qt, 0.0, a);

  std::vector<double> x(n), b(n, 0.0);
  rng.fill_uniform(x);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) b[i] += a(i, j) * x[j];
  la::Lu<double> lu(a);
  lu.solve_inplace(b);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(b[i] - x[i]));
  // Forward error bounded by condition * machine epsilon * safety.
  EXPECT_LT(err, cond * 1e-12);
  // Pivot ratio is a (loose) witness of the conditioning.
  EXPECT_LT(lu.pivot_ratio(), 1.0);
  EXPECT_GT(lu.pivot_ratio(), 1e-6 / cond);
}

INSTANTIATE_TEST_SUITE_P(Conditions, LuConditioning,
                         ::testing::Values(1e1, 1e4, 1e7));

}  // namespace
}  // namespace rsrpa
