// Stress suite for the sched runtime, registered under the ctest label
// `sched_stress`. Intended to run under -DRSRPA_SANITIZE=thread
// (-fsanitize=thread) as well as in the regular suite:
//
//   cmake -B build-tsan -S . -DRSRPA_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L sched_stress
//
// The tests deliberately oversubscribe the machine, throw under load, and
// force steal-heavy schedules — the conditions where a racy pool breaks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sched/sched.hpp"

namespace rsrpa::sched {
namespace {

// Far more lanes than this machine has cores: every worker contends for
// the same queues and the wake/sleep path cycles constantly.
TEST(SchedStress, OversubscribedPoolCompletesEverything) {
  const int lanes = static_cast<int>(std::thread::hardware_concurrency()) * 8 + 4;
  ThreadPool pool(lanes);
  constexpr int kRounds = 20, kTasks = 300;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<long> total{0};
    TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i)
      group.run([&total, i] { total.fetch_add(i, std::memory_order_relaxed); });
    group.wait();
    EXPECT_EQ(total.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
  }
  EXPECT_EQ(pool.stats().tasks, static_cast<long>(kRounds) * kTasks);
}

// Exceptions racing normal completions: exactly one error is kept per
// group, every sibling still runs to completion, and the pool survives to
// serve the next group.
TEST(SchedStress, ExceptionPropagationUnderLoad) {
  ThreadPool pool(8);
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    constexpr int kTasks = 64;
    for (int i = 0; i < kTasks; ++i)
      group.run([&ran, i] {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i % 7 == 3) throw std::runtime_error("stress failure");
      });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), kTasks);  // failure never cancels siblings
    // The pool still works after the error round.
    std::atomic<int> ok{0};
    TaskGroup clean(pool);
    for (int i = 0; i < 16; ++i) clean.run([&ok] { ok.fetch_add(1); });
    clean.wait();
    EXPECT_EQ(ok.load(), 16);
  }
}

// All tasks are submitted from the (non-worker) caller into the shared
// external deque, and each task is too small to keep a worker busy — so
// the only way work spreads is stealing. With several workers this must
// record steals and still produce exact results.
TEST(SchedStress, StealHeavySubmissionFromCaller) {
  ThreadPool pool(6);
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  TaskGroup group(pool);
  for (std::size_t i = 0; i < kN; ++i)
    group.run([&hits, i] { hits[i].fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.tasks, static_cast<long>(kN));
  // Workers never own these tasks, so every worker execution is a steal
  // from the external deque (caller help-runs are inline_tasks instead).
  EXPECT_EQ(s.steals + s.inline_tasks, s.tasks);
}

// Nested groups forked from worker threads while the caller floods the
// external deque: exercises help-join (workers waiting on inner groups
// must keep draining queues, not deadlock).
TEST(SchedStress, NestedGroupsUnderOversubscription) {
  const int lanes = static_cast<int>(std::thread::hardware_concurrency()) * 4 + 2;
  ThreadPool pool(lanes);
  std::atomic<long> total{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 32; ++i)
    outer.run([&pool, &total] {
      TaskGroup mid(pool);
      for (int j = 0; j < 8; ++j)
        mid.run([&pool, &total] {
          TaskGroup inner(pool);
          for (int k = 0; k < 4; ++k)
            inner.run([&total] { total.fetch_add(1); });
          inner.wait();
        });
      mid.wait();
    });
  outer.wait();
  EXPECT_EQ(total.load(), 32L * 8 * 4);
}

// parallel_reduce hammered concurrently with unrelated parallel_for work
// on the same pool: determinism must not depend on the pool being quiet.
TEST(SchedStress, ReduceStaysDeterministicOnABusyPool) {
  ThreadPool pool(8);
  std::vector<double> x(4096);
  double v = 3e-9;
  for (double& e : x) {
    e = v;
    v *= -1.013;
  }
  auto reduce_once = [&] {
    return parallel_reduce(
        std::size_t{0}, x.size(), std::size_t{32}, 0.0,
        [&x](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += x[i];
          return s;
        },
        [](double a, double b) { return a + b; }, pool);
  };
  const double reference = reduce_once();
  std::atomic<bool> stop{false};
  std::thread noise([&pool, &stop] {
    std::vector<std::atomic<int>> sink(512);
    while (!stop.load(std::memory_order_acquire))
      parallel_for(0, sink.size(), 8,
                   [&sink](std::size_t i) { sink[i].fetch_add(1); }, pool);
  });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(reduce_once(), reference);
  stop.store(true, std::memory_order_release);
  noise.join();
}

// Rapid construction/destruction while groups are in flight — the
// destructor's drain path and worker join under churn.
TEST(SchedStress, PoolChurn) {
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool(5);
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i)
      group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    group.wait();
    EXPECT_EQ(count.load(), 50);
  }
}

}  // namespace
}  // namespace rsrpa::sched
