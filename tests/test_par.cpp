// Tests for the simulated parallel runtime: column partition, collective
// cost model, and the rank-decomposed RPA driver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "par/parallel_rpa.hpp"
#include "rpa/erpa.hpp"
#include "rpa/presets.hpp"
#include "sched/thread_pool.hpp"

namespace rsrpa::par {
namespace {

TEST(ColumnPartition, CoversAllColumnsWithoutOverlap) {
  for (std::size_t n : {7u, 16u, 96u}) {
    for (std::size_t p : {1u, 3u, 7u}) {
      if (p > n) continue;
      ColumnPartition part(n, p);
      std::size_t total = 0, expected_begin = 0;
      for (std::size_t r = 0; r < p; ++r) {
        EXPECT_EQ(part.begin(r), expected_begin);
        total += part.count(r);
        expected_begin += part.count(r);
      }
      EXPECT_EQ(total, n);
    }
  }
}

TEST(ColumnPartition, BalancedToWithinOne) {
  ColumnPartition part(17, 5);
  std::size_t mn = 17, mx = 0;
  for (std::size_t r = 0; r < 5; ++r) {
    mn = std::min(mn, part.count(r));
    mx = std::max(mx, part.count(r));
  }
  EXPECT_LE(mx - mn, 1u);
  EXPECT_EQ(part.max_block_size(), 3u);  // floor(17/5)
}

TEST(ColumnPartition, RejectsMoreRanksThanColumns) {
  EXPECT_THROW(ColumnPartition(4, 5), Error);
}

TEST(CollectiveModel, AllreduceGrowsWithPAndBytes) {
  CollectiveModel net;
  EXPECT_DOUBLE_EQ(net.allreduce(1024, 1), 0.0);
  EXPECT_LT(net.allreduce(1024, 2), net.allreduce(1024, 16));
  EXPECT_LT(net.allreduce(1024, 8), net.allreduce(1 << 20, 8));
}

TEST(CollectiveModel, MatmultTimeHasCommunicationFloor) {
  CollectiveModel net;
  const double t_seq = 1.0;
  // Perfect scaling would give t/p; the model must sit above that, gain at
  // small p, and saturate or even regress at large p (the paper's Fig. 5
  // shows exactly this for the tall-and-skinny ScaLAPACK matmult, whose
  // m x m Gram allreduce grows with log p).
  for (std::size_t p : {2u, 8u, 32u, 128u, 512u}) {
    const double t = net.matmult_time(t_seq, 20000, 4000, p);
    EXPECT_GT(t, t_seq / static_cast<double>(p));
    EXPECT_LT(t, t_seq);  // still beats one rank...
  }
  // ...but the gain from 128 to 512 ranks has evaporated.
  const double t128 = net.matmult_time(t_seq, 20000, 4000, 128);
  const double t512 = net.matmult_time(t_seq, 20000, 4000, 512);
  EXPECT_GT(t512, 0.8 * t128);
  // Far from ideal at large p.
  EXPECT_GT(t512, 4.0 * t_seq / 512);
}

TEST(CollectiveModel, EigensolveSaturates) {
  CollectiveModel net;
  const double t_seq = 2.0;
  const double at_sat = net.eigensolve_time(t_seq, 3840, net.eigensolve_saturation);
  const double beyond = net.eigensolve_time(t_seq, 3840, 8 * net.eigensolve_saturation);
  // No compute gain past saturation; only added latency.
  EXPECT_GE(beyond, at_sat);
}

class ParallelRpaTest : public ::testing::Test {
 protected:
  static rpa::BuiltSystem& built() {
    static rpa::BuiltSystem b = [] {
      rpa::SystemPreset p = rpa::make_si_preset(1, false);
      p.grid_per_cell = 7;
      p.n_eig_per_atom = 2;  // n_eig = 16
      p.fd_radius = 3;
      return rpa::build_system(p);
    }();
    return b;
  }

  static ParallelRpaOptions base_options() {
    ParallelRpaOptions opts;
    opts.rpa = built().default_rpa_options();
    opts.rpa.n_eig = 16;
    opts.rpa.ell = 3;
    opts.rpa.tol_eig = {4e-3, 2e-3, 2e-3};
    return opts;
  }
};

TEST_F(ParallelRpaTest, EnergyIndependentOfRankCount) {
  auto& b = built();
  ParallelRpaOptions o1 = base_options(), o4 = base_options();
  o1.n_ranks = 1;
  o4.n_ranks = 4;
  ParallelRpaResult r1 = run_parallel_rpa(b.ks, *b.klap, o1);
  ParallelRpaResult r4 = run_parallel_rpa(b.ks, *b.klap, o4);
  EXPECT_TRUE(r1.rpa.converged);
  EXPECT_TRUE(r4.rpa.converged);
  EXPECT_LT(r1.rpa.e_rpa, 0.0);
  // The partition changes solver blocking, not mathematics: energies agree
  // to well within the subspace tolerance.
  EXPECT_NEAR(r1.rpa.e_rpa, r4.rpa.e_rpa,
              5e-3 * std::abs(r1.rpa.e_rpa));
}

TEST_F(ParallelRpaTest, MatchesSerialDriverEnergy) {
  auto& b = built();
  ParallelRpaOptions opts = base_options();
  opts.n_ranks = 1;
  ParallelRpaResult par = run_parallel_rpa(b.ks, *b.klap, opts);
  rpa::RpaResult ser = rpa::compute_rpa_energy(b.ks, *b.klap, opts.rpa);
  EXPECT_NEAR(par.rpa.e_rpa, ser.e_rpa, 5e-3 * std::abs(ser.e_rpa));
}

TEST_F(ParallelRpaTest, RecordsPerRankTimings) {
  auto& b = built();
  ParallelRpaOptions opts = base_options();
  opts.n_ranks = 4;
  ParallelRpaResult res = run_parallel_rpa(b.ks, *b.klap, opts);
  ASSERT_EQ(res.rank_apply_seconds.size(), 4u);
  for (double t : res.rank_apply_seconds) EXPECT_GT(t, 0.0);
  // Critical path >= average (load imbalance is non-negative).
  const double avg = res.apply_work_seconds / 4.0;
  EXPECT_GE(res.modeled.nu_chi0 + res.modeled.eval_error, avg * 0.99);
  EXPECT_GT(res.modeled_total_seconds, 0.0);
}

TEST_F(ParallelRpaTest, BlockSizeCapFollowsPartition) {
  auto& b = built();
  ParallelRpaOptions opts = base_options();
  opts.n_ranks = 8;  // cap = 16 / 8 = 2
  ParallelRpaResult res = run_parallel_rpa(b.ks, *b.klap, opts);
  for (const auto& [size, count] : res.rpa.stern.block_size_chunks)
    EXPECT_LE(size, 2);
}

// The deterministic-execution acceptance criterion: both drivers produce
// the SAME BITS at 1 and 4 threads, on two different preset systems. The
// serial driver relies on disjoint-write parallel_for (identical FP order
// per element); the ranked driver additionally routes its norm reductions
// through the fixed-shape tree of parallel_reduce.
TEST(ThreadDeterminism, BitwiseIdenticalEnergiesAtAnyThreadCount) {
  for (bool vacancy : {false, true}) {
    SCOPED_TRACE(vacancy ? "Si vacancy preset" : "Si pristine preset");
    rpa::SystemPreset preset = rpa::make_si_preset(1, vacancy);
    preset.grid_per_cell = 7;
    preset.n_eig_per_atom = 2;
    preset.fd_radius = 3;
    rpa::BuiltSystem b = rpa::build_system(preset);

    ParallelRpaOptions opts;
    opts.rpa = b.default_rpa_options();
    opts.rpa.ell = 2;
    opts.rpa.tol_eig = {4e-3, 2e-3};
    // Algorithm 4 chooses Sternheimer block sizes from MEASURED chunk wall
    // time, so its partition is schedule-dependent by construction (it was
    // never run-to-run reproducible, even serially). Pin the block size so
    // the comparison isolates the runtime's determinism.
    opts.rpa.stern.dynamic_block = false;
    opts.n_ranks = 4;

    sched::set_global_threads(1);
    const double serial_1 = rpa::compute_rpa_energy(b.ks, *b.klap, opts.rpa).e_rpa;
    const ParallelRpaResult par_1 = run_parallel_rpa(b.ks, *b.klap, opts);

    sched::set_global_threads(4);
    const double serial_4 = rpa::compute_rpa_energy(b.ks, *b.klap, opts.rpa).e_rpa;
    const ParallelRpaResult par_4 = run_parallel_rpa(b.ks, *b.klap, opts);
    sched::set_global_threads(1);

    EXPECT_EQ(std::memcmp(&serial_1, &serial_4, sizeof(double)), 0)
        << "run_rpa: " << serial_1 << " vs " << serial_4;
    EXPECT_EQ(std::memcmp(&par_1.rpa.e_rpa, &par_4.rpa.e_rpa, sizeof(double)),
              0)
        << "run_parallel_rpa: " << par_1.rpa.e_rpa << " vs "
        << par_4.rpa.e_rpa;
    EXPECT_LT(serial_1, 0.0);

    // The threaded run really went through the pool, and the result
    // carries its scheduler telemetry.
    EXPECT_EQ(par_4.sched_stats.threads, 4);
    EXPECT_GT(par_4.sched_stats.tasks, 0);
    EXPECT_EQ(par_1.sched_stats.threads, 1);
  }
}

TEST_F(ParallelRpaTest, ModeledNuChi0TimeShrinksWithRanks) {
  auto& b = built();
  ParallelRpaOptions o1 = base_options(), o4 = base_options();
  o1.n_ranks = 1;
  o4.n_ranks = 4;
  ParallelRpaResult r1 = run_parallel_rpa(b.ks, *b.klap, o1);
  ParallelRpaResult r4 = run_parallel_rpa(b.ks, *b.klap, o4);
  // The embarrassingly parallel kernel must show real speedup in the
  // modeled time (max over ranks shrinks as columns spread out).
  EXPECT_LT(r4.modeled.nu_chi0, r1.modeled.nu_chi0);
}

}  // namespace
}  // namespace rsrpa::par
