// Tests for the RPA core: quadrature (Table II), chi0 application vs the
// dense oracle, the symmetrized operator, subspace iteration, the E_RPA
// driver, and the trace estimators.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "direct/dense.hpp"
#include "la/blas.hpp"
#include "rpa/erpa.hpp"
#include "rpa/presets.hpp"
#include "rpa/trace_est.hpp"

namespace rsrpa::rpa {
namespace {

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  // GL-n is exact for degree 2n-1.
  for (int n : {2, 4, 8}) {
    const auto gl = gauss_legendre(n);
    double integral = 0.0;
    for (const auto& [x, w] : gl) integral += w * x * x;  // int x^2 = 2/3
    EXPECT_NEAR(integral, 2.0 / 3.0, 1e-13) << "n=" << n;
    double total = 0.0;
    for (const auto& [x, w] : gl) total += w;
    EXPECT_NEAR(total, 2.0, 1e-13);
  }
}

TEST(GaussLegendre, NewtonAndGolubWelschAgree) {
  for (int n : {1, 3, 8, 16}) {
    const auto a = gauss_legendre(n);
    const auto b = gauss_legendre_golub_welsch(n);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].first, b[i].first, 1e-12);
      EXPECT_NEAR(a[i].second, b[i].second, 1e-12);
    }
  }
}

TEST(FrequencyQuadrature, ReproducesTableII) {
  const auto pts = rpa_frequency_quadrature(8);
  ASSERT_EQ(pts.size(), 8u);
  // Paper Table II (3-4 significant digits).
  const double omega_ref[] = {49.36, 8.836, 3.215, 1.449,
                              0.690, 0.311, 0.113, 0.020};
  const double weight_ref[] = {128.4, 10.76, 2.787, 1.088,
                               0.518, 0.270, 0.138, 0.053};
  for (int k = 0; k < 8; ++k) {
    EXPECT_NEAR(pts[k].omega, omega_ref[k], 0.01 * omega_ref[k] + 5e-4) << k;
    EXPECT_NEAR(pts[k].weight, weight_ref[k], 0.01 * weight_ref[k] + 5e-3) << k;
  }
  // Descending omega, the ordering the warm start relies on.
  for (int k = 1; k < 8; ++k) EXPECT_LT(pts[k].omega, pts[k - 1].omega);
}

TEST(FrequencyQuadrature, ApproximatesLorentzIntegral) {
  // int_0^inf 1/(1 + w^2) dw = pi/2 — a sanity check that the transformed
  // rule integrates a decaying function of omega well.
  const auto pts = rpa_frequency_quadrature(16);
  double integral = 0.0;
  for (const QuadPoint& p : pts)
    integral += p.weight / (1.0 + p.omega * p.omega);
  EXPECT_NEAR(integral, M_PI / 2.0, 1e-3);
}

TEST(TraceTerm, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(rpa_trace_term(0.0), 0.0);
  EXPECT_NEAR(rpa_trace_term(-1.0), std::log(2.0) - 1.0, 1e-14);
  // Small-mu expansion: -mu^2/2 - mu^3/3 - ... (cubic term ~3e-13 here).
  const double mu = -1e-4;
  EXPECT_NEAR(rpa_trace_term(mu), -0.5 * mu * mu, 1e-12);
  // ln(1 - mu) is undefined at mu >= 1: NaN, not an exception — the
  // drivers must be able to skip the term and keep the run alive.
  EXPECT_TRUE(std::isnan(rpa_trace_term(1.0)));
  EXPECT_TRUE(std::isnan(rpa_trace_term(2.5)));
}

TEST(TraceTerm, AccumulateSkipsDomainViolationsAndRecordsThem) {
  const std::vector<double> eigs = {-2.0, -0.5, 1.5, 3.0};
  OmegaRecord rec;
  rec.converged = true;
  obs::EventLog events;
  const double sum = accumulate_trace_terms(eigs, 4, rec, &events);

  // Only the two valid eigenvalues contribute — no NaN leaks into e_term.
  const double expected = rpa_trace_term(-2.0) + rpa_trace_term(-0.5);
  EXPECT_DOUBLE_EQ(sum, expected);
  EXPECT_DOUBLE_EQ(rec.e_term, expected);
  EXPECT_FALSE(std::isnan(rec.e_term));

  // The violation is recorded, the point marked non-converged, the run
  // continues.
  EXPECT_EQ(rec.invalid_terms, 2);
  EXPECT_DOUBLE_EQ(rec.worst_mu, 3.0);
  EXPECT_FALSE(rec.converged);
  ASSERT_EQ(events.count(obs::events::kTraceTermDomain), 2u);
  const obs::Event& ev = events.events().front();
  ASSERT_EQ(ev.fields.size(), 2u);
  EXPECT_EQ(ev.fields[0].first, "omega_index");
  EXPECT_DOUBLE_EQ(ev.fields[0].second, 4.0);
  EXPECT_EQ(ev.fields[1].first, "mu");
  EXPECT_DOUBLE_EQ(ev.fields[1].second, 1.5);
}

TEST(TraceTerm, AccumulateLeavesCleanRecordUntouched) {
  const std::vector<double> eigs = {-1.0, -0.25};
  OmegaRecord rec;
  rec.converged = true;
  const double sum = accumulate_trace_terms(eigs, 0, rec, nullptr);
  EXPECT_DOUBLE_EQ(sum, rpa_trace_term(-1.0) + rpa_trace_term(-0.25));
  EXPECT_EQ(rec.invalid_terms, 0);
  EXPECT_TRUE(rec.converged);
}

// ----- Fixture: a tiny Si8 system with a dense oracle -----

struct TinySystem {
  BuiltSystem built;
  la::EigResult full_eig;

  TinySystem() {
    SystemPreset preset = make_si_preset(1, /*paper_scale=*/false);
    preset.grid_per_cell = 7;
    preset.n_eig_per_atom = 4;  // n_eig = 32
    preset.fd_radius = 3;
    built = build_system(preset);
    full_eig = direct::full_diagonalization(*built.h);
  }
};

TinySystem& tiny() {
  static TinySystem t;
  return t;
}

TEST(Chi0Applier, MatchesDenseOracle) {
  TinySystem& t = tiny();
  const std::size_t n = t.built.ks.n_grid();
  const double omega = 0.31;

  SternheimerOptions sopts;
  sopts.tol = 1e-11;
  sopts.max_iter = 5000;
  Chi0Applier chi0(t.built.ks, sopts);

  Rng rng(99);
  la::Matrix<double> v(n, 3), out(n, 3);
  for (std::size_t j = 0; j < 3; ++j) rng.fill_uniform(v.col(j));
  chi0.apply(v, out, omega);

  la::Matrix<double> dense = direct::dense_chi0(
      t.full_eig, t.built.ks.n_occ(), omega, t.built.h->grid().dv());
  la::Matrix<double> ref(n, 3);
  la::gemm_nn(1.0, dense, v, 0.0, ref);

  const double scale = la::norm_max(ref);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(out(i, j), ref(i, j), 2e-5 * scale) << i << "," << j;
}

TEST(Chi0Applier, GalerkinGuessDoesNotChangeResult) {
  TinySystem& t = tiny();
  const std::size_t n = t.built.ks.n_grid();
  const double omega = 1.449;

  SternheimerOptions with, without;
  with.tol = without.tol = 1e-10;
  with.max_iter = without.max_iter = 5000;
  with.galerkin_guess = true;
  without.galerkin_guess = false;

  Rng rng(100);
  la::Matrix<double> v(n, 2), a(n, 2), b(n, 2);
  for (std::size_t j = 0; j < 2; ++j) rng.fill_uniform(v.col(j));
  Chi0Applier(t.built.ks, with).apply(v, a, omega);
  Chi0Applier(t.built.ks, without).apply(v, b, omega);
  const double scale = la::norm_max(a) + 1e-30;
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(a(i, j), b(i, j), 1e-5 * scale);
}

TEST(Chi0Applier, IsNegativeSemidefiniteAndAnnihilatesConstants) {
  TinySystem& t = tiny();
  const std::size_t n = t.built.ks.n_grid();
  SternheimerOptions sopts;
  sopts.tol = 1e-10;
  sopts.max_iter = 5000;
  Chi0Applier chi0(t.built.ks, sopts);

  Rng rng(101);
  la::Matrix<double> v(n, 1), out(n, 1);
  for (int trial = 0; trial < 3; ++trial) {
    rng.fill_uniform(v.col(0));
    chi0.apply(v, out, 0.69);
    EXPECT_LE(la::dot(v.col(0), out.col(0)), 1e-8);
  }
  // Constant input: the response vanishes at imaginary frequency.
  v.fill(1.0);
  chi0.apply(v, out, 0.69);
  EXPECT_LT(la::norm_max(out) , 1e-6);
}

TEST(NuChi0Operator, IsSymmetric) {
  TinySystem& t = tiny();
  const std::size_t n = t.built.ks.n_grid();
  SternheimerOptions sopts;
  sopts.tol = 1e-10;
  sopts.max_iter = 5000;
  NuChi0Operator op(t.built.ks, *t.built.klap, sopts);

  Rng rng(102);
  la::Matrix<double> u(n, 1), v(n, 1), au(n, 1), av(n, 1);
  rng.fill_uniform(u.col(0));
  rng.fill_uniform(v.col(0));
  op.apply(u, au, 0.113);
  op.apply(v, av, 0.113);
  const double uav = la::dot(u.col(0), av.col(0));
  const double vau = la::dot(v.col(0), au.col(0));
  EXPECT_NEAR(uav, vau, 1e-6 * std::abs(uav) + 1e-10);
}

TEST(SubspaceIteration, RecoversMostNegativeEigenvalues) {
  TinySystem& t = tiny();
  const std::size_t n = t.built.ks.n_grid();
  const double omega = 0.69;
  const std::size_t n_eig = 12;

  // Exact spectrum from the dense oracle.
  std::vector<double> exact = direct::nu_chi0_spectrum(
      t.full_eig, t.built.ks.n_occ(), omega, *t.built.klap,
      t.built.h->grid().dv());

  SternheimerOptions sopts;
  sopts.tol = 1e-8;
  sopts.max_iter = 5000;
  NuChi0Operator op(t.built.ks, *t.built.klap, sopts);

  Rng rng(103);
  la::Matrix<double> v(n, n_eig);
  for (std::size_t j = 0; j < n_eig; ++j) rng.fill_uniform(v.col(j));

  SubspaceOptions opts;
  opts.tol = 5e-4;
  opts.max_filter_iter = 40;
  opts.cheb_degree = 4;
  SubspaceResult res = subspace_iteration(op, omega, v, opts);
  EXPECT_TRUE(res.converged);
  // The model's dielectric spectrum is clustered near the wanted/unwanted
  // boundary, so per-eigenvalue accuracy is bounded by the SI tolerance
  // times the spectrum scale (sub-percent of |mu_min| in practice).
  for (std::size_t j = 0; j < n_eig; ++j)
    EXPECT_NEAR(res.eigenvalues[j], exact[j], 1e-2 * std::abs(exact[0]))
        << j;
}

TEST(SubspaceIteration, WarmStartSkipsFiltering) {
  TinySystem& t = tiny();
  const std::size_t n = t.built.ks.n_grid();
  const std::size_t n_eig = 8;
  SternheimerOptions sopts;
  sopts.tol = 1e-8;
  sopts.max_iter = 5000;
  NuChi0Operator op(t.built.ks, *t.built.klap, sopts);

  SubspaceOptions opts;
  opts.tol = 2e-3;
  opts.max_filter_iter = 60;
  opts.cheb_degree = 4;

  Rng rng(104);
  la::Matrix<double> v(n, n_eig);
  for (std::size_t j = 0; j < n_eig; ++j) rng.fill_uniform(v.col(j));

  // Converge at omega_7, then warm-start the nearby omega_8.
  const auto quad = rpa_frequency_quadrature(8);
  SubspaceResult first = subspace_iteration(op, quad[6].omega, v, opts);
  ASSERT_TRUE(first.converged);
  const int cold_iters = first.filter_iterations;
  EXPECT_GT(cold_iters, 0);

  SubspaceResult second = subspace_iteration(op, quad[7].omega, v, opts);
  EXPECT_TRUE(second.converged);
  EXPECT_LT(second.filter_iterations, cold_iters);
}

TEST(ComputeRpaEnergy, MatchesDirectOracleOnTinySystem) {
  TinySystem& t = tiny();
  RpaOptions opts = t.built.default_rpa_options();
  opts.n_eig = 32;  // a large fraction of the 343-point spectrum
  opts.stern.tol = 1e-6;
  opts.stern.max_iter = 5000;
  opts.tol_eig = {1e-4};
  opts.max_filter_iter = 80;
  opts.cheb_degree = 6;
  RpaResult res = compute_rpa_energy(t.built.ks, *t.built.klap, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.e_rpa, 0.0);

  // Direct oracle over the FULL spectrum; the n_eig-truncated iterative
  // value must capture the bulk of it (the spectrum decays rapidly).
  double e_direct = 0.0;
  const auto quad = rpa_frequency_quadrature(opts.ell);
  for (const QuadPoint& q : quad) {
    const std::vector<double> spec = direct::nu_chi0_spectrum(
        t.full_eig, t.built.ks.n_occ(), q.omega, *t.built.klap,
        t.built.h->grid().dv());
    double term = 0.0;
    for (double mu : spec) term += rpa_trace_term(mu);
    e_direct += q.weight * term / (2.0 * M_PI);
  }
  EXPECT_LT(res.e_rpa, 0.5 * e_direct);  // same sign, same magnitude range
  EXPECT_GT(res.e_rpa, 1.5 * e_direct);
  // Truncation only discards magnitude: |iterative| <= |direct| + tol.
  EXPECT_LE(std::abs(res.e_rpa), std::abs(e_direct) * 1.02 + 1e-6);
}

TEST(ComputeRpaEnergy, RecordsPerOmegaDiagnostics) {
  TinySystem& t = tiny();
  RpaOptions opts = t.built.default_rpa_options();
  opts.n_eig = 16;
  opts.ell = 4;
  opts.tol_eig = {4e-3, 2e-3};
  RpaResult res = compute_rpa_energy(t.built.ks, *t.built.klap, opts);
  ASSERT_EQ(res.per_omega.size(), 4u);
  for (std::size_t k = 1; k < 4; ++k)
    EXPECT_LT(res.per_omega[k].omega, res.per_omega[k - 1].omega);
  EXPECT_GT(res.timers.get(kernels::kNuChi0), 0.0);
  EXPECT_GT(res.timers.get(kernels::kEvalError), 0.0);
  EXPECT_GT(res.stern.total_chunks, 0);
}

TEST(SternheimerStats, MergeAccumulates) {
  SternheimerStats a, b;
  a.block_size_chunks[1] = 3;
  a.total_chunks = 3;
  a.matvec_columns = 10;
  b.block_size_chunks[1] = 1;
  b.block_size_chunks[2] = 4;
  b.total_chunks = 5;
  b.matvec_columns = 20;
  b.all_converged = false;
  a.merge(b);
  EXPECT_EQ(a.block_size_chunks[1], 4);
  EXPECT_EQ(a.block_size_chunks[2], 4);
  EXPECT_EQ(a.total_chunks, 8);
  EXPECT_EQ(a.matvec_columns, 30);
  EXPECT_FALSE(a.all_converged);
}

TEST(TraceEstimators, HutchinsonEstimatesTrace) {
  Rng mat_rng(7);
  const std::size_t n = 60;
  la::Matrix<double> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const double v = mat_rng.uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  double exact = 0.0;
  for (std::size_t i = 0; i < n; ++i) exact += a(i, i);

  solver::BlockOpR op = [&a](const la::Matrix<double>& in,
                             la::Matrix<double>& out) {
    la::gemm_nn(1.0, a, in, 0.0, out);
  };
  Rng rng(8);
  const double est = hutchinson_trace(op, n, 400, rng);
  EXPECT_NEAR(est, exact, 0.25 * std::abs(exact) + 2.0);
}

TEST(TraceEstimators, SlqMatchesExactTraceOfMatrixFunction) {
  // Small SPD matrix: Tr exp(A) via SLQ vs dense eigendecomposition.
  Rng mat_rng(9);
  const std::size_t n = 40;
  la::Matrix<double> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const double v = 0.1 * mat_rng.uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  la::EigResult eig = la::sym_eig(a);
  double exact = 0.0;
  for (double lam : eig.values) exact += std::exp(lam);

  solver::BlockOpR op = [&a](const la::Matrix<double>& in,
                             la::Matrix<double>& out) {
    la::gemm_nn(1.0, a, in, 0.0, out);
  };
  Rng rng(10);
  const double est = slq_trace(
      op, n, [](double x) { return std::exp(x); }, 60, 20, rng);
  EXPECT_NEAR(est, exact, 0.05 * exact);
}

TEST(TraceEstimators, SlqExactForLinearFunctionWithFullSteps) {
  // f(x) = x with lanczos_steps >= n: every probe is exact, so SLQ reduces
  // to the Hutchinson estimator of the trace.
  Rng mat_rng(11);
  const std::size_t n = 12;
  la::Matrix<double> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const double v = mat_rng.uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  solver::BlockOpR op = [&a](const la::Matrix<double>& in,
                             la::Matrix<double>& out) {
    la::gemm_nn(1.0, a, in, 0.0, out);
  };
  Rng rng_a(12), rng_b(12);
  const double slq =
      slq_trace(op, n, [](double x) { return x; }, 50, static_cast<int>(n),
                rng_a);
  const double hutch = hutchinson_trace(op, n, 50, rng_b);
  EXPECT_NEAR(slq, hutch, 1e-8 * std::abs(hutch) + 1e-9);
}

TEST(Presets, TableIIIShapes) {
  for (std::size_t ncells : {1u, 2u, 5u}) {
    SystemPreset p = make_si_preset(ncells, /*paper_scale=*/true);
    EXPECT_EQ(p.n_atoms(), 8 * ncells);
    EXPECT_EQ(p.n_occ(), 16 * ncells);         // Table III n_s
    EXPECT_EQ(p.n_eig(), 768 * ncells);        // Table III n_eig
    EXPECT_EQ(p.n_grid(), 3375 * ncells);      // Table III n_d
  }
}

TEST(TolForPoint, EmptyVectorFallsBack) {
  RpaOptions opts;
  opts.ell = 4;
  opts.tol_eig = {};
  for (int k = 0; k < 4; ++k) EXPECT_EQ(tol_for_point(opts, k), 5e-4);
}

TEST(TolForPoint, ShortVectorPadsWithLastEntry) {
  RpaOptions opts;
  opts.ell = 5;
  opts.tol_eig = {4e-3, 2e-3};
  obs::EventLog events;
  bool warned = false;
  EXPECT_EQ(tol_for_point(opts, 0, &events, &warned), 4e-3);
  EXPECT_EQ(tol_for_point(opts, 1, &events, &warned), 2e-3);
  EXPECT_EQ(tol_for_point(opts, 2, &events, &warned), 2e-3);
  EXPECT_EQ(tol_for_point(opts, 4, &events, &warned), 2e-3);
  // Padding is expected usage, not a configuration smell: no warning.
  EXPECT_TRUE(events.empty());
  EXPECT_FALSE(warned);
}

TEST(TolForPoint, LongVectorWarnsExactlyOnce) {
  RpaOptions opts;
  opts.ell = 2;
  opts.tol_eig = {4e-3, 2e-3, 1e-3, 5e-4};
  obs::EventLog events;
  bool warned = false;
  EXPECT_EQ(tol_for_point(opts, 0, &events, &warned), 4e-3);
  EXPECT_TRUE(warned);
  EXPECT_EQ(tol_for_point(opts, 1, &events, &warned), 2e-3);
  ASSERT_EQ(events.count(obs::events::kTolEigTruncated), 1u);
  const obs::Event& e = events.events().front();
  EXPECT_EQ(e.fields[0].second, 4.0);  // tol_eig_entries
  EXPECT_EQ(e.fields[1].second, 2.0);  // ell
  // Without a warned flag every call that sees the excess warns; the
  // drivers always pass one, this is just the helper's documented shape.
  obs::EventLog again;
  tol_for_point(opts, 0, &again, nullptr);
  tol_for_point(opts, 1, &again, nullptr);
  EXPECT_EQ(again.count(obs::events::kTolEigTruncated), 2u);
}

TEST(TolForPoint, OutOfRangePointThrows) {
  RpaOptions opts;
  opts.ell = 3;
  EXPECT_THROW(tol_for_point(opts, -1), Error);
  EXPECT_THROW(tol_for_point(opts, 3), Error);
}

TEST(Presets, VacancyReducesCounts) {
  SystemPreset p = make_si_preset(1, false);
  p.vacancy = true;
  EXPECT_EQ(p.n_atoms(), 7u);
  EXPECT_EQ(p.n_occ(), 14u);
  BuiltSystem b = build_system(p);
  EXPECT_EQ(b.ks.n_occ(), 14u);
  EXPECT_EQ(b.h->crystal().n_atoms(), 7u);
}

}  // namespace
}  // namespace rsrpa::rpa
