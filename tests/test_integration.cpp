// End-to-end integration tests: physics invariants that cut across every
// module, plus golden-value regression bands for the full pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "direct/direct_rpa.hpp"
#include "la/blas.hpp"
#include "rpa/erpa.hpp"
#include "rpa/presets.hpp"

namespace rsrpa {
namespace {

rpa::BuiltSystem& shared_tiny() {
  static rpa::BuiltSystem b = [] {
    rpa::SystemPreset p = rpa::make_si_preset(1, false);
    p.grid_per_cell = 7;
    p.n_eig_per_atom = 4;
    p.fd_radius = 3;
    return rpa::build_system(p);
  }();
  return b;
}

TEST(Integration, Chi0DecaysAsOneOverOmegaSquared) {
  // Physics: chi0(i omega) ~ -(2/omega^2) sum_j ... for large omega, so
  // scaling omega by 4 must shrink the response by ~16.
  auto& b = shared_tiny();
  rpa::SternheimerOptions sopts;
  sopts.tol = 1e-9;
  sopts.max_iter = 5000;
  rpa::Chi0Applier chi0(b.ks, sopts);
  Rng rng(3);
  la::Matrix<double> v(b.ks.n_grid(), 1), lo(b.ks.n_grid(), 1),
      hi(b.ks.n_grid(), 1);
  rng.fill_uniform(v.col(0));
  chi0.apply(v, lo, 25.0);
  chi0.apply(v, hi, 100.0);
  const double ratio = la::norm_fro(lo) / la::norm_fro(hi);
  EXPECT_NEAR(ratio, 16.0, 2.5);
}

TEST(Integration, ErpaIsVariationalInNeig) {
  // Adding eigenvalues can only add negative trace terms: |E_RPA| grows
  // monotonically with n_eig toward the full-spectrum direct value.
  auto& b = shared_tiny();
  double prev = 0.0;
  for (std::size_t n_eig : {8u, 16u, 32u}) {
    rpa::RpaOptions opts = b.default_rpa_options();
    opts.n_eig = n_eig;
    opts.ell = 3;
    rpa::RpaResult res = rpa::compute_rpa_energy(b.ks, *b.klap, opts);
    EXPECT_LT(res.e_rpa, prev + 1e-6) << n_eig;  // more negative each time
    prev = res.e_rpa;
  }
  direct::DirectRpaResult dir =
      direct::compute_direct_rpa(*b.h, b.ks.n_occ(), *b.klap, 3);
  EXPECT_GT(prev, dir.e_rpa * 1.001);  // still above (less negative than) full
}

TEST(Integration, PerturbationChangesEnergyOnlySlightly) {
  // A 1% lattice perturbation is a small perturbation of E_RPA — the
  // regularity the SS IV-A energy-difference experiment relies on.
  auto run = [](double perturbation, std::uint64_t seed) {
    rpa::SystemPreset p = rpa::make_si_preset(1, false);
    p.grid_per_cell = 7;
    p.n_eig_per_atom = 4;
    p.fd_radius = 3;
    p.perturbation = perturbation;
    p.seed = seed;
    rpa::BuiltSystem b = rpa::build_system(p);
    rpa::RpaOptions opts = b.default_rpa_options();
    opts.ell = 3;
    return rpa::compute_rpa_energy(b.ks, *b.klap, opts).e_rpa_per_atom;
  };
  const double e0 = run(0.0, 7);
  const double e1 = run(0.01, 11);
  EXPECT_LT(std::abs(e1 - e0), 0.05 * std::abs(e0));
}

TEST(Integration, GoldenRegressionBandTinySi8) {
  // Regression guard: the tiny-system E_RPA stays inside a recorded band.
  // The band is intentionally wide enough to survive benign numerical
  // drift but catches sign/scale/convention regressions instantly.
  auto& b = shared_tiny();
  rpa::RpaOptions opts = b.default_rpa_options();
  // The toy 7^3 spectrum is more clustered than the real mesh, so give
  // the filter a stronger budget than the Table I defaults.
  opts.cheb_degree = 4;
  opts.max_filter_iter = 25;
  rpa::RpaResult res = rpa::compute_rpa_energy(b.ks, *b.klap, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.e_rpa_per_atom, -0.10);
  EXPECT_GT(res.e_rpa_per_atom, -0.30);
  // Eigenvalue scale at the hardest frequency (paper's Si8 log: -4.17 at
  // omega_8 on the real system; the model sits in the same decade).
  const auto& last = res.per_omega.back();
  EXPECT_LT(last.eigenvalues.front(), -0.5);
  EXPECT_GT(last.eigenvalues.front(), -8.0);
  // All kept eigenvalues strictly below 1 (ln(1 - mu) well defined).
  for (const auto& rec : res.per_omega)
    for (double mu : rec.eigenvalues) EXPECT_LT(mu, 1.0);
}

TEST(Integration, QuadratureOrderingDrivesNchebDown) {
  // The warm-start chain works BECAUSE omega descends: filter effort
  // concentrates on early (large-omega) points and vanishes at the end.
  auto& b = shared_tiny();
  rpa::RpaOptions opts = b.default_rpa_options();
  opts.cheb_degree = 4;
  opts.max_filter_iter = 25;
  rpa::RpaResult res = rpa::compute_rpa_energy(b.ks, *b.klap, opts);
  ASSERT_EQ(res.per_omega.size(), 8u);
  const int first_half = res.per_omega[2].filter_iterations +
                         res.per_omega[3].filter_iterations;
  const int last_half = res.per_omega[6].filter_iterations +
                        res.per_omega[7].filter_iterations;
  EXPECT_LE(last_half, first_half);
}

}  // namespace
}  // namespace rsrpa
