// Tests for the direct (dense) baseline: dense Hamiltonian, full
// diagonalization, Adler-Wiser chi0, spectrum, and the direct E_RPA.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "direct/direct_rpa.hpp"
#include "la/blas.hpp"
#include "rpa/presets.hpp"

namespace rsrpa::direct {
namespace {

rpa::BuiltSystem& tiny_system() {
  static rpa::BuiltSystem built = [] {
    rpa::SystemPreset p = rpa::make_si_preset(1, false);
    p.grid_per_cell = 7;
    p.fd_radius = 3;
    return rpa::build_system(p);
  }();
  return built;
}

TEST(DenseHamiltonian, SymmetricAndMatchesApply) {
  auto& b = tiny_system();
  la::Matrix<double> dense = dense_hamiltonian(*b.h);
  const std::size_t n = dense.rows();
  for (std::size_t j = 0; j < n; j += 37)
    for (std::size_t i = 0; i < n; i += 41)
      EXPECT_NEAR(dense(i, j), dense(j, i), 1e-11);

  Rng rng(1);
  std::vector<double> v(n), hv(n);
  rng.fill_uniform(v);
  b.h->apply<double>(v, hv);
  la::Matrix<double> vm(n, 1), ref(n, 1);
  std::copy(v.begin(), v.end(), vm.col(0).begin());
  la::gemm_nn(1.0, dense, vm, 0.0, ref);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(hv[i], ref(i, 0), 1e-10);
}

TEST(FullDiagonalization, LowestStatesMatchChefsi) {
  auto& b = tiny_system();
  la::EigResult eig = full_diagonalization(*b.h);
  // CheFSI eigenvalues from the KsSystem agree with the dense solver.
  for (std::size_t j = 0; j < b.ks.n_occ(); ++j)
    EXPECT_NEAR(eig.values[j], b.ks.eigenvalues[j], 1e-7) << j;
  // HOMO-LUMO gap consistent.
  EXPECT_NEAR(eig.values[b.ks.n_occ()], b.ks.lumo, 1e-7);
}

TEST(DenseChi0, MatchesExplicitAdlerWiserSum) {
  // Synthetic spectral data: the resolvent-over-all-states construction
  // must equal the occupied-unoccupied pair sum (occ-occ terms cancel).
  Rng rng(2);
  const std::size_t n = 30, n_occ = 5;
  la::Matrix<double> m(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const double v = rng.uniform(-1, 1);
      m(i, j) = v;
      m(j, i) = v;
    }
  la::EigResult eig = la::sym_eig(m);
  const double omega = 0.37, dv = 1.0;
  la::Matrix<double> chi0 = dense_chi0(eig, n_occ, omega, dv);

  la::Matrix<double> ref(n, n);
  for (std::size_t j = 0; j < n_occ; ++j)
    for (std::size_t a = n_occ; a < n; ++a) {
      const double d = eig.values[j] - eig.values[a];
      const double f = 4.0 * d / (d * d + omega * omega);
      for (std::size_t c = 0; c < n; ++c) {
        const double pc = eig.vectors(c, j) * eig.vectors(c, a);
        for (std::size_t i = 0; i < n; ++i)
          ref(i, c) += f * eig.vectors(i, j) * eig.vectors(i, a) * pc;
      }
    }
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(chi0(i, c), ref(i, c), 1e-10);
}

TEST(DenseChi0, NegativeSemidefiniteSymmetricAnnihilatesConstants) {
  auto& b = tiny_system();
  la::EigResult eig = full_diagonalization(*b.h);
  la::Matrix<double> chi0 =
      dense_chi0(eig, b.ks.n_occ(), 0.69, b.h->grid().dv());
  const std::size_t n = chi0.rows();
  // Symmetry (sampled).
  for (std::size_t j = 0; j < n; j += 29)
    for (std::size_t i = 0; i < n; i += 31)
      EXPECT_NEAR(chi0(i, j), chi0(j, i), 1e-8);
  // Row sums vanish: chi0 * 1 = 0 by orbital orthogonality.
  for (std::size_t i = 0; i < n; i += 17) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += chi0(i, j);
    EXPECT_NEAR(row, 0.0, 1e-7);
  }
  // Negative semidefinite: eigenvalues <= 0.
  std::vector<double> vals = la::sym_eigvals(chi0);
  EXPECT_LE(vals.back(), 1e-8);
}

TEST(NuChi0Spectrum, DecaysRapidlyAndIsNegative) {
  // The Fig. 1 property: eigenvalues of nu chi0 are negative and decay
  // toward zero by orders of magnitude across the spectrum.
  auto& b = tiny_system();
  la::EigResult eig = full_diagonalization(*b.h);
  for (double omega : {8.836, 0.69, 0.02}) {
    std::vector<double> spec = nu_chi0_spectrum(eig, b.ks.n_occ(), omega,
                                                *b.klap, b.h->grid().dv());
    EXPECT_LE(spec.back(), 1e-10);  // all <= 0
    // Decay toward zero across the spectrum. On this 343-point toy grid
    // the dielectric spectrum is less compressible than the paper's
    // 3375-point silicon, so the thresholds are calibrated to the model:
    // roughly one order of magnitude by mid-spectrum, two by 3/4.
    EXPECT_LT(std::abs(spec[128]), 0.20 * std::abs(spec[0]));
    EXPECT_LT(std::abs(spec[256]), 0.10 * std::abs(spec[0]));
  }
}

TEST(NuChi0Spectrum, WholeSpectrumShrinksAtLargeOmega) {
  auto& b = tiny_system();
  la::EigResult eig = full_diagonalization(*b.h);
  std::vector<double> lo = nu_chi0_spectrum(eig, b.ks.n_occ(), 0.113, *b.klap,
                                            b.h->grid().dv());
  std::vector<double> hi = nu_chi0_spectrum(eig, b.ks.n_occ(), 49.36, *b.klap,
                                            b.h->grid().dv());
  EXPECT_LT(std::abs(hi[0]), 0.1 * std::abs(lo[0]));
}

TEST(DirectRpa, ProducesNegativeEnergyWithTimings) {
  auto& b = tiny_system();
  DirectRpaResult res =
      compute_direct_rpa(*b.h, b.ks.n_occ(), *b.klap, 8, /*keep_spectra=*/true);
  EXPECT_LT(res.e_rpa, 0.0);
  EXPECT_LT(res.e_rpa_per_atom, 0.0);
  EXPECT_GT(res.e_rpa_per_atom, -1.0);  // sane magnitude (Ha/atom)
  EXPECT_EQ(res.e_terms.size(), 8u);
  EXPECT_EQ(res.spectra.size(), 8u);
  EXPECT_GT(res.diagonalization_seconds, 0.0);
  // Every term is negative; magnitudes are small at the largest omega.
  for (double e : res.e_terms) EXPECT_LT(e, 0.0);
  EXPECT_LT(std::abs(res.e_terms.front()), std::abs(res.e_terms[4]));
}

}  // namespace
}  // namespace rsrpa::direct
