// Multi-tenant job service suite, labeled `svc` in ctest so it can be
// run alone under -DRSRPA_SANITIZE=address/thread builds.
//
// The load-bearing property throughout: a job run by the service — on a
// shared pool under a task quota, checkpoint-preempted and resumed,
// next to unrelated tenants — produces E_RPA, per-omega records and a
// run report bitwise identical to the same config run standalone. All
// bitwise configs pin DYNAMIC_BLOCK: 0 (Algorithm 4 keys off wall clock,
// which is exactly what the reproducibility contract excludes).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "grid/stencil.hpp"
#include "obs/run_report.hpp"
#include "rpa/presets.hpp"
#include "sched/parallel_for.hpp"
#include "sched/thread_pool.hpp"
#include "svc/service.hpp"

namespace rsrpa {
namespace {

namespace fs = std::filesystem;

// Timing and wall-clock-derived fields: legitimately different between a
// standalone and a served (possibly preempted + resumed) run, stripped
// before the JSON comparison. Everything else must match byte for byte.
bool timing_key(const std::string& k) {
  static const std::set<std::string> kStrip = {
      "seconds",        "total_seconds",
      "timers",         "arithmetic_intensity",
      "sched",          "modeled",
      "modeled_total_seconds", "apply_work_seconds",
      "rank_apply_seconds",    "rank_error_seconds",
      "rank_timers"};
  return kStrip.count(k) > 0;
}

obs::Json strip_timing(const obs::Json& j) {
  if (j.is_object()) {
    obs::Json out = obs::Json::object();
    for (const auto& [key, value] : j.as_object())
      if (!timing_key(key)) out[key] = strip_timing(value);
    return out;
  }
  if (j.is_array()) {
    obs::Json out = obs::Json::array();
    for (const obs::Json& v : j.as_array()) out.push_back(strip_timing(v));
    return out;
  }
  return j;
}

void expect_bitwise_equal(const rpa::RpaResult& a, const rpa::RpaResult& b) {
  EXPECT_EQ(a.e_rpa, b.e_rpa);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.degraded, b.degraded);
  ASSERT_EQ(a.per_omega.size(), b.per_omega.size());
  for (std::size_t k = 0; k < a.per_omega.size(); ++k) {
    EXPECT_EQ(a.per_omega[k].e_term, b.per_omega[k].e_term) << "omega " << k;
    EXPECT_EQ(a.per_omega[k].eigenvalues, b.per_omega[k].eigenvalues)
        << "omega " << k;
  }
  EXPECT_EQ(strip_timing(obs::to_json(a)).dump(),
            strip_timing(obs::to_json(b)).dump());
}

/// The deterministic tiny fixture (test_checkpoint's): Si8 on a 7^3 grid,
/// 16 eigenvalues, fixed Sternheimer blocking.
std::string tiny_rpa(std::uint64_t seed, int n_omega, int priority = 0,
                     int quota = 0, const std::string& extra = "") {
  std::string s;
  s += "GRID_PER_CELL: 7\n";
  s += "FD_RADIUS: 3\n";
  s += "N_NUCHI_EIGS: 16\n";
  s += "N_EIG_PER_ATOM: 2\n";
  s += "N_OMEGA: " + std::to_string(n_omega) + "\n";
  s += "TOL_EIG: 4e-3 2e-3 2e-3\n";
  s += "DYNAMIC_BLOCK: 0\n";
  s += "BLOCK_SIZE: 4\n";
  s += "SEED: " + std::to_string(seed) + "\n";
  s += "PRIORITY: " + std::to_string(priority) + "\n";
  s += "THREADS: " + std::to_string(quota) + "\n";
  s += extra;
  return s;
}

/// The test_resilience drill as job keys: persistent zero-matvec fault
/// pinned to quadrature point 0, orbital 0 — the run survives degraded.
std::string fault_keys() {
  return "FAULT_MODE: zero\nFAULT_AT_APPLY: 0\nFAULT_PERIOD: 1\n"
         "FAULT_MAX: 1073741824\nFAULT_ORBITAL: 0\nFAULT_OMEGA: 0\n";
}

/// Standalone oracle: same parse path as the service, no checkpoint, no
/// quota, no control — plain compute_rpa_energy.
rpa::RpaResult run_standalone(const std::string& rpa_text) {
  const svc::JobSpec spec = svc::parse_job(Config::parse(rpa_text));
  rpa::BuiltSystem sys = rpa::build_system(spec.preset);
  return rpa::compute_rpa_energy(sys.ks, *sys.klap, spec.options);
}

class SvcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rsrpa_svc_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string root() const { return (dir_ / "spool").string(); }
  std::string path(const char* name) const { return (dir_ / name).string(); }

  /// Poll a live status until `state` is reached (or any terminal state).
  svc::JobStatus wait_state(svc::JobService& service, const std::string& id,
                            svc::JobState state, double timeout_s = 120.0) {
    const auto t0 = std::chrono::steady_clock::now();
    for (;;) {
      const svc::JobStatus st = service.status(id);
      if (st.state == state || st.state == svc::JobState::kDone ||
          st.state == svc::JobState::kFailed ||
          st.state == svc::JobState::kCancelled)
        return st;
      if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0).count() > timeout_s)
        return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------
// parse_job

TEST(SvcJob, ParseDefaultsMatchPresetRun) {
  const svc::JobSpec spec = svc::parse_job(Config::parse(""));
  const rpa::BuiltSystem sys = rpa::build_system(spec.preset);
  const rpa::RpaOptions ref = sys.default_rpa_options();
  EXPECT_EQ(spec.options.n_eig, ref.n_eig);
  EXPECT_EQ(spec.options.ell, ref.ell);
  EXPECT_EQ(spec.options.stern.tol, ref.stern.tol);
  EXPECT_EQ(spec.options.cheb_degree, ref.cheb_degree);
  EXPECT_EQ(spec.options.max_filter_iter, ref.max_filter_iter);
  EXPECT_EQ(spec.priority, 0);
  EXPECT_EQ(spec.quota, 0);
  EXPECT_EQ(spec.preset.fused_apply, -1);
}

TEST(SvcJob, ParseServiceKeys) {
  const svc::JobSpec spec = svc::parse_job(Config::parse(
      "PRIORITY: 3\nTHREADS: 2\nFUSED_APPLY: 0\nTILE_Y: 8\nTILE_Z: 4\n"
      "DYNAMIC_BLOCK: 0\nBLOCK_SIZE: 4\nN_OMEGA: 2\nSEED: 11\n"));
  EXPECT_EQ(spec.priority, 3);
  EXPECT_EQ(spec.quota, 2);
  EXPECT_EQ(spec.preset.fused_apply, 0);
  EXPECT_EQ(spec.preset.tile_y, 8u);
  EXPECT_EQ(spec.preset.tile_z, 4u);
  EXPECT_FALSE(spec.options.stern.dynamic_block);
  EXPECT_EQ(spec.options.stern.fixed_block, 4);
  EXPECT_EQ(spec.options.ell, 2);
  EXPECT_EQ(spec.preset.seed, 11u);
}

TEST(SvcJob, ParseRejectsBadFaultMode) {
  EXPECT_THROW(svc::parse_job(Config::parse("FAULT_MODE: bogus\n")), Error);
}

// ---------------------------------------------------------------------
// Satellite 2: per-job task quotas on the shared pool

TEST(SvcQuota, CapsInFlightTasks) {
  // An explicit multi-lane pool: the container may expose a single core,
  // and this property is about task fan-out, not hardware.
  sched::ThreadPool pool(4);
  for (int quota : {1, 2}) {
    sched::TaskQuotaScope scope(quota);
    std::atomic<int> active{0};
    std::atomic<int> high_water{0};
    sched::parallel_for_range(
        0, 64, 1,
        [&](std::size_t b, std::size_t e) {
          const int now = ++active;
          int hw = high_water.load();
          while (now > hw && !high_water.compare_exchange_weak(hw, now)) {
          }
          // Hold the task open long enough for any over-forked sibling
          // to overlap; the quota must bound the overlap regardless.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          (void)b;
          (void)e;
          --active;
        },
        pool);
    EXPECT_LE(high_water.load(), quota) << "quota " << quota;
  }
}

TEST(SvcQuota, TaskGroupInheritsQuotaAcrossLanes) {
  sched::ThreadPool pool(4);
  sched::TaskQuotaScope scope(3);
  EXPECT_EQ(sched::current_task_quota(), 3);
  // The quota follows the work: tasks observe the submitting scope's
  // quota even when a pool worker (whose own tls is 0) executes them.
  std::atomic<int> seen{-1};
  sched::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i)
    group.run([&] { seen = sched::current_task_quota(); });
  group.wait();
  EXPECT_EQ(seen.load(), 3);
}

TEST(SvcQuota, ScopeRestoresOnExit) {
  EXPECT_EQ(sched::current_task_quota(), 0);
  {
    sched::TaskQuotaScope outer(4);
    {
      sched::TaskQuotaScope inner(1);
      EXPECT_EQ(sched::current_task_quota(), 1);
    }
    EXPECT_EQ(sched::current_task_quota(), 4);
  }
  EXPECT_EQ(sched::current_task_quota(), 0);
}

TEST(SvcQuota, QuotaDoesNotChangeResults) {
  // The quota only enlarges the parallel_for grain — reductions keep
  // their fixed pairwise tree, so numbers are bitwise identical.
  const std::string cfg = tiny_rpa(7, 2);
  const rpa::RpaResult base = run_standalone(cfg);
  sched::TaskQuotaScope scope(1);
  const rpa::RpaResult capped = run_standalone(cfg);
  expect_bitwise_equal(base, capped);
}

// ---------------------------------------------------------------------
// Satellite 1: per-instance stencil apply configuration (no env latch)

TEST(SvcStencil, TwoInstancesDisagreeInOneProcess) {
  const grid::Grid3D g(7, 7, 7, 1.0, 1.0, 1.0);
  grid::StencilLaplacian fused(g, 3);
  grid::StencilLaplacian reference(g, 3);
  fused.set_fused_apply(true);
  reference.set_fused_apply(false);
  // The bug this guards against: the first instance's configuration
  // getting latched process-wide in function-local statics.
  EXPECT_TRUE(fused.fused_apply());
  EXPECT_FALSE(reference.fused_apply());

  std::vector<double> x(g.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.37 * static_cast<double>(i));
  std::vector<double> y_fused(g.size()), y_ref(g.size()), y_oracle(g.size());
  fused.apply<double>(x, y_fused);
  reference.apply<double>(x, y_ref);
  reference.apply_reference<double>(x, y_oracle);
  EXPECT_EQ(y_ref, y_oracle);  // reference instance really runs reference
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(y_fused[i], y_oracle[i], 1e-12 * (1.0 + std::abs(y_oracle[i])));
}

TEST(SvcStencil, PerInstanceTilesAreBitwiseNeutral) {
  const grid::Grid3D g(9, 9, 9, 1.0, 1.0, 1.0);
  grid::StencilLaplacian a(g, 3);
  grid::StencilLaplacian b(g, 3);
  a.set_fused_tiles(32, 16);
  b.set_fused_tiles(3, 2);
  EXPECT_EQ(b.tile_y(), 3u);
  EXPECT_EQ(b.tile_z(), 2u);
  std::vector<double> x(g.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::cos(0.13 * static_cast<double>(i));
  std::vector<double> ya(g.size()), yb(g.size());
  a.apply<double>(x, ya);
  b.apply<double>(x, yb);
  EXPECT_EQ(ya, yb);  // tiling is a traversal order change only
}

// ---------------------------------------------------------------------
// Satellite 3: cooperative cancellation

TEST(SvcControl, CancelOutranksPreempt) {
  rpa::RunControl control;
  EXPECT_EQ(control.pending(), rpa::RunControl::kNone);
  control.request_preempt();
  EXPECT_EQ(control.pending(), rpa::RunControl::kPreempt);
  control.request_cancel();
  EXPECT_EQ(control.pending(), rpa::RunControl::kCancel);
  control.request_preempt();  // must not downgrade
  EXPECT_EQ(control.pending(), rpa::RunControl::kCancel);
  control.reset();
  EXPECT_EQ(control.pending(), rpa::RunControl::kNone);
}

TEST_F(SvcTest, PreCancelledRunStopsAtFirstBoundary) {
  const svc::JobSpec spec = svc::parse_job(Config::parse(tiny_rpa(7, 3)));
  rpa::BuiltSystem sys = rpa::build_system(spec.preset);
  rpa::RpaOptions opts = spec.options;
  rpa::RunControl control;
  control.request_cancel();
  opts.control = &control;
  EXPECT_THROW(rpa::compute_rpa_energy(sys.ks, *sys.klap, opts),
               rpa::RunCancelled);
}

TEST_F(SvcTest, CancelledRunResumesBitwise) {
  const std::string cfg = tiny_rpa(7, 3);
  const rpa::RpaResult expected = run_standalone(cfg);

  const svc::JobSpec spec = svc::parse_job(Config::parse(cfg));
  rpa::BuiltSystem sys = rpa::build_system(spec.preset);
  rpa::RpaOptions opts = spec.options;
  opts.checkpoint.path = path("cancel.ckpt");
  opts.checkpoint.resume = true;
  rpa::RunControl control;
  opts.control = &control;

  // Fire the cancel as soon as the first checkpoint lands. Depending on
  // timing the run either throws at a later boundary or completes — both
  // are legal; what matters is that a cancelled run resumes bitwise.
  std::thread canceller([&] {
    while (!fs::exists(opts.checkpoint.path))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    control.request_cancel();
  });
  bool cancelled = false;
  rpa::RpaResult res;
  try {
    res = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);
  } catch (const rpa::RunCancelled&) {
    cancelled = true;
  }
  canceller.join();
  if (cancelled) {
    control.reset();
    res = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);
  }
  expect_bitwise_equal(res, expected);
}

// ---------------------------------------------------------------------
// Satellite 4: concurrent in-process tenants are bitwise independent

TEST_F(SvcTest, ConcurrentRunsMatchStandaloneBitwise) {
  const std::string cfg_a = tiny_rpa(7, 3);
  // A genuinely different tenant: different crystal seed AND the
  // reference apply path, sharing the pool with A's fused-path run.
  const std::string cfg_b = tiny_rpa(11, 3) + "FUSED_APPLY: 0\n";
  const rpa::RpaResult expected_a = run_standalone(cfg_a);
  const rpa::RpaResult expected_b = run_standalone(cfg_b);

  rpa::RpaResult got_a, got_b;
  std::exception_ptr err_a, err_b;
  std::thread ta([&] {
    try {
      const svc::JobSpec spec = svc::parse_job(Config::parse(cfg_a));
      rpa::BuiltSystem sys = rpa::build_system(spec.preset);
      rpa::RpaOptions opts = spec.options;
      opts.checkpoint.path = path("tenant_a.ckpt");  // one tenant checkpoints
      got_a = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);
    } catch (...) {
      err_a = std::current_exception();
    }
  });
  std::thread tb([&] {
    try {
      const svc::JobSpec spec = svc::parse_job(Config::parse(cfg_b));
      rpa::BuiltSystem sys = rpa::build_system(spec.preset);
      sched::TaskQuotaScope quota(2);  // and runs under a quota
      got_b = rpa::compute_rpa_energy(sys.ks, *sys.klap, spec.options);
    } catch (...) {
      err_b = std::current_exception();
    }
  });
  ta.join();
  tb.join();
  if (err_a) std::rethrow_exception(err_a);
  if (err_b) std::rethrow_exception(err_b);
  expect_bitwise_equal(got_a, expected_a);
  expect_bitwise_equal(got_b, expected_b);
}

// ---------------------------------------------------------------------
// The service itself

TEST_F(SvcTest, RunsJobsAndWritesReports) {
  const std::string cfg_a = tiny_rpa(7, 2);
  const std::string cfg_b = tiny_rpa(11, 2);
  const rpa::RpaResult expected_a = run_standalone(cfg_a);
  const rpa::RpaResult expected_b = run_standalone(cfg_b);

  svc::ServiceOptions sopts;
  sopts.root = root();
  sopts.slots = 2;
  sopts.poll_ms = 5;
  svc::JobService service(sopts);
  const std::string id_a = service.submit("a", cfg_a);
  const std::string id_b = service.submit("b", cfg_b);
  service.wait_idle();

  const svc::JobStatus st_a = service.status(id_a);
  const svc::JobStatus st_b = service.status(id_b);
  EXPECT_EQ(st_a.state, svc::JobState::kDone);
  EXPECT_EQ(st_b.state, svc::JobState::kDone);
  EXPECT_EQ(st_a.e_rpa, expected_a.e_rpa);
  EXPECT_EQ(st_b.e_rpa, expected_b.e_rpa);

  // The result endpoint: report.json carries the same structured run
  // report a standalone run would produce.
  const obs::Json rep = obs::read_json_file(service.spool().report_file(id_a));
  EXPECT_EQ(rep.at("schema").as_string(), obs::kRunReportSchema);
  EXPECT_EQ(strip_timing(rep.at("rpa")).dump(),
            strip_timing(obs::to_json(expected_a)).dump());

  // status.json round-trips and agrees with the live view.
  const svc::JobStatus disk = service.spool().read_status(id_a);
  EXPECT_EQ(disk.state, svc::JobState::kDone);
  EXPECT_EQ(disk.e_rpa, expected_a.e_rpa);
  service.shutdown();
}

TEST_F(SvcTest, InboxSubmissionRuns) {
  svc::ServiceOptions sopts;
  sopts.root = root();
  sopts.slots = 1;
  sopts.poll_ms = 5;
  svc::JobService service(sopts);
  // Write-elsewhere-then-rename: the submission convention.
  const std::string staged = path("inbox_job.rpa");
  {
    std::ofstream f(staged);
    f << tiny_rpa(7, 2);
  }
  fs::rename(staged, service.spool().inbox_dir() + "/inbox_job.rpa");
  const auto t0 = std::chrono::steady_clock::now();
  while (true) {
    const std::vector<std::string> ids = service.job_ids();
    if (!ids.empty()) break;
    ASSERT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0).count(), 60.0)
        << "inbox file never ingested";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  service.wait_idle();
  const svc::JobStatus st = service.status("inbox_job");
  EXPECT_EQ(st.state, svc::JobState::kDone);
  EXPECT_TRUE(fs::exists(service.spool().report_file("inbox_job")));
  service.shutdown();
}

TEST_F(SvcTest, MalformedJobFailsCleanly) {
  svc::ServiceOptions sopts;
  sopts.root = root();
  sopts.poll_ms = 5;
  svc::JobService service(sopts);
  const std::string id = service.submit("bad", "FAULT_MODE: bogus\n");
  service.wait_idle();
  const svc::JobStatus st = service.status(id);
  EXPECT_EQ(st.state, svc::JobState::kFailed);
  EXPECT_FALSE(st.error.empty());
  service.shutdown();
}

TEST_F(SvcTest, HigherPriorityPreemptsAndBothMatchStandalone) {
  const std::string cfg_low = tiny_rpa(7, 6, /*priority=*/0);
  const std::string cfg_high = tiny_rpa(11, 2, /*priority=*/5);
  const rpa::RpaResult expected_low = run_standalone(cfg_low);
  const rpa::RpaResult expected_high = run_standalone(cfg_high);

  svc::ServiceOptions sopts;
  sopts.root = root();
  sopts.slots = 1;  // the high-priority job can only run by preempting
  sopts.poll_ms = 5;
  svc::JobService service(sopts);
  const std::string id_low = service.submit("low", cfg_low);
  ASSERT_EQ(wait_state(service, id_low, svc::JobState::kRunning).state,
            svc::JobState::kRunning);
  // Let the victim checkpoint at least one quadrature point first, so
  // the preemption provably suspends mid-run and the restart is a
  // checkpoint resume (resumes >= 1), not a fresh start.
  const auto t0 = std::chrono::steady_clock::now();
  while (!fs::exists(service.spool().checkpoint_file(id_low))) {
    ASSERT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0).count(), 120.0)
        << "low-priority job never checkpointed";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string id_high = service.submit("high", cfg_high);
  service.wait_idle();

  const svc::JobStatus st_low = service.status(id_low);
  const svc::JobStatus st_high = service.status(id_high);
  EXPECT_EQ(st_low.state, svc::JobState::kDone);
  EXPECT_EQ(st_high.state, svc::JobState::kDone);
  EXPECT_GE(st_low.preemptions, 1);
  EXPECT_GE(st_low.resumes, 1);
  EXPECT_GE(service.preemption_count(), 1);
  EXPECT_EQ(st_low.e_rpa, expected_low.e_rpa);
  EXPECT_EQ(st_high.e_rpa, expected_high.e_rpa);

  // Preempted-and-resumed must still match the uninterrupted report.
  const obs::Json rep =
      obs::read_json_file(service.spool().report_file(id_low));
  EXPECT_EQ(strip_timing(rep.at("rpa")).dump(),
            strip_timing(obs::to_json(expected_low)).dump());
  service.shutdown();
}

TEST_F(SvcTest, CancelQueuedAndRunningJobs) {
  svc::ServiceOptions sopts;
  sopts.root = root();
  sopts.slots = 1;
  sopts.poll_ms = 5;
  svc::JobService service(sopts);
  const std::string id_run = service.submit("runner", tiny_rpa(7, 6));
  ASSERT_EQ(wait_state(service, id_run, svc::JobState::kRunning).state,
            svc::JobState::kRunning);
  const std::string id_q1 = service.submit("queued1", tiny_rpa(11, 3));
  const std::string id_q2 = service.submit("queued2", tiny_rpa(13, 3));

  service.cancel(id_q1);  // API path
  {                       // marker-file path (what external tooling uses)
    std::ofstream f(service.spool().cancel_file(id_q2));
  }
  service.cancel(id_run);  // cooperative: lands at the next boundary
  service.wait_idle();

  EXPECT_EQ(service.status(id_q1).state, svc::JobState::kCancelled);
  EXPECT_EQ(service.status(id_q2).state, svc::JobState::kCancelled);
  const svc::JobState runner_state = service.status(id_run).state;
  // Either the cancel landed at a boundary or the run beat it to the
  // finish — both are within the cooperative contract.
  EXPECT_TRUE(runner_state == svc::JobState::kCancelled ||
              runner_state == svc::JobState::kDone);
  EXPECT_FALSE(fs::exists(service.spool().report_file(id_q1)));
  service.shutdown();
}

TEST_F(SvcTest, DaemonRestartResumesPreemptedJobs) {
  const std::string cfg = tiny_rpa(7, 5);
  const rpa::RpaResult expected = run_standalone(cfg);

  svc::ServiceOptions sopts;
  sopts.root = root();
  sopts.slots = 1;
  sopts.poll_ms = 5;
  std::string id;
  {
    svc::JobService service(sopts);
    id = service.submit("restartme", cfg);
    // Let it make real progress before the "crash": at least one
    // checkpointed quadrature point.
    const auto t0 = std::chrono::steady_clock::now();
    while (!fs::exists(service.spool().checkpoint_file(id))) {
      ASSERT_LT(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count(), 120.0)
          << "no checkpoint appeared";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    service.shutdown(/*preempt_running=*/true);
    const svc::JobState s = service.status(id).state;
    EXPECT_TRUE(s == svc::JobState::kPreempted || s == svc::JobState::kDone);
  }
  // New daemon, same spool: the preempted job is re-queued and resumed
  // from its checkpoint.
  svc::JobService service2(sopts);
  service2.wait_idle();
  const svc::JobStatus st = service2.status(id);
  EXPECT_EQ(st.state, svc::JobState::kDone);
  EXPECT_EQ(st.e_rpa, expected.e_rpa);
  const obs::Json rep = obs::read_json_file(service2.spool().report_file(id));
  EXPECT_EQ(strip_timing(rep.at("rpa")).dump(),
            strip_timing(obs::to_json(expected)).dump());
  service2.shutdown();
}

// ---------------------------------------------------------------------
// The acceptance soak: >= 24 concurrent heterogeneous jobs — mixed
// sizes, priorities and quotas, one fault-injected, one guaranteed
// preempted-and-resumed — every E_RPA bitwise equal to standalone.

TEST_F(SvcTest, SoakMixedTenantsAllBitwise) {
  // Distinct configs (standalone oracle computed once per distinct text).
  const std::string big_low = tiny_rpa(7, 6, /*priority=*/0, /*quota=*/0);
  std::vector<std::string> small;
  small.push_back(tiny_rpa(11, 2, 1, 0));
  small.push_back(tiny_rpa(13, 2, 2, 2));
  small.push_back(tiny_rpa(17, 3, 3, 4));
  small.push_back(tiny_rpa(19, 2, 4, 0) + "FUSED_APPLY: 0\n");
  small.push_back(tiny_rpa(23, 3, 2, 2) + "TILE_Y: 4\nTILE_Z: 4\n");
  const std::string faulty = tiny_rpa(29, 2, 3, 0) + fault_keys();

  std::vector<std::string> texts;
  texts.push_back(big_low);
  texts.push_back(faulty);
  for (int i = 0; i < 22; ++i) texts.push_back(small[i % small.size()]);
  ASSERT_GE(texts.size(), 24u);

  // Standalone oracles, one per distinct config.
  std::map<std::string, rpa::RpaResult> oracle;
  for (const std::string& t : texts)
    if (!oracle.count(t)) oracle.emplace(t, run_standalone(t));

  svc::ServiceOptions sopts;
  sopts.root = root();
  sopts.slots = 3;
  sopts.poll_ms = 5;
  svc::JobService service(sopts);

  // The designated victim goes first and must be running before the
  // higher-priority burst arrives, so at least one preemption is
  // guaranteed (slots full + strictly higher priority waiting).
  std::vector<std::pair<std::string, const std::string*>> jobs;
  const std::string id_big = service.submit("job00", big_low);
  jobs.emplace_back(id_big, &texts[0]);
  ASSERT_EQ(wait_state(service, id_big, svc::JobState::kRunning).state,
            svc::JobState::kRunning);
  for (std::size_t i = 1; i < texts.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "job%02u", static_cast<unsigned>(i));
    jobs.emplace_back(service.submit(name, texts[i]), &texts[i]);
  }
  service.wait_idle();

  int done = 0;
  for (const auto& [id, text] : jobs) {
    const svc::JobStatus st = service.status(id);
    EXPECT_EQ(st.state, svc::JobState::kDone) << id << ": " << st.error;
    if (st.state != svc::JobState::kDone) continue;
    ++done;
    const rpa::RpaResult& expected = oracle.at(*text);
    EXPECT_EQ(st.e_rpa, expected.e_rpa) << id;
    const obs::Json rep = obs::read_json_file(service.spool().report_file(id));
    EXPECT_EQ(strip_timing(rep.at("rpa")).dump(),
              strip_timing(obs::to_json(expected)).dump())
        << id;
  }
  EXPECT_EQ(done, static_cast<int>(jobs.size()));
  EXPECT_GE(service.preemption_count(), 1);
  EXPECT_GE(service.status(id_big).preemptions, 1);

  // The fault-injected tenant survived degraded — and still bitwise.
  const svc::JobStatus st_fault = service.status(jobs[1].first);
  EXPECT_TRUE(st_fault.degraded);
  EXPECT_TRUE(oracle.at(faulty).degraded);
  service.shutdown();
}

}  // namespace
}  // namespace rsrpa
