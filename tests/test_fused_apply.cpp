// Equivalence and determinism tests for the fused shifted-Hamiltonian
// apply pipeline: the single-sweep stencil kernel vs the seed wrap-table
// reference, the block nonlocal gather-GEMM vs per-column dots, the
// Hamiltonian-level fused/reference paths, and the sched determinism
// contract (bitwise identical output at any thread count).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "grid/stencil.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "sched/thread_pool.hpp"

namespace rsrpa {
namespace {

using grid::FusedTerms;
using grid::Grid3D;
using grid::StencilLaplacian;
using la::cplx;
using la::Matrix;

std::vector<double> random_field(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  rng.fill_uniform(v);
  return v;
}

std::vector<cplx> random_cfield(std::size_t n, std::uint64_t seed) {
  std::vector<double> re = random_field(n, seed);
  std::vector<double> im = random_field(n, seed + 1);
  std::vector<cplx> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = {re[i], im[i]};
  return v;
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

// Fused and reference sweeps accumulate the same stencil sums in a
// different association order, so results agree to a few ulp of the
// row magnitude, not bitwise.
constexpr double kUlpTol = 1e-12;

TEST(FusedStencil, MatchesReferenceOnNonCubicGrids) {
  for (int r : {2, 4, 6}) {
    Grid3D g(14, 15, 13, 5.0, 5.5, 4.5);
    StencilLaplacian lap(g, r);
    const std::vector<double> in = random_field(g.size(), 7u * r);
    std::vector<double> fused(g.size()), ref(g.size());
    lap.apply_fused<double>(in, fused, FusedTerms<double>{});
    lap.apply_reference<double>(in, ref);
    const double tol = kUlpTol * max_abs(ref);
    for (std::size_t i = 0; i < g.size(); ++i)
      ASSERT_NEAR(fused[i], ref[i], tol) << "r=" << r << " i=" << i;
  }
}

TEST(FusedStencil, AxisShorterThanTwoRadiiStaysPeriodic) {
  // nx = 5 < 2r = 8: every x row is a wrapped boundary row, and the wrap
  // tables must still fold multiple times around the axis.
  Grid3D g(5, 12, 9, 2.0, 5.0, 4.0);
  StencilLaplacian lap(g, 4);
  const std::vector<double> in = random_field(g.size(), 42);
  std::vector<double> fused(g.size()), ref(g.size());
  lap.apply_fused<double>(in, fused, FusedTerms<double>{});
  lap.apply_reference<double>(in, ref);
  const double tol = kUlpTol * max_abs(ref);
  for (std::size_t i = 0; i < g.size(); ++i) ASSERT_NEAR(fused[i], ref[i], tol);
}

TEST(FusedStencil, FullTermCombinationMatchesManualSweeps) {
  // alpha Lap(in) + (beta v + shift) in + eta extra, complex, against an
  // explicit multi-sweep evaluation built on the reference kernel.
  Grid3D g(10, 9, 11, 4.0, 3.5, 4.5);
  StencilLaplacian lap(g, 3);
  const std::size_t n = g.size();
  const std::vector<cplx> in = random_cfield(n, 3);
  const std::vector<cplx> extra = random_cfield(n, 5);
  const std::vector<double> v = random_field(n, 9);

  FusedTerms<cplx> t;
  t.alpha = -0.5;
  t.vdiag = v.data();
  t.beta = 2.0;
  t.shift = cplx{-0.3, 0.7};
  t.extra = extra.data();
  t.eta = cplx{0.1, -0.2};

  std::vector<cplx> fused(n), ref(n);
  lap.apply_fused<cplx>(in, fused, t);
  lap.apply_reference<cplx>(in, ref);
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ref[i] = t.alpha * ref[i] + (t.beta * v[i] + t.shift) * in[i] +
             t.eta * extra[i];
    scale = std::max(scale, std::abs(ref[i]));
  }
  const double tol = kUlpTol * scale;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(fused[i].real(), ref[i].real(), tol);
    ASSERT_NEAR(fused[i].imag(), ref[i].imag(), tol);
  }
}

ham::Hamiltonian make_test_hamiltonian(int fd_radius = 4) {
  Rng rng(0);
  ham::Crystal c = ham::make_silicon_chain(1, 0.0, rng);
  Grid3D g = Grid3D::cubic(12, ham::kSiLatticeConstant);
  return ham::Hamiltonian(g, fd_radius, std::move(c), ham::ModelParams{});
}

TEST(FusedHamiltonian, ApplyMatchesReferenceRealAndShifted) {
  for (int r : {2, 4, 6}) {
    ham::Hamiltonian h = make_test_hamiltonian(r);
    const std::size_t n = h.grid().size();
    const std::vector<double> in = random_field(n, 11u + r);
    std::vector<double> fused(n), ref(n);
    h.set_fused_apply(true);
    h.apply<double>(in, fused);
    h.set_fused_apply(false);
    h.apply<double>(in, ref);
    double tol = kUlpTol * max_abs(ref);
    for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(fused[i], ref[i], tol);

    const std::vector<cplx> cin = random_cfield(n, 13u + r);
    std::vector<cplx> cfused(n), cref(n);
    h.set_fused_apply(true);
    h.apply_shifted(cin, cfused, 0.35, 0.8);
    h.set_fused_apply(false);
    h.apply_shifted(cin, cref, 0.35, 0.8);
    double cscale = 0.0;
    for (const cplx& z : cref) cscale = std::max(cscale, std::abs(z));
    tol = kUlpTol * cscale;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(cfused[i].real(), cref[i].real(), tol);
      ASSERT_NEAR(cfused[i].imag(), cref[i].imag(), tol);
    }
  }
}

TEST(FusedHamiltonian, ShiftedBlockMatchesReference) {
  ham::Hamiltonian h = make_test_hamiltonian();
  const std::size_t n = h.grid().size();
  const std::size_t s = 5;
  Matrix<cplx> in(n, s), fused(n, s), ref(n, s);
  for (std::size_t j = 0; j < s; ++j) {
    const std::vector<cplx> col = random_cfield(n, 17 + j);
    std::copy(col.begin(), col.end(), in.col(j).begin());
  }
  h.set_fused_apply(true);
  h.apply_shifted_block(in, fused, 0.2, 1.1);
  h.set_fused_apply(false);
  h.apply_shifted_block(in, ref, 0.2, 1.1);
  double scale = 0.0;
  for (std::size_t j = 0; j < s; ++j)
    for (const cplx& z : ref.col(j)) scale = std::max(scale, std::abs(z));
  const double tol = kUlpTol * scale;
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(fused.col(j)[i].real(), ref.col(j)[i].real(), tol);
      ASSERT_NEAR(fused.col(j)[i].imag(), ref.col(j)[i].imag(), tol);
    }
}

TEST(FusedHamiltonian, PolyBlockMatchesReference) {
  ham::Hamiltonian h = make_test_hamiltonian();
  const std::size_t n = h.grid().size();
  const std::size_t s = 3;
  Matrix<double> in(n, s), extra(n, s), fused(n, s), ref(n, s);
  for (std::size_t j = 0; j < s; ++j) {
    const std::vector<double> a = random_field(n, 23 + j);
    const std::vector<double> b = random_field(n, 31 + j);
    std::copy(a.begin(), a.end(), in.col(j).begin());
    std::copy(b.begin(), b.end(), extra.col(j).begin());
  }
  const double c1 = 1.7, c0 = -0.4, c2 = 0.9;
  // With the extra term.
  h.set_fused_apply(true);
  h.apply_poly_block<double>(in, fused, c1, c0, &extra, c2);
  h.set_fused_apply(false);
  h.apply_poly_block<double>(in, ref, c1, c0, &extra, c2);
  double scale = 0.0;
  for (std::size_t j = 0; j < s; ++j)
    for (double x : ref.col(j)) scale = std::max(scale, std::abs(x));
  double tol = kUlpTol * scale;
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(fused.col(j)[i], ref.col(j)[i], tol);
  // Without the extra term (first Chebyshev step).
  h.set_fused_apply(true);
  h.apply_poly_block<double>(in, fused, c1, c0, nullptr, 0.0);
  h.set_fused_apply(false);
  h.apply_poly_block<double>(in, ref, c1, c0, nullptr, 0.0);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(fused.col(j)[i], ref.col(j)[i], tol);
}

TEST(FusedNonlocal, BlockGemmMatchesPerColumnDots) {
  ham::Hamiltonian h = make_test_hamiltonian();
  const ham::NonlocalProjectors& nl = h.nonlocal();
  ASSERT_GT(nl.n_projectors(), 0u);
  ASSERT_GT(nl.support_size(), 0u);
  const std::size_t n = h.grid().size();
  const std::size_t s = 4;
  const double scale = 1.3;

  Matrix<cplx> in(n, s), gemm(n, s), percol(n, s);
  for (std::size_t j = 0; j < s; ++j) {
    const std::vector<cplx> col = random_cfield(n, 41 + j);
    std::copy(col.begin(), col.end(), in.col(j).begin());
    // apply_add accumulates: seed both outputs with the same base.
    const std::vector<double> base = random_field(n, 51 + j);
    for (std::size_t i = 0; i < n; ++i)
      gemm.col(j)[i] = percol.col(j)[i] = cplx{base[i], -base[i]};
  }
  nl.apply_add_block<cplx>(in, gemm, scale);
  nl.apply_add_block_reference<cplx>(in, percol, scale);
  double mag = 0.0;
  for (std::size_t j = 0; j < s; ++j)
    for (const cplx& z : percol.col(j)) mag = std::max(mag, std::abs(z));
  const double tol = kUlpTol * mag;
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(gemm.col(j)[i].real(), percol.col(j)[i].real(), tol);
      ASSERT_NEAR(gemm.col(j)[i].imag(), percol.col(j)[i].imag(), tol);
    }
}

TEST(FusedDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  // The fused sweep writes disjoint z chunks, so the sched determinism
  // contract applies: results must be bitwise identical at any
  // RSRPA_THREADS setting, not merely within tolerance.
  ham::Hamiltonian h = make_test_hamiltonian();
  h.set_fused_apply(true);
  const std::size_t n = h.grid().size();
  const std::vector<cplx> in = random_cfield(n, 61);
  std::vector<cplx> one(n), four(n);

  sched::set_global_threads(1);
  h.apply_shifted(in, one, 0.15, 0.9);
  sched::set_global_threads(4);
  h.apply_shifted(in, four, 0.15, 0.9);
  sched::set_global_threads(0);  // restore the default pool

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(one[i].real(), four[i].real()) << "i=" << i;
    ASSERT_EQ(one[i].imag(), four[i].imag()) << "i=" << i;
  }
}

TEST(FusedPreconditions, SizeAndAliasViolationsThrow) {
  ham::Hamiltonian h = make_test_hamiltonian();
  const std::size_t n = h.grid().size();
  std::vector<double> in(n), out(n), small(n - 1);
  EXPECT_THROW(
      h.apply<double>(in, std::span<double>(small.data(), small.size())),
      Error);
  EXPECT_THROW(h.apply<double>(std::span<const double>(in.data(), n),
                               std::span<double>(in.data(), n)),
               Error);

  StencilLaplacian lap(h.grid(), 4);
  std::vector<cplx> cbuf(n);
  EXPECT_THROW(lap.apply_fused<cplx>(std::span<const cplx>(cbuf.data(), n),
                                     std::span<cplx>(cbuf.data(), n),
                                     FusedTerms<cplx>{}),
               Error);
}

}  // namespace
}  // namespace rsrpa
