// Tests for the shared bench helpers: the loglog_slope guard rails and
// the JsonReport writer every bench uses for its bench_out/<id>.json.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "bench_util.hpp"

namespace rsrpa::bench {
namespace {

TEST(LoglogSlope, RecoversPowerLawExponent) {
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.5 * v * v * v);  // y = c * x^3
  }
  EXPECT_NEAR(loglog_slope(x, y), 3.0, 1e-12);
}

TEST(LoglogSlope, UndefinedInputsGiveNaNInsteadOfCrashing) {
  // Too few samples.
  EXPECT_TRUE(std::isnan(loglog_slope({}, {})));
  EXPECT_TRUE(std::isnan(loglog_slope({2.0}, {4.0})));
  // Mismatched lengths.
  EXPECT_TRUE(std::isnan(loglog_slope({1.0, 2.0}, {1.0, 2.0, 3.0})));
  // log(0) and log(negative) are undefined; a zero timing sample used to
  // poison the fit with -inf.
  EXPECT_TRUE(std::isnan(loglog_slope({1.0, 2.0}, {0.0, 4.0})));
  EXPECT_TRUE(std::isnan(loglog_slope({1.0, -2.0}, {1.0, 4.0})));
  // All-equal x: vertical fit, denominator n*sxx - sx*sx == 0.
  EXPECT_TRUE(std::isnan(loglog_slope({3.0, 3.0, 3.0}, {1.0, 2.0, 3.0})));
}

TEST(LoglogSlope, FiniteForWellPosedNoisyData) {
  const std::vector<double> x = {10.0, 20.0, 40.0, 80.0};
  const std::vector<double> y = {1.1, 4.2, 15.9, 65.0};  // roughly x^2
  const double slope = loglog_slope(x, y);
  EXPECT_TRUE(std::isfinite(slope));
  EXPECT_NEAR(slope, 2.0, 0.1);
}

TEST(JsonArray, NonFiniteEntriesBecomeNullOnDump) {
  const obs::Json a = json_array(
      {1.5, std::numeric_limits<double>::quiet_NaN(),
       std::numeric_limits<double>::infinity()});
  EXPECT_EQ(a.dump(), "[1.5,null,null]");
}

TEST(JsonReport, WritesSchemaChecksAndDataToReportFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rsrpa_bench_util_test";
  fs::remove_all(dir);
  ASSERT_EQ(setenv("RSRPA_BENCH_OUT", dir.c_str(), 1), 0);

  int exit_code = -1;
  {
    JsonReport report("unit_test_bench", "Unit test", "the writer works");
    report.data()["rows"] = json_array({1.0, 2.0});
    report.data()["label"] = obs::Json("abc");
    EXPECT_TRUE(report.add_check("first check", true));
    EXPECT_FALSE(report.add_check("second check", false));
    EXPECT_FALSE(report.all_pass());
    exit_code = report.finish();
  }
  EXPECT_EQ(exit_code, 1);  // one failing check -> nonzero exit

  const obs::Json j =
      obs::read_json_file((dir / "unit_test_bench.json").string());
  EXPECT_EQ(j.at("schema").as_string(), "rsrpa.bench/1");
  EXPECT_EQ(j.at("bench").as_string(), "unit_test_bench");
  EXPECT_EQ(j.at("paper_element").as_string(), "Unit test");
  EXPECT_FALSE(j.at("pass").as_bool());
  EXPECT_GE(j.at("elapsed_seconds").as_double(), 0.0);
  ASSERT_EQ(j.at("checks").size(), 2u);
  EXPECT_EQ(j.at("checks").as_array()[0].at("name").as_string(),
            "first check");
  EXPECT_TRUE(j.at("checks").as_array()[0].at("pass").as_bool());
  EXPECT_FALSE(j.at("checks").as_array()[1].at("pass").as_bool());
  EXPECT_EQ(j.at("data").at("rows").dump(), "[1.0,2.0]");
  EXPECT_EQ(j.at("data").at("label").as_string(), "abc");

  EXPECT_EQ(unsetenv("RSRPA_BENCH_OUT"), 0);
  fs::remove_all(dir);
}

TEST(JsonReport, UnwritableReportPathFailsWithoutAborting) {
  ASSERT_EQ(setenv("RSRPA_BENCH_OUT", "/proc/nonexistent_dir", 1), 0);
  JsonReport report("unit_test_unwritable", "Unit test",
                    "write failure exits nonzero");
  report.add_check("ok", true);
  EXPECT_EQ(report.finish(), 1);  // reported, not std::terminate'd
  EXPECT_EQ(unsetenv("RSRPA_BENCH_OUT"), 0);
}

TEST(JsonReport, AllPassingChecksGiveZeroExit) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rsrpa_bench_util_pass";
  fs::remove_all(dir);
  ASSERT_EQ(setenv("RSRPA_BENCH_OUT", dir.c_str(), 1), 0);

  JsonReport report("unit_test_pass", "Unit test", "exit code is zero");
  report.add_check("ok", true);
  EXPECT_EQ(report.finish(), 0);
  EXPECT_TRUE(obs::read_json_file((dir / "unit_test_pass.json").string())
                  .at("pass")
                  .as_bool());

  EXPECT_EQ(unsetenv("RSRPA_BENCH_OUT"), 0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace rsrpa::bench
