// Tests for the binary snapshot I/O (the SPARC -> RPA handoff format).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "io/snapshot.hpp"
#include "rpa/presets.hpp"

namespace rsrpa::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test process: ctest runs the cases of this suite
    // concurrently, and a shared path would let one process's TearDown
    // delete another's files mid-test.
    dir_ = std::filesystem::temp_directory_path() /
           ("rsrpa_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, MatrixRoundTrip) {
  Rng rng(1);
  la::Matrix<double> m(17, 5);
  for (std::size_t j = 0; j < 5; ++j) rng.fill_uniform(m.col(j));
  save_matrix(path("m.bin"), m);
  la::Matrix<double> r = load_matrix(path("m.bin"));
  ASSERT_EQ(r.rows(), 17u);
  ASSERT_EQ(r.cols(), 5u);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 17; ++i)
      EXPECT_DOUBLE_EQ(r(i, j), m(i, j));
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(load_matrix(path("nope.bin")), Error);
}

TEST_F(IoTest, BadMagicThrows) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "GARBAGE!" << std::string(64, '\0');
  out.close();
  EXPECT_THROW(load_matrix(path("bad.bin")), Error);
}

TEST_F(IoTest, OverflowingShapeHeaderThrows) {
  // Regression: rows = cols = 2^33 made the old `rows * cols < 2^34`
  // plausibility check wrap to 0 mod 2^64 and pass, turning a corrupt
  // header into a giant allocation. Each dimension (and their product)
  // is now validated on its own.
  std::ofstream out(path("wrap.bin"), std::ios::binary);
  out << "RSRPAB01";
  const std::uint64_t dim = 1ull << 33;
  for (int k = 0; k < 2; ++k)
    for (int byte = 0; byte < 8; ++byte)
      out.put(static_cast<char>((dim >> (8 * byte)) & 0xff));
  out.close();
  EXPECT_THROW(load_matrix(path("wrap.bin")), Error);
}

TEST_F(IoTest, ZeroShapeHeaderThrows) {
  std::ofstream out(path("zero.bin"), std::ios::binary);
  out << "RSRPAB01" << std::string(16, '\0');  // rows = cols = 0
  out.close();
  EXPECT_THROW(load_matrix(path("zero.bin")), Error);
}

TEST_F(IoTest, TruncatedShapeHeaderThrows) {
  // Regression: read_u64 at EOF used to yield 0 silently; a file cut off
  // mid-header must fail on the stream state, not parse zeros.
  std::ofstream out(path("cut.bin"), std::ios::binary);
  out << "RSRPAB01";
  for (int byte = 0; byte < 4; ++byte) out.put('\x01');  // half a u64
  out.close();
  EXPECT_THROW(load_matrix(path("cut.bin")), Error);
}

TEST_F(IoTest, TruncatedPayloadThrows) {
  Rng rng(2);
  la::Matrix<double> m(40, 4);
  for (std::size_t j = 0; j < 4; ++j) rng.fill_uniform(m.col(j));
  save_matrix(path("t.bin"), m);
  // Truncate the file to half its size.
  const auto full = std::filesystem::file_size(path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), full / 2);
  EXPECT_THROW(load_matrix(path("t.bin")), Error);
}

TEST_F(IoTest, AtomicWriteSurvivesACrashMidBody) {
  // Simulated torn write: the body throws halfway through. The previous
  // contents at the final path must be untouched and no tmp file may be
  // left behind — save_matrix/save_ks_snapshot route through this.
  Rng rng(3);
  la::Matrix<double> keep(9, 3);
  for (std::size_t j = 0; j < 3; ++j) rng.fill_uniform(keep.col(j));
  save_matrix(path("a.bin"), keep);

  struct Boom {};
  EXPECT_THROW(atomic_write(path("a.bin"),
                            [](std::ostream& out) {
                              out << "partial garbage";
                              throw Boom{};
                            }),
               Boom);

  la::Matrix<double> r = load_matrix(path("a.bin"));  // old file intact
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(r(i, j), keep(i, j));
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "tmp residue: " << entry.path();
}

TEST_F(IoTest, AtomicWriteLeavesNoTmpFileOnSuccess) {
  Rng rng(4);
  la::Matrix<double> m(6, 2);
  for (std::size_t j = 0; j < 2; ++j) rng.fill_uniform(m.col(j));
  save_matrix(path("ok.bin"), m);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(IoTest, KsSnapshotRoundTripAndRestore) {
  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 7;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);

  save_ks_snapshot(path("ks.bin"), sys.ks);
  KsSnapshot snap = load_ks_snapshot(path("ks.bin"));
  EXPECT_EQ(snap.nx, 7u);
  EXPECT_EQ(snap.eigenvalues.size(), sys.ks.n_occ());
  EXPECT_DOUBLE_EQ(snap.homo, sys.ks.homo);
  EXPECT_DOUBLE_EQ(snap.lumo, sys.ks.lumo);

  dft::KsSystem restored = restore_ks_system(snap, sys.h);
  EXPECT_EQ(restored.n_occ(), sys.ks.n_occ());
  EXPECT_DOUBLE_EQ(restored.gap(), sys.ks.gap());
  for (std::size_t j = 0; j < restored.n_occ(); ++j)
    for (std::size_t i = 0; i < restored.n_grid(); ++i)
      EXPECT_DOUBLE_EQ(restored.orbitals(i, j), sys.ks.orbitals(i, j));
}

TEST_F(IoTest, RestoreRejectsGridMismatch) {
  rpa::SystemPreset p7 = rpa::make_si_preset(1, false);
  p7.grid_per_cell = 7;
  p7.fd_radius = 3;
  rpa::BuiltSystem s7 = rpa::build_system(p7);
  save_ks_snapshot(path("ks7.bin"), s7.ks);
  KsSnapshot snap = load_ks_snapshot(path("ks7.bin"));

  rpa::SystemPreset p8 = p7;
  p8.grid_per_cell = 8;
  rpa::BuiltSystem s8 = rpa::build_system(p8);
  EXPECT_THROW(restore_ks_system(snap, s8.h), Error);
}

TEST_F(IoTest, RestoredSystemDrivesSternheimerSolves) {
  // The handoff must be semantically complete: RPA runs from the restored
  // system exactly as from the original.
  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 7;
  preset.n_eig_per_atom = 2;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  save_ks_snapshot(path("ks.bin"), sys.ks);
  dft::KsSystem restored =
      restore_ks_system(load_ks_snapshot(path("ks.bin")), sys.h);

  rpa::RpaOptions opts = sys.default_rpa_options();
  opts.ell = 2;
  rpa::RpaResult a = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);
  rpa::RpaResult b = rpa::compute_rpa_energy(restored, *sys.klap, opts);
  // Inputs and seeds are bit-identical, but Algorithm 4's block-size
  // probe is WALL-TIME driven, so the two runs may legitimately pick
  // different chunkings; results agree to solver tolerance, not bits.
  EXPECT_NEAR(a.e_rpa, b.e_rpa, 1e-3 * std::abs(a.e_rpa));
}

}  // namespace
}  // namespace rsrpa::io
