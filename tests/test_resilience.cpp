// Tests for the breakdown-recovery ladder (solver/resilience.hpp): the
// deterministic fault-injection harness, each rung of the ladder in
// escalation order (restart -> deflation -> solver swap -> quarantine),
// report invariants under injected faults, and the end-to-end drill that
// a fault at one quadrature point degrades — never aborts — a full RPA
// run. Labeled `resilience` in ctest so the suite can be run alone under
// -DRSRPA_SANITIZE=address / =thread builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/lu.hpp"
#include "obs/event_log.hpp"
#include "par/parallel_rpa.hpp"
#include "rpa/erpa.hpp"
#include "rpa/presets.hpp"
#include "solver/block_cocg.hpp"
#include "solver/dynamic_block.hpp"
#include "solver/resilience.hpp"

namespace rsrpa::solver {
namespace {

using la::cplx;
using la::Matrix;

Matrix<cplx> random_complex_symmetric(std::size_t n, Rng& rng,
                                      cplx diag_shift) {
  Matrix<cplx> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const cplx v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a(i, j) = v;
      a(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) a(i, i) += diag_shift;
  return a;
}

BlockOpC dense_op(const Matrix<cplx>& a) {
  return [&a](const Matrix<cplx>& in, Matrix<cplx>& out) {
    la::gemm_nn(cplx{1}, a, in, cplx{0}, out);
  };
}

Matrix<cplx> random_cblock(std::size_t n, std::size_t s, Rng& rng) {
  Matrix<cplx> b(n, s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i)
      b(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return b;
}

double block_error(const Matrix<cplx>& a, const Matrix<cplx>& b) {
  double e = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      e = std::max(e, std::abs(a(i, j) - b(i, j)));
  return e;
}

bool block_finite(const Matrix<cplx>& m) {
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i)
      if (!std::isfinite(m(i, j).real()) || !std::isfinite(m(i, j).imag()))
        return false;
  return true;
}

// ---------------------------------------------------------------------------
// FaultInjectingOp: the deterministic chaos harness itself.

TEST(FaultInjection, ModeParsing) {
  EXPECT_EQ(fault_mode_from_string(""), FaultMode::kNone);
  EXPECT_EQ(fault_mode_from_string("none"), FaultMode::kNone);
  EXPECT_EQ(fault_mode_from_string("off"), FaultMode::kNone);
  EXPECT_EQ(fault_mode_from_string("nan"), FaultMode::kNanMatvec);
  EXPECT_EQ(fault_mode_from_string("perturb"), FaultMode::kPerturbMatvec);
  EXPECT_EQ(fault_mode_from_string("zero"), FaultMode::kZeroMatvec);
  EXPECT_THROW(fault_mode_from_string("bogus"), Error);
}

TEST(FaultModeScope, SelectsPerPointAndRestoresOnExit) {
  FaultMode slot = FaultMode::kNanMatvec;
  {
    FaultModeScope scope(slot);
    EXPECT_EQ(scope.requested(), FaultMode::kNanMatvec);
    scope.select_for_point(1, 0);  // fault pinned to point 0: disarmed
    EXPECT_EQ(slot, FaultMode::kNone);
    scope.select_for_point(0, 0);  // the targeted point: armed
    EXPECT_EQ(slot, FaultMode::kNanMatvec);
    scope.select_for_point(5, -1);  // -1 targets every point
    EXPECT_EQ(slot, FaultMode::kNanMatvec);
    scope.select_for_point(2, 0);
    EXPECT_EQ(slot, FaultMode::kNone);
  }
  // Regression: the drivers used to leave the live operator at whatever
  // the last point selected; the guard must restore the requested mode.
  EXPECT_EQ(slot, FaultMode::kNanMatvec);
}

TEST(FaultModeScope, RestoresOnTheExceptionPath) {
  FaultMode slot = FaultMode::kZeroMatvec;
  try {
    FaultModeScope scope(slot);
    scope.select_for_point(3, 0);
    EXPECT_EQ(slot, FaultMode::kNone);
    throw std::runtime_error("simulated crash mid-sweep");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(slot, FaultMode::kZeroMatvec);
}

TEST(FaultInjection, OneShotFaultFiresAtConfiguredApply) {
  Rng rng(11);
  Matrix<cplx> a = random_complex_symmetric(8, rng, cplx{6.0, 1.0});
  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kNanMatvec;
  fopts.at_apply = 2;
  fopts.max_faults = 1;
  FaultInjectingOp op(dense_op(a), fopts);

  Matrix<cplx> in = random_cblock(8, 1, rng), out(8, 1);
  for (long idx = 0; idx < 5; ++idx) {
    op(in, out);
    EXPECT_EQ(block_finite(out), idx != 2) << "apply " << idx;
  }
  EXPECT_EQ(op.applies(), 5);
  EXPECT_EQ(op.faults_injected(), 1);
}

TEST(FaultInjection, PeriodicFaultsRespectBudget) {
  Rng rng(12);
  Matrix<cplx> a = random_complex_symmetric(6, rng, cplx{6.0, 1.0});
  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kZeroMatvec;
  fopts.at_apply = 0;
  fopts.period = 2;
  fopts.max_faults = 3;
  FaultInjectingOp op(dense_op(a), fopts);

  Matrix<cplx> in = random_cblock(6, 1, rng), out(6, 1);
  int zeroed = 0;
  for (long idx = 0; idx < 7; ++idx) {
    op(in, out);
    const bool is_zero = la::norm_fro(out) == 0.0;
    if (is_zero) ++zeroed;
    // Fires at applies 0, 2, 4 then the budget is spent.
    EXPECT_EQ(is_zero, idx % 2 == 0 && idx <= 4) << "apply " << idx;
  }
  EXPECT_EQ(zeroed, 3);
  EXPECT_EQ(op.faults_injected(), 3);
}

TEST(FaultInjection, PerturbationIsDeterministicInSeed) {
  Rng rng(13);
  Matrix<cplx> a = random_complex_symmetric(6, rng, cplx{6.0, 1.0});
  Matrix<cplx> in = random_cblock(6, 2, rng);

  auto run = [&](std::uint64_t seed) {
    FaultInjectionOptions fopts;
    fopts.mode = FaultMode::kPerturbMatvec;
    fopts.at_apply = 0;
    fopts.max_faults = 1;
    fopts.seed = seed;
    FaultInjectingOp op(dense_op(a), fopts);
    Matrix<cplx> out(6, 2);
    op(in, out);
    return out;
  };

  Matrix<cplx> first = run(42), again = run(42), other = run(43);
  EXPECT_EQ(block_error(first, again), 0.0);  // bitwise reproducible
  EXPECT_GT(block_error(first, other), 0.0);
}

TEST(FaultInjection, CopiesShareTheApplyCounter) {
  Rng rng(14);
  Matrix<cplx> a = random_complex_symmetric(5, rng, cplx{6.0, 1.0});
  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kNanMatvec;
  fopts.at_apply = 1;
  FaultInjectingOp op(dense_op(a), fopts);
  FaultInjectingOp copy = op;  // BlockOpC copies the callable

  Matrix<cplx> in = random_cblock(5, 1, rng), out(5, 1);
  op(in, out);
  copy(in, out);  // apply index 1: the copy must see the shared counter
  EXPECT_FALSE(block_finite(out));
  EXPECT_EQ(op.applies(), 2);
  EXPECT_EQ(copy.faults_injected(), 1);
}

// ---------------------------------------------------------------------------
// The ladder, rung by rung.

TEST(ResilienceLadder, TransientNanFaultRecoversWithOneRestart) {
  Rng rng(21);
  const std::size_t n = 30, s = 4;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, s, rng);
  Matrix<cplx> y(n, s);

  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kNanMatvec;
  fopts.at_apply = 1;  // poison the first iteration's block matvec
  fopts.max_faults = 1;
  FaultInjectingOp op(dense_op(a), fopts);

  SolverOptions sopts;
  sopts.tol = 1e-10;
  obs::EventLog events;
  ResilientSolveResult r =
      resilient_block_solve(op, b, y, sopts, ResilienceOptions{}, 0, &events);

  EXPECT_TRUE(r.report.converged);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_EQ(r.deflations, 0);
  EXPECT_EQ(r.solver_swaps, 0);
  EXPECT_TRUE(r.quarantined.empty());
  EXPECT_EQ(events.count(obs::events::kSolverBreakdown), 1u);
  EXPECT_EQ(events.count(obs::events::kSolverRestart), 1u);
  EXPECT_LT(block_error(y, la::lu_solve(a, b)), 1e-7);
}

TEST(ResilienceLadder, DependentColumnsDeflateToSingles) {
  Rng rng(22);
  const std::size_t n = 24;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, 2, rng);
  for (std::size_t i = 0; i < n; ++i) b(i, 1) = b(i, 0);  // rank-1 block
  Matrix<cplx> y(n, 2);

  SolverOptions sopts;
  sopts.tol = 1e-10;
  obs::EventLog events;
  ResilientSolveResult r = resilient_block_solve(
      dense_op(a), b, y, sopts, ResilienceOptions{}, 0, &events);

  EXPECT_TRUE(r.report.converged);
  // The initial rank check touches nothing, so no restart is spent on it.
  EXPECT_EQ(r.restarts, 0);
  EXPECT_EQ(r.deflations, 1);
  EXPECT_EQ(r.solver_swaps, 0);
  EXPECT_TRUE(r.quarantined.empty());
  EXPECT_EQ(events.count(obs::events::kBlockDeflation), 1u);
  EXPECT_LT(block_error(y, la::lu_solve(a, b)), 1e-7);
}

TEST(ResilienceLadder, QuasiNullColumnEscalatesToGmres) {
  // A = diag(1, 1, 2), b = (1, i, 1): after one COCG step the residual is
  // a genuine quasi-null vector (w^T w = 0, w != 0) — the bilinear-form
  // family (COCG restart, COCR, symmetric QMR) all break down and only
  // GMRES, with its Hermitian inner product, can finish the column.
  Matrix<cplx> a(3, 3);
  a(0, 0) = cplx{1.0, 0.0};
  a(1, 1) = cplx{1.0, 0.0};
  a(2, 2) = cplx{2.0, 0.0};
  Matrix<cplx> b(3, 1);
  b(0, 0) = cplx{1.0, 0.0};
  b(1, 0) = cplx{0.0, 1.0};
  b(2, 0) = cplx{1.0, 0.0};
  Matrix<cplx> y(3, 1);

  SolverOptions sopts;
  sopts.tol = 1e-10;
  obs::EventLog events;
  ResilientSolveResult r = resilient_block_solve(
      dense_op(a), b, y, sopts, ResilienceOptions{}, 0, &events);

  EXPECT_TRUE(r.report.converged);
  EXPECT_EQ(r.restarts, 1);    // the first breakdown had made progress
  EXPECT_EQ(r.deflations, 0);  // single column: nothing to halve
  EXPECT_EQ(r.solver_swaps, 3);
  EXPECT_TRUE(r.quarantined.empty());
  EXPECT_EQ(events.count(obs::events::kSolverRestart), 1u);
  EXPECT_EQ(events.count(obs::events::kSolverSwap), 3u);
  EXPECT_NEAR(std::abs(y(0, 0) - cplx{1.0, 0.0}), 0.0, 1e-8);
  EXPECT_NEAR(std::abs(y(1, 0) - cplx{0.0, 1.0}), 0.0, 1e-8);
  EXPECT_NEAR(std::abs(y(2, 0) - cplx{0.5, 0.0}), 0.0, 1e-8);
}

TEST(ResilienceLadder, PersistentZeroFaultQuarantinesAllColumns) {
  Rng rng(23);
  const std::size_t n = 16, s = 2;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, s, rng);
  Matrix<cplx> guess = random_cblock(n, s, rng);
  Matrix<cplx> y = guess;

  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kZeroMatvec;
  fopts.at_apply = 0;
  fopts.period = 1;  // every single apply
  fopts.max_faults = 1 << 30;
  FaultInjectingOp op(dense_op(a), fopts);

  SolverOptions sopts;
  sopts.tol = 1e-10;
  obs::EventLog events;
  ResilientSolveResult r =
      resilient_block_solve(op, b, y, sopts, ResilienceOptions{},
                            /*col0=*/3, &events);

  EXPECT_FALSE(r.report.converged);
  ASSERT_EQ(r.quarantined.size(), 2u);
  EXPECT_EQ(r.quarantined[0], 3);  // global indices, offset by col0
  EXPECT_EQ(r.quarantined[1], 4);
  EXPECT_EQ(r.deflations, 1);
  EXPECT_EQ(r.solver_swaps, 6);  // three per surviving column
  EXPECT_EQ(events.count(obs::events::kColumnQuarantine), 2u);
  // Quarantined columns come back as the entry guess, bit for bit: the
  // only iterate still trusted, and finite by construction.
  EXPECT_EQ(block_error(y, guess), 0.0);
  // Failed attempts still cost matvecs and must be accounted.
  EXPECT_GT(r.report.matvec_columns, 0);
}

TEST(ResilienceLadder, DisabledPolicyPropagatesBreakdown) {
  Rng rng(24);
  const std::size_t n = 12;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, 2, rng);
  for (std::size_t i = 0; i < n; ++i) b(i, 1) = b(i, 0);
  Matrix<cplx> y(n, 2);

  SolverOptions sopts;
  ResilienceOptions ropts;
  ropts.enabled = false;  // legacy behavior: breakdowns escape
  EXPECT_THROW(resilient_block_solve(dense_op(a), b, y, sopts, ropts),
               NumericalBreakdown);
}

// Every matvec perturbed by absolute noise: the residual cannot drop
// below the noise floor, so a tolerance beneath it produces a genuine
// plateau for the stagnation probe to catch.
FaultInjectingOp noisy_op(const Matrix<cplx>& a) {
  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kPerturbMatvec;
  fopts.at_apply = 0;
  fopts.period = 1;
  fopts.max_faults = 1 << 30;
  fopts.magnitude = 1e-4;
  return FaultInjectingOp(dense_op(a), fopts);
}

TEST(ResilienceLadder, StagnationThrowsFromTheBareSolver) {
  Rng rng(25);
  const std::size_t n = 12;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, 1, rng);
  Matrix<cplx> y(n, 1);

  SolverOptions sopts;
  sopts.tol = 1e-10;  // below the 1e-4 noise floor: unreachable
  sopts.max_iter = 200;
  sopts.stagnation_window = 10;
  EXPECT_THROW(block_cocg(noisy_op(a), b, y, sopts), NumericalBreakdown);

  // Window off: the same plateau just runs to max_iter, no breakdown.
  sopts.stagnation_window = 0;
  Matrix<cplx> y2(n, 1);
  SolveReport rep = block_cocg(noisy_op(a), b, y2, sopts);
  EXPECT_FALSE(rep.converged);
}

TEST(ResilienceLadder, StagnationRoutesIntoLadder) {
  Rng rng(25);
  const std::size_t n = 12;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, 1, rng);
  Matrix<cplx> y(n, 1);

  SolverOptions sopts;
  sopts.tol = 1e-10;  // below the 1e-4 noise floor: unreachable
  sopts.max_iter = 200;
  sopts.stagnation_window = 10;
  // Swap rung off so the escalation path is fully pinned: the stagnation
  // breakdown costs the restart budget, stalls again, and quarantines.
  ResilienceOptions ropts;
  ropts.solver_swap = false;
  obs::EventLog events;
  ResilientSolveResult r =
      resilient_block_solve(noisy_op(a), b, y, sopts, ropts, 0, &events);

  EXPECT_FALSE(r.report.converged);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_EQ(r.solver_swaps, 0);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0], 0);
  EXPECT_GE(events.count(obs::events::kSolverBreakdown), 2u);
  EXPECT_EQ(events.count(obs::events::kSolverRestart), 1u);
  EXPECT_TRUE(block_finite(y));
}

// ---------------------------------------------------------------------------
// Algorithm 4 under faults: recovered chunks never feed the timing probe,
// and the probe retries at the same size after a poisoned chunk.

TEST(DynamicBlockResilience, PoisonedProbeChunkIsRetried) {
  Rng rng(31);
  const std::size_t n = 40, n_rhs = 12;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, n_rhs, rng);
  Matrix<cplx> y(n, n_rhs);

  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kNanMatvec;
  fopts.at_apply = 1;  // hits the very first s = 1 probe chunk
  fopts.max_faults = 1;
  FaultInjectingOp op(dense_op(a), fopts);

  DynamicBlockOptions opts;
  opts.solver.tol = 1e-10;
  obs::EventLog events;
  opts.events = &events;
  DynamicBlockReport rep = solve_dynamic_block(op, b, y, opts);

  EXPECT_TRUE(rep.all_converged);
  EXPECT_EQ(rep.total_restarts, 1);
  EXPECT_TRUE(rep.quarantined_columns.empty());
  ASSERT_GE(rep.chunks.size(), 2u);
  // Chunk 0 recovered via restart, so it cannot anchor the probe; chunk 1
  // re-probes at the same size s = 1.
  EXPECT_EQ(rep.chunks[0].block_size, 1);
  EXPECT_EQ(rep.chunks[0].restarts, 1);
  EXPECT_TRUE(rep.chunks[0].recovered());
  EXPECT_EQ(rep.chunks[1].block_size, 1);
  EXPECT_FALSE(rep.chunks[1].recovered());
  EXPECT_EQ(events.count(obs::events::kSolverRestart), 1u);
  EXPECT_LT(block_error(y, la::lu_solve(a, b)), 1e-7);
}

TEST(DynamicBlockResilience, AllChunksQuarantinedStillCoversEveryColumn) {
  Rng rng(32);
  const std::size_t n = 20, n_rhs = 5;
  Matrix<cplx> a = random_complex_symmetric(n, rng, cplx{8.0, 2.0});
  Matrix<cplx> b = random_cblock(n, n_rhs, rng);
  Matrix<cplx> y(n, n_rhs);

  FaultInjectionOptions fopts;
  fopts.mode = FaultMode::kZeroMatvec;
  fopts.at_apply = 0;
  fopts.period = 1;
  fopts.max_faults = 1 << 30;
  FaultInjectingOp op(dense_op(a), fopts);

  DynamicBlockOptions opts;
  obs::EventLog events;
  opts.events = &events;
  DynamicBlockReport rep = solve_dynamic_block(op, b, y, opts);

  EXPECT_FALSE(rep.all_converged);
  ASSERT_EQ(rep.quarantined_columns.size(), n_rhs);
  for (std::size_t j = 0; j < n_rhs; ++j)
    EXPECT_EQ(rep.quarantined_columns[j], static_cast<long>(j));
  EXPECT_EQ(events.count(obs::events::kColumnQuarantine), n_rhs);
  // Every column was attempted and recorded despite the persistent fault.
  long covered = 0;
  for (const ChunkRecord& c : rep.chunks) covered += c.n_rhs;
  EXPECT_EQ(covered, static_cast<long>(n_rhs));
  EXPECT_GT(rep.total_matvec_columns, 0);
  EXPECT_TRUE(block_finite(y));
}

}  // namespace
}  // namespace rsrpa::solver

// ---------------------------------------------------------------------------
// End-to-end drills: an injected fault at one quadrature point degrades
// the run — finite energy, flagged point — and never aborts it.

namespace rsrpa {
namespace {

class FaultDrillTest : public ::testing::Test {
 protected:
  static rpa::BuiltSystem& built() {
    static rpa::BuiltSystem b = [] {
      rpa::SystemPreset p = rpa::make_si_preset(1, false);
      p.grid_per_cell = 7;
      p.n_eig_per_atom = 2;  // n_eig = 16
      p.fd_radius = 3;
      return rpa::build_system(p);
    }();
    return b;
  }

  static rpa::RpaOptions base_options() {
    rpa::RpaOptions opts = built().default_rpa_options();
    opts.n_eig = 16;
    opts.ell = 3;
    opts.tol_eig = {4e-3, 2e-3, 2e-3};
    return opts;
  }

  // Persistent zero-matvec fault pinned to quadrature point 0, orbital 0:
  // every Sternheimer solve for that orbital at that point quarantines.
  static void add_point_fault(rpa::RpaOptions& opts) {
    opts.stern.fault.mode = solver::FaultMode::kZeroMatvec;
    opts.stern.fault.at_apply = 0;
    opts.stern.fault.period = 1;
    opts.stern.fault.max_faults = 1 << 30;
    opts.stern.fault.orbital = 0;
    opts.fault_omega = 0;
  }
};

TEST_F(FaultDrillTest, RunRpaSurvivesAFaultyQuadraturePoint) {
  auto& b = built();
  rpa::RpaOptions opts = base_options();
  add_point_fault(opts);

  rpa::RpaResult res = rpa::compute_rpa_energy(b.ks, *b.klap, opts);

  EXPECT_TRUE(std::isfinite(res.e_rpa));
  EXPECT_LT(res.e_rpa, 0.0);
  EXPECT_TRUE(res.degraded);
  EXPECT_FALSE(res.converged);
  ASSERT_EQ(res.per_omega.size(), 3u);
  EXPECT_GT(res.per_omega[0].quarantined_columns, 0);
  EXPECT_FALSE(res.per_omega[0].converged);
  // The fault is pinned to point 0: the other points stay clean.
  EXPECT_EQ(res.per_omega[1].quarantined_columns, 0);
  EXPECT_EQ(res.per_omega[2].quarantined_columns, 0);
  EXPECT_GE(res.events.count(obs::events::kQuadPointDegraded), 1u);
  EXPECT_GT(res.stern.quarantined_columns, 0);
}

TEST_F(FaultDrillTest, RunParallelRpaSurvivesAFaultyQuadraturePoint) {
  auto& b = built();
  par::ParallelRpaOptions opts;
  opts.rpa = base_options();
  opts.n_ranks = 2;
  add_point_fault(opts.rpa);

  par::ParallelRpaResult res = par::run_parallel_rpa(b.ks, *b.klap, opts);

  EXPECT_TRUE(std::isfinite(res.rpa.e_rpa));
  EXPECT_TRUE(res.rpa.degraded);
  ASSERT_EQ(res.rpa.per_omega.size(), 3u);
  EXPECT_GT(res.rpa.per_omega[0].quarantined_columns, 0);
  EXPECT_EQ(res.rpa.per_omega[1].quarantined_columns, 0);
  EXPECT_GE(res.rpa.events.count(obs::events::kQuadPointDegraded), 1u);
}

TEST_F(FaultDrillTest, QuarantinedColumnsAreReseededBeforeTheNextPoint) {
  // Warm-start decontamination: point 0's quarantined V columns hold
  // whatever the ladder froze them at; the driver must re-randomize them
  // before point 1, so the poisoned omega never contaminates downstream
  // records. Fixed blocking keeps the run deterministic.
  auto& b = built();
  rpa::RpaOptions opts = base_options();
  opts.stern.dynamic_block = false;
  opts.stern.fixed_block = 4;
  add_point_fault(opts);

  rpa::RpaResult res = rpa::compute_rpa_energy(b.ks, *b.klap, opts);

  ASSERT_EQ(res.per_omega.size(), 3u);
  const std::vector<long>& idx = res.per_omega[0].quarantined_column_indices;
  ASSERT_FALSE(idx.empty());
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) == idx.end());
  for (long c : idx) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, static_cast<long>(opts.n_eig));
  }
  // The raw count can exceed the distinct-column count (the same column
  // can quarantine for several occupied orbitals).
  EXPECT_GE(res.per_omega[0].quarantined_columns,
            static_cast<long>(idx.size()));
  EXPECT_GE(res.events.count(obs::events::kWarmStartReseed), 1u);
  // Downstream of the reseed the run is clean: no quarantines, converged
  // subspaces, no reseed events for the later points.
  EXPECT_EQ(res.per_omega[1].quarantined_columns, 0);
  EXPECT_EQ(res.per_omega[2].quarantined_columns, 0);
  EXPECT_TRUE(res.per_omega[1].converged);
  EXPECT_TRUE(res.per_omega[2].converged);
  EXPECT_EQ(res.events.count(obs::events::kWarmStartReseed), 1u);
}

TEST_F(FaultDrillTest, MidSweepFaultOmegaArmsExactlyOnePoint) {
  // Regression for the per-point fault toggle: arming the middle point
  // exercises disarm -> arm -> disarm across the sweep (the scope guard
  // owns the mutation now), and the reseed keeps point 2 clean.
  auto& b = built();
  rpa::RpaOptions opts = base_options();
  opts.stern.dynamic_block = false;
  opts.stern.fixed_block = 4;
  add_point_fault(opts);
  opts.fault_omega = 1;

  rpa::RpaResult res = rpa::compute_rpa_energy(b.ks, *b.klap, opts);

  ASSERT_EQ(res.per_omega.size(), 3u);
  EXPECT_EQ(res.per_omega[0].quarantined_columns, 0);
  EXPECT_GT(res.per_omega[1].quarantined_columns, 0);
  EXPECT_EQ(res.per_omega[2].quarantined_columns, 0);
  EXPECT_TRUE(res.per_omega[2].converged);
}

TEST_F(FaultDrillTest, LadderIsBitwiseInvisibleOnCleanRuns) {
  // With injection off and no breakdown, the ladder's bookkeeping wraps
  // the same arithmetic in the same order: enabling it must not move the
  // energy by even one ulp. Algorithm 4's block-size probe keys off wall
  // time, so fix the blocking to make the two runs comparable at all.
  auto& b = built();
  rpa::RpaOptions on = base_options(), off = base_options();
  on.stern.dynamic_block = false;
  off.stern.dynamic_block = false;
  on.stern.fixed_block = 4;
  off.stern.fixed_block = 4;
  on.stern.resilience.enabled = true;
  off.stern.resilience.enabled = false;

  rpa::RpaResult r_on = rpa::compute_rpa_energy(b.ks, *b.klap, on);
  rpa::RpaResult r_off = rpa::compute_rpa_energy(b.ks, *b.klap, off);

  EXPECT_TRUE(r_on.converged);
  EXPECT_FALSE(r_on.degraded);
  EXPECT_EQ(r_on.e_rpa, r_off.e_rpa);
  for (std::size_t k = 0; k < r_on.per_omega.size(); ++k)
    EXPECT_EQ(r_on.per_omega[k].e_term, r_off.per_omega[k].e_term) << k;
}

}  // namespace
}  // namespace rsrpa
