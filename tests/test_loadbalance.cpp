// Tests for the work-distribution schedulers (SS V manager-worker study)
// and the SLQ-based E_RPA driver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "par/load_balance.hpp"
#include "par/partition.hpp"
#include "direct/direct_rpa.hpp"
#include "rpa/erpa_slq.hpp"
#include "rpa/presets.hpp"

namespace rsrpa {
namespace {

TEST(Schedules, AllConserveTotalWork) {
  const std::vector<double> items = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  const double total = std::accumulate(items.begin(), items.end(), 0.0);
  for (std::size_t p : {1u, 2u, 3u, 5u}) {
    for (auto* fn : {par::static_schedule, par::manager_worker_schedule,
                     par::lpt_schedule}) {
      par::ScheduleResult r = fn(items, p);
      ASSERT_EQ(r.rank_loads.size(), p);
      double sum = std::accumulate(r.rank_loads.begin(), r.rank_loads.end(), 0.0);
      EXPECT_NEAR(sum, total, 1e-12);
      EXPECT_GE(r.makespan, total / static_cast<double>(p) - 1e-12);
      EXPECT_GE(r.imbalance(), 1.0 - 1e-12);
    }
  }
}

TEST(Schedules, SingleRankIsTotalWork) {
  const std::vector<double> items = {1, 2, 3};
  EXPECT_DOUBLE_EQ(par::static_schedule(items, 1).makespan, 6.0);
  EXPECT_DOUBLE_EQ(par::manager_worker_schedule(items, 1).makespan, 6.0);
}

TEST(Schedules, ManagerWorkerBeatsStaticOnSkewedItems) {
  // All heavy items in one static block: the exact failure mode of the
  // contiguous partition the paper describes.
  std::vector<double> items(16, 1.0);
  for (std::size_t i = 0; i < 4; ++i) items[i] = 10.0;
  const par::ScheduleResult st = par::static_schedule(items, 4);
  const par::ScheduleResult mw = par::manager_worker_schedule(items, 4);
  EXPECT_DOUBLE_EQ(st.makespan, 40.0);  // rank 0 gets all four heavy items
  EXPECT_LT(mw.makespan, st.makespan);
  EXPECT_LE(par::lpt_schedule(items, 4).makespan, mw.makespan + 1e-12);
}

TEST(Schedules, LptWithinClassicBound) {
  // Graham: LPT <= (4/3 - 1/(3p)) OPT, and OPT >= max(total/p, max item).
  Rng rng(5);
  std::vector<double> items(37);
  for (double& v : items) v = rng.uniform(0.1, 4.0);
  for (std::size_t p : {2u, 4u, 8u}) {
    const par::ScheduleResult r = par::lpt_schedule(items, p);
    const double total = std::accumulate(items.begin(), items.end(), 0.0);
    double mx = 0.0;
    for (double v : items) mx = std::max(mx, v);
    const double opt_lb = std::max(total / static_cast<double>(p), mx);
    EXPECT_LE(r.makespan,
              (4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(p))) * opt_lb *
                  (1.0 + 1e-12) + opt_lb * 1e-9);
  }
}

TEST(Schedules, MoreRanksThanItems) {
  // p > n: some ranks stay idle; the makespan is the heaviest single item
  // for every strategy and no work is invented or lost.
  const std::vector<double> items = {2.0, 5.0, 1.0};
  for (auto* fn : {par::static_schedule, par::manager_worker_schedule,
                   par::lpt_schedule}) {
    const par::ScheduleResult r = fn(items, 7);
    ASSERT_EQ(r.rank_loads.size(), 7u);
    EXPECT_DOUBLE_EQ(r.makespan, 5.0);
    const double sum =
        std::accumulate(r.rank_loads.begin(), r.rank_loads.end(), 0.0);
    EXPECT_DOUBLE_EQ(sum, 8.0);
    // At most n ranks carry load.
    int loaded = 0;
    for (double l : r.rank_loads) loaded += l > 0.0 ? 1 : 0;
    EXPECT_LE(loaded, 3);
  }
}

TEST(Schedules, SingleItemAtEveryRankCount) {
  const std::vector<double> items = {4.2};
  for (std::size_t p : {1u, 2u, 5u, 16u}) {
    for (auto* fn : {par::static_schedule, par::manager_worker_schedule,
                     par::lpt_schedule}) {
      const par::ScheduleResult r = fn(items, p);
      EXPECT_DOUBLE_EQ(r.makespan, 4.2);
      // One rank owns the item; a single item can never be balanced, so
      // imbalance is exactly p.
      EXPECT_DOUBLE_EQ(r.imbalance(), static_cast<double>(p));
    }
  }
}

TEST(Schedules, ZeroCostItemsAreSafe) {
  // All-zero measured costs (e.g. timer resolution underflow on trivial
  // columns) must not divide by zero: imbalance defaults to 1.0.
  const std::vector<double> items(12, 0.0);
  for (std::size_t p : {1u, 3u, 12u}) {
    for (auto* fn : {par::static_schedule, par::manager_worker_schedule,
                     par::lpt_schedule}) {
      const par::ScheduleResult r = fn(items, p);
      EXPECT_DOUBLE_EQ(r.makespan, 0.0);
      EXPECT_DOUBLE_EQ(r.imbalance(), 1.0);
    }
  }
}

TEST(ColumnPartition, ExhaustiveAndDisjointAtEveryRankCount) {
  // For every admissible p, the ranks' [begin, begin+count) intervals
  // must tile [0, n) exactly: contiguous, disjoint, balanced within one
  // column, with the paper's s <= n/p block cap.
  for (std::size_t n : {1u, 2u, 7u, 16u, 33u}) {
    for (std::size_t p = 1; p <= n; ++p) {
      par::ColumnPartition part(n, p);
      std::size_t next = 0;
      const std::size_t base = n / p;
      for (std::size_t r = 0; r < p; ++r) {
        EXPECT_EQ(part.begin(r), next) << "n=" << n << " p=" << p << " r=" << r;
        const std::size_t cnt = part.count(r);
        EXPECT_GE(cnt, base);
        EXPECT_LE(cnt, base + 1);
        next += cnt;
      }
      EXPECT_EQ(next, n) << "partition must cover all columns";
      EXPECT_EQ(part.max_block_size(), base);
    }
  }
}

TEST(SlqDriver, MatchesDirectFullTraceOnTinySystem) {
  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 7;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);

  // SLQ estimates the FULL trace, so the correct oracle is the dense
  // direct result over all eigenvalues (the subspace driver truncates at
  // n_eig and differs by the tail).
  direct::DirectRpaResult dir =
      direct::compute_direct_rpa(*sys.h, sys.ks.n_occ(), *sys.klap, 4);

  rpa::SlqRpaOptions sopts;
  sopts.ell = 4;
  sopts.n_probes = 24;
  sopts.lanczos_steps = 16;
  sopts.stern.tol = 1e-4;
  rpa::SlqRpaResult slq = rpa::compute_rpa_energy_slq(sys.ks, *sys.klap, sopts);

  EXPECT_LT(slq.e_rpa, 0.0);
  EXPECT_NEAR(slq.e_rpa, dir.e_rpa, 0.08 * std::abs(dir.e_rpa));
  EXPECT_GT(slq.matvec_columns, 0);
  ASSERT_EQ(slq.e_terms.size(), 4u);
  for (double e : slq.e_terms) EXPECT_LT(e, 0.0);
}

TEST(SlqDriver, MoreProbesReduceSpread) {
  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 7;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);

  auto run = [&](int probes, std::uint64_t seed) {
    rpa::SlqRpaOptions sopts;
    sopts.ell = 1;  // single (largest) frequency is enough for spread
    sopts.n_probes = probes;
    sopts.lanczos_steps = 12;
    sopts.stern.tol = 1e-3;
    sopts.seed = seed;
    return rpa::compute_rpa_energy_slq(sys.ks, *sys.klap, sopts).e_rpa;
  };

  auto spread = [&](int probes) {
    double mn = 1e300, mx = -1e300;
    for (std::uint64_t s : {1ull, 2ull, 3ull, 4ull}) {
      const double e = run(probes, s);
      mn = std::min(mn, e);
      mx = std::max(mx, e);
    }
    return mx - mn;
  };

  // 16x the probes should cut the seed-to-seed spread decisively (~4x in
  // expectation; allow a weak factor to keep the test robust).
  EXPECT_LT(spread(32), spread(2));
}

}  // namespace
}  // namespace rsrpa
