// Unit and property tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"
#include "sched/thread_pool.hpp"

namespace rsrpa::la {
namespace {

Matrix<double> random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  Matrix<double> a(m, n);
  for (std::size_t j = 0; j < n; ++j) rng.fill_uniform(a.col(j));
  return a;
}

Matrix<cplx> random_cmatrix(std::size_t m, std::size_t n, Rng& rng) {
  Matrix<cplx> a(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i)
      a(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return a;
}

Matrix<double> random_spd(std::size_t n, Rng& rng) {
  Matrix<double> b = random_matrix(n, n, rng);
  Matrix<double> spd(n, n);
  gemm_tn(1.0, b, b, 0.0, spd);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

Matrix<double> random_symmetric(std::size_t n, Rng& rng) {
  Matrix<double> a = random_matrix(n, n, rng);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < j; ++i) a(i, j) = a(j, i);
  return a;
}

TEST(Matrix, BasicAccessAndColumnViews) {
  Matrix<double> a(3, 2);
  a(0, 0) = 1.0;
  a(2, 1) = 5.0;
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 2u);
  auto c1 = a.col(1);
  EXPECT_DOUBLE_EQ(c1[2], 5.0);
  c1[0] = 7.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 7.0);
}

TEST(Matrix, SliceAndSetColsRoundTrip) {
  Rng rng(11);
  Matrix<double> a = random_matrix(5, 6, rng);
  Matrix<double> s = a.slice_cols(2, 3);
  Matrix<double> b(5, 6);
  b.set_cols(2, s);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_DOUBLE_EQ(b(i, 2 + j), a(i, 2 + j));
}

TEST(Matrix, TransposeIdentityAndInvolution) {
  Rng rng(5);
  Matrix<double> a = random_matrix(4, 7, rng);
  Matrix<double> att = a.transposed().transposed();
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
}

TEST(Blas1, DotAxpyNrm2) {
  std::vector<double> x = {1, 2, 3}, y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(x)), std::sqrt(14.0));
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(Blas1, ComplexDotConventions) {
  std::vector<cplx> x = {{1, 1}, {0, 2}}, y = {{2, 0}, {1, -1}};
  // Unconjugated: (1+i)*2 + 2i*(1-i) = 2+2i + 2i+2 = 4+4i
  const cplx u = dot_u(x, y);
  EXPECT_DOUBLE_EQ(u.real(), 4.0);
  EXPECT_DOUBLE_EQ(u.imag(), 4.0);
  // Conjugated: conj(1+i)*2 + conj(2i)*(1-i) = 2-2i + (-2i)(1-i) = 2-2i -2i-2
  const cplx c = dot_c(x, y);
  EXPECT_DOUBLE_EQ(c.real(), 0.0);
  EXPECT_DOUBLE_EQ(c.imag(), -4.0);
}

TEST(Gemm, MatchesNaiveReference) {
  Rng rng(1);
  const std::size_t m = 17, k = 9, n = 13;
  Matrix<double> a = random_matrix(m, k, rng);
  Matrix<double> b = random_matrix(k, n, rng);
  Matrix<double> c(m, n);
  gemm_nn(1.0, a, b, 0.0, c);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      double ref = 0.0;
      for (std::size_t p = 0; p < k; ++p) ref += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), ref, 1e-12);
    }
}

TEST(Gemm, AlphaBetaScaling) {
  Rng rng(2);
  Matrix<double> a = random_matrix(6, 4, rng);
  Matrix<double> b = random_matrix(4, 5, rng);
  Matrix<double> c0 = random_matrix(6, 5, rng);
  Matrix<double> c = c0;
  gemm_nn(2.0, a, b, 3.0, c);
  Matrix<double> ab(6, 5);
  gemm_nn(1.0, a, b, 0.0, ab);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_NEAR(c(i, j), 2.0 * ab(i, j) + 3.0 * c0(i, j), 1e-12);
}

TEST(Gemm, TransposeVariantAgainstExplicitTranspose) {
  Rng rng(3);
  Matrix<double> a = random_matrix(20, 6, rng);
  Matrix<double> b = random_matrix(20, 7, rng);
  Matrix<double> c(6, 7), ref(6, 7);
  gemm_tn(1.0, a, b, 0.0, c);
  Matrix<double> at = a.transposed();
  gemm_nn(1.0, at, b, 0.0, ref);
  for (std::size_t j = 0; j < 7; ++j)
    for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
}

TEST(Gemm, ComplexUnconjugatedVsConjugated) {
  Rng rng(4);
  Matrix<cplx> a = random_cmatrix(10, 3, rng);
  Matrix<cplx> b = random_cmatrix(10, 4, rng);
  Matrix<cplx> t(3, 4), h(3, 4);
  gemm_tn(cplx{1, 0}, a, b, cplx{0, 0}, t);
  gemm_hn(cplx{1, 0}, a, b, cplx{0, 0}, h);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 3; ++i) {
      cplx rt{}, rh{};
      for (std::size_t p = 0; p < 10; ++p) {
        rt += a(p, i) * b(p, j);
        rh += std::conj(a(p, i)) * b(p, j);
      }
      EXPECT_NEAR(std::abs(t(i, j) - rt), 0.0, 1e-12);
      EXPECT_NEAR(std::abs(h(i, j) - rh), 0.0, 1e-12);
    }
}

TEST(Lu, SolvesRandomRealSystem) {
  Rng rng(6);
  const std::size_t n = 30;
  Matrix<double> a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 5.0;
  Matrix<double> x_true = random_matrix(n, 3, rng);
  Matrix<double> b(n, 3);
  gemm_nn(1.0, a, x_true, 0.0, b);
  Lu<double> f(a);
  f.solve_inplace(b);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(b(i, j), x_true(i, j), 1e-9);
}

TEST(Lu, SolvesComplexSymmetricSystem) {
  Rng rng(7);
  const std::size_t n = 20;
  // Complex symmetric (A = A^T, not Hermitian), as in the Sternheimer ops.
  Matrix<cplx> a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const cplx v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a(i, j) = v;
      a(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) a(i, i) += cplx{4.0, 2.0};
  Matrix<cplx> x_true = random_cmatrix(n, 2, rng);
  Matrix<cplx> b(n, 2);
  gemm_nn(cplx{1, 0}, a, x_true, cplx{0, 0}, b);
  Lu<cplx> f(a);
  f.solve_inplace(b);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(b(i, j) - x_true(i, j)), 0.0, 1e-9);
}

TEST(Lu, SingularMatrixThrowsBreakdown) {
  Matrix<double> a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // third row/col all zero
  EXPECT_THROW(Lu<double>{a}, NumericalBreakdown);
}

TEST(Lu, DetOfKnownMatrix) {
  Matrix<double> a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 4;
  Lu<double> f(a);
  EXPECT_NEAR(f.det(), 10.0, 1e-12);
}

TEST(Lu, PivotRatioDetectsIllConditioning) {
  Rng rng(8);
  Matrix<double> well = random_spd(10, rng);
  Matrix<double> ill = well;
  for (std::size_t j = 0; j < 10; ++j) ill(9, j) = well(8, j) * (1 + 1e-13);
  Lu<double> fw(well), fi(ill);
  EXPECT_GT(fw.pivot_ratio(), 1e-6);
  EXPECT_LT(fi.pivot_ratio(), 1e-8);
}

TEST(Cholesky, FactorsAndSolves) {
  Rng rng(9);
  const std::size_t n = 25;
  Matrix<double> a = random_spd(n, rng);
  Matrix<double> x_true = random_matrix(n, 2, rng);
  Matrix<double> b(n, 2);
  gemm_nn(1.0, a, x_true, 0.0, b);
  Cholesky chol(a);
  chol.solve_inplace(b);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(b(i, j), x_true(i, j), 1e-9);
}

TEST(Cholesky, FactorReconstructsMatrix) {
  Rng rng(10);
  const std::size_t n = 12;
  Matrix<double> a = random_spd(n, rng);
  Cholesky chol(a);
  const Matrix<double>& l = chol.l();
  Matrix<double> lt = l.transposed();
  Matrix<double> rec(n, n);
  gemm_nn(1.0, l, lt, 0.0, rec);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rec(i, j), a(i, j), 1e-9);
}

TEST(Cholesky, IndefiniteThrows) {
  Matrix<double> a = Matrix<double>::identity(3);
  a(2, 2) = -1.0;
  EXPECT_THROW(Cholesky{a}, NumericalBreakdown);
}

TEST(Cholesky, RightBackwardSolve) {
  Rng rng(12);
  const std::size_t n = 8;
  Matrix<double> b = random_spd(n, rng);
  Cholesky chol(b);
  Matrix<double> c = random_matrix(5, n, rng);
  Matrix<double> orig = c;
  chol.right_backward_t_inplace(c);
  // Verify C_new * L^T == C_orig.
  Matrix<double> lt = chol.l().transposed();
  Matrix<double> rec(5, n);
  gemm_nn(1.0, c, lt, 0.0, rec);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_NEAR(rec(i, j), orig(i, j), 1e-10);
}

TEST(SymEig, DiagonalMatrix) {
  Matrix<double> a(4, 4);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 7.0;
  a(3, 3) = 0.5;
  EigResult r = sym_eig(a);
  ASSERT_EQ(r.values.size(), 4u);
  EXPECT_NEAR(r.values[0], -1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 0.5, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
  EXPECT_NEAR(r.values[3], 7.0, 1e-12);
}

TEST(SymEig, ResidualAndOrthogonality) {
  Rng rng(13);
  const std::size_t n = 40;
  Matrix<double> a = random_symmetric(n, rng);
  EigResult r = sym_eig(a);
  // A V = V D
  Matrix<double> av(n, n);
  gemm_nn(1.0, a, r.vectors, 0.0, av);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av(i, j), r.values[j] * r.vectors(i, j), 1e-8);
  // V^T V = I
  Matrix<double> vtv(n, n);
  gemm_tn(1.0, r.vectors, r.vectors, 0.0, vtv);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(SymEig, TracePreserved) {
  Rng rng(14);
  const std::size_t n = 30;
  Matrix<double> a = random_symmetric(n, rng);
  double tr = 0.0;
  for (std::size_t i = 0; i < n; ++i) tr += a(i, i);
  EigResult r = sym_eig(a);
  double sum = 0.0;
  for (double v : r.values) sum += v;
  EXPECT_NEAR(sum, tr, 1e-9);
}

TEST(SymEig, ValuesOnlyAgreesWithFull) {
  Rng rng(15);
  Matrix<double> a = random_symmetric(25, rng);
  EigResult full = sym_eig(a);
  std::vector<double> vals = sym_eigvals(a);
  ASSERT_EQ(vals.size(), full.values.size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    EXPECT_NEAR(vals[i], full.values[i], 1e-9);
}

TEST(SymEigGen, ReducesToStandardWhenBIsIdentity) {
  Rng rng(16);
  const std::size_t n = 15;
  Matrix<double> a = random_symmetric(n, rng);
  EigResult std_r = sym_eig(a);
  EigResult gen_r = sym_eig_gen(a, Matrix<double>::identity(n));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(gen_r.values[i], std_r.values[i], 1e-9);
}

TEST(SymEigGen, SatisfiesGeneralizedResidual) {
  Rng rng(17);
  const std::size_t n = 20;
  Matrix<double> a = random_symmetric(n, rng);
  Matrix<double> b = random_spd(n, rng);
  EigResult r = sym_eig_gen(a, b);
  Matrix<double> av(n, n), bv(n, n);
  gemm_nn(1.0, a, r.vectors, 0.0, av);
  gemm_nn(1.0, b, r.vectors, 0.0, bv);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av(i, j), r.values[j] * bv(i, j), 1e-7);
  // B-orthonormality: V^T B V = I.
  Matrix<double> vtbv(n, n);
  gemm_tn(1.0, r.vectors, bv, 0.0, vtbv);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(vtbv(i, j), i == j ? 1.0 : 0.0, 1e-8);
}

TEST(TridiagEig, KnownLaplacianSpectrum) {
  // 1D Dirichlet Laplacian tridiag(-1, 2, -1): eigenvalues
  // 2 - 2 cos(k pi / (n+1)).
  const std::size_t n = 16;
  std::vector<double> d(n, 2.0), e(n - 1, -1.0);
  std::vector<double> vals = tridiag_eigvals(d, e);
  for (std::size_t k = 1; k <= n; ++k) {
    const double expected = 2.0 - 2.0 * std::cos(M_PI * k / (n + 1));
    EXPECT_NEAR(vals[k - 1], expected, 1e-10);
  }
}

TEST(TridiagEig, VectorsSatisfyResidual) {
  const std::size_t n = 10;
  std::vector<double> d(n), e(n - 1);
  Rng rng(18);
  for (auto& v : d) v = rng.uniform(-1, 1);
  for (auto& v : e) v = rng.uniform(-1, 1);
  EigResult r = tridiag_eig(d, e);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = d[i] * r.vectors(i, j);
      if (i > 0) av += e[i - 1] * r.vectors(i - 1, j);
      if (i + 1 < n) av += e[i] * r.vectors(i + 1, j);
      EXPECT_NEAR(av, r.values[j] * r.vectors(i, j), 1e-9);
    }
  }
}

TEST(Qr, CholeskyQrOrthonormalizes) {
  Rng rng(19);
  Matrix<double> v = random_matrix(50, 8, rng);
  Matrix<double> orig = v;
  cholesky_qr(v);
  Matrix<double> g(8, 8);
  gemm_tn(1.0, v, v, 0.0, g);
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-10);
  // Range is preserved: orig = v * (v^T orig).
  Matrix<double> coef(8, 8), rec(50, 8);
  gemm_tn(1.0, v, orig, 0.0, coef);
  gemm_nn(1.0, v, coef, 0.0, rec);
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 0; i < 50; ++i)
      EXPECT_NEAR(rec(i, j), orig(i, j), 1e-9);
}

TEST(Qr, HouseholderHandlesNearDependentColumns) {
  Rng rng(20);
  Matrix<double> v = random_matrix(40, 4, rng);
  // Make column 3 nearly equal to column 0.
  for (std::size_t i = 0; i < 40; ++i) v(i, 3) = v(i, 0) + 1e-12 * v(i, 1);
  householder_qr(v);
  Matrix<double> g(4, 4);
  gemm_tn(1.0, v, v, 0.0, g);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-8);
}

TEST(Qr, OrthonormalizeFallsBackGracefully) {
  Rng rng(21);
  Matrix<double> v = random_matrix(30, 3, rng);
  for (std::size_t i = 0; i < 30; ++i) v(i, 2) = 2.0 * v(i, 0);  // exact dup
  orthonormalize(v);
  Matrix<double> g(3, 3);
  gemm_tn(1.0, v, v, 0.0, g);
  EXPECT_NEAR(g(0, 0), 1.0, 1e-8);
  EXPECT_NEAR(g(1, 1), 1.0, 1e-8);
}

// Reconstruction residual max_ij |A[:, pivots] - Q R| of a pivoted QR.
double qrcp_residual(const Matrix<double>& a, const PivotedQrResult& qr) {
  Matrix<double> rec(a.rows(), qr.r.cols());
  gemm_nn(1.0, qr.q, qr.r, 0.0, rec);
  double err = 0.0;
  for (std::size_t j = 0; j < rec.cols(); ++j)
    for (std::size_t i = 0; i < rec.rows(); ++i)
      err = std::max(err, std::abs(rec(i, j) - a(i, qr.pivots[j])));
  return err;
}

TEST(PivotedQr, RevealsLowRank) {
  Rng rng(31);
  // A = U V^T has exact rank 5; the QRCP must stop there.
  Matrix<double> u = random_matrix(40, 5, rng);
  Matrix<double> v = random_matrix(30, 5, rng);
  Matrix<double> vt = v.transposed();
  Matrix<double> a(40, 30);
  gemm_nn(1.0, u, vt, 0.0, a);

  PivotedQrResult qr = pivoted_qr(a, 0, 1e-10);
  EXPECT_EQ(qr.rank, 5u);
  for (std::size_t i = 1; i < qr.rank; ++i)
    EXPECT_LE(std::abs(qr.r(i, i)), std::abs(qr.r(i - 1, i - 1)) + 1e-14);
  EXPECT_LT(qrcp_residual(a, qr), 1e-9);
}

TEST(PivotedQr, TracksGradedSingularValues) {
  Rng rng(32);
  const std::size_t n = 24;
  // A = Q1 diag(2^-k) Q2^T: |R(k,k)| must fall with the graded spectrum.
  Matrix<double> q1 = random_matrix(n, n, rng);
  Matrix<double> q2 = random_matrix(n, n, rng);
  householder_qr(q1);
  householder_qr(q2);
  Matrix<double> q2t = q2.transposed();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) q2t(i, j) *= std::pow(2.0, -double(i));
  Matrix<double> a(n, n);
  gemm_nn(1.0, q1, q2t, 0.0, a);

  PivotedQrResult qr = pivoted_qr(a);
  ASSERT_EQ(qr.rank, n);
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_LE(std::abs(qr.r(i, i)), std::abs(qr.r(i - 1, i - 1)) + 1e-14);
  // Greedy QRCP tracks a graded spectrum to within a modest factor
  // (Businger-Golub bound is exponential; in practice it is tight here).
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = std::pow(2.0, -double(i));
    EXPECT_GT(std::abs(qr.r(i, i)), 0.01 * sigma);
    EXPECT_LT(std::abs(qr.r(i, i)), 100.0 * sigma);
  }
  // A rel_tol cut selects the numerical rank at that threshold.
  PivotedQrResult cut = pivoted_qr(a, 0, std::pow(2.0, -10.5));
  EXPECT_GE(cut.rank, 8u);
  EXPECT_LE(cut.rank, 14u);
}

TEST(PivotedQr, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(33);
  Matrix<double> a = random_matrix(60, 90, rng);

  sched::set_global_threads(1);
  PivotedQrResult serial = pivoted_qr(a, 40, 1e-12);
  sched::set_global_threads(4);
  PivotedQrResult threaded = pivoted_qr(a, 40, 1e-12);
  sched::set_global_threads(0);

  ASSERT_EQ(serial.rank, threaded.rank);
  ASSERT_EQ(serial.pivots, threaded.pivots);
  for (std::size_t j = 0; j < serial.r.cols(); ++j)
    for (std::size_t i = 0; i < serial.r.rows(); ++i)
      EXPECT_EQ(serial.r(i, j), threaded.r(i, j));
  for (std::size_t j = 0; j < serial.q.cols(); ++j)
    for (std::size_t i = 0; i < serial.q.rows(); ++i)
      EXPECT_EQ(serial.q(i, j), threaded.q(i, j));
}

TEST(PivotedQr, FullRankAgreesWithUnpivotedQr) {
  Rng rng(34);
  Matrix<double> a = random_matrix(35, 12, rng);
  for (std::size_t i = 0; i < 12; ++i) a(i, i) += 2.0;  // well-conditioned

  PivotedQrResult qr = pivoted_qr(a);
  EXPECT_EQ(qr.rank, 12u);
  EXPECT_LT(qrcp_residual(a, qr), 1e-10);

  // Q^T Q = I.
  Matrix<double> g(12, 12);
  gemm_tn(1.0, qr.q, qr.q, 0.0, g);
  for (std::size_t j = 0; j < 12; ++j)
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-10);

  // Same column space as the unpivoted Householder Q: the cross-Gram
  // Q_piv^T Q_house must be orthogonal (projectors coincide).
  Matrix<double> qh = a;
  householder_qr(qh);
  Matrix<double> x(12, 12), xtx(12, 12);
  gemm_tn(1.0, qr.q, qh, 0.0, x);
  gemm_tn(1.0, x, x, 0.0, xtx);
  for (std::size_t j = 0; j < 12; ++j)
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_NEAR(xtx(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(NormFro, MatchesDefinition) {
  Matrix<double> a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(norm_fro(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_max(a), 4.0);
}

// Property-style sweep: LU and Cholesky solve quality across sizes.
class FactorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FactorSweep, LuResidualSmall) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  Matrix<double> a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;
  std::vector<double> x(n), b(n, 0.0);
  rng.fill_uniform(x);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) b[i] += a(i, j) * x[j];
  Lu<double> f(a);
  f.solve_inplace(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-8);
}

TEST_P(FactorSweep, EigReconstructsMatrix) {
  const std::size_t n = GetParam();
  Rng rng(200 + n);
  Matrix<double> a = random_symmetric(n, rng);
  EigResult r = sym_eig(a);
  // A = V D V^T
  Matrix<double> vd = r.vectors;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) vd(i, j) *= r.values[j];
  Matrix<double> vt = r.vectors.transposed();
  Matrix<double> rec(n, n);
  gemm_nn(1.0, vd, vt, 0.0, rec);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactorSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

}  // namespace
}  // namespace rsrpa::la
