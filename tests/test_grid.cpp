// Tests for the grid substrate: FD coefficients, stencil Laplacian.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "grid/fd.hpp"
#include "grid/grid.hpp"
#include "grid/stencil.hpp"

namespace rsrpa::grid {
namespace {

TEST(Grid3D, IndexingAndSpacing) {
  Grid3D g(4, 5, 6, 8.0, 10.0, 12.0);
  EXPECT_EQ(g.size(), 120u);
  EXPECT_DOUBLE_EQ(g.hx(), 2.0);
  EXPECT_DOUBLE_EQ(g.hy(), 2.0);
  EXPECT_DOUBLE_EQ(g.hz(), 2.0);
  EXPECT_EQ(g.index(1, 2, 3), 1u + 4u * (2u + 5u * 3u));
  EXPECT_DOUBLE_EQ(g.dv(), 8.0);
}

TEST(Grid3D, MinImageWrapsIntoHalfCell) {
  EXPECT_DOUBLE_EQ(Grid3D::min_image(7.0, 10.0), -3.0);
  EXPECT_DOUBLE_EQ(Grid3D::min_image(-7.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(Grid3D::min_image(2.0, 10.0), 2.0);
}

TEST(FdCoefficients, RadiusOneIsClassicStencil) {
  const auto c = fd_coefficients(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], -2.0, 1e-13);
  EXPECT_NEAR(c[1], 1.0, 1e-13);
}

TEST(FdCoefficients, RadiusTwoMatchesKnownValues) {
  const auto c = fd_coefficients(2);
  EXPECT_NEAR(c[0], -5.0 / 2.0, 1e-12);
  EXPECT_NEAR(c[1], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(c[2], -1.0 / 12.0, 1e-12);
}

TEST(FdCoefficients, RadiusSixMatchesKnownLeadingValues) {
  const auto c = fd_coefficients(6);
  // Known coefficients of the order-12 central second-derivative stencil.
  EXPECT_NEAR(c[0], -5369.0 / 1800.0, 1e-10);
  EXPECT_NEAR(c[1], 12.0 / 7.0, 1e-10);
  EXPECT_NEAR(c[6], -1.0 / 16632.0, 1e-12);  // signs alternate with k
}

class FdExactness : public ::testing::TestWithParam<int> {};

TEST_P(FdExactness, DifferentiatesPolynomialsExactly) {
  const int r = GetParam();
  const auto c = fd_coefficients(r);
  // The stencil must be exact on x^{2m} for m <= r at x = 0.
  for (int m = 0; m <= r; ++m) {
    double stencil = (m == 0) ? c[0] : 0.0;
    double scale = (m == 0) ? std::abs(c[0]) : 0.0;
    for (int k = 1; k <= r; ++k) {
      const double term = 2.0 * c[k] * std::pow(static_cast<double>(k), 2.0 * m);
      stencil += term;
      scale += std::abs(term);
    }
    const double expected = (m == 1) ? 2.0 : 0.0;
    // Relative to the moment-sum magnitude: the terms grow like r^{2m}, so
    // an absolute tolerance would be meaningless at large radii.
    EXPECT_NEAR(stencil, expected, 1e-12 * std::max(scale, 1.0)) << "m=" << m;
  }
}

TEST_P(FdExactness, SymbolIsNonPositive) {
  const int r = GetParam();
  const auto c = fd_coefficients(r);
  for (int i = 0; i <= 256; ++i) {
    const double theta = M_PI * i / 256.0;
    EXPECT_LE(fd_symbol(c, theta), 1e-12) << "theta=" << theta;
  }
  EXPECT_NEAR(fd_symbol(c, 0.0), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Radii, FdExactness, ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(StencilLaplacian, ExactOnPlaneWaves) {
  // Periodic plane waves are exact eigenfunctions of the FD Laplacian with
  // eigenvalue given by the symbol.
  const std::size_t n = 12;
  const double l = 6.0;
  Grid3D g = Grid3D::cubic(n, l);
  const int r = 4;
  StencilLaplacian lap(g, r);
  const auto c = fd_coefficients(r);
  const double h = g.hx();

  const int kx = 2, ky = 3, kz = 1;
  std::vector<double> v(g.size()), lv(g.size());
  for (std::size_t iz = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix)
        v[g.index(ix, iy, iz)] =
            std::cos(2 * M_PI * (kx * double(ix) + ky * double(iy) + kz * double(iz)) / n);
  lap.apply<double>(v, lv);

  const double lam = (fd_symbol(c, 2 * M_PI * kx / double(n)) +
                      fd_symbol(c, 2 * M_PI * ky / double(n)) +
                      fd_symbol(c, 2 * M_PI * kz / double(n))) /
                     (h * h);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(lv[i], lam * v[i], 1e-10);
}

TEST(StencilLaplacian, ConvergesToContinuumEigenvalue) {
  // Refine the mesh: the discrete eigenvalue of a smooth mode approaches
  // the continuum -(2 pi k / L)^2 at order 2r.
  const double l = 5.0;
  const int k = 1;
  const double exact = -std::pow(2 * M_PI * k / l, 2.0);
  double prev_err = 1e9;
  for (std::size_t n : {8u, 16u, 32u}) {
    Grid3D g = Grid3D::cubic(n, l);
    StencilLaplacian lap(g, 2);
    std::vector<double> v(g.size()), lv(g.size());
    for (std::size_t iz = 0; iz < n; ++iz)
      for (std::size_t iy = 0; iy < n; ++iy)
        for (std::size_t ix = 0; ix < n; ++ix)
          v[g.index(ix, iy, iz)] = std::sin(2 * M_PI * k * double(ix) / n);
    lap.apply<double>(v, lv);
    // Rayleigh quotient.
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      num += v[i] * lv[i];
      den += v[i] * v[i];
    }
    const double err = std::abs(num / den - exact);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);
}

TEST(StencilLaplacian, AnnihilatesConstants) {
  Grid3D g = Grid3D::cubic(9, 4.5);
  StencilLaplacian lap(g, 6);
  std::vector<double> v(g.size(), 3.7), lv(g.size());
  lap.apply<double>(v, lv);
  for (double x : lv) EXPECT_NEAR(x, 0.0, 1e-10);
}

TEST(StencilLaplacian, IsSymmetric) {
  Grid3D g(6, 7, 5, 3.0, 3.5, 2.5);
  StencilLaplacian lap(g, 3);
  Rng rng(31);
  std::vector<double> u(g.size()), v(g.size()), lu(g.size()), lv(g.size());
  rng.fill_uniform(u);
  rng.fill_uniform(v);
  lap.apply<double>(u, lu);
  lap.apply<double>(v, lv);
  double ulv = 0.0, vlu = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    ulv += u[i] * lv[i];
    vlu += v[i] * lu[i];
  }
  EXPECT_NEAR(ulv, vlu, 1e-9 * std::abs(ulv));
}

TEST(StencilLaplacian, ComplexApplyMatchesRealParts) {
  Grid3D g = Grid3D::cubic(8, 4.0);
  StencilLaplacian lap(g, 2);
  Rng rng(32);
  std::vector<double> re(g.size()), im(g.size()), lre(g.size()), lim(g.size());
  rng.fill_uniform(re);
  rng.fill_uniform(im);
  std::vector<std::complex<double>> z(g.size()), lz(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) z[i] = {re[i], im[i]};
  lap.apply<std::complex<double>>(z, lz);
  lap.apply<double>(re, lre);
  lap.apply<double>(im, lim);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(lz[i].real(), lre[i], 1e-12);
    EXPECT_NEAR(lz[i].imag(), lim[i], 1e-12);
  }
}

TEST(StencilLaplacian, BlockVariantsAgree) {
  Grid3D g = Grid3D::cubic(7, 3.5);
  StencilLaplacian lap(g, 3);
  Rng rng(33);
  la::Matrix<double> in(g.size(), 4), out1(g.size(), 4), out2(g.size(), 4);
  for (std::size_t j = 0; j < 4; ++j) rng.fill_uniform(in.col(j));
  lap.apply_block(in, out1);
  lap.apply_block_simultaneous(in, out2);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < g.size(); ++i)
      EXPECT_NEAR(out1(i, j), out2(i, j), 1e-12);
}

TEST(StencilLaplacian, MinEigenvalueBoundHolds) {
  Grid3D g = Grid3D::cubic(10, 5.0);
  StencilLaplacian lap(g, 4);
  const double bound = lap.min_eigenvalue_bound();
  // Rayleigh quotients of random vectors must stay above the bound.
  Rng rng(34);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> v(g.size()), lv(g.size());
    rng.fill_uniform(v);
    lap.apply<double>(v, lv);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      num += v[i] * lv[i];
      den += v[i] * v[i];
    }
    EXPECT_GE(num / den, bound - 1e-9);
    EXPECT_LE(num / den, 1e-9);
  }
}

TEST(StencilLaplacian, RadiusLargerThanGridStillPeriodic) {
  // Wrap handling must stay correct when the stencil radius exceeds n/2.
  Grid3D g = Grid3D::cubic(5, 2.5);
  StencilLaplacian lap(g, 4);
  std::vector<double> v(g.size(), 1.0), lv(g.size());
  lap.apply<double>(v, lv);
  for (double x : lv) EXPECT_NEAR(x, 0.0, 1e-9);
}

}  // namespace
}  // namespace rsrpa::grid
