file(REMOVE_RECURSE
  "CMakeFiles/e9_quadrature_table.dir/e9_quadrature_table.cpp.o"
  "CMakeFiles/e9_quadrature_table.dir/e9_quadrature_table.cpp.o.d"
  "e9_quadrature_table"
  "e9_quadrature_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_quadrature_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
