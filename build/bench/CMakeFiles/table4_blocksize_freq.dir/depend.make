# Empty dependencies file for table4_blocksize_freq.
# This may be replaced when dependencies are built.
