file(REMOVE_RECURSE
  "CMakeFiles/table4_blocksize_freq.dir/table4_blocksize_freq.cpp.o"
  "CMakeFiles/table4_blocksize_freq.dir/table4_blocksize_freq.cpp.o.d"
  "table4_blocksize_freq"
  "table4_blocksize_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_blocksize_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
