# Empty dependencies file for fig2_warmstart_overlap.
# This may be replaced when dependencies are built.
