file(REMOVE_RECURSE
  "CMakeFiles/fig2_warmstart_overlap.dir/fig2_warmstart_overlap.cpp.o"
  "CMakeFiles/fig2_warmstart_overlap.dir/fig2_warmstart_overlap.cpp.o.d"
  "fig2_warmstart_overlap"
  "fig2_warmstart_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_warmstart_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
