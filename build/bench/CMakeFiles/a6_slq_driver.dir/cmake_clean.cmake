file(REMOVE_RECURSE
  "CMakeFiles/a6_slq_driver.dir/a6_slq_driver.cpp.o"
  "CMakeFiles/a6_slq_driver.dir/a6_slq_driver.cpp.o.d"
  "a6_slq_driver"
  "a6_slq_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a6_slq_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
