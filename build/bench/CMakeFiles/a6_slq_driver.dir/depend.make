# Empty dependencies file for a6_slq_driver.
# This may be replaced when dependencies are built.
