# Empty compiler generated dependencies file for a4_future_work.
# This may be replaced when dependencies are built.
