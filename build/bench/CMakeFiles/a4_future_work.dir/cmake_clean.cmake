file(REMOVE_RECURSE
  "CMakeFiles/a4_future_work.dir/a4_future_work.cpp.o"
  "CMakeFiles/a4_future_work.dir/a4_future_work.cpp.o.d"
  "a4_future_work"
  "a4_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
