file(REMOVE_RECURSE
  "CMakeFiles/a2_blocksize_iters.dir/a2_blocksize_iters.cpp.o"
  "CMakeFiles/a2_blocksize_iters.dir/a2_blocksize_iters.cpp.o.d"
  "a2_blocksize_iters"
  "a2_blocksize_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_blocksize_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
