# Empty compiler generated dependencies file for a2_blocksize_iters.
# This may be replaced when dependencies are built.
