# Empty compiler generated dependencies file for fig6_complexity.
# This may be replaced when dependencies are built.
