file(REMOVE_RECURSE
  "CMakeFiles/fig6_complexity.dir/fig6_complexity.cpp.o"
  "CMakeFiles/fig6_complexity.dir/fig6_complexity.cpp.o.d"
  "fig6_complexity"
  "fig6_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
