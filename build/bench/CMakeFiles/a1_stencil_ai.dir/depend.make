# Empty dependencies file for a1_stencil_ai.
# This may be replaced when dependencies are built.
