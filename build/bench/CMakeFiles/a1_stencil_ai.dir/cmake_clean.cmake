file(REMOVE_RECURSE
  "CMakeFiles/a1_stencil_ai.dir/a1_stencil_ai.cpp.o"
  "CMakeFiles/a1_stencil_ai.dir/a1_stencil_ai.cpp.o.d"
  "a1_stencil_ai"
  "a1_stencil_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_stencil_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
