# Empty dependencies file for fig1_spectrum.
# This may be replaced when dependencies are built.
