file(REMOVE_RECURSE
  "CMakeFiles/a7_manager_worker.dir/a7_manager_worker.cpp.o"
  "CMakeFiles/a7_manager_worker.dir/a7_manager_worker.cpp.o.d"
  "a7_manager_worker"
  "a7_manager_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a7_manager_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
