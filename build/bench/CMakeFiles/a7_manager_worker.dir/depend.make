# Empty dependencies file for a7_manager_worker.
# This may be replaced when dependencies are built.
