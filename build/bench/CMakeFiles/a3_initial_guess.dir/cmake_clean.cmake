file(REMOVE_RECURSE
  "CMakeFiles/a3_initial_guess.dir/a3_initial_guess.cpp.o"
  "CMakeFiles/a3_initial_guess.dir/a3_initial_guess.cpp.o.d"
  "a3_initial_guess"
  "a3_initial_guess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_initial_guess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
