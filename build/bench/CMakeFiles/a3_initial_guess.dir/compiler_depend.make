# Empty compiler generated dependencies file for a3_initial_guess.
# This may be replaced when dependencies are built.
