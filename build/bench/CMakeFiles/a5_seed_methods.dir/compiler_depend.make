# Empty compiler generated dependencies file for a5_seed_methods.
# This may be replaced when dependencies are built.
