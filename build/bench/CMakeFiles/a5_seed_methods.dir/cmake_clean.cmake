file(REMOVE_RECURSE
  "CMakeFiles/a5_seed_methods.dir/a5_seed_methods.cpp.o"
  "CMakeFiles/a5_seed_methods.dir/a5_seed_methods.cpp.o.d"
  "a5_seed_methods"
  "a5_seed_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a5_seed_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
