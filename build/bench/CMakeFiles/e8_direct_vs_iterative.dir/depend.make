# Empty dependencies file for e8_direct_vs_iterative.
# This may be replaced when dependencies are built.
