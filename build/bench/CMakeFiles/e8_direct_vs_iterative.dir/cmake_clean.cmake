file(REMOVE_RECURSE
  "CMakeFiles/e8_direct_vs_iterative.dir/e8_direct_vs_iterative.cpp.o"
  "CMakeFiles/e8_direct_vs_iterative.dir/e8_direct_vs_iterative.cpp.o.d"
  "e8_direct_vs_iterative"
  "e8_direct_vs_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_direct_vs_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
