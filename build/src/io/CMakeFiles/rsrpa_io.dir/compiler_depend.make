# Empty compiler generated dependencies file for rsrpa_io.
# This may be replaced when dependencies are built.
