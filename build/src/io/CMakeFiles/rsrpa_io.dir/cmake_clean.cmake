file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_io.dir/snapshot.cpp.o"
  "CMakeFiles/rsrpa_io.dir/snapshot.cpp.o.d"
  "librsrpa_io.a"
  "librsrpa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
