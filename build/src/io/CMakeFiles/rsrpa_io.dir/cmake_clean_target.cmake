file(REMOVE_RECURSE
  "librsrpa_io.a"
)
