# Empty compiler generated dependencies file for rsrpa_direct.
# This may be replaced when dependencies are built.
