file(REMOVE_RECURSE
  "librsrpa_direct.a"
)
