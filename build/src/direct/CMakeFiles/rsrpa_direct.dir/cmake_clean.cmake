file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_direct.dir/dense.cpp.o"
  "CMakeFiles/rsrpa_direct.dir/dense.cpp.o.d"
  "CMakeFiles/rsrpa_direct.dir/direct_rpa.cpp.o"
  "CMakeFiles/rsrpa_direct.dir/direct_rpa.cpp.o.d"
  "librsrpa_direct.a"
  "librsrpa_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
