# Empty compiler generated dependencies file for rsrpa_grid.
# This may be replaced when dependencies are built.
