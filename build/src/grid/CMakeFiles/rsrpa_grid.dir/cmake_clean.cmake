file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_grid.dir/fd.cpp.o"
  "CMakeFiles/rsrpa_grid.dir/fd.cpp.o.d"
  "CMakeFiles/rsrpa_grid.dir/stencil.cpp.o"
  "CMakeFiles/rsrpa_grid.dir/stencil.cpp.o.d"
  "librsrpa_grid.a"
  "librsrpa_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
