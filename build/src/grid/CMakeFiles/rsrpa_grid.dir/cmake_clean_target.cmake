file(REMOVE_RECURSE
  "librsrpa_grid.a"
)
