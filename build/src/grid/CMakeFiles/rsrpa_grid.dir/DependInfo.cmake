
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/fd.cpp" "src/grid/CMakeFiles/rsrpa_grid.dir/fd.cpp.o" "gcc" "src/grid/CMakeFiles/rsrpa_grid.dir/fd.cpp.o.d"
  "/root/repo/src/grid/stencil.cpp" "src/grid/CMakeFiles/rsrpa_grid.dir/stencil.cpp.o" "gcc" "src/grid/CMakeFiles/rsrpa_grid.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/rsrpa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsrpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
