
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/event_log.cpp" "src/obs/CMakeFiles/rsrpa_obs.dir/event_log.cpp.o" "gcc" "src/obs/CMakeFiles/rsrpa_obs.dir/event_log.cpp.o.d"
  "/root/repo/src/obs/json.cpp" "src/obs/CMakeFiles/rsrpa_obs.dir/json.cpp.o" "gcc" "src/obs/CMakeFiles/rsrpa_obs.dir/json.cpp.o.d"
  "/root/repo/src/obs/run_report.cpp" "src/obs/CMakeFiles/rsrpa_obs.dir/run_report.cpp.o" "gcc" "src/obs/CMakeFiles/rsrpa_obs.dir/run_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rsrpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
