file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_obs.dir/event_log.cpp.o"
  "CMakeFiles/rsrpa_obs.dir/event_log.cpp.o.d"
  "CMakeFiles/rsrpa_obs.dir/json.cpp.o"
  "CMakeFiles/rsrpa_obs.dir/json.cpp.o.d"
  "CMakeFiles/rsrpa_obs.dir/run_report.cpp.o"
  "CMakeFiles/rsrpa_obs.dir/run_report.cpp.o.d"
  "librsrpa_obs.a"
  "librsrpa_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
