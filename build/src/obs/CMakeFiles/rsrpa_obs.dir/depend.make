# Empty dependencies file for rsrpa_obs.
# This may be replaced when dependencies are built.
