file(REMOVE_RECURSE
  "librsrpa_obs.a"
)
