file(REMOVE_RECURSE
  "librsrpa_common.a"
)
