file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_common.dir/config.cpp.o"
  "CMakeFiles/rsrpa_common.dir/config.cpp.o.d"
  "CMakeFiles/rsrpa_common.dir/timer.cpp.o"
  "CMakeFiles/rsrpa_common.dir/timer.cpp.o.d"
  "librsrpa_common.a"
  "librsrpa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
