# Empty compiler generated dependencies file for rsrpa_common.
# This may be replaced when dependencies are built.
