# Empty compiler generated dependencies file for rsrpa_la.
# This may be replaced when dependencies are built.
