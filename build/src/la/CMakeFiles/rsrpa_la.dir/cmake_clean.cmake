file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_la.dir/blas.cpp.o"
  "CMakeFiles/rsrpa_la.dir/blas.cpp.o.d"
  "CMakeFiles/rsrpa_la.dir/cholesky.cpp.o"
  "CMakeFiles/rsrpa_la.dir/cholesky.cpp.o.d"
  "CMakeFiles/rsrpa_la.dir/eig.cpp.o"
  "CMakeFiles/rsrpa_la.dir/eig.cpp.o.d"
  "CMakeFiles/rsrpa_la.dir/lu.cpp.o"
  "CMakeFiles/rsrpa_la.dir/lu.cpp.o.d"
  "CMakeFiles/rsrpa_la.dir/qr.cpp.o"
  "CMakeFiles/rsrpa_la.dir/qr.cpp.o.d"
  "librsrpa_la.a"
  "librsrpa_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
