file(REMOVE_RECURSE
  "librsrpa_la.a"
)
