file(REMOVE_RECURSE
  "librsrpa_poisson.a"
)
