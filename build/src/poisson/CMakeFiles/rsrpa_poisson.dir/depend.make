# Empty dependencies file for rsrpa_poisson.
# This may be replaced when dependencies are built.
