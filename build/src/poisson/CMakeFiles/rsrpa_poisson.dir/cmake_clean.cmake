file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_poisson.dir/cg_poisson.cpp.o"
  "CMakeFiles/rsrpa_poisson.dir/cg_poisson.cpp.o.d"
  "CMakeFiles/rsrpa_poisson.dir/kronecker.cpp.o"
  "CMakeFiles/rsrpa_poisson.dir/kronecker.cpp.o.d"
  "librsrpa_poisson.a"
  "librsrpa_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
