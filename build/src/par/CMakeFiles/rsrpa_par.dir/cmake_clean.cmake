file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_par.dir/collective_model.cpp.o"
  "CMakeFiles/rsrpa_par.dir/collective_model.cpp.o.d"
  "CMakeFiles/rsrpa_par.dir/load_balance.cpp.o"
  "CMakeFiles/rsrpa_par.dir/load_balance.cpp.o.d"
  "CMakeFiles/rsrpa_par.dir/parallel_rpa.cpp.o"
  "CMakeFiles/rsrpa_par.dir/parallel_rpa.cpp.o.d"
  "librsrpa_par.a"
  "librsrpa_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
