file(REMOVE_RECURSE
  "librsrpa_par.a"
)
