# Empty compiler generated dependencies file for rsrpa_par.
# This may be replaced when dependencies are built.
