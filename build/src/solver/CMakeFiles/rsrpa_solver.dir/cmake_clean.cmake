file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_solver.dir/block_cocg.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/block_cocg.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/block_cocr.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/block_cocr.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/chebyshev.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/chebyshev.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/cocr.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/cocr.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/dynamic_block.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/dynamic_block.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/galerkin_guess.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/galerkin_guess.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/gmres.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/gmres.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/preconditioner.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/preconditioner.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/qmr_sym.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/qmr_sym.cpp.o.d"
  "CMakeFiles/rsrpa_solver.dir/seed_projection.cpp.o"
  "CMakeFiles/rsrpa_solver.dir/seed_projection.cpp.o.d"
  "librsrpa_solver.a"
  "librsrpa_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
