# Empty compiler generated dependencies file for rsrpa_solver.
# This may be replaced when dependencies are built.
