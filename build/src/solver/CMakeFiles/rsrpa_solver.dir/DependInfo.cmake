
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/block_cocg.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/block_cocg.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/block_cocg.cpp.o.d"
  "/root/repo/src/solver/block_cocr.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/block_cocr.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/block_cocr.cpp.o.d"
  "/root/repo/src/solver/chebyshev.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/chebyshev.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/chebyshev.cpp.o.d"
  "/root/repo/src/solver/cocr.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/cocr.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/cocr.cpp.o.d"
  "/root/repo/src/solver/dynamic_block.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/dynamic_block.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/dynamic_block.cpp.o.d"
  "/root/repo/src/solver/galerkin_guess.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/galerkin_guess.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/galerkin_guess.cpp.o.d"
  "/root/repo/src/solver/gmres.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/gmres.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/gmres.cpp.o.d"
  "/root/repo/src/solver/preconditioner.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/preconditioner.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/preconditioner.cpp.o.d"
  "/root/repo/src/solver/qmr_sym.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/qmr_sym.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/qmr_sym.cpp.o.d"
  "/root/repo/src/solver/seed_projection.cpp" "src/solver/CMakeFiles/rsrpa_solver.dir/seed_projection.cpp.o" "gcc" "src/solver/CMakeFiles/rsrpa_solver.dir/seed_projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/rsrpa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsrpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/poisson/CMakeFiles/rsrpa_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rsrpa_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rsrpa_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
