file(REMOVE_RECURSE
  "librsrpa_solver.a"
)
