file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_ham.dir/crystal.cpp.o"
  "CMakeFiles/rsrpa_ham.dir/crystal.cpp.o.d"
  "CMakeFiles/rsrpa_ham.dir/hamiltonian.cpp.o"
  "CMakeFiles/rsrpa_ham.dir/hamiltonian.cpp.o.d"
  "CMakeFiles/rsrpa_ham.dir/nonlocal.cpp.o"
  "CMakeFiles/rsrpa_ham.dir/nonlocal.cpp.o.d"
  "CMakeFiles/rsrpa_ham.dir/potential.cpp.o"
  "CMakeFiles/rsrpa_ham.dir/potential.cpp.o.d"
  "librsrpa_ham.a"
  "librsrpa_ham.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_ham.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
