
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hamiltonian/crystal.cpp" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/crystal.cpp.o" "gcc" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/crystal.cpp.o.d"
  "/root/repo/src/hamiltonian/hamiltonian.cpp" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/hamiltonian.cpp.o" "gcc" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/hamiltonian.cpp.o.d"
  "/root/repo/src/hamiltonian/nonlocal.cpp" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/nonlocal.cpp.o" "gcc" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/nonlocal.cpp.o.d"
  "/root/repo/src/hamiltonian/potential.cpp" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/potential.cpp.o" "gcc" "src/hamiltonian/CMakeFiles/rsrpa_ham.dir/potential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/rsrpa_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rsrpa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsrpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
