# Empty dependencies file for rsrpa_ham.
# This may be replaced when dependencies are built.
