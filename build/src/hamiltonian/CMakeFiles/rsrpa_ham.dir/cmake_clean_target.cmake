file(REMOVE_RECURSE
  "librsrpa_ham.a"
)
