# Empty dependencies file for rsrpa_dft.
# This may be replaced when dependencies are built.
