
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dft/chefsi.cpp" "src/dft/CMakeFiles/rsrpa_dft.dir/chefsi.cpp.o" "gcc" "src/dft/CMakeFiles/rsrpa_dft.dir/chefsi.cpp.o.d"
  "/root/repo/src/dft/density.cpp" "src/dft/CMakeFiles/rsrpa_dft.dir/density.cpp.o" "gcc" "src/dft/CMakeFiles/rsrpa_dft.dir/density.cpp.o.d"
  "/root/repo/src/dft/ks_system.cpp" "src/dft/CMakeFiles/rsrpa_dft.dir/ks_system.cpp.o" "gcc" "src/dft/CMakeFiles/rsrpa_dft.dir/ks_system.cpp.o.d"
  "/root/repo/src/dft/mixing.cpp" "src/dft/CMakeFiles/rsrpa_dft.dir/mixing.cpp.o" "gcc" "src/dft/CMakeFiles/rsrpa_dft.dir/mixing.cpp.o.d"
  "/root/repo/src/dft/scf.cpp" "src/dft/CMakeFiles/rsrpa_dft.dir/scf.cpp.o" "gcc" "src/dft/CMakeFiles/rsrpa_dft.dir/scf.cpp.o.d"
  "/root/repo/src/dft/xc.cpp" "src/dft/CMakeFiles/rsrpa_dft.dir/xc.cpp.o" "gcc" "src/dft/CMakeFiles/rsrpa_dft.dir/xc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hamiltonian/CMakeFiles/rsrpa_ham.dir/DependInfo.cmake"
  "/root/repo/build/src/poisson/CMakeFiles/rsrpa_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rsrpa_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rsrpa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsrpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rsrpa_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rsrpa_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
