file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_dft.dir/chefsi.cpp.o"
  "CMakeFiles/rsrpa_dft.dir/chefsi.cpp.o.d"
  "CMakeFiles/rsrpa_dft.dir/density.cpp.o"
  "CMakeFiles/rsrpa_dft.dir/density.cpp.o.d"
  "CMakeFiles/rsrpa_dft.dir/ks_system.cpp.o"
  "CMakeFiles/rsrpa_dft.dir/ks_system.cpp.o.d"
  "CMakeFiles/rsrpa_dft.dir/mixing.cpp.o"
  "CMakeFiles/rsrpa_dft.dir/mixing.cpp.o.d"
  "CMakeFiles/rsrpa_dft.dir/scf.cpp.o"
  "CMakeFiles/rsrpa_dft.dir/scf.cpp.o.d"
  "CMakeFiles/rsrpa_dft.dir/xc.cpp.o"
  "CMakeFiles/rsrpa_dft.dir/xc.cpp.o.d"
  "librsrpa_dft.a"
  "librsrpa_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
