file(REMOVE_RECURSE
  "librsrpa_dft.a"
)
