file(REMOVE_RECURSE
  "CMakeFiles/rsrpa_rpa.dir/chi0.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/chi0.cpp.o.d"
  "CMakeFiles/rsrpa_rpa.dir/erpa.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/erpa.cpp.o.d"
  "CMakeFiles/rsrpa_rpa.dir/erpa_slq.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/erpa_slq.cpp.o.d"
  "CMakeFiles/rsrpa_rpa.dir/nu_chi0.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/nu_chi0.cpp.o.d"
  "CMakeFiles/rsrpa_rpa.dir/presets.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/presets.cpp.o.d"
  "CMakeFiles/rsrpa_rpa.dir/quadrature.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/quadrature.cpp.o.d"
  "CMakeFiles/rsrpa_rpa.dir/subspace.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/subspace.cpp.o.d"
  "CMakeFiles/rsrpa_rpa.dir/trace_est.cpp.o"
  "CMakeFiles/rsrpa_rpa.dir/trace_est.cpp.o.d"
  "librsrpa_rpa.a"
  "librsrpa_rpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsrpa_rpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
