
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpa/chi0.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/chi0.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/chi0.cpp.o.d"
  "/root/repo/src/rpa/erpa.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/erpa.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/erpa.cpp.o.d"
  "/root/repo/src/rpa/erpa_slq.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/erpa_slq.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/erpa_slq.cpp.o.d"
  "/root/repo/src/rpa/nu_chi0.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/nu_chi0.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/nu_chi0.cpp.o.d"
  "/root/repo/src/rpa/presets.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/presets.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/presets.cpp.o.d"
  "/root/repo/src/rpa/quadrature.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/quadrature.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/quadrature.cpp.o.d"
  "/root/repo/src/rpa/subspace.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/subspace.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/subspace.cpp.o.d"
  "/root/repo/src/rpa/trace_est.cpp" "src/rpa/CMakeFiles/rsrpa_rpa.dir/trace_est.cpp.o" "gcc" "src/rpa/CMakeFiles/rsrpa_rpa.dir/trace_est.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dft/CMakeFiles/rsrpa_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rsrpa_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/poisson/CMakeFiles/rsrpa_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rsrpa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsrpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rsrpa_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/hamiltonian/CMakeFiles/rsrpa_ham.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rsrpa_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
