# Empty compiler generated dependencies file for rsrpa_rpa.
# This may be replaced when dependencies are built.
