file(REMOVE_RECURSE
  "librsrpa_rpa.a"
)
