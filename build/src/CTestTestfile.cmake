# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("la")
subdirs("grid")
subdirs("poisson")
subdirs("hamiltonian")
subdirs("dft")
subdirs("solver")
subdirs("rpa")
subdirs("direct")
subdirs("par")
subdirs("io")
