
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/test_io.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/test_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/rsrpa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/rpa/CMakeFiles/rsrpa_rpa.dir/DependInfo.cmake"
  "/root/repo/build/src/dft/CMakeFiles/rsrpa_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/hamiltonian/CMakeFiles/rsrpa_ham.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rsrpa_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/poisson/CMakeFiles/rsrpa_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rsrpa_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rsrpa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rsrpa_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsrpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
