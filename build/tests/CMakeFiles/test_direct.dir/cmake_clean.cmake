file(REMOVE_RECURSE
  "CMakeFiles/test_direct.dir/test_direct.cpp.o"
  "CMakeFiles/test_direct.dir/test_direct.cpp.o.d"
  "test_direct"
  "test_direct.pdb"
  "test_direct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
