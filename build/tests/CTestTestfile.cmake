# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_obs[1]_include.cmake")
include("/root/repo/build/tests/test_bench_util[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_poisson[1]_include.cmake")
include("/root/repo/build/tests/test_hamiltonian[1]_include.cmake")
include("/root/repo/build/tests/test_dft[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_rpa[1]_include.cmake")
include("/root/repo/build/tests/test_direct[1]_include.cmake")
include("/root/repo/build/tests/test_par[1]_include.cmake")
include("/root/repo/build/tests/test_loadbalance[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
