# Empty dependencies file for sternheimer_solvers.
# This may be replaced when dependencies are built.
