file(REMOVE_RECURSE
  "CMakeFiles/sternheimer_solvers.dir/sternheimer_solvers.cpp.o"
  "CMakeFiles/sternheimer_solvers.dir/sternheimer_solvers.cpp.o.d"
  "sternheimer_solvers"
  "sternheimer_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sternheimer_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
