# Empty dependencies file for scf_ground_state.
# This may be replaced when dependencies are built.
