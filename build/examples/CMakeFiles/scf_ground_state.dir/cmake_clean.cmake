file(REMOVE_RECURSE
  "CMakeFiles/scf_ground_state.dir/scf_ground_state.cpp.o"
  "CMakeFiles/scf_ground_state.dir/scf_ground_state.cpp.o.d"
  "scf_ground_state"
  "scf_ground_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scf_ground_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
