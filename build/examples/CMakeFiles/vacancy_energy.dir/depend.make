# Empty dependencies file for vacancy_energy.
# This may be replaced when dependencies are built.
