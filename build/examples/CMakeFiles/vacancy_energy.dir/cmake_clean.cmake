file(REMOVE_RECURSE
  "CMakeFiles/vacancy_energy.dir/vacancy_energy.cpp.o"
  "CMakeFiles/vacancy_energy.dir/vacancy_energy.cpp.o.d"
  "vacancy_energy"
  "vacancy_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vacancy_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
