file(REMOVE_RECURSE
  "CMakeFiles/rpacalc.dir/rpacalc.cpp.o"
  "CMakeFiles/rpacalc.dir/rpacalc.cpp.o.d"
  "rpacalc"
  "rpacalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpacalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
