# Empty dependencies file for rpacalc.
# This may be replaced when dependencies are built.
