// A8 / ISDF crossover study: the three matrix-backed E_RPA routes — the
// direct Adler-Wiser trace, the iterative Sternheimer subspace driver,
// and the compressed ISDF backend — on a supercell size sweep at fixed
// grid resolution, all truncating to the same N_NUCHI_EIGS so they
// answer the same question.
//
// Sweeping N_CELLS at fixed grid_per_cell keeps nip/n_d constant at the
// default nip = c * n_occ (both scale linearly with cells), so a single
// default c gives a size-independent per-atom interpolation error —
// the intensive-quantity check the acceptance bound relies on.
//
// Expected shape: ISDF reproduces the Sternheimer energy to within the
// interpolation budget (<= 1e-4 Ha/atom at the default nip), its
// per-frequency work is GEMM-bound (assemble >= eigensolve time), and it
// beats the quartic direct route at the largest size. The informational
// `crossover` field records the smallest n_d where ISDF also beats the
// Sternheimer driver — the regime boundary DESIGN.md's "Choosing a
// backend" section describes.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "direct/direct_rpa.hpp"
#include "isdf/compressed.hpp"
#include "isdf/erpa_isdf.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("a8_isdf_crossover",
                           "ISDF low-rank chi0 backend (Lu-Thicke route)",
                           "compressed ISDF trace matches the Sternheimer "
                           "energy within 1e-4 Ha/atom at nip = c*n_occ, "
                           "GEMM-dominated, faster than the direct route");

  std::vector<std::size_t> sizes = {1, 2, 3};
  if (bench::full_scale()) sizes.push_back(4);

  bool energies_match = true, gemm_dominated = true;
  double crossover_nd = 0.0;  // smallest n_d where ISDF beats Sternheimer
  double direct_last = 0.0, isdf_last = 0.0;
  obs::Json rows = obs::Json::array();

  std::printf("%-6s %-6s %-5s %-10s %-10s %-10s %-13s %-13s %-9s\n", "cells",
              "n_d", "nip", "direct(s)", "stern(s)", "isdf(s)",
              "E_stern(Ha/a)", "E_isdf(Ha/a)", "gap");

  for (std::size_t cells : sizes) {
    rpa::SystemPreset preset = rpa::make_si_preset(cells, false);
    preset.grid_per_cell = 7;
    preset.fd_radius = 3;
    preset.n_eig_per_atom = 10;
    rpa::BuiltSystem sys = rpa::build_system(preset);

    // All three backends keep the same n_eig most negative eigenvalues
    // per omega, so the energies are directly comparable.
    direct::DirectRpaResult dres = direct::compute_direct_rpa(
        *sys.h, sys.ks.n_occ(), *sys.klap, 8, /*keep_spectra=*/false,
        preset.n_eig());

    rpa::RpaOptions sopts = sys.default_rpa_options();
    rpa::RpaResult sres = rpa::compute_rpa_energy(sys.ks, *sys.klap, sopts);

    isdf::IsdfRpaOptions iopts;
    iopts.ell = 8;
    iopts.n_eig = preset.n_eig();
    isdf::IsdfRpaResult ires =
        isdf::compute_rpa_energy_isdf(sys.ks, *sys.klap, iopts);

    const double gap = std::abs(ires.e_rpa_per_atom - sres.e_rpa_per_atom);
    std::printf(
        "%-6zu %-6zu %-5zu %-10.2f %-10.2f %-10.2f %-13.5f %-13.5f %-9.1e\n",
        cells, preset.n_grid(), ires.nip, dres.total_seconds,
        sres.total_seconds, ires.total_seconds, sres.e_rpa_per_atom,
        ires.e_rpa_per_atom, gap);

    energies_match = energies_match && gap <= 1e-4;
    // GEMM dominance of the per-frequency loop: the assemble bucket (the
    // nov*nip^2 and nip^3 GEMMs) must outweigh the dense eigensolve.
    const double t_gemm = ires.timers.get(isdf::kernels::kAssemble);
    const double t_eig = ires.timers.get(isdf::kernels::kEigensolve);
    gemm_dominated = gemm_dominated && t_gemm >= t_eig;
    if (crossover_nd == 0.0 && ires.total_seconds < sres.total_seconds)
      crossover_nd = static_cast<double>(preset.n_grid());
    direct_last = dres.total_seconds;
    isdf_last = ires.total_seconds;

    // Compact scalars only — the full IsdfRpaResult JSON (points,
    // per-omega spectra) belongs in run reports, not a diffed baseline.
    obs::Json row = obs::Json::object();
    row["cells"] = obs::Json(cells);
    row["n_d"] = obs::Json(preset.n_grid());
    row["n_occ"] = obs::Json(sys.ks.n_occ());
    row["nip"] = obs::Json(ires.nip);
    row["n_eig"] = obs::Json(ires.n_eig);
    row["direct_seconds"] = obs::Json(dres.total_seconds);
    row["direct_e_rpa_per_atom"] = obs::Json(dres.e_rpa_per_atom);
    row["sternheimer_seconds"] = obs::Json(sres.total_seconds);
    row["sternheimer_e_rpa_per_atom"] = obs::Json(sres.e_rpa_per_atom);
    row["isdf_seconds"] = obs::Json(ires.total_seconds);
    row["isdf_e_rpa_per_atom"] = obs::Json(ires.e_rpa_per_atom);
    row["energy_gap_ha_per_atom"] = obs::Json(gap);
    row["fit_ridge"] = obs::Json(ires.fit_ridge);
    row["r_decay"] = obs::Json(
        ires.r_diag.empty() ? 0.0 : ires.r_diag.back() / ires.r_diag.front());
    row["gemm_seconds"] = obs::Json(t_gemm);
    row["eigensolve_seconds"] = obs::Json(t_eig);
    if (!ires.per_omega.empty()) {
      row["matvec_flops_per_freq"] = obs::Json(ires.per_omega[0].matvec_flops);
      row["matvec_bytes_per_freq"] = obs::Json(ires.per_omega[0].matvec_bytes);
    }
    rows.push_back(std::move(row));
  }

  std::printf("\nChecks:\n");
  report.data()["rows"] = std::move(rows);
  // Informational: 0 means ISDF never beat the Sternheimer driver in this
  // sweep (the crossover would sit above it).
  report.data()["crossover"] = obs::Json(crossover_nd);
  report.add_check("ISDF matches Sternheimer within 1e-4 Ha/atom",
                   energies_match);
  report.add_check("ISDF per-frequency loop is GEMM-dominated",
                   gemm_dominated);
  report.add_check("ISDF beats the direct route at the largest size",
                   isdf_last < direct_last);
  return report.finish();
}
