// A2 / SS III-B ablation: block size vs iteration count and time on easy
// and hard Sternheimer systems; COCG vs GMRES vs COCR.
//
// Expected shape: iteration count non-increasing with block size, with
// real gains only on the hard (indefinite, near-origin) systems; GMRES
// needs more operator applications than the short-recurrence methods once
// restarts kick in.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "rpa/presets.hpp"
#include "rpa/quadrature.hpp"
#include "solver/block_cocg.hpp"
#include "solver/cocr.hpp"
#include "solver/gmres.hpp"

int main() {
  using namespace rsrpa;
  using la::cplx;
  bench::JsonReport report("a2_blocksize_iters", "SS III-B analysis",
                           "larger blocks cut iterations on hard systems; "
                           "GMRES is the expensive no-short-recurrence "
                           "baseline");
  obs::Json cases_json = obs::Json::array();

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = bench::full_scale() ? 13 : 11;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  const auto quad = rpa::rpa_frequency_quadrature(8);
  const std::size_t n = sys.ks.n_grid();
  const double tol = 1e-8;

  struct Case {
    const char* label;
    double lambda, omega;
  } cases[] = {
      {"easy (j=1, k=1)", sys.ks.eigenvalues.front(), quad.front().omega},
      {"mid  (j=ns, k=5)", sys.ks.eigenvalues.back(), quad[4].omega},
      {"hard (j=ns, k=8)", sys.ks.eigenvalues.back(), quad.back().omega},
  };

  Rng rng(5);
  la::Matrix<double> b_real(n, 16);
  for (std::size_t j = 0; j < 16; ++j) rng.fill_uniform(b_real.col(j));

  bool nonincreasing_ok = true, gmres_pricier = true;
  for (const auto& c : cases) {
    solver::BlockOpC op = [&](const la::Matrix<cplx>& in,
                              la::Matrix<cplx>& out) {
      sys.h->apply_shifted_block(in, out, c.lambda, c.omega);
    };
    std::printf("%s  (lambda = %.3f, omega = %.3f)\n", c.label, c.lambda,
                c.omega);
    std::printf("  %-12s %-8s %-14s %-10s\n", "method", "iters",
                "col matvecs", "time(ms)");

    solver::SolverOptions sopts;
    sopts.tol = tol;
    sopts.max_iter = 50000;

    obs::Json case_rec = obs::Json::object();
    case_rec["label"] = obs::Json(c.label);
    case_rec["lambda"] = obs::Json(c.lambda);
    case_rec["omega"] = obs::Json(c.omega);
    obs::Json methods = obs::Json::array();

    int prev_iters = 1 << 30;
    long cocg_matvecs = 0;
    for (std::size_t s : {1u, 2u, 4u, 8u, 16u}) {
      la::Matrix<cplx> b(n, s), y(n, s);
      for (std::size_t j = 0; j < s; ++j)
        for (std::size_t i = 0; i < n; ++i) b(i, j) = {b_real(i, j), 0.0};
      WallTimer t;
      auto r = solver::block_cocg(op, b, y, sopts);
      std::printf("  blkCOCG s=%-2zu %-8d %-14ld %-10.1f %s\n", s,
                  r.iterations, r.matvec_columns, 1e3 * t.seconds(),
                  r.converged ? "" : "(NOT CONVERGED)");
      obs::Json mr = obs::Json::object();
      mr["method"] = obs::Json("block_cocg");
      mr["block_size"] = obs::Json(s);
      mr["iterations"] = obs::Json(r.iterations);
      mr["matvec_columns"] = obs::Json(r.matvec_columns);
      mr["seconds"] = obs::Json(t.seconds());
      mr["converged"] = obs::Json(r.converged);
      methods.push_back(std::move(mr));
      // Allow small non-monotonic wiggle from inexact arithmetic.
      nonincreasing_ok = nonincreasing_ok && r.iterations <= prev_iters + 3;
      prev_iters = r.iterations;
      if (s == 1) cocg_matvecs = r.matvec_columns;
    }

    {
      std::vector<cplx> b1(n), y(n, cplx{});
      for (std::size_t i = 0; i < n; ++i) b1[i] = {b_real(i, 0), 0.0};
      WallTimer t;
      auto r = solver::cocr(op, b1, y, sopts);
      std::printf("  COCR         %-8d %-14ld %-10.1f\n", r.iterations,
                  r.matvec_columns, 1e3 * t.seconds());
      obs::Json mr = obs::Json::object();
      mr["method"] = obs::Json("cocr");
      mr["iterations"] = obs::Json(r.iterations);
      mr["matvec_columns"] = obs::Json(r.matvec_columns);
      mr["seconds"] = obs::Json(t.seconds());
      mr["converged"] = obs::Json(r.converged);
      methods.push_back(std::move(mr));
    }
    {
      std::vector<cplx> b1(n), y(n, cplx{});
      for (std::size_t i = 0; i < n; ++i) b1[i] = {b_real(i, 0), 0.0};
      solver::GmresOptions gopts;
      gopts.tol = tol;
      gopts.max_iter = 50000;
      gopts.restart = 40;
      WallTimer t;
      auto r = solver::gmres(op, b1, y, gopts);
      std::printf("  GMRES(40)    %-8d %-14ld %-10.1f\n", r.iterations,
                  r.matvec_columns, 1e3 * t.seconds());
      obs::Json mr = obs::Json::object();
      mr["method"] = obs::Json("gmres40");
      mr["iterations"] = obs::Json(r.iterations);
      mr["matvec_columns"] = obs::Json(r.matvec_columns);
      mr["seconds"] = obs::Json(t.seconds());
      mr["converged"] = obs::Json(r.converged);
      methods.push_back(std::move(mr));
      // On the restarted (hard) cases GMRES pays extra applications.
      if (c.omega < 0.1) gmres_pricier = r.matvec_columns >= cocg_matvecs;
    }
    case_rec["methods"] = std::move(methods);
    cases_json.push_back(std::move(case_rec));
    std::printf("\n");
  }

  std::printf("Checks:\n");
  report.data()["cases"] = std::move(cases_json);
  report.add_check("block iterations non-increasing with s", nonincreasing_ok);
  report.add_check("GMRES needs at least as many applications on hard system",
                   gmres_pricier);
  return report.finish();
}
