// A3 / SS III-F ablation: the Galerkin initial guess (Eq. 13) and the
// cross-frequency warm start, each toggled independently.
//
// Expected shape: the Galerkin guess removes the occupied-manifold part
// of the residual and cuts Sternheimer work, most visibly near the hard
// (n_s, l) pairs; the warm start drives the later quadrature points'
// filter counts toward zero (ncheb = 0 rows in the artifact log).
#include <cstdio>

#include "bench_util.hpp"
#include "obs/run_report.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("a3_initial_guess", "SS III-F (Eq. 13 + warm start)",
                           "Galerkin guess cuts solver work; warm start "
                           "eliminates filter iterations at later quadrature "
                           "points");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 9;
  preset.n_eig_per_atom = bench::full_scale() ? 12 : 4;
  preset.fd_radius = 4;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  std::printf("System: %s (n_d = %zu, n_eig = %zu)\n\n", preset.name.c_str(),
              preset.n_grid(), preset.n_eig());

  struct Row {
    const char* label;
    bool galerkin, warm;
    long matvecs = 0;
    double seconds = 0.0;
    int ncheb_total = 0, ncheb_last = 0;
    bool converged = false;
  } rows[] = {
      {"both on (paper)", true, true},
      {"no Galerkin guess", false, true},
      {"no warm start", true, false},
      {"both off", false, false},
  };

  obs::Json variants = obs::Json::array();
  for (Row& r : rows) {
    rpa::RpaOptions opts = sys.default_rpa_options();
    opts.stern.galerkin_guess = r.galerkin;
    opts.warm_start = r.warm;
    rpa::RpaResult res = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);
    r.matvecs = res.stern.matvec_columns;
    r.seconds = res.total_seconds;
    r.converged = res.converged;
    for (const auto& rec : res.per_omega) r.ncheb_total += rec.filter_iterations;
    r.ncheb_last = res.per_omega.back().filter_iterations;

    obs::Json v = obs::Json::object();
    v["variant"] = obs::Json(r.label);
    v["galerkin_guess"] = obs::Json(r.galerkin);
    v["warm_start"] = obs::Json(r.warm);
    v["result"] = obs::to_json(res);
    variants.push_back(std::move(v));
  }

  std::printf("%-20s %-14s %-10s %-12s %-12s %-6s\n", "variant",
              "col matvecs", "time(s)", "sum ncheb", "ncheb(w_8)", "conv");
  for (const Row& r : rows)
    std::printf("%-20s %-14ld %-10.1f %-12d %-12d %-6s\n", r.label, r.matvecs,
                r.seconds, r.ncheb_total, r.ncheb_last,
                r.converged ? "yes" : "NO");

  const bool guess_helps = rows[0].matvecs < rows[1].matvecs;
  const bool warm_helps = rows[0].ncheb_total < rows[2].ncheb_total;
  const bool warm_kills_last = rows[0].ncheb_last <= rows[2].ncheb_last;
  std::printf("\nChecks:\n");
  report.data()["variants"] = std::move(variants);
  report.add_check("Galerkin guess reduces solver applications", guess_helps);
  report.add_check("warm start reduces total filter iterations", warm_helps);
  report.add_check("warm start minimizes work at the hardest omega_l",
                   warm_kills_last);
  return report.finish();
}
