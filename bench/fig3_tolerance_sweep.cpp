// E3 / Fig. 3: RPA correlation energy and wall time vs the Sternheimer
// linear solver tolerance, at fixed block size s = 1.
//
// Expected shape (paper Fig. 3): elapsed time falls rapidly as the
// tolerance loosens while E_RPA stays flat up to ~2e-2; very loose
// tolerances break subspace-iteration convergence.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "obs/run_report.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("fig3_tolerance_sweep", "Figure 3",
                           "E_RPA flat and time decreasing as "
                           "tau_Sternheimer loosens; divergence only at very "
                           "loose tolerance");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 9;
  preset.n_eig_per_atom = bench::full_scale() ? 12 : 6;
  preset.fd_radius = 4;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  std::printf("System: %s, n_d = %zu, n_eig = %zu, fixed s = 1\n\n",
              preset.name.c_str(), preset.n_grid(), preset.n_eig());

  const std::vector<double> tols = {1e-5, 1e-4, 1e-3, 5e-3,
                                    1e-2, 2e-2, 8e-2};
  std::printf("%-12s %-16s %-10s %-10s %-6s\n", "tol_stern", "E_RPA(Ha/atom)",
              "time(s)", "max_ncheb", "conv");

  double e_ref = 0.0, t_tightest = 0.0, t_loosest_converged = 0.0;
  double max_drift = 0.0;
  bool loosest_diverged = false;
  obs::Json runs = obs::Json::array();

  for (std::size_t t = 0; t < tols.size(); ++t) {
    rpa::RpaOptions opts = sys.default_rpa_options();
    opts.stern.tol = tols[t];
    opts.stern.dynamic_block = false;  // the paper fixes s = 1 here
    opts.stern.fixed_block = 1;
    rpa::RpaResult res = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);

    int max_ncheb = 0;
    for (const auto& rec : res.per_omega)
      max_ncheb = std::max(max_ncheb, rec.filter_iterations);
    std::printf("%-12.0e %-16.6f %-10.2f %-10d %-6s\n", tols[t],
                res.e_rpa_per_atom, res.total_seconds, max_ncheb,
                res.converged ? "yes" : "NO");

    obs::Json run = obs::Json::object();
    run["tol_stern"] = obs::Json(tols[t]);
    run["max_ncheb"] = obs::Json(max_ncheb);
    run["result"] = obs::to_json(res);
    runs.push_back(std::move(run));

    if (t == 0) {
      e_ref = res.e_rpa_per_atom;
      t_tightest = res.total_seconds;
    }
    if (res.converged) {
      max_drift = std::max(max_drift, std::abs(res.e_rpa_per_atom - e_ref));
      t_loosest_converged = res.total_seconds;  // tolerances ascend
    }
    if (t + 1 == tols.size()) loosest_diverged = !res.converged;
  }

  std::printf("\nChecks:\n");
  std::printf("  energy drift over converged tolerances: %.2e Ha/atom\n",
              max_drift);
  std::printf("  speedup tightest -> loosest converged: %.1fx\n",
              t_tightest / t_loosest_converged);
  std::printf("  loosest tolerance strains convergence: %s\n",
              loosest_diverged ? "yes (as in the paper)" : "no (model is "
              "more forgiving at this scale)");
  report.data()["runs"] = std::move(runs);
  report.data()["max_energy_drift"] = obs::Json(max_drift);
  report.data()["loosest_diverged"] = obs::Json(loosest_diverged);
  report.add_check("energy drift below chemical accuracy (1.6e-3 Ha/atom)",
                   max_drift < 1.6e-3);
  // The paper's time curve covers CONVERGED runs: past the convergence
  // edge, wasted filter iterations make time rise again.
  report.add_check("loosening tolerance gives >1.5x speedup",
                   t_tightest > 1.5 * t_loosest_converged);
  return report.finish();
}
