// A4 / SS V future-work items, implemented and measured:
//  (1) inverse-Laplacian (split) preconditioning of COCG on Sternheimer
//      systems of increasing difficulty;
//  (2) stochastic Lanczos quadrature replacing the dense eigensolve trace
//      at one quadrature point.
//
// Expected shape: preconditioning trades iterations for per-iteration
// cost — unprofitable on easy systems, iteration-reducing on hard ones;
// SLQ reproduces the eigensolve trace to stochastic accuracy without any
// dense eigensolve.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "direct/direct_rpa.hpp"
#include "rpa/presets.hpp"
#include "rpa/quadrature.hpp"
#include "rpa/trace_est.hpp"
#include "la/blas.hpp"
#include "solver/block_cocg.hpp"
#include "solver/preconditioner.hpp"

int main() {
  using namespace rsrpa;
  using la::cplx;
  bench::JsonReport report("a4_future_work", "SS V future work",
                           "inverse-Laplacian preconditioning helps hard "
                           "Sternheimer systems; Lanczos quadrature can "
                           "replace the eigensolve");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 9;
  preset.fd_radius = 4;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  const auto quad = rpa::rpa_frequency_quadrature(8);
  const std::size_t n = sys.ks.n_grid();

  // ---- (1) Preconditioned COCG --------------------------------------
  std::printf("[1] split inverse-Laplacian preconditioning (M = sigma0 - "
              "L/2)\n");
  std::printf("  %-18s %-12s %-12s %-12s %-12s\n", "case", "plain iters",
              "plain t(ms)", "prec iters", "prec t(ms)");

  Rng rng(3);
  la::Matrix<double> b_real(n, 4);
  for (std::size_t j = 0; j < 4; ++j) rng.fill_uniform(b_real.col(j));
  la::Matrix<cplx> b(n, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < n; ++i) b(i, j) = {b_real(i, j), 0.0};

  struct Case {
    const char* label;
    double lambda, omega;
  } cases[] = {
      {"easy (1,1)", sys.ks.eigenvalues.front(), quad.front().omega},
      {"hard (ns,8)", sys.ks.eigenvalues.back(), quad.back().omega},
  };

  solver::SolverOptions sopts;
  sopts.tol = 1e-8;
  sopts.max_iter = 50000;
  bool prec_helps_hard_iters = false;
  obs::Json prec_rows = obs::Json::array();

  for (const Case& c : cases) {
    solver::BlockOpC op = [&](const la::Matrix<cplx>& in,
                              la::Matrix<cplx>& out) {
      sys.h->apply_shifted_block(in, out, c.lambda, c.omega);
    };
    la::Matrix<cplx> y_plain(n, 4);
    WallTimer tp;
    auto rp = solver::block_cocg(op, b, y_plain, sopts);
    const double t_plain = tp.seconds();

    // Shift sigma0 keeps M positive and comparable to |A|'s real offset.
    solver::ShiftedLaplacianPrecond precond(*sys.klap,
                                            std::max(0.05, -c.lambda));
    la::Matrix<cplx> y_prec(n, 4);
    WallTimer tq;
    auto rq = solver::preconditioned_block_cocg(op, precond, b, y_prec, sopts);
    const double t_prec = tq.seconds();

    std::printf("  %-18s %-12d %-12.1f %-12d %-12.1f\n", c.label,
                rp.iterations, 1e3 * t_plain, rq.iterations, 1e3 * t_prec);
    if (c.omega < 0.1) prec_helps_hard_iters = rq.iterations < rp.iterations;

    obs::Json row = obs::Json::object();
    row["case"] = obs::Json(c.label);
    row["plain_iterations"] = obs::Json(rp.iterations);
    row["plain_matvec_columns"] = obs::Json(rp.matvec_columns);
    row["plain_seconds"] = obs::Json(t_plain);
    row["prec_iterations"] = obs::Json(rq.iterations);
    row["prec_matvec_columns"] = obs::Json(rq.matvec_columns);
    row["prec_seconds"] = obs::Json(t_prec);
    prec_rows.push_back(std::move(row));
  }

  // ---- (2) SLQ trace vs dense eigensolve trace ----------------------
  std::printf("\n[2] stochastic Lanczos quadrature of Tr[ln(1 - M) + M], "
              "M = nu^{1/2} chi0 nu^{1/2}, omega = %.3f\n",
              quad[4].omega);

  la::EigResult heig = direct::full_diagonalization(*sys.h);
  la::Matrix<double> chi0 = direct::dense_chi0(heig, sys.ks.n_occ(),
                                               quad[4].omega,
                                               sys.h->grid().dv());
  la::Matrix<double> m = direct::dense_nu_half_chi0_nu_half(chi0, *sys.klap);
  std::vector<double> spec = la::sym_eigvals(m);
  double exact = 0.0;
  for (double mu : spec) exact += rpa::rpa_trace_term(mu);

  solver::BlockOpR mop = [&m](const la::Matrix<double>& in,
                              la::Matrix<double>& out) {
    la::gemm_nn(1.0, m, in, 0.0, out);
  };
  Rng slq_rng(17);
  std::printf("  %-10s %-14s %-12s\n", "probes", "SLQ estimate", "rel err");
  double best_rel = 1e300;
  obs::Json slq_rows = obs::Json::array();
  for (int probes : {8, 32, 128}) {
    const double est = rpa::slq_trace(
        mop, n, [](double x) { return rpa::rpa_trace_term(std::min(x, 0.0)); },
        probes, 30, slq_rng);
    const double rel = std::abs(est - exact) / std::abs(exact);
    std::printf("  %-10d %-14.6f %-12.3e\n", probes, est, rel);
    best_rel = std::min(best_rel, rel);
    obs::Json row = obs::Json::object();
    row["probes"] = obs::Json(probes);
    row["estimate"] = obs::Json(est);
    row["rel_err"] = obs::Json(rel);
    slq_rows.push_back(std::move(row));
  }
  std::printf("  dense eigensolve trace: %.6f\n", exact);

  std::printf("\nChecks:\n");
  report.data()["preconditioning"] = std::move(prec_rows);
  report.data()["slq"] = std::move(slq_rows);
  report.data()["exact_trace"] = obs::Json(exact);
  report.add_check("preconditioning reduces iterations on the hard system",
                   prec_helps_hard_iters);
  report.add_check("SLQ reaches <5% relative error", best_rel < 0.05);
  return report.finish();
}
