// A5 / SS II design decision: seed methods vs block methods.
//
// The paper rejects seed projection because the Sternheimer right-hand
// sides are "effectively random", so reusing the seed Krylov subspace
// should buy little. This ablation tests that: (a) independent COCG
// solves, (b) seed-projected initial guesses + COCG, (c) block COCG —
// on real Sternheimer systems with random-potential right-hand sides and,
// as a control, with CORRELATED right-hand sides where seeding does help.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "rpa/presets.hpp"
#include "rpa/quadrature.hpp"
#include "solver/block_cocg.hpp"
#include "solver/seed_projection.hpp"

namespace {

using rsrpa::la::cplx;

struct Tally {
  long matvecs = 0;
  int max_iters = 0;
};

Tally solve_independent(const rsrpa::solver::BlockOpC& op,
                        const rsrpa::la::Matrix<cplx>& b,
                        const rsrpa::solver::SolverOptions& sopts) {
  Tally t;
  const std::size_t n = b.rows();
  for (std::size_t j = 0; j < b.cols(); ++j) {
    std::vector<cplx> bj(n), y(n, cplx{});
    for (std::size_t i = 0; i < n; ++i) bj[i] = b(i, j);
    auto r = rsrpa::solver::cocg(op, bj, y, sopts);
    t.matvecs += r.matvec_columns;
    t.max_iters = std::max(t.max_iters, r.iterations);
  }
  return t;
}

Tally solve_seeded(const rsrpa::solver::BlockOpC& op,
                   const rsrpa::la::Matrix<cplx>& b,
                   const rsrpa::solver::SolverOptions& sopts) {
  Tally t;
  const std::size_t n = b.rows();
  // Seed on column 0.
  std::vector<cplx> b0(n), y0(n, cplx{});
  for (std::size_t i = 0; i < n; ++i) b0[i] = b(i, 0);
  rsrpa::solver::SeedBasis basis;
  auto rs = rsrpa::solver::cocg_store_basis(op, b0, y0, basis, sopts);
  t.matvecs += rs.matvec_columns;
  t.max_iters = rs.iterations;

  // Project the rest and continue with COCG from the projected guess.
  rsrpa::la::Matrix<cplx> rest = b.slice_cols(1, b.cols() - 1);
  rsrpa::la::Matrix<cplx> guesses = rsrpa::solver::seed_project(basis, rest);
  for (std::size_t j = 0; j < rest.cols(); ++j) {
    std::vector<cplx> bj(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      bj[i] = rest(i, j);
      y[i] = guesses(i, j);
    }
    auto r = rsrpa::solver::cocg(op, bj, y, sopts);
    t.matvecs += r.matvec_columns;
    t.max_iters = std::max(t.max_iters, r.iterations);
  }
  return t;
}

}  // namespace

int main() {
  using namespace rsrpa;
  bench::JsonReport report("a5_seed_methods", "SS II (seed vs block methods)",
                           "seed projection buys little for the "
                           "effectively-random Sternheimer right-hand sides; "
                           "block COCG is the right tool");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = bench::full_scale() ? 11 : 9;
  preset.fd_radius = 4;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  const auto quad = rpa::rpa_frequency_quadrature(8);
  const std::size_t n = sys.ks.n_grid(), s = 8;

  const double lambda = sys.ks.eigenvalues.back();
  const double omega = quad[5].omega;  // moderately hard
  solver::BlockOpC op = [&](const la::Matrix<cplx>& in, la::Matrix<cplx>& out) {
    sys.h->apply_shifted_block(in, out, lambda, omega);
  };
  solver::SolverOptions sopts;
  sopts.tol = 1e-8;
  sopts.max_iter = 50000;

  Rng rng(11);

  // Case 1: effectively random right-hand sides (the Sternheimer regime).
  la::Matrix<cplx> b_rand(n, s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i) b_rand(i, j) = {rng.uniform(-1, 1), 0.0};

  // Case 2 (control): correlated right-hand sides — small perturbations of
  // a common vector, the regime where seed methods are designed to shine.
  la::Matrix<cplx> b_corr(n, s);
  for (std::size_t i = 0; i < n; ++i) b_corr(i, 0) = b_rand(i, 0);
  for (std::size_t j = 1; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i)
      b_corr(i, j) = b_rand(i, 0) + cplx{0.01 * rng.uniform(-1, 1), 0.0};

  std::printf("%zu right-hand sides, lambda = %.3f, omega = %.3f, tol = %.0e\n\n",
              s, lambda, omega, sopts.tol);
  std::printf("%-28s %-14s %-14s\n", "strategy", "random RHS", "correlated RHS");

  const Tally ind_r = solve_independent(op, b_rand, sopts);
  const Tally ind_c = solve_independent(op, b_corr, sopts);
  std::printf("%-28s %-14ld %-14ld   (column matvecs)\n",
              "independent COCG", ind_r.matvecs, ind_c.matvecs);

  const Tally seed_r = solve_seeded(op, b_rand, sopts);
  const Tally seed_c = solve_seeded(op, b_corr, sopts);
  std::printf("%-28s %-14ld %-14ld\n", "seed projection + COCG",
              seed_r.matvecs, seed_c.matvecs);

  la::Matrix<cplx> yb(n, s);
  auto rb_r = solver::block_cocg(op, b_rand, yb, sopts);
  yb.zero();
  auto rb_c = solver::block_cocg(op, b_corr, yb, sopts);
  std::printf("%-28s %-14ld %-14ld\n", "block COCG (s=8)",
              rb_r.matvec_columns, rb_c.matvec_columns);

  const double seed_gain_random =
      static_cast<double>(ind_r.matvecs - seed_r.matvecs) /
      static_cast<double>(ind_r.matvecs);
  const double seed_gain_corr =
      static_cast<double>(ind_c.matvecs - seed_c.matvecs) /
      static_cast<double>(ind_c.matvecs);
  std::printf("\nseed-method saving: %.0f%% on random RHS, %.0f%% on "
              "correlated RHS\n",
              100 * seed_gain_random, 100 * seed_gain_corr);

  const bool paper_claim = seed_gain_random < 0.30;  // little benefit
  const bool control_works = seed_gain_corr > seed_gain_random;
  std::printf("\nChecks:\n");
  obs::Json tallies = obs::Json::object();
  auto tally_json = [](long matvecs, int max_iters) {
    obs::Json t = obs::Json::object();
    t["matvec_columns"] = obs::Json(matvecs);
    t["max_iterations"] = obs::Json(max_iters);
    return t;
  };
  tallies["independent_random"] = tally_json(ind_r.matvecs, ind_r.max_iters);
  tallies["independent_correlated"] = tally_json(ind_c.matvecs, ind_c.max_iters);
  tallies["seeded_random"] = tally_json(seed_r.matvecs, seed_r.max_iters);
  tallies["seeded_correlated"] = tally_json(seed_c.matvecs, seed_c.max_iters);
  tallies["block_random"] = tally_json(rb_r.matvec_columns, rb_r.iterations);
  tallies["block_correlated"] = tally_json(rb_c.matvec_columns, rb_c.iterations);
  report.data()["tallies"] = std::move(tallies);
  report.data()["seed_gain_random"] = obs::Json(seed_gain_random);
  report.data()["seed_gain_correlated"] = obs::Json(seed_gain_corr);
  report.add_check("seeding saves <30% on random RHS (paper's rationale)",
                   paper_claim);
  report.add_check("seeding helps MORE on correlated RHS (control)",
                   control_works);
  return report.finish();
}
