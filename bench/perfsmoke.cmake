# ctest driver for the perfsmoke label: run one bench binary, then diff
# its JSON report against the checked-in baseline (see CMakeLists.txt).
execute_process(COMMAND ${BENCH_EXE} RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench exited with ${bench_rc}")
endif()
execute_process(COMMAND ${PYTHON} ${COMPARE} ${FRESH} ${BASELINE}
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "baseline comparison failed (${cmp_rc})")
endif()
