// E4 / Table IV: dynamic block size frequencies across system sizes.
//
// Expected shape (paper Table IV): small block sizes dominate; the
// fraction of s = 1 chunks grows with system size (more orbitals means a
// larger share of easy (j,k) pairs); occasional larger sizes appear for
// the hard systems.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "obs/run_report.hpp"
#include "par/parallel_rpa.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("table4_blocksize_freq", "Table IV",
                           "block size 1-2 chunks dominate; s=1 share grows "
                           "with system size; rare large blocks");

  const std::size_t max_cells = bench::full_scale() ? 3 : 2;
  std::vector<std::map<int, int>> histograms;
  std::vector<std::string> names;
  std::vector<double> s1_fraction;
  obs::Json systems = obs::Json::array();

  for (std::size_t ncells = 1; ncells <= max_cells; ++ncells) {
    rpa::SystemPreset preset = rpa::make_si_preset(ncells, false);
    preset.grid_per_cell = 9;
    preset.n_eig_per_atom = 6;
    preset.fd_radius = 4;
    rpa::BuiltSystem sys = rpa::build_system(preset);

    // Emulate the paper's per-processor view: partition columns over a few
    // ranks so the n_eig/p block cap is active, as on the cluster.
    par::ParallelRpaOptions opts;
    opts.rpa = sys.default_rpa_options();
    opts.n_ranks = 4;
    par::ParallelRpaResult res = par::run_parallel_rpa(sys.ks, *sys.klap, opts);

    names.push_back(preset.name);
    histograms.push_back(res.rpa.stern.block_size_chunks);
    long total = 0, s1 = 0;
    for (const auto& [size, count] : histograms.back()) {
      total += count;
      if (size == 1) s1 = count;
    }
    s1_fraction.push_back(static_cast<double>(s1) /
                          static_cast<double>(total));
    std::printf("%s done (%.1f s, converged %s)\n", preset.name.c_str(),
                res.rpa.total_seconds, res.rpa.converged ? "yes" : "NO");

    obs::Json sysrec = obs::Json::object();
    sysrec["system"] = obs::Json(preset.name);
    sysrec["s1_fraction"] = obs::Json(s1_fraction.back());
    sysrec["result"] = obs::to_json(res);
    systems.push_back(std::move(sysrec));
  }

  std::printf("\nBlock size chunk counts (summed over ranks and solves):\n");
  std::printf("%-10s", "size");
  for (const auto& n : names) std::printf(" %10s", n.c_str());
  std::printf("\n");
  for (int size : {1, 2, 4, 8, 16}) {
    std::printf("%-10d", size);
    for (const auto& h : histograms) {
      auto it = h.find(size);
      std::printf(" %10d", it == h.end() ? 0 : it->second);
    }
    std::printf("\n");
  }

  std::printf("\ns=1 fraction by system:");
  for (double f : s1_fraction) std::printf(" %.2f", f);
  std::printf("\n");

  bool small_dominate = true;
  for (const auto& h : histograms) {
    long small = 0, total = 0;
    for (const auto& [size, count] : h) {
      total += count;
      if (size <= 2) small += count;
    }
    small_dominate = small_dominate && small > 0.7 * total;
  }
  const bool s1_grows = s1_fraction.back() >= s1_fraction.front() - 0.05;
  std::printf("\nChecks:\n");
  report.data()["systems"] = std::move(systems);
  report.add_check("sizes 1-2 dominate every system", small_dominate);
  report.add_check("s=1 share non-decreasing with system size", s1_grows);
  return report.finish();
}
