// E2 / Fig. 2: overlap structure V7^T V8 between the exact eigenvector
// blocks of nu chi0 at the two smallest quadrature frequencies.
//
// Expected shape (paper Fig. 2): a line of near-unit-magnitude elements
// along the diagonal with much smaller off-diagonal entries — i.e. each
// omega_7 eigenvector approximates the same-index omega_8 eigenvector,
// which is why the warm start of SS III-F works.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "direct/direct_rpa.hpp"
#include "la/blas.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("fig2_warmstart_overlap", "Figure 2",
                           "V7^H V8 is diagonally dominant: eigenvectors at "
                           "omega_7 approximate those at omega_8 "
                           "index-by-index");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = bench::full_scale() ? 9 : 8;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  const std::size_t n_keep = 48;  // lowest eigenvectors compared

  la::EigResult heig = direct::full_diagonalization(*sys.h);
  const auto quad = rpa::rpa_frequency_quadrature(8);

  auto eigvecs_at = [&](double omega) {
    la::Matrix<double> chi0 = direct::dense_chi0(heig, sys.ks.n_occ(), omega,
                                                 sys.h->grid().dv());
    la::Matrix<double> m = direct::dense_nu_half_chi0_nu_half(chi0, *sys.klap);
    la::EigResult e = la::sym_eig(m);
    return e.vectors.slice_cols(0, n_keep);  // most negative first
  };

  std::printf("Computing exact eigenvectors at omega_7 = %.4f and omega_8 = "
              "%.4f (n_d = %zu)...\n\n",
              quad[6].omega, quad[7].omega, preset.n_grid());
  la::Matrix<double> v7 = eigvecs_at(quad[6].omega);
  la::Matrix<double> v8 = eigvecs_at(quad[7].omega);

  la::Matrix<double> overlap(n_keep, n_keep);
  la::gemm_tn(1.0, v7, v8, 0.0, overlap);

  double diag_sum = 0.0, offdiag_sum = 0.0, diag_min = 1e300;
  for (std::size_t j = 0; j < n_keep; ++j)
    for (std::size_t i = 0; i < n_keep; ++i) {
      const double a = std::abs(overlap(i, j));
      if (i == j) {
        diag_sum += a;
        diag_min = std::min(diag_min, a);
      } else {
        offdiag_sum += a;
      }
    }
  const double diag_mean = diag_sum / n_keep;
  const double offdiag_mean = offdiag_sum / (n_keep * (n_keep - 1.0));

  std::printf("log10 |V7^T V8| corner (first 8x8):\n");
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j)
      std::printf(" %6.1f", std::log10(std::abs(overlap(i, j)) + 1e-300));
    std::printf("\n");
  }

  std::printf("\nmean |diag|     = %.3f (min %.3f)\n", diag_mean, diag_min);
  std::printf("mean |offdiag|  = %.4f\n", offdiag_mean);
  std::printf("dominance ratio = %.1fx\n", diag_mean / offdiag_mean);
  report.data()["n_keep"] = obs::Json(n_keep);
  report.data()["diag_mean"] = obs::Json(diag_mean);
  report.data()["diag_min"] = obs::Json(diag_min);
  report.data()["offdiag_mean"] = obs::Json(offdiag_mean);
  report.data()["dominance_ratio"] = obs::Json(diag_mean / offdiag_mean);
  report.add_check("overlap diagonally dominant (>10x, mean |diag| > 0.5)",
                   diag_mean > 10.0 * offdiag_mean && diag_mean > 0.5);
  return report.finish();
}
