// E5 / Fig. 4: strong scaling of the RPA computation across rank counts,
// via the simulated-rank runtime (see DESIGN.md for the substitution).
//
// Expected shape (paper Fig. 4): good parallel efficiency at moderate p,
// degrading at high p from Sternheimer load imbalance and collective
// costs; the block-size cap n_eig/p >= 4 bounds the sweep exactly as in
// the paper.
#include <cstdio>

#include "bench_util.hpp"
#include "obs/run_report.hpp"
#include "par/parallel_rpa.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("fig4_strong_scaling", "Figure 4",
                           "near-ideal scaling at small p, efficiency loss "
                           "at large p from load imbalance + collectives");

  const std::size_t max_cells = bench::full_scale() ? 4 : 2;
  bool all_ok = true;
  obs::Json sweeps = obs::Json::array();

  for (std::size_t ncells = 1; ncells <= max_cells; ++ncells) {
    rpa::SystemPreset preset = rpa::make_si_preset(ncells, false);
    preset.grid_per_cell = 9;
    preset.n_eig_per_atom = 4;
    preset.fd_radius = 4;
    rpa::BuiltSystem sys = rpa::build_system(preset);

    // Fixed-work protocol: one quadrature point, exactly 2 filter passes
    // (tolerance unreachable), so every p runs the same mathematics and
    // only the partition (and its block-size cap) differs.
    par::ParallelRpaOptions base;
    base.rpa = sys.default_rpa_options();
    base.rpa.ell = 1;
    base.rpa.tol_eig = {1e-30};
    base.rpa.max_filter_iter = 2;

    std::printf("%s (n_d = %zu, n_eig = %zu):\n", preset.name.c_str(),
                preset.n_grid(), preset.n_eig());
    std::printf("  %-6s %-12s %-10s %-12s %-12s\n", "p", "T_model(s)",
                "speedup", "efficiency", "imbalance");

    double t1 = 0.0;
    double prev_t = 1e300;
    obs::Json points = obs::Json::array();
    for (std::size_t p = 1; p * 4 <= preset.n_eig(); p *= 2) {
      par::ParallelRpaOptions opts = base;
      opts.n_ranks = p;
      par::ParallelRpaResult res = par::run_parallel_rpa(sys.ks, *sys.klap, opts);
      if (p == 1) t1 = res.modeled_total_seconds;
      const double speedup = t1 / res.modeled_total_seconds;
      const double eff = speedup / static_cast<double>(p);
      // Load imbalance of the Sternheimer stage: critical path / average.
      const double avg =
          res.apply_work_seconds / static_cast<double>(p);
      const double imb =
          (res.modeled.nu_chi0 + res.modeled.eval_error) / avg;
      std::printf("  %-6zu %-12.2f %-10.2f %-12.2f %-12.2f\n", p,
                  res.modeled_total_seconds, speedup, eff, imb);
      all_ok = all_ok && res.modeled_total_seconds <= prev_t * 1.10;
      prev_t = res.modeled_total_seconds;

      obs::Json pt = obs::Json::object();
      pt["p"] = obs::Json(p);
      pt["speedup"] = obs::Json(speedup);
      pt["efficiency"] = obs::Json(eff);
      pt["imbalance"] = obs::Json(imb);
      pt["result"] = obs::to_json(res);
      points.push_back(std::move(pt));
      if (p >= 64) break;
    }
    std::printf("\n");

    obs::Json sweep = obs::Json::object();
    sweep["system"] = obs::Json(preset.name);
    sweep["points"] = std::move(points);
    sweeps.push_back(std::move(sweep));
  }

  report.data()["sweeps"] = std::move(sweeps);
  report.add_check("modeled time non-increasing (within 10%) along sweeps",
                   all_ok);
  return report.finish();
}
