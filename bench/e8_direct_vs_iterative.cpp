// E8 / SS IV-C comparison: the iterative real-space formulation against
// the direct (full diagonalization + explicit Adler-Wiser chi0) approach
// on the smallest system.
//
// Expected shape (paper SS IV-C): the iterative formulation wins on even
// the smallest system tested — the paper reports ~40x against ABINIT on
// Si8 — and the gap widens with n_d because direct is quartic-class.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "direct/direct_rpa.hpp"
#include "obs/run_report.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("e8_direct_vs_iterative",
                           "SS IV-C ABINIT comparison",
                           "the iterative formulation beats the direct "
                           "approach on the smallest system; energies agree");

  const std::size_t grids[] = {7, 8, bench::full_scale() ? 10u : 9u};
  double prev_ratio = 0.0;
  bool iterative_wins = true, ratio_grows = true, energies_agree = true;
  obs::Json rows = obs::Json::array();

  std::printf("%-6s %-8s %-12s %-12s %-9s %-14s %-14s\n", "grid", "n_d",
              "direct(s)", "iterative(s)", "speedup", "E_dir(Ha/at)",
              "E_iter(Ha/at)");

  for (std::size_t gpc : grids) {
    rpa::SystemPreset preset = rpa::make_si_preset(1, false);
    preset.grid_per_cell = gpc;
    preset.fd_radius = 3;
    // Keep enough eigenvalues that truncation error is small vs. the
    // direct full-spectrum trace.
    preset.n_eig_per_atom = 10;
    rpa::BuiltSystem sys = rpa::build_system(preset);

    direct::DirectRpaResult dres =
        direct::compute_direct_rpa(*sys.h, sys.ks.n_occ(), *sys.klap, 8);

    rpa::RpaOptions iopts = sys.default_rpa_options();
    rpa::RpaResult ires = rpa::compute_rpa_energy(sys.ks, *sys.klap, iopts);

    const double speedup = dres.total_seconds / ires.total_seconds;
    std::printf("%-6zu %-8zu %-12.1f %-12.1f %-9.1f %-14.5f %-14.5f\n", gpc,
                preset.n_grid(), dres.total_seconds, ires.total_seconds,
                speedup, dres.e_rpa_per_atom, ires.e_rpa_per_atom);

    obs::Json row = obs::Json::object();
    row["grid_per_cell"] = obs::Json(gpc);
    row["n_d"] = obs::Json(preset.n_grid());
    row["direct_seconds"] = obs::Json(dres.total_seconds);
    row["direct_e_rpa_per_atom"] = obs::Json(dres.e_rpa_per_atom);
    row["speedup"] = obs::Json(speedup);
    row["iterative"] = obs::to_json(ires);
    rows.push_back(std::move(row));

    iterative_wins = iterative_wins && speedup > 1.0;
    if (prev_ratio > 0.0) ratio_grows = ratio_grows && speedup > prev_ratio;
    prev_ratio = speedup;
    // The iterative value keeps only n_eig of n_d eigenvalues. On the toy
    // model the dielectric spectrum decays more slowly than real silicon
    // (see fig1_spectrum), so the truncated value legitimately sits 20-30%
    // above the full trace (cf. the a6 oracle study); require the right
    // sign, same decade, and |iterative| <= |direct|.
    energies_agree =
        energies_agree && ires.e_rpa_per_atom < 0.0 &&
        std::abs(ires.e_rpa_per_atom) <=
            std::abs(dres.e_rpa_per_atom) * 1.02 &&
        std::abs(ires.e_rpa_per_atom) >
            0.5 * std::abs(dres.e_rpa_per_atom);
  }

  std::printf("\nChecks:\n");
  report.data()["rows"] = std::move(rows);
  report.add_check("iterative faster at every size", iterative_wins);
  report.add_check("speedup grows with n_d (cubic vs quartic-class)",
                   ratio_grows);
  report.add_check("energies agree within truncation budget", energies_agree);
  return report.finish();
}
