// E6 / Fig. 5: per-kernel timing breakdown vs rank count for the largest
// default system, via the simulated-rank runtime.
//
// Expected shape (paper Fig. 5): the nu^{1/2} chi0 nu^{1/2} kernel
// dominates and scales well; eval error tracks it plus an allreduce;
// matmult and eigensolve scale poorly and grow in relative share with p.
#include <cstdio>

#include "bench_util.hpp"
#include "obs/run_report.hpp"
#include "par/parallel_rpa.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("fig5_kernel_breakdown", "Figure 5",
                           "nu chi0 apply dominates and scales; "
                           "matmult/eigensolve scale poorly, growing in "
                           "share with p");

  rpa::SystemPreset preset =
      rpa::make_si_preset(bench::full_scale() ? 5 : 2, false);
  preset.grid_per_cell = 9;
  preset.n_eig_per_atom = 4;
  preset.fd_radius = 4;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  std::printf("System: %s (n_d = %zu, n_eig = %zu)\n\n", preset.name.c_str(),
              preset.n_grid(), preset.n_eig());

  par::ParallelRpaOptions base;
  base.rpa = sys.default_rpa_options();
  base.rpa.ell = 1;
  base.rpa.tol_eig = {1e-30};
  base.rpa.max_filter_iter = 2;

  std::printf("%-6s %-12s %-12s %-12s %-12s %-12s %-10s\n", "p", "nu_chi0",
              "eval_error", "matmult", "eigensolve", "total", "chi0 share");

  double chi0_share_first = 0.0, chi0_share_last = 0.0;
  double t_nuchi0_first = 0.0, t_nuchi0_last = 0.0;
  std::size_t p_first = 1, p_last = 1;
  double stern_ai = 0.0;
  std::size_t apply_counter_events = 0;
  obs::Json points = obs::Json::array();

  for (std::size_t p = 1; p * 4 <= preset.n_eig() && p <= 64; p *= 2) {
    par::ParallelRpaOptions opts = base;
    opts.n_ranks = p;
    par::ParallelRpaResult res = par::run_parallel_rpa(sys.ks, *sys.klap, opts);
    const auto& k = res.modeled;
    const double share = k.nu_chi0 / k.total();
    std::printf("%-6zu %-12.3f %-12.3f %-12.4f %-12.4f %-12.3f %-10.2f\n", p,
                k.nu_chi0, k.eval_error, k.matmult, k.eigensolve, k.total(),
                share);
    obs::Json pt = obs::Json::object();
    pt["p"] = obs::Json(p);
    pt["chi0_share"] = obs::Json(share);
    pt["result"] = obs::to_json(res);
    points.push_back(std::move(pt));
    if (p == 1) {
      chi0_share_first = share;
      t_nuchi0_first = k.nu_chi0;
      p_first = p;
      // Measured arithmetic intensity of the fused Sternheimer applies
      // (paper SS III-C), from the solver traffic model + apply counters.
      if (res.rpa.stern.matvec_bytes > 0.0)
        stern_ai = res.rpa.stern.matvec_flops / res.rpa.stern.matvec_bytes;
      apply_counter_events =
          res.rpa.events.count(obs::events::kApplyCounters);
    }
    chi0_share_last = share;
    t_nuchi0_last = k.nu_chi0;
    p_last = p;
  }

  const double chi0_speedup = t_nuchi0_first / t_nuchi0_last;
  const double chi0_eff =
      chi0_speedup / (static_cast<double>(p_last) / p_first);
  std::printf("\nChecks:\n");
  report.data()["points"] = std::move(points);
  report.data()["chi0_share_first"] = obs::Json(chi0_share_first);
  report.data()["chi0_share_last"] = obs::Json(chi0_share_last);
  report.data()["chi0_efficiency"] = obs::Json(chi0_eff);
  report.data()["stern_arithmetic_intensity"] = obs::Json(stern_ai);
  report.data()["apply_counter_events"] = obs::Json(apply_counter_events);
  std::printf("Sternheimer apply AI (modeled, fused): %.3f flop/byte, "
              "%zu apply_counters events\n",
              stern_ai, apply_counter_events);
  report.add_check("nu_chi0 dominates at p = 1 (share > 0.5)",
                   chi0_share_first > 0.5);
  report.add_check("apply counters captured with positive AI",
                   stern_ai > 0.0 && apply_counter_events > 0);
  report.add_check("nu_chi0 parallel efficiency > 0.4", chi0_eff > 0.4);
  return report.finish();
}
