// E9: regenerate Table II — the Gauss-Legendre frequency quadrature.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "rpa/quadrature.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("e9_quadrature_table", "Table II",
                           "8-point Gauss-Legendre rule mapped by "
                           "omega=(1-x)/x gives points 49.36..0.020 and "
                           "weights 128.4..0.053");

  const double omega_ref[] = {49.36, 8.836, 3.215, 1.449,
                              0.690, 0.311, 0.113, 0.020};
  const double weight_ref[] = {128.4, 10.76, 2.787, 1.088,
                               0.518, 0.270, 0.138, 0.053};

  const auto pts = rpa::rpa_frequency_quadrature(8);
  std::printf("%-3s %-12s %-12s %-12s %-12s\n", "k", "omega", "paper",
              "weight", "paper");
  // Table II prints 3-4 significant digits, so compare up to the rounding
  // granularity of the printed reference (half a unit in the last place,
  // i.e. 5e-4 for "0.020").
  bool match = true;
  double max_dev = 0.0;
  obs::Json rows = obs::Json::array();
  for (int k = 0; k < 8; ++k) {
    std::printf("%-3d %-12.4f %-12.3f %-12.4f %-12.3f\n", k + 1, pts[k].omega,
                omega_ref[k], pts[k].weight, weight_ref[k]);
    const double tol_o = 0.005 * omega_ref[k] + 6e-4;
    const double tol_w = 0.005 * weight_ref[k] + 6e-3;
    max_dev = std::max(max_dev, std::abs(pts[k].omega - omega_ref[k]));
    match = match && std::abs(pts[k].omega - omega_ref[k]) < tol_o &&
            std::abs(pts[k].weight - weight_ref[k]) < tol_w;
    obs::Json row = obs::Json::object();
    row["k"] = obs::Json(k + 1);
    row["omega"] = obs::Json(pts[k].omega);
    row["omega_paper"] = obs::Json(omega_ref[k]);
    row["weight"] = obs::Json(pts[k].weight);
    row["weight_paper"] = obs::Json(weight_ref[k]);
    rows.push_back(std::move(row));
  }
  std::printf("\nMax absolute deviation from Table II points: %.2e\n", max_dev);
  report.data()["rows"] = std::move(rows);
  report.data()["max_abs_deviation"] = obs::Json(max_dev);
  report.add_check("matches Table II to printed precision", match);
  return report.finish();
}
