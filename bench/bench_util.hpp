// Shared helpers for the experiment benches.
//
// Every bench prints a self-describing header naming the paper element it
// regenerates and the scale it runs at. Default scale is sized for a
// single core (seconds to a couple of minutes per bench); set RSRPA_FULL=1
// to extend sweeps to the larger systems of Table III.
//
// Each bench also writes a machine-readable report to
// `bench_out/<id>.json` (override the directory with RSRPA_BENCH_OUT) via
// JsonReport; the schema is documented in docs/REPRODUCING.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "sched/thread_pool.hpp"

namespace rsrpa::bench {

inline bool full_scale() {
  const char* env = std::getenv("RSRPA_FULL");
  return env != nullptr && env[0] == '1';
}

inline void header(const char* id, const char* paper_element,
                   const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n", id, paper_element);
  std::printf("Paper claim: %s\n", claim);
  std::printf("Scale: %s (set RSRPA_FULL=1 for the extended sweep)\n",
              full_scale() ? "FULL" : "bench");
  std::printf("==============================================================\n\n");
}

/// Least-squares slope of log(y) against log(x) — the Fig. 6 exponent.
/// Undefined (quiet NaN) when fewer than two samples are given, when the
/// series lengths differ, when any sample is non-positive (log would be
/// -inf/NaN), or when all x are equal (vertical fit).
inline double loglog_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::size_t n = x.size();
  if (n < 2 || y.size() != n) return nan;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(x[i] > 0.0) || !(y[i] > 0.0)) return nan;
    const double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return nan;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

/// A numeric series as a JSON array (non-finite entries become null on
/// dump, so timing columns survive serialization).
inline obs::Json json_array(const std::vector<double>& v) {
  obs::Json a = obs::Json::array();
  for (double x : v) a.push_back(obs::Json(x));
  return a;
}

/// Structured bench report. Construction prints the usual header and
/// records the metadata; benches attach result tables under data(),
/// register their PASS/FAIL shape checks with add_check(), and end main
/// with `return report.finish();` — finish() writes
/// `$RSRPA_BENCH_OUT/<id>.json` (default `bench_out/`) and returns the
/// process exit code (0 iff every check passed).
class JsonReport {
 public:
  JsonReport(const char* id, const char* paper_element, const char* claim)
      : id_(id), root_(obs::Json::object()) {
    header(id, paper_element, claim);
    root_["schema"] = obs::Json("rsrpa.bench/1");
    root_["bench"] = obs::Json(id);
    root_["paper_element"] = obs::Json(paper_element);
    root_["claim"] = obs::Json(claim);
    root_["full_scale"] = obs::Json(full_scale());
    root_["checks"] = obs::Json::array();
    root_["data"] = obs::Json::object();
  }

  /// Bench-specific payload (tables, sweeps, serialized run results).
  obs::Json& data() { return root_["data"]; }

  /// Record one named shape check; returns `pass` so call sites can chain.
  bool add_check(const std::string& name, bool pass) {
    obs::Json c = obs::Json::object();
    c["name"] = obs::Json(name);
    c["pass"] = obs::Json(pass);
    root_["checks"].push_back(std::move(c));
    all_pass_ = all_pass_ && pass;
    std::printf("  check %-45s %s\n", name.c_str(), pass ? "PASS" : "FAIL");
    return pass;
  }

  [[nodiscard]] bool all_pass() const { return all_pass_; }

  /// Write the report file and return the exit code for main(). An
  /// unwritable report path fails the run (exit 1) but must not abort it:
  /// the measurements were already printed.
  int finish() {
    root_["elapsed_seconds"] = obs::Json(timer_.seconds());
    root_["pass"] = obs::Json(all_pass_);
    // Thread-pool activity over the whole bench (threads, tasks, steals,
    // per-worker busy seconds); see docs/REPRODUCING.md "Threaded
    // execution".
    root_["sched"] = obs::to_json(sched::global_pool().stats());
    const char* dir = std::getenv("RSRPA_BENCH_OUT");
    const std::string path =
        std::string(dir != nullptr && dir[0] != '\0' ? dir : "bench_out") +
        "/" + id_ + ".json";
    try {
      obs::write_json_file(path, root_);
      std::printf("\n[report] wrote %s\n", path.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "\n[report] FAILED to write %s: %s\n", path.c_str(),
                   e.what());
      return 1;
    }
    return all_pass_ ? 0 : 1;
  }

 private:
  std::string id_;
  obs::Json root_;
  bool all_pass_ = true;
  WallTimer timer_;
};

}  // namespace rsrpa::bench
