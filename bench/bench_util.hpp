// Shared helpers for the experiment benches.
//
// Every bench prints a self-describing header naming the paper element it
// regenerates and the scale it runs at. Default scale is sized for a
// single core (seconds to a couple of minutes per bench); set RSRPA_FULL=1
// to extend sweeps to the larger systems of Table III.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>
#include <vector>

namespace rsrpa::bench {

inline bool full_scale() {
  const char* env = std::getenv("RSRPA_FULL");
  return env != nullptr && env[0] == '1';
}

inline void header(const char* id, const char* paper_element,
                   const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n", id, paper_element);
  std::printf("Paper claim: %s\n", claim);
  std::printf("Scale: %s (set RSRPA_FULL=1 for the extended sweep)\n",
              full_scale() ? "FULL" : "bench");
  std::printf("==============================================================\n\n");
}

/// Least-squares slope of log(y) against log(x) — the Fig. 6 exponent.
inline double loglog_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace rsrpa::bench
