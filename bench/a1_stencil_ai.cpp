// A1 / SS III-C ablation: stencil applied one vector at a time vs to s
// vectors simultaneously (google-benchmark microbenchmark).
//
// Expected shape (paper SS III-C): the fast-memory model says applying
// the stencil per vector sustains at least the throughput of the
// simultaneous schedule, because the simultaneous working set is s times
// larger for the same arithmetic intensity ceiling.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "grid/stencil.hpp"

namespace {

using rsrpa::grid::Grid3D;
using rsrpa::grid::StencilLaplacian;
using rsrpa::la::Matrix;

struct Fixture {
  Grid3D g = Grid3D::cubic(48, 24.0);
  StencilLaplacian lap{g, 6};
  Matrix<double> in, out;

  explicit Fixture(std::size_t s) : in(g.size(), s), out(g.size(), s) {
    rsrpa::Rng rng(1);
    for (std::size_t j = 0; j < s; ++j) rng.fill_uniform(in.col(j));
  }
};

void BM_StencilOneVectorAtATime(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.lap.apply_block(f.in, f.out);
    benchmark::DoNotOptimize(f.out.data());
  }
  const double flops_per_point = 2.0 * (6.0 * f.lap.radius() + 1.0);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_point * static_cast<double>(f.g.size()) *
          static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_StencilSimultaneous(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.lap.apply_block_simultaneous(f.in, f.out);
    benchmark::DoNotOptimize(f.out.data());
  }
  const double flops_per_point = 2.0 * (6.0 * f.lap.radius() + 1.0);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_point * static_cast<double>(f.g.size()) *
          static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_StencilOneVectorAtATime)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_StencilSimultaneous)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Console reporter that additionally captures every run (name, iteration
// count, per-iteration time, finalized counters such as GFLOP/s) into a
// Json array for the bench_out report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(rsrpa::obs::Json* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      rsrpa::obs::Json r = rsrpa::obs::Json::object();
      r["name"] = rsrpa::obs::Json(run.benchmark_name());
      r["iterations"] = rsrpa::obs::Json(
          static_cast<long long>(run.iterations));
      r["real_time_per_iteration_s"] = rsrpa::obs::Json(
          run.iterations > 0 ? run.real_accumulated_time /
                                   static_cast<double>(run.iterations)
                             : 0.0);
      for (const auto& kv : run.counters)
        r[kv.first] = rsrpa::obs::Json(static_cast<double>(kv.second.value));
      out_->push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  rsrpa::obs::Json* out_;
};

double gflops_of(const rsrpa::obs::Json& runs, const std::string& name) {
  for (const auto& r : runs.as_array()) {
    const rsrpa::obs::Json* n = r.find("name");
    const rsrpa::obs::Json* g = r.find("GFLOP/s");
    if (n != nullptr && g != nullptr && n->as_string() == name)
      return g->as_double();
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  rsrpa::bench::JsonReport report(
      "a1_stencil_ai", "SS III-C analysis",
      "per-vector stencil application sustains at least the throughput of "
      "the simultaneous schedule (fast-memory model)");

  rsrpa::obs::Json runs = rsrpa::obs::Json::array();
  CapturingReporter reporter(&runs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t n_run = benchmark::RunSpecifiedBenchmarks(&reporter);

  const double one16 = gflops_of(runs, "BM_StencilOneVectorAtATime/16");
  const double sim16 = gflops_of(runs, "BM_StencilSimultaneous/16");
  report.data()["runs"] = std::move(runs);
  report.data()["gflops_one_at_a_time_s16"] = rsrpa::obs::Json(one16);
  report.data()["gflops_simultaneous_s16"] = rsrpa::obs::Json(sim16);
  std::printf("\ns=16 throughput: one-at-a-time %.2f GFLOP/s vs simultaneous "
              "%.2f GFLOP/s\n",
              one16, sim16);
  report.add_check("all benchmark runs captured with throughput counters",
                   n_run == 10 && one16 > 0.0 && sim16 > 0.0);
  // Machine-load-tolerant version of the paper claim: the per-vector
  // schedule should at least be in the same league as the simultaneous one.
  report.add_check("one-at-a-time sustains >= 0.5x simultaneous at s=16",
                   one16 >= 0.5 * sim16);
  return report.finish();
}
