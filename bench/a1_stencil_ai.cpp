// A1 / SS III-C ablation: stencil applied one vector at a time vs to s
// vectors simultaneously (google-benchmark microbenchmark).
//
// Expected shape (paper SS III-C): the fast-memory model says applying
// the stencil per vector sustains at least the throughput of the
// simultaneous schedule, because the simultaneous working set is s times
// larger for the same arithmetic intensity ceiling.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "grid/stencil.hpp"

namespace {

using rsrpa::grid::Grid3D;
using rsrpa::grid::StencilLaplacian;
using rsrpa::la::Matrix;

struct Fixture {
  Grid3D g = Grid3D::cubic(48, 24.0);
  StencilLaplacian lap{g, 6};
  Matrix<double> in, out;

  explicit Fixture(std::size_t s) : in(g.size(), s), out(g.size(), s) {
    rsrpa::Rng rng(1);
    for (std::size_t j = 0; j < s; ++j) rng.fill_uniform(in.col(j));
  }
};

void BM_StencilOneVectorAtATime(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.lap.apply_block(f.in, f.out);
    benchmark::DoNotOptimize(f.out.data());
  }
  const double flops_per_point = 2.0 * (6.0 * f.lap.radius() + 1.0);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_point * static_cast<double>(f.g.size()) *
          static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_StencilSimultaneous(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.lap.apply_block_simultaneous(f.in, f.out);
    benchmark::DoNotOptimize(f.out.data());
  }
  const double flops_per_point = 2.0 * (6.0 * f.lap.radius() + 1.0);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_point * static_cast<double>(f.g.size()) *
          static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_StencilOneVectorAtATime)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_StencilSimultaneous)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
