// A1 / SS III-C ablation: stencil applied one vector at a time vs to s
// vectors simultaneously (google-benchmark microbenchmark).
//
// Expected shape (paper SS III-C): the fast-memory model says applying
// the stencil per vector sustains at least the throughput of the
// simultaneous schedule, because the simultaneous working set is s times
// larger for the same arithmetic intensity ceiling.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "grid/stencil.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "solver/operator.hpp"

namespace {

using rsrpa::grid::Grid3D;
using rsrpa::grid::StencilLaplacian;
using rsrpa::la::cplx;
using rsrpa::la::Matrix;

struct Fixture {
  Grid3D g = Grid3D::cubic(48, 24.0);
  StencilLaplacian lap{g, 6};
  Matrix<double> in, out;

  explicit Fixture(std::size_t s) : in(g.size(), s), out(g.size(), s) {
    rsrpa::Rng rng(1);
    for (std::size_t j = 0; j < s; ++j) rng.fill_uniform(in.col(j));
  }
};

void BM_StencilOneVectorAtATime(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.lap.apply_block(f.in, f.out);
    benchmark::DoNotOptimize(f.out.data());
  }
  const double flops_per_point = 2.0 * (6.0 * f.lap.radius() + 1.0);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_point * static_cast<double>(f.g.size()) *
          static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_StencilSimultaneous(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.lap.apply_block_simultaneous(f.in, f.out);
    benchmark::DoNotOptimize(f.out.data());
  }
  const double flops_per_point = 2.0 * (6.0 * f.lap.radius() + 1.0);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_point * static_cast<double>(f.g.size()) *
          static_cast<double>(state.range(0)) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_StencilOneVectorAtATime)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_StencilSimultaneous)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Fused vs reference shifted-Hamiltonian block apply — the Sternheimer
// hot loop. The fused path is one sweep per column plus the block
// nonlocal gather-GEMM; the reference is the seed four-pass schedule.
// GB/s and AI come from the same per-column traffic model the solver
// telemetry uses (solver::shifted_apply_cost).
struct HamFixture {
  rsrpa::Rng rng{1};
  rsrpa::ham::Hamiltonian h{Grid3D::cubic(48, rsrpa::ham::kSiLatticeConstant),
                            6, rsrpa::ham::make_silicon_chain(1, 0.0, rng),
                            rsrpa::ham::ModelParams{}};
  Matrix<cplx> in, out;

  explicit HamFixture(std::size_t s)
      : in(h.grid().size(), s), out(h.grid().size(), s) {
    rsrpa::Rng fill(2);
    std::vector<double> re(h.grid().size()), im(h.grid().size());
    for (std::size_t j = 0; j < s; ++j) {
      fill.fill_uniform(re);
      fill.fill_uniform(im);
      auto col = in.col(j);
      for (std::size_t i = 0; i < col.size(); ++i) col[i] = {re[i], im[i]};
    }
  }
};

void shifted_apply_bench(benchmark::State& state, bool fused) {
  HamFixture f(static_cast<std::size_t>(state.range(0)));
  f.h.set_fused_apply(fused);
  for (auto _ : state) {
    f.h.apply_shifted_block(f.in, f.out, 0.2, 1.0);
    benchmark::DoNotOptimize(f.out.data());
  }
  const rsrpa::solver::ApplyCostModel cost =
      rsrpa::solver::shifted_apply_cost(f.h, fused);
  const double cols = static_cast<double>(state.range(0)) *
                      static_cast<double>(state.iterations());
  state.counters["GFLOP/s"] = benchmark::Counter(
      cost.flops_per_column * cols * 1e-9, benchmark::Counter::kIsRate);
  state.counters["GB/s"] = benchmark::Counter(
      cost.bytes_per_column * cols * 1e-9, benchmark::Counter::kIsRate);
  state.counters["AI"] = benchmark::Counter(
      cost.flops_per_column / cost.bytes_per_column);
}

void BM_ShiftedApplyFused(benchmark::State& state) {
  shifted_apply_bench(state, true);
}

void BM_ShiftedApplyReference(benchmark::State& state) {
  shifted_apply_bench(state, false);
}

BENCHMARK(BM_ShiftedApplyFused)->Arg(8);
BENCHMARK(BM_ShiftedApplyReference)->Arg(8);

// Console reporter that additionally captures every run (name, iteration
// count, per-iteration time, finalized counters such as GFLOP/s) into a
// Json array for the bench_out report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(rsrpa::obs::Json* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      rsrpa::obs::Json r = rsrpa::obs::Json::object();
      r["name"] = rsrpa::obs::Json(run.benchmark_name());
      r["iterations"] = rsrpa::obs::Json(
          static_cast<long long>(run.iterations));
      r["real_time_per_iteration_s"] = rsrpa::obs::Json(
          run.iterations > 0 ? run.real_accumulated_time /
                                   static_cast<double>(run.iterations)
                             : 0.0);
      for (const auto& kv : run.counters)
        r[kv.first] = rsrpa::obs::Json(static_cast<double>(kv.second.value));
      out_->push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  rsrpa::obs::Json* out_;
};

double gflops_of(const rsrpa::obs::Json& runs, const std::string& name) {
  for (const auto& r : runs.as_array()) {
    const rsrpa::obs::Json* n = r.find("name");
    const rsrpa::obs::Json* g = r.find("GFLOP/s");
    if (n != nullptr && g != nullptr && n->as_string() == name)
      return g->as_double();
  }
  return 0.0;
}

double seconds_of(const rsrpa::obs::Json& runs, const std::string& name) {
  for (const auto& r : runs.as_array()) {
    const rsrpa::obs::Json* n = r.find("name");
    const rsrpa::obs::Json* t = r.find("real_time_per_iteration_s");
    if (n != nullptr && t != nullptr && n->as_string() == name)
      return t->as_double();
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  rsrpa::bench::JsonReport report(
      "a1_stencil_ai", "SS III-C analysis",
      "per-vector stencil application sustains at least the throughput of "
      "the simultaneous schedule (fast-memory model)");

  rsrpa::obs::Json runs = rsrpa::obs::Json::array();
  CapturingReporter reporter(&runs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t n_run = benchmark::RunSpecifiedBenchmarks(&reporter);

  const double one16 = gflops_of(runs, "BM_StencilOneVectorAtATime/16");
  const double sim16 = gflops_of(runs, "BM_StencilSimultaneous/16");
  const double t_fused = seconds_of(runs, "BM_ShiftedApplyFused/8");
  const double t_ref = seconds_of(runs, "BM_ShiftedApplyReference/8");
  const double speedup = t_fused > 0.0 ? t_ref / t_fused : 0.0;
  report.data()["runs"] = std::move(runs);
  report.data()["gflops_one_at_a_time_s16"] = rsrpa::obs::Json(one16);
  report.data()["gflops_simultaneous_s16"] = rsrpa::obs::Json(sim16);
  report.data()["shifted_apply_fused_s"] = rsrpa::obs::Json(t_fused);
  report.data()["shifted_apply_reference_s"] = rsrpa::obs::Json(t_ref);
  report.data()["fused_speedup"] = rsrpa::obs::Json(speedup);
  std::printf("\ns=16 throughput: one-at-a-time %.2f GFLOP/s vs simultaneous "
              "%.2f GFLOP/s\n",
              one16, sim16);
  std::printf("shifted apply s=8: fused %.4f s vs reference %.4f s "
              "(speedup %.2fx)\n",
              t_fused, t_ref, speedup);
  report.add_check("all benchmark runs captured with throughput counters",
                   n_run == 12 && one16 > 0.0 && sim16 > 0.0);
  // Machine-load-tolerant version of the paper claim: the per-vector
  // schedule should at least be in the same league as the simultaneous one.
  report.add_check("one-at-a-time sustains >= 0.5x simultaneous at s=16",
                   one16 >= 0.5 * sim16);
  report.add_check("fused shifted apply >= 1.5x faster than the seed path",
                   speedup >= 1.5);
  return report.finish();
}
