// E7 / Fig. 6: computational complexity with respect to the number of
// grid points n_d.
//
// Expected shape (paper Fig. 6): elapsed time scales sub-cubically —
// the paper fits O(n_d^2.95) on 24 cores and O(n_d^2.87) on 192. Here the
// fixed-work protocol of the scaling benches is applied to a size sweep
// and the log-log slope is fitted.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "obs/run_report.hpp"
#include "par/parallel_rpa.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("fig6_complexity", "Figure 6",
                           "time-to-solution scales ~O(n_d^2.9) with system "
                           "size");

  const std::size_t max_cells = bench::full_scale() ? 5 : 3;
  std::vector<double> nds, times;
  obs::Json points = obs::Json::array();

  std::printf("%-8s %-8s %-8s %-8s %-12s\n", "system", "n_d", "n_s", "n_eig",
              "time(s)");
  for (std::size_t ncells = 1; ncells <= max_cells; ++ncells) {
    rpa::SystemPreset preset = rpa::make_si_preset(ncells, false);
    preset.grid_per_cell = 9;
    preset.n_eig_per_atom = 4;
    preset.fd_radius = 4;
    rpa::BuiltSystem sys = rpa::build_system(preset);

    par::ParallelRpaOptions opts;
    opts.rpa = sys.default_rpa_options();
    opts.rpa.ell = 1;
    opts.rpa.tol_eig = {1e-30};
    opts.rpa.max_filter_iter = 2;
    opts.n_ranks = 1;
    par::ParallelRpaResult res = par::run_parallel_rpa(sys.ks, *sys.klap, opts);

    nds.push_back(static_cast<double>(preset.n_grid()));
    times.push_back(res.modeled_total_seconds);
    std::printf("%-8s %-8zu %-8zu %-8zu %-12.2f\n", preset.name.c_str(),
                preset.n_grid(), preset.n_occ(), preset.n_eig(),
                res.modeled_total_seconds);

    obs::Json pt = obs::Json::object();
    pt["system"] = obs::Json(preset.name);
    pt["n_d"] = obs::Json(preset.n_grid());
    pt["result"] = obs::to_json(res);
    points.push_back(std::move(pt));
  }

  const double slope = bench::loglog_slope(nds, times);
  std::printf("\nFitted exponent: time ~ O(n_d^%.2f)  (paper: 2.95 / 2.87)\n",
              slope);
  report.data()["points"] = std::move(points);
  report.data()["n_d"] = bench::json_array(nds);
  report.data()["times"] = bench::json_array(times);
  report.data()["fitted_exponent"] = obs::Json(slope);
  report.add_check("exponent in (2.0, 3.4) — cubic-class, not quartic",
                   slope > 2.0 && slope < 3.4);
  return report.finish();
}
