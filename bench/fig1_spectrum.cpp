// E1 / Fig. 1: spectrum of nu chi0(i omega) for the Si8 model at every
// quadrature point, computed exactly via the dense direct machinery.
//
// Expected shape (paper Fig. 1): the spectrum decays rapidly to zero at
// every omega; the whole spectrum tends to zero as omega grows; the
// low (most negative) end converges to a fixed spectrum as omega -> 0.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "direct/direct_rpa.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("fig1_spectrum", "Figure 1",
                           "spectrum of nu chi0 decays rapidly to 0 at every "
                           "omega; low end converges as omega -> 0");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = bench::full_scale() ? 11 : 9;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  std::printf("System: %s, n_d = %zu, n_s = %zu\n\n", preset.name.c_str(),
              preset.n_grid(), preset.n_occ());

  la::EigResult eig = direct::full_diagonalization(*sys.h);

  const auto quad = rpa::rpa_frequency_quadrature(8);
  const int probes[] = {0, 1, 3, 7, 15, 31, 63, 127, 255, 511};

  std::printf("%-8s", "omega\\i");
  for (int i : probes)
    if (i < static_cast<int>(preset.n_grid())) std::printf(" %9d", i);
  std::printf("\n");

  std::vector<double> prev_low;
  double low_drift_small_omega = 0.0;
  bool decay_ok = true, shrink_ok = true;
  double prev_mu0 = 1e300;  // omega descends, so |mu_0| must grow row by row
  obs::Json spectra = obs::Json::array();

  for (const rpa::QuadPoint& q : quad) {
    std::vector<double> spec = direct::nu_chi0_spectrum(
        eig, sys.ks.n_occ(), q.omega, *sys.klap, sys.h->grid().dv());
    std::printf("%-8.3f", q.omega);
    for (int i : probes)
      if (i < static_cast<int>(spec.size()))
        std::printf(" %9.2e", spec[static_cast<std::size_t>(i)]);
    std::printf("\n");

    const std::size_t mid = spec.size() / 2;
    decay_ok = decay_ok && std::abs(spec[mid]) < 0.25 * std::abs(spec[0]);
    // omega descending -> |mu_0| must grow monotonically.
    shrink_ok = shrink_ok && (spec[0] < prev_mu0 + 1e-12);
    prev_mu0 = spec[0];

    obs::Json row = obs::Json::object();
    row["omega"] = obs::Json(q.omega);
    obs::Json probed = obs::Json::array();
    for (int i : probes)
      if (i < static_cast<int>(spec.size()))
        probed.push_back(obs::Json(spec[static_cast<std::size_t>(i)]));
    row["probe_values"] = std::move(probed);
    spectra.push_back(std::move(row));

    // Low-end convergence between the two smallest omegas.
    if (q.omega < 0.2) {
      std::vector<double> low(spec.begin(), spec.begin() + 16);
      if (!prev_low.empty()) {
        for (std::size_t i = 0; i < low.size(); ++i)
          low_drift_small_omega = std::max(
              low_drift_small_omega,
              std::abs(low[i] - prev_low[i]) / std::abs(low[0]));
      }
      prev_low = low;
    }
  }

  std::printf("\nChecks:\n");
  std::printf("  low-end relative drift between smallest omegas:      %.2e\n",
              low_drift_small_omega);
  report.data()["spectra"] = std::move(spectra);
  report.data()["low_end_drift"] = obs::Json(low_drift_small_omega);
  report.add_check("rapid decay: |mu_mid| < 0.25 |mu_0| at every omega",
                   decay_ok);
  report.add_check("whole spectrum shrinks as omega grows", shrink_ok);
  return report.finish();
}
