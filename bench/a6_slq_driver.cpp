// A6 / SS V future work item 1: replace the generalized eigensolve with
// Lanczos quadrature.
//
// Three-way comparison at matched Sternheimer settings on a system small
// enough for the dense oracle: the direct full-spectrum trace (ground
// truth), the subspace-iteration driver (Algorithm 6, truncates at
// n_eig), and the stochastic-Lanczos-quadrature driver (full trace,
// stochastic error, no Gram matrices or eigensolve — the embarrassing
// parallelism SS V argues for).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "direct/direct_rpa.hpp"
#include "obs/run_report.hpp"
#include "rpa/erpa_slq.hpp"
#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("a6_slq_driver",
                           "SS V future work (Lanczos quadrature)",
                           "SLQ reproduces the full functional trace within "
                           "stochastic error, with no eigensolve");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = bench::full_scale() ? 8 : 7;
  preset.n_eig_per_atom = 6;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  std::printf("System: %s, n_d = %zu, n_eig = %zu\n\n", preset.name.c_str(),
              preset.n_grid(), preset.n_eig());

  direct::DirectRpaResult dir =
      direct::compute_direct_rpa(*sys.h, sys.ks.n_occ(), *sys.klap, 8);
  std::printf("direct full-spectrum trace : E_RPA = %+.6f Ha (oracle)\n",
              dir.e_rpa);

  rpa::RpaOptions eopts = sys.default_rpa_options();
  rpa::RpaResult eig = rpa::compute_rpa_energy(sys.ks, *sys.klap, eopts);
  std::printf("subspace driver (n_eig=%zu) : E_RPA = %+.6f Ha "
              "(truncation gap %.1f%%, %ld col applies)\n\n",
              eopts.n_eig, eig.e_rpa,
              100.0 * std::abs(eig.e_rpa - dir.e_rpa) / std::abs(dir.e_rpa),
              eig.stern.matvec_columns);

  std::printf("%-8s %-8s %-16s %-12s %-14s %-10s\n", "probes", "steps",
              "E_RPA(Ha)", "rel err", "col applies", "time(s)");
  double best_rel = 1e300;
  obs::Json slq_rows = obs::Json::array();
  for (int probes : {4, 8, 16, 32}) {
    rpa::SlqRpaOptions sopts;
    sopts.stern = eopts.stern;
    sopts.n_probes = probes;
    sopts.lanczos_steps = 14;
    rpa::SlqRpaResult slq =
        rpa::compute_rpa_energy_slq(sys.ks, *sys.klap, sopts);
    const double rel =
        std::abs(slq.e_rpa - dir.e_rpa) / std::abs(dir.e_rpa);
    std::printf("%-8d %-8d %-16.6f %-12.3f %-14ld %-10.1f\n", probes,
                sopts.lanczos_steps, slq.e_rpa, rel, slq.matvec_columns,
                slq.total_seconds);
    best_rel = std::min(best_rel, rel);
    obs::Json row = obs::Json::object();
    row["probes"] = obs::Json(probes);
    row["lanczos_steps"] = obs::Json(sopts.lanczos_steps);
    row["e_rpa"] = obs::Json(slq.e_rpa);
    row["rel_err"] = obs::Json(rel);
    row["matvec_columns"] = obs::Json(slq.matvec_columns);
    row["seconds"] = obs::Json(slq.total_seconds);
    slq_rows.push_back(std::move(row));
  }

  report.data()["direct_e_rpa"] = obs::Json(dir.e_rpa);
  report.data()["subspace_driver"] = obs::to_json(eig);
  report.data()["slq_rows"] = std::move(slq_rows);
  report.add_check("best SLQ estimate within 8% of the exact full trace",
                   best_rel < 0.08);
  return report.finish();
}
