// a7_svc_soak — multi-tenant job-service soak (beyond-paper artifact A7).
//
// Throws dozens of concurrent heterogeneous jobs — mixed sizes,
// priorities and per-job quotas, one fault-injected, one designed to be
// preempted and resumed — at a JobService and checks the service
// delivered every result bitwise identical to the same config run
// standalone. Reports throughput (jobs/min), queue-latency percentiles
// and the preemption count to bench_out/a7_svc_soak.json.
//
// Bench scale: 24 jobs on the test fixture; RSRPA_FULL=1 doubles the
// fleet and grows the big tenant.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "svc/service.hpp"

namespace {

using namespace rsrpa;

std::string tiny_rpa(std::uint64_t seed, int n_omega, int priority,
                     int quota, const std::string& extra = "") {
  std::string s;
  s += "GRID_PER_CELL: 7\n";
  s += "FD_RADIUS: 3\n";
  s += "N_NUCHI_EIGS: 16\n";
  s += "N_EIG_PER_ATOM: 2\n";
  s += "N_OMEGA: " + std::to_string(n_omega) + "\n";
  s += "TOL_EIG: 4e-3 2e-3 2e-3\n";
  // Bitwise-reproducibility configuration: Algorithm 4 keys off wall
  // clock, which the standalone-equality check must exclude.
  s += "DYNAMIC_BLOCK: 0\n";
  s += "BLOCK_SIZE: 4\n";
  s += "SEED: " + std::to_string(seed) + "\n";
  s += "PRIORITY: " + std::to_string(priority) + "\n";
  s += "THREADS: " + std::to_string(quota) + "\n";
  s += extra;
  return s;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

rpa::RpaResult run_standalone(const std::string& text) {
  const svc::JobSpec spec = svc::parse_job(Config::parse(text));
  rpa::BuiltSystem sys = rpa::build_system(spec.preset);
  return rpa::compute_rpa_energy(sys.ks, *sys.klap, spec.options);
}

}  // namespace

int main() {
  bench::JsonReport report(
      "a7_svc_soak", "beyond-paper artifact A7 (job service)",
      "a multi-tenant server returns every E_RPA bitwise equal to the "
      "standalone run, under preemption, quotas and fault injection");

  const int n_jobs = bench::full_scale() ? 48 : 24;
  const int big_omegas = bench::full_scale() ? 8 : 6;

  // Heterogeneous fleet: one big low-priority tenant (the designated
  // preemption victim), one fault-injected tenant (the PR 3 zero-matvec
  // drill — survives degraded), and a rotation of small tenants across
  // priorities, quotas and apply paths.
  const std::string big_low = tiny_rpa(7, big_omegas, 0, 0);
  const std::string faulty =
      tiny_rpa(29, 2, 3, 0) +
      "FAULT_MODE: zero\nFAULT_AT_APPLY: 0\nFAULT_PERIOD: 1\n"
      "FAULT_MAX: 1073741824\nFAULT_ORBITAL: 0\nFAULT_OMEGA: 0\n";
  const std::vector<std::string> small = {
      tiny_rpa(11, 2, 1, 0),
      tiny_rpa(13, 2, 2, 2),
      tiny_rpa(17, 3, 3, 4),
      tiny_rpa(19, 2, 4, 0) + "FUSED_APPLY: 0\n",
      tiny_rpa(23, 3, 2, 2) + "TILE_Y: 4\nTILE_Z: 4\n",
  };
  std::vector<std::string> texts;
  texts.push_back(big_low);
  texts.push_back(faulty);
  for (int i = 0; static_cast<int>(texts.size()) < n_jobs; ++i)
    texts.push_back(small[static_cast<std::size_t>(i) % small.size()]);

  std::printf("computing standalone oracles (%d jobs, %zu distinct "
              "configs)...\n",
              n_jobs, [&] {
                std::map<std::string, int> d;
                for (const auto& t : texts) d[t] = 1;
                return d.size();
              }());
  std::map<std::string, rpa::RpaResult> oracle;
  for (const std::string& t : texts)
    if (!oracle.count(t)) oracle.emplace(t, run_standalone(t));

  svc::ServiceOptions sopts;
  sopts.root = "svc_soak_spool";
  sopts.slots = 3;
  sopts.poll_ms = 5;
  std::filesystem::remove_all(sopts.root);  // stale state from a prior run

  WallTimer wall;
  svc::JobService service(sopts);
  std::vector<std::pair<std::string, const std::string*>> jobs;
  jobs.emplace_back(service.submit("job00", texts[0]), &texts[0]);
  // Make sure the victim holds a slot before the higher-priority burst.
  while (service.status(jobs[0].first).state == svc::JobState::kQueued)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (std::size_t i = 1; i < texts.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "job%02u", static_cast<unsigned>(i));
    jobs.emplace_back(service.submit(name, texts[i]), &texts[i]);
  }
  service.wait_idle();
  const double soak_seconds = wall.seconds();

  int done = 0;
  int bitwise = 0;
  std::vector<double> queue_lat;
  for (const auto& [id, text] : jobs) {
    const svc::JobStatus st = service.status(id);
    if (st.state == svc::JobState::kDone) {
      ++done;
      if (st.e_rpa == oracle.at(*text).e_rpa) ++bitwise;
    }
    queue_lat.push_back(st.queue_seconds);
  }
  const int preemptions = service.preemption_count();
  const svc::JobStatus st_fault = service.status(jobs[1].first);
  service.shutdown();

  const double jobs_per_min =
      soak_seconds > 0.0 ? 60.0 * static_cast<double>(done) / soak_seconds
                         : 0.0;
  const double p50 = percentile(queue_lat, 0.50);
  const double p95 = percentile(queue_lat, 0.95);

  std::printf("\n%-28s %d\n", "jobs submitted", n_jobs);
  std::printf("%-28s %d\n", "jobs done", done);
  std::printf("%-28s %.2f\n", "jobs/min", jobs_per_min);
  std::printf("%-28s %.3f s\n", "queue latency p50", p50);
  std::printf("%-28s %.3f s\n", "queue latency p95", p95);
  std::printf("%-28s %d\n\n", "preemptions", preemptions);

  report.data()["jobs"] = n_jobs;
  report.data()["done"] = done;
  report.data()["jobs_per_min"] = jobs_per_min;
  report.data()["queue_p50_seconds"] = p50;
  report.data()["queue_p95_seconds"] = p95;
  report.data()["preemptions"] = preemptions;
  report.data()["soak_seconds"] = soak_seconds;

  report.add_check("all jobs completed", done == n_jobs);
  report.add_check("every E_RPA bitwise equals standalone",
                   bitwise == done && done > 0);
  report.add_check("at least one preemption served", preemptions >= 1);
  report.add_check("big tenant was preempted and recovered",
                   service.status(jobs[0].first).preemptions >= 1 &&
                       service.status(jobs[0].first).state ==
                           svc::JobState::kDone);
  report.add_check("fault-injected tenant survived degraded",
                   st_fault.state == svc::JobState::kDone &&
                       st_fault.degraded);
  return report.finish();
}
