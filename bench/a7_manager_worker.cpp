// A7 / SS V future work item 2: manager-worker work distribution.
//
// Measures the REAL per-column Sternheimer cost profile at the hardest
// quadrature point (where difficulty varies most across right-hand
// sides), then compares the paper's static contiguous partition against a
// manager-worker queue and the offline LPT bound across rank counts.
//
// Expected shape: static imbalance grows as n_eig/p shrinks (the SS V
// observation that the slowest processor governs the wall time); the
// manager-worker queue recovers most of the gap.
#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "par/load_balance.hpp"
#include "rpa/presets.hpp"
#include "rpa/quadrature.hpp"

int main() {
  using namespace rsrpa;
  bench::JsonReport report("a7_manager_worker",
                           "SS V future work (manager-worker)",
                           "dynamic work distribution removes the load "
                           "imbalance of the static column partition");

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 9;
  preset.n_eig_per_atom = bench::full_scale() ? 16 : 6;
  preset.fd_radius = 4;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  const auto quad = rpa::rpa_frequency_quadrature(8);
  const double omega = quad.back().omega;  // the hard omega_l
  const std::size_t n = sys.ks.n_grid(), n_eig = preset.n_eig();

  // Measure each column's Sternheimer cost individually (s = 1 so costs
  // are attributable per item, like a non-blocked worker would see).
  rpa::SternheimerOptions sopts;
  sopts.tol = 1e-2;
  sopts.dynamic_block = false;
  sopts.fixed_block = 1;
  rpa::Chi0Applier chi0(sys.ks, sopts);

  Rng rng(9);
  std::vector<double> item_seconds(n_eig);
  la::Matrix<double> v(n, 1), out(n, 1);
  for (std::size_t j = 0; j < n_eig; ++j) {
    rng.fill_uniform(v.col(0));
    WallTimer t;
    chi0.apply(v, out, omega);
    item_seconds[j] = t.seconds();
  }
  double tmin = 1e300, tmax = 0.0, total = 0.0;
  for (double t : item_seconds) {
    tmin = std::min(tmin, t);
    tmax = std::max(tmax, t);
    total += t;
  }
  std::printf("%zu column items at omega = %.3f: min %.3f s, max %.3f s, "
              "spread %.2fx\n\n",
              n_eig, omega, tmin, tmax, tmax / tmin);

  // Two orderings of the SAME measured costs:
  //  (a) as measured (random right-hand sides -> near-iid costs);
  //  (b) sorted descending — the index-correlated regime of the real
  //      driver, where columns are eigenvalue-ordered and the static
  //      contiguous partition piles the hard ones onto the first ranks.
  std::vector<double> sorted = item_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  bool mw_comparable = true, mw_wins_correlated = true;
  double sum_st = 0.0, sum_mw = 0.0;
  obs::Json orderings = obs::Json::array();
  for (const auto* items : {&item_seconds, &sorted}) {
    const bool correlated = items == &sorted;
    std::printf("%s ordering:\n", correlated ? "correlated (sorted)"
                                             : "measured (near-iid)");
    std::printf("%-6s %-22s %-22s %-22s\n", "p", "static (imb)",
                "manager-worker (imb)", "LPT bound (imb)");
    obs::Json rows = obs::Json::array();
    for (std::size_t p = 2; p * 2 <= n_eig; p *= 2) {
      const par::ScheduleResult st = par::static_schedule(*items, p);
      const par::ScheduleResult mw = par::manager_worker_schedule(*items, p);
      const par::ScheduleResult lpt = par::lpt_schedule(*items, p);
      std::printf("%-6zu %9.3fs (%.3f)     %9.3fs (%.3f)     %9.3fs (%.3f)\n",
                  p, st.makespan, st.imbalance(), mw.makespan, mw.imbalance(),
                  lpt.makespan, lpt.imbalance());
      obs::Json row = obs::Json::object();
      row["p"] = obs::Json(p);
      row["static_makespan"] = obs::Json(st.makespan);
      row["static_imbalance"] = obs::Json(st.imbalance());
      row["mw_makespan"] = obs::Json(mw.makespan);
      row["mw_imbalance"] = obs::Json(mw.imbalance());
      row["lpt_makespan"] = obs::Json(lpt.makespan);
      row["lpt_imbalance"] = obs::Json(lpt.imbalance());
      rows.push_back(std::move(row));
      // Online greedy is not universally optimal on iid items; require it
      // to stay within 5% of static everywhere...
      mw_comparable = mw_comparable && mw.makespan <= st.makespan * 1.05;
      sum_st += st.makespan;
      sum_mw += mw.makespan;
      // ...and to strictly win in the correlated regime.
      if (correlated)
        mw_wins_correlated =
            mw_wins_correlated && mw.makespan < st.makespan * 0.999;
    }
    std::printf("\n");
    obs::Json ord = obs::Json::object();
    ord["ordering"] = obs::Json(correlated ? "correlated" : "measured");
    ord["rows"] = std::move(rows);
    orderings.push_back(std::move(ord));
  }

  const bool mw_better_overall = sum_mw < sum_st;
  std::printf("Checks:\n");
  report.data()["item_seconds"] = bench::json_array(item_seconds);
  report.data()["orderings"] = std::move(orderings);
  report.add_check("manager-worker within 5% of static everywhere",
                   mw_comparable);
  report.add_check("manager-worker better in aggregate", mw_better_overall);
  report.add_check("manager-worker strictly wins when index-correlated",
                   mw_wins_correlated);
  return report.finish();
}
