#include "common/config.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace rsrpa {

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);

    auto colon = line.find(':');
    RSRPA_REQUIRE_MSG(colon != std::string::npos,
                      "config line " + std::to_string(lineno) + " lacks ':'");
    std::string key = line.substr(0, colon);
    if (auto kend = key.find_last_not_of(" \t"); kend != std::string::npos)
      key.erase(kend + 1);
    std::string value = line.substr(colon + 1);
    if (auto vstart = value.find_first_not_of(" \t"); vstart != std::string::npos)
      value.erase(0, vstart);
    else
      value.clear();
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  RSRPA_REQUIRE_MSG(in.good(), "cannot open config file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

const std::string& Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  RSRPA_REQUIRE_MSG(it != values_.end(), "missing config key " + key);
  return it->second;
}

namespace {

// Strict numeric token parsers. The std::stoi/stod family silently
// accepts trailing garbage ("8 atoms" parses as 8), which turns typos in
// input files into wrong simulations. std::from_chars must consume the
// ENTIRE token or the value is rejected. A single leading '+' is allowed
// (from_chars does not take it, config authors reasonably might).
template <typename T>
bool parse_full_token(const std::string& token, T& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  if (first != last && *first == '+') ++first;
  if (first == last) return false;
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

}  // namespace

int Config::get_int(const std::string& key) const {
  int v = 0;
  if (!parse_full_token(raw(key), v))
    throw Error("config key " + key + " is not an integer: '" + raw(key) +
                "'");
  return v;
}

double Config::get_double(const std::string& key) const {
  double v = 0.0;
  if (!parse_full_token(raw(key), v))
    throw Error("config key " + key + " is not a number: '" + raw(key) + "'");
  return v;
}

std::string Config::get_string(const std::string& key) const { return raw(key); }

std::vector<double> Config::get_doubles(const std::string& key) const {
  std::istringstream in(raw(key));
  std::vector<double> out;
  std::string tok;
  while (in >> tok) {
    double v = 0.0;
    if (!parse_full_token(tok, v))
      throw Error("config key " + key + " has non-numeric entry: '" + tok +
                  "'");
    out.push_back(v);
  }
  return out;
}

int Config::get_int_or(const std::string& key, int fallback) const {
  return has(key) ? get_int(key) : fallback;
}

double Config::get_double_or(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace rsrpa
