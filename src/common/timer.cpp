#include "common/timer.hpp"

#include <algorithm>

namespace rsrpa {

void KernelTimers::add(const std::string& name, double seconds) {
  buckets_[name] += seconds;
}

double KernelTimers::get(const std::string& name) const {
  auto it = buckets_.find(name);
  return it == buckets_.end() ? 0.0 : it->second;
}

double KernelTimers::total() const {
  double sum = 0.0;
  for (const auto& [name, secs] : buckets_) sum += secs;
  return sum;
}

std::vector<std::pair<std::string, double>> KernelTimers::entries() const {
  return {buckets_.begin(), buckets_.end()};
}

void KernelTimers::merge(const KernelTimers& other) {
  for (const auto& [name, secs] : other.buckets_) buckets_[name] += secs;
}

void KernelTimers::merge_max(const KernelTimers& other) {
  for (const auto& [name, secs] : other.buckets_)
    buckets_[name] = std::max(buckets_[name], secs);
}

}  // namespace rsrpa
