// Wall-clock timing utilities.
//
// WallTimer is a trivial stopwatch. KernelTimers is a named accumulator
// used to produce the per-kernel timing breakdown of the paper's Fig. 5
// (nu^{1/2} chi0 nu^{1/2} apply, matmult, eigensolve, eval error). Scoped
// accumulation via ScopedKernelTimer keeps call sites one line.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace rsrpa {

/// Simple monotonic stopwatch measuring seconds.
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Named accumulator of kernel times. Not thread-safe by design: each
/// simulated rank owns its own instance and results are merged afterwards.
class KernelTimers {
 public:
  /// Add `seconds` to the bucket `name`, creating it if needed.
  void add(const std::string& name, double seconds);
  /// Accumulated seconds in bucket `name` (0 if absent).
  [[nodiscard]] double get(const std::string& name) const;
  /// Sum of all buckets.
  [[nodiscard]] double total() const;
  /// All buckets in insertion-independent (sorted) order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> entries() const;
  /// Merge another set of timers into this one (bucket-wise sum).
  void merge(const KernelTimers& other);
  /// Bucket-wise maximum — used to form the per-rank critical path.
  void merge_max(const KernelTimers& other);
  void clear() { buckets_.clear(); }

 private:
  std::map<std::string, double> buckets_;
};

/// RAII helper: accumulates the lifetime of the scope into a bucket.
class ScopedKernelTimer {
 public:
  ScopedKernelTimer(KernelTimers& timers, std::string name)
      : timers_(timers), name_(std::move(name)) {}
  ~ScopedKernelTimer() { timers_.add(name_, timer_.seconds()); }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  KernelTimers& timers_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace rsrpa
