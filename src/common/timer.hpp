// Wall-clock timing utilities.
//
// WallTimer is a trivial stopwatch. KernelTimers is a named accumulator
// used to produce the per-kernel timing breakdown of the paper's Fig. 5
// (nu^{1/2} chi0 nu^{1/2} apply, matmult, eigensolve, eval error). Scoped
// accumulation via ScopedKernelTimer keeps call sites one line.
//
// Threading contract: WallTimer, KernelTimers and ScopedKernelTimer are
// SINGLE-OWNER — one thread constructs, accumulates and reads; sharing an
// instance across concurrent sched tasks is a data race. Concurrent code
// either gives each task its own instance and merges afterwards (the
// per-rank pattern in par/parallel_rpa) or accumulates through WallClock,
// whose atomic bucket many tasks may share.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace rsrpa {

/// Simple monotonic stopwatch measuring seconds.
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Add `seconds` to an atomic double bucket (CAS loop; C++20's
/// fetch_add(double) is not yet universal across standard libraries).
inline void atomic_add_seconds(std::atomic<double>& bucket, double seconds) {
  double cur = bucket.load(std::memory_order_relaxed);
  while (!bucket.compare_exchange_weak(cur, cur + seconds,
                                       std::memory_order_relaxed)) {
  }
}

/// RAII stopwatch that adds the lifetime of the scope into an atomic
/// bucket on destruction. Unlike WallTimer + manual accumulation, a
/// single bucket may be shared by many concurrent sched tasks — this is
/// the form the per-rank timing in par/parallel_rpa and the pool's
/// per-worker busy counters use inside tasks.
class WallClock {
 public:
  explicit WallClock(std::atomic<double>& bucket) : bucket_(bucket) {}
  ~WallClock() { atomic_add_seconds(bucket_, timer_.seconds()); }
  WallClock(const WallClock&) = delete;
  WallClock& operator=(const WallClock&) = delete;

 private:
  std::atomic<double>& bucket_;
  WallTimer timer_;
};

/// Named accumulator of kernel times. Not thread-safe by design: each
/// simulated rank owns its own instance and results are merged afterwards.
class KernelTimers {
 public:
  /// Add `seconds` to the bucket `name`, creating it if needed.
  void add(const std::string& name, double seconds);
  /// Accumulated seconds in bucket `name` (0 if absent).
  [[nodiscard]] double get(const std::string& name) const;
  /// Sum of all buckets.
  [[nodiscard]] double total() const;
  /// All buckets in insertion-independent (sorted) order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> entries() const;
  /// Merge another set of timers into this one (bucket-wise sum).
  void merge(const KernelTimers& other);
  /// Bucket-wise maximum — used to form the per-rank critical path.
  void merge_max(const KernelTimers& other);
  void clear() { buckets_.clear(); }

 private:
  std::map<std::string, double> buckets_;
};

/// RAII helper: accumulates the lifetime of the scope into a bucket.
class ScopedKernelTimer {
 public:
  ScopedKernelTimer(KernelTimers& timers, std::string name)
      : timers_(timers), name_(std::move(name)) {}
  ~ScopedKernelTimer() { timers_.add(name_, timer_.seconds()); }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  KernelTimers& timers_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace rsrpa
