// Error handling for rsrpa.
//
// All precondition and invariant failures throw rsrpa::Error with a message
// that includes the failing expression and source location. Numerical
// breakdowns (e.g. a singular block in COCG) use the dedicated
// NumericalBreakdown type so callers can distinguish recoverable solver
// events from programming errors.
#pragma once

#include <stdexcept>
#include <string>

namespace rsrpa {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A numerical breakdown inside an iterative method (singular pivot,
/// loss of conjugacy, non-finite residual). Recoverable by the caller,
/// e.g. by restarting with a different block size.
class NumericalBreakdown : public Error {
 public:
  explicit NumericalBreakdown(const std::string& what) : Error(what) {}
};

/// Thrown when an iterative method exhausts its iteration budget without
/// reaching the requested tolerance.
class ConvergenceFailure : public Error {
 public:
  explicit ConvergenceFailure(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw Error(std::string("requirement failed: ") + expr + " at " + file +
              ":" + std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace rsrpa

/// Precondition check that stays enabled in release builds. These guard
/// user-facing API boundaries; inner loops use plain asserts.
#define RSRPA_REQUIRE(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::rsrpa::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RSRPA_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) ::rsrpa::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
