// Deterministic random number generation.
//
// All stochastic pieces of the library (random initial subspaces, random
// atom perturbations, Hutchinson probe vectors) draw from an explicitly
// seeded Rng so every experiment is reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace rsrpa {

/// Seeded pseudo-random generator with convenience fills.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal double.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Rademacher +-1, used by the Hutchinson trace estimator.
  double rademacher() { return engine_() & 1u ? 1.0 : -1.0; }

  void fill_uniform(std::span<double> x, double lo = -1.0, double hi = 1.0) {
    for (double& v : x) v = uniform(lo, hi);
  }

  void fill_normal(std::span<double> x) {
    for (double& v : x) v = normal();
  }

  void fill_rademacher(std::span<double> x) {
    for (double& v : x) v = rademacher();
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rsrpa
