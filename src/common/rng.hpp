// Deterministic random number generation.
//
// All stochastic pieces of the library (random initial subspaces, random
// atom perturbations, Hutchinson probe vectors) draw from an explicitly
// seeded Rng so every experiment is reproducible run-to-run.
//
// Determinism contract under threading: an Rng instance is NOT
// thread-safe — it is single-owner, like the timers. Code that fans work
// out across the sched pool must never share one Rng between tasks;
// instead each task derives its own stream with derive(stream_id), where
// stream_id is a STABLE identifier of the work item (column index, probe
// number, rank id) — never a worker/thread id. Streams derived this way
// are (a) decorrelated (seed mixing goes through splitmix64, so
// consecutive ids yield unrelated engine states) and (b) independent of
// both the thread count and the order tasks happen to execute in, which
// keeps every stochastic result bitwise reproducible at any
// RSRPA_THREADS.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace rsrpa {

/// splitmix64 finalizer — the standard 64-bit avalanche mix (Steele et
/// al., "Fast splittable pseudorandom number generators"). Used to turn
/// (seed, stream id) pairs into well-separated engine seeds.
inline constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded pseudo-random generator with convenience fills. Single-owner:
/// give each concurrent task its own instance (see derive()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL)
      : seed_(seed), engine_(seed) {}

  /// A decorrelated child generator for work-item `stream`. Derivation
  /// depends only on (constructor seed, stream) — not on how many values
  /// this Rng has produced, the thread count, or execution order — so
  /// parallel code that derives one stream per work item reproduces the
  /// same numbers at any RSRPA_THREADS. Distinct streams give unrelated
  /// sequences (splitmix64-mixed seeds).
  [[nodiscard]] Rng derive(std::uint64_t stream) const {
    return Rng(splitmix64(seed_ ^ splitmix64(stream)));
  }

  /// The seed this generator was constructed with (derivation base).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal double.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Rademacher +-1, used by the Hutchinson trace estimator.
  double rademacher() { return engine_() & 1u ? 1.0 : -1.0; }

  void fill_uniform(std::span<double> x, double lo = -1.0, double hi = 1.0) {
    for (double& v : x) v = uniform(lo, hi);
  }

  void fill_normal(std::span<double> x) {
    for (double& v : x) v = normal();
  }

  void fill_rademacher(std::span<double> x) {
    for (double& v : x) v = rademacher();
  }

  std::mt19937_64& engine() { return engine_; }

  /// Serialize the complete generator state (derivation seed + engine
  /// position) to portable text. The io::RunCheckpoint layer persists
  /// this so a resumed run draws exactly the values an uninterrupted run
  /// would have drawn — both from the engine stream and from derive().
  [[nodiscard]] std::string save_state() const {
    std::ostringstream os;
    os << seed_ << ' ' << engine_;
    return os.str();
  }

  /// Inverse of save_state(). Throws Error on malformed input.
  static Rng load_state(const std::string& state) {
    std::istringstream is(state);
    Rng r;
    is >> r.seed_ >> r.engine_;
    RSRPA_REQUIRE_MSG(!is.fail(), "Rng: malformed serialized state");
    return r;
  }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace rsrpa
