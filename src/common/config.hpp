// Key-value configuration files in the style of the paper artifact's
// `.rpa` inputs, e.g.
//
//   N_NUCHI_EIGS: 768
//   N_OMEGA: 8
//   TOL_EIG: 4e-3 2e-3 5e-4 5e-4 5e-4 5e-4 5e-4 5e-4
//   TOL_STERN_RES: 1e-2
//
// Keys are case-sensitive; values are whitespace-separated scalars. Lines
// starting with '#' and blank lines are ignored.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rsrpa {

class Config {
 public:
  Config() = default;

  /// Parse from file contents (not a path) — callers read the file.
  static Config parse(const std::string& text);
  /// Parse the file at `path`. Throws Error if unreadable.
  static Config parse_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Scalar accessors; throw Error if the key is missing or malformed.
  [[nodiscard]] int get_int(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] std::vector<double> get_doubles(const std::string& key) const;

  /// Accessors with defaults for optional keys.
  [[nodiscard]] int get_int_or(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key, double fallback) const;

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  [[nodiscard]] const std::string& raw(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace rsrpa
