// Matrix-free high-order finite difference Laplacian.
//
// The six-axis (6r+1)-point stencil of the paper, applied with periodic
// boundary conditions. Following the arithmetic-intensity analysis of
// paper SS III-C, the block interface applies the stencil to ONE input
// vector at a time (apply_block); the simultaneous multi-vector variant
// (apply_block_simultaneous) is retained solely so the A1 ablation bench
// can measure the difference the paper argues about.
//
// Template methods cover both real grid functions (DFT, Poisson checks)
// and complex ones (Sternheimer solves): the complex-shifted Hamiltonian
// applies this operator to complex blocks.
#pragma once

#include <span>
#include <vector>

#include "grid/fd.hpp"
#include "grid/grid.hpp"
#include "la/matrix.hpp"

namespace rsrpa::grid {

class StencilLaplacian {
 public:
  StencilLaplacian(Grid3D g, int radius)
      : grid_(g),
        radius_(radius),
        coeffs_(fd_coefficients(radius)),
        wrap_x_(make_wrap(g.nx(), radius)),
        wrap_y_(make_wrap(g.ny(), radius)),
        wrap_z_(make_wrap(g.nz(), radius)) {
    const double ihx2 = 1.0 / (g.hx() * g.hx());
    const double ihy2 = 1.0 / (g.hy() * g.hy());
    const double ihz2 = 1.0 / (g.hz() * g.hz());
    cx_.resize(radius_ + 1);
    cy_.resize(radius_ + 1);
    cz_.resize(radius_ + 1);
    for (int k = 0; k <= radius_; ++k) {
      cx_[k] = coeffs_[k] * ihx2;
      cy_[k] = coeffs_[k] * ihy2;
      cz_[k] = coeffs_[k] * ihz2;
    }
    diag_ = cx_[0] + cy_[0] + cz_[0];
  }

  [[nodiscard]] const Grid3D& grid() const { return grid_; }
  [[nodiscard]] int radius() const { return radius_; }
  /// Diagonal entry of the discrete Laplacian (constant on a uniform grid).
  [[nodiscard]] double diagonal() const { return diag_; }
  /// Raw unit-spacing coefficients c_0..c_r.
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coeffs_;
  }

  /// Most negative eigenvalue of the periodic FD Laplacian, from the
  /// separable symbol. Used for Chebyshev bounds on H's spectrum.
  [[nodiscard]] double min_eigenvalue_bound() const;

  /// out = Laplacian(in) for a single grid function.
  template <typename T>
  void apply(std::span<const T> in, std::span<T> out) const {
    RSRPA_REQUIRE(in.size() == grid_.size() && out.size() == grid_.size());
    const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
    const int r = radius_;
    const std::size_t* wx = wrap_x_.data() + r;
    const std::size_t* wy = wrap_y_.data() + r;
    const std::size_t* wz = wrap_z_.data() + r;
#pragma omp parallel for schedule(static)
    for (std::size_t iz = 0; iz < nz; ++iz) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        const std::size_t base = nx * (iy + ny * iz);
        // z and y neighbor plane/row offsets are shared across the x row.
        for (std::size_t ix = 0; ix < nx; ++ix) {
          T sum = static_cast<T>(diag_) * in[base + ix];
          for (int k = 1; k <= r; ++k) {
            sum += static_cast<T>(cx_[k]) *
                   (in[base + wx[static_cast<long>(ix) + k]] +
                    in[base + wx[static_cast<long>(ix) - k]]);
            sum += static_cast<T>(cy_[k]) *
                   (in[ix + nx * (wy[static_cast<long>(iy) + k] + ny * iz)] +
                    in[ix + nx * (wy[static_cast<long>(iy) - k] + ny * iz)]);
            sum += static_cast<T>(cz_[k]) *
                   (in[ix + nx * (iy + ny * wz[static_cast<long>(iz) + k])] +
                    in[ix + nx * (iy + ny * wz[static_cast<long>(iz) - k])]);
          }
          out[base + ix] = sum;
        }
      }
    }
  }

  /// Column-at-a-time block apply (the paper's preferred schedule).
  template <typename T>
  void apply_block(const la::Matrix<T>& in, la::Matrix<T>& out) const {
    RSRPA_REQUIRE(in.rows() == grid_.size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    for (std::size_t j = 0; j < in.cols(); ++j) apply<T>(in.col(j), out.col(j));
  }

  /// Simultaneous multi-vector apply: iterates grid points in the outer
  /// loops and vectors innermost. Kept for the SS III-C ablation; the
  /// working set grows by a factor s, which is exactly the effect the
  /// paper's fast-memory model predicts will hurt.
  template <typename T>
  void apply_block_simultaneous(const la::Matrix<T>& in,
                                la::Matrix<T>& out) const {
    RSRPA_REQUIRE(in.rows() == grid_.size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
    const std::size_t s = in.cols();
    const std::size_t n = grid_.size();
    const int r = radius_;
    const std::size_t* wx = wrap_x_.data() + r;
    const std::size_t* wy = wrap_y_.data() + r;
    const std::size_t* wz = wrap_z_.data() + r;
    const T* pin = in.data();
    T* pout = out.data();
#pragma omp parallel for schedule(static)
    for (std::size_t iz = 0; iz < nz; ++iz) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
          const std::size_t p = ix + nx * (iy + ny * iz);
          for (std::size_t j = 0; j < s; ++j)
            pout[p + j * n] = static_cast<T>(diag_) * pin[p + j * n];
          for (int k = 1; k <= r; ++k) {
            const std::size_t xp = wx[static_cast<long>(ix) + k] + nx * (iy + ny * iz);
            const std::size_t xm = wx[static_cast<long>(ix) - k] + nx * (iy + ny * iz);
            const std::size_t yp = ix + nx * (wy[static_cast<long>(iy) + k] + ny * iz);
            const std::size_t ym = ix + nx * (wy[static_cast<long>(iy) - k] + ny * iz);
            const std::size_t zp = ix + nx * (iy + ny * wz[static_cast<long>(iz) + k]);
            const std::size_t zm = ix + nx * (iy + ny * wz[static_cast<long>(iz) - k]);
            for (std::size_t j = 0; j < s; ++j) {
              const std::size_t o = j * n;
              pout[p + o] += static_cast<T>(cx_[k]) * (pin[xp + o] + pin[xm + o]) +
                             static_cast<T>(cy_[k]) * (pin[yp + o] + pin[ym + o]) +
                             static_cast<T>(cz_[k]) * (pin[zp + o] + pin[zm + o]);
            }
          }
        }
      }
    }
  }

 private:
  static std::vector<std::size_t> make_wrap(std::size_t n, int r) {
    // Table of size n + 2r mapping shifted position i-r (i in [0, n+2r))
    // to its periodic image; indexed as wrap[r + q] for q in [-r, n+r).
    std::vector<std::size_t> w(n + 2 * static_cast<std::size_t>(r));
    for (std::size_t i = 0; i < w.size(); ++i) {
      long q = static_cast<long>(i) - r;
      const long nn = static_cast<long>(n);
      q = ((q % nn) + nn) % nn;
      w[i] = static_cast<std::size_t>(q);
    }
    return w;
  }

  Grid3D grid_;
  int radius_;
  std::vector<double> coeffs_;
  std::vector<std::size_t> wrap_x_, wrap_y_, wrap_z_;
  std::vector<double> cx_, cy_, cz_;
  double diag_ = 0.0;
};

}  // namespace rsrpa::grid
