// Matrix-free high-order finite difference Laplacian.
//
// The six-axis (6r+1)-point stencil of the paper, applied with periodic
// boundary conditions. Following the arithmetic-intensity analysis of
// paper SS III-C, the block interface applies the stencil to ONE input
// vector at a time (apply_block); the simultaneous multi-vector variant
// (apply_block_simultaneous) is retained solely so the A1 ablation bench
// can measure the difference the paper argues about.
//
// Two execution paths share the class:
//
//  * apply_fused — the default hot path. One memory sweep computes
//    out = alpha * Lap(in) + (beta * vdiag + shift) . in + eta * extra,
//    which is the whole shifted-Hamiltonian diagonal part (kinetic scale,
//    local potential, complex Sternheimer shift) and the Chebyshev
//    three-term update folded into the stencil pass. The traversal is
//    split into an interior region addressed by direct strided offsets
//    (no wrap tables, vectorizable) and thin periodic boundary shells
//    that keep the table lookup, with cache-blocked z/y tiling, threaded
//    over z chunks via sched::parallel_for_range. Each grid point
//    performs the exact same floating-point operations at every thread
//    count, so results are bitwise deterministic (the sched contract).
//
//  * apply_reference — the seed per-point wrap-table loop, kept as the
//    correctness oracle, the A1 ablation baseline, and the
//    RSRPA_FUSED_APPLY=0 escape hatch.
//
// Template methods cover both real grid functions (DFT, Poisson checks)
// and complex ones (Sternheimer solves): the complex-shifted Hamiltonian
// applies this operator to complex blocks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "grid/fd.hpp"
#include "grid/grid.hpp"
#include "la/matrix.hpp"
#include "sched/parallel_for.hpp"

namespace rsrpa::grid {

/// Process-wide DEFAULTS for the fused-apply knobs, read from the
/// environment at every call (never latched): RSRPA_FUSED_APPLY=0 selects
/// the reference wrap-table path, RSRPA_TILE_Y / RSRPA_TILE_Z size the
/// cache blocks. Each StencilLaplacian samples these at construction and
/// carries its own copies, so concurrent jobs in one process configure
/// their operators independently via set_fused_apply / set_fused_tiles.
[[nodiscard]] bool default_fused_apply();
[[nodiscard]] std::size_t default_fused_tile_y();
[[nodiscard]] std::size_t default_fused_tile_z();

/// Diagonal terms fused into a single stencil sweep:
///   out = alpha * Lap(in) + (beta * vdiag + shift) . in + eta * extra.
/// vdiag and extra are optional (nullptr = absent); with the defaults the
/// sweep degenerates to the plain Laplacian and the epilogue is skipped.
template <typename T>
struct FusedTerms {
  double alpha = 1.0;            ///< scale on the Laplacian sum
  const double* vdiag = nullptr; ///< real diagonal (the local potential)
  double beta = 0.0;             ///< scale on vdiag
  T shift{};                     ///< constant diagonal shift (-lambda + i omega)
  const T* extra = nullptr;      ///< extra vector (Chebyshev V_{k-1})
  T eta{};                       ///< scale on extra

  [[nodiscard]] bool identity() const {
    return alpha == 1.0 && vdiag == nullptr && shift == T{} &&
           extra == nullptr;
  }
};

namespace detail {

// Interior row segment [x0, x1): every neighbor is a direct strided
// offset from the center point, so the inner loop carries no wrap-table
// indirection and vectorizes. R > 0 bakes the radius in at compile time
// (fully unrolled neighbor loop); R == 0 falls back to the runtime r.
template <typename T, int R>
inline void stencil_row_interior(const T* in, T* out, std::size_t base,
                                 std::size_t x0, std::size_t x1, long snx,
                                 long snxny, int r, const double* cx,
                                 const double* cy, const double* cz,
                                 double diag) {
  // The coefficients stay double (never static_cast to T): scaling a
  // complex sum by a double is two multiplies, while promoting the
  // coefficient to complex costs a full complex product per neighbor.
  const int rr = R > 0 ? R : r;
  for (std::size_t ix = x0; ix < x1; ++ix) {
    const T* p = in + base + ix;
    T sum = diag * p[0];
    for (int k = 1; k <= rr; ++k) {
      sum += cx[k] * (p[k] + p[-k]);
      sum += cy[k] *
             (p[static_cast<long>(k) * snx] + p[-static_cast<long>(k) * snx]);
      sum += cz[k] * (p[static_cast<long>(k) * snxny] +
                      p[-static_cast<long>(k) * snxny]);
    }
    out[base + ix] = sum;
  }
}

template <typename T>
using StencilRowFn = void (*)(const T*, T*, std::size_t, std::size_t,
                              std::size_t, long, long, int, const double*,
                              const double*, const double*, double);

template <typename T>
StencilRowFn<T> pick_interior_row(int r) {
  switch (r) {
    case 1: return &stencil_row_interior<T, 1>;
    case 2: return &stencil_row_interior<T, 2>;
    case 3: return &stencil_row_interior<T, 3>;
    case 4: return &stencil_row_interior<T, 4>;
    case 5: return &stencil_row_interior<T, 5>;
    case 6: return &stencil_row_interior<T, 6>;
    default: return &stencil_row_interior<T, 0>;
  }
}

// x-boundary segment of an interior row: only the x neighbors wrap; y/z
// stay direct strides. The segments are at most r points on each end.
template <typename T>
inline void stencil_row_xwrap(const T* in, T* out, std::size_t base,
                              std::size_t x0, std::size_t x1, long snx,
                              long snxny, int r, const std::size_t* wx,
                              const double* cx, const double* cy,
                              const double* cz, double diag) {
  for (std::size_t ix = x0; ix < x1; ++ix) {
    const T* p = in + base + ix;
    T sum = diag * p[0];
    for (int k = 1; k <= r; ++k) {
      sum += cx[k] * (in[base + wx[static_cast<long>(ix) + k]] +
                      in[base + wx[static_cast<long>(ix) - k]]);
      sum += cy[k] *
             (p[static_cast<long>(k) * snx] + p[-static_cast<long>(k) * snx]);
      sum += cz[k] * (p[static_cast<long>(k) * snxny] +
                      p[-static_cast<long>(k) * snxny]);
    }
    out[base + ix] = sum;
  }
}

// Boundary-shell row: every axis goes through its wrap table (handles any
// wrap count, including axes shorter than 2r where the shells overlap).
template <typename T>
inline void stencil_row_wrapped(const T* in, T* out, std::size_t nx,
                                std::size_t ny, std::size_t iy, std::size_t iz,
                                std::size_t base, int r, const std::size_t* wx,
                                const std::size_t* wy, const std::size_t* wz,
                                const double* cx, const double* cy,
                                const double* cz, double diag) {
  for (std::size_t ix = 0; ix < nx; ++ix) {
    T sum = diag * in[base + ix];
    for (int k = 1; k <= r; ++k) {
      sum += cx[k] * (in[base + wx[static_cast<long>(ix) + k]] +
                      in[base + wx[static_cast<long>(ix) - k]]);
      sum += cy[k] *
             (in[ix + nx * (wy[static_cast<long>(iy) + k] + ny * iz)] +
              in[ix + nx * (wy[static_cast<long>(iy) - k] + ny * iz)]);
      sum += cz[k] *
             (in[ix + nx * (iy + ny * wz[static_cast<long>(iz) + k])] +
              in[ix + nx * (iy + ny * wz[static_cast<long>(iz) - k])]);
    }
    out[base + ix] = sum;
  }
}

// Row epilogue of the fused sweep: combines the raw stencil sum (already
// in out, still hot in L1) with the diagonal terms. The branches hoist
// the nullable pointers out of the inner loops.
template <typename T>
inline void fused_row_epilogue(const T* in, T* out, const FusedTerms<T>& t,
                               std::size_t i0, std::size_t i1) {
  const double alpha = t.alpha;
  if (t.vdiag != nullptr) {
    const double* v = t.vdiag;
    if (t.extra != nullptr) {
      for (std::size_t i = i0; i < i1; ++i)
        out[i] = alpha * out[i] + (t.beta * v[i] + t.shift) * in[i] +
                 t.eta * t.extra[i];
    } else {
      for (std::size_t i = i0; i < i1; ++i)
        out[i] = alpha * out[i] + (t.beta * v[i] + t.shift) * in[i];
    }
  } else {
    if (t.extra != nullptr) {
      for (std::size_t i = i0; i < i1; ++i)
        out[i] = alpha * out[i] + t.shift * in[i] + t.eta * t.extra[i];
    } else {
      for (std::size_t i = i0; i < i1; ++i)
        out[i] = alpha * out[i] + t.shift * in[i];
    }
  }
}

}  // namespace detail

class StencilLaplacian {
 public:
  StencilLaplacian(Grid3D g, int radius)
      : grid_(g),
        radius_(radius),
        coeffs_(fd_coefficients(radius)),
        wrap_x_(make_wrap(g.nx(), radius)),
        wrap_y_(make_wrap(g.ny(), radius)),
        wrap_z_(make_wrap(g.nz(), radius)) {
    const double ihx2 = 1.0 / (g.hx() * g.hx());
    const double ihy2 = 1.0 / (g.hy() * g.hy());
    const double ihz2 = 1.0 / (g.hz() * g.hz());
    cx_.resize(radius_ + 1);
    cy_.resize(radius_ + 1);
    cz_.resize(radius_ + 1);
    for (int k = 0; k <= radius_; ++k) {
      cx_[k] = coeffs_[k] * ihx2;
      cy_[k] = coeffs_[k] * ihy2;
      cz_[k] = coeffs_[k] * ihz2;
    }
    diag_ = cx_[0] + cy_[0] + cz_[0];
  }

  [[nodiscard]] const Grid3D& grid() const { return grid_; }
  [[nodiscard]] int radius() const { return radius_; }
  /// Diagonal entry of the discrete Laplacian (constant on a uniform grid).
  [[nodiscard]] double diagonal() const { return diag_; }
  /// Raw unit-spacing coefficients c_0..c_r.
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coeffs_;
  }

  /// Most negative eigenvalue of the periodic FD Laplacian, from the
  /// separable symbol. Used for Chebyshev bounds on H's spectrum.
  [[nodiscard]] double min_eigenvalue_bound() const;

  /// Select the fused single-sweep path (default: the RSRPA_FUSED_APPLY
  /// environment default sampled at construction).
  void set_fused_apply(bool on) { fused_ = on; }
  [[nodiscard]] bool fused_apply() const { return fused_; }

  /// Cache-block extents of the fused sweep for THIS operator (defaults:
  /// RSRPA_TILE_Y / RSRPA_TILE_Z sampled at construction). Tiling only
  /// reorders the traversal — results are bitwise identical at any tile
  /// size — so two in-process jobs may tune them independently.
  void set_fused_tiles(std::size_t tile_y, std::size_t tile_z) {
    RSRPA_REQUIRE_MSG(tile_y >= 1 && tile_z >= 1,
                      "fused tile extents must be >= 1");
    tile_y_ = tile_y;
    tile_z_ = tile_z;
  }
  [[nodiscard]] std::size_t tile_y() const { return tile_y_; }
  [[nodiscard]] std::size_t tile_z() const { return tile_z_; }

  /// out = Laplacian(in) for a single grid function. Dispatches to the
  /// fused interior/boundary sweep unless this instance selected the
  /// reference path (set_fused_apply(false) or RSRPA_FUSED_APPLY=0 at
  /// construction).
  template <typename T>
  void apply(std::span<const T> in, std::span<T> out) const {
    if (fused_) {
      apply_fused<T>(in, out, FusedTerms<T>{});
    } else {
      apply_reference<T>(in, out);
    }
  }

  /// Single-sweep fused kernel:
  ///   out = t.alpha * Lap(in) + (t.beta * t.vdiag + t.shift) . in
  ///         + t.eta * t.extra.
  /// One pass over memory: the raw stencil sum of each x row is written
  /// to out and immediately combined with the diagonal terms while the
  /// row is in cache. Interior rows use direct strided offsets; boundary
  /// shells (and axes shorter than 2r) keep the wrap tables. Threaded
  /// over z chunks with disjoint writes — bitwise deterministic at every
  /// RSRPA_THREADS setting.
  template <typename T>
  void apply_fused(std::span<const T> in, std::span<T> out,
                   const FusedTerms<T>& t) const {
    RSRPA_REQUIRE(in.size() == grid_.size() && out.size() == grid_.size());
    require_no_alias(in.data(), out.data(), in.size());
    const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
    const int r = radius_;
    const std::size_t rsz = static_cast<std::size_t>(r);
    const long snx = static_cast<long>(nx);
    const long snxny = static_cast<long>(nx * ny);
    const std::size_t* wx = wrap_x_.data() + r;
    const std::size_t* wy = wrap_y_.data() + r;
    const std::size_t* wz = wrap_z_.data() + r;
    const double* cx = cx_.data();
    const double* cy = cy_.data();
    const double* cz = cz_.data();
    const double diag = diag_;
    const T* pin = in.data();
    T* pout = out.data();

    // Interior extents per axis; an axis shorter than 2r is all boundary
    // (x_lo == x_hi) and the wrap tables absorb the overlapping shells.
    const std::size_t x_lo = std::min(rsz, nx);
    const std::size_t x_hi = nx >= 2 * rsz ? nx - rsz : x_lo;
    const bool y_interior = ny >= 2 * rsz;
    const bool z_interior = nz >= 2 * rsz;
    const detail::StencilRowFn<T> interior_row =
        detail::pick_interior_row<T>(r);
    const bool epilogue = !t.identity();
    const std::size_t ty = tile_y_;
    const std::size_t tz = tile_z_;

    // One task per z chunk; rows (and therefore writes) are disjoint.
    constexpr std::size_t kElemsPerTask = 1u << 16;
    const std::size_t z_grain =
        kElemsPerTask / std::max<std::size_t>(nx * ny, 1) + 1;
    sched::parallel_for_range(0, nz, z_grain, [&](std::size_t zb,
                                                  std::size_t ze) {
      for (std::size_t z0 = zb; z0 < ze; z0 += tz) {
        const std::size_t z1 = std::min(z0 + tz, ze);
        for (std::size_t y0 = 0; y0 < ny; y0 += ty) {
          const std::size_t y1 = std::min(y0 + ty, ny);
          for (std::size_t iz = z0; iz < z1; ++iz) {
            const bool z_in = z_interior && iz >= rsz && iz + rsz < nz;
            for (std::size_t iy = y0; iy < y1; ++iy) {
              const std::size_t base = nx * (iy + ny * iz);
              if (z_in && y_interior && iy >= rsz && iy + rsz < ny) {
                if (x_lo > 0)
                  detail::stencil_row_xwrap<T>(pin, pout, base, 0, x_lo, snx,
                                               snxny, r, wx, cx, cy, cz, diag);
                if (x_hi > x_lo)
                  interior_row(pin, pout, base, x_lo, x_hi, snx, snxny, r, cx,
                               cy, cz, diag);
                if (x_hi < nx)
                  detail::stencil_row_xwrap<T>(pin, pout, base, x_hi, nx, snx,
                                               snxny, r, wx, cx, cy, cz, diag);
              } else {
                detail::stencil_row_wrapped<T>(pin, pout, nx, ny, iy, iz, base,
                                               r, wx, wy, wz, cx, cy, cz, diag);
              }
              if (epilogue)
                detail::fused_row_epilogue<T>(pin, pout, t, base, base + nx);
            }
          }
        }
      }
    });
  }

  /// The seed wrap-table loop — correctness oracle, A1 ablation baseline,
  /// and RSRPA_FUSED_APPLY=0 path. Threaded over z chunks through the
  /// sched pool (not OpenMP) so RSRPA_THREADS governs it.
  template <typename T>
  void apply_reference(std::span<const T> in, std::span<T> out) const {
    RSRPA_REQUIRE(in.size() == grid_.size() && out.size() == grid_.size());
    require_no_alias(in.data(), out.data(), in.size());
    const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
    const int r = radius_;
    const std::size_t* wx = wrap_x_.data() + r;
    const std::size_t* wy = wrap_y_.data() + r;
    const std::size_t* wz = wrap_z_.data() + r;
    constexpr std::size_t kElemsPerTask = 1u << 16;
    const std::size_t z_grain =
        kElemsPerTask / std::max<std::size_t>(nx * ny, 1) + 1;
    sched::parallel_for_range(0, nz, z_grain, [&](std::size_t zb,
                                                  std::size_t ze) {
      for (std::size_t iz = zb; iz < ze; ++iz) {
        for (std::size_t iy = 0; iy < ny; ++iy) {
          const std::size_t base = nx * (iy + ny * iz);
          // z and y neighbor plane/row offsets are shared across the x row.
          for (std::size_t ix = 0; ix < nx; ++ix) {
            T sum = static_cast<T>(diag_) * in[base + ix];
            for (int k = 1; k <= r; ++k) {
              sum += static_cast<T>(cx_[k]) *
                     (in[base + wx[static_cast<long>(ix) + k]] +
                      in[base + wx[static_cast<long>(ix) - k]]);
              sum += static_cast<T>(cy_[k]) *
                     (in[ix + nx * (wy[static_cast<long>(iy) + k] + ny * iz)] +
                      in[ix + nx * (wy[static_cast<long>(iy) - k] + ny * iz)]);
              sum += static_cast<T>(cz_[k]) *
                     (in[ix + nx * (iy + ny * wz[static_cast<long>(iz) + k])] +
                      in[ix + nx * (iy + ny * wz[static_cast<long>(iz) - k])]);
            }
            out[base + ix] = sum;
          }
        }
      }
    });
  }

  /// Column-at-a-time block apply (the paper's preferred schedule).
  template <typename T>
  void apply_block(const la::Matrix<T>& in, la::Matrix<T>& out) const {
    RSRPA_REQUIRE(in.rows() == grid_.size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    for (std::size_t j = 0; j < in.cols(); ++j) apply<T>(in.col(j), out.col(j));
  }

  /// Simultaneous multi-vector apply: iterates grid points in the outer
  /// loops and vectors innermost. Kept for the SS III-C ablation; the
  /// working set grows by a factor s, which is exactly the effect the
  /// paper's fast-memory model predicts will hurt. Deliberately still
  /// OpenMP (the ablation measures the seed execution model, not the
  /// sched pool) — the only omp pragma left on purpose; see the CMake
  /// compute-path assertion.
  template <typename T>
  void apply_block_simultaneous(const la::Matrix<T>& in,
                                la::Matrix<T>& out) const {
    RSRPA_REQUIRE(in.rows() == grid_.size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
    const std::size_t s = in.cols();
    const std::size_t n = grid_.size();
    const int r = radius_;
    const std::size_t* wx = wrap_x_.data() + r;
    const std::size_t* wy = wrap_y_.data() + r;
    const std::size_t* wz = wrap_z_.data() + r;
    const T* pin = in.data();
    T* pout = out.data();
#pragma omp parallel for schedule(static)
    for (std::size_t iz = 0; iz < nz; ++iz) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
          const std::size_t p = ix + nx * (iy + ny * iz);
          for (std::size_t j = 0; j < s; ++j)
            pout[p + j * n] = static_cast<T>(diag_) * pin[p + j * n];
          for (int k = 1; k <= r; ++k) {
            const std::size_t xp = wx[static_cast<long>(ix) + k] + nx * (iy + ny * iz);
            const std::size_t xm = wx[static_cast<long>(ix) - k] + nx * (iy + ny * iz);
            const std::size_t yp = ix + nx * (wy[static_cast<long>(iy) + k] + ny * iz);
            const std::size_t ym = ix + nx * (wy[static_cast<long>(iy) - k] + ny * iz);
            const std::size_t zp = ix + nx * (iy + ny * wz[static_cast<long>(iz) + k]);
            const std::size_t zm = ix + nx * (iy + ny * wz[static_cast<long>(iz) - k]);
            for (std::size_t j = 0; j < s; ++j) {
              const std::size_t o = j * n;
              pout[p + o] += static_cast<T>(cx_[k]) * (pin[xp + o] + pin[xm + o]) +
                             static_cast<T>(cy_[k]) * (pin[yp + o] + pin[ym + o]) +
                             static_cast<T>(cz_[k]) * (pin[zp + o] + pin[zm + o]);
            }
          }
        }
      }
    }
  }

 private:
  template <typename T>
  static void require_no_alias(const T* a, const T* b, std::size_t n) {
    const auto lo_a = reinterpret_cast<std::uintptr_t>(a);
    const auto lo_b = reinterpret_cast<std::uintptr_t>(b);
    const std::uintptr_t bytes = n * sizeof(T);
    RSRPA_REQUIRE_MSG(lo_a + bytes <= lo_b || lo_b + bytes <= lo_a,
                      "stencil apply: in/out must not alias (the sweep reads "
                      "in after writing out)");
  }

  static std::vector<std::size_t> make_wrap(std::size_t n, int r) {
    // Table of size n + 2r mapping shifted position i-r (i in [0, n+2r))
    // to its periodic image; indexed as wrap[r + q] for q in [-r, n+r).
    std::vector<std::size_t> w(n + 2 * static_cast<std::size_t>(r));
    for (std::size_t i = 0; i < w.size(); ++i) {
      long q = static_cast<long>(i) - r;
      const long nn = static_cast<long>(n);
      q = ((q % nn) + nn) % nn;
      w[i] = static_cast<std::size_t>(q);
    }
    return w;
  }

  Grid3D grid_;
  int radius_;
  std::vector<double> coeffs_;
  std::vector<std::size_t> wrap_x_, wrap_y_, wrap_z_;
  std::vector<double> cx_, cy_, cz_;
  double diag_ = 0.0;
  // Per-instance apply tuning, sampled from the environment at
  // construction (process defaults) and overridable per operator so
  // concurrent in-process jobs never share these knobs.
  bool fused_ = default_fused_apply();
  std::size_t tile_y_ = default_fused_tile_y();
  std::size_t tile_z_ = default_fused_tile_z();
};

}  // namespace rsrpa::grid
