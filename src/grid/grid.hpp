// Real-space computational domain.
//
// The paper discretizes a periodic orthorhombic cell on a uniform finite
// difference grid (Gamma-point, mesh spacing ~0.69 Bohr). Grid3D carries
// the dimensions, spacings and the linearization convention used by every
// kernel in the library:
//
//   linear index = ix + nx * (iy + ny * iz)     (x fastest)
//
// so a grid function viewed as a matrix with x as the row dimension is
// column-major — the layout the Kronecker-product Laplacian transforms
// exploit directly.
#pragma once

#include <array>
#include <cstddef>

#include "common/error.hpp"

namespace rsrpa::grid {

class Grid3D {
 public:
  /// A periodic nx x ny x nz grid over a cell of extents (lx, ly, lz) Bohr.
  Grid3D(std::size_t nx, std::size_t ny, std::size_t nz, double lx, double ly,
         double lz)
      : n_{nx, ny, nz}, l_{lx, ly, lz} {
    RSRPA_REQUIRE(nx > 0 && ny > 0 && nz > 0);
    RSRPA_REQUIRE(lx > 0 && ly > 0 && lz > 0);
  }

  /// Cubic-cell convenience: n^3 points over an l^3 cell.
  static Grid3D cubic(std::size_t n, double l) { return {n, n, n, l, l, l}; }

  [[nodiscard]] std::size_t nx() const { return n_[0]; }
  [[nodiscard]] std::size_t ny() const { return n_[1]; }
  [[nodiscard]] std::size_t nz() const { return n_[2]; }
  [[nodiscard]] std::size_t size() const { return n_[0] * n_[1] * n_[2]; }

  [[nodiscard]] double lx() const { return l_[0]; }
  [[nodiscard]] double ly() const { return l_[1]; }
  [[nodiscard]] double lz() const { return l_[2]; }

  /// Mesh spacings. Periodic cells place points at m*h, m = 0..n-1.
  [[nodiscard]] double hx() const { return l_[0] / n_[0]; }
  [[nodiscard]] double hy() const { return l_[1] / n_[1]; }
  [[nodiscard]] double hz() const { return l_[2] / n_[2]; }

  /// Volume element for quadrature on the grid.
  [[nodiscard]] double dv() const { return hx() * hy() * hz(); }

  [[nodiscard]] std::size_t index(std::size_t ix, std::size_t iy,
                                  std::size_t iz) const {
    return ix + n_[0] * (iy + n_[1] * iz);
  }

  /// Cartesian coordinates of a grid point.
  [[nodiscard]] std::array<double, 3> coords(std::size_t ix, std::size_t iy,
                                             std::size_t iz) const {
    return {ix * hx(), iy * hy(), iz * hz()};
  }

  /// Minimum-image displacement along one axis for periodic potentials.
  [[nodiscard]] static double min_image(double dx, double l) {
    while (dx > 0.5 * l) dx -= l;
    while (dx < -0.5 * l) dx += l;
    return dx;
  }

 private:
  std::array<std::size_t, 3> n_;
  std::array<double, 3> l_;
};

}  // namespace rsrpa::grid
