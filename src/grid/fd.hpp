// High-order central finite difference coefficients.
//
// The paper's Hamiltonian uses a six-axis (6r+1)-point stencil of radius r
// for the Laplacian. fd_coefficients(r) returns c_0..c_r such that
//
//   f''(0) ~ (1/h^2) [ c_0 f(0) + sum_{k=1}^{r} c_k (f(kh) + f(-kh)) ]
//
// exact for polynomials up to degree 2r+1 (order-2r accurate). The
// coefficients are obtained by solving the small moment system with the
// library's own LU, which is robust for any radius used in practice.
#pragma once

#include <vector>

namespace rsrpa::grid {

/// Central second-derivative coefficients of radius r (unit spacing).
std::vector<double> fd_coefficients(int radius);

/// Symbol of the periodic 1D FD Laplacian at angular frequency theta:
/// sigma(theta) = c_0 + 2 sum_k c_k cos(k theta). Non-positive for all
/// theta; zero only at theta = 0. Used by tests and by spectrum bounds.
double fd_symbol(const std::vector<double>& coeffs, double theta);

}  // namespace rsrpa::grid
