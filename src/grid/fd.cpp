#include "grid/fd.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "la/matrix.hpp"

namespace rsrpa::grid {

std::vector<double> fd_coefficients(int radius) {
  RSRPA_REQUIRE(radius >= 1);
  const std::size_t r = static_cast<std::size_t>(radius);
  // Moment conditions on even monomials x^{2m}, m = 0..r:
  //   m = 0:     c_0 + 2 sum_k c_k            = 0
  //   m = 1:         2 sum_k c_k k^2          = 2
  //   m = 2..r:      2 sum_k c_k k^{2m}       = 0
  la::Matrix<double> a(r + 1, r + 1);
  std::vector<double> rhs(r + 1, 0.0);
  a(0, 0) = 1.0;
  for (std::size_t k = 1; k <= r; ++k) a(0, k) = 2.0;
  for (std::size_t m = 1; m <= r; ++m)
    for (std::size_t k = 1; k <= r; ++k)
      a(m, k) = 2.0 * std::pow(static_cast<double>(k), 2.0 * m);
  rhs[1] = 2.0;

  la::Lu<double> lu(std::move(a));
  lu.solve_inplace(rhs);
  return rhs;  // rhs now holds c_0..c_r
}

double fd_symbol(const std::vector<double>& coeffs, double theta) {
  double sigma = coeffs[0];
  for (std::size_t k = 1; k < coeffs.size(); ++k)
    sigma += 2.0 * coeffs[k] * std::cos(k * theta);
  return sigma;
}

}  // namespace rsrpa::grid
