#include "grid/stencil.hpp"

#include <algorithm>
#include <cmath>

namespace rsrpa::grid {

double StencilLaplacian::min_eigenvalue_bound() const {
  // The periodic FD Laplacian is separable, so its spectrum is
  // { sx(tx)/hx^2 + sy(ty)/hy^2 + sz(tz)/hz^2 } over the discrete
  // frequencies. A lower bound follows from the per-axis symbol minimum,
  // found by dense sampling (the symbol is a smooth trig polynomial).
  double smin = 0.0;
  constexpr int kSamples = 2048;
  for (int i = 0; i <= kSamples; ++i) {
    const double theta = M_PI * i / kSamples;
    smin = std::min(smin, fd_symbol(coeffs_, theta));
  }
  const double ihx2 = 1.0 / (grid_.hx() * grid_.hx());
  const double ihy2 = 1.0 / (grid_.hy() * grid_.hy());
  const double ihz2 = 1.0 / (grid_.hz() * grid_.hz());
  return smin * (ihx2 + ihy2 + ihz2);
}

}  // namespace rsrpa::grid
