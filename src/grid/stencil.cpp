#include "grid/stencil.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace rsrpa::grid {

namespace {

std::size_t env_tile(const char* name, std::size_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || v <= 0) return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace

// Deliberately NOT latched in function-local statics: these are read per
// StencilLaplacian construction, so every operator built in the process
// picks up the current environment as its default and two in-process
// jobs can still override each other independently through the
// per-instance setters (set_fused_apply / set_fused_tiles). The old
// read-once-and-freeze behavior made the first job's environment the
// whole process's configuration.
bool default_fused_apply() {
  const char* s = std::getenv("RSRPA_FUSED_APPLY");
  return s == nullptr || std::string_view(s) != "0";
}

std::size_t default_fused_tile_y() { return env_tile("RSRPA_TILE_Y", 32); }

std::size_t default_fused_tile_z() { return env_tile("RSRPA_TILE_Z", 16); }

double StencilLaplacian::min_eigenvalue_bound() const {
  // The periodic FD Laplacian is separable, so its spectrum is
  // { sx(tx)/hx^2 + sy(ty)/hy^2 + sz(tz)/hz^2 } over the discrete
  // frequencies. A lower bound follows from the per-axis symbol minimum,
  // found by dense sampling (the symbol is a smooth trig polynomial).
  double smin = 0.0;
  constexpr int kSamples = 2048;
  for (int i = 0; i <= kSamples; ++i) {
    const double theta = M_PI * i / kSamples;
    smin = std::min(smin, fd_symbol(coeffs_, theta));
  }
  const double ihx2 = 1.0 / (grid_.hx() * grid_.hx());
  const double ihy2 = 1.0 / (grid_.hy() * grid_.hy());
  const double ihz2 = 1.0 / (grid_.hz() * grid_.hz());
  return smin * (ihx2 + ihy2 + ihz2);
}

}  // namespace rsrpa::grid
