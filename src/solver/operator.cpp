#include "solver/operator.hpp"

#include "common/timer.hpp"
#include "hamiltonian/hamiltonian.hpp"

namespace rsrpa::solver {

ApplyCostModel shifted_apply_cost(const ham::Hamiltonian& h, bool fused) {
  // Sweep counting per complex column (paper SS III-C fast-memory model:
  // stencil neighbors are cache hits, every sweep reads its operands
  // once). n = grid points, nnz = total nonlocal support points.
  //
  //   fused:     one sweep — read in (16 B/pt), write out (16), read
  //              V_loc (8) — plus the nonlocal gather+scatter touching
  //              in/out on the support (2 x 32 B/pt, index/value streams
  //              amortized across the block).
  //   reference: stencil sweep (in+out, 32), scale+V_loc sweep
  //              (out read/write + in + V_loc, 56), shift sweep (out
  //              read/write + in, 48), plus the same nonlocal term.
  //
  // Flops: each stencil tap is a real x complex multiply-add (4 flops),
  // 6r+1 taps per point; the diagonal terms add ~14 flops/pt fused
  // (alpha scale, V_loc + shift multiply-add) and the same work spread
  // over the extra sweeps on the reference path; nonlocal gather+scatter
  // are real x complex multiply-adds on the support (8 flops/pt total).
  const auto n = static_cast<double>(h.grid().size());
  const auto nnz = static_cast<double>(h.nonlocal().support_size());
  const double r = h.laplacian().radius();
  ApplyCostModel m;
  m.bytes_per_column = (fused ? 40.0 * n : 136.0 * n) + 64.0 * nnz;
  m.flops_per_column = 4.0 * (6.0 * r + 1.0) * n + 14.0 * n + 8.0 * nnz;
  return m;
}

ShiftedHamiltonianOp::ShiftedHamiltonianOp(const ham::Hamiltonian& h,
                                           double lambda, double omega)
    : h_(&h),
      lambda_(lambda),
      omega_(omega),
      cost_(shifted_apply_cost(h, h.fused_apply())) {}

void ShiftedHamiltonianOp::apply(const la::Matrix<cplx>& in,
                                 la::Matrix<cplx>& out) const {
  WallTimer timer;
  h_->apply_shifted_block(in, out, lambda_, omega_);
  const auto cols = static_cast<long>(in.cols());
  counters_.applies += 1;
  counters_.columns += cols;
  counters_.bytes += cost_.bytes_per_column * static_cast<double>(cols);
  counters_.flops += cost_.flops_per_column * static_cast<double>(cols);
  counters_.seconds += timer.seconds();
}

}  // namespace rsrpa::solver
