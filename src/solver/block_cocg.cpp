#include "solver/block_cocg.hpp"
#include <cstdio>

#include <cmath>

#include "la/blas.hpp"
#include "la/lu.hpp"

namespace rsrpa::solver {

namespace {

bool is_finite(double x) { return std::isfinite(x); }

// Shared stagnation probe (SolverOptions::stagnation_window). Tracks the
// best residual seen; when `window` consecutive iterations fail to improve
// on it by `factor`, the solve is declared broken down so the recovery
// ladder can take over instead of spinning to max_iter. Purely
// observational: it never alters the iteration's numerics.
class StagnationProbe {
 public:
  StagnationProbe(const SolverOptions& opts, double initial_relres)
      : window_(opts.stagnation_window),
        factor_(opts.stagnation_factor),
        best_(initial_relres) {}

  void check(double relres, const char* solver_name) {
    if (window_ <= 0) return;
    if (relres <= factor_ * best_) {
      best_ = relres;
      count_ = 0;
      return;
    }
    if (++count_ >= window_) {
      char msg[128];
      std::snprintf(msg, sizeof msg,
                    "%s: stagnation (relative residual %.3e not improving "
                    "over %d iterations)",
                    solver_name, relres, window_);
      throw NumericalBreakdown(msg);
    }
  }

 private:
  int window_;
  double factor_;
  double best_;
  int count_ = 0;
};

}  // namespace

SolveReport block_cocg(const BlockOpC& a, const la::Matrix<cplx>& b,
                       la::Matrix<cplx>& y, const SolverOptions& opts) {
  const std::size_t n = b.rows(), s = b.cols();
  RSRPA_REQUIRE(y.rows() == n && y.cols() == s && s >= 1);

  SolveReport rep;
  MatvecCostScope cost_scope(rep, opts);
  const double bnorm = la::norm_fro(b);
  if (bnorm == 0.0) {
    y.zero();
    rep.converged = true;
    return rep;
  }

  // W0 = B - A Y0.
  la::Matrix<cplx> w(n, s);
  a(y, w);
  rep.matvec_columns += static_cast<long>(s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i) w(i, j) = b(i, j) - w(i, j);

  la::Matrix<cplx> rho(s, s);
  la::gemm_tn(cplx{1}, w, w, cplx{0}, rho);  // rho_0 = W^T W

  la::Matrix<cplx> p(n, s), u(n, s), mu(s, s), alpha(s, s), beta(s, s),
      rho_new(s, s);
  bool have_p = false;  // P_{-1} = 0, beta_{-1} = 0

  rep.relative_residual = la::norm_fro(w) / bnorm;
  if (opts.record_history) rep.history.push_back(rep.relative_residual);
  if (rep.relative_residual <= opts.tol) {
    rep.converged = true;
    return rep;
  }

  // A rank-deficient INITIAL residual block (e.g. linearly dependent
  // right-hand sides) makes the block recurrence ill-posed from the
  // start; callers deflate by falling back to smaller blocks. This is the
  // deflation caveat of block methods the paper notes in SS II.
  if (s > 1) {
    la::Lu<cplx> lu_rho0(rho);
    if (lu_rho0.pivot_ratio() < opts.breakdown_tol)
      throw NumericalBreakdown(
          "block COCG: initial residual block is numerically rank-deficient");
  }

  double prev_relres = rep.relative_residual;
  StagnationProbe stagnation(opts, rep.relative_residual);
  for (int it = 0; it < opts.max_iter; ++it) {
    // P_j = W_j + P_{j-1} beta_{j-1}.
    if (have_p) {
      la::Matrix<cplx> pnew = w;
      la::gemm_nn(cplx{1}, p, beta, cplx{1}, pnew);
      p = std::move(pnew);
    } else {
      p = w;
      have_p = true;
    }

    // U_j = A P_j.
    a(p, u);
    rep.matvec_columns += static_cast<long>(s);

    // mu_j = U_j^T P_j (complex symmetric conjugacy matrix).
    la::gemm_tn(cplx{1}, u, p, cplx{0}, mu);

    // alpha_j = mu_j^{-1} rho_j. A tiny pivot ratio in mu is AMBIGUOUS:
    // it signals either a genuine conjugacy breakdown or benign exact
    // termination (the block Krylov space has filled out). Take the step
    // either way and decide from the residual it produces.
    la::Lu<cplx> lu_mu(mu);
    const bool mu_suspect = lu_mu.pivot_ratio() < opts.breakdown_tol;
    alpha = rho;
    lu_mu.solve_inplace(alpha);

    // Y_{j+1} = Y_j + P alpha;  W_{j+1} = W_j - U alpha.
    la::gemm_nn(cplx{1}, p, alpha, cplx{1}, y);
    la::gemm_nn(cplx{-1}, u, alpha, cplx{1}, w);

    rep.iterations = it + 1;
    rep.relative_residual = la::norm_fro(w) / bnorm;
    if (opts.record_history) rep.history.push_back(rep.relative_residual);
    if (!is_finite(rep.relative_residual))
      throw NumericalBreakdown("block COCG: non-finite residual");
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      return rep;
    }
    if (mu_suspect && rep.relative_residual >= prev_relres) {
      char msg[128];
      std::snprintf(msg, sizeof msg,
                    "block COCG: conjugacy breakdown (pivot ratio %.3e, "
                    "residual did not decrease at iteration %d)",
                    lu_mu.pivot_ratio(), it);
      throw NumericalBreakdown(msg);
    }
    prev_relres = rep.relative_residual;
    stagnation.check(rep.relative_residual, "block COCG");

    // rho_{j+1} = W^T W;  beta_j = rho_j^{-1} rho_{j+1}.
    la::gemm_tn(cplx{1}, w, w, cplx{0}, rho_new);
    la::Lu<cplx> lu_rho(rho);
    beta = rho_new;
    lu_rho.solve_inplace(beta);
    rho = rho_new;
  }
  return rep;  // not converged
}

SolveReport cocg(const BlockOpC& a, std::span<const cplx> b, std::span<cplx> y,
                 const SolverOptions& opts) {
  const std::size_t n = b.size();
  RSRPA_REQUIRE(y.size() == n);

  SolveReport rep;
  MatvecCostScope cost_scope(rep, opts);
  const double bnorm = la::nrm2(b);
  if (bnorm == 0.0) {
    std::fill(y.begin(), y.end(), cplx{});
    rep.converged = true;
    return rep;
  }

  // Wrap spans in single-column matrices for the operator interface.
  la::Matrix<cplx> xcol(n, 1), ycol(n, 1);
  auto apply = [&](std::span<const cplx> in, std::span<cplx> out) {
    std::copy(in.begin(), in.end(), xcol.col(0).begin());
    a(xcol, ycol);
    std::copy(ycol.col(0).begin(), ycol.col(0).end(), out.begin());
    rep.matvec_columns += 1;
  };

  std::vector<cplx> w(n), p(n), u(n);
  apply(y, w);
  for (std::size_t i = 0; i < n; ++i) w[i] = b[i] - w[i];
  cplx rho = la::dot_u(w, w);

  rep.relative_residual = la::nrm2(std::span<const cplx>(w)) / bnorm;
  if (opts.record_history) rep.history.push_back(rep.relative_residual);
  if (rep.relative_residual <= opts.tol) {
    rep.converged = true;
    return rep;
  }

  cplx beta{};
  bool have_p = false;
  double prev_relres = rep.relative_residual;
  StagnationProbe stagnation(opts, rep.relative_residual);
  for (int it = 0; it < opts.max_iter; ++it) {
    if (have_p) {
      for (std::size_t i = 0; i < n; ++i) p[i] = w[i] + beta * p[i];
    } else {
      p.assign(w.begin(), w.end());
      have_p = true;
    }
    apply(p, u);
    const cplx mu = la::dot_u(u, p);
    // A tiny conjugacy scalar is AMBIGUOUS — genuine breakdown or benign
    // exact termination — exactly like a tiny pivot ratio in the block
    // path above. Mirror it: take the step either way and decide from the
    // residual it produces.
    const bool mu_suspect =
        std::abs(mu) < opts.breakdown_tol *
                           la::nrm2(std::span<const cplx>(u)) *
                           la::nrm2(std::span<const cplx>(p));
    const cplx alpha = rho / mu;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += alpha * p[i];
      w[i] -= alpha * u[i];
    }
    rep.iterations = it + 1;
    rep.relative_residual = la::nrm2(std::span<const cplx>(w)) / bnorm;
    if (opts.record_history) rep.history.push_back(rep.relative_residual);
    if (!std::isfinite(rep.relative_residual))
      throw NumericalBreakdown("COCG: non-finite residual");
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      return rep;
    }
    if (mu_suspect && rep.relative_residual >= prev_relres) {
      char msg[128];
      std::snprintf(msg, sizeof msg,
                    "COCG: conjugacy breakdown (|mu| = %.3e, residual did "
                    "not decrease at iteration %d)",
                    std::abs(mu), it);
      throw NumericalBreakdown(msg);
    }
    prev_relres = rep.relative_residual;
    stagnation.check(rep.relative_residual, "COCG");
    const cplx rho_new = la::dot_u(w, w);
    beta = rho_new / rho;
    rho = rho_new;
  }
  return rep;
}

}  // namespace rsrpa::solver
