// Conjugate orthogonal conjugate residual (COCR) — the residual-smoothing
// sibling of COCG for complex symmetric systems (Sogabe & Zhang 2007,
// in the method family of paper ref [39]). Kept as an ablation companion:
// same short-term recurrence cost as COCG, typically smoother residual
// curves on the highly indefinite (j ~ n_s, k = l) Sternheimer systems.
#pragma once

#include "solver/operator.hpp"

namespace rsrpa::solver {

SolveReport cocr(const BlockOpC& a, std::span<const cplx> b, std::span<cplx> y,
                 const SolverOptions& opts = {});

}  // namespace rsrpa::solver
