#include "solver/block_cocr.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/lu.hpp"

namespace rsrpa::solver {

SolveReport block_cocr(const BlockOpC& a, const la::Matrix<cplx>& b,
                       la::Matrix<cplx>& y, const SolverOptions& opts) {
  const std::size_t n = b.rows(), s = b.cols();
  RSRPA_REQUIRE(y.rows() == n && y.cols() == s && s >= 1);

  SolveReport rep;
  MatvecCostScope cost_scope(rep, opts);
  const double bnorm = la::norm_fro(b);
  if (bnorm == 0.0) {
    y.zero();
    rep.converged = true;
    return rep;
  }

  // R = B - A Y0; AR = A R.
  la::Matrix<cplx> r(n, s), ar(n, s);
  a(y, r);
  rep.matvec_columns += static_cast<long>(s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i) r(i, j) = b(i, j) - r(i, j);

  rep.relative_residual = la::norm_fro(r) / bnorm;
  if (opts.record_history) rep.history.push_back(rep.relative_residual);
  if (rep.relative_residual <= opts.tol) {
    rep.converged = true;
    return rep;
  }

  a(r, ar);
  rep.matvec_columns += static_cast<long>(s);

  la::Matrix<cplx> p = r, ap = ar;
  la::Matrix<cplx> rho(s, s), rho_new(s, s), sigma(s, s), alpha(s, s),
      beta(s, s);
  la::gemm_tn(cplx{1}, r, ar, cplx{0}, rho);  // rho = R^T A R

  double prev_relres = rep.relative_residual;
  for (int it = 0; it < opts.max_iter; ++it) {
    // sigma = (A P)^T (A P); alpha = sigma^{-1} rho.
    la::gemm_tn(cplx{1}, ap, ap, cplx{0}, sigma);
    la::Lu<cplx> lu_sigma(sigma);
    const bool suspect = lu_sigma.pivot_ratio() < opts.breakdown_tol;
    alpha = rho;
    lu_sigma.solve_inplace(alpha);

    la::gemm_nn(cplx{1}, p, alpha, cplx{1}, y);
    la::gemm_nn(cplx{-1}, ap, alpha, cplx{1}, r);

    rep.iterations = it + 1;
    rep.relative_residual = la::norm_fro(r) / bnorm;
    if (opts.record_history) rep.history.push_back(rep.relative_residual);
    if (!std::isfinite(rep.relative_residual))
      throw NumericalBreakdown("block COCR: non-finite residual");
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      return rep;
    }
    if (suspect && rep.relative_residual >= prev_relres)
      throw NumericalBreakdown(
          "block COCR: (AP)^T(AP) breakdown without residual progress");
    prev_relres = rep.relative_residual;

    a(r, ar);
    rep.matvec_columns += static_cast<long>(s);
    la::gemm_tn(cplx{1}, r, ar, cplx{0}, rho_new);

    la::Lu<cplx> lu_rho(rho);
    beta = rho_new;
    lu_rho.solve_inplace(beta);
    rho = rho_new;

    // P = R + P beta; AP = AR + AP beta.
    la::Matrix<cplx> pnew = r;
    la::gemm_nn(cplx{1}, p, beta, cplx{1}, pnew);
    p = std::move(pnew);
    la::Matrix<cplx> apnew = ar;
    la::gemm_nn(cplx{1}, ap, beta, cplx{1}, apnew);
    ap = std::move(apnew);
  }
  return rep;
}

}  // namespace rsrpa::solver
