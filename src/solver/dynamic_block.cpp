#include "solver/dynamic_block.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "obs/event_log.hpp"
#include "solver/block_cocg.hpp"

namespace rsrpa::solver {

std::map<int, int> DynamicBlockReport::block_size_counts() const {
  std::map<int, int> counts;
  for (const ChunkRecord& c : chunks) ++counts[c.block_size];
  return counts;
}

namespace {

// Solve one chunk of columns [pos, pos + count) with block COCG, falling
// back to column-by-column COCG if the block method breaks down (linearly
// dependent residual block).
ChunkRecord solve_chunk(const BlockOpC& a, const la::Matrix<cplx>& b,
                        la::Matrix<cplx>& y, std::size_t pos,
                        std::size_t count, const DynamicBlockOptions& opts,
                        DynamicBlockReport& rep) {
  const SolverOptions& sopts = opts.solver;
  ChunkRecord rec;
  rec.block_size = static_cast<int>(count);
  rec.n_rhs = static_cast<int>(count);

  WallTimer timer;
  la::Matrix<cplx> bchunk = b.slice_cols(pos, count);
  la::Matrix<cplx> ychunk = y.slice_cols(pos, count);
  try {
    SolveReport r = block_cocg(a, bchunk, ychunk, sopts);
    rec.iterations = r.iterations;
    rec.converged = r.converged;
    rec.matvec_columns = r.matvec_columns;
  } catch (const NumericalBreakdown& breakdown) {
    // Deflation path: re-solve each column independently from the original
    // initial guess.
    rec.fallback = true;
    if (opts.events != nullptr)
      opts.events->emit(obs::events::kSingleColumnFallback, breakdown.what(),
                        {{"position", static_cast<double>(pos)},
                         {"block_size", static_cast<double>(count)}});
    ychunk = y.slice_cols(pos, count);
    rec.converged = true;
    for (std::size_t j = 0; j < count; ++j) {
      la::Matrix<cplx> b1 = b.slice_cols(pos + j, 1);
      la::Matrix<cplx> y1 = ychunk.slice_cols(j, 1);
      SolveReport r = block_cocg(a, b1, y1, sopts);
      ychunk.set_cols(j, y1);
      rec.iterations = std::max(rec.iterations, r.iterations);
      rec.converged = rec.converged && r.converged;
      rec.matvec_columns += r.matvec_columns;
    }
  }
  rep.total_matvec_columns += rec.matvec_columns;
  y.set_cols(pos, ychunk);
  rec.seconds = timer.seconds();
  rep.total_seconds += rec.seconds;
  rep.all_converged = rep.all_converged && rec.converged;
  rep.chunks.push_back(rec);
  return rec;
}

}  // namespace

DynamicBlockReport solve_dynamic_block(const BlockOpC& a,
                                       const la::Matrix<cplx>& b,
                                       la::Matrix<cplx>& y,
                                       const DynamicBlockOptions& opts) {
  const std::size_t n_rhs = b.cols();
  RSRPA_REQUIRE(y.cols() == n_rhs && y.rows() == b.rows());
  DynamicBlockReport rep;
  if (n_rhs == 0) return rep;

  const std::size_t cap = opts.max_block > 0
                              ? std::min<std::size_t>(opts.max_block, n_rhs)
                              : n_rhs;
  std::size_t pos = 0;

  if (!opts.enabled) {
    const std::size_t s = std::min<std::size_t>(
        std::max(opts.fixed_block, 1), cap);
    while (pos < n_rhs) {
      const std::size_t count = std::min(s, n_rhs - pos);
      solve_chunk(a, b, y, pos, count, opts, rep);
      pos += count;
    }
    return rep;
  }

  // Algorithm 4. Probe s = 1, then s = 2, doubling while the chunk time
  // at most doubles (per-vector time non-increasing).
  std::size_t s = 1;
  ChunkRecord first = solve_chunk(a, b, y, pos, std::min<std::size_t>(1, n_rhs - pos),
                                  opts, rep);
  pos += static_cast<std::size_t>(first.n_rhs);
  double t_old = first.seconds;

  if (pos < n_rhs && cap >= 2) {
    s = 2;
    ChunkRecord second =
        solve_chunk(a, b, y, pos, std::min<std::size_t>(2, n_rhs - pos),
                    opts, rep);
    pos += static_cast<std::size_t>(second.n_rhs);
    double t_new = second.seconds;

    while (pos < n_rhs) {
      if (t_new <= 2.0 * t_old && 2 * s <= cap) {
        s *= 2;
        t_old = t_new;
        const std::size_t count = std::min(s, n_rhs - pos);
        ChunkRecord rec = solve_chunk(a, b, y, pos, count, opts, rep);
        pos += count;
        t_new = rec.seconds;
        // A short tail chunk is not a fair probe; stop growing after it.
        if (count < s) break;
      } else {
        if (t_new > 2.0 * t_old) s = std::max<std::size_t>(1, s / 2);
        break;
      }
    }
  }

  // Solve everything remaining at the selected size.
  while (pos < n_rhs) {
    const std::size_t count = std::min(s, n_rhs - pos);
    solve_chunk(a, b, y, pos, count, opts, rep);
    pos += count;
  }
  return rep;
}

}  // namespace rsrpa::solver
