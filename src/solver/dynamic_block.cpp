#include "solver/dynamic_block.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "obs/event_log.hpp"
#include "solver/block_cocg.hpp"
#include "solver/resilience.hpp"

namespace rsrpa::solver {

std::map<int, int> DynamicBlockReport::block_size_counts() const {
  std::map<int, int> counts;
  for (const ChunkRecord& c : chunks) ++counts[c.block_size];
  return counts;
}

namespace {

// Solve one chunk of columns [pos, pos + count) through the breakdown
// recovery ladder (solver/resilience.hpp). Every outcome — including a
// rethrown breakdown when the ladder is disabled or exhausted with
// quarantine off — is recorded in the report first, so no chunk's timing
// or accounting is ever dropped on the unwind.
ChunkRecord solve_chunk(const BlockOpC& a, const la::Matrix<cplx>& b,
                        la::Matrix<cplx>& y, std::size_t pos,
                        std::size_t count, const DynamicBlockOptions& opts,
                        DynamicBlockReport& rep) {
  ChunkRecord rec;
  rec.block_size = static_cast<int>(count);
  rec.n_rhs = static_cast<int>(count);

  WallTimer timer;
  la::Matrix<cplx> bchunk = b.slice_cols(pos, count);
  la::Matrix<cplx> ychunk = y.slice_cols(pos, count);

  auto record = [&](bool rethrowing) {
    rep.total_matvec_columns += rec.matvec_columns;
    rep.total_matvec_bytes += static_cast<double>(rec.matvec_columns) *
                              opts.solver.matvec_bytes_per_column;
    rep.total_matvec_flops += static_cast<double>(rec.matvec_columns) *
                              opts.solver.matvec_flops_per_column;
    rec.seconds = timer.seconds();
    rep.total_seconds += rec.seconds;
    rep.total_restarts += rec.restarts;
    rep.total_deflations += rec.deflations;
    rep.total_solver_swaps += rec.solver_swaps;
    rep.all_converged = rep.all_converged && rec.converged && !rethrowing;
    rep.chunks.push_back(rec);
  };

  try {
    ResilientSolveResult r = resilient_block_solve(
        a, bchunk, ychunk, opts.solver, opts.resilience, pos, opts.events);
    rec.iterations = r.report.iterations;
    rec.converged = r.report.converged;
    rec.matvec_columns = r.report.matvec_columns;
    rec.restarts = r.restarts;
    rec.deflations = r.deflations;
    rec.solver_swaps = r.solver_swaps;
    rec.quarantined = static_cast<int>(r.quarantined.size());
    rec.fallback = rec.deflations > 0 || rec.solver_swaps > 0;
    rep.quarantined_columns.insert(rep.quarantined_columns.end(),
                                   r.quarantined.begin(), r.quarantined.end());
  } catch (const NumericalBreakdown&) {
    // Only reachable with resilience disabled (or quarantine switched
    // off). Record the chunk as failed — timing and position survive in
    // the report even though the exception propagates.
    rec.converged = false;
    rec.fallback = true;
    y.set_cols(pos, ychunk);
    record(/*rethrowing=*/true);
    throw;
  }
  y.set_cols(pos, ychunk);
  record(/*rethrowing=*/false);
  return rec;
}

}  // namespace

DynamicBlockReport solve_dynamic_block(const BlockOpC& a,
                                       const la::Matrix<cplx>& b,
                                       la::Matrix<cplx>& y,
                                       const DynamicBlockOptions& opts) {
  const std::size_t n_rhs = b.cols();
  RSRPA_REQUIRE(y.cols() == n_rhs && y.rows() == b.rows());
  DynamicBlockReport rep;
  if (n_rhs == 0) return rep;

  const std::size_t cap = opts.max_block > 0
                              ? std::min<std::size_t>(opts.max_block, n_rhs)
                              : n_rhs;
  std::size_t pos = 0;

  if (!opts.enabled) {
    const std::size_t s = std::min<std::size_t>(
        std::max(opts.fixed_block, 1), cap);
    while (pos < n_rhs) {
      const std::size_t count = std::min(s, n_rhs - pos);
      solve_chunk(a, b, y, pos, count, opts, rep);
      pos += count;
    }
    return rep;
  }

  // Algorithm 4. Probe s = 1, then s = 2, doubling while the chunk time
  // at most doubles (per-vector time non-increasing). A chunk that needed
  // recovery (restart, deflation, solver swap, quarantine) reports the
  // wall time of the recovery work, not of a representative block solve,
  // so it never feeds the timing probe — a poisoned probe would skew the
  // doubling decision for the rest of the batch. On a clean run the chunk
  // sequence below is identical to the pre-ladder code path.
  std::size_t s = 1;
  double t_old = -1.0;
  while (pos < n_rhs) {
    ChunkRecord first = solve_chunk(a, b, y, pos, 1, opts, rep);
    pos += static_cast<std::size_t>(first.n_rhs);
    if (!first.recovered()) {
      t_old = first.seconds;
      break;
    }
  }

  if (t_old >= 0.0 && pos < n_rhs && cap >= 2) {
    s = 2;
    double t_new = -1.0;
    while (pos < n_rhs) {
      const std::size_t count = std::min<std::size_t>(2, n_rhs - pos);
      ChunkRecord second = solve_chunk(a, b, y, pos, count, opts, rep);
      pos += static_cast<std::size_t>(second.n_rhs);
      if (second.recovered()) continue;  // poisoned probe: try again
      if (second.n_rhs < 2) break;       // short tail is not a fair probe
      t_new = second.seconds;
      break;
    }

    if (t_new >= 0.0) {
      while (pos < n_rhs) {
        if (t_new <= 2.0 * t_old && 2 * s <= cap) {
          s *= 2;
          t_old = t_new;
          const std::size_t count = std::min(s, n_rhs - pos);
          ChunkRecord rec = solve_chunk(a, b, y, pos, count, opts, rep);
          pos += count;
          if (rec.recovered()) {
            // Unusable timing: revert to the last proven size and stop
            // growing rather than double on recovery wall time.
            s /= 2;
            break;
          }
          t_new = rec.seconds;
          // A short tail chunk is not a fair probe; stop growing after it.
          if (count < s) break;
        } else {
          if (t_new > 2.0 * t_old) s = std::max<std::size_t>(1, s / 2);
          break;
        }
      }
    }
  }

  // Solve everything remaining at the selected size.
  while (pos < n_rhs) {
    const std::size_t count = std::min(s, n_rhs - pos);
    solve_chunk(a, b, y, pos, count, opts, rep);
    pos += count;
  }
  return rep;
}

}  // namespace rsrpa::solver
