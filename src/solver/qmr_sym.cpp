#include "solver/qmr_sym.hpp"

#include <cmath>
#include <vector>

#include "la/blas.hpp"

namespace rsrpa::solver {

// QMR smoothing applied on top of the COCG recurrence: run the standard
// conjugate-orthogonal iteration and quasi-minimize over the last two
// iterates. This is the "QMR from coupled two-term recurrences" form
// specialized to A = A^T, where the left and right Lanczos vectors
// coincide and all inner products are the unconjugated bilinear form.
SolveReport qmr_sym(const BlockOpC& a, std::span<const cplx> b,
                    std::span<cplx> y, const SolverOptions& opts) {
  const std::size_t n = b.size();
  RSRPA_REQUIRE(y.size() == n);

  SolveReport rep;
  MatvecCostScope cost_scope(rep, opts);
  const double bnorm = la::nrm2(b);
  if (bnorm == 0.0) {
    std::fill(y.begin(), y.end(), cplx{});
    rep.converged = true;
    return rep;
  }

  la::Matrix<cplx> xcol(n, 1), ycol(n, 1);
  auto apply = [&](std::span<const cplx> in, std::span<cplx> out) {
    std::copy(in.begin(), in.end(), xcol.col(0).begin());
    a(xcol, ycol);
    std::copy(ycol.col(0).begin(), ycol.col(0).end(), out.begin());
    rep.matvec_columns += 1;
  };

  // Underlying COCG sequence (x_k, r_k) plus QMR-smoothed sequence
  // (y = s_k, rs_k): s_k = s_{k-1} + theta^2 eta (x_k - s_{k-1}) in the
  // classical residual-smoothing formulation of QMR.
  std::vector<cplx> x(y.begin(), y.end());
  std::vector<cplx> r(n), p(n), u(n), rs(n);
  apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  rs = r;

  cplx rho = la::dot_u(r, r);
  double tau = la::nrm2(std::span<const cplx>(r));  // QMR quasi-residual
  rep.relative_residual = tau / bnorm;
  if (opts.record_history) rep.history.push_back(rep.relative_residual);
  if (rep.relative_residual <= opts.tol) {
    rep.converged = true;
    std::copy(x.begin(), x.end(), y.begin());
    return rep;
  }

  cplx beta{};
  bool have_p = false;

  for (int it = 0; it < opts.max_iter; ++it) {
    if (have_p) {
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    } else {
      p = r;
      have_p = true;
    }
    apply(p, u);
    const cplx mu = la::dot_u(u, p);
    if (std::abs(mu) == 0.0)
      throw NumericalBreakdown("QMR_SYM: conjugacy scalar vanished");
    const cplx alpha = rho / mu;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * u[i];
    }

    // Minimal-residual smoothing (Schoenauer/Weiss — equivalent to QMR up
    // to the quasi-norm): choose gamma minimizing ||rs + gamma (r - rs)||
    // in the TRUE Euclidean norm and update the smoothed pair (y, rs).
    //   gamma = -<d, rs> / <d, d>,  d = r - rs   (Hermitian inner product)
    cplx num{};
    double den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const cplx d = r[i] - rs[i];
      num -= std::conj(d) * rs[i];
      den += std::norm(d);
    }
    const cplx gamma = den > 0.0 ? num / den : cplx{};
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += gamma * (x[i] - y[i]);
      rs[i] += gamma * (r[i] - rs[i]);
    }

    tau = la::nrm2(std::span<const cplx>(rs));
    rep.iterations = it + 1;
    rep.relative_residual = tau / bnorm;
    if (opts.record_history) rep.history.push_back(rep.relative_residual);
    if (!std::isfinite(rep.relative_residual))
      throw NumericalBreakdown("QMR_SYM: non-finite residual");
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      return rep;
    }
    const cplx rho_new = la::dot_u(r, r);
    beta = rho_new / rho;
    rho = rho_new;
  }
  return rep;
}

}  // namespace rsrpa::solver
