// Inverse-Laplacian preconditioning for the Sternheimer systems — the
// paper's SS V future-work item, implemented here for the A4 ablation.
//
// The dominant term of A_{j,k} = H - lambda_j I + i omega_k I is the
// kinetic operator -1/2 Laplacian, so M = sigma0 I + 1/2 (-Laplacian) is a
// natural real SPD preconditioner with a fast spectral (Kronecker) apply.
// To keep the preconditioned operator complex SYMMETRIC (the property
// COCG needs), the split form M^{-1/2} A M^{-1/2} is used:
//
//   solve  (M^{-1/2} A M^{-1/2}) Yt = M^{-1/2} B,   Y = M^{-1/2} Yt.
#pragma once

#include "poisson/kronecker.hpp"
#include "solver/operator.hpp"

namespace rsrpa::solver {

/// Applies M^{-1/2} with M = sigma0 I - 1/2 Laplacian to a complex block
/// (spectrally, via the Kronecker decomposition; real and imaginary parts
/// are independent).
class ShiftedLaplacianPrecond {
 public:
  ShiftedLaplacianPrecond(const poisson::KroneckerLaplacian& klap,
                          double sigma0);

  void apply_inv_sqrt(const la::Matrix<cplx>& in, la::Matrix<cplx>& out) const;

 private:
  const poisson::KroneckerLaplacian& klap_;
  double sigma0_;
};

/// Wrap an operator into its split-preconditioned form
/// A' = M^{-1/2} A M^{-1/2}; A' is complex symmetric whenever A is.
BlockOpC make_split_preconditioned_op(const BlockOpC& a,
                                      const ShiftedLaplacianPrecond& precond);

/// Convenience driver: full split-preconditioned block COCG solve of
/// A Y = B (handles the right-hand-side and solution transforms).
SolveReport preconditioned_block_cocg(const BlockOpC& a,
                                      const ShiftedLaplacianPrecond& precond,
                                      const la::Matrix<cplx>& b,
                                      la::Matrix<cplx>& y,
                                      const SolverOptions& opts = {});

}  // namespace rsrpa::solver
