// Operator and report types shared by the Krylov solvers.
//
// The solvers are matrix-free: a coefficient operator is any callable
// applying A to a block of complex vectors. The Sternheimer systems bind
// this to Hamiltonian::apply_shifted_block; unit tests bind it to small
// dense matrices.
#pragma once

#include <functional>
#include <vector>

#include "la/matrix.hpp"

namespace rsrpa::solver {

using la::cplx;

/// out = A * in for a block of complex vectors (same shapes).
using BlockOpC = std::function<void(const la::Matrix<cplx>&, la::Matrix<cplx>&)>;

struct SolverOptions {
  int max_iter = 1000;
  double tol = 1e-10;             ///< relative Frobenius residual (Eq. 10)
  double breakdown_tol = 1e-14;   ///< pivot-ratio floor for s x s solves
  bool record_history = false;    ///< store per-iteration relative residuals
  /// Stagnation detection: if > 0, COCG throws NumericalBreakdown when the
  /// relative residual fails to improve by stagnation_factor over this
  /// many consecutive iterations, handing control to the recovery ladder
  /// (solver/resilience.hpp) instead of spinning to max_iter. 0 = off.
  int stagnation_window = 0;
  double stagnation_factor = 0.99;  ///< required improvement per window
};

struct SolveReport {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  long matvec_columns = 0;  ///< # of single-vector operator applications
  std::vector<double> history;  ///< per-iteration relres if recorded
};

}  // namespace rsrpa::solver
