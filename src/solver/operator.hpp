// Operator and report types shared by the Krylov solvers.
//
// The solvers are matrix-free: a coefficient operator is any callable
// applying A to a block of complex vectors. The Sternheimer systems bind
// this to ShiftedHamiltonianOp (the fused single-sweep pipeline over
// Hamiltonian::apply_shifted_block); unit tests bind it to small dense
// matrices.
#pragma once

#include <functional>
#include <vector>

#include "la/matrix.hpp"

namespace rsrpa::ham {
class Hamiltonian;
}  // namespace rsrpa::ham

namespace rsrpa::solver {

using la::cplx;

/// out = A * in for a block of complex vectors (same shapes).
using BlockOpC = std::function<void(const la::Matrix<cplx>&, la::Matrix<cplx>&)>;

struct SolverOptions {
  int max_iter = 1000;
  double tol = 1e-10;             ///< relative Frobenius residual (Eq. 10)
  double breakdown_tol = 1e-14;   ///< pivot-ratio floor for s x s solves
  bool record_history = false;    ///< store per-iteration relative residuals
  /// Stagnation detection: if > 0, COCG throws NumericalBreakdown when the
  /// relative residual fails to improve by stagnation_factor over this
  /// many consecutive iterations, handing control to the recovery ladder
  /// (solver/resilience.hpp) instead of spinning to max_iter. 0 = off.
  int stagnation_window = 0;
  double stagnation_factor = 0.99;  ///< required improvement per window
  /// Per-column cost model of the coefficient operator (bytes moved /
  /// flops per single-vector application). Filled by callers that know
  /// their operator (e.g. from ShiftedHamiltonianOp) so SolveReport can
  /// expose achieved arithmetic intensity; 0 = unknown.
  double matvec_bytes_per_column = 0.0;
  double matvec_flops_per_column = 0.0;
};

struct SolveReport {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  long matvec_columns = 0;  ///< # of single-vector operator applications
  /// Estimated operator traffic/work: matvec_columns times the per-column
  /// cost model in SolverOptions (0 when the model was not provided).
  double matvec_bytes = 0.0;
  double matvec_flops = 0.0;
  std::vector<double> history;  ///< per-iteration relres if recorded
};

/// Fills SolveReport::matvec_bytes/matvec_flops from matvec_columns and
/// the per-column cost model on every exit path (including throws, where
/// the ladder folds partially filled reports). One per solver function.
class MatvecCostScope {
 public:
  MatvecCostScope(SolveReport& rep, const SolverOptions& opts)
      : rep_(rep), opts_(opts) {}
  ~MatvecCostScope() {
    rep_.matvec_bytes =
        static_cast<double>(rep_.matvec_columns) * opts_.matvec_bytes_per_column;
    rep_.matvec_flops =
        static_cast<double>(rep_.matvec_columns) * opts_.matvec_flops_per_column;
  }
  MatvecCostScope(const MatvecCostScope&) = delete;
  MatvecCostScope& operator=(const MatvecCostScope&) = delete;

 private:
  SolveReport& rep_;
  const SolverOptions& opts_;
};

/// Running totals over operator applications (single-owner, like
/// KernelTimers: one thread drives a given op instance).
struct ApplyCounters {
  long applies = 0;    ///< block applications
  long columns = 0;    ///< single-vector applications
  double bytes = 0.0;  ///< estimated bytes moved (cost model x columns)
  double flops = 0.0;  ///< estimated flops (cost model x columns)
  double seconds = 0.0;  ///< measured wall time inside the operator

  void merge(const ApplyCounters& o) {
    applies += o.applies;
    columns += o.columns;
    bytes += o.bytes;
    flops += o.flops;
    seconds += o.seconds;
  }
  [[nodiscard]] double arithmetic_intensity() const {
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
};

/// Estimated per-column memory traffic and flops of one application of
/// (H - lambda I + i omega I) to a complex vector, for the fused
/// single-sweep pipeline or the seed multi-sweep reference schedule.
/// The sweep counting follows the paper's SS III-C fast-memory model:
/// stencil neighbors hit in cache, so each sweep reads its operands once.
struct ApplyCostModel {
  double bytes_per_column = 0.0;
  double flops_per_column = 0.0;
};

[[nodiscard]] ApplyCostModel shifted_apply_cost(const ham::Hamiltonian& h,
                                                bool fused);

/// The Sternheimer coefficient operator A_{j,k} = H - lambda_j I
/// + i omega_k I as a first-class block operator: chi0 binds this (rather
/// than a per-column lambda) so every solve goes through the fused
/// single-sweep pipeline and per-apply bytes/flops/seconds accumulate in
/// one place. Convertible to BlockOpC by reference capture.
class ShiftedHamiltonianOp {
 public:
  ShiftedHamiltonianOp(const ham::Hamiltonian& h, double lambda, double omega);

  void apply(const la::Matrix<cplx>& in, la::Matrix<cplx>& out) const;
  void operator()(const la::Matrix<cplx>& in, la::Matrix<cplx>& out) const {
    apply(in, out);
  }

  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] double omega() const { return omega_; }
  [[nodiscard]] double bytes_per_column() const {
    return cost_.bytes_per_column;
  }
  [[nodiscard]] double flops_per_column() const {
    return cost_.flops_per_column;
  }
  /// Accumulated telemetry (single-owner; reset between measurements).
  [[nodiscard]] const ApplyCounters& counters() const { return counters_; }
  void reset_counters() const { counters_ = ApplyCounters{}; }

 private:
  const ham::Hamiltonian* h_;
  double lambda_ = 0.0;
  double omega_ = 0.0;
  ApplyCostModel cost_;
  mutable ApplyCounters counters_;
};

}  // namespace rsrpa::solver
