// Galerkin-projection initial guess — Eq. (13) of the paper.
//
// The Sternheimer coefficient matrix A_{j,k} = H - lambda_j I + i omega_k I
// shares the eigenvectors Psi of H computed in the prior KS-DFT step, with
// eigenvalues shifted by (-lambda_j + i omega_k). Projecting the right-hand
// side onto the known occupied manifold,
//
//   Y_0 = Psi (E - lambda_j I + i omega_k I)^{-1} Psi^T B,
//
// deflates the most negative real-part eigenvectors from the initial
// residual, taming the near-(n_s, l) systems (paper SS III-F).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace rsrpa::solver {

/// Compute Y_0 for the real right-hand-side block `b`. `psi` holds the n_s
/// l2-orthonormal eigenvectors of H column-wise, `evals` their
/// eigenvalues.
la::Matrix<la::cplx> galerkin_initial_guess(const la::Matrix<double>& psi,
                                            const std::vector<double>& evals,
                                            double lambda_j, double omega,
                                            const la::Matrix<double>& b);

}  // namespace rsrpa::solver
