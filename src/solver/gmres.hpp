// Restarted GMRES — the no-short-recurrence baseline of the paper.
//
// The paper motivates COCG by noting that GMRES "becomes computationally
// expensive as the iteration count grows due to lacking a short-term
// recurrence" (SS III-B). This implementation exists to demonstrate that
// trade-off in the A2 ablation: it stores the full Arnoldi basis per
// restart cycle and orthogonalizes each new direction against all of it.
#pragma once

#include "solver/operator.hpp"

namespace rsrpa::solver {

struct GmresOptions {
  int max_iter = 1000;   ///< total Arnoldi steps across restarts
  int restart = 50;      ///< Krylov dimension per cycle
  double tol = 1e-10;    ///< relative residual
  bool record_history = false;
};

/// Solve A y = b (single right-hand side) with restarted GMRES; `y`
/// carries the initial guess in and the solution out.
SolveReport gmres(const BlockOpC& a, std::span<const cplx> b,
                  std::span<cplx> y, const GmresOptions& opts = {});

}  // namespace rsrpa::solver
