#include "solver/galerkin_guess.hpp"

#include "la/blas.hpp"

namespace rsrpa::solver {

la::Matrix<la::cplx> galerkin_initial_guess(const la::Matrix<double>& psi,
                                            const std::vector<double>& evals,
                                            double lambda_j, double omega,
                                            const la::Matrix<double>& b) {
  const std::size_t n = psi.rows(), ns = psi.cols(), s = b.cols();
  RSRPA_REQUIRE(evals.size() == ns && b.rows() == n);

  // C = Psi^T B (real), then scale row m by 1/(lambda_m - lambda_j + i w).
  la::Matrix<double> c(ns, s);
  la::gemm_tn(1.0, psi, b, 0.0, c);

  la::Matrix<double> c_re(ns, s), c_im(ns, s);
  for (std::size_t m = 0; m < ns; ++m) {
    const double dr = evals[m] - lambda_j;
    const double denom = dr * dr + omega * omega;
    // 1/(dr + i w) = (dr - i w)/denom.
    const double fr = dr / denom;
    const double fi = -omega / denom;
    for (std::size_t j = 0; j < s; ++j) {
      c_re(m, j) = fr * c(m, j);
      c_im(m, j) = fi * c(m, j);
    }
  }

  // Y0 = Psi * C (complex) done as two real products.
  la::Matrix<double> y_re(n, s), y_im(n, s);
  la::gemm_nn(1.0, psi, c_re, 0.0, y_re);
  la::gemm_nn(1.0, psi, c_im, 0.0, y_im);

  la::Matrix<la::cplx> y0(n, s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < n; ++i) y0(i, j) = {y_re(i, j), y_im(i, j)};
  return y0;
}

}  // namespace rsrpa::solver
