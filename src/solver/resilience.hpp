// Breakdown-recovery ladder and deterministic fault injection for the
// Sternheimer solver stack.
//
// Block Krylov methods are breakdown-prone by construction (the deflation
// caveat of paper SS II): a rank-deficient residual block or a vanishing
// conjugacy matrix throws NumericalBreakdown out of block COCG. At scale
// a single ill-conditioned chunk must degrade a run, not kill it, so
// resilient_block_solve escalates through a fixed ladder:
//
//   rung 1  residual-replacement restart — re-enter block COCG from the
//           current iterate (or from the entry guess if the iterate was
//           poisoned by non-finite values). Recovers transient faults and
//           breakdowns where real progress was made before the stall.
//   rung 2  block-size halving deflation — split the block in two and
//           recurse, down to single columns. Recovers linearly dependent
//           right-hand sides (the classic block-method failure).
//   rung 3  solver swap — for a surviving single column, try block COCR,
//           then symmetric QMR, then GMRES. GMRES uses Hermitian inner
//           products, so it survives the quasi-null vectors (w^T w = 0
//           with w != 0) that break every bilinear-form method.
//   rung 4  quarantine — restore the entry guess for the column, record
//           its index, emit a column_quarantine event, and return
//           non-converged instead of throwing. The drivers surface the
//           affected quadrature points in the RunReport.
//
// Every rung emits structured obs events (solver_breakdown,
// solver_restart, block_deflation, solver_swap, column_quarantine), and
// the aggregate report's matvec_columns counts every operator column
// applied, including failed attempts — accounting survives the unwind.
//
// FaultInjectingOp wraps any BlockOpC with deterministic, config-driven
// fault injection (NaN matvec, perturbed matvec, zeroed matvec) so every
// rung is exercisable under ctest. Faults are seeded via Rng::derive on
// the apply index, never on thread identity, so injected runs are bitwise
// reproducible at any RSRPA_THREADS.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "solver/operator.hpp"

namespace rsrpa::obs {
class EventLog;
}  // namespace rsrpa::obs

namespace rsrpa::solver {

/// What an injected fault does to the wrapped operator's output.
enum class FaultMode {
  kNone = 0,      ///< injection disabled (the wrapper is never installed)
  kNanMatvec,     ///< poison out(0, 0) with a quiet NaN
  kPerturbMatvec, ///< add a seeded uniform perturbation to every entry
  kZeroMatvec,    ///< zero the output block (forces a conjugacy breakdown)
};

/// Parse "none" / "nan" / "perturb" / "zero" (config spelling).
FaultMode fault_mode_from_string(const std::string& s);

struct FaultInjectionOptions {
  FaultMode mode = FaultMode::kNone;
  long at_apply = 1;    ///< 0-based block-apply index of the first fault
  long period = 0;      ///< 0 = fire once at at_apply; else refire every period
  int max_faults = 1;   ///< total fault budget for this wrapper instance
  double magnitude = 1e-2;  ///< perturbation scale (kPerturbMatvec)
  int orbital = -1;     ///< chi0 only: restrict to occupied orbital j; -1 = all
  std::uint64_t seed = 0xfa171788cULL;  ///< Rng::derive base for perturbations
};

/// Deterministic fault-injecting wrapper around a BlockOpC. Copyable with
/// shared counters (std::function copies its target), so the apply index
/// advances no matter which copy is invoked. One instance is created per
/// Sternheimer solve (per occupied orbital), so the counter — and hence
/// the fault placement — is independent of the thread schedule.
class FaultInjectingOp {
 public:
  FaultInjectingOp(BlockOpC inner, const FaultInjectionOptions& opts);

  void operator()(const la::Matrix<cplx>& in, la::Matrix<cplx>& out) const;

  /// Block applications seen so far (across all copies).
  [[nodiscard]] long applies() const;
  /// Faults actually injected so far (across all copies).
  [[nodiscard]] long faults_injected() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// RAII selector for per-quadrature-point fault injection. The RPA
/// drivers honor FAULT_OMEGA by flipping the live operator's fault mode
/// before every point; this guard owns that mutation and restores the
/// originally requested mode when it leaves scope (normally or via an
/// exception), so the operator can never be left in whatever the last
/// point happened to select.
class FaultModeScope {
 public:
  /// Captures the mode currently in `slot` as the requested one.
  explicit FaultModeScope(FaultMode& slot) : slot_(slot), requested_(slot) {}
  ~FaultModeScope() { slot_ = requested_; }
  FaultModeScope(const FaultModeScope&) = delete;
  FaultModeScope& operator=(const FaultModeScope&) = delete;

  /// The injection mode the run configuration asked for.
  [[nodiscard]] FaultMode requested() const { return requested_; }

  /// Arm the slot for quadrature point `k`: the requested mode when the
  /// fault targets k (fault_omega < 0 targets every point), else kNone.
  void select_for_point(int k, int fault_omega) {
    slot_ = (fault_omega < 0 || fault_omega == k) ? requested_
                                                  : FaultMode::kNone;
  }

 private:
  FaultMode& slot_;
  FaultMode requested_;
};

/// Recovery-ladder policy. Defaults enable every rung; individual rungs
/// can be switched off for ablations (disabling quarantine restores the
/// legacy throw-on-exhaustion behavior).
struct ResilienceOptions {
  bool enabled = true;      ///< false = plain block COCG, exceptions fly
  int max_restarts = 1;     ///< rung 1: residual-replacement restarts per block
  bool deflate = true;      ///< rung 2: recursive block halving
  bool solver_swap = true;  ///< rung 3: COCR -> QMR -> GMRES for single columns
  bool quarantine = true;   ///< rung 4: mark columns failed instead of throwing
};

/// Outcome of one ladder-protected block solve.
struct ResilientSolveResult {
  SolveReport report;   ///< aggregate: worst residual, max iterations,
                        ///< matvec_columns counts FAILED attempts too
  int restarts = 0;     ///< rung-1 activations
  int deflations = 0;   ///< rung-2 activations (one per split)
  int solver_swaps = 0; ///< rung-3 attempts (one per alternative solver tried)
  std::vector<long> quarantined;  ///< global column indices given up on
};

/// Solve A Y = B through the recovery ladder. `y` carries initial guesses
/// in, solutions out; quarantined columns come back holding their entry
/// guess. `col0` offsets the recorded column indices (callers pass the
/// chunk position so quarantine lists are global). `events` (optional)
/// receives the structured rung events. Throws NumericalBreakdown only
/// when the ladder is exhausted AND opts.quarantine is false, or when
/// opts.enabled is false and the primary solver breaks down.
ResilientSolveResult resilient_block_solve(const BlockOpC& a,
                                           const la::Matrix<cplx>& b,
                                           la::Matrix<cplx>& y,
                                           const SolverOptions& sopts,
                                           const ResilienceOptions& opts,
                                           std::size_t col0 = 0,
                                           obs::EventLog* events = nullptr);

}  // namespace rsrpa::solver
