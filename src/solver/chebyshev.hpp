// Generic scaled Chebyshev polynomial filter on a real block operator.
//
// Shared by the CheFSI ground-state solver (filtering H) and the RPA
// subspace iteration (filtering nu^{1/2} chi0 nu^{1/2}, Algorithm 5).
// Components of V with operator eigenvalues inside [a, b] are damped to
// |p| <= 1 while everything below a is amplified; a0 (a lower estimate of
// the spectrum) sets the stable scaling of Zhou et al. (paper ref [34]).
//
// Two bindings: chebyshev_filter_fused drives a fused three-term step
// operator (out = c1 A in + c0 in + c2 extra in ONE pass — the
// Hamiltonian folds the scalars into its single-sweep kernel), rotating
// three block buffers instead of copying V each iteration.
// chebyshev_filter_op adapts any plain BlockOpR to the fused recurrence
// (apply, then a separate elementwise combine).
#pragma once

#include <functional>

#include "la/matrix.hpp"

namespace rsrpa::solver {

/// out = A * in for a block of real vectors.
using BlockOpR =
    std::function<void(const la::Matrix<double>&, la::Matrix<double>&)>;

/// One fused three-term step: out = c1 * (A in) + c0 * in + c2 * extra
/// (extra may be null, in which case c2 is unused). Implementations fold
/// the scalars into the operator sweep where they can.
using FilterStepOpR = std::function<void(
    const la::Matrix<double>& in, la::Matrix<double>& out, double c1,
    double c0, const la::Matrix<double>* extra, double c2)>;

/// In-place V <- p_degree(A) V damping [a, b], expressed entirely in
/// fused three-term steps. No per-iteration block copies: the V_{k-1},
/// V_k, V_{k+1} buffers rotate.
void chebyshev_filter_fused(const FilterStepOpR& step, la::Matrix<double>& v,
                            int degree, double a, double b, double a0);

/// In-place V <- p_degree(A) V damping [a, b] for a plain block operator
/// (adapter over chebyshev_filter_fused).
void chebyshev_filter_op(const BlockOpR& a_op, la::Matrix<double>& v,
                         int degree, double a, double b, double a0);

}  // namespace rsrpa::solver
