// Generic scaled Chebyshev polynomial filter on a real block operator.
//
// Shared by the CheFSI ground-state solver (filtering H) and the RPA
// subspace iteration (filtering nu^{1/2} chi0 nu^{1/2}, Algorithm 5).
// Components of V with operator eigenvalues inside [a, b] are damped to
// |p| <= 1 while everything below a is amplified; a0 (a lower estimate of
// the spectrum) sets the stable scaling of Zhou et al. (paper ref [34]).
#pragma once

#include <functional>

#include "la/matrix.hpp"

namespace rsrpa::solver {

/// out = A * in for a block of real vectors.
using BlockOpR =
    std::function<void(const la::Matrix<double>&, la::Matrix<double>&)>;

/// In-place V <- p_degree(A) V damping [a, b].
void chebyshev_filter_op(const BlockOpR& a_op, la::Matrix<double>& v,
                         int degree, double a, double b, double a0);

}  // namespace rsrpa::solver
