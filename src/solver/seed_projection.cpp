#include "solver/seed_projection.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace rsrpa::solver {

SolveReport cocg_store_basis(const BlockOpC& a, std::span<const cplx> b,
                             std::span<cplx> y, SeedBasis& basis,
                             const SolverOptions& opts) {
  const std::size_t n = b.size();
  RSRPA_REQUIRE(y.size() == n);

  SolveReport rep;
  MatvecCostScope cost_scope(rep, opts);
  basis.directions = la::Matrix<cplx>(n, 0);
  basis.mu.clear();

  const double bnorm = la::nrm2(b);
  if (bnorm == 0.0) {
    std::fill(y.begin(), y.end(), cplx{});
    rep.converged = true;
    return rep;
  }

  la::Matrix<cplx> xcol(n, 1), ycol(n, 1);
  auto apply = [&](std::span<const cplx> in, std::span<cplx> out) {
    std::copy(in.begin(), in.end(), xcol.col(0).begin());
    a(xcol, ycol);
    std::copy(ycol.col(0).begin(), ycol.col(0).end(), out.begin());
    rep.matvec_columns += 1;
  };

  std::vector<cplx> w(n), p(n), u(n);
  apply(y, w);
  for (std::size_t i = 0; i < n; ++i) w[i] = b[i] - w[i];
  cplx rho = la::dot_u(w, w);
  rep.relative_residual = la::nrm2(std::span<const cplx>(w)) / bnorm;
  if (rep.relative_residual <= opts.tol) {
    rep.converged = true;
    return rep;
  }

  // Pre-size the stored basis to max_iter columns; shrink on exit.
  la::Matrix<cplx> store(n, static_cast<std::size_t>(opts.max_iter));
  cplx beta{};
  bool have_p = false;
  int k = 0;
  for (int it = 0; it < opts.max_iter; ++it) {
    if (have_p) {
      for (std::size_t i = 0; i < n; ++i) p[i] = w[i] + beta * p[i];
    } else {
      p.assign(w.begin(), w.end());
      have_p = true;
    }
    apply(p, u);
    const cplx mu = la::dot_u(u, p);
    if (std::abs(mu) == 0.0)
      throw NumericalBreakdown("seed COCG: conjugacy scalar vanished");

    std::copy(p.begin(), p.end(), store.col(static_cast<std::size_t>(k)).begin());
    basis.mu.push_back(mu);
    ++k;

    const cplx alpha = rho / mu;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += alpha * p[i];
      w[i] -= alpha * u[i];
    }
    rep.iterations = it + 1;
    rep.relative_residual = la::nrm2(std::span<const cplx>(w)) / bnorm;
    if (!std::isfinite(rep.relative_residual))
      throw NumericalBreakdown("seed COCG: non-finite residual");
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      break;
    }
    const cplx rho_new = la::dot_u(w, w);
    beta = rho_new / rho;
    rho = rho_new;
  }

  basis.directions = store.slice_cols(0, static_cast<std::size_t>(k));
  return rep;
}

la::Matrix<cplx> seed_project(const SeedBasis& basis,
                              const la::Matrix<cplx>& b) {
  const std::size_t n = b.rows(), s = b.cols();
  const std::size_t k = basis.directions.cols();
  RSRPA_REQUIRE(basis.directions.rows() == n && basis.mu.size() == k);

  // C = P^T B (unconjugated), then scale row j by 1/mu_j, then Y0 = P C.
  la::Matrix<cplx> coef(k, s);
  la::gemm_tn(cplx{1}, basis.directions, b, cplx{0}, coef);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t c = 0; c < s; ++c) coef(j, c) /= basis.mu[j];
  la::Matrix<cplx> y0(n, s);
  la::gemm_nn(cplx{1}, basis.directions, coef, cplx{0}, y0);
  return y0;
}

}  // namespace rsrpa::solver
