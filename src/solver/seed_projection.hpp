// Seed projection for multiple right-hand sides — the ALTERNATIVE the
// paper considers and rejects in SS II ("seed methods are not considered
// in this work ... right-hand side vectors are effectively random").
//
// Implemented here so the A5 ablation can test that claim: solve one seed
// system with COCG while storing the A-conjugate direction basis, then
// Galerkin-project the remaining right-hand sides onto the seed Krylov
// subspace. Because COCG directions satisfy p_i^T A p_j = delta_ij mu_i
// in the unconjugated bilinear form, the projection is a cheap diagonal
// solve:  y0 = sum_j p_j (p_j^T b) / mu_j.
#pragma once

#include "solver/operator.hpp"

namespace rsrpa::solver {

/// The stored seed Krylov data: COCG search directions and their
/// conjugacy scalars mu_j = p_j^T A p_j.
struct SeedBasis {
  la::Matrix<cplx> directions;  ///< n x k, one column per iteration
  std::vector<cplx> mu;         ///< conjugacy scalars, size k
};

/// COCG on A y = b that additionally records the direction basis.
/// Identical iterates to cocg(); memory grows by one n-vector/iteration.
SolveReport cocg_store_basis(const BlockOpC& a, std::span<const cplx> b,
                             std::span<cplx> y, SeedBasis& basis,
                             const SolverOptions& opts = {});

/// Galerkin projection of right-hand sides onto the seed subspace:
/// returns initial guesses Y0 (one column per column of b).
la::Matrix<cplx> seed_project(const SeedBasis& basis,
                              const la::Matrix<cplx>& b);

}  // namespace rsrpa::solver
