#include "solver/cocr.hpp"

#include <cmath>
#include <vector>

#include "la/blas.hpp"

namespace rsrpa::solver {

SolveReport cocr(const BlockOpC& a, std::span<const cplx> b, std::span<cplx> y,
                 const SolverOptions& opts) {
  const std::size_t n = b.size();
  RSRPA_REQUIRE(y.size() == n);

  SolveReport rep;
  MatvecCostScope cost_scope(rep, opts);
  const double bnorm = la::nrm2(b);
  if (bnorm == 0.0) {
    std::fill(y.begin(), y.end(), cplx{});
    rep.converged = true;
    return rep;
  }

  la::Matrix<cplx> xcol(n, 1), ycol(n, 1);
  auto apply = [&](std::span<const cplx> in, std::span<cplx> out) {
    std::copy(in.begin(), in.end(), xcol.col(0).begin());
    a(xcol, ycol);
    std::copy(ycol.col(0).begin(), ycol.col(0).end(), out.begin());
    rep.matvec_columns += 1;
  };

  std::vector<cplx> r(n), p(n), ar(n), ap(n);
  apply(y, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  rep.relative_residual = la::nrm2(std::span<const cplx>(r)) / bnorm;
  if (opts.record_history) rep.history.push_back(rep.relative_residual);
  if (rep.relative_residual <= opts.tol) {
    rep.converged = true;
    return rep;
  }

  p = r;
  apply(r, ar);
  ap = ar;
  cplx rho = la::dot_u(r, ar);  // (r, Ar) in the bilinear form

  for (int it = 0; it < opts.max_iter; ++it) {
    const cplx sigma = la::dot_u(ap, ap);
    if (std::abs(sigma) == 0.0)
      throw NumericalBreakdown("COCR: (Ap, Ap) vanished");
    const cplx alpha = rho / sigma;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    rep.iterations = it + 1;
    rep.relative_residual = la::nrm2(std::span<const cplx>(r)) / bnorm;
    if (opts.record_history) rep.history.push_back(rep.relative_residual);
    if (!std::isfinite(rep.relative_residual))
      throw NumericalBreakdown("COCR: non-finite residual");
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      return rep;
    }
    apply(r, ar);
    const cplx rho_new = la::dot_u(r, ar);
    if (std::abs(rho) == 0.0)
      throw NumericalBreakdown("COCR: (r, Ar) vanished");
    const cplx beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * p[i];
      ap[i] = ar[i] + beta * ap[i];
    }
  }
  return rep;
}

}  // namespace rsrpa::solver
