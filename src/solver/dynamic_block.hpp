// Dynamic block size selection — Algorithm 4 of the paper.
//
// Each processor solves its batch of right-hand sides for one Sternheimer
// coefficient matrix by probing block sizes in powers of two: as long as
// doubling the block size at most doubles the per-chunk time (i.e. does
// not increase the per-vector time), keep doubling; otherwise halve once
// and solve the remaining systems at that size. Larger blocks buy fewer
// iterations on hard systems at the price of O(n s^2) matmult work — this
// probe finds the break-even point online, per (j, k) pair, without any
// a-priori model (paper SS III-E).
//
// The per-chunk records are what the Table IV bench histograms.
#pragma once

#include <map>
#include <vector>

#include "solver/operator.hpp"
#include "solver/resilience.hpp"

namespace rsrpa::obs {
class EventLog;
}  // namespace rsrpa::obs

namespace rsrpa::solver {

struct ChunkRecord {
  int block_size = 0;
  int n_rhs = 0;        ///< columns actually solved (may be < block_size at the tail)
  int iterations = 0;
  long matvec_columns = 0;  ///< single-column operator applications
  double seconds = 0.0;
  bool converged = false;
  bool fallback = false;  ///< recovery ladder engaged below the block solve
  // Recovery-ladder accounting (solver/resilience.hpp), per chunk.
  int restarts = 0;      ///< rung-1 residual-replacement restarts
  int deflations = 0;    ///< rung-2 block halvings
  int solver_swaps = 0;  ///< rung-3 alternative-solver attempts
  int quarantined = 0;   ///< rung-4 columns given up on

  /// True when any rung of the recovery ladder fired. Recovered chunks
  /// report the wall time of the recovery work, not of a representative
  /// block solve, so Algorithm 4 excludes them from its timing probes.
  [[nodiscard]] bool recovered() const {
    return fallback || restarts > 0 || deflations > 0 || solver_swaps > 0 ||
           quarantined > 0;
  }
};

struct DynamicBlockReport {
  std::vector<ChunkRecord> chunks;
  long total_matvec_columns = 0;
  /// Estimated operator traffic/work over all chunks (matvec columns
  /// times the SolverOptions per-column cost model; 0 when no model).
  double total_matvec_bytes = 0.0;
  double total_matvec_flops = 0.0;
  double total_seconds = 0.0;
  bool all_converged = true;
  // Recovery-ladder totals over all chunks.
  long total_restarts = 0;
  long total_deflations = 0;
  long total_solver_swaps = 0;
  /// Global column indices quarantined by rung 4 (empty on clean runs).
  std::vector<long> quarantined_columns;

  /// Table IV histogram: chunk count per selected block size.
  [[nodiscard]] std::map<int, int> block_size_counts() const;
};

struct DynamicBlockOptions {
  SolverOptions solver;
  int max_block = 0;  ///< 0 = unlimited; paper caps at n_eig / p
  bool enabled = true;  ///< false = fixed block size fixed_block
  int fixed_block = 1;
  /// Breakdown-recovery ladder policy (restart -> deflate -> swap ->
  /// quarantine). resilience.enabled = false restores the legacy behavior
  /// where an unrecovered breakdown propagates out of the solve.
  ResilienceOptions resilience;
  /// Optional event sink: recovery-ladder events (breakdowns, restarts,
  /// deflations, solver swaps, quarantines) are recorded here with their
  /// chunk position and size. Not owned.
  obs::EventLog* events = nullptr;
};

/// Solve A Y = B for all columns of B, choosing block sizes per
/// Algorithm 4. `y` carries initial guesses in, solutions out.
DynamicBlockReport solve_dynamic_block(const BlockOpC& a,
                                       const la::Matrix<cplx>& b,
                                       la::Matrix<cplx>& y,
                                       const DynamicBlockOptions& opts);

}  // namespace rsrpa::solver
