#include "solver/chebyshev.hpp"

#include "common/error.hpp"
#include "sched/parallel_for.hpp"

namespace rsrpa::solver {

namespace {

// Column grain for the elementwise three-term updates: chunks of columns
// with disjoint writes, so the fan-out is bitwise identical to the serial
// loop at any thread count. ~256k elements per task keeps task overhead
// negligible against the memory-bound update.
std::size_t update_grain(std::size_t rows) {
  constexpr std::size_t kElemsPerTask = 1u << 18;
  return kElemsPerTask / std::max<std::size_t>(rows, 1) + 1;
}

}  // namespace

void chebyshev_filter_op(const BlockOpR& a_op, la::Matrix<double>& v,
                         int degree, double a, double b, double a0) {
  RSRPA_REQUIRE(degree >= 1 && b > a && a0 < a);
  const double e = 0.5 * (b - a);
  const double c = 0.5 * (b + a);
  double sigma = e / (a0 - c);
  const double sigma1 = sigma;

  const std::size_t n = v.rows(), s = v.cols();
  const std::size_t grain = update_grain(n);
  la::Matrix<double> vold = v;
  la::Matrix<double> vnew(n, s), av(n, s);

  // V1 = (sigma1 / e) (A - cI) V0.
  a_op(v, av);
  sched::parallel_for(
      0, s, grain,
      [&](std::size_t j) {
        for (std::size_t i = 0; i < n; ++i)
          v(i, j) = (sigma1 / e) * (av(i, j) - c * vold(i, j));
      });

  for (int k = 2; k <= degree; ++k) {
    const double sigma2 = 1.0 / (2.0 / sigma1 - sigma);
    a_op(v, av);
    sched::parallel_for(
        0, s, grain,
        [&](std::size_t j) {
          for (std::size_t i = 0; i < n; ++i)
            vnew(i, j) = 2.0 * (sigma2 / e) * (av(i, j) - c * v(i, j)) -
                         (sigma * sigma2) * vold(i, j);
        });
    vold = v;
    v = vnew;
    sigma = sigma2;
  }
}

}  // namespace rsrpa::solver
