#include "solver/chebyshev.hpp"

#include <utility>

#include "common/error.hpp"
#include "sched/parallel_for.hpp"

namespace rsrpa::solver {

namespace {

// Column grain for the elementwise three-term updates: chunks of columns
// with disjoint writes, so the fan-out is bitwise identical to the serial
// loop at any thread count. ~256k elements per task keeps task overhead
// negligible against the memory-bound update.
std::size_t update_grain(std::size_t rows) {
  constexpr std::size_t kElemsPerTask = 1u << 18;
  return kElemsPerTask / std::max<std::size_t>(rows, 1) + 1;
}

}  // namespace

void chebyshev_filter_fused(const FilterStepOpR& step, la::Matrix<double>& v,
                            int degree, double a, double b, double a0) {
  RSRPA_REQUIRE(degree >= 1 && b > a && a0 < a);
  const double e = 0.5 * (b - a);
  const double c = 0.5 * (b + a);
  double sigma = e / (a0 - c);
  const double sigma1 = sigma;

  const std::size_t n = v.rows(), s = v.cols();

  // Three rotating buffers: vold = V_{k-1}, vcur = V_k, vnew = V_{k+1}.
  // The rotation replaces the per-iteration "vold = v" block copy of the
  // seed recurrence with swaps.
  la::Matrix<double> vold = std::move(v);
  la::Matrix<double> vcur(n, s), vnew(n, s);

  // V1 = (sigma1 / e) (A - cI) V0.
  step(vold, vcur, sigma1 / e, -c * (sigma1 / e), nullptr, 0.0);

  for (int k = 2; k <= degree; ++k) {
    const double sigma2 = 1.0 / (2.0 / sigma1 - sigma);
    // V_{k+1} = 2 (sigma2/e) (A - cI) V_k - sigma sigma2 V_{k-1}.
    step(vcur, vnew, 2.0 * (sigma2 / e), -2.0 * (sigma2 / e) * c, &vold,
         -(sigma * sigma2));
    std::swap(vold, vcur);  // vold <- V_k
    std::swap(vcur, vnew);  // vcur <- V_{k+1}; vnew holds scratch
    sigma = sigma2;
  }
  v = std::move(vcur);
}

void chebyshev_filter_op(const BlockOpR& a_op, la::Matrix<double>& v,
                         int degree, double a, double b, double a0) {
  const std::size_t n = v.rows(), s = v.cols();
  const std::size_t grain = update_grain(n);
  la::Matrix<double> av(n, s);
  const FilterStepOpR step = [&](const la::Matrix<double>& in,
                                 la::Matrix<double>& out, double c1, double c0,
                                 const la::Matrix<double>* extra, double c2) {
    a_op(in, av);
    sched::parallel_for(0, s, grain, [&](std::size_t j) {
      if (extra != nullptr) {
        for (std::size_t i = 0; i < n; ++i)
          out(i, j) = c1 * av(i, j) + c0 * in(i, j) + c2 * (*extra)(i, j);
      } else {
        for (std::size_t i = 0; i < n; ++i)
          out(i, j) = c1 * av(i, j) + c0 * in(i, j);
      }
    });
  };
  chebyshev_filter_fused(step, v, degree, a, b, a0);
}

}  // namespace rsrpa::solver
