#include "solver/resilience.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "obs/event_log.hpp"
#include "solver/block_cocg.hpp"
#include "solver/block_cocr.hpp"
#include "solver/gmres.hpp"
#include "solver/qmr_sym.hpp"

namespace rsrpa::solver {

FaultMode fault_mode_from_string(const std::string& s) {
  if (s.empty() || s == "none" || s == "off") return FaultMode::kNone;
  if (s == "nan") return FaultMode::kNanMatvec;
  if (s == "perturb") return FaultMode::kPerturbMatvec;
  if (s == "zero") return FaultMode::kZeroMatvec;
  throw Error("unknown fault mode '" + s + "' (none|nan|perturb|zero)");
}

struct FaultInjectingOp::State {
  BlockOpC inner;
  FaultInjectionOptions opts;
  long applies = 0;
  long faults = 0;
};

FaultInjectingOp::FaultInjectingOp(BlockOpC inner,
                                   const FaultInjectionOptions& opts)
    : state_(std::make_shared<State>()) {
  state_->inner = std::move(inner);
  state_->opts = opts;
}

long FaultInjectingOp::applies() const { return state_->applies; }
long FaultInjectingOp::faults_injected() const { return state_->faults; }

void FaultInjectingOp::operator()(const la::Matrix<cplx>& in,
                                  la::Matrix<cplx>& out) const {
  State& st = *state_;
  st.inner(in, out);
  const long idx = st.applies++;

  const FaultInjectionOptions& f = st.opts;
  if (f.mode == FaultMode::kNone || st.faults >= f.max_faults) return;
  if (idx < f.at_apply) return;
  const bool due = f.period <= 0 ? idx == f.at_apply
                                 : (idx - f.at_apply) % f.period == 0;
  if (!due) return;
  ++st.faults;

  switch (f.mode) {
    case FaultMode::kNanMatvec:
      out(0, 0) = cplx{std::numeric_limits<double>::quiet_NaN(), 0.0};
      break;
    case FaultMode::kZeroMatvec:
      out.zero();
      break;
    case FaultMode::kPerturbMatvec: {
      // One decorrelated stream per apply index: the perturbation depends
      // only on (seed, idx), never on thread identity or timing.
      Rng rng = Rng(f.seed).derive(static_cast<std::uint64_t>(idx));
      for (std::size_t j = 0; j < out.cols(); ++j)
        for (std::size_t i = 0; i < out.rows(); ++i)
          out(i, j) += cplx{f.magnitude * rng.uniform(-1.0, 1.0),
                            f.magnitude * rng.uniform(-1.0, 1.0)};
      break;
    }
    case FaultMode::kNone:
      break;
  }
}

namespace {

bool matrix_finite(const la::Matrix<cplx>& m) {
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i)
      if (!std::isfinite(m(i, j).real()) || !std::isfinite(m(i, j).imag()))
        return false;
  return true;
}

bool matrix_equal(const la::Matrix<cplx>& a, const la::Matrix<cplx>& b) {
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      if (a(i, j) != b(i, j)) return false;
  return true;
}

// Aggregate a sub-solve into the ladder-wide report. matvec_columns is
// deliberately NOT folded here — the counting wrapper below owns it, so
// failed attempts count too.
void fold(SolveReport& agg, const SolveReport& r) {
  agg.iterations = std::max(agg.iterations, r.iterations);
  agg.relative_residual = std::max(agg.relative_residual, r.relative_residual);
  agg.converged = agg.converged && r.converged;
}

struct LadderCtx {
  const BlockOpC* op = nullptr;  // counting wrapper around the caller's op
  const SolverOptions* sopts = nullptr;
  const ResilienceOptions* ropts = nullptr;
  obs::EventLog* events = nullptr;
  ResilientSolveResult* out = nullptr;
};

void emit(LadderCtx& ctx, const char* kind, const char* detail,
          std::vector<std::pair<std::string, double>> fields) {
  if (ctx.events != nullptr)
    ctx.events->emit(kind, detail, std::move(fields));
}

// Alternative single-column solvers for rung 3, in escalation order.
// COCR stays in the bilinear complex-symmetric family (smoother residual
// histories); QMR adds quasi-minimal smoothing; GMRES abandons the
// bilinear form entirely and survives quasi-null residuals.
enum class SwapSolver { kBlockCocr = 0, kQmrSym = 1, kGmres = 2 };

SolveReport run_swap(LadderCtx& ctx, SwapSolver which,
                     const la::Matrix<cplx>& b, la::Matrix<cplx>& y) {
  switch (which) {
    case SwapSolver::kBlockCocr:
      return block_cocr(*ctx.op, b, y, *ctx.sopts);
    case SwapSolver::kQmrSym:
      return qmr_sym(*ctx.op, b.col(0), y.col(0), *ctx.sopts);
    case SwapSolver::kGmres: {
      GmresOptions gopts;
      gopts.max_iter = ctx.sopts->max_iter;
      gopts.tol = ctx.sopts->tol;
      return gmres(*ctx.op, b.col(0), y.col(0), gopts);
    }
  }
  throw Error("unreachable swap solver");
}

// Solve columns [col0, col0 + b.cols()) of the caller's system through the
// ladder. b and y are working copies of the sub-block; y carries the
// entry guess in and the solution (or, for quarantined columns, the entry
// guess back) out.
void ladder_solve(LadderCtx& ctx, const la::Matrix<cplx>& b,
                  la::Matrix<cplx>& y, std::size_t col0) {
  const std::size_t s = b.cols();
  const la::Matrix<cplx> y0 = y;

  // Rungs 0/1: block COCG, then residual-replacement restarts. A restart
  // re-enters the solver from the current iterate (fresh residual, fresh
  // conjugacy state). If the breakdown left non-finite values in y, the
  // iterate is poisoned and we restart from the entry guess instead —
  // which still recovers transient faults, whose budget is now spent.
  // A breakdown that touched nothing (e.g. the initial rank-deficiency
  // check) would replay identically, so it escalates straight away.
  for (int attempt = 0;; ++attempt) {
    try {
      SolveReport r = block_cocg(*ctx.op, b, y, *ctx.sopts);
      fold(ctx.out->report, r);
      return;
    } catch (const NumericalBreakdown& breakdown) {
      emit(ctx, obs::events::kSolverBreakdown, breakdown.what(),
           {{"position", static_cast<double>(col0)},
            {"block_size", static_cast<double>(s)},
            {"attempt", static_cast<double>(attempt)}});
      const bool poisoned = !matrix_finite(y);
      const bool touched = poisoned || !matrix_equal(y, y0);
      if (poisoned) y = y0;
      if (!touched || attempt >= ctx.ropts->max_restarts) break;
      ++ctx.out->restarts;
      emit(ctx, obs::events::kSolverRestart,
           "residual-replacement restart after breakdown",
           {{"position", static_cast<double>(col0)},
            {"block_size", static_cast<double>(s)}});
    }
  }

  // Rung 2: halve the block and recurse. Handles the linearly-dependent
  // right-hand-side breakdown the paper's deflation caveat describes.
  if (s > 1 && ctx.ropts->deflate) {
    ++ctx.out->deflations;
    emit(ctx, obs::events::kBlockDeflation,
         "halving block after unrecovered breakdown",
         {{"position", static_cast<double>(col0)},
          {"block_size", static_cast<double>(s)}});
    const std::size_t h = s / 2;
    la::Matrix<cplx> bl = b.slice_cols(0, h);
    la::Matrix<cplx> yl = y.slice_cols(0, h);
    ladder_solve(ctx, bl, yl, col0);
    y.set_cols(0, yl);
    la::Matrix<cplx> br = b.slice_cols(h, s - h);
    la::Matrix<cplx> yr = y.slice_cols(h, s - h);
    ladder_solve(ctx, br, yr, col0 + h);
    y.set_cols(h, yr);
    return;
  }

  // Rung 3: single surviving column — swap solvers.
  if (s == 1 && ctx.ropts->solver_swap) {
    for (SwapSolver which :
         {SwapSolver::kBlockCocr, SwapSolver::kQmrSym, SwapSolver::kGmres}) {
      if (!matrix_finite(y)) y = y0;
      ++ctx.out->solver_swaps;
      emit(ctx, obs::events::kSolverSwap, "trying alternative solver",
           {{"position", static_cast<double>(col0)},
            {"solver", static_cast<double>(static_cast<int>(which))}});
      try {
        SolveReport r = run_swap(ctx, which, b, y);
        // Accept only a converged, finite result: we are deep in recovery,
        // so a swap that merely ran out of iterations is an escalation,
        // and GMRES can claim convergence with a non-finite iterate when a
        // degenerate (e.g. zeroed) operator collapses its Hessenberg.
        if (r.converged && matrix_finite(y)) {
          fold(ctx.out->report, r);
          return;
        }
        emit(ctx, obs::events::kSolverBreakdown,
             "swap solver returned without a usable solution",
             {{"position", static_cast<double>(col0)},
              {"block_size", 1.0},
              {"solver", static_cast<double>(static_cast<int>(which))}});
      } catch (const NumericalBreakdown& breakdown) {
        emit(ctx, obs::events::kSolverBreakdown, breakdown.what(),
             {{"position", static_cast<double>(col0)},
              {"block_size", 1.0},
              {"solver", static_cast<double>(static_cast<int>(which))}});
      }
    }
  }

  // Rung 4: quarantine. The entry guess is the only iterate we still
  // trust (a post-breakdown partial iterate can be arbitrarily far off),
  // so the columns come back unchanged and flagged non-converged.
  if (!ctx.ropts->quarantine) {
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "recovery ladder exhausted for columns [%zu, %zu)", col0,
                  col0 + s);
    throw NumericalBreakdown(msg);
  }
  y = y0;
  for (std::size_t j = 0; j < s; ++j) {
    ctx.out->quarantined.push_back(static_cast<long>(col0 + j));
    emit(ctx, obs::events::kColumnQuarantine,
         "column given up on after ladder exhaustion",
         {{"column", static_cast<double>(col0 + j)}});
  }
  ctx.out->report.converged = false;
}

}  // namespace

ResilientSolveResult resilient_block_solve(const BlockOpC& a,
                                           const la::Matrix<cplx>& b,
                                           la::Matrix<cplx>& y,
                                           const SolverOptions& sopts,
                                           const ResilienceOptions& opts,
                                           std::size_t col0,
                                           obs::EventLog* events) {
  ResilientSolveResult out;
  out.report.converged = true;

  // Authoritative matvec accounting: the sub-solvers' own counters are
  // lost when they throw, so count columns at the operator boundary —
  // failed attempts cost real work and must show up in the report.
  long matvecs = 0;
  BlockOpC counting = [&a, &matvecs](const la::Matrix<cplx>& in,
                                     la::Matrix<cplx>& o) {
    a(in, o);
    matvecs += static_cast<long>(in.cols());
  };

  if (!opts.enabled) {
    SolveReport r = block_cocg(a, b, y, sopts);
    out.report = r;
    return out;
  }

  LadderCtx ctx;
  ctx.op = &counting;
  ctx.sopts = &sopts;
  ctx.ropts = &opts;
  ctx.events = events;
  ctx.out = &out;
  ladder_solve(ctx, b, y, col0);
  out.report.matvec_columns = matvecs;
  out.report.matvec_bytes =
      static_cast<double>(matvecs) * sopts.matvec_bytes_per_column;
  out.report.matvec_flops =
      static_cast<double>(matvecs) * sopts.matvec_flops_per_column;
  return out;
}

}  // namespace rsrpa::solver
