#include "solver/preconditioner.hpp"

#include <cmath>
#include <vector>

#include "solver/block_cocg.hpp"

namespace rsrpa::solver {

ShiftedLaplacianPrecond::ShiftedLaplacianPrecond(
    const poisson::KroneckerLaplacian& klap, double sigma0)
    : klap_(klap), sigma0_(sigma0) {
  RSRPA_REQUIRE_MSG(sigma0 > 0.0, "preconditioner shift must be positive");
}

void ShiftedLaplacianPrecond::apply_inv_sqrt(const la::Matrix<cplx>& in,
                                             la::Matrix<cplx>& out) const {
  const std::size_t n = in.rows(), s = in.cols();
  RSRPA_REQUIRE(out.rows() == n && out.cols() == s && n == klap_.grid().size());
  const double sigma0 = sigma0_;
  auto f = [sigma0](double lam) {
    // M eigenvalue: sigma0 + 0.5 * (-lam); strictly positive.
    return 1.0 / std::sqrt(sigma0 + 0.5 * (-lam));
  };
  std::vector<double> re(n), im(n), fre(n), fim(n);
  for (std::size_t j = 0; j < s; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      re[i] = in(i, j).real();
      im[i] = in(i, j).imag();
    }
    klap_.apply_spectral(f, re, fre);
    klap_.apply_spectral(f, im, fim);
    for (std::size_t i = 0; i < n; ++i) out(i, j) = {fre[i], fim[i]};
  }
}

BlockOpC make_split_preconditioned_op(const BlockOpC& a,
                                      const ShiftedLaplacianPrecond& precond) {
  return [&a, &precond](const la::Matrix<cplx>& in, la::Matrix<cplx>& out) {
    la::Matrix<cplx> t1(in.rows(), in.cols()), t2(in.rows(), in.cols());
    precond.apply_inv_sqrt(in, t1);
    a(t1, t2);
    precond.apply_inv_sqrt(t2, out);
  };
}

SolveReport preconditioned_block_cocg(const BlockOpC& a,
                                      const ShiftedLaplacianPrecond& precond,
                                      const la::Matrix<cplx>& b,
                                      la::Matrix<cplx>& y,
                                      const SolverOptions& opts) {
  const std::size_t n = b.rows(), s = b.cols();
  la::Matrix<cplx> bt(n, s);
  precond.apply_inv_sqrt(b, bt);

  // Transform the initial guess: Yt = M^{1/2} Y is unavailable cheaply, so
  // start the preconditioned iteration from zero when a guess is present
  // only implicitly; callers pass Y = 0 or accept the transform cost.
  la::Matrix<cplx> yt(n, s);  // zero initial guess in the primed system

  BlockOpC ap = make_split_preconditioned_op(a, precond);
  SolveReport rep = block_cocg(ap, bt, yt, opts);

  precond.apply_inv_sqrt(yt, y);
  return rep;
}

}  // namespace rsrpa::solver
