#include "solver/gmres.hpp"

#include <cmath>
#include <vector>

#include "la/blas.hpp"

namespace rsrpa::solver {

SolveReport gmres(const BlockOpC& a, std::span<const cplx> b, std::span<cplx> y,
                  const GmresOptions& opts) {
  const std::size_t n = b.size();
  RSRPA_REQUIRE(y.size() == n && opts.restart >= 1);

  SolveReport rep;
  const double bnorm = la::nrm2(b);
  if (bnorm == 0.0) {
    std::fill(y.begin(), y.end(), cplx{});
    rep.converged = true;
    return rep;
  }

  la::Matrix<cplx> xcol(n, 1), ycol(n, 1);
  auto apply = [&](std::span<const cplx> in, std::span<cplx> out) {
    std::copy(in.begin(), in.end(), xcol.col(0).begin());
    a(xcol, ycol);
    std::copy(ycol.col(0).begin(), ycol.col(0).end(), out.begin());
    rep.matvec_columns += 1;
  };

  const int m = opts.restart;
  // Arnoldi basis (m+1 vectors) and Hessenberg in Givens-rotated form.
  la::Matrix<cplx> v(n, static_cast<std::size_t>(m) + 1);
  la::Matrix<cplx> h(static_cast<std::size_t>(m) + 1,
                     static_cast<std::size_t>(m));
  std::vector<cplx> cs(m), sn(m), g(static_cast<std::size_t>(m) + 1);
  std::vector<cplx> r(n), w(n);

  int total_iters = 0;
  while (total_iters < opts.max_iter) {
    // Residual of the current iterate starts each cycle.
    apply(y, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    double beta = la::nrm2(std::span<const cplx>(r));
    rep.relative_residual = beta / bnorm;
    if (opts.record_history) rep.history.push_back(rep.relative_residual);
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      return rep;
    }

    for (std::size_t i = 0; i < n; ++i) v(i, 0) = r[i] / beta;
    std::fill(g.begin(), g.end(), cplx{});
    g[0] = beta;

    int k = 0;
    for (; k < m && total_iters < opts.max_iter; ++k, ++total_iters) {
      // Arnoldi step with modified Gram-Schmidt (conjugated inner
      // products — GMRES works in the Hermitian geometry).
      apply(v.col(static_cast<std::size_t>(k)), w);
      for (int i = 0; i <= k; ++i) {
        const cplx hik =
            la::dot_c(v.col(static_cast<std::size_t>(i)), std::span<const cplx>(w));
        h(static_cast<std::size_t>(i), static_cast<std::size_t>(k)) = hik;
        la::axpy(-hik, v.col(static_cast<std::size_t>(i)), w);
      }
      const double wnorm = la::nrm2(std::span<const cplx>(w));
      h(static_cast<std::size_t>(k) + 1, static_cast<std::size_t>(k)) = wnorm;
      if (wnorm > 0.0)
        for (std::size_t i = 0; i < n; ++i)
          v(i, static_cast<std::size_t>(k) + 1) = w[i] / wnorm;

      // Apply accumulated Givens rotations to the new column.
      for (int i = 0; i < k; ++i) {
        const cplx t = h(static_cast<std::size_t>(i), static_cast<std::size_t>(k));
        const cplx t1 = h(static_cast<std::size_t>(i) + 1, static_cast<std::size_t>(k));
        h(static_cast<std::size_t>(i), static_cast<std::size_t>(k)) =
            std::conj(cs[static_cast<std::size_t>(i)]) * t +
            std::conj(sn[static_cast<std::size_t>(i)]) * t1;
        h(static_cast<std::size_t>(i) + 1, static_cast<std::size_t>(k)) =
            -sn[static_cast<std::size_t>(i)] * t + cs[static_cast<std::size_t>(i)] * t1;
      }
      // New rotation annihilating h(k+1, k).
      const cplx hkk = h(static_cast<std::size_t>(k), static_cast<std::size_t>(k));
      const cplx hk1k = h(static_cast<std::size_t>(k) + 1, static_cast<std::size_t>(k));
      const double denom = std::sqrt(std::norm(hkk) + std::norm(hk1k));
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(k)] = 1.0;
        sn[static_cast<std::size_t>(k)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(k)] = hkk / denom;  // note: complex cosine
        sn[static_cast<std::size_t>(k)] = hk1k / denom;
      }
      h(static_cast<std::size_t>(k), static_cast<std::size_t>(k)) =
          std::conj(cs[static_cast<std::size_t>(k)]) * hkk +
          std::conj(sn[static_cast<std::size_t>(k)]) * hk1k;
      h(static_cast<std::size_t>(k) + 1, static_cast<std::size_t>(k)) = 0.0;
      const cplx gk = g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = std::conj(cs[static_cast<std::size_t>(k)]) * gk;
      g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] * gk;

      rep.iterations = total_iters + 1;
      rep.relative_residual = std::abs(g[static_cast<std::size_t>(k) + 1]) / bnorm;
      if (opts.record_history) rep.history.push_back(rep.relative_residual);
      if (rep.relative_residual <= opts.tol) {
        ++k;
        break;
      }
    }

    // Back-substitute the k x k triangular system and update y.
    std::vector<cplx> coeff(static_cast<std::size_t>(k));
    for (int i = k - 1; i >= 0; --i) {
      cplx sum = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j)
        sum -= h(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
               coeff[static_cast<std::size_t>(j)];
      coeff[static_cast<std::size_t>(i)] =
          sum / h(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
    }
    for (int j = 0; j < k; ++j)
      la::axpy(coeff[static_cast<std::size_t>(j)],
               v.col(static_cast<std::size_t>(j)), y);

    if (rep.converged) return rep;
    if (rep.relative_residual <= opts.tol) {
      rep.converged = true;
      return rep;
    }
  }
  return rep;
}

}  // namespace rsrpa::solver
