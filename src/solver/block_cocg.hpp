// Block conjugate orthogonal conjugate gradient — Algorithm 3 of the
// paper: the short-term-recurrence block Krylov method for complex
// SYMMETRIC (A = A^T, not Hermitian) coefficient matrices, the paper's
// central solver contribution. Every inner product is the unconjugated
// bilinear form, which is what the A = A^T structure pairs with.
//
// Per iteration: one block operator application (s columns), five
// O(n s^2) matrix-matrix products, and two O(s^3) small solves — the cost
// structure analyzed in paper SS III-B/C. Termination follows Eq. 10:
// ||W||_F / ||B||_F <= tol. A nearly singular conjugacy matrix mu or a
// non-finite residual raises NumericalBreakdown.
#pragma once

#include "solver/operator.hpp"

namespace rsrpa::solver {

/// Solve A Y = B with block size s = B.cols(). `y` supplies the initial
/// guess on entry and the solution on exit.
SolveReport block_cocg(const BlockOpC& a, const la::Matrix<cplx>& b,
                       la::Matrix<cplx>& y, const SolverOptions& opts = {});

/// Non-block COCG (van der Vorst & Melissen), the s = 1 specialization
/// kept as an independent implementation for cross-checks and the
/// BLAS-2 vs BLAS-3 comparisons.
SolveReport cocg(const BlockOpC& a, std::span<const cplx> b,
                 std::span<cplx> y, const SolverOptions& opts = {});

}  // namespace rsrpa::solver
