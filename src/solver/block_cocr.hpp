// Block conjugate orthogonal conjugate residual.
//
// The block generalization of COCR (the residual-minimizing sibling of
// COCG in the complex-symmetric family of paper ref [39]), mirroring
// Algorithm 3's structure: one operator application and a handful of
// O(n s^2) products per iteration, with s x s solves through the
// conjugacy matrices. Compared to block COCG it maintains A R alongside R
// (one extra block of memory) and tends to produce smoother residual
// histories on the highly indefinite near-(n_s, l) Sternheimer systems.
#pragma once

#include "solver/operator.hpp"

namespace rsrpa::solver {

/// Solve A Y = B, A complex symmetric, with block size s = B.cols().
/// `y` supplies the initial guess and receives the solution.
SolveReport block_cocr(const BlockOpC& a, const la::Matrix<cplx>& b,
                       la::Matrix<cplx>& y, const SolverOptions& opts = {});

}  // namespace rsrpa::solver
