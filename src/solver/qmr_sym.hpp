// Simplified QMR for complex symmetric systems (Freund 1992 — the paper's
// ref [39]).
//
// Same short-term Lanczos-type recurrence as COCG but with quasi-minimal
// residual smoothing, removing the erratic residual spikes COCG shows on
// highly indefinite spectra (the near-(n_s, l) Sternheimer systems). One
// operator application per iteration, O(n) updates — a drop-in companion
// for the A2-style solver comparisons.
#pragma once

#include "solver/operator.hpp"

namespace rsrpa::solver {

/// Solve A y = b with A = A^T complex symmetric; `y` carries the initial
/// guess in and the solution out.
SolveReport qmr_sym(const BlockOpC& a, std::span<const cplx> b,
                    std::span<cplx> y, const SolverOptions& opts = {});

}  // namespace rsrpa::solver
