// Binary snapshots of the KS-DFT -> RPA handoff.
//
// The paper's workflow runs SPARC first and SAVES "the Kohn-Sham occupied
// orbitals, the occupied orbital energies, and the electron density",
// which the RPA code then reads (SS IV preamble). This module provides
// that handoff: a versioned little-endian binary format for dense
// matrices, grid functions and the KsSystem bundle, so the expensive
// ground-state solve can be done once and reused across RPA parameter
// studies.
//
// Format: magic "RSRPAB01", then u64 rows, u64 cols, then rows*cols
// doubles in column-major order. The KsSystem snapshot concatenates a
// small header (grid dims + cell lengths + spectral data) with the
// orbital matrix.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "dft/ks_system.hpp"
#include "grid/grid.hpp"
#include "la/matrix.hpp"

namespace rsrpa::io {

/// Durable atomic file replacement: `body` streams the new contents into
/// a temporary file in the same directory, which is flushed, fsynced and
/// renamed over `path` (with a directory fsync so the rename itself is
/// durable). A crash at any instant leaves either the complete previous
/// file or the complete new one — never a truncated hybrid. On failure
/// (including an exception from `body`) the temporary is removed and
/// `path` is untouched. All snapshot and checkpoint writers route
/// through this.
void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& body);

/// Stream-level forms of the matrix format (magic + u64 rows + u64 cols +
/// column-major doubles), for embedding matrices inside larger files
/// (the RunCheckpoint container in io/checkpoint.hpp).
void save_matrix_stream(std::ostream& out, const la::Matrix<double>& m);
la::Matrix<double> load_matrix_stream(std::istream& in);

/// Write a dense real matrix (atomically; see atomic_write). Throws
/// Error on I/O failure.
void save_matrix(const std::string& path, const la::Matrix<double>& m);

/// Read a matrix written by save_matrix. Throws Error on malformed files.
la::Matrix<double> load_matrix(const std::string& path);

/// Everything the RPA stage needs from the prior DFT calculation, minus
/// the Hamiltonian operator itself (rebuilt from the crystal/potential).
struct KsSnapshot {
  std::size_t nx = 0, ny = 0, nz = 0;
  double lx = 0.0, ly = 0.0, lz = 0.0;
  double homo = 0.0, lumo = 0.0;
  std::vector<double> eigenvalues;  ///< occupied energies, ascending
  la::Matrix<double> orbitals;      ///< n_d x n_s, grid-l2-orthonormal
};

/// Save the orbital data of a solved system (atomically; see
/// atomic_write).
void save_ks_snapshot(const std::string& path, const dft::KsSystem& sys);

/// Load a snapshot; validates header magic and shape consistency.
KsSnapshot load_ks_snapshot(const std::string& path);

/// Rebuild a KsSystem from a snapshot and a Hamiltonian constructed over
/// the SAME grid (shape-checked). The caller is responsible for the
/// Hamiltonian matching the potential the snapshot was solved in.
dft::KsSystem restore_ks_system(const KsSnapshot& snap,
                                std::shared_ptr<const ham::Hamiltonian> h);

}  // namespace rsrpa::io
