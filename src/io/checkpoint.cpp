#include "io/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "io/snapshot.hpp"
#include "obs/run_report.hpp"

namespace rsrpa::io {

namespace {

constexpr char kCkptMagic[8] = {'R', 'S', 'R', 'P', 'A', 'C', '0', '1'};
constexpr char kCkptTrailer[8] = {'R', 'S', 'R', 'P', 'A', 'E', 'N', 'D'};

// FNV-1a over the byte images of the fingerprinted fields. Doubles are
// hashed bitwise: the resume contract is bitwise equivalence, so "almost
// the same tolerance" must count as a different run.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) h = (h ^ b[i]) * 1099511628211ull;
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(long long v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { bytes(&v, sizeof v); }
  void f64s(const double* p, std::size_t n) { bytes(p, n * sizeof(double)); }
  void b(bool v) { u64(v ? 1u : 0u); }
  void str(const char* s) { bytes(s, std::strlen(s)); }
};

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t read_u64(std::istream& in, const char* what) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  RSRPA_REQUIRE_MSG(in.good(), std::string("checkpoint: truncated ") + what);
  return v;
}

obs::Json payload_json(const RunCheckpoint& ck) {
  obs::Json j = obs::Json::object();
  j["version"] = kRunCheckpointVersion;
  // As a decimal string: obs::Json integers are signed 64-bit and a
  // fingerprint's top bit is fair game.
  j["fingerprint"] = std::to_string(ck.fingerprint);
  j["completed_points"] = ck.completed_points;
  j["ell"] = ck.ell;
  j["e_rpa_partial"] = ck.e_rpa_partial;
  j["degraded"] = ck.degraded;
  j["converged"] = ck.converged;
  j["rng_state"] = ck.rng_state;
  obs::Json per_omega = obs::Json::array();
  for (const rpa::OmegaRecord& rec : ck.per_omega)
    per_omega.push_back(obs::to_json(rec));
  j["per_omega"] = std::move(per_omega);
  j["sternheimer"] = obs::to_json(ck.stern);
  j["timers"] = obs::to_json(ck.timers);
  j["events"] = obs::to_json(ck.events);
  if (ck.parallel) {
    obs::Json p = obs::Json::object();
    p["matmult_seconds"] = ck.matmult_seconds;
    p["eigensolve_seconds"] = ck.eigensolve_seconds;
    p["error_checks"] = ck.error_checks;
    obs::Json ra = obs::Json::array(), re = obs::Json::array();
    for (double s : ck.rank_apply_seconds) ra.push_back(s);
    for (double s : ck.rank_error_seconds) re.push_back(s);
    p["rank_apply_seconds"] = std::move(ra);
    p["rank_error_seconds"] = std::move(re);
    j["parallel"] = std::move(p);
  }
  return j;
}

RunCheckpoint payload_from_json(const obs::Json& j) {
  const std::int64_t version = j.at("version").as_int();
  RSRPA_REQUIRE_MSG(
      version == static_cast<std::int64_t>(kRunCheckpointVersion),
      "checkpoint: unsupported format version " + std::to_string(version));
  RunCheckpoint ck;
  ck.fingerprint = std::stoull(j.at("fingerprint").as_string());
  ck.completed_points = static_cast<int>(j.at("completed_points").as_int());
  ck.ell = static_cast<int>(j.at("ell").as_int());
  ck.e_rpa_partial = j.at("e_rpa_partial").as_double();
  ck.degraded = j.at("degraded").as_bool();
  ck.converged = j.at("converged").as_bool();
  ck.rng_state = j.at("rng_state").as_string();
  for (const obs::Json& rec : j.at("per_omega").as_array())
    ck.per_omega.push_back(obs::omega_record_from_json(rec));
  ck.stern = obs::sternheimer_stats_from_json(j.at("sternheimer"));
  ck.timers = obs::kernel_timers_from_json(j.at("timers"));
  ck.events = obs::event_log_from_json(j.at("events"));
  if (const obs::Json* p = j.find("parallel")) {
    ck.parallel = true;
    ck.matmult_seconds = p->at("matmult_seconds").as_double();
    ck.eigensolve_seconds = p->at("eigensolve_seconds").as_double();
    ck.error_checks = p->at("error_checks").as_int();
    for (const obs::Json& s : p->at("rank_apply_seconds").as_array())
      ck.rank_apply_seconds.push_back(s.as_double());
    for (const obs::Json& s : p->at("rank_error_seconds").as_array())
      ck.rank_error_seconds.push_back(s.as_double());
  }
  RSRPA_REQUIRE_MSG(
      ck.completed_points >= 1 && ck.completed_points <= ck.ell &&
          ck.per_omega.size() ==
              static_cast<std::size_t>(ck.completed_points),
      "checkpoint: inconsistent completed-point count");
  return ck;
}

}  // namespace

std::uint64_t run_fingerprint(const dft::KsSystem& sys,
                              const rpa::RpaOptions& opts,
                              std::size_t n_ranks) {
  Fnv1a f;
  f.str("rsrpa.run_checkpoint/1");
  // The system: grid geometry and the exact Kohn-Sham state. Orbitals are
  // hashed bitwise — the warm-start chain is only resumable against the
  // very snapshot it was computed from.
  const grid::Grid3D& g = sys.h->grid();
  f.u64(g.nx());
  f.u64(g.ny());
  f.u64(g.nz());
  f.f64(g.lx());
  f.f64(g.ly());
  f.f64(g.lz());
  f.f64(sys.homo);
  f.f64(sys.lumo);
  f.u64(sys.eigenvalues.size());
  f.f64s(sys.eigenvalues.data(), sys.eigenvalues.size());
  f.u64(sys.orbitals.rows());
  f.u64(sys.orbitals.cols());
  f.f64s(sys.orbitals.data(), sys.orbitals.size());
  // RpaOptions, minus the checkpoint policy and event-sink pointers.
  f.u64(opts.n_eig);
  f.i64(opts.ell);
  f.u64(opts.tol_eig.size());
  f.f64s(opts.tol_eig.data(), opts.tol_eig.size());
  f.i64(opts.max_filter_iter);
  f.i64(opts.cheb_degree);
  f.b(opts.warm_start);
  f.u64(opts.seed);
  f.i64(opts.fault_omega);
  const rpa::SternheimerOptions& st = opts.stern;
  f.f64(st.tol);
  f.i64(st.max_iter);
  f.b(st.dynamic_block);
  f.i64(st.fixed_block);
  f.i64(st.max_block);
  f.b(st.galerkin_guess);
  f.i64(st.stagnation_window);
  f.f64(st.stagnation_factor);
  f.b(st.resilience.enabled);
  f.i64(st.resilience.max_restarts);
  f.b(st.resilience.deflate);
  f.b(st.resilience.solver_swap);
  f.b(st.resilience.quarantine);
  f.i64(static_cast<long long>(st.fault.mode));
  f.i64(st.fault.at_apply);
  f.i64(st.fault.period);
  f.i64(st.fault.max_faults);
  f.f64(st.fault.magnitude);
  f.i64(st.fault.orbital);
  f.u64(st.fault.seed);
  f.u64(n_ranks);
  return f.h;
}

void save_run_checkpoint(const std::string& path, const RunCheckpoint& ck) {
  const std::string payload = payload_json(ck).dump();
  atomic_write(path, [&](std::ostream& out) {
    out.write(kCkptMagic, 8);
    write_u64(out, payload.size());
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    save_matrix_stream(out, ck.v);
    out.write(kCkptTrailer, 8);
  });
}

RunCheckpoint load_run_checkpoint(const std::string& path,
                                  std::uint64_t expected_fingerprint) {
  std::ifstream in(path, std::ios::binary);
  RSRPA_REQUIRE_MSG(in.good(), "cannot open " + path);
  char magic[8] = {};
  in.read(magic, 8);
  RSRPA_REQUIRE_MSG(in.good() && std::memcmp(magic, kCkptMagic, 8) == 0,
                    "checkpoint: bad magic in " + path);
  const std::uint64_t len = read_u64(in, "payload length");
  RSRPA_REQUIRE_MSG(len > 0 && len < (1ull << 32),
                    "checkpoint: implausible payload length");
  std::string payload(static_cast<std::size_t>(len), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(len));
  RSRPA_REQUIRE_MSG(in.good(), "checkpoint: truncated payload in " + path);

  RunCheckpoint ck = payload_from_json(obs::Json::parse(payload));
  ck.v = load_matrix_stream(in);
  char trailer[8] = {};
  in.read(trailer, 8);
  RSRPA_REQUIRE_MSG(in.good() && std::memcmp(trailer, kCkptTrailer, 8) == 0,
                    "checkpoint: missing trailer (torn write?) in " + path);
  RSRPA_REQUIRE_MSG(
      expected_fingerprint == 0 || ck.fingerprint == expected_fingerprint,
      "checkpoint: fingerprint mismatch — " + path +
          " was written for a different system or RpaOptions; refusing "
          "to resume");
  return ck;
}

}  // namespace rsrpa::io
