// Crash-safe run checkpoints for the RPA quadrature sweep.
//
// A full E_RPA run is ell subspace iterations, each hiding thousands of
// Sternheimer solves; PR 3's resilience ladder made individual solves
// survivable, and this layer gives the same property to the run itself.
// After every quadrature point the drivers persist a RunCheckpoint — the
// warm-start subspace V (the eigenvector chain of paper SS III-F, which
// is exactly the state the next point needs), the partial E_RPA sum, the
// completed OmegaRecords with their quarantine/degraded flags and matvec
// counters, the driver RNG state, and a fingerprint of the system +
// RpaOptions. A killed run resumed from its checkpoint replays the
// remaining points from identical state, so its E_RPA, per-omega records
// and run-report JSON are bitwise identical to an uninterrupted run
// (whenever the computation itself is deterministic; see
// docs/REPRODUCING.md, "Checkpoint and resume").
//
// Container layout (little-endian):
//   magic "RSRPAC01"
//   u64 payload_len, then payload_len bytes of JSON (everything except V;
//       doubles round-trip bitwise through obs::Json)
//   the warm-start matrix V in the save_matrix stream format
//   trailing magic "RSRPAEND" (truncation tripwire)
// All writes go through io::atomic_write (tmp + fsync + rename), so a
// crash mid-write can never tear the file readers see.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dft/ks_system.hpp"
#include "la/matrix.hpp"
#include "obs/event_log.hpp"
#include "rpa/erpa.hpp"

namespace rsrpa::io {

/// Bump when a field changes meaning; never reuse a name for a different
/// quantity (same contract as the run-report schema).
inline constexpr std::uint32_t kRunCheckpointVersion = 1;

/// Everything the drivers need to continue a quadrature sweep after the
/// last completed point, plus the accumulators that keep the final run
/// report seamless across the restart.
struct RunCheckpoint {
  std::uint64_t fingerprint = 0;  ///< run_fingerprint() of system + options
  int completed_points = 0;       ///< quadrature points fully accumulated
  int ell = 0;                    ///< total points of the sweep
  double e_rpa_partial = 0.0;     ///< sum over the completed points
  bool degraded = false;
  bool converged = true;          ///< AND over the completed records
  std::string rng_state;          ///< Rng::save_state() of the driver RNG
  std::vector<rpa::OmegaRecord> per_omega;
  rpa::SternheimerStats stern;
  KernelTimers timers;
  obs::EventLog events;           ///< RpaResult::events so far
  la::Matrix<double> v;           ///< warm-start subspace after the point

  /// Parallel-driver extras (run_parallel_rpa). `parallel` guards against
  /// resuming a serial checkpoint in the parallel driver or vice versa;
  /// the rest keeps the modeled Fig. 5 breakdown continuous across the
  /// restart (informational wall-clock, not part of the bitwise contract).
  bool parallel = false;
  double matmult_seconds = 0.0;
  double eigensolve_seconds = 0.0;
  long error_checks = 0;
  std::vector<double> rank_apply_seconds;
  std::vector<double> rank_error_seconds;
};

/// Fingerprint of everything a checkpoint must agree with before resume:
/// the grid, the orbitals and eigenvalues (bitwise), and every
/// computation-relevant RpaOptions field (tolerances, seeds, resilience
/// and fault-injection policy — but NOT the checkpoint policy itself).
/// `n_ranks` distinguishes the drivers: 0 for compute_rpa_energy, the
/// rank count for run_parallel_rpa.
std::uint64_t run_fingerprint(const dft::KsSystem& sys,
                              const rpa::RpaOptions& opts,
                              std::size_t n_ranks);

/// Atomically persist `ck` (tmp + fsync + rename). Throws Error on I/O
/// failure; on failure the previous checkpoint at `path` is untouched.
void save_run_checkpoint(const std::string& path, const RunCheckpoint& ck);

/// Load and validate a checkpoint: magic, version, trailer, internal
/// shape consistency, and — when `expected_fingerprint` is nonzero —
/// refusal of a file written for a different system or options. Throws
/// Error on any mismatch or torn/corrupt file.
RunCheckpoint load_run_checkpoint(const std::string& path,
                                  std::uint64_t expected_fingerprint = 0);

}  // namespace rsrpa::io
