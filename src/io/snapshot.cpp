#include "io/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace rsrpa::io {

namespace {

constexpr char kMatrixMagic[8] = {'R', 'S', 'R', 'P', 'A', 'B', '0', '1'};
constexpr char kKsMagic[8] = {'R', 'S', 'R', 'P', 'A', 'K', '0', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

// Checked read: a short read would otherwise silently yield 0 (the buffer
// stays zero-initialized at EOF) and corrupt every downstream plausibility
// check, so the stream state is validated per read, not after the fact.
std::uint64_t read_u64(std::istream& in, const char* what) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  RSRPA_REQUIRE_MSG(in.good(), std::string("snapshot: truncated ") + what);
  return v;
}

void write_doubles(std::ostream& out, const double* p, std::size_t n) {
  out.write(reinterpret_cast<const char*>(p),
            static_cast<std::streamsize>(n * sizeof(double)));
}

void read_doubles(std::istream& in, double* p, std::size_t n) {
  in.read(reinterpret_cast<char*>(p),
          static_cast<std::streamsize>(n * sizeof(double)));
}

void write_matrix_body(std::ostream& out, const la::Matrix<double>& m) {
  write_u64(out, m.rows());
  write_u64(out, m.cols());
  write_doubles(out, m.data(), m.size());
}

la::Matrix<double> read_matrix_body(std::istream& in) {
  const std::uint64_t rows = read_u64(in, "matrix rows");
  const std::uint64_t cols = read_u64(in, "matrix cols");
  // Validate each dimension individually before touching the product: a
  // corrupt header like rows = cols = 2^33 wraps rows * cols mod 2^64 to
  // 0 and would sail through a product-only plausibility check.
  constexpr std::uint64_t kMaxElems = 1ull << 34;
  RSRPA_REQUIRE_MSG(rows > 0 && cols > 0 && rows < kMaxElems &&
                        cols < kMaxElems && rows <= kMaxElems / cols,
                    "snapshot: implausible matrix shape");
  la::Matrix<double> m(static_cast<std::size_t>(rows),
                       static_cast<std::size_t>(cols));
  read_doubles(in, m.data(), m.size());
  RSRPA_REQUIRE_MSG(in.good(), "snapshot: truncated matrix payload");
  return m;
}

void check_magic(std::istream& in, const char (&magic)[8],
                 const std::string& path) {
  char buf[8] = {};
  in.read(buf, 8);
  RSRPA_REQUIRE_MSG(in.good() && std::memcmp(buf, magic, 8) == 0,
                    "snapshot: bad magic in " + path);
}

// fsync a path (a file's data or a directory's entry table).
void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  RSRPA_REQUIRE_MSG(fd >= 0, "cannot open " + path + " for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  RSRPA_REQUIRE_MSG(rc == 0, "fsync failed for " + path);
}

}  // namespace

void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& body) {
  // Per-process temp name in the destination directory, so the final
  // rename stays within one filesystem and concurrent test processes
  // cannot collide on the staging file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      RSRPA_REQUIRE_MSG(out.good(), "cannot open " + tmp + " for writing");
      body(out);
      out.flush();
      RSRPA_REQUIRE_MSG(out.good(), "write failed for " + tmp);
    }
    fsync_path(tmp, O_RDONLY);
    RSRPA_REQUIRE_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                      "rename failed: " + tmp + " -> " + path);
    std::string parent = std::filesystem::path(path).parent_path().string();
    if (parent.empty()) parent = ".";
    fsync_path(parent, O_RDONLY | O_DIRECTORY);
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
}

void save_matrix_stream(std::ostream& out, const la::Matrix<double>& m) {
  out.write(kMatrixMagic, 8);
  write_matrix_body(out, m);
}

la::Matrix<double> load_matrix_stream(std::istream& in) {
  check_magic(in, kMatrixMagic, "stream");
  return read_matrix_body(in);
}

void save_matrix(const std::string& path, const la::Matrix<double>& m) {
  atomic_write(path, [&m](std::ostream& out) { save_matrix_stream(out, m); });
}

la::Matrix<double> load_matrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RSRPA_REQUIRE_MSG(in.good(), "cannot open " + path);
  check_magic(in, kMatrixMagic, path);
  return read_matrix_body(in);
}

void save_ks_snapshot(const std::string& path, const dft::KsSystem& sys) {
  const grid::Grid3D& g = sys.h->grid();
  atomic_write(path, [&](std::ostream& out) {
    out.write(kKsMagic, 8);
    write_u64(out, g.nx());
    write_u64(out, g.ny());
    write_u64(out, g.nz());
    const double geom[3] = {g.lx(), g.ly(), g.lz()};
    write_doubles(out, geom, 3);
    const double gap[2] = {sys.homo, sys.lumo};
    write_doubles(out, gap, 2);
    write_u64(out, sys.eigenvalues.size());
    write_doubles(out, sys.eigenvalues.data(), sys.eigenvalues.size());
    write_matrix_body(out, sys.orbitals);
  });
}

KsSnapshot load_ks_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RSRPA_REQUIRE_MSG(in.good(), "cannot open " + path);
  check_magic(in, kKsMagic, path);
  KsSnapshot snap;
  const std::uint64_t nx = read_u64(in, "grid nx");
  const std::uint64_t ny = read_u64(in, "grid ny");
  const std::uint64_t nz = read_u64(in, "grid nz");
  // Per-axis bounds so nx * ny * nz (used for the shape consistency check
  // below) cannot overflow for a corrupt header.
  constexpr std::uint64_t kMaxAxis = 1ull << 16;
  RSRPA_REQUIRE_MSG(nx > 0 && ny > 0 && nz > 0 && nx < kMaxAxis &&
                        ny < kMaxAxis && nz < kMaxAxis,
                    "snapshot: implausible grid dimensions");
  snap.nx = static_cast<std::size_t>(nx);
  snap.ny = static_cast<std::size_t>(ny);
  snap.nz = static_cast<std::size_t>(nz);
  double geom[3] = {};
  read_doubles(in, geom, 3);
  snap.lx = geom[0];
  snap.ly = geom[1];
  snap.lz = geom[2];
  double gap[2] = {};
  read_doubles(in, gap, 2);
  RSRPA_REQUIRE_MSG(in.good(), "snapshot: truncated geometry header");
  snap.homo = gap[0];
  snap.lumo = gap[1];
  const std::uint64_t ns = read_u64(in, "orbital count");
  RSRPA_REQUIRE_MSG(ns > 0 && ns < (1ull << 24),
                    "snapshot: implausible orbital count");
  snap.eigenvalues.resize(static_cast<std::size_t>(ns));
  read_doubles(in, snap.eigenvalues.data(), snap.eigenvalues.size());
  snap.orbitals = read_matrix_body(in);
  RSRPA_REQUIRE_MSG(
      snap.orbitals.cols() == snap.eigenvalues.size() &&
          snap.orbitals.rows() == snap.nx * snap.ny * snap.nz,
      "snapshot: inconsistent shapes in " + path);
  return snap;
}

dft::KsSystem restore_ks_system(const KsSnapshot& snap,
                                std::shared_ptr<const ham::Hamiltonian> h) {
  const grid::Grid3D& g = h->grid();
  RSRPA_REQUIRE_MSG(g.nx() == snap.nx && g.ny() == snap.ny &&
                        g.nz() == snap.nz,
                    "snapshot grid does not match the Hamiltonian grid");
  dft::KsSystem sys;
  sys.h = std::move(h);
  sys.eigenvalues = snap.eigenvalues;
  sys.orbitals = snap.orbitals;
  sys.homo = snap.homo;
  sys.lumo = snap.lumo;
  return sys;
}

}  // namespace rsrpa::io
