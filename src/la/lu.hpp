// LU factorization with partial pivoting, real and complex.
//
// Used for the small s x s solves inside block COCG (lines 8 and 12 of
// Algorithm 3) and for the dense direct baseline. The factorization
// exposes a cheap condition indicator (pivot growth ratio) that block
// COCG uses to detect near-breakdown of the conjugacy matrix mu_j.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace rsrpa::la {

template <typename T>
class Lu {
 public:
  /// Factor a (copied) square matrix. Throws NumericalBreakdown on an
  /// exactly singular pivot.
  explicit Lu(Matrix<T> a);

  /// Solve A x = b in place for a single right-hand side.
  void solve_inplace(std::span<T> b) const;

  /// Solve A X = B, overwriting B with X column by column.
  void solve_inplace(Matrix<T>& b) const;

  /// |smallest pivot| / |largest pivot| — a cheap proxy for 1/cond(A).
  [[nodiscard]] double pivot_ratio() const { return pivot_ratio_; }

  /// Determinant (product of pivots with sign of the permutation).
  [[nodiscard]] T det() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  double pivot_ratio_ = 0.0;
};

/// Convenience: X = A^{-1} B without keeping the factorization.
template <typename T>
Matrix<T> lu_solve(const Matrix<T>& a, const Matrix<T>& b) {
  Lu<T> f(a);
  Matrix<T> x = b;
  f.solve_inplace(x);
  return x;
}

extern template class Lu<double>;
extern template class Lu<cplx>;

}  // namespace rsrpa::la
