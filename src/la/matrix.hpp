// Column-major dense matrix.
//
// The storage convention follows LAPACK: element (i, j) lives at
// data[i + j * rows]. Column-major is the natural layout for this library
// because the dominant objects are tall-and-skinny blocks of vectors
// (n_d x n_eig) whose columns are grid functions; a column is then a
// contiguous span that the stencil and Hadamard kernels can stream.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace rsrpa::la {

using cplx = std::complex<double>;

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  T& operator()(std::size_t i, std::size_t j) {
    return data_[i + j * rows_];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    return data_[i + j * rows_];
  }

  /// Contiguous view of column j.
  [[nodiscard]] std::span<T> col(std::size_t j) {
    return {data_.data() + j * rows_, rows_};
  }
  [[nodiscard]] std::span<const T> col(std::size_t j) const {
    return {data_.data() + j * rows_, rows_};
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  void fill(T value) { data_.assign(data_.size(), value); }
  void zero() { fill(T{}); }

  /// Reshape without preserving contents.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  /// Copy of columns [j0, j0+ncols).
  [[nodiscard]] Matrix slice_cols(std::size_t j0, std::size_t ncols) const {
    RSRPA_REQUIRE(j0 + ncols <= cols_);
    Matrix out(rows_, ncols);
    for (std::size_t j = 0; j < ncols; ++j)
      for (std::size_t i = 0; i < rows_; ++i) out(i, j) = (*this)(i, j0 + j);
    return out;
  }

  /// Write `block` into columns [j0, j0+block.cols()).
  void set_cols(std::size_t j0, const Matrix& block) {
    RSRPA_REQUIRE(block.rows() == rows_ && j0 + block.cols() <= cols_);
    for (std::size_t j = 0; j < block.cols(); ++j)
      for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j0 + j) = block(i, j);
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t j = 0; j < cols_; ++j)
      for (std::size_t i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
    return out;
  }

  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) out(i, i) = T{1};
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Promote a real matrix to complex.
inline Matrix<cplx> to_complex(const Matrix<double>& a) {
  Matrix<cplx> out(a.rows(), a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) out(i, j) = a(i, j);
  return out;
}

/// Extract the real part of a complex matrix.
inline Matrix<double> real_part(const Matrix<cplx>& a) {
  Matrix<double> out(a.rows(), a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) out(i, j) = a(i, j).real();
  return out;
}

}  // namespace rsrpa::la
