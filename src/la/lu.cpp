#include "la/lu.hpp"

#include <algorithm>
#include <cmath>

namespace rsrpa::la {

template <typename T>
Lu<T>::Lu(Matrix<T> a) : lu_(std::move(a)), perm_(lu_.rows()) {
  RSRPA_REQUIRE(lu_.rows() == lu_.cols());
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double min_piv = 0.0, max_piv = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude entry in column k at/below k.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > best) {
        best = mag;
        piv = i;
      }
    }
    if (best == 0.0)
      throw NumericalBreakdown("LU: exactly singular pivot at step " +
                               std::to_string(k));
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    min_piv = (k == 0) ? best : std::min(min_piv, best);
    max_piv = std::max(max_piv, best);

    const T inv_piv = T{1} / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T lik = lu_(i, k) * inv_piv;
      lu_(i, k) = lik;
      if (lik == T{0}) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
  pivot_ratio_ = (max_piv > 0.0) ? min_piv / max_piv : 0.0;
}

template <typename T>
void Lu<T>::solve_inplace(std::span<T> b) const {
  const std::size_t n = lu_.rows();
  RSRPA_REQUIRE(b.size() == n);
  // Apply permutation.
  std::vector<T> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  // Forward substitution with unit lower factor.
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(i, j) * y[j];
  // Back substitution with upper factor.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) y[ii] -= lu_(ii, j) * y[j];
    y[ii] /= lu_(ii, ii);
  }
  std::copy(y.begin(), y.end(), b.begin());
}

template <typename T>
void Lu<T>::solve_inplace(Matrix<T>& b) const {
  RSRPA_REQUIRE(b.rows() == lu_.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) solve_inplace(b.col(j));
}

template <typename T>
T Lu<T>::det() const {
  T d = static_cast<T>(perm_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

template class Lu<double>;
template class Lu<cplx>;

}  // namespace rsrpa::la
