// Hand-rolled BLAS-1/2/3 kernels.
//
// No vendor BLAS is available in this environment, so the library carries
// its own kernels. The GEMM variants are cache-blocked and, above a
// flop-count threshold, fan column tiles out on the sched runtime
// (sched::parallel_for over disjoint output-column ranges — bitwise
// identical to the serial loop at any thread count); that is sufficient
// for the tall-and-skinny shapes dominating this code (n_d x s with
// s <= a few hundred).
//
// Transpose conventions: `t` means plain transpose WITHOUT conjugation.
// COCG's conjugate-orthogonality products (W^T W, P^T A P) need the
// unconjugated bilinear form, which is why these kernels exist separately
// from the Hermitian (`h`) forms.
#pragma once

#include <complex>
#include <span>

#include "la/matrix.hpp"

namespace rsrpa::la {

// ---------- BLAS-1 on spans ----------

/// Euclidean dot product x.y (no conjugation).
double dot(std::span<const double> x, std::span<const double> y);
/// Unconjugated bilinear product x^T y for complex vectors.
cplx dot_u(std::span<const cplx> x, std::span<const cplx> y);
/// Conjugated inner product x^H y.
cplx dot_c(std::span<const cplx> x, std::span<const cplx> y);

double nrm2(std::span<const double> x);
double nrm2(std::span<const cplx> x);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void axpy(cplx alpha, std::span<const cplx> x, std::span<cplx> y);

void scal(double alpha, std::span<double> x);
void scal(cplx alpha, std::span<cplx> x);

// ---------- BLAS-3 ----------

/// C = alpha * A * B + beta * C      (A: m x k, B: k x n, C: m x n)
void gemm_nn(double alpha, const Matrix<double>& a, const Matrix<double>& b,
             double beta, Matrix<double>& c);
void gemm_nn(cplx alpha, const Matrix<cplx>& a, const Matrix<cplx>& b,
             cplx beta, Matrix<cplx>& c);

/// C = alpha * A^T * B + beta * C    (A: k x m, B: k x n, C: m x n)
/// For complex T this is the UNCONJUGATED transpose.
void gemm_tn(double alpha, const Matrix<double>& a, const Matrix<double>& b,
             double beta, Matrix<double>& c);
void gemm_tn(cplx alpha, const Matrix<cplx>& a, const Matrix<cplx>& b,
             cplx beta, Matrix<cplx>& c);

/// C = alpha * A^H * B + beta * C    (conjugated transpose)
void gemm_hn(cplx alpha, const Matrix<cplx>& a, const Matrix<cplx>& b,
             cplx beta, Matrix<cplx>& c);

/// Frobenius norm.
double norm_fro(const Matrix<double>& a);
double norm_fro(const Matrix<cplx>& a);

/// Largest absolute entry.
double norm_max(const Matrix<double>& a);

}  // namespace rsrpa::la
