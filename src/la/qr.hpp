// Orthonormalization of tall-and-skinny blocks.
//
// Subspace iteration and CheFSI need to re-orthonormalize n_d x n_eig
// blocks. Cholesky-QR (Gram matrix + Cholesky + triangular solve) is the
// BLAS-3-rich method of choice for well-conditioned blocks; Householder
// thin QR is the robust fallback when the Gram matrix loses definiteness.
#pragma once

#include "la/matrix.hpp"

namespace rsrpa::la {

/// In-place Cholesky-QR: V <- Q with Q^T Q = I and range(Q) = range(V).
/// Throws NumericalBreakdown if the Gram matrix is numerically singular
/// (columns nearly dependent) — callers fall back to householder_qr.
void cholesky_qr(Matrix<double>& v);

/// In-place Householder thin QR: V <- Q (robust, BLAS-2-heavy).
void householder_qr(Matrix<double>& v);

/// Orthonormalize with Cholesky-QR, falling back to Householder on
/// breakdown. This is the entry point the eigensolvers use.
void orthonormalize(Matrix<double>& v);

}  // namespace rsrpa::la
