// Orthonormalization of tall-and-skinny blocks, and rank-revealing
// column-pivoted QR.
//
// Subspace iteration and CheFSI need to re-orthonormalize n_d x n_eig
// blocks. Cholesky-QR (Gram matrix + Cholesky + triangular solve) is the
// BLAS-3-rich method of choice for well-conditioned blocks; Householder
// thin QR is the robust fallback when the Gram matrix loses definiteness.
//
// pivoted_qr is the Businger-Golub QRCP kernel behind ISDF interpolation
// point selection (src/isdf/points): the pivot sequence of a short-and-fat
// sketch matrix IS the point ranking, and the |R_kk| decay reveals the
// numerical rank of the sketched pair-product space.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace rsrpa::la {

/// In-place Cholesky-QR: V <- Q with Q^T Q = I and range(Q) = range(V).
/// Throws NumericalBreakdown if the Gram matrix is numerically singular
/// (columns nearly dependent) — callers fall back to householder_qr.
void cholesky_qr(Matrix<double>& v);

/// In-place Householder thin QR: V <- Q (robust, BLAS-2-heavy).
void householder_qr(Matrix<double>& v);

/// Orthonormalize with Cholesky-QR, falling back to Householder on
/// breakdown. This is the entry point the eigensolvers use.
void orthonormalize(Matrix<double>& v);

/// Result of a rank-revealing column-pivoted QR factorization.
///
/// A[:, pivots] = Q R with Q (m x rank) orthonormal and R (rank x n)
/// upper-trapezoidal in pivoted column order. |R(k,k)| is non-increasing
/// (Businger-Golub greedy pivoting), so the diagonal decay exposes the
/// numerical rank. `pivots` is the full length-n permutation; its first
/// `rank` entries are the selected columns in selection order.
struct PivotedQrResult {
  Matrix<double> q;
  Matrix<double> r;
  std::vector<std::size_t> pivots;
  std::size_t rank = 0;
};

/// Rank-revealing column-pivoted Householder QR (Businger-Golub).
///
/// Stops after `max_rank` pivots (0 = min(m, n)), or earlier when the
/// largest remaining column norm drops to <= rel_tol * |R(0,0)|. Trailing
/// reflector updates are threaded per column through sched::parallel_for
/// and are bitwise deterministic at any thread count; pivot ties break to
/// the smallest column index. Column norms are tracked by downdating with
/// a cancellation guard that recomputes when more than half the bits are
/// gone.
PivotedQrResult pivoted_qr(const Matrix<double>& a, std::size_t max_rank = 0,
                           double rel_tol = 0.0);

}  // namespace rsrpa::la
