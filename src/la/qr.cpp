#include "la/qr.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"

namespace rsrpa::la {

void cholesky_qr(Matrix<double>& v) {
  const std::size_t s = v.cols();
  Matrix<double> gram(s, s);
  gemm_tn(1.0, v, v, 0.0, gram);
  Cholesky chol(gram);  // throws NumericalBreakdown when ill-conditioned
  // V <- V L^{-T}: apply the triangular solve from the right.
  chol.right_backward_t_inplace(v);
}

void householder_qr(Matrix<double>& v) {
  const std::size_t m = v.rows(), n = v.cols();
  RSRPA_REQUIRE(m >= n);
  // Factor: store Householder vectors in the lower trapezoid of a copy.
  Matrix<double> a = v;
  std::vector<double> tau(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double normx = 0.0;
    for (std::size_t i = k; i < m; ++i) normx += a(i, k) * a(i, k);
    normx = std::sqrt(normx);
    if (normx == 0.0) {
      tau[k] = 0.0;
      continue;
    }
    const double alpha = (a(k, k) >= 0.0) ? -normx : normx;
    const double vk = a(k, k) - alpha;
    a(k, k) = alpha;
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= vk;
    tau[k] = -vk / alpha;  // 2 / (v^T v) with v = [1; a(k+1:m,k)] scaling
    // Apply reflector to trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double w = a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) w += a(i, k) * a(i, j);
      w *= tau[k];
      a(k, j) -= w;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= a(i, k) * w;
    }
  }
  // Form the thin Q by applying reflectors to the first n columns of I.
  v.zero();
  for (std::size_t j = 0; j < n; ++j) v(j, j) = 1.0;
  for (std::size_t kk = n; kk-- > 0;) {
    const std::size_t k = kk;
    if (tau[k] == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double w = v(k, j);
      for (std::size_t i = k + 1; i < m; ++i) w += a(i, k) * v(i, j);
      w *= tau[k];
      v(k, j) -= w;
      for (std::size_t i = k + 1; i < m; ++i) v(i, j) -= a(i, k) * w;
    }
  }
}

void orthonormalize(Matrix<double>& v) {
  try {
    cholesky_qr(v);
  } catch (const NumericalBreakdown&) {
    householder_qr(v);
  }
}

}  // namespace rsrpa::la
