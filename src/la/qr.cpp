#include "la/qr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "sched/parallel_for.hpp"

namespace rsrpa::la {

void cholesky_qr(Matrix<double>& v) {
  const std::size_t s = v.cols();
  Matrix<double> gram(s, s);
  gemm_tn(1.0, v, v, 0.0, gram);
  Cholesky chol(gram);  // throws NumericalBreakdown when ill-conditioned
  // V <- V L^{-T}: apply the triangular solve from the right.
  chol.right_backward_t_inplace(v);
}

void householder_qr(Matrix<double>& v) {
  const std::size_t m = v.rows(), n = v.cols();
  RSRPA_REQUIRE(m >= n);
  // Factor: store Householder vectors in the lower trapezoid of a copy.
  Matrix<double> a = v;
  std::vector<double> tau(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double normx = 0.0;
    for (std::size_t i = k; i < m; ++i) normx += a(i, k) * a(i, k);
    normx = std::sqrt(normx);
    if (normx == 0.0) {
      tau[k] = 0.0;
      continue;
    }
    const double alpha = (a(k, k) >= 0.0) ? -normx : normx;
    const double vk = a(k, k) - alpha;
    a(k, k) = alpha;
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= vk;
    tau[k] = -vk / alpha;  // 2 / (v^T v) with v = [1; a(k+1:m,k)] scaling
    // Apply reflector to trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double w = a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) w += a(i, k) * a(i, j);
      w *= tau[k];
      a(k, j) -= w;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= a(i, k) * w;
    }
  }
  // Form the thin Q by applying reflectors to the first n columns of I.
  v.zero();
  for (std::size_t j = 0; j < n; ++j) v(j, j) = 1.0;
  for (std::size_t kk = n; kk-- > 0;) {
    const std::size_t k = kk;
    if (tau[k] == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double w = v(k, j);
      for (std::size_t i = k + 1; i < m; ++i) w += a(i, k) * v(i, j);
      w *= tau[k];
      v(k, j) -= w;
      for (std::size_t i = k + 1; i < m; ++i) v(i, j) -= a(i, k) * w;
    }
  }
}

void orthonormalize(Matrix<double>& v) {
  try {
    cholesky_qr(v);
  } catch (const NumericalBreakdown&) {
    householder_qr(v);
  }
}

PivotedQrResult pivoted_qr(const Matrix<double>& a, std::size_t max_rank,
                           double rel_tol) {
  const std::size_t m = a.rows(), n = a.cols();
  RSRPA_REQUIRE(m >= 1 && n >= 1);
  RSRPA_REQUIRE(rel_tol >= 0.0);
  const std::size_t kmax =
      std::min({max_rank == 0 ? n : max_rank, m, n});

  // Work on a copy: Householder vectors accumulate in the lower trapezoid,
  // R in the upper one, exactly as householder_qr does.
  Matrix<double> w = a;
  PivotedQrResult out;
  out.pivots.resize(n);
  std::iota(out.pivots.begin(), out.pivots.end(), std::size_t{0});

  // Squared remaining norms of each trailing column, maintained by
  // downdating; the original norms gate the cancellation recompute.
  std::vector<double> norms2(n, 0.0), norms2_ref(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const auto cj = w.col(j);
    norms2[j] = dot(cj, cj);
    norms2_ref[j] = norms2[j];
  }

  std::vector<double> tau(kmax, 0.0);
  double r00 = 0.0;
  for (std::size_t k = 0; k < kmax; ++k) {
    // Greedy pivot: largest remaining norm, smallest index on ties so the
    // selection is deterministic regardless of how norms were refreshed.
    std::size_t jmax = k;
    for (std::size_t j = k + 1; j < n; ++j)
      if (norms2[j] > norms2[jmax]) jmax = j;
    if (jmax != k) {
      auto ck = w.col(k), cj = w.col(jmax);
      std::swap_ranges(ck.begin(), ck.end(), cj.begin());
      std::swap(norms2[k], norms2[jmax]);
      std::swap(norms2_ref[k], norms2_ref[jmax]);
      std::swap(out.pivots[k], out.pivots[jmax]);
    }

    double normx = 0.0;
    for (std::size_t i = k; i < m; ++i) normx += w(i, k) * w(i, k);
    normx = std::sqrt(normx);
    if (k == 0) r00 = normx;
    // Rank revealed: the best remaining column is numerically zero (or
    // below the requested relative threshold).
    if (normx == 0.0 || normx <= rel_tol * r00) break;

    const double alpha = (w(k, k) >= 0.0) ? -normx : normx;
    const double vk = w(k, k) - alpha;
    w(k, k) = alpha;
    for (std::size_t i = k + 1; i < m; ++i) w(i, k) /= vk;
    tau[k] = -vk / alpha;
    out.rank = k + 1;

    // Trailing update + norm downdate, one independent task per column —
    // bitwise deterministic at any thread count (disjoint writes, same
    // per-column op sequence). Grain sized so a chunk is ~16k flops.
    const std::size_t rows_left = m - k;
    const std::size_t grain = std::max<std::size_t>(1, 4096 / rows_left);
    sched::parallel_for(k + 1, n, grain, [&](std::size_t j) {
      double wj = w(k, j);
      for (std::size_t i = k + 1; i < m; ++i) wj += w(i, k) * w(i, j);
      wj *= tau[k];
      w(k, j) -= wj;
      for (std::size_t i = k + 1; i < m; ++i) w(i, j) -= w(i, k) * wj;
      // Downdate |col_j(k:m)|^2 by the freshly produced R entry. When
      // cancellation has eaten most of the original magnitude the
      // downdated value is untrustworthy — recompute from scratch.
      double t = norms2[j] - w(k, j) * w(k, j);
      if (!(t > 1e-12 * norms2_ref[j])) {
        t = 0.0;
        for (std::size_t i = k + 1; i < m; ++i) t += w(i, j) * w(i, j);
      }
      norms2[j] = std::max(t, 0.0);
    });
  }

  // R: rank x n in pivoted order (columns beyond rank keep their projected
  // coefficients, so A[:, pivots] = Q R holds for ALL columns when the
  // matrix is exactly low-rank).
  const std::size_t rank = out.rank;
  out.r = Matrix<double>(std::max<std::size_t>(rank, 1), n);
  out.r.zero();
  if (rank > 0)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i <= std::min(j, rank - 1); ++i)
        out.r(i, j) = w(i, j);

  // Thin Q: apply the reflectors to the first `rank` columns of I.
  out.q = Matrix<double>(m, std::max<std::size_t>(rank, 1));
  out.q.zero();
  for (std::size_t j = 0; j < rank; ++j) out.q(j, j) = 1.0;
  for (std::size_t kk = rank; kk-- > 0;) {
    const std::size_t k = kk;
    if (tau[k] == 0.0) continue;
    for (std::size_t j = 0; j < rank; ++j) {
      double wq = out.q(k, j);
      for (std::size_t i = k + 1; i < m; ++i) wq += w(i, k) * out.q(i, j);
      wq *= tau[k];
      out.q(k, j) -= wq;
      for (std::size_t i = k + 1; i < m; ++i) out.q(i, j) -= w(i, k) * wq;
    }
  }
  return out;
}

}  // namespace rsrpa::la
