// Cholesky factorization of symmetric positive-definite matrices.
//
// Used to reduce the generalized symmetric eigenproblem H_s Q = M_s Q D of
// subspace iteration (paper Algorithm 2, line 5) to standard form, and for
// Cholesky-QR orthonormalization inside CheFSI.
#pragma once

#include "la/matrix.hpp"

namespace rsrpa::la {

class Cholesky {
 public:
  /// Factor A = L L^T (lower). Throws NumericalBreakdown if A is not
  /// numerically positive definite.
  explicit Cholesky(const Matrix<double>& a);

  /// Solve A x = b in place.
  void solve_inplace(std::span<double> b) const;
  void solve_inplace(Matrix<double>& b) const;

  /// In-place x <- L^{-1} x (forward substitution only).
  void forward_inplace(std::span<double> b) const;
  /// In-place x <- L^{-T} x (back substitution only).
  void backward_t_inplace(std::span<double> b) const;

  /// B <- L^{-1} B applied column-wise.
  void forward_inplace(Matrix<double>& b) const;
  /// B <- L^{-T} B applied column-wise.
  void backward_t_inplace(Matrix<double>& b) const;

  /// C <- C L^{-T} applied from the right (used in two-sided reduction).
  void right_backward_t_inplace(Matrix<double>& c) const;

  [[nodiscard]] const Matrix<double>& l() const { return l_; }

 private:
  Matrix<double> l_;
};

}  // namespace rsrpa::la
