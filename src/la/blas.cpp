#include "la/blas.hpp"

#include <cmath>

#include "sched/parallel_for.hpp"

namespace rsrpa::la {

namespace {

// Cache-block sizes chosen so a (KB x NB) panel of B and the streamed
// columns of A fit comfortably in L2 for double and complex<double>.
constexpr std::size_t kNB = 64;
constexpr std::size_t kKB = 256;

// Minimum mul-adds worth one sched task. Below this the GEMM runs as a
// plain loop on the caller; above it, column ranges fan out on the global
// pool. Column-disjoint writes keep the result bitwise identical to the
// serial path at every thread count.
constexpr double kMinFlopsPerTask = 4.0e6;

std::size_t column_grain(std::size_t flops_per_col) {
  const double per_col = std::max<double>(static_cast<double>(flops_per_col), 1.0);
  const double cols = kMinFlopsPerTask / per_col;
  return cols <= 1.0 ? 1 : static_cast<std::size_t>(cols);
}

template <typename T>
void gemm_nn_impl(T alpha, const Matrix<T>& a, const Matrix<T>& b, T beta,
                  Matrix<T>& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  RSRPA_REQUIRE(b.rows() == k && c.rows() == m && c.cols() == n);
  if (beta != T{1}) {
    if (beta == T{0})
      c.zero();
    else
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < m; ++i) c(i, j) *= beta;
  }
  // Column-major friendly ordering: for each (jj, kk) panel, stream down
  // columns of C and A. Tasks own disjoint column ranges (>= one kNB
  // panel), so each output column sees the same FP sequence as the
  // serial loop regardless of thread count.
  const std::size_t grain = std::max(kNB, column_grain(m * k));
  sched::parallel_for_range(0, n, grain, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t jj = cb; jj < ce; jj += kNB) {
      const std::size_t jend = std::min(jj + kNB, ce);
      for (std::size_t kk = 0; kk < k; kk += kKB) {
        const std::size_t kend = std::min(kk + kKB, k);
        for (std::size_t j = jj; j < jend; ++j) {
          for (std::size_t p = kk; p < kend; ++p) {
            const T bpj = alpha * b(p, j);
            if (bpj == T{0}) continue;
            const T* acol = &a(0, p);
            T* ccol = &c(0, j);
            for (std::size_t i = 0; i < m; ++i) ccol[i] += acol[i] * bpj;
          }
        }
      }
    }
  });
}

enum class Conj { No, Yes };

// Dot product of two contiguous runs with eight independent accumulator
// chains. A single-accumulator loop is FMA-latency bound (~1 flop per
// 4-cycle dependency step); eight chains keep the pipeline full and map
// onto two SIMD accumulators under auto-vectorization. The reduction
// order is fixed in code, so the result is deterministic.
template <typename T, Conj kConj>
T chunk_dot(const T* x, const T* y, std::size_t len) {
  T s0{}, s1{}, s2{}, s3{}, s4{}, s5{}, s6{}, s7{};
  std::size_t p = 0;
  if constexpr (kConj == Conj::Yes) {
    for (; p + 8 <= len; p += 8) {
      s0 += std::conj(x[p]) * y[p];
      s1 += std::conj(x[p + 1]) * y[p + 1];
      s2 += std::conj(x[p + 2]) * y[p + 2];
      s3 += std::conj(x[p + 3]) * y[p + 3];
      s4 += std::conj(x[p + 4]) * y[p + 4];
      s5 += std::conj(x[p + 5]) * y[p + 5];
      s6 += std::conj(x[p + 6]) * y[p + 6];
      s7 += std::conj(x[p + 7]) * y[p + 7];
    }
    for (; p < len; ++p) s0 += std::conj(x[p]) * y[p];
  } else {
    for (; p + 8 <= len; p += 8) {
      s0 += x[p] * y[p];
      s1 += x[p + 1] * y[p + 1];
      s2 += x[p + 2] * y[p + 2];
      s3 += x[p + 3] * y[p + 3];
      s4 += x[p + 4] * y[p + 4];
      s5 += x[p + 5] * y[p + 5];
      s6 += x[p + 6] * y[p + 6];
      s7 += x[p + 7] * y[p + 7];
    }
    for (; p < len; ++p) s0 += x[p] * y[p];
  }
  return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
}

template <typename T, Conj kConj>
void gemm_tn_impl(T alpha, const Matrix<T>& a, const Matrix<T>& b, T beta,
                  Matrix<T>& c) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  RSRPA_REQUIRE(b.rows() == k && c.rows() == m && c.cols() == n);
  // Each C(i, j) is a dot product of two contiguous columns. For large k
  // a naive dot sweep re-streams all of A from memory once per output
  // column, so accumulate over kKB-length chunks of the shared dimension
  // instead: an (kMB x kKB) panel of A stays in L2 and is reused across
  // the task's whole column range. Per output element the chunk partial
  // sums are added in ascending-p order — one fixed FP sequence — and
  // tasks own disjoint column ranges, so the result is bitwise identical
  // at every thread count.
  constexpr std::size_t kMB = 64;
  const std::size_t grain = column_grain(m * k);
  sched::parallel_for_range(0, n, grain, [&](std::size_t jb, std::size_t je) {
    for (std::size_t j = jb; j < je; ++j) {
      T* ccol = &c(0, j);
      if (beta == T{0})
        for (std::size_t i = 0; i < m; ++i) ccol[i] = T{};
      else if (beta != T{1})
        for (std::size_t i = 0; i < m; ++i) ccol[i] *= beta;
    }
    for (std::size_t kk = 0; kk < k; kk += kKB) {
      const std::size_t klen = std::min(kKB, k - kk);
      for (std::size_t ii = 0; ii < m; ii += kMB) {
        const std::size_t iend = std::min(ii + kMB, m);
        for (std::size_t j = jb; j < je; ++j) {
          const T* bcol = &b(kk, j);
          T* ccol = &c(0, j);
          for (std::size_t i = ii; i < iend; ++i)
            ccol[i] += alpha * chunk_dot<T, kConj>(&a(kk, i), bcol, klen);
        }
      }
    }
  });
}

template <typename T>
double norm_fro_impl(const Matrix<T>& a) {
  double sum = 0.0;
  const T* p = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::norm(p[i]);
  return std::sqrt(sum);
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) {
  RSRPA_REQUIRE(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

cplx dot_u(std::span<const cplx> x, std::span<const cplx> y) {
  RSRPA_REQUIRE(x.size() == y.size());
  cplx sum{};
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

cplx dot_c(std::span<const cplx> x, std::span<const cplx> y) {
  RSRPA_REQUIRE(x.size() == y.size());
  cplx sum{};
  for (std::size_t i = 0; i < x.size(); ++i) sum += std::conj(x[i]) * y[i];
  return sum;
}

double nrm2(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

double nrm2(std::span<const cplx> x) {
  double sum = 0.0;
  for (const cplx& v : x) sum += std::norm(v);
  return std::sqrt(sum);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  RSRPA_REQUIRE(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void axpy(cplx alpha, std::span<const cplx> x, std::span<cplx> y) {
  RSRPA_REQUIRE(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void scal(cplx alpha, std::span<cplx> x) {
  for (cplx& v : x) v *= alpha;
}

void gemm_nn(double alpha, const Matrix<double>& a, const Matrix<double>& b,
             double beta, Matrix<double>& c) {
  gemm_nn_impl(alpha, a, b, beta, c);
}

void gemm_nn(cplx alpha, const Matrix<cplx>& a, const Matrix<cplx>& b,
             cplx beta, Matrix<cplx>& c) {
  gemm_nn_impl(alpha, a, b, beta, c);
}

void gemm_tn(double alpha, const Matrix<double>& a, const Matrix<double>& b,
             double beta, Matrix<double>& c) {
  gemm_tn_impl<double, Conj::No>(alpha, a, b, beta, c);
}

void gemm_tn(cplx alpha, const Matrix<cplx>& a, const Matrix<cplx>& b,
             cplx beta, Matrix<cplx>& c) {
  gemm_tn_impl<cplx, Conj::No>(alpha, a, b, beta, c);
}

void gemm_hn(cplx alpha, const Matrix<cplx>& a, const Matrix<cplx>& b,
             cplx beta, Matrix<cplx>& c) {
  gemm_tn_impl<cplx, Conj::Yes>(alpha, a, b, beta, c);
}

double norm_fro(const Matrix<double>& a) { return norm_fro_impl(a); }
double norm_fro(const Matrix<cplx>& a) { return norm_fro_impl(a); }

double norm_max(const Matrix<double>& a) {
  double mx = 0.0;
  const double* p = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) mx = std::max(mx, std::abs(p[i]));
  return mx;
}

}  // namespace rsrpa::la
