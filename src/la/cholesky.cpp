#include "la/cholesky.hpp"

#include <cmath>

namespace rsrpa::la {

Cholesky::Cholesky(const Matrix<double>& a) : l_(a.rows(), a.cols()) {
  RSRPA_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0))
      throw NumericalBreakdown("Cholesky: matrix not positive definite at row " +
                               std::to_string(j));
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / ljj;
    }
  }
}

void Cholesky::forward_inplace(std::span<double> b) const {
  const std::size_t n = l_.rows();
  RSRPA_REQUIRE(b.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l_(i, j) * b[j];
    b[i] = sum / l_(i, i);
  }
}

void Cholesky::backward_t_inplace(std::span<double> b) const {
  const std::size_t n = l_.rows();
  RSRPA_REQUIRE(b.size() == n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= l_(j, ii) * b[j];
    b[ii] = sum / l_(ii, ii);
  }
}

void Cholesky::solve_inplace(std::span<double> b) const {
  forward_inplace(b);
  backward_t_inplace(b);
}

void Cholesky::solve_inplace(Matrix<double>& b) const {
  for (std::size_t j = 0; j < b.cols(); ++j) solve_inplace(b.col(j));
}

void Cholesky::forward_inplace(Matrix<double>& b) const {
  for (std::size_t j = 0; j < b.cols(); ++j) forward_inplace(b.col(j));
}

void Cholesky::backward_t_inplace(Matrix<double>& b) const {
  for (std::size_t j = 0; j < b.cols(); ++j) backward_t_inplace(b.col(j));
}

void Cholesky::right_backward_t_inplace(Matrix<double>& c) const {
  // Solve X L^T = C row-wise, i.e. for each row r of C: L x = r^T would be
  // wrong; we need x L^T = r  =>  L x^T = r^T, forward substitution per row.
  const std::size_t n = l_.rows();
  RSRPA_REQUIRE(c.cols() == n);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = c(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= c(i, k) * l_(j, k);
      c(i, j) = sum / l_(j, j);
    }
  }
}

}  // namespace rsrpa::la
