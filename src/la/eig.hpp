// Dense symmetric eigensolvers.
//
// The stack is the classical EISPACK pair: Householder tridiagonalization
// with accumulated transforms (tred2) followed by the implicit-shift QL
// iteration (tql2). The generalized solver reduces H_s Q = M_s Q D via
// Cholesky of M_s, exactly the reduction the paper performs with
// ScaLAPACK in Algorithm 2 line 5 / Algorithm 6 lines 9 and 16.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace rsrpa::la {

struct EigResult {
  std::vector<double> values;  ///< ascending
  Matrix<double> vectors;      ///< column j pairs with values[j]
};

/// Eigendecomposition of a symmetric matrix (only the lower triangle is
/// referenced). Eigenvalues ascending, eigenvectors orthonormal.
EigResult sym_eig(const Matrix<double>& a);

/// Eigenvalues only (cheaper: no transform accumulation).
std::vector<double> sym_eigvals(const Matrix<double>& a);

/// Generalized symmetric-definite problem A x = lambda B x with B SPD.
/// Returned vectors are B-orthonormal: X^T B X = I.
EigResult sym_eig_gen(const Matrix<double>& a, const Matrix<double>& b);

/// Eigendecomposition of a symmetric tridiagonal matrix given its diagonal
/// `d` and subdiagonal `e` (e[i] couples rows i and i+1; e.size()==d.size()-1).
/// Used directly by Lanczos quadrature.
EigResult tridiag_eig(std::vector<double> d, std::vector<double> e);

/// Eigenvalues of a symmetric tridiagonal matrix, ascending.
std::vector<double> tridiag_eigvals(std::vector<double> d, std::vector<double> e);

}  // namespace rsrpa::la
