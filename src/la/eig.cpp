#include "la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "la/cholesky.hpp"

namespace rsrpa::la {

namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

// Householder reduction of a symmetric matrix to tridiagonal form with
// accumulation of the orthogonal transform (EISPACK tred2). On exit `z`
// holds the transform Q with A = Q T Q^T, `d` the diagonal of T and `e`
// the subdiagonal (e[i] couples i-1 and i; e[0] = 0).
void tred2(Matrix<double>& z, std::vector<double>& d, std::vector<double>& e,
           bool want_vectors) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t ii = n - 1; ii >= 1; --ii) {
    const std::size_t i = ii;
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          if (want_vectors) z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (std::size_t k = 0; k <= j; ++k)
            z(j, k) -= f * e[k] + g * z(i, k);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }

  if (want_vectors) d[0] = 0.0;
  e[0] = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    if (want_vectors) {
      if (d[i] != 0.0) {
        const std::size_t l = i;  // columns 0..i-1
        for (std::size_t j = 0; j < l; ++j) {
          double g = 0.0;
          for (std::size_t k = 0; k < l; ++k) g += z(i, k) * z(k, j);
          for (std::size_t k = 0; k < l; ++k) z(k, j) -= g * z(k, i);
        }
      }
      d[i] = z(i, i);
      z(i, i) = 1.0;
      for (std::size_t j = 0; j < i; ++j) {
        z(j, i) = 0.0;
        z(i, j) = 0.0;
      }
    } else {
      d[i] = z(i, i);
    }
  }
}

// Implicit-shift QL iteration on a symmetric tridiagonal matrix (EISPACK
// tql2). `d` holds the diagonal, `e` the subdiagonal shifted so e[i]
// couples i and i+1 on entry to this routine's convention below
// (we pass the tred2 layout and shift internally). If `z` is non-null its
// columns are rotated along, producing eigenvectors of the original matrix.
void tql2(std::vector<double>& d, std::vector<double>& e, Matrix<double>* z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  const double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= eps * dd) break;
      }
      if (m != l) {
        if (++iter == 50)
          throw NumericalBreakdown("tql2: too many QL iterations");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Rotation annihilated early: recover and restart this sweep.
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (std::size_t k = 0; k < n; ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

void sort_ascending(std::vector<double>& d, Matrix<double>* z) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });
  std::vector<double> ds(n);
  for (std::size_t i = 0; i < n; ++i) ds[i] = d[order[i]];
  d = std::move(ds);
  if (z != nullptr) {
    Matrix<double> zs(z->rows(), z->cols());
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < z->rows(); ++i) zs(i, j) = (*z)(i, order[j]);
    *z = std::move(zs);
  }
}

}  // namespace

EigResult sym_eig(const Matrix<double>& a) {
  RSRPA_REQUIRE(a.rows() == a.cols());
  EigResult res;
  res.vectors = a;
  std::vector<double> e;
  tred2(res.vectors, res.values, e, /*want_vectors=*/true);
  tql2(res.values, e, &res.vectors);
  sort_ascending(res.values, &res.vectors);
  return res;
}

std::vector<double> sym_eigvals(const Matrix<double>& a) {
  RSRPA_REQUIRE(a.rows() == a.cols());
  Matrix<double> work = a;
  std::vector<double> d, e;
  tred2(work, d, e, /*want_vectors=*/false);
  tql2(d, e, nullptr);
  sort_ascending(d, nullptr);
  return d;
}

EigResult sym_eig_gen(const Matrix<double>& a, const Matrix<double>& b) {
  RSRPA_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols() &&
                a.rows() == b.rows());
  // Reduce to standard form: B = L L^T, C = L^{-1} A L^{-T}.
  Cholesky chol(b);
  Matrix<double> c = a;
  chol.forward_inplace(c);            // C <- L^{-1} A
  chol.right_backward_t_inplace(c);   // C <- C L^{-T}
  EigResult res = sym_eig(c);
  // Back-transform eigenvectors: x = L^{-T} q, which are B-orthonormal.
  chol.backward_t_inplace(res.vectors);
  return res;
}

EigResult tridiag_eig(std::vector<double> d, std::vector<double> e) {
  RSRPA_REQUIRE(e.size() + 1 == d.size() || (d.size() <= 1 && e.empty()));
  const std::size_t n = d.size();
  EigResult res;
  res.vectors = Matrix<double>::identity(n);
  // tql2 expects the tred2 layout where e[i] couples i-1 and i.
  std::vector<double> esh(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) esh[i + 1] = e[i];
  res.values = std::move(d);
  tql2(res.values, esh, &res.vectors);
  sort_ascending(res.values, &res.vectors);
  return res;
}

std::vector<double> tridiag_eigvals(std::vector<double> d,
                                    std::vector<double> e) {
  const std::size_t n = d.size();
  std::vector<double> esh(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) esh[i + 1] = e[i];
  tql2(d, esh, nullptr);
  sort_ascending(d, nullptr);
  return d;
}

}  // namespace rsrpa::la
