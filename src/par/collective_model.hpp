// Alpha-beta cost model for the collectives the distributed code needs.
//
// The build machine has one core, so the distributed execution is
// SIMULATED: the per-rank computation is executed and timed for real
// (capturing the genuine load imbalance of the Sternheimer systems), and
// the communication terms come from this explicit, documented model. The
// default constants approximate the paper's testbed (100 Gbps InfiniBand:
// ~2 us latency, ~12 GB/s effective per-link bandwidth).
//
// Modeled operations:
//  - allreduce: recursive-doubling, log2(p) rounds of (alpha + bytes*beta).
//  - block-column -> block-cyclic redistribution (the ScaLAPACK handoff
//    of SS III-D): each rank exchanges nearly all of its local panel.
//  - ScaLAPACK-style tall-skinny matmult and dense eigensolve parallel
//    times, derived from a measured sequential time plus communication
//    and a saturation point (the paper observes the eigensolve stops
//    scaling near ~100 cores).
#pragma once

#include <cstddef>

namespace rsrpa::par {

struct CollectiveModel {
  double alpha = 2e-6;    ///< per-message latency (s)
  double beta = 8.0e-11;  ///< per-byte transfer time (s), ~12.5 GB/s
  /// Core count beyond which the dense eigensolver stops gaining (the
  /// paper: "too small ... to achieve good parallel efficiency on more
  /// than around 100 CPU cores").
  std::size_t eigensolve_saturation = 96;
  /// Fraction of the redistributed panel each rank must move.
  double redistribution_fraction = 1.0;

  /// Recursive-doubling allreduce of `bytes` over p ranks.
  [[nodiscard]] double allreduce(std::size_t bytes, std::size_t p) const;

  /// Redistribute an n x m double panel from block-column to block-cyclic
  /// layout over p ranks (each rank holds n*m*8/p bytes locally).
  [[nodiscard]] double redistribute(std::size_t n, std::size_t m,
                                    std::size_t p) const;

  /// Parallel time of the projected-matrix products (H_s, M_s, V Q) given
  /// the measured sequential time: compute scales 1/p, plus the
  /// redistribution and the m x m result allreduce that make the paper's
  /// matmult kernel scale poorly for tall-and-skinny shapes.
  [[nodiscard]] double matmult_time(double t_seq, std::size_t n, std::size_t m,
                                    std::size_t p) const;

  /// Parallel time of the m x m dense (generalized) eigensolve given the
  /// measured sequential time: 1/p gain saturating at
  /// eigensolve_saturation, plus a log-growing communication overhead.
  [[nodiscard]] double eigensolve_time(double t_seq, std::size_t m,
                                       std::size_t p) const;
};

}  // namespace rsrpa::par
