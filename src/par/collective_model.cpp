#include "par/collective_model.hpp"

#include <algorithm>
#include <cmath>

namespace rsrpa::par {

namespace {
double log2p(std::size_t p) {
  return p <= 1 ? 0.0 : std::log2(static_cast<double>(p));
}
}  // namespace

double CollectiveModel::allreduce(std::size_t bytes, std::size_t p) const {
  return log2p(p) * (alpha + static_cast<double>(bytes) * beta);
}

double CollectiveModel::redistribute(std::size_t n, std::size_t m,
                                     std::size_t p) const {
  if (p <= 1) return 0.0;
  const double local_bytes =
      8.0 * static_cast<double>(n) * static_cast<double>(m) /
      static_cast<double>(p);
  // All-to-all style exchange of (nearly) the whole local panel, with one
  // message per peer.
  return alpha * static_cast<double>(p - 1) +
         redistribution_fraction * local_bytes * beta;
}

double CollectiveModel::matmult_time(double t_seq, std::size_t n,
                                     std::size_t m, std::size_t p) const {
  if (p <= 1) return t_seq;
  const double compute = t_seq / static_cast<double>(p);
  // Two panels (V and AV) move to block-cyclic layout; the m x m Gram
  // results are combined with an allreduce.
  const double comm = 2.0 * redistribute(n, m, p) + allreduce(8 * m * m, p);
  return compute + comm;
}

double CollectiveModel::eigensolve_time(double t_seq, std::size_t m,
                                        std::size_t p) const {
  const std::size_t p_eff = std::min(p, eigensolve_saturation);
  const double compute = t_seq / static_cast<double>(p_eff);
  // Panel-factorization latency grows with both p and m.
  const double comm =
      log2p(p) * (static_cast<double>(m) * alpha + 8.0 * m * beta * 32.0);
  return compute + comm;
}

}  // namespace rsrpa::par
