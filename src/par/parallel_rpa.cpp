#include "par/parallel_rpa.hpp"

#include <atomic>
#include <cmath>
#include <filesystem>
#include <utility>
#include <vector>

#include "io/checkpoint.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"
#include "rpa/checkpoint_driver.hpp"
#include "rpa/quadrature.hpp"
#include "sched/sched.hpp"
#include "solver/chebyshev.hpp"
#include "solver/resilience.hpp"

namespace rsrpa::par {

namespace {

// Mutable state threaded through one run. rank_seconds points at the
// atomic per-rank buckets applies are charged to (apply vs error phase).
struct RunState {
  const rpa::NuChi0Operator* op = nullptr;
  const ColumnPartition* part = nullptr;
  double omega = 0.0;
  rpa::SternheimerStats* stats = nullptr;
  obs::EventLog* events = nullptr;
  std::atomic<double>* rank_seconds = nullptr;
};

// Apply the operator to the full block, one CONCURRENT task per rank
// slice, timing each slice into its rank's bucket. Output columns are
// disjoint, every task accumulates telemetry into its own sinks, and the
// sinks merge in ascending rank order after the join — so both the
// numbers and the telemetry stream are identical to sequential rank
// execution at any thread count (the deterministic-execution guarantee).
void ranked_apply(RunState& st, const la::Matrix<double>& in,
                  la::Matrix<double>& out) {
  const ColumnPartition& part = *st.part;
  const std::size_t p = part.n_ranks();
  std::vector<rpa::SternheimerStats> rank_stats(p);
  std::vector<obs::EventLog> rank_events(p);
  sched::TaskGroup group;
  for (std::size_t r = 0; r < p; ++r) {
    const std::size_t j0 = part.begin(r), cnt = part.count(r);
    if (cnt == 0) continue;
    group.run([&st, &in, &out, &rank_stats, &rank_events, r, j0, cnt] {
      WallClock clock(st.rank_seconds[r]);
      la::Matrix<double> slice = in.slice_cols(j0, cnt);
      la::Matrix<double> oslice(in.rows(), cnt);
      st.op->apply(slice, oslice, st.omega, &rank_stats[r], nullptr,
                   &rank_events[r]);
      out.set_cols(j0, oslice);
    });
  }
  group.wait();
  for (std::size_t r = 0; r < p; ++r) {
    // Offset the per-rank quarantined-column indices into the V frame:
    // rank r's slice starts at column part.begin(r) of the full block.
    if (st.stats != nullptr)
      st.stats->merge(rank_stats[r], static_cast<long>(part.begin(r)));
    if (st.events != nullptr) st.events->merge(rank_events[r]);
  }
}

struct RrStep {
  std::vector<double> values;
  double error = 0.0;
  double matmult_seconds = 0.0;
  double eigensolve_seconds = 0.0;
};

RrStep ranked_rayleigh_ritz(RunState& st, la::Matrix<double>& v,
                            std::atomic<double>* rank_apply,
                            std::atomic<double>* rank_error) {
  const std::size_t n = v.rows(), m = v.cols();
  la::Matrix<double> av(n, m);
  st.rank_seconds = rank_apply;
  ranked_apply(st, v, av);

  RrStep out;
  la::Matrix<double> hs(m, m), ms(m, m);
  {
    WallTimer t;
    la::gemm_tn(1.0, v, av, 0.0, hs);
    la::gemm_tn(1.0, v, v, 0.0, ms);
    out.matmult_seconds += t.seconds();
  }
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (hs(i, j) + hs(j, i));
      hs(i, j) = avg;
      hs(j, i) = avg;
    }

  la::EigResult sub;
  {
    WallTimer t;
    try {
      sub = la::sym_eig_gen(hs, ms);
    } catch (const NumericalBreakdown& breakdown) {
      if (st.events != nullptr)
        st.events->emit(obs::events::kEigensolveCollapse, breakdown.what(),
                        {{"omega", st.omega},
                         {"subspace_dim", static_cast<double>(m)}});
      la::orthonormalize(v);
      st.rank_seconds = rank_apply;
      ranked_apply(st, v, av);
      la::gemm_tn(1.0, v, av, 0.0, hs);
      sub = la::sym_eig(hs);
    }
    out.eigensolve_seconds += t.seconds();
  }
  out.values = sub.values;

  {
    WallTimer t;
    la::Matrix<double> rotated(n, m);
    la::gemm_nn(1.0, v, sub.vectors, 0.0, rotated);
    v = std::move(rotated);
    out.matmult_seconds += t.seconds();
  }

  // Convergence check (Eq. 7) with a fresh ranked apply. The norm sums —
  // the MPI_Allreduce of the distributed setting — go through the
  // fixed-shape tree of sched::parallel_reduce, so the error (and every
  // filtering decision downstream of it) is bitwise identical at any
  // thread count.
  st.rank_seconds = rank_error;
  ranked_apply(st, v, av);
  const std::pair<double, double> sums = sched::parallel_reduce(
      std::size_t{0}, m, std::size_t{4}, std::pair<double, double>{0.0, 0.0},
      [&](std::size_t jb, std::size_t je) {
        std::pair<double, double> acc{0.0, 0.0};
        for (std::size_t j = jb; j < je; ++j) {
          double r2 = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            const double r = av(i, j) - sub.values[j] * v(i, j);
            r2 += r * r;
          }
          acc.first += std::sqrt(r2);
          acc.second += sub.values[j] * sub.values[j];
        }
        return acc;
      },
      [](std::pair<double, double> a, std::pair<double, double> b) {
        return std::pair<double, double>{a.first + b.first,
                                         a.second + b.second};
      });
  out.error = sums.first / (static_cast<double>(m) *
                            std::max(std::sqrt(sums.second), 1e-300));
  return out;
}

}  // namespace

ParallelRpaResult run_parallel_rpa(const dft::KsSystem& sys,
                                   const poisson::KroneckerLaplacian& klap,
                                   const ParallelRpaOptions& opts) {
  const std::size_t m = opts.rpa.n_eig;
  const std::size_t p = opts.n_ranks;
  RSRPA_REQUIRE(m >= 1 && p >= 1);
  ColumnPartition part(m, p);
  const sched::PoolStats sched_before = sched::global_pool().stats();

  // Each rank caps its block size at n_eig / p (paper SS III-D).
  rpa::RpaOptions ropts = opts.rpa;
  if (ropts.stern.max_block == 0 ||
      static_cast<std::size_t>(ropts.stern.max_block) > part.max_block_size())
    ropts.stern.max_block = static_cast<int>(part.max_block_size());

  ParallelRpaResult result;
  // Solver fallbacks land in per-rank event logs inside ranked_apply and
  // merge into the shared result log in rank order after each join; the
  // options-level sink stays null so concurrent tasks never share one.
  ropts.stern.events = nullptr;

  rpa::NuChi0Operator op(sys, klap, ropts.stern);
  const auto quad = rpa::rpa_frequency_quadrature(ropts.ell);

  result.n_ranks = p;
  result.rank_apply_seconds.assign(p, 0.0);
  result.rank_error_seconds.assign(p, 0.0);
  std::vector<std::atomic<double>> rank_apply(p), rank_error(p);

  double matmult_seconds = 0.0, eigensolve_seconds = 0.0;
  long error_checks = 0;

  RunState st;
  st.op = &op;
  st.part = &part;
  st.stats = &result.rpa.stern;
  st.events = &result.rpa.events;

  Rng rng(ropts.seed);
  const std::size_t n = sys.n_grid();
  la::Matrix<double> v(n, m);
  for (std::size_t j = 0; j < m; ++j) rng.fill_uniform(v.col(j));

  // Checkpointing fingerprints ropts (after the max_block adjustment
  // above — that is the configuration actually computed with), with the
  // rank count distinguishing this driver from compute_rpa_energy.
  const rpa::CheckpointOptions& copts = ropts.checkpoint;
  const bool checkpointing = !copts.path.empty();
  const std::uint64_t fingerprint =
      checkpointing ? io::run_fingerprint(sys, ropts, p) : 0;

  int k0 = 0;
  bool tol_warned = false;
  if (checkpointing && copts.resume && std::filesystem::exists(copts.path)) {
    io::RunCheckpoint ck = io::load_run_checkpoint(copts.path, fingerprint);
    RSRPA_REQUIRE_MSG(ck.rank_apply_seconds.size() == p &&
                          ck.rank_error_seconds.size() == p,
                      "checkpoint rank count mismatch");
    for (std::size_t r = 0; r < p; ++r) {
      rank_apply[r].store(ck.rank_apply_seconds[r],
                          std::memory_order_relaxed);
      rank_error[r].store(ck.rank_error_seconds[r],
                          std::memory_order_relaxed);
    }
    matmult_seconds = ck.matmult_seconds;
    eigensolve_seconds = ck.eigensolve_seconds;
    error_checks = ck.error_checks;
    k0 = rpa::detail::restore_checkpoint(std::move(ck), ropts,
                                         /*parallel=*/true, result.rpa, v,
                                         rng);
    // The restored event log already carries point 0's one-time TOL_EIG
    // warning (if any); don't emit it twice.
    tol_warned = true;
  }

  // Fault injection can be restricted to one quadrature point; the scope
  // guard owns the per-point toggling of the live operator's fault mode
  // and restores the requested mode on every exit path.
  solver::FaultModeScope fault_scope(op.chi0().options().fault.mode);

  WallTimer total;
  for (int k = k0; k < ropts.ell; ++k) {
    rpa::check_run_control(ropts.control);
    const rpa::QuadPoint& q = quad[static_cast<std::size_t>(k)];
    st.omega = q.omega;
    if (fault_scope.requested() != solver::FaultMode::kNone)
      fault_scope.select_for_point(k, ropts.fault_omega);
    const long quarantined_before = result.rpa.stern.quarantined_columns;
    const std::size_t quarantine_idx_before =
        result.rpa.stern.quarantined_column_indices.size();
    const double tol = rpa::tol_for_point(ropts, k, &result.rpa.events,
                                          &tol_warned);

    WallTimer omega_timer;
    RrStep rr =
        ranked_rayleigh_ritz(st, v, rank_apply.data(), rank_error.data());
    matmult_seconds += rr.matmult_seconds;
    eigensolve_seconds += rr.eigensolve_seconds;
    ++error_checks;

    int ncheb = 0;
    while (rr.error > tol && ncheb < ropts.max_filter_iter) {
      const double d_min = rr.values.front();
      const double span = std::max(std::abs(d_min), 1e-12);
      // Same clamp as subspace_iteration: keep damp_lo strictly below the
      // damp_hi edge even if inexact solves push Ritz values past zero.
      const double damp_lo = std::min(rr.values.back(), -1e-9 * span);
      st.rank_seconds = rank_apply.data();
      solver::chebyshev_filter_op(
          [&st](const la::Matrix<double>& in, la::Matrix<double>& out) {
            ranked_apply(st, in, out);
          },
          v, ropts.cheb_degree, damp_lo, 1e-6 * span,
          std::min(d_min, damp_lo - 1e-6 * span));

      rr = ranked_rayleigh_ritz(st, v, rank_apply.data(), rank_error.data());
      matmult_seconds += rr.matmult_seconds;
      eigensolve_seconds += rr.eigensolve_seconds;
      ++error_checks;
      ++ncheb;
    }

    rpa::OmegaRecord rec;
    rec.omega = q.omega;
    rec.weight = q.weight;
    rec.filter_iterations = ncheb;
    rec.error = rr.error;
    rec.converged = rr.error <= tol;
    rec.eigenvalues = rr.values;
    rpa::accumulate_trace_terms(rr.values, k, rec, &result.rpa.events);
    rec.quarantined_columns =
        result.rpa.stern.quarantined_columns - quarantined_before;
    rec.quarantined_column_indices = rpa::detail::quarantined_columns_since(
        result.rpa.stern, quarantine_idx_before);
    if (rec.quarantined_columns > 0) {
      rec.converged = false;
      result.rpa.degraded = true;
      result.rpa.events.emit(
          obs::events::kQuadPointDegraded,
          "quadrature point computed with quarantined Sternheimer columns",
          {{"omega_index", static_cast<double>(k)},
           {"quarantined_columns",
            static_cast<double>(rec.quarantined_columns)}});
    }
    rec.seconds = omega_timer.seconds();
    result.rpa.e_rpa += q.weight * rec.e_term / (2.0 * M_PI);
    result.rpa.converged = result.rpa.converged && rec.converged;

    // Warm-start hygiene: a quarantined column's content is whatever the
    // recovery ladder froze it at — re-randomize before it seeds the next
    // point. Done before the checkpoint write so the persisted V already
    // includes the refill (resume needs no replay).
    if (ropts.warm_start && k + 1 < ropts.ell &&
        !rec.quarantined_column_indices.empty())
      rpa::detail::reseed_quarantined_columns(
          v, rec.quarantined_column_indices, rng, k, result.rpa.events);
    result.rpa.per_omega.push_back(std::move(rec));

    if (checkpointing) {
      // This is the rank-merge barrier: every per-rank telemetry sink has
      // merged into result.rpa, so the snapshot is a consistent cut.
      io::RunCheckpoint ck = rpa::detail::make_checkpoint(
          fingerprint, k + 1, ropts, result.rpa, v, rng);
      ck.parallel = true;
      ck.matmult_seconds = matmult_seconds;
      ck.eigensolve_seconds = eigensolve_seconds;
      ck.error_checks = error_checks;
      ck.rank_apply_seconds.resize(p);
      ck.rank_error_seconds.resize(p);
      for (std::size_t r = 0; r < p; ++r) {
        ck.rank_apply_seconds[r] =
            rank_apply[r].load(std::memory_order_relaxed);
        ck.rank_error_seconds[r] =
            rank_error[r].load(std::memory_order_relaxed);
      }
      io::save_run_checkpoint(copts.path, ck);
      rpa::detail::after_checkpoint_write(copts, k);
    }
  }
  result.rpa.total_seconds = total.seconds();
  result.rpa.e_rpa_per_atom =
      result.rpa.e_rpa / static_cast<double>(sys.h->crystal().n_atoms());

  for (std::size_t r = 0; r < p; ++r) {
    result.rank_apply_seconds[r] =
        rank_apply[r].load(std::memory_order_relaxed);
    result.rank_error_seconds[r] =
        rank_error[r].load(std::memory_order_relaxed);
  }

  // Assemble the modeled parallel wall clock.
  double max_apply = 0.0, max_err = 0.0;
  for (std::size_t r = 0; r < p; ++r) {
    max_apply = std::max(max_apply, result.rank_apply_seconds[r]);
    max_err = std::max(max_err, result.rank_error_seconds[r]);
    result.apply_work_seconds +=
        result.rank_apply_seconds[r] + result.rank_error_seconds[r];
  }
  result.modeled.nu_chi0 = max_apply;
  result.modeled.eval_error =
      max_err + static_cast<double>(error_checks) *
                    opts.net.allreduce(8 * (m + 1), p);
  result.modeled.matmult = opts.net.matmult_time(matmult_seconds, n, m, p);
  result.modeled.eigensolve = opts.net.eigensolve_time(eigensolve_seconds, m, p);
  result.modeled_total_seconds = result.modeled.total();

  // Mirror the serial buckets into the result's timers for reporting.
  result.rpa.timers.add(rpa::kernels::kNuChi0, max_apply);
  result.rpa.timers.add(rpa::kernels::kEvalError, result.modeled.eval_error);
  result.rpa.timers.add(rpa::kernels::kMatmult, result.modeled.matmult);
  result.rpa.timers.add(rpa::kernels::kEigensolve, result.modeled.eigensolve);
  result.sched_stats = sched::global_pool().stats().since(sched_before);
  return result;
}

}  // namespace rsrpa::par
