#include "par/load_balance.hpp"

#include <algorithm>
#include <numeric>

namespace rsrpa::par {

double ScheduleResult::imbalance() const {
  const double total =
      std::accumulate(rank_loads.begin(), rank_loads.end(), 0.0);
  const double avg = total / static_cast<double>(rank_loads.size());
  return avg > 0.0 ? makespan / avg : 1.0;
}

namespace {

ScheduleResult finish(std::vector<double> loads) {
  ScheduleResult out;
  out.makespan = *std::max_element(loads.begin(), loads.end());
  out.rank_loads = std::move(loads);
  return out;
}

// Dispatch items in the given order, each to the least-loaded rank —
// the behavior of a manager handing work to whichever worker frees first.
ScheduleResult greedy_in_order(const std::vector<double>& items,
                               const std::vector<std::size_t>& order,
                               std::size_t p) {
  std::vector<double> loads(p, 0.0);
  for (std::size_t idx : order) {
    auto it = std::min_element(loads.begin(), loads.end());
    *it += items[idx];
  }
  return finish(std::move(loads));
}

}  // namespace

ScheduleResult static_schedule(const std::vector<double>& item_seconds,
                               std::size_t p) {
  RSRPA_REQUIRE(p >= 1 && !item_seconds.empty());
  const std::size_t n = item_seconds.size();
  std::vector<double> loads(p, 0.0);
  const std::size_t base = n / p, extra = n % p;
  std::size_t pos = 0;
  for (std::size_t r = 0; r < p; ++r) {
    const std::size_t count = base + (r < extra ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) loads[r] += item_seconds[pos++];
  }
  return finish(std::move(loads));
}

ScheduleResult manager_worker_schedule(const std::vector<double>& item_seconds,
                                       std::size_t p) {
  RSRPA_REQUIRE(p >= 1 && !item_seconds.empty());
  std::vector<std::size_t> order(item_seconds.size());
  std::iota(order.begin(), order.end(), 0);
  return greedy_in_order(item_seconds, order, p);
}

ScheduleResult lpt_schedule(const std::vector<double>& item_seconds,
                            std::size_t p) {
  RSRPA_REQUIRE(p >= 1 && !item_seconds.empty());
  std::vector<std::size_t> order(item_seconds.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return item_seconds[a] > item_seconds[b];
  });
  return greedy_in_order(item_seconds, order, p);
}

}  // namespace rsrpa::par
