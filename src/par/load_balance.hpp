// Work-distribution strategies for the Sternheimer stage — the paper's
// SS V future-work item 2: "a transition to a manager-worker model of
// work distribution would remove any load balancing issue".
//
// Given measured per-item costs (one item = the Sternheimer work of one
// eigenvector column), compare the paper's STATIC contiguous column
// partition against a MANAGER-WORKER queue (each idle worker pulls the
// next item) and against the offline LPT bound. The a6 bench feeds these
// with real measured column times.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace rsrpa::par {

struct ScheduleResult {
  double makespan = 0.0;            ///< modeled parallel time
  std::vector<double> rank_loads;   ///< per-rank total work
  /// makespan / (total work / p): 1.0 = perfectly balanced.
  [[nodiscard]] double imbalance() const;
};

/// The paper's static layout: contiguous blocks of items per rank.
ScheduleResult static_schedule(const std::vector<double>& item_seconds,
                               std::size_t p);

/// Manager-worker: items dispatched in order, each to the worker that
/// becomes free first (the online greedy list schedule).
ScheduleResult manager_worker_schedule(const std::vector<double>& item_seconds,
                                       std::size_t p);

/// Longest-processing-time-first list schedule — the offline near-optimal
/// reference (requires knowing all costs up front).
ScheduleResult lpt_schedule(const std::vector<double>& item_seconds,
                            std::size_t p);

}  // namespace rsrpa::par
