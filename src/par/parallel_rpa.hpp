// Simulated distributed execution of the RPA driver — the engine behind
// Figs. 4, 5 and 6.
//
// The paper's parallelization (SS III-D) assigns each of p ranks a block
// of n_eig/p eigenvector columns; the Sternheimer stage is embarrassingly
// parallel, while the projected matmults and the dense eigensolve run
// under ScaLAPACK. The driver EXECUTES each rank's column slice as a real
// concurrent task on the sched thread pool (one task per rank; serial in
// submission order when RSRPA_THREADS=1) and TIMES each slice
// individually — capturing the real load imbalance from linear-system
// difficulty and from the s <= n_eig/p block-size cap — and then
// assembles the parallel wall time per kernel:
//
//   nu_chi0     = max over ranks of measured slice time
//   eval error  = max over ranks + modeled allreduce
//   matmult     = measured sequential time / p + modeled redistribution
//   eigensolve  = measured / min(p, saturation) + modeled latency
//
// This is the substitution documented in DESIGN.md: both efficiency-loss
// mechanisms the paper reports (imbalance, collectives) are represented,
// the first by direct measurement.
#pragma once

#include "par/collective_model.hpp"
#include "par/partition.hpp"
#include "rpa/erpa.hpp"
#include "sched/pool_stats.hpp"

namespace rsrpa::par {

struct ParallelRpaOptions {
  rpa::RpaOptions rpa;
  std::size_t n_ranks = 1;
  CollectiveModel net;
};

/// Modeled parallel wall time split by kernel (Fig. 5 rows).
struct KernelBreakdown {
  double nu_chi0 = 0.0;
  double matmult = 0.0;
  double eigensolve = 0.0;
  double eval_error = 0.0;

  [[nodiscard]] double total() const {
    return nu_chi0 + matmult + eigensolve + eval_error;
  }
};

struct ParallelRpaResult {
  rpa::RpaResult rpa;  ///< energy, per-omega records, Sternheimer stats
  std::size_t n_ranks = 1;
  /// Measured per-rank seconds spent applying the operator (filter +
  /// Rayleigh-Ritz phase vs. convergence-check phase).
  std::vector<double> rank_apply_seconds;
  std::vector<double> rank_error_seconds;
  KernelBreakdown modeled;
  double modeled_total_seconds = 0.0;
  /// Sum over ranks of all apply work — the "perfectly balanced" baseline
  /// used to quantify load imbalance.
  double apply_work_seconds = 0.0;
  /// Thread-pool activity during this run (tasks, steals, per-worker busy
  /// seconds), delta against the pool's state at run start.
  sched::PoolStats sched_stats;
};

ParallelRpaResult run_parallel_rpa(const dft::KsSystem& sys,
                                   const poisson::KroneckerLaplacian& klap,
                                   const ParallelRpaOptions& opts);

}  // namespace rsrpa::par
