// Column partition of the eigenvector block across ranks — SS III-D.
//
// The paper parallelizes ONLY across the n_eig eigenvector columns: each
// processor owns every row of its n_eig/p columns, making the Sternheimer
// stage embarrassingly parallel, at the cost of capping the block size at
// s <= n_eig / p. This helper produces the contiguous balanced partition
// and that cap.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace rsrpa::par {

class ColumnPartition {
 public:
  ColumnPartition(std::size_t n_cols, std::size_t n_ranks)
      : n_cols_(n_cols), n_ranks_(n_ranks) {
    RSRPA_REQUIRE_MSG(n_ranks >= 1 && n_ranks <= n_cols,
                      "paper constraint: p <= n_eig so no rank is empty");
  }

  [[nodiscard]] std::size_t n_cols() const { return n_cols_; }
  [[nodiscard]] std::size_t n_ranks() const { return n_ranks_; }

  /// First column owned by `rank`.
  [[nodiscard]] std::size_t begin(std::size_t rank) const {
    RSRPA_REQUIRE(rank < n_ranks_);
    const std::size_t base = n_cols_ / n_ranks_;
    const std::size_t extra = n_cols_ % n_ranks_;
    return rank * base + std::min(rank, extra);
  }

  /// Number of columns owned by `rank` (balanced to within one).
  [[nodiscard]] std::size_t count(std::size_t rank) const {
    RSRPA_REQUIRE(rank < n_ranks_);
    const std::size_t base = n_cols_ / n_ranks_;
    const std::size_t extra = n_cols_ % n_ranks_;
    return base + (rank < extra ? 1 : 0);
  }

  /// The paper's block size cap for this partition: s <= n_eig / p.
  [[nodiscard]] std::size_t max_block_size() const {
    return n_cols_ / n_ranks_;
  }

 private:
  std::size_t n_cols_;
  std::size_t n_ranks_;
};

}  // namespace rsrpa::par
