#include "dft/scf.hpp"

#include <algorithm>
#include <cmath>

#include "dft/density.hpp"
#include "dft/mixing.hpp"
#include "dft/xc.hpp"

namespace rsrpa::dft {

ScfResult run_scf(ham::Hamiltonian& h, const poisson::KroneckerLaplacian& pois,
                  std::size_t n_occ, const ScfOptions& opts, Rng& rng) {
  const grid::Grid3D& g = h.grid();
  const std::size_t n = g.size();
  const std::vector<double> v_pseudo = h.local_potential();

  ScfResult out;
  // Initial guess: orbitals of the bare pseudopotential Hamiltonian.
  out.gs = solve_ground_state(h, n_occ, opts.eig, rng);
  std::vector<double> rho = compute_density(out.gs.orbitals, g);

  std::vector<double> vh(n), veff(n);
  AndersonMixer mixer(opts.anderson_depth, opts.mixing);
  for (int iter = 1; iter <= opts.max_iter; ++iter) {
    // Effective potential from the current density.
    pois.apply_nu(rho, vh);  // -Lap vh = 4 pi rho (Hartree, zero mean)
    const std::vector<double> vxc = lda_vxc(rho);
    for (std::size_t i = 0; i < n; ++i)
      veff[i] = v_pseudo[i] + vh[i] + vxc[i];
    h.set_local_potential(veff);

    out.gs = solve_ground_state(h, n_occ, opts.eig, rng);
    std::vector<double> rho_out = compute_density(out.gs.orbitals, g);

    double diff2 = 0.0, norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = rho_out[i] - rho[i];
      diff2 += d * d;
      norm2 += rho_out[i] * rho_out[i];
    }
    const double rel = std::sqrt(diff2 / std::max(norm2, 1e-30));
    out.iterations = iter;

    if (rel <= opts.tol) {
      out.converged = true;
      rho = std::move(rho_out);
      break;
    }
    if (opts.scheme == ScfOptions::Mixing::kAnderson) {
      rho = mixer.mix(rho, rho_out);
      // Anderson extrapolation can slightly undershoot zero; clamp.
      for (double& v : rho) v = std::max(v, 0.0);
    } else {
      // Linear mixing toward the output density.
      for (std::size_t i = 0; i < n; ++i)
        rho[i] = (1.0 - opts.mixing) * rho[i] + opts.mixing * rho_out[i];
    }
  }

  // Final consistency: eigenpairs must correspond to the potential built
  // from the final density (one last potential refresh + solve).
  pois.apply_nu(rho, vh);
  const std::vector<double> vxc = lda_vxc(rho);
  for (std::size_t i = 0; i < n; ++i) veff[i] = v_pseudo[i] + vh[i] + vxc[i];
  h.set_local_potential(veff);
  out.gs = solve_ground_state(h, n_occ, opts.eig, rng);

  out.density = std::move(rho);
  out.veff = std::move(veff);
  out.band_energy = 0.0;
  for (double lam : out.gs.eigenvalues) out.band_energy += 2.0 * lam;
  return out;
}

}  // namespace rsrpa::dft
