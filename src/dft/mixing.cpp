#include "dft/mixing.hpp"

#include "common/error.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"

namespace rsrpa::dft {

std::vector<double> AndersonMixer::mix(std::span<const double> rho_in,
                                       std::span<const double> rho_out) {
  RSRPA_REQUIRE(rho_in.size() == rho_out.size());
  const std::size_t n = rho_in.size();

  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = rho_out[i] - rho_in[i];

  inputs_.emplace_back(rho_in.begin(), rho_in.end());
  residuals_.push_back(residual);
  while (inputs_.size() > depth_) {
    inputs_.pop_front();
    residuals_.pop_front();
  }

  const std::size_t m = inputs_.size();
  if (m == 1) {
    // First cycle: fall back to damped linear mixing.
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i)
      next[i] = rho_in[i] + beta_ * residual[i];
    return next;
  }

  // Solve the least-squares problem min || sum_k c_k F_k || with
  // sum c_k = 1 via the normal equations on residual differences
  // (the standard Anderson/Pulay formulation).
  const std::size_t mm = m - 1;
  la::Matrix<double> gram(mm, mm);
  std::vector<double> rhs(mm, 0.0);
  const std::vector<double>& f_last = residuals_.back();
  for (std::size_t a = 0; a < mm; ++a) {
    for (std::size_t b = a; b < mm; ++b) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        sum += (f_last[i] - residuals_[a][i]) * (f_last[i] - residuals_[b][i]);
      gram(a, b) = sum;
      gram(b, a) = sum;
    }
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      s += (f_last[i] - residuals_[a][i]) * f_last[i];
    rhs[a] = s;
  }
  // Regularize lightly: histories can become linearly dependent.
  double trace = 0.0;
  for (std::size_t a = 0; a < mm; ++a) trace += gram(a, a);
  for (std::size_t a = 0; a < mm; ++a)
    gram(a, a) += 1e-12 * (trace > 0 ? trace : 1.0);

  std::vector<double> theta;
  try {
    la::Lu<double> lu(gram);
    lu.solve_inplace(std::span<double>(rhs));
    theta = rhs;
  } catch (const NumericalBreakdown&) {
    // Degenerate history: restart from damped linear mixing.
    reset();
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i)
      next[i] = rho_in[i] + beta_ * residual[i];
    return next;
  }

  // Mixed input and residual: x_bar = x_m - sum theta_a (x_m - x_a),
  // f_bar likewise; next input = x_bar + beta f_bar.
  std::vector<double> next(n);
  const std::vector<double>& x_last = inputs_.back();
  for (std::size_t i = 0; i < n; ++i) {
    double xb = x_last[i];
    double fb = f_last[i];
    for (std::size_t a = 0; a < mm; ++a) {
      xb -= theta[a] * (x_last[i] - inputs_[a][i]);
      fb -= theta[a] * (f_last[i] - residuals_[a][i]);
    }
    next[i] = xb + beta_ * fb;
  }
  return next;
}

}  // namespace rsrpa::dft
