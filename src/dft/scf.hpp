// Self-consistent field loop — the "prior KS-DFT calculation" of the
// paper, whose occupied orbitals, energies and density the RPA stage
// consumes. V_eff = V_pseudo + V_Hartree(rho) + V_xc(rho), with the
// Hartree potential from the Kronecker Poisson solver and simple linear
// density mixing. Each cycle re-solves the lowest eigenpairs with CheFSI.
#pragma once

#include "dft/chefsi.hpp"
#include "poisson/kronecker.hpp"

namespace rsrpa::dft {

struct ScfOptions {
  enum class Mixing { kLinear, kAnderson };

  int max_iter = 40;
  double tol = 1e-6;     ///< relative density residual ||rho_out - rho_in||
  double mixing = 0.35;  ///< damping (linear) / beta (Anderson)
  Mixing scheme = Mixing::kAnderson;
  std::size_t anderson_depth = 5;
  ChefsiOptions eig;
};

struct ScfResult {
  GroundState gs;                ///< eigenpairs in the CONVERGED V_eff
  std::vector<double> density;   ///< self-consistent electron density
  std::vector<double> veff;      ///< converged effective local potential
  int iterations = 0;
  bool converged = false;
  double band_energy = 0.0;      ///< 2 sum_j lambda_j
};

/// Run the SCF loop. On return `h` carries the converged V_eff, so the
/// eigenpairs in the result are eigenpairs of `h` — the invariant the
/// Sternheimer equations rely on.
ScfResult run_scf(ham::Hamiltonian& h, const poisson::KroneckerLaplacian& pois,
                  std::size_t n_occ, const ScfOptions& opts, Rng& rng);

}  // namespace rsrpa::dft
