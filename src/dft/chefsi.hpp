// Chebyshev-filtered subspace iteration (CheFSI) ground-state solver.
//
// Computes the lowest eigenpairs of the Kohn-Sham Hamiltonian — the
// occupied orbitals and energies the RPA stage consumes. This is the
// standard CheFSI of Zhou, Saad, Tiago & Chelikowsky (paper ref [34]):
// a degree-m scaled Chebyshev filter amplifies the wanted low end of the
// spectrum while damping [a, b] (a = top Ritz value of the current block,
// b = a rigorous upper bound of H), followed by orthonormalization and
// Rayleigh-Ritz. The paper applies the same filtering idea to the LINEAR
// eigenproblem of nu^{1/2} chi0 nu^{1/2}; that variant lives in src/rpa.
#pragma once

#include "common/rng.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "la/matrix.hpp"

namespace rsrpa::dft {

struct ChefsiOptions {
  int degree = 12;             ///< Chebyshev filter degree per iteration
  int max_iter = 60;
  double tol = 1e-8;           ///< max relative eigenpair residual
  std::size_t extra_states = 8;  ///< buffer states beyond the wanted count
};

struct GroundState {
  std::vector<double> eigenvalues;  ///< lowest n_states, ascending
  la::Matrix<double> orbitals;      ///< n_d x n_states, grid-l2-orthonormal
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Apply the scaled Chebyshev filter p_m(H) to the block V in place,
/// damping the interval [a, b]; a0 is a lower estimate of the full
/// spectrum used for the stable scaling. Exposed for reuse by tests and
/// by the RPA subspace iteration.
void chebyshev_filter(const ham::Hamiltonian& h, la::Matrix<double>& v,
                      int degree, double a, double b, double a0);

/// Solve for the lowest `n_states` eigenpairs of H.
GroundState solve_ground_state(const ham::Hamiltonian& h, std::size_t n_states,
                               const ChefsiOptions& opts, Rng& rng);

}  // namespace rsrpa::dft
