#include "dft/density.hpp"

namespace rsrpa::dft {

std::vector<double> compute_density(const la::Matrix<double>& orbitals,
                                    const grid::Grid3D& g) {
  RSRPA_REQUIRE(orbitals.rows() == g.size());
  std::vector<double> rho(g.size(), 0.0);
  const double scale = 2.0 / g.dv();
  for (std::size_t j = 0; j < orbitals.cols(); ++j) {
    auto col = orbitals.col(j);
    for (std::size_t i = 0; i < g.size(); ++i)
      rho[i] += scale * col[i] * col[i];
  }
  return rho;
}

double integrate(std::span<const double> rho, const grid::Grid3D& g) {
  double sum = 0.0;
  for (double v : rho) sum += v;
  return sum * g.dv();
}

}  // namespace rsrpa::dft
