// Electron density from occupied orbitals.
//
// Orbitals are grid-l2-orthonormal (sum_i psi_i^2 = 1); the physical
// normalization carries a 1/dv so that the density integrates to the
// electron count: integral rho dv = 2 * n_occ (doubly-occupied orbitals).
#pragma once

#include <span>
#include <vector>

#include "grid/grid.hpp"
#include "la/matrix.hpp"

namespace rsrpa::dft {

/// rho(r) = (2/dv) sum_j |psi_j(r)|^2 over the occupied orbitals.
std::vector<double> compute_density(const la::Matrix<double>& orbitals,
                                    const grid::Grid3D& g);

/// integral rho dv — must equal twice the orbital count.
double integrate(std::span<const double> rho, const grid::Grid3D& g);

}  // namespace rsrpa::dft
