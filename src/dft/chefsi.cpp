#include "dft/chefsi.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"
#include "solver/chebyshev.hpp"

namespace rsrpa::dft {

void chebyshev_filter(const ham::Hamiltonian& h, la::Matrix<double>& v,
                      int degree, double a, double b, double a0) {
  // Fused three-term binding: the polynomial scalars fold into the
  // Hamiltonian's single-sweep kernel, so each filter step is one memory
  // pass per column plus the block nonlocal update.
  solver::chebyshev_filter_fused(
      [&h](const la::Matrix<double>& in, la::Matrix<double>& out, double c1,
           double c0, const la::Matrix<double>* extra, double c2) {
        h.apply_poly_block<double>(in, out, c1, c0, extra, c2);
      },
      v, degree, a, b, a0);
}

GroundState solve_ground_state(const ham::Hamiltonian& h, std::size_t n_states,
                               const ChefsiOptions& opts, Rng& rng) {
  const std::size_t n = h.grid().size();
  const std::size_t block = std::min(n, n_states + opts.extra_states);
  RSRPA_REQUIRE(n_states >= 1 && n_states <= block);

  la::Matrix<double> v(n, block);
  for (std::size_t j = 0; j < block; ++j) rng.fill_uniform(v.col(j));
  la::orthonormalize(v);

  const double ub = h.upper_bound();
  const double lb = h.lower_bound();

  la::Matrix<double> hv(n, block), hs(block, block);
  std::vector<double> ritz;
  GroundState gs;

  for (int iter = 0; iter < opts.max_iter; ++iter) {
    // Rayleigh-Ritz on the current (orthonormal) block.
    h.apply_block<double>(v, hv);
    la::gemm_tn(1.0, v, hv, 0.0, hs);
    la::EigResult sub = la::sym_eig(hs);
    ritz = sub.values;
    la::Matrix<double> rotated(n, block);
    la::gemm_nn(1.0, v, sub.vectors, 0.0, rotated);
    v = std::move(rotated);

    // Residual of the wanted eigenpairs: ||H v_j - theta_j v_j||.
    h.apply_block<double>(v, hv);
    double max_res = 0.0;
    for (std::size_t j = 0; j < n_states; ++j) {
      double res2 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = hv(i, j) - ritz[j] * v(i, j);
        res2 += r * r;
      }
      max_res = std::max(max_res,
                         std::sqrt(res2) / std::max(std::abs(ritz[j]), 1.0));
    }
    gs.iterations = iter + 1;
    gs.residual = max_res;
    if (max_res <= opts.tol) {
      gs.converged = true;
      break;
    }

    // Filter: damp [top Ritz value, upper bound], amplify below.
    const double a = ritz.back() + 1e-8 * (ub - lb);
    const double a0 = std::min(ritz.front(), lb);
    chebyshev_filter(h, v, opts.degree, a, ub, a0);
    la::orthonormalize(v);
  }

  gs.eigenvalues.assign(ritz.begin(), ritz.begin() + n_states);
  gs.orbitals = v.slice_cols(0, n_states);
  return gs;
}

}  // namespace rsrpa::dft
