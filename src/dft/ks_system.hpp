// The handoff object between the KS-DFT substrate and the RPA stage.
//
// KsSystem bundles everything Algorithm 7 of the paper needs: the (fixed)
// Hamiltonian, the lowest n_s eigenpairs (occupied orbitals), and the
// spectral gap that controls how hard the (n_s, l) Sternheimer systems
// are. gap_lambda is also what the Galerkin initial guess (Eq. 13)
// deflates against.
#pragma once

#include <memory>
#include <vector>

#include "dft/chefsi.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "la/matrix.hpp"

namespace rsrpa::dft {

struct KsSystem {
  std::shared_ptr<const ham::Hamiltonian> h;  ///< with converged V_eff
  std::vector<double> eigenvalues;            ///< lowest n_s, ascending
  la::Matrix<double> orbitals;                ///< n_d x n_s, l2-orthonormal
  double lumo = 0.0;                          ///< first unoccupied energy
  double homo = 0.0;                          ///< highest occupied energy

  [[nodiscard]] std::size_t n_occ() const { return eigenvalues.size(); }
  [[nodiscard]] std::size_t n_grid() const { return h->grid().size(); }
  [[nodiscard]] double gap() const { return lumo - homo; }
};

/// Solve the lowest n_occ + 1 states of `h` (no SCF — fixed potential) and
/// package the occupied manifold. Used when the caller has already run
/// SCF, or for the non-self-consistent model experiments.
KsSystem make_ks_system(std::shared_ptr<const ham::Hamiltonian> h,
                        std::size_t n_occ, const ChefsiOptions& opts, Rng& rng);

}  // namespace rsrpa::dft
