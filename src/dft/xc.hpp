// Local density approximation exchange-correlation.
//
// Slater exchange plus Perdew-Zunger (1981) parametrization of the
// Ceperley-Alder correlation energy — the baseline LDA functional whose
// correlation energy the computed E_RPA ultimately replaces (paper SS II).
// All quantities in Hartree atomic units; spin-unpolarized.
#pragma once

#include <span>
#include <vector>

namespace rsrpa::dft {

struct XcEnergyDensity {
  double exc = 0.0;  ///< energy density per electron, epsilon_xc(rho)
  double vxc = 0.0;  ///< exchange-correlation potential d(rho exc)/d rho
};

/// LDA exchange-correlation at a single density value (rho >= 0).
XcEnergyDensity lda_xc(double rho);

/// Potential on the whole grid.
std::vector<double> lda_vxc(std::span<const double> rho);

/// Total XC energy: integral rho * epsilon_xc(rho) dv.
double lda_exc_energy(std::span<const double> rho, double dv);

}  // namespace rsrpa::dft
