// Density mixing accelerators for the SCF loop.
//
// Linear mixing is robust but slow; Anderson (Pulay/DIIS-type) mixing
// extrapolates over a history of (density, residual) pairs and is the
// standard accelerator in real-space DFT codes such as SPARC. The SCF
// driver selects the scheme through ScfOptions.
#pragma once

#include <deque>
#include <span>
#include <vector>

namespace rsrpa::dft {

/// Anderson mixing with a bounded history. Usage per SCF cycle:
///   next = mixer.mix(rho_in, rho_out);
class AndersonMixer {
 public:
  /// `depth` history pairs, `beta` the damping applied to the
  /// extrapolated residual (beta = 1 is plain Anderson).
  AndersonMixer(std::size_t depth, double beta)
      : depth_(depth), beta_(beta) {}

  /// Compute the next input density from the current (in, out) pair.
  std::vector<double> mix(std::span<const double> rho_in,
                          std::span<const double> rho_out);

  void reset() {
    inputs_.clear();
    residuals_.clear();
  }

  [[nodiscard]] std::size_t history_size() const { return inputs_.size(); }

 private:
  std::size_t depth_;
  double beta_;
  std::deque<std::vector<double>> inputs_;     ///< rho_in history
  std::deque<std::vector<double>> residuals_;  ///< rho_out - rho_in history
};

}  // namespace rsrpa::dft
