#include "dft/ks_system.hpp"

namespace rsrpa::dft {

KsSystem make_ks_system(std::shared_ptr<const ham::Hamiltonian> h,
                        std::size_t n_occ, const ChefsiOptions& opts,
                        Rng& rng) {
  RSRPA_REQUIRE(n_occ >= 1);
  // Solve one extra state so the gap (HOMO-LUMO) is available.
  GroundState gs = solve_ground_state(*h, n_occ + 1, opts, rng);
  KsSystem sys;
  sys.h = std::move(h);
  sys.lumo = gs.eigenvalues[n_occ];
  sys.homo = gs.eigenvalues[n_occ - 1];
  sys.eigenvalues.assign(gs.eigenvalues.begin(),
                         gs.eigenvalues.begin() + n_occ);
  sys.orbitals = gs.orbitals.slice_cols(0, n_occ);
  return sys;
}

}  // namespace rsrpa::dft
