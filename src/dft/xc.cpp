#include "dft/xc.hpp"

#include <cmath>

namespace rsrpa::dft {

namespace {
// Perdew-Zunger correlation constants (unpolarized).
constexpr double kGamma = -0.1423, kBeta1 = 1.0529, kBeta2 = 0.3334;
constexpr double kA = 0.0311, kB = -0.048, kC = 0.0020, kD = -0.0116;
constexpr double kRhoFloor = 1e-14;
}  // namespace

XcEnergyDensity lda_xc(double rho) {
  XcEnergyDensity out;
  if (rho < kRhoFloor) return out;

  // Slater exchange.
  const double cx = -0.75 * std::cbrt(3.0 / M_PI);
  const double ex = cx * std::cbrt(rho);
  const double vx = (4.0 / 3.0) * ex;

  // Perdew-Zunger correlation via the Wigner-Seitz radius.
  const double rs = std::cbrt(3.0 / (4.0 * M_PI * rho));
  double ec, vc;
  if (rs >= 1.0) {
    const double sq = std::sqrt(rs);
    const double den = 1.0 + kBeta1 * sq + kBeta2 * rs;
    ec = kGamma / den;
    vc = ec * (1.0 + (7.0 / 6.0) * kBeta1 * sq + (4.0 / 3.0) * kBeta2 * rs) / den;
  } else {
    const double ln = std::log(rs);
    ec = kA * ln + kB + kC * rs * ln + kD * rs;
    vc = kA * ln + (kB - kA / 3.0) + (2.0 / 3.0) * kC * rs * ln +
         ((2.0 * kD - kC) / 3.0) * rs;
  }

  out.exc = ex + ec;
  out.vxc = vx + vc;
  return out;
}

std::vector<double> lda_vxc(std::span<const double> rho) {
  std::vector<double> v(rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i) v[i] = lda_xc(rho[i]).vxc;
  return v;
}

double lda_exc_energy(std::span<const double> rho, double dv) {
  double e = 0.0;
  for (double r : rho) e += r * lda_xc(r).exc;
  return e * dv;
}

}  // namespace rsrpa::dft
