#include "direct/dense.hpp"

#include "la/blas.hpp"

namespace rsrpa::direct {

la::Matrix<double> dense_hamiltonian(const ham::Hamiltonian& h) {
  const std::size_t n = h.grid().size();
  la::Matrix<double> dense(n, n);
  std::vector<double> e(n, 0.0), col(n);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    h.apply<double>(e, col);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) dense(i, j) = col[i];
  }
  return dense;
}

la::EigResult full_diagonalization(const ham::Hamiltonian& h) {
  return la::sym_eig(dense_hamiltonian(h));
}

la::Matrix<double> dense_chi0(const la::EigResult& eig, std::size_t n_occ,
                              double omega, double dv) {
  const std::size_t n = eig.values.size();
  RSRPA_REQUIRE(n_occ >= 1 && n_occ < n && omega > 0.0);

  // chi0 = sum_j D_j G_j D_j with D_j = diag(psi_j) and
  // G_j = Q diag( 4 (lam_a - lam_j) / ((lam_a - lam_j)^2 + w^2) ) Q^T.
  // Occupied-occupied terms cancel pairwise inside the j sum, so the full
  // resolvent over ALL states a reproduces the occupied-unoccupied
  // Adler-Wiser sum exactly (see DESIGN.md).
  const la::Matrix<double>& q = eig.vectors;
  la::Matrix<double> qt = q.transposed();
  la::Matrix<double> chi0(n, n), scaled(n, n), g(n, n);

  for (std::size_t j = 0; j < n_occ; ++j) {
    const double lam_j = eig.values[j];
    // scaled = Q * diag(f_a)
    for (std::size_t a = 0; a < n; ++a) {
      const double d = lam_j - eig.values[a];
      const double f = 4.0 * d / (d * d + omega * omega);
      const double* qa = &q(0, a);
      double* sa = &scaled(0, a);
      for (std::size_t i = 0; i < n; ++i) sa[i] = qa[i] * f;
    }
    la::gemm_nn(1.0, scaled, qt, 0.0, g);
    // chi0 += D_j G D_j (element-wise outer scaling by psi_j).
    const double* psi = &q(0, j);
    for (std::size_t c = 0; c < n; ++c) {
      const double pc = psi[c];
      const double* gc = &g(0, c);
      double* xc = &chi0(0, c);
      for (std::size_t i = 0; i < n; ++i) xc[i] += psi[i] * gc[i] * pc;
    }
  }
  // Grid-orbital convention -> continuum polarizability operator.
  const double inv_dv = 1.0 / dv;
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t i = 0; i < n; ++i) chi0(i, c) *= inv_dv;
  return chi0;
}

la::Matrix<double> dense_nu_half_chi0_nu_half(
    const la::Matrix<double>& chi0, const poisson::KroneckerLaplacian& klap) {
  const std::size_t n = chi0.rows();
  RSRPA_REQUIRE(chi0.cols() == n && klap.grid().size() == n);
  la::Matrix<double> m = chi0;
  klap.apply_nu_sqrt_block(m);  // columns: nu^{1/2} chi0
  m = m.transposed();
  klap.apply_nu_sqrt_block(m);  // rows (via transpose): ... nu^{1/2}
  // Result is symmetric up to roundoff; symmetrize for the eigensolver.
  for (std::size_t jc = 0; jc < n; ++jc)
    for (std::size_t i = 0; i < jc; ++i) {
      const double avg = 0.5 * (m(i, jc) + m(jc, i));
      m(i, jc) = avg;
      m(jc, i) = avg;
    }
  return m;
}

std::vector<double> nu_chi0_spectrum(const la::EigResult& eig,
                                     std::size_t n_occ, double omega,
                                     const poisson::KroneckerLaplacian& klap,
                                     double dv) {
  la::Matrix<double> chi0 = dense_chi0(eig, n_occ, omega, dv);
  la::Matrix<double> m = dense_nu_half_chi0_nu_half(chi0, klap);
  return la::sym_eigvals(m);
}

}  // namespace rsrpa::direct
