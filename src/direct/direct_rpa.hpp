// Direct evaluation of the RPA correlation energy — the quartic-scaling
// baseline (explicit chi0 + dense trace) used for experiment E8 and as
// the high-accuracy oracle for the iterative formulation.
#pragma once

#include "direct/dense.hpp"
#include "rpa/erpa.hpp"
#include "rpa/quadrature.hpp"

namespace rsrpa::direct {

struct DirectRpaResult {
  double e_rpa = 0.0;
  double e_rpa_per_atom = 0.0;
  double total_seconds = 0.0;
  double diagonalization_seconds = 0.0;
  /// Per quadrature point: the exact trace contribution (full spectrum,
  /// or the n_keep most negative eigenvalues when truncated), and the
  /// full spectrum itself (ascending) for Fig. 1.
  std::vector<double> e_terms;
  std::vector<std::vector<double>> spectra;
};

/// Compute E_RPA by full diagonalization + explicit Adler-Wiser chi0 at
/// each of `ell` quadrature points. `keep_spectra` stores the full
/// nu chi0 spectrum per omega (Fig. 1 data). `n_keep` truncates the trace
/// to the n_keep most negative eigenvalues per point (0 = full trace) —
/// the apples-to-apples comparison against the subspace drivers at the
/// same N_NUCHI_EIGS. `control` is the standard cooperative cancel/
/// preempt hook, polled at quadrature-point boundaries.
DirectRpaResult compute_direct_rpa(const ham::Hamiltonian& h,
                                   std::size_t n_occ,
                                   const poisson::KroneckerLaplacian& klap,
                                   int ell, bool keep_spectra = false,
                                   std::size_t n_keep = 0,
                                   const rpa::RunControl* control = nullptr);

}  // namespace rsrpa::direct
