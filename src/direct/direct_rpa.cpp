#include "direct/direct_rpa.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "rpa/erpa.hpp"

namespace rsrpa::direct {

DirectRpaResult compute_direct_rpa(const ham::Hamiltonian& h,
                                   std::size_t n_occ,
                                   const poisson::KroneckerLaplacian& klap,
                                   int ell, bool keep_spectra,
                                   std::size_t n_keep,
                                   const rpa::RunControl* control) {
  DirectRpaResult out;
  WallTimer total;

  WallTimer diag_timer;
  la::EigResult eig = full_diagonalization(h);
  out.diagonalization_seconds = diag_timer.seconds();

  const double dv = h.grid().dv();
  const auto quad = rpa::rpa_frequency_quadrature(ell);
  for (const rpa::QuadPoint& q : quad) {
    rpa::check_run_control(control);
    std::vector<double> spectrum =
        nu_chi0_spectrum(eig, n_occ, q.omega, klap, dv);
    // Ascending spectrum: the first n_keep entries are the most negative.
    const std::size_t keep =
        n_keep == 0 ? spectrum.size() : std::min(n_keep, spectrum.size());
    double e_term = 0.0;
    for (std::size_t i = 0; i < keep; ++i)
      e_term += rpa::rpa_trace_term(spectrum[i]);
    out.e_terms.push_back(e_term);
    out.e_rpa += q.weight * e_term / (2.0 * M_PI);
    if (keep_spectra) out.spectra.push_back(std::move(spectrum));
  }

  out.e_rpa_per_atom = out.e_rpa / static_cast<double>(h.crystal().n_atoms());
  out.total_seconds = total.seconds();
  return out;
}

}  // namespace rsrpa::direct
