// Dense direct machinery — the O(n_d^4)-class baseline the paper compares
// against (ABINIT-style direct RPA) and the reference oracle the tests
// validate the matrix-free path with.
//
// Everything here materializes n_d x n_d matrices, so it is only run on
// the reduced presets; that is the point — the direct approach is exactly
// what stops scaling.
#pragma once

#include "dft/ks_system.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "la/eig.hpp"
#include "poisson/kronecker.hpp"

namespace rsrpa::direct {

/// Materialize the Hamiltonian as a dense symmetric matrix (column by
/// column through the matrix-free apply).
la::Matrix<double> dense_hamiltonian(const ham::Hamiltonian& h);

/// Full eigendecomposition of H (all n_d eigenpairs) — the "occupied AND
/// unoccupied orbitals" requirement of direct approaches (paper SS I).
la::EigResult full_diagonalization(const ham::Hamiltonian& h);

/// Explicit Adler-Wiser construction (Eq. 2, real orbitals, imaginary
/// frequency): the dense polarizability OPERATOR matrix, i.e. including
/// the 1/dv quadrature factor so it matches Chi0Applier's convention.
/// `eig` must be the full decomposition of H; the lowest n_occ states are
/// occupied.
la::Matrix<double> dense_chi0(const la::EigResult& eig, std::size_t n_occ,
                              double omega, double dv);

/// The symmetrized operator nu^{1/2} chi0 nu^{1/2} as a dense matrix.
la::Matrix<double> dense_nu_half_chi0_nu_half(
    const la::Matrix<double>& chi0, const poisson::KroneckerLaplacian& klap);

/// Full spectrum of nu chi0(i omega) (equal to the symmetrized operator's
/// spectrum), ascending — the exact curve of paper Fig. 1.
std::vector<double> nu_chi0_spectrum(const la::EigResult& eig,
                                     std::size_t n_occ, double omega,
                                     const poisson::KroneckerLaplacian& klap,
                                     double dv);

}  // namespace rsrpa::direct
