// Nonlocal pseudopotential projectors: the sparse X X^H term.
//
// One normalized Gaussian s-type projector per atom, truncated to a
// compact support sphere, with strength gamma > 0 (repulsive, mimicking
// core orthogonality in a real pseudopotential). Applying the term is a
// sparse-dense product: for block inputs the per-projector inner products
// across all columns form the higher-arithmetic-intensity matmult the
// paper exploits (SS III-C).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "grid/grid.hpp"
#include "hamiltonian/crystal.hpp"
#include "hamiltonian/potential.hpp"
#include "la/matrix.hpp"

namespace rsrpa::ham {

class NonlocalProjectors {
 public:
  NonlocalProjectors(const grid::Grid3D& g, const Crystal& crystal,
                     const ModelParams& params);

  [[nodiscard]] std::size_t n_projectors() const { return projectors_.size(); }

  /// out += sum_a gamma_a p_a (p_a . in)  — real orbitals make X X^H a
  /// plain transpose product, so one template covers real and complex.
  template <typename T>
  void apply_add(std::span<const T> in, std::span<T> out) const {
    for (const Projector& p : projectors_) {
      T overlap{};
      for (std::size_t k = 0; k < p.idx.size(); ++k)
        overlap += static_cast<T>(p.val[k]) * in[p.idx[k]];
      overlap *= static_cast<T>(p.gamma * dv_);
      for (std::size_t k = 0; k < p.idx.size(); ++k)
        out[p.idx[k]] += static_cast<T>(p.val[k]) * overlap;
    }
  }

  template <typename T>
  void apply_add_block(const la::Matrix<T>& in, la::Matrix<T>& out) const {
    for (std::size_t j = 0; j < in.cols(); ++j)
      apply_add<T>(in.col(j), out.col(j));
  }

  /// Exact operator norm of the nonlocal term, via the projector Gram
  /// matrix (small dense eigenproblem). Used for Hamiltonian bounds.
  [[nodiscard]] double operator_norm() const;

 private:
  struct Projector {
    std::vector<std::size_t> idx;
    std::vector<double> val;
    double gamma = 0.0;
  };

  std::vector<Projector> projectors_;
  double dv_ = 0.0;
};

}  // namespace rsrpa::ham
