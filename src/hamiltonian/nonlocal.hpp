// Nonlocal pseudopotential projectors: the sparse X X^H term.
//
// One normalized Gaussian s-type projector per atom, truncated to a
// compact support sphere, with strength gamma > 0 (repulsive, mimicking
// core orthogonality in a real pseudopotential). The support indices and
// values of all projectors are packed once at construction into flat
// CSR-style arrays so block applies run as a gather-GEMM: overlaps
// P^T X for all columns at once (s-way instruction-level parallelism on
// each gathered support row), scaled by gamma dv, then scattered back as
// P (Gamma P^T X). That is the higher-arithmetic-intensity matmult the
// paper exploits (SS III-C); the per-column scalar-dot path is kept as
// the reference oracle.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "grid/grid.hpp"
#include "hamiltonian/crystal.hpp"
#include "hamiltonian/potential.hpp"
#include "la/matrix.hpp"

namespace rsrpa::ham {

class NonlocalProjectors {
 public:
  NonlocalProjectors(const grid::Grid3D& g, const Crystal& crystal,
                     const ModelParams& params);

  [[nodiscard]] std::size_t n_projectors() const { return gamma_.size(); }
  /// Total support points over all projectors (the gather-GEMM row count).
  [[nodiscard]] std::size_t support_size() const { return idx_.size(); }

  /// out += scale * sum_a gamma_a p_a (p_a . in) — real orbitals make
  /// X X^H a plain transpose product, so one template covers real and
  /// complex. Per-column reference path (scalar dot + scatter).
  template <typename T>
  void apply_add(std::span<const T> in, std::span<T> out,
                 double scale = 1.0) const {
    const std::size_t np = gamma_.size();
    for (std::size_t a = 0; a < np; ++a) {
      const std::size_t kb = offsets_[a], ke = offsets_[a + 1];
      T overlap{};
      for (std::size_t k = kb; k < ke; ++k)
        overlap += static_cast<T>(val_[k]) * in[idx_[k]];
      overlap *= static_cast<T>(gamma_[a] * dv_ * scale);
      for (std::size_t k = kb; k < ke; ++k)
        out[idx_[k]] += static_cast<T>(val_[k]) * overlap;
    }
  }

  /// Block path: for each projector, gather-GEMM all column overlaps in
  /// one pass over the support (ov = P^T X), scale by gamma dv, then
  /// scatter-add P (Gamma ov). Support indices ascend, so the strided
  /// column accesses reuse each gathered cache line across k. Projectors
  /// run serially (their supports may overlap), which also keeps the
  /// accumulation order identical to the per-column path within a column.
  template <typename T>
  void apply_add_block(const la::Matrix<T>& in, la::Matrix<T>& out,
                       double scale = 1.0) const {
    RSRPA_REQUIRE(in.rows() == out.rows() && in.cols() == out.cols());
    const std::size_t s = in.cols();
    if (s == 1) {
      apply_add<T>(in.col(0), out.col(0), scale);
      return;
    }
    const std::size_t n = in.rows();
    const T* pin = in.data();
    T* pout = out.data();
    const std::size_t np = gamma_.size();
    std::vector<T> ov(s);
    for (std::size_t a = 0; a < np; ++a) {
      std::fill(ov.begin(), ov.end(), T{});
      const std::size_t kb = offsets_[a], ke = offsets_[a + 1];
      // Projector values stay double (not cast to T): a double * complex
      // scale is two multiplies, a complex * complex product is four.
      for (std::size_t k = kb; k < ke; ++k) {
        const double v = val_[k];
        const T* row = pin + idx_[k];
        for (std::size_t j = 0; j < s; ++j) ov[j] += v * row[j * n];
      }
      const double g = gamma_[a] * dv_ * scale;
      for (std::size_t j = 0; j < s; ++j) ov[j] *= g;
      for (std::size_t k = kb; k < ke; ++k) {
        const double v = val_[k];
        T* row = pout + idx_[k];
        for (std::size_t j = 0; j < s; ++j) row[j * n] += v * ov[j];
      }
    }
  }

  /// Per-column reference block apply (the seed schedule) — correctness
  /// oracle for the gather-GEMM path and the A1 ablation baseline.
  template <typename T>
  void apply_add_block_reference(const la::Matrix<T>& in, la::Matrix<T>& out,
                                 double scale = 1.0) const {
    RSRPA_REQUIRE(in.rows() == out.rows() && in.cols() == out.cols());
    for (std::size_t j = 0; j < in.cols(); ++j)
      apply_add<T>(in.col(j), out.col(j), scale);
  }

  /// Exact operator norm of the nonlocal term, via the projector Gram
  /// matrix (small dense eigenproblem). Used for Hamiltonian bounds.
  [[nodiscard]] double operator_norm() const;

 private:
  // Flat CSR-style packing: projector a owns support entries
  // [offsets_[a], offsets_[a+1]) of idx_/val_, with strength gamma_[a].
  // Indices within each projector ascend (grid construction order).
  std::vector<std::size_t> offsets_{0};
  std::vector<std::size_t> idx_;
  std::vector<double> val_;
  std::vector<double> gamma_;
  double dv_ = 0.0;
};

}  // namespace rsrpa::ham
