// Model pseudopotential (substitution for SPARC's Si pseudopotential).
//
// The local part is a bond-charge model: strong attractive Gaussian wells
// at the covalent bond centers plus weaker wells at the atom sites. At
// half filling of the bond manifold (two orbitals per atom) this produces
// a gapped occupied spectrum, matching the spectral structure the paper's
// Sternheimer systems inherit from silicon. The nonlocal part (one
// normalized Gaussian s-projector per atom with positive strength gamma)
// supplies the sparse outer-product term X X^H that paper SS III-B names
// as the second main term of the Hamiltonian.
#pragma once

#include <vector>

#include "grid/grid.hpp"
#include "hamiltonian/crystal.hpp"

namespace rsrpa::ham {

struct ModelParams {
  double v_atom = 0.35;      ///< atom-site well depth (Ha)
  double sigma_atom = 1.2;   ///< atom-site well width (Bohr)
  double v_bond = 1.40;      ///< bond-center well depth (Ha)
  double sigma_bond = 1.0;   ///< bond-center well width (Bohr)
  double proj_gamma = 0.8;   ///< nonlocal projector strength (Ha)
  double proj_sigma = 1.0;   ///< projector width (Bohr)
  double proj_cutoff = 3.5;  ///< projector support radius (Bohr)
};

/// Sample the local potential on the grid (minimum-image Gaussians; the
/// widths are far below half the cell so periodic image sums truncate at
/// the nearest image).
std::vector<double> build_local_potential(const grid::Grid3D& g,
                                          const Crystal& crystal,
                                          const ModelParams& params);

}  // namespace rsrpa::ham
