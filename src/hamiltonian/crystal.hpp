// Atomic structure of the experimental systems.
//
// The paper's systems are 8-atom diamond-cubic silicon cells (lattice
// constant a = 10.26 Bohr), replicated 1..5 times along z, with atom
// positions randomly perturbed by a fraction of the lattice constant
// (Table III). Crystal carries the atoms and the covalent bond topology;
// the model pseudopotential places its dominant attractive wells at the
// BOND CENTERS (a bond-charge model), which pins the number of occupied
// orbitals at two per atom — exactly the n_s of Table III — and opens a
// band gap at that filling, reproducing the spectral structure the
// Sternheimer systems inherit from real silicon.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "grid/grid.hpp"

namespace rsrpa::ham {

struct Atom {
  std::array<double, 3> pos;  ///< Cartesian, Bohr
};

struct Bond {
  std::size_t a, b;           ///< atom indices
  std::array<double, 3> mid;  ///< periodic midpoint, Bohr
};

class Crystal {
 public:
  Crystal(std::vector<Atom> atoms, double lx, double ly, double lz);

  [[nodiscard]] const std::vector<Atom>& atoms() const { return atoms_; }
  [[nodiscard]] const std::vector<Bond>& bonds() const { return bonds_; }
  [[nodiscard]] std::size_t n_atoms() const { return atoms_.size(); }
  [[nodiscard]] double lx() const { return l_[0]; }
  [[nodiscard]] double ly() const { return l_[1]; }
  [[nodiscard]] double lz() const { return l_[2]; }

  /// Number of doubly-occupied Kohn-Sham orbitals: 4 valence electrons
  /// per Si atom, 2 electrons per orbital.
  [[nodiscard]] std::size_t n_occupied() const { return 2 * atoms_.size(); }

  /// Recompute the bond list: pairs within `factor` times the ideal
  /// diamond nearest-neighbor distance (minimum image).
  void rebuild_bonds(double nn_distance, double factor = 1.15);

  /// Remove atom `i` (and, on rebuild, its bonds) — used to create the
  /// vacancy system of paper SS IV-A.
  void remove_atom(std::size_t i);

 private:
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::array<double, 3> l_;
};

/// Diamond-cubic silicon lattice constant used throughout (Bohr).
inline constexpr double kSiLatticeConstant = 10.26;

/// Ideal nearest-neighbor distance in diamond: a * sqrt(3) / 4.
double diamond_nn_distance(double a);

/// Build an 8*ncells-atom silicon chain: one conventional diamond cell
/// replicated `ncells` times along z, positions perturbed uniformly by
/// +-`perturbation` * a in each Cartesian direction (paper SS IV-A uses a
/// small fraction of the lattice constant).
Crystal make_silicon_chain(std::size_t ncells, double perturbation, Rng& rng,
                           double a = kSiLatticeConstant);

}  // namespace rsrpa::ham
