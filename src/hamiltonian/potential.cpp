#include "hamiltonian/potential.hpp"

#include <cmath>

namespace rsrpa::ham {

namespace {

void add_gaussian_well(const grid::Grid3D& g, const std::array<double, 3>& c,
                       double depth, double sigma, std::vector<double>& v) {
  const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
  for (std::size_t iz = 0; iz < g.nz(); ++iz)
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        const auto p = g.coords(ix, iy, iz);
        const double dx = grid::Grid3D::min_image(p[0] - c[0], g.lx());
        const double dy = grid::Grid3D::min_image(p[1] - c[1], g.ly());
        const double dz = grid::Grid3D::min_image(p[2] - c[2], g.lz());
        const double r2 = dx * dx + dy * dy + dz * dz;
        v[g.index(ix, iy, iz)] -= depth * std::exp(-r2 * inv2s2);
      }
}

}  // namespace

std::vector<double> build_local_potential(const grid::Grid3D& g,
                                          const Crystal& crystal,
                                          const ModelParams& params) {
  std::vector<double> v(g.size(), 0.0);
  for (const Atom& at : crystal.atoms())
    add_gaussian_well(g, at.pos, params.v_atom, params.sigma_atom, v);
  for (const Bond& b : crystal.bonds())
    add_gaussian_well(g, b.mid, params.v_bond, params.sigma_bond, v);
  return v;
}

}  // namespace rsrpa::ham
