// The Kohn-Sham Hamiltonian H = -1/2 Laplacian + V_loc + X Gamma X^H.
//
// This is the coefficient operator of everything downstream: the ground
// state eigenproblem (CheFSI), and the complex-shifted Sternheimer systems
// (H - lambda_j I + i omega_k I) whose complex-symmetric structure drives
// the paper's block COCG solver. The Laplacian is matrix-free (stencil),
// the local potential diagonal, and the nonlocal part a sparse low-rank
// outer product — the exact structure paper SS III-B describes.
//
// Hot-path schedule (the default, paper SS III-C): each column is ONE
// fused memory sweep computing alpha Lap(in) + (V_loc + shift) . in via
// grid::StencilLaplacian::apply_fused, followed by a single gather-GEMM
// nonlocal block update over all columns. The seed multi-sweep per-column
// path is retained as the correctness oracle, selected by
// set_fused_apply(false) or the RSRPA_FUSED_APPLY=0 environment knob.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "grid/stencil.hpp"
#include "hamiltonian/crystal.hpp"
#include "hamiltonian/nonlocal.hpp"
#include "hamiltonian/potential.hpp"
#include "la/matrix.hpp"

namespace rsrpa::ham {

using la::cplx;

class Hamiltonian {
 public:
  /// Construct with the model pseudopotential evaluated from `crystal`.
  Hamiltonian(const grid::Grid3D& g, int fd_radius, Crystal crystal,
              ModelParams params);

  [[nodiscard]] const grid::Grid3D& grid() const { return lap_.grid(); }
  [[nodiscard]] const grid::StencilLaplacian& laplacian() const { return lap_; }
  [[nodiscard]] const Crystal& crystal() const { return crystal_; }
  [[nodiscard]] const ModelParams& params() const { return params_; }
  [[nodiscard]] const NonlocalProjectors& nonlocal() const { return nonlocal_; }

  [[nodiscard]] const std::vector<double>& local_potential() const {
    return v_loc_;
  }
  /// Replace the local potential (the SCF loop updates V_eff in place).
  void set_local_potential(std::vector<double> v);

  /// Toggle the fused single-sweep path (default: on, unless
  /// RSRPA_FUSED_APPLY=0 at construction). The reference path is the seed
  /// multi-sweep schedule — kept selectable for equivalence tests and
  /// ablations. Forwarded to the owned Laplacian so plain lap_.apply()
  /// users of this operator see the same schedule. Per instance, never
  /// process-global: two jobs in one process may disagree.
  void set_fused_apply(bool on) {
    fused_ = on;
    lap_.set_fused_apply(on);
  }
  [[nodiscard]] bool fused_apply() const { return fused_; }

  /// Cache-block extents of the fused sweep for this operator (defaults
  /// RSRPA_TILE_Y / RSRPA_TILE_Z at construction; bitwise-neutral).
  void set_fused_tiles(std::size_t tile_y, std::size_t tile_z) {
    lap_.set_fused_tiles(tile_y, tile_z);
  }

  /// out = H in.
  template <typename T>
  void apply(std::span<const T> in, std::span<T> out) const {
    require_spans(in, out);
    apply_unchecked<T>(in, out, T{});
  }

  /// Column-at-a-time block apply (paper SS III-C schedule): one fused
  /// sweep per column, then one nonlocal gather-GEMM over the block.
  template <typename T>
  void apply_block(const la::Matrix<T>& in, la::Matrix<T>& out) const {
    RSRPA_REQUIRE(in.rows() == grid().size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    if (!fused_) {
      for (std::size_t j = 0; j < in.cols(); ++j)
        apply_reference<T>(in.col(j), out.col(j));
      return;
    }
    for (std::size_t j = 0; j < in.cols(); ++j)
      fused_sweep<T>(in.col(j), out.col(j), T{});
    nonlocal_.apply_add_block<T>(in, out);
  }

  /// out = (H - lambda I + i omega I) in — the Sternheimer coefficient
  /// operator A_{j,k}, complex symmetric because H is real symmetric.
  void apply_shifted(std::span<const cplx> in, std::span<cplx> out,
                     double lambda, double omega) const {
    require_spans(in, out);
    apply_unchecked<cplx>(in, out, cplx{-lambda, omega});
  }

  void apply_shifted_block(const la::Matrix<cplx>& in, la::Matrix<cplx>& out,
                           double lambda, double omega) const {
    RSRPA_REQUIRE(in.rows() == grid().size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    const cplx shift{-lambda, omega};
    if (!fused_) {
      for (std::size_t j = 0; j < in.cols(); ++j) {
        apply_reference<cplx>(in.col(j), out.col(j));
        auto icol = in.col(j);
        auto ocol = out.col(j);
        for (std::size_t i = 0; i < icol.size(); ++i)
          ocol[i] += shift * icol[i];
      }
      return;
    }
    for (std::size_t j = 0; j < in.cols(); ++j)
      fused_sweep<cplx>(in.col(j), out.col(j), shift);
    nonlocal_.apply_add_block<cplx>(in, out);
  }

  /// Fused Chebyshev three-term step:
  ///   out = c1 * (H in) + c0 * in + c2 * extra      (extra may be null).
  /// On the fused path the polynomial scalars fold into the per-column
  /// sweep (alpha = -0.5 c1, local potential scaled by c1, shift c0,
  /// extra term c2) and the nonlocal gather-GEMM carries the c1 scale —
  /// still one sweep per column plus the block nonlocal update.
  template <typename T>
  void apply_poly_block(const la::Matrix<T>& in, la::Matrix<T>& out, double c1,
                        double c0, const la::Matrix<T>* extra,
                        double c2) const {
    RSRPA_REQUIRE(in.rows() == grid().size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    RSRPA_REQUIRE(extra == nullptr || (extra->rows() == in.rows() &&
                                       extra->cols() == in.cols()));
    const std::size_t n = in.rows();
    if (!fused_) {
      for (std::size_t j = 0; j < in.cols(); ++j) {
        apply_reference<T>(in.col(j), out.col(j));
        auto icol = in.col(j);
        auto ocol = out.col(j);
        if (extra != nullptr) {
          auto ecol = extra->col(j);
          for (std::size_t i = 0; i < n; ++i)
            ocol[i] = static_cast<T>(c1) * ocol[i] +
                      static_cast<T>(c0) * icol[i] +
                      static_cast<T>(c2) * ecol[i];
        } else {
          for (std::size_t i = 0; i < n; ++i)
            ocol[i] =
                static_cast<T>(c1) * ocol[i] + static_cast<T>(c0) * icol[i];
        }
      }
      return;
    }
    for (std::size_t j = 0; j < in.cols(); ++j) {
      grid::FusedTerms<T> t;
      t.alpha = -0.5 * c1;
      t.vdiag = v_loc_.data();
      t.beta = c1;
      t.shift = static_cast<T>(c0);
      if (extra != nullptr) {
        t.extra = extra->col(j).data();
        t.eta = static_cast<T>(c2);
      }
      lap_.apply_fused<T>(in.col(j), out.col(j), t);
    }
    nonlocal_.apply_add_block<T>(in, out, c1);
  }

  /// Rigorous spectral bounds: kinetic term in [0, -0.5*lap_min], local
  /// potential in [min V, max V], nonlocal PSD with exact norm.
  [[nodiscard]] double upper_bound() const { return upper_bound_; }
  [[nodiscard]] double lower_bound() const { return lower_bound_; }

 private:
  template <typename T>
  void require_spans(std::span<const T> in, std::span<T> out) const {
    RSRPA_REQUIRE(in.size() == grid().size() && out.size() == in.size());
    const auto lo_in = reinterpret_cast<std::uintptr_t>(in.data());
    const auto lo_out = reinterpret_cast<std::uintptr_t>(out.data());
    const std::uintptr_t bytes = in.size() * sizeof(T);
    RSRPA_REQUIRE_MSG(
        lo_in + bytes <= lo_out || lo_out + bytes <= lo_in,
        "Hamiltonian::apply: in/out must not alias (the fused kernel reads "
        "in after writing out)");
  }

  /// One fused sweep: out = -1/2 Lap(in) + (V_loc + shift) . in.
  template <typename T>
  void fused_sweep(std::span<const T> in, std::span<T> out, T shift) const {
    grid::FusedTerms<T> t;
    t.alpha = -0.5;
    t.vdiag = v_loc_.data();
    t.beta = 1.0;
    t.shift = shift;
    lap_.apply_fused<T>(in, out, t);
  }

  /// Shared single-column path: fused sweep + nonlocal, or the seed
  /// multi-sweep reference. `shift` folds (-lambda + i omega) in.
  template <typename T>
  void apply_unchecked(std::span<const T> in, std::span<T> out,
                       T shift) const {
    if (fused_) {
      fused_sweep<T>(in, out, shift);
      nonlocal_.apply_add<T>(in, out);
      return;
    }
    apply_reference<T>(in, out);
    if (shift != T{})
      for (std::size_t i = 0; i < in.size(); ++i) out[i] += shift * in[i];
  }

  /// The seed schedule: stencil sweep, then the -1/2 scale + V_loc sweep,
  /// then the nonlocal scatter/gather (and the shift sweep in callers) —
  /// four passes over memory per column. Correctness oracle and A1
  /// ablation baseline.
  template <typename T>
  void apply_reference(std::span<const T> in, std::span<T> out) const {
    lap_.apply_reference<T>(in, out);
    const std::size_t n = in.size();
    for (std::size_t i = 0; i < n; ++i)
      out[i] = static_cast<T>(-0.5) * out[i] + static_cast<T>(v_loc_[i]) * in[i];
    nonlocal_.apply_add<T>(in, out);
  }

  void refresh_bounds();

  grid::StencilLaplacian lap_;
  Crystal crystal_;
  ModelParams params_;
  std::vector<double> v_loc_;
  NonlocalProjectors nonlocal_;
  bool fused_ = grid::default_fused_apply();
  double upper_bound_ = 0.0;
  double lower_bound_ = 0.0;
};

}  // namespace rsrpa::ham
