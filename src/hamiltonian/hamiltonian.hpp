// The Kohn-Sham Hamiltonian H = -1/2 Laplacian + V_loc + X Gamma X^H.
//
// This is the coefficient operator of everything downstream: the ground
// state eigenproblem (CheFSI), and the complex-shifted Sternheimer systems
// (H - lambda_j I + i omega_k I) whose complex-symmetric structure drives
// the paper's block COCG solver. The Laplacian is matrix-free (stencil),
// the local potential diagonal, and the nonlocal part a sparse low-rank
// outer product — the exact structure paper SS III-B describes.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "grid/stencil.hpp"
#include "hamiltonian/crystal.hpp"
#include "hamiltonian/nonlocal.hpp"
#include "hamiltonian/potential.hpp"
#include "la/matrix.hpp"

namespace rsrpa::ham {

using la::cplx;

class Hamiltonian {
 public:
  /// Construct with the model pseudopotential evaluated from `crystal`.
  Hamiltonian(const grid::Grid3D& g, int fd_radius, Crystal crystal,
              ModelParams params);

  [[nodiscard]] const grid::Grid3D& grid() const { return lap_.grid(); }
  [[nodiscard]] const grid::StencilLaplacian& laplacian() const { return lap_; }
  [[nodiscard]] const Crystal& crystal() const { return crystal_; }
  [[nodiscard]] const ModelParams& params() const { return params_; }
  [[nodiscard]] const NonlocalProjectors& nonlocal() const { return nonlocal_; }

  [[nodiscard]] const std::vector<double>& local_potential() const {
    return v_loc_;
  }
  /// Replace the local potential (the SCF loop updates V_eff in place).
  void set_local_potential(std::vector<double> v);

  /// out = H in.
  template <typename T>
  void apply(std::span<const T> in, std::span<T> out) const {
    lap_.apply<T>(in, out);
    const std::size_t n = in.size();
    for (std::size_t i = 0; i < n; ++i)
      out[i] = static_cast<T>(-0.5) * out[i] + static_cast<T>(v_loc_[i]) * in[i];
    nonlocal_.apply_add<T>(in, out);
  }

  /// Column-at-a-time block apply (paper SS III-C schedule).
  template <typename T>
  void apply_block(const la::Matrix<T>& in, la::Matrix<T>& out) const {
    RSRPA_REQUIRE(in.rows() == grid().size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    for (std::size_t j = 0; j < in.cols(); ++j) apply<T>(in.col(j), out.col(j));
  }

  /// out = (H - lambda I + i omega I) in — the Sternheimer coefficient
  /// operator A_{j,k}, complex symmetric because H is real symmetric.
  void apply_shifted(std::span<const cplx> in, std::span<cplx> out,
                     double lambda, double omega) const {
    apply<cplx>(in, out);
    const cplx shift{-lambda, omega};
    for (std::size_t i = 0; i < in.size(); ++i) out[i] += shift * in[i];
  }

  void apply_shifted_block(const la::Matrix<cplx>& in, la::Matrix<cplx>& out,
                           double lambda, double omega) const {
    RSRPA_REQUIRE(in.rows() == grid().size() && out.rows() == in.rows() &&
                  out.cols() == in.cols());
    for (std::size_t j = 0; j < in.cols(); ++j)
      apply_shifted(in.col(j), out.col(j), lambda, omega);
  }

  /// Rigorous spectral bounds: kinetic term in [0, -0.5*lap_min], local
  /// potential in [min V, max V], nonlocal PSD with exact norm.
  [[nodiscard]] double upper_bound() const { return upper_bound_; }
  [[nodiscard]] double lower_bound() const { return lower_bound_; }

 private:
  void refresh_bounds();

  grid::StencilLaplacian lap_;
  Crystal crystal_;
  ModelParams params_;
  std::vector<double> v_loc_;
  NonlocalProjectors nonlocal_;
  double upper_bound_ = 0.0;
  double lower_bound_ = 0.0;
};

}  // namespace rsrpa::ham
