#include "hamiltonian/nonlocal.hpp"

#include <cmath>

#include "la/eig.hpp"

namespace rsrpa::ham {

NonlocalProjectors::NonlocalProjectors(const grid::Grid3D& g,
                                       const Crystal& crystal,
                                       const ModelParams& params)
    : dv_(g.dv()) {
  if (params.proj_gamma == 0.0) return;
  const double inv2s2 = 1.0 / (2.0 * params.proj_sigma * params.proj_sigma);
  const double rc2 = params.proj_cutoff * params.proj_cutoff;
  for (const Atom& at : crystal.atoms()) {
    const std::size_t kb = idx_.size();
    for (std::size_t iz = 0; iz < g.nz(); ++iz)
      for (std::size_t iy = 0; iy < g.ny(); ++iy)
        for (std::size_t ix = 0; ix < g.nx(); ++ix) {
          const auto x = g.coords(ix, iy, iz);
          const double dx = grid::Grid3D::min_image(x[0] - at.pos[0], g.lx());
          const double dy = grid::Grid3D::min_image(x[1] - at.pos[1], g.ly());
          const double dz = grid::Grid3D::min_image(x[2] - at.pos[2], g.lz());
          const double r2 = dx * dx + dy * dy + dz * dz;
          if (r2 > rc2) continue;
          idx_.push_back(g.index(ix, iy, iz));
          val_.push_back(std::exp(-r2 * inv2s2));
        }
    // Normalize so integral p^2 dv = 1 and gamma has energy units.
    double norm2 = 0.0;
    for (std::size_t k = kb; k < val_.size(); ++k) norm2 += val_[k] * val_[k];
    norm2 *= dv_;
    RSRPA_REQUIRE_MSG(norm2 > 0.0, "projector support contains no grid points");
    const double inv_norm = 1.0 / std::sqrt(norm2);
    for (std::size_t k = kb; k < val_.size(); ++k) val_[k] *= inv_norm;
    offsets_.push_back(idx_.size());
    gamma_.push_back(params.proj_gamma);
  }
}

double NonlocalProjectors::operator_norm() const {
  const std::size_t np = gamma_.size();
  if (np == 0) return 0.0;
  // || sum_a gamma p_a p_a^T || equals the largest eigenvalue of the
  // gamma-weighted projector Gram matrix G_ab = sqrt(g_a g_b) <p_a, p_b>.
  la::Matrix<double> gram(np, np);
  for (std::size_t a = 0; a < np; ++a) {
    for (std::size_t b = a; b < np; ++b) {
      // Sparse dot over the index intersection (indices within each
      // projector ascend by construction over the grid).
      double sum = 0.0;
      std::size_t i = offsets_[a], j = offsets_[b];
      const std::size_t ia_end = offsets_[a + 1], jb_end = offsets_[b + 1];
      while (i < ia_end && j < jb_end) {
        if (idx_[i] < idx_[j])
          ++i;
        else if (idx_[i] > idx_[j])
          ++j;
        else {
          sum += val_[i] * val_[j];
          ++i;
          ++j;
        }
      }
      sum *= dv_ * std::sqrt(gamma_[a] * gamma_[b]);
      gram(a, b) = sum;
      gram(b, a) = sum;
    }
  }
  const std::vector<double> vals = la::sym_eigvals(gram);
  return std::max(0.0, vals.back());
}

}  // namespace rsrpa::ham
