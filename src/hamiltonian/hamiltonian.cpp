#include "hamiltonian/hamiltonian.hpp"

#include <algorithm>

namespace rsrpa::ham {

Hamiltonian::Hamiltonian(const grid::Grid3D& g, int fd_radius, Crystal crystal,
                         ModelParams params)
    : lap_(g, fd_radius),
      crystal_(std::move(crystal)),
      params_(params),
      v_loc_(build_local_potential(g, crystal_, params_)),
      nonlocal_(g, crystal_, params_) {
  refresh_bounds();
}

void Hamiltonian::set_local_potential(std::vector<double> v) {
  RSRPA_REQUIRE(v.size() == grid().size());
  v_loc_ = std::move(v);
  refresh_bounds();
}

void Hamiltonian::refresh_bounds() {
  const auto [vmin_it, vmax_it] =
      std::minmax_element(v_loc_.begin(), v_loc_.end());
  const double kinetic_max = -0.5 * lap_.min_eigenvalue_bound();
  const double nl_norm = nonlocal_.operator_norm();
  upper_bound_ = kinetic_max + *vmax_it + nl_norm;
  lower_bound_ = *vmin_it;  // kinetic and nonlocal terms are PSD
}

}  // namespace rsrpa::ham
