#include "hamiltonian/crystal.hpp"

#include <cmath>

namespace rsrpa::ham {

namespace {

double wrap_into_cell(double x, double l) {
  x = std::fmod(x, l);
  if (x < 0) x += l;
  return x;
}

}  // namespace

Crystal::Crystal(std::vector<Atom> atoms, double lx, double ly, double lz)
    : atoms_(std::move(atoms)), l_{lx, ly, lz} {
  RSRPA_REQUIRE(!atoms_.empty());
  for (Atom& at : atoms_)
    for (int d = 0; d < 3; ++d) at.pos[d] = wrap_into_cell(at.pos[d], l_[d]);
}

void Crystal::rebuild_bonds(double nn_distance, double factor) {
  bonds_.clear();
  const double cutoff = nn_distance * factor;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
      const double dx =
          grid::Grid3D::min_image(atoms_[j].pos[0] - atoms_[i].pos[0], l_[0]);
      const double dy =
          grid::Grid3D::min_image(atoms_[j].pos[1] - atoms_[i].pos[1], l_[1]);
      const double dz =
          grid::Grid3D::min_image(atoms_[j].pos[2] - atoms_[i].pos[2], l_[2]);
      const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (dist <= cutoff) {
        Bond b;
        b.a = i;
        b.b = j;
        // Midpoint of the minimum-image displacement, wrapped into cell.
        b.mid = {wrap_into_cell(atoms_[i].pos[0] + 0.5 * dx, l_[0]),
                 wrap_into_cell(atoms_[i].pos[1] + 0.5 * dy, l_[1]),
                 wrap_into_cell(atoms_[i].pos[2] + 0.5 * dz, l_[2])};
        bonds_.push_back(b);
      }
    }
  }
}

void Crystal::remove_atom(std::size_t i) {
  RSRPA_REQUIRE(i < atoms_.size());
  atoms_.erase(atoms_.begin() + static_cast<std::ptrdiff_t>(i));
  bonds_.clear();  // caller must rebuild_bonds()
}

double diamond_nn_distance(double a) { return a * std::sqrt(3.0) / 4.0; }

Crystal make_silicon_chain(std::size_t ncells, double perturbation, Rng& rng,
                           double a) {
  RSRPA_REQUIRE(ncells >= 1);
  // Fractional coordinates of the 8-atom conventional diamond cell.
  static constexpr std::array<std::array<double, 3>, 8> kFrac = {{
      {0.00, 0.00, 0.00},
      {0.50, 0.50, 0.00},
      {0.50, 0.00, 0.50},
      {0.00, 0.50, 0.50},
      {0.25, 0.25, 0.25},
      {0.75, 0.75, 0.25},
      {0.75, 0.25, 0.75},
      {0.25, 0.75, 0.75},
  }};
  std::vector<Atom> atoms;
  atoms.reserve(8 * ncells);
  for (std::size_t cell = 0; cell < ncells; ++cell) {
    for (const auto& f : kFrac) {
      Atom at;
      at.pos = {f[0] * a + rng.uniform(-perturbation, perturbation) * a,
                f[1] * a + rng.uniform(-perturbation, perturbation) * a,
                (f[2] + static_cast<double>(cell)) * a +
                    rng.uniform(-perturbation, perturbation) * a};
      atoms.push_back(at);
    }
  }
  Crystal crystal(std::move(atoms), a, a, a * static_cast<double>(ncells));
  crystal.rebuild_bonds(diamond_nn_distance(a));
  return crystal;
}

}  // namespace rsrpa::ham
