#include "isdf/fit.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "sched/parallel_for.hpp"

namespace rsrpa::isdf {

std::vector<double> virtual_pair_weights(const std::vector<double>& values,
                                         std::size_t n_occ,
                                         double omega_ref) {
  RSRPA_REQUIRE(n_occ >= 1 && n_occ < values.size());
  RSRPA_REQUIRE(omega_ref > 0.0);
  double ebar = 0.0;
  for (std::size_t j = 0; j < n_occ; ++j) ebar += values[j];
  ebar /= static_cast<double>(n_occ);
  std::vector<double> v(values.size() - n_occ);
  for (std::size_t a = 0; a < v.size(); ++a) {
    const double d = values[n_occ + a] - ebar;
    v[a] = std::sqrt(
        std::max(4.0 * d / (d * d + omega_ref * omega_ref), 0.0));
  }
  return v;
}

FitResult fit_interpolation_vectors(const la::EigResult& eig,
                                    std::size_t n_occ,
                                    const std::vector<double>& vir_weights,
                                    const std::vector<std::size_t>& points,
                                    double ridge) {
  const std::size_t n_d = eig.vectors.rows();
  const std::size_t nip = points.size();
  RSRPA_REQUIRE(nip >= 1 && n_occ >= 1 && n_occ < n_d);
  RSRPA_REQUIRE(eig.vectors.cols() == n_d);
  const std::size_t n_vir = n_d - n_occ;
  RSRPA_REQUIRE(vir_weights.size() == n_vir);
  RSRPA_REQUIRE(ridge >= 0.0);
  for (std::size_t p : points) RSRPA_REQUIRE(p < n_d);

  // Occupied half-Gram G_occ(r, mu) = sum_j psi_j(r) psi_j(p_mu).
  la::Matrix<double> pmu(n_occ, nip);
  for (std::size_t mu = 0; mu < nip; ++mu)
    for (std::size_t j = 0; j < n_occ; ++j)
      pmu(j, mu) = eig.vectors(points[mu], j);
  la::Matrix<double> go(n_d, nip);
  {
    const la::Matrix<double> psi = eig.vectors.slice_cols(0, n_occ);
    la::gemm_nn(1.0, psi, pmu, 0.0, go);
  }

  // Weighted virtual half-Gram Gv(r, mu) = sum_a v_a^2 phi_a(r)
  // phi_a(p_mu): one GEMM against the v^2-scaled sampled rows.
  la::Matrix<double> vmu(n_vir, nip);
  for (std::size_t mu = 0; mu < nip; ++mu)
    for (std::size_t a = 0; a < n_vir; ++a)
      vmu(a, mu) = vir_weights[a] * vir_weights[a] *
                   eig.vectors(points[mu], n_occ + a);
  la::Matrix<double> gv(n_d, nip);
  {
    const la::Matrix<double> qv = eig.vectors.slice_cols(n_occ, n_vir);
    la::gemm_nn(1.0, qv, vmu, 0.0, gv);
  }

  // B B^T from the sampled rows, before the big factors are combined.
  la::Matrix<double> bbt(nip, nip);
  for (std::size_t nu = 0; nu < nip; ++nu)
    for (std::size_t mu = 0; mu < nip; ++mu)
      bbt(mu, nu) = go(points[mu], nu) * gv(points[mu], nu);
  // Symmetric in exact arithmetic; symmetrize so the Cholesky sees a
  // clean matrix.
  for (std::size_t nu = 0; nu < nip; ++nu)
    for (std::size_t mu = 0; mu < nu; ++mu) {
      const double avg = 0.5 * (bbt(mu, nu) + bbt(nu, mu));
      bbt(mu, nu) = avg;
      bbt(nu, mu) = avg;
    }

  // go <- A B^T = G_occ o Gv in place.
  sched::parallel_for(0, nip, 1, [&](std::size_t mu) {
    double* c = &go(0, mu);
    const double* w = &gv(0, mu);
    for (std::size_t r = 0; r < n_d; ++r) c[r] *= w[r];
  });

  double diag_mean = 0.0;
  for (std::size_t mu = 0; mu < nip; ++mu) diag_mean += bbt(mu, mu);
  diag_mean = std::max(diag_mean / static_cast<double>(nip), 1e-300);

  FitResult out;
  // Solve (B B^T) Theta^T = (A B^T)^T, escalating the ridge on breakdown.
  la::Matrix<double> rhs = go.transposed();  // nip x n_d
  double rel = ridge;
  for (int attempt = 0;; ++attempt) {
    la::Matrix<double> lhs = bbt;
    if (rel > 0.0)
      for (std::size_t mu = 0; mu < nip; ++mu) lhs(mu, mu) += rel * diag_mean;
    try {
      la::Cholesky chol(lhs);
      la::Matrix<double> x = rhs;
      chol.solve_inplace(x);
      out.theta = x.transposed();
      out.ridge = rel;
      out.regularized = rel > 0.0 && rel != ridge;
      return out;
    } catch (const NumericalBreakdown&) {
      RSRPA_REQUIRE_MSG(attempt < 8,
                        "isdf fit: Gram matrix not positive definite even "
                        "with maximal ridge");
      rel = (rel == 0.0) ? 1e-12 : rel * 100.0;
    }
  }
}

}  // namespace rsrpa::isdf
