// The compressed nu^{1/2} chi0(i omega) nu^{1/2} object.
//
// With interpolation vectors Theta (n_d x nip) and sampled eigenvector
// rows, every pair product factorizes through the points, so
//
//   chi0(i omega) ~= Theta C(i omega) Theta^T,
//   C = -W W^T,  W(mu, (j,a)) = psi_j(p_mu) phi_a(p_mu) sd_{ja},
//   sd_{ja}^2 = 4 (lam_a - lam_j) / (((lam_j - lam_a)^2 + omega^2) dv),
//
// matching dense_chi0's operator convention exactly (occ-occ terms cancel
// pairwise there; the occ x vir restriction here is the same operator).
// The symmetrized operator becomes M ~= Z C Z^T with Z = nu^{1/2} Theta
// (Kronecker spectral apply), whose nonzero spectrum equals that of the
// nip x nip matrix K = S^{1/2} C S^{1/2}, S = Z^T Z. S is frequency
// independent, so S^{1/2} is built once; each quadrature point then costs
// one (nov x nip)-GEMM assembly, two nip^3 GEMMs, and a nip^3 eigensolve
// — the cubic-scaling path of Lu & Thicke.
#pragma once

#include <cstddef>
#include <vector>

#include "common/timer.hpp"
#include "la/eig.hpp"
#include "la/matrix.hpp"
#include "poisson/kronecker.hpp"

namespace rsrpa::isdf {

/// Kernel-timer bucket names the compressed path reports under.
namespace kernels {
inline constexpr const char* kAssemble = "isdf_assemble";
inline constexpr const char* kEigensolve = "eigensolve";
}  // namespace kernels

class CompressedNuChi0 {
 public:
  /// `eig` is the full decomposition of H (lowest n_occ states occupied),
  /// `theta` the fitted interpolation vectors for `points`. Consumes
  /// `theta` (it is transformed into Z internally).
  CompressedNuChi0(const la::EigResult& eig, std::size_t n_occ,
                   const std::vector<std::size_t>& points,
                   la::Matrix<double> theta,
                   const poisson::KroneckerLaplacian& klap);

  /// The nip x nip coefficient matrix C(i omega) (symmetric, negative
  /// semidefinite). GEMM-dominated: 2 * nip^2 * n_occ*n_vir flops.
  [[nodiscard]] la::Matrix<double> assemble(double omega) const;

  /// Ascending spectrum of the compressed nu^{1/2} chi0 nu^{1/2} (its
  /// nonzero part; zeros of the exact operator outside range(Z) are not
  /// represented). Timers, when given, split isdf_assemble / eigensolve.
  [[nodiscard]] std::vector<double> spectrum(double omega,
                                             KernelTimers* timers = nullptr) const;

  [[nodiscard]] std::size_t nip() const { return nip_; }
  [[nodiscard]] std::size_t n_pairs() const { return n_occ_ * n_vir_; }

  /// Modeled GEMM work/traffic for one spectrum() call (assembly GEMM +
  /// the two congruence GEMMs; streaming lower-bound byte model, same
  /// spirit as solver::ApplyCostModel). Feeds the PR-4 AI telemetry.
  [[nodiscard]] double flops_per_freq() const;
  [[nodiscard]] double bytes_per_freq() const;

 private:
  std::size_t n_occ_ = 0, n_vir_ = 0, nip_ = 0;
  double dv_ = 0.0;
  std::vector<double> values_;  ///< all eigenvalues of H, ascending
  la::Matrix<double> xo_t_;     ///< n_occ x nip sampled occupied rows
  la::Matrix<double> xv_t_;     ///< n_vir x nip sampled virtual rows
  la::Matrix<double> s_half_;   ///< (Z^T Z)^{1/2}
};

}  // namespace rsrpa::isdf
