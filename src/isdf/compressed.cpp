#include "isdf/compressed.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "sched/parallel_for.hpp"

namespace rsrpa::isdf {

CompressedNuChi0::CompressedNuChi0(const la::EigResult& eig, std::size_t n_occ,
                                   const std::vector<std::size_t>& points,
                                   la::Matrix<double> theta,
                                   const poisson::KroneckerLaplacian& klap) {
  const std::size_t n_d = eig.vectors.rows();
  nip_ = points.size();
  n_occ_ = n_occ;
  RSRPA_REQUIRE(n_occ >= 1 && n_occ < eig.values.size());
  RSRPA_REQUIRE(eig.values.size() == n_d && theta.rows() == n_d);
  RSRPA_REQUIRE(theta.cols() == nip_ && nip_ >= 1);
  RSRPA_REQUIRE(klap.grid().size() == n_d);
  n_vir_ = n_d - n_occ;
  dv_ = klap.grid().dv();
  values_ = eig.values;

  xo_t_ = la::Matrix<double>(n_occ_, nip_);
  xv_t_ = la::Matrix<double>(n_vir_, nip_);
  for (std::size_t mu = 0; mu < nip_; ++mu) {
    const std::size_t p = points[mu];
    RSRPA_REQUIRE(p < n_d);
    for (std::size_t j = 0; j < n_occ_; ++j) xo_t_(j, mu) = eig.vectors(p, j);
    for (std::size_t a = 0; a < n_vir_; ++a)
      xv_t_(a, mu) = eig.vectors(p, n_occ_ + a);
  }

  // Z = nu^{1/2} Theta through the Kronecker spectral apply, then the
  // frequency-independent S^{1/2} with S = Z^T Z. S is PSD by
  // construction; clamp the roundoff-negative tail before the sqrt.
  klap.apply_nu_sqrt_block(theta);
  la::Matrix<double> s(nip_, nip_);
  la::gemm_tn(1.0, theta, theta, 0.0, s);
  for (std::size_t j = 0; j < nip_; ++j)
    for (std::size_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (s(i, j) + s(j, i));
      s(i, j) = avg;
      s(j, i) = avg;
    }
  la::EigResult se = la::sym_eig(s);
  // S^{1/2} = V diag(sqrt(lam)) V^T as b^T b with b = diag(lam^{1/4}) V^T.
  la::Matrix<double> b = se.vectors.transposed();
  for (std::size_t i = 0; i < nip_; ++i) {
    const double d = std::pow(std::max(se.values[i], 0.0), 0.25);
    for (std::size_t j = 0; j < nip_; ++j) b(i, j) *= d;
  }
  s_half_ = la::Matrix<double>(nip_, nip_);
  la::gemm_tn(1.0, b, b, 0.0, s_half_);
}

la::Matrix<double> CompressedNuChi0::assemble(double omega) const {
  RSRPA_REQUIRE(omega > 0.0);
  // Per-pair scaled energy factor, matching dense_chi0: the (j, a) term
  // enters chi0 with weight 4 (lam_j - lam_a) / ((lam_j - lam_a)^2 + w^2)
  // / dv <= 0; its magnitude is folded into W as a square root.
  la::Matrix<double> sd(n_vir_, n_occ_);
  for (std::size_t j = 0; j < n_occ_; ++j) {
    const double lam_j = values_[j];
    for (std::size_t a = 0; a < n_vir_; ++a) {
      const double d = lam_j - values_[n_occ_ + a];
      sd(a, j) = std::sqrt(
          std::max(-4.0 * d / ((d * d + omega * omega) * dv_), 0.0));
    }
  }

  const std::size_t nov = n_occ_ * n_vir_;
  la::Matrix<double> wt(nov, nip_);
  const std::size_t grain = std::max<std::size_t>(1, 8192 / std::max<std::size_t>(nov, 1));
  sched::parallel_for(0, nip_, grain, [&](std::size_t mu) {
    double* w = &wt(0, mu);
    const double* xv = &xv_t_(0, mu);
    for (std::size_t j = 0; j < n_occ_; ++j) {
      const double xo = xo_t_(j, mu);
      const double* sdj = &sd(0, j);
      double* wj = w + j * n_vir_;
      for (std::size_t a = 0; a < n_vir_; ++a) wj[a] = xo * xv[a] * sdj[a];
    }
  });

  la::Matrix<double> c(nip_, nip_);
  la::gemm_tn(-1.0, wt, wt, 0.0, c);
  return c;
}

std::vector<double> CompressedNuChi0::spectrum(double omega,
                                               KernelTimers* timers) const {
  WallTimer t_assemble;
  la::Matrix<double> c = assemble(omega);
  la::Matrix<double> tmp(nip_, nip_), k(nip_, nip_);
  la::gemm_nn(1.0, s_half_, c, 0.0, tmp);
  la::gemm_nn(1.0, tmp, s_half_, 0.0, k);
  for (std::size_t j = 0; j < nip_; ++j)
    for (std::size_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (k(i, j) + k(j, i));
      k(i, j) = avg;
      k(j, i) = avg;
    }
  if (timers != nullptr) timers->add(kernels::kAssemble, t_assemble.seconds());

  WallTimer t_eig;
  std::vector<double> vals = la::sym_eigvals(k);
  if (timers != nullptr) timers->add(kernels::kEigensolve, t_eig.seconds());
  return vals;
}

double CompressedNuChi0::flops_per_freq() const {
  const double nov = static_cast<double>(n_occ_) * static_cast<double>(n_vir_);
  const double nip = static_cast<double>(nip_);
  // W fill + assembly GEMM + the two congruence GEMMs (the eigensolve is
  // not GEMM work and is excluded on purpose: the bench uses this to
  // check the run is GEMM-dominated).
  return 2.0 * nov * nip + 2.0 * nov * nip * nip + 4.0 * nip * nip * nip;
}

double CompressedNuChi0::bytes_per_freq() const {
  const double nov = static_cast<double>(n_occ_) * static_cast<double>(n_vir_);
  const double nip = static_cast<double>(nip_);
  // Streaming lower bound: W written once and read once by the assembly
  // GEMM, sampled rows read once, the three nip^2 operands of each
  // congruence GEMM read/written once.
  return 8.0 * (2.0 * nov * nip +
                static_cast<double>(n_occ_ + n_vir_) * nip + 10.0 * nip * nip);
}

}  // namespace rsrpa::isdf
