// ISDF interpolation-point selection (Lu & Thicke, arXiv:1704.03609 §3).
//
// The pair products rho_{ja}(r) = psi_j(r) phi_a(r) that build chi0 live
// in a numerically low-rank subspace of grid functions. ISDF picks `nip`
// physical grid points r_mu such that every pair product is well
// reconstructed from its values at those points. The selection is a
// rank-revealing column-pivoted QR on a randomized sketch of the
// occupied x (weighted) virtual Khatri-Rao product: Gaussian mixtures
// Y1 = Psi G1 of the occupied orbitals, Gaussian mixtures Y2 = Qvir
// diag(v) G2 of the weight-scaled virtuals (the same v_a the fit uses,
// so selection and fit target the same pair space), the k^2 x n_d sketch
// S[(s,t), r] = Y1(r,s) Y2(r,t), and the QRCP pivot sequence of S as the
// point ranking. Randomness flows through Rng::derive with one stream per
// Gaussian column, so the selection is bitwise reproducible at any thread
// count.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "la/eig.hpp"
#include "la/matrix.hpp"

namespace rsrpa::isdf {

struct PointSelection {
  /// Selected grid-point indices, in pivot (importance) order. Size is
  /// min(nip, numerical rank of the sketch).
  std::vector<std::size_t> points;
  /// |R(k,k)| of the pivoted QR, one per selected point, non-increasing.
  /// The decay r_diag.back() / r_diag.front() measures how exhausted the
  /// sketched pair space is at this nip.
  std::vector<double> r_diag;
  /// Rows of the sketch matrix (k^2 with k Gaussian columns per side).
  std::size_t sketch_rows = 0;
};

/// Select `nip` interpolation points for the occupied x virtual pair
/// products of the full eigenbasis `eig` (columns are grid functions,
/// ascending), weighting virtual a by vir_weights[a]. `oversample` extra
/// Gaussian columns per side pad the sketch beyond ceil(sqrt(nip)).
/// Deterministic for a fixed `rng` seed.
PointSelection select_interpolation_points(
    const la::EigResult& eig, std::size_t n_occ,
    const std::vector<double>& vir_weights, std::size_t nip,
    std::size_t oversample, const Rng& rng);

}  // namespace rsrpa::isdf
