#include "isdf/points.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/qr.hpp"
#include "sched/parallel_for.hpp"

namespace rsrpa::isdf {

PointSelection select_interpolation_points(
    const la::EigResult& eig, std::size_t n_occ,
    const std::vector<double>& vir_weights, std::size_t nip,
    std::size_t oversample, const Rng& rng) {
  const std::size_t n_d = eig.vectors.rows();
  RSRPA_REQUIRE_MSG(nip >= 1 && nip <= n_d, "nip must be in [1, n_d]");
  RSRPA_REQUIRE(n_occ >= 1 && n_occ < n_d && eig.vectors.cols() == n_d);
  const std::size_t n_vir = n_d - n_occ;
  RSRPA_REQUIRE(vir_weights.size() == n_vir);

  // Sketch width per side: enough that k^2 rows can resolve nip pivots.
  const std::size_t k =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(nip)))) +
      oversample;

  // Gaussian mixtures of the occupied orbitals (side 1) and of the
  // weight-scaled virtuals (side 2). One derived stream per (side,
  // column) — never the shared engine — so the fills are order- and
  // thread-count-independent.
  la::Matrix<double> g1(n_occ, k), g2(n_vir, k);
  for (std::size_t c = 0; c < k; ++c) {
    Rng r1 = rng.derive((std::uint64_t{1} << 32) | c);
    Rng r2 = rng.derive((std::uint64_t{2} << 32) | c);
    r1.fill_normal(g1.col(c));
    r2.fill_normal(g2.col(c));
    double* g2c = &g2(0, c);
    for (std::size_t a = 0; a < n_vir; ++a) g2c[a] *= vir_weights[a];
  }
  la::Matrix<double> y1(n_d, k), y2(n_d, k);
  {
    const la::Matrix<double> psi = eig.vectors.slice_cols(0, n_occ);
    const la::Matrix<double> qv = eig.vectors.slice_cols(n_occ, n_vir);
    la::gemm_nn(1.0, psi, g1, 0.0, y1);
    la::gemm_nn(1.0, qv, g2, 0.0, y2);
  }

  // Khatri-Rao sketch, one k^2-row column per grid point. Transpose the
  // mixtures first so each grid point reads two contiguous k-vectors.
  la::Matrix<double> y1t = y1.transposed();
  la::Matrix<double> y2t = y2.transposed();
  la::Matrix<double> sketch(k * k, n_d);
  sched::parallel_for(0, n_d, 64, [&](std::size_t r) {
    const double* a = &y1t(0, r);
    const double* b = &y2t(0, r);
    double* s = &sketch(0, r);
    for (std::size_t t = 0; t < k; ++t)
      for (std::size_t ss = 0; ss < k; ++ss) s[ss + t * k] = a[ss] * b[t];
  });

  la::PivotedQrResult qr = la::pivoted_qr(sketch, nip, 1e-12);

  PointSelection sel;
  sel.sketch_rows = k * k;
  sel.points.assign(qr.pivots.begin(),
                    qr.pivots.begin() + static_cast<std::ptrdiff_t>(qr.rank));
  sel.r_diag.resize(qr.rank);
  for (std::size_t i = 0; i < qr.rank; ++i)
    sel.r_diag[i] = std::abs(qr.r(i, i));
  return sel;
}

}  // namespace rsrpa::isdf
