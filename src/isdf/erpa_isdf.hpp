// The ISDF RPA correlation-energy driver — the cubic-scaling third
// backend beside the Sternheimer (rpa/erpa) and dense-direct
// (direct/direct_rpa) routes.
//
// Pipeline per run: one full diagonalization of H (shared with the direct
// backend), randomized interpolation-point selection (isdf/points), the
// least-squares interpolation-vector fit (isdf/fit), then per quadrature
// point the nip x nip compressed spectrum of nu^{1/2} chi0 nu^{1/2}
// (isdf/compressed) feeding the same Tr[ln(I - M) + M] accumulation the
// other drivers use. By default the trace is truncated to the n_eig most
// negative eigenvalues so ISDF is directly comparable to the Sternheimer
// driver at the same N_NUCHI_EIGS; n_eig = 0 keeps the full compressed
// trace (the large-n_eig regime the iterative backends cannot reach).
#pragma once

#include <cstdint>
#include <vector>

#include "dft/ks_system.hpp"
#include "obs/event_log.hpp"
#include "poisson/kronecker.hpp"
#include "rpa/erpa.hpp"

namespace rsrpa::isdf {

/// Kernel-timer bucket names (beyond compressed.hpp's assemble/eigensolve).
namespace kernels {
inline constexpr const char* kDiagonalize = "diagonalization";
inline constexpr const char* kSelect = "isdf_select";
inline constexpr const char* kFit = "isdf_fit";
}  // namespace kernels

struct IsdfRpaOptions {
  int ell = 8;  ///< N_OMEGA
  /// Keep the `n_eig` most negative eigenvalues of the compressed
  /// operator per quadrature point (Sternheimer-comparable truncation);
  /// 0 = full compressed trace.
  std::size_t n_eig = 0;
  /// Rank-truncation knob: nip = round(c_nip * n_occ) when `nip` is 0.
  /// The compression error falls with c_nip; see DESIGN.md "Choosing a
  /// backend" for the accuracy/cost trade.
  double c_nip = 22.0;
  std::size_t nip = 0;        ///< explicit override (clamped to [1, n_d])
  std::size_t oversample = 4; ///< extra Gaussian sketch columns per side
  double ridge = 0.0;         ///< fit ridge (relative); 0 = only on breakdown
  /// Reference frequency for the virtual fit weights (fit.hpp); 0 = the
  /// smallest quadrature omega, where the response is strongest.
  double omega_ref = 0.0;
  std::uint64_t seed = 0x15df5eedULL;
  /// Cooperative cancel/preempt, polled at quadrature-point boundaries
  /// like the other drivers. Not owned.
  rpa::RunControl* control = nullptr;
};

struct IsdfRpaResult {
  double e_rpa = 0.0;
  double e_rpa_per_atom = 0.0;
  bool converged = true;  ///< no trace-term domain violations
  std::size_t nip = 0;    ///< points actually used (after rank stop)
  std::size_t n_eig = 0;  ///< eigenvalues kept per point (resolved)
  /// Selected grid-point indices in pivot order, and the |R_kk| decay of
  /// the selection QRCP (the compression-quality diagnostic).
  std::vector<std::size_t> points;
  std::vector<double> r_diag;
  double fit_ridge = 0.0;
  /// One record per quadrature point; matvec_bytes/flops carry the
  /// modeled GEMM traffic of the compressed evaluation, so the standard
  /// arithmetic-intensity telemetry applies unchanged.
  std::vector<rpa::OmegaRecord> per_omega;
  KernelTimers timers;
  obs::EventLog events;
  double diagonalization_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Compute E_RPA via the compressed ISDF representation. `klap` must
/// discretize the same grid/radius as the system Hamiltonian.
IsdfRpaResult compute_rpa_energy_isdf(const dft::KsSystem& sys,
                                      const poisson::KroneckerLaplacian& klap,
                                      const IsdfRpaOptions& opts);

}  // namespace rsrpa::isdf
