#include "isdf/erpa_isdf.hpp"

#include <algorithm>
#include <cmath>

#include "direct/dense.hpp"
#include "isdf/compressed.hpp"
#include "isdf/fit.hpp"
#include "isdf/points.hpp"
#include "rpa/quadrature.hpp"

namespace rsrpa::isdf {

IsdfRpaResult compute_rpa_energy_isdf(const dft::KsSystem& sys,
                                      const poisson::KroneckerLaplacian& klap,
                                      const IsdfRpaOptions& opts) {
  RSRPA_REQUIRE(opts.ell >= 1);
  RSRPA_REQUIRE(opts.c_nip > 0.0);
  const std::size_t n_d = sys.n_grid();
  const std::size_t n_occ = sys.n_occ();
  RSRPA_REQUIRE_MSG(n_occ >= 1 && n_occ < n_d,
                    "ISDF needs at least one occupied and one virtual state");

  WallTimer total;
  IsdfRpaResult result;

  // The compressed coefficients sample exact eigenvector rows, so the
  // backend shares the direct route's one-time full diagonalization.
  WallTimer t_diag;
  const la::EigResult eig = direct::full_diagonalization(*sys.h);
  result.diagonalization_seconds = t_diag.seconds();
  result.timers.add(kernels::kDiagonalize, result.diagonalization_seconds);

  std::size_t nip = opts.nip != 0
                        ? opts.nip
                        : static_cast<std::size_t>(std::llround(
                              opts.c_nip * static_cast<double>(n_occ)));
  nip = std::clamp<std::size_t>(nip, 1, n_d);

  // The fit weights mirror the Adler-Wiser energy factor at the smallest
  // quadrature frequency (strongest response) unless overridden.
  const std::vector<rpa::QuadPoint> quad =
      rpa::rpa_frequency_quadrature(opts.ell);
  const double omega_ref =
      opts.omega_ref > 0.0 ? opts.omega_ref : quad.back().omega;
  const std::vector<double> weights =
      virtual_pair_weights(eig.values, n_occ, omega_ref);

  rpa::check_run_control(opts.control);
  WallTimer t_select;
  Rng rng(opts.seed);
  PointSelection sel =
      select_interpolation_points(eig, n_occ, weights, nip, opts.oversample,
                                  rng);
  result.timers.add(kernels::kSelect, t_select.seconds());
  if (sel.points.size() < nip) {
    result.events.emit(
        obs::events::kIsdfRankDeficient,
        "sketched pair space ran out of numerical rank before nip points",
        {{"nip_requested", static_cast<double>(nip)},
         {"nip_selected", static_cast<double>(sel.points.size())}});
    nip = sel.points.size();
  }
  result.nip = nip;
  result.points = sel.points;
  result.r_diag = sel.r_diag;
  result.events.emit(
      obs::events::kIsdfPointsSelected, "interpolation points selected",
      {{"nip", static_cast<double>(nip)},
       {"sketch_rows", static_cast<double>(sel.sketch_rows)},
       {"r_decay",
        sel.r_diag.empty() ? 0.0 : sel.r_diag.back() / sel.r_diag.front()}});

  WallTimer t_fit;
  FitResult fit =
      fit_interpolation_vectors(eig, n_occ, weights, sel.points, opts.ridge);
  result.fit_ridge = fit.ridge;
  if (fit.regularized)
    result.events.emit(obs::events::kIsdfFitRegularized,
                       "fit Gram matrix needed an escalated ridge",
                       {{"ridge", fit.ridge}});
  CompressedNuChi0 comp(eig, n_occ, sel.points, std::move(fit.theta), klap);
  result.timers.add(kernels::kFit, t_fit.seconds());

  // n_eig = 0 keeps the whole compressed spectrum; otherwise truncate to
  // the most negative eigenvalues exactly like the Sternheimer driver.
  const std::size_t keep =
      opts.n_eig == 0 ? nip : std::min<std::size_t>(opts.n_eig, nip);
  result.n_eig = keep;

  for (int k = 0; k < opts.ell; ++k) {
    rpa::check_run_control(opts.control);
    const rpa::QuadPoint& q = quad[static_cast<std::size_t>(k)];
    WallTimer omega_timer;

    std::vector<double> spec = comp.spectrum(q.omega, &result.timers);
    spec.resize(std::min(spec.size(), keep));  // ascending = most negative

    rpa::OmegaRecord rec;
    rec.omega = q.omega;
    rec.weight = q.weight;
    rec.converged = true;
    rec.eigenvalues = spec;
    rpa::accumulate_trace_terms(spec, k, rec, &result.events);
    rec.matvec_flops = comp.flops_per_freq();
    rec.matvec_bytes = comp.bytes_per_freq();
    rec.seconds = omega_timer.seconds();
    result.e_rpa += q.weight * rec.e_term / (2.0 * M_PI);
    result.converged = result.converged && rec.converged;
    result.per_omega.push_back(std::move(rec));
  }

  const std::size_t n_atoms = sys.h->crystal().n_atoms();
  result.e_rpa_per_atom = result.e_rpa / static_cast<double>(n_atoms);
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace rsrpa::isdf
