// ISDF interpolation-vector fit.
//
// Given interpolation points {r_mu}, the interpolation vectors zeta_mu
// minimize, in weighted least squares over the occupied x virtual pair
// space,
//
//   sum_{j occ, a vir} v_a^2 || rho_{ja} - sum_mu zeta_mu rho_{ja}(r_mu) ||^2 ,
//
// i.e. Theta = (A B^T)(B B^T)^{-1} with A the matrix of pair products
// scaled by the per-virtual weight v_a and B its rows sampled at the
// points. Both Gram factors collapse to Hadamard products of two half
// Grams:
//
//   (A B^T)(r, mu) = G_occ(r, p_mu) * Gv(r, p_mu)
//   (B B^T)(mu,nu) = G_occ(p_mu, p_nu) * Gv(p_mu, p_nu)
//
// with G_occ = Psi Psi_mu^T over the occupied block and Gv(r, r') =
// sum_a v_a^2 phi_a(r) phi_a(r') the weighted virtual half-Gram — one
// n_d x n_vir x nip GEMM each, frequency-independent.
//
// The weight matters: unweighted (v_a = 1, the completeness-trick form
// delta - G_occ) the fit spends its budget on the enormous tail of
// grid-scale high-virtual pairs, whose chi0 contribution is crushed by
// the energy denominator; the compressed energy then degrades as the grid
// refines. virtual_pair_weights mirrors the Adler-Wiser factor at a
// reference frequency so the fit targets the pairs that carry the trace.
// The normal equations are solved by Cholesky; a graded ridge is added on
// (numerical) rank deficiency.
#pragma once

#include <cstddef>
#include <vector>

#include "la/eig.hpp"
#include "la/matrix.hpp"

namespace rsrpa::isdf {

struct FitResult {
  la::Matrix<double> theta;  ///< n_d x nip interpolation vectors
  bool regularized = false;  ///< Cholesky needed a ridge
  double ridge = 0.0;        ///< the ridge that succeeded (0 = clean)
};

/// Per-virtual fit weights v_a = sqrt(4 (lam_a - ebar) / ((lam_a - ebar)^2
/// + omega_ref^2)) with ebar the mean occupied eigenvalue — the square
/// root of the Adler-Wiser energy factor a virtual picks up in chi0 at
/// frequency omega_ref. `values` is the full ascending spectrum; the
/// returned vector has one entry per virtual state (size n - n_occ).
std::vector<double> virtual_pair_weights(const std::vector<double>& values,
                                         std::size_t n_occ, double omega_ref);

/// Fit the ISDF interpolation vectors for the occupied x virtual pair
/// products of the full eigenbasis `eig` (l2-orthonormal columns,
/// ascending) at the given grid points, weighting virtual a by
/// vir_weights[a]. `ridge`, when nonzero, is added to the Gram diagonal
/// up front (scaled by the mean diagonal); on Cholesky breakdown an
/// escalating ridge is applied automatically.
FitResult fit_interpolation_vectors(const la::EigResult& eig,
                                    std::size_t n_occ,
                                    const std::vector<double>& vir_weights,
                                    const std::vector<std::size_t>& points,
                                    double ridge = 0.0);

}  // namespace rsrpa::isdf
