// Frequency quadrature for the semi-infinite RPA integral (Eq. 1 / 3).
//
// Gauss-Legendre nodes x on [0, 1] are mapped by omega = (1 - x) / x with
// weight w = w_GL / x^2 (the ABINIT-style scheme the paper uses). For
// l = 8 this reproduces Table II: omega = 49.36 ... 0.020 with weights
// 128.4 ... 0.053. Points are returned in the paper's DESCENDING omega
// order (omega_1 largest), which is what makes the warm-start chain of
// SS III-F effective.
#pragma once

#include <vector>

namespace rsrpa::rpa {

struct QuadPoint {
  double omega = 0.0;   ///< frequency (Ha)
  double weight = 0.0;  ///< transformed weight w_GL / x^2
  double x01 = 0.0;     ///< underlying Gauss-Legendre node on [0, 1]
  double w01 = 0.0;     ///< underlying Gauss-Legendre weight on [0, 1]
};

/// Gauss-Legendre nodes and weights on [-1, 1], ascending nodes. Computed
/// by Newton iteration on the Legendre polynomial.
std::vector<std::pair<double, double>> gauss_legendre(int n);

/// Same rule via the Golub-Welsch eigenvalue algorithm (paper ref [25]) —
/// an independent construction used to cross-validate gauss_legendre.
std::vector<std::pair<double, double>> gauss_legendre_golub_welsch(int n);

/// The paper's frequency grid: l points, descending omega.
std::vector<QuadPoint> rpa_frequency_quadrature(int ell);

}  // namespace rsrpa::rpa
