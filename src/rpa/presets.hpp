// Experimental system presets — Tables I and III of the paper.
//
// Each preset is an 8*ncells-atom silicon chain (one diamond cell
// replicated along z) on a uniform grid. Paper scale uses the published
// parameters (15 grid points per cell edge = 0.684 Bohr mesh, 96
// eigenvalues per atom, stencil radius 6); bench scale shrinks the mesh
// and eigencount so every experiment runs in seconds on one core while
// preserving the shape of the results (see DESIGN.md).
#pragma once

#include <memory>
#include <string>

#include "dft/ks_system.hpp"
#include "poisson/kronecker.hpp"
#include "rpa/erpa.hpp"

namespace rsrpa::rpa {

struct SystemPreset {
  std::string name = "Si8";
  std::size_t ncells = 1;
  std::size_t grid_per_cell = 11;   ///< 15 at paper scale (Table I mesh)
  std::size_t n_eig_per_atom = 12;  ///< 96 at paper scale (Table I)
  int fd_radius = 4;                ///< 6 at paper scale
  double perturbation = 0.01;       ///< fraction of lattice constant
  bool vacancy = false;             ///< remove one atom (SS IV-A energy diff)
  std::uint64_t seed = 7;
  /// Per-job fused-apply tuning, applied to the built Hamiltonian before
  /// any orbital is computed (so the whole job, ground state included,
  /// runs one schedule). -1/0 = inherit the process-wide environment
  /// defaults (RSRPA_FUSED_APPLY, RSRPA_TILE_Y, RSRPA_TILE_Z); see
  /// grid/stencil.hpp. This is what lets two jobs in one process select
  /// different apply paths — the env vars are only defaults, never a
  /// process-wide latch.
  int fused_apply = -1;             ///< -1 inherit, 0 reference, 1 fused
  std::size_t tile_y = 0;           ///< 0 = inherit
  std::size_t tile_z = 0;           ///< 0 = inherit

  [[nodiscard]] std::size_t n_atoms() const {
    return 8 * ncells - (vacancy ? 1 : 0);
  }
  [[nodiscard]] std::size_t n_occ() const { return 2 * n_atoms(); }
  [[nodiscard]] std::size_t n_grid() const {
    return grid_per_cell * grid_per_cell * grid_per_cell * ncells;
  }
  [[nodiscard]] std::size_t n_eig() const {
    return n_eig_per_atom * n_atoms();
  }
};

/// Table III system: Si_{8 n} at bench or paper scale.
SystemPreset make_si_preset(std::size_t ncells, bool paper_scale = false);

/// A preset plus everything built from it, ready for RPA.
struct BuiltSystem {
  SystemPreset preset;
  std::shared_ptr<ham::Hamiltonian> h;
  std::shared_ptr<poisson::KroneckerLaplacian> klap;
  dft::KsSystem ks;

  /// RpaOptions prefilled with the preset's Table I analogues.
  [[nodiscard]] RpaOptions default_rpa_options() const;
};

/// Build the crystal, Hamiltonian, Poisson operator and occupied orbitals
/// for a preset. `run_scf` adds the self-consistent loop (slower; the
/// solver-focused experiments use the fixed model potential).
BuiltSystem build_system(const SystemPreset& preset, bool run_scf = false);

}  // namespace rsrpa::rpa
