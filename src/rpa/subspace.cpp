#include "rpa/subspace.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"
#include "obs/event_log.hpp"
#include "sched/parallel_for.hpp"
#include "solver/chebyshev.hpp"

namespace rsrpa::rpa {

namespace {

// One Rayleigh-Ritz pass: project, solve the generalized symmetric
// eigenproblem, rotate V, then evaluate the Eq. (7) error with a fresh
// operator application (the paper's "eval error" kernel).
struct RrOutcome {
  std::vector<double> values;
  double error = 0.0;
  bool collapsed = false;  ///< generalized eigensolve fell back to sym_eig
};

RrOutcome rayleigh_ritz_and_error(const NuChi0Operator& op, double omega,
                                  la::Matrix<double>& v,
                                  SternheimerStats* stats,
                                  KernelTimers* timers,
                                  obs::EventLog* events) {
  const std::size_t n = v.rows(), m = v.cols();
  la::Matrix<double> av(n, m);
  op.apply(v, av, omega, stats, timers);

  la::Matrix<double> hs(m, m), ms(m, m);
  {
    WallTimer t;
    la::gemm_tn(1.0, v, av, 0.0, hs);
    la::gemm_tn(1.0, v, v, 0.0, ms);
    if (timers != nullptr) timers->add(kernels::kMatmult, t.seconds());
  }
  // Inexact Sternheimer solves leave H_s slightly asymmetric; symmetrize
  // before the generalized eigensolve (the subspace-iteration-under-
  // perturbation regime of paper SS IV-B).
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (hs(i, j) + hs(j, i));
      hs(i, j) = avg;
      hs(j, i) = avg;
    }

  la::EigResult sub;
  bool collapsed = false;
  {
    WallTimer t;
    try {
      sub = la::sym_eig_gen(hs, ms);
    } catch (const NumericalBreakdown& breakdown) {
      // Filtering collapsed the block numerically: orthonormalize and
      // re-project with M_s = I.
      collapsed = true;
      if (events != nullptr)
        events->emit(obs::events::kEigensolveCollapse, breakdown.what(),
                     {{"omega", omega},
                      {"subspace_dim", static_cast<double>(m)}});
      la::orthonormalize(v);
      op.apply(v, av, omega, stats, timers);
      la::gemm_tn(1.0, v, av, 0.0, hs);
      sub = la::sym_eig(hs);
    }
    if (timers != nullptr) timers->add(kernels::kEigensolve, t.seconds());
  }

  {
    WallTimer t;
    la::Matrix<double> rotated(n, m);
    la::gemm_nn(1.0, v, sub.vectors, 0.0, rotated);
    v = std::move(rotated);
    if (timers != nullptr) timers->add(kernels::kMatmult, t.seconds());
  }

  // Convergence check, Eq. (7): a fresh apply A V_rot plus the norm
  // reductions (the MPI_Allreduce in the distributed setting).
  RrOutcome out;
  out.values = sub.values;
  out.collapsed = collapsed;
  {
    WallTimer t;
    op.apply(v, av, omega, stats, nullptr);  // time under eval_error
    // Per-column residual norms fan out (disjoint slots); the final sum
    // stays serial in ascending j so the error — and through it every
    // filtering decision — is bitwise identical at any thread count.
    std::vector<double> col_res(m, 0.0);
    sched::parallel_for(
        0, m, 4,
        [&](std::size_t j) {
          double r2 = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            const double r = av(i, j) - sub.values[j] * v(i, j);
            r2 += r * r;
          }
          col_res[j] = std::sqrt(r2);
        });
    double sum_res = 0.0, sum_d2 = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      sum_res += col_res[j];
      sum_d2 += sub.values[j] * sub.values[j];
    }
    out.error = sum_res / (static_cast<double>(m) *
                           std::max(std::sqrt(sum_d2), 1e-300));
    if (timers != nullptr) timers->add(kernels::kEvalError, t.seconds());
  }
  return out;
}

}  // namespace

SubspaceResult subspace_iteration(const NuChi0Operator& op, double omega,
                                  la::Matrix<double>& v,
                                  const SubspaceOptions& opts,
                                  SternheimerStats* stats,
                                  KernelTimers* timers,
                                  obs::EventLog* events) {
  RSRPA_REQUIRE(v.rows() == op.n_grid() && v.cols() >= 1);
  SubspaceResult res;

  // Lines 2-5 of Algorithm 5: Rayleigh-Ritz on the initial guess with NO
  // filtering; an accurate warm start exits here with ncheb = 0.
  RrOutcome rr = rayleigh_ritz_and_error(op, omega, v, stats, timers, events);
  res.eigenvalues = rr.values;
  res.error = rr.error;
  res.converged = rr.error <= opts.tol;
  if (rr.collapsed) ++res.eigensolve_collapses;

  while (!res.converged && res.filter_iterations < opts.max_filter_iter) {
    // Filter: damp the unwanted tail (largest Ritz value, 0]; everything
    // more negative is amplified. a0 anchors the scaling at the most
    // negative Ritz value.
    const double d_min = res.eigenvalues.front();  // most negative
    const double d_max = res.eigenvalues.back();   // closest to zero
    const double span = std::max(std::abs(d_min), 1e-12);
    const double damp_hi = 1e-6 * span;  // just above zero
    // Inexact Sternheimer solves can push the top Ritz value to (or past)
    // zero; clamp so the damp interval stays valid (lo < hi).
    const double damp_lo = std::min(d_max, -1e-9 * span);
    const double a0 = std::min(d_min, damp_lo - 1e-6 * span);

    solver::BlockOpR a_op = [&](const la::Matrix<double>& in,
                                la::Matrix<double>& out) {
      op.apply(in, out, omega, stats, timers);
    };
    solver::chebyshev_filter_op(a_op, v, opts.cheb_degree, damp_lo, damp_hi,
                                a0);

    rr = rayleigh_ritz_and_error(op, omega, v, stats, timers, events);
    res.eigenvalues = rr.values;
    res.error = rr.error;
    res.converged = rr.error <= opts.tol;
    if (rr.collapsed) ++res.eigensolve_collapses;
    ++res.filter_iterations;
  }
  return res;
}

}  // namespace rsrpa::rpa
