#include "rpa/erpa_slq.hpp"

#include <cmath>

#include "rpa/erpa.hpp"
#include "rpa/quadrature.hpp"
#include "rpa/trace_est.hpp"

namespace rsrpa::rpa {

SlqRpaResult compute_rpa_energy_slq(const dft::KsSystem& sys,
                                    const poisson::KroneckerLaplacian& klap,
                                    const SlqRpaOptions& opts) {
  RSRPA_REQUIRE(opts.ell >= 1 && opts.n_probes >= 1 && opts.lanczos_steps >= 1);

  WallTimer total;
  SlqRpaResult out;
  NuChi0Operator op(sys, klap, opts.stern);
  const auto quad = rpa_frequency_quadrature(opts.ell);
  Rng rng(opts.seed);

  long applies = 0;
  for (const QuadPoint& q : quad) {
    solver::BlockOpR mop = [&op, &q, &applies](const la::Matrix<double>& in,
                                               la::Matrix<double>& o) {
      op.apply(in, o, q.omega, nullptr, nullptr);
      applies += static_cast<long>(in.cols());
    };
    // The spectrum of M is non-positive; Ritz values may poke slightly
    // above zero from Lanczos rounding and loose Sternheimer solves, so
    // clamp before ln(1 - x).
    const double e_term = slq_trace(
        mop, sys.n_grid(),
        [](double x) { return rpa_trace_term(std::min(x, 0.0)); },
        opts.n_probes, opts.lanczos_steps, rng);
    out.e_terms.push_back(e_term);
    out.e_rpa += q.weight * e_term / (2.0 * M_PI);
  }

  out.matvec_columns = applies;
  out.e_rpa_per_atom = out.e_rpa / static_cast<double>(sys.h->crystal().n_atoms());
  out.total_seconds = total.seconds();
  return out;
}

}  // namespace rsrpa::rpa
