#include "rpa/erpa_slq.hpp"

#include <cmath>

#include "rpa/erpa.hpp"
#include "rpa/quadrature.hpp"
#include "rpa/trace_est.hpp"

namespace rsrpa::rpa {

SlqRpaResult compute_rpa_energy_slq(const dft::KsSystem& sys,
                                    const poisson::KroneckerLaplacian& klap,
                                    const SlqRpaOptions& opts) {
  RSRPA_REQUIRE(opts.ell >= 1 && opts.n_probes >= 1 && opts.lanczos_steps >= 1);

  WallTimer total;
  SlqRpaResult out;
  NuChi0Operator op(sys, klap, opts.stern);
  const auto quad = rpa_frequency_quadrature(opts.ell);
  Rng rng(opts.seed);

  long applies = 0;
  for (std::size_t k = 0; k < quad.size(); ++k) {
    check_run_control(opts.control);
    const QuadPoint& q = quad[k];
    WallTimer omega_timer;
    const long applies_before = applies;
    solver::BlockOpR mop = [&op, &q, &applies](const la::Matrix<double>& in,
                                               la::Matrix<double>& o) {
      op.apply(in, o, q.omega, nullptr, nullptr);
      applies += static_cast<long>(in.cols());
    };
    // The spectrum of M is non-positive; Ritz values may poke slightly
    // above zero from Lanczos rounding and loose Sternheimer solves, so
    // clamp before ln(1 - x).
    const std::vector<double> samples = slq_trace_samples(
        mop, sys.n_grid(),
        [](double x) { return rpa_trace_term(std::min(x, 0.0)); },
        opts.n_probes, opts.lanczos_steps, rng);
    double e_term = 0.0;
    for (double s : samples) e_term += s;
    e_term /= opts.n_probes;

    SlqOmegaRecord rec;
    rec.omega = q.omega;
    rec.weight = q.weight;
    rec.e_term = e_term;
    rec.n_probes = opts.n_probes;
    rec.lanczos_steps = opts.lanczos_steps;
    if (samples.size() > 1) {
      double ss = 0.0;
      for (double s : samples) ss += (s - e_term) * (s - e_term);
      rec.probe_stddev =
          std::sqrt(ss / (static_cast<double>(samples.size()) - 1.0));
    }
    rec.matvec_columns = applies - applies_before;
    rec.seconds = omega_timer.seconds();
    out.events.emit(obs::events::kSlqOmegaEstimate,
                    "stochastic trace estimate",
                    {{"omega_index", static_cast<double>(k)},
                     {"omega", q.omega},
                     {"e_term", e_term},
                     {"probe_stddev", rec.probe_stddev},
                     {"matvec_columns", static_cast<double>(rec.matvec_columns)}});
    out.e_terms.push_back(e_term);
    out.e_rpa += q.weight * e_term / (2.0 * M_PI);
    out.per_omega.push_back(rec);
  }

  out.matvec_columns = applies;
  out.e_rpa_per_atom = out.e_rpa / static_cast<double>(sys.h->crystal().n_atoms());
  out.total_seconds = total.seconds();
  return out;
}

}  // namespace rsrpa::rpa
