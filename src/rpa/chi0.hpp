// Matrix-free application of the irreducible polarizability chi0(i omega).
//
// The two-step procedure of paper Eqs. (4)-(5) in block form (Eq. 6):
// for each occupied orbital j, solve the block Sternheimer system
//
//   (H - lambda_j I + i omega I) Y_j = -(V . Psi_j)     (Hadamard RHS)
//
// with block COCG under dynamic block-size selection (Algorithms 3+4) and
// the Galerkin initial guess (Eq. 13), then accumulate
//
//   chi0 V = (4 / dv) Re sum_j Psi_j . Y_j.
//
// The 1/dv converts the grid-orthonormal orbital convention into the
// continuum polarizability operator, so the spectrum of nu chi0 is the
// physical (dimensionless) one of paper Fig. 1.
#pragma once

#include <map>
#include <optional>

#include "common/timer.hpp"
#include "dft/ks_system.hpp"
#include "solver/dynamic_block.hpp"

namespace rsrpa::rpa {

struct SternheimerOptions {
  double tol = 1e-2;          ///< TOL_STERN_RES of the artifact input
  int max_iter = 1000;
  bool dynamic_block = true;  ///< Algorithm 4 on/off (ablation A3/Table IV)
  int fixed_block = 1;        ///< used when dynamic_block is false
  int max_block = 0;          ///< n_eig / p cap; 0 = unlimited
  bool galerkin_guess = true; ///< Eq. (13) on/off (ablation A3)
  /// Breakdown-recovery ladder policy for every block solve
  /// (solver/resilience.hpp): restart -> deflate -> swap -> quarantine.
  solver::ResilienceOptions resilience;
  /// Deterministic fault injection into the Sternheimer operator (tests /
  /// chaos drills). mode = kNone leaves the operator unwrapped; otherwise
  /// a FaultInjectingOp is installed per occupied orbital, seeded from
  /// fault.seed and the orbital index so results are bitwise reproducible
  /// at any thread count.
  solver::FaultInjectionOptions fault;
  /// Stagnation detection handed to the solvers: breakdown when the
  /// residual fails to improve over this many iterations (0 = off).
  int stagnation_window = 0;
  double stagnation_factor = 0.99;
  /// Optional telemetry sink threaded down to the dynamic-block solver;
  /// the RPA drivers point it at their result's event log. Not owned.
  obs::EventLog* events = nullptr;
};

/// Accumulated statistics over Sternheimer solves (feeds Table IV and the
/// load-balance analysis of Figs. 4/5).
struct SternheimerStats {
  std::map<int, int> block_size_chunks;  ///< Table IV histogram
  long total_chunks = 0;
  long matvec_columns = 0;
  /// Estimated operator traffic/work over all solves (the per-column cost
  /// model of the bound ShiftedHamiltonianOp times matvec_columns), so
  /// run reports expose achieved arithmetic intensity per quadrature
  /// point: matvec_flops / matvec_bytes.
  double matvec_bytes = 0.0;
  double matvec_flops = 0.0;
  double seconds = 0.0;
  bool all_converged = true;
  // Recovery-ladder totals (solver/resilience.hpp).
  long restarts = 0;
  long deflations = 0;
  long solver_swaps = 0;
  long quarantined_columns = 0;
  /// Column indices (in the frame of the block handed to the operator —
  /// i.e. positions in the driver's subspace V) that rung 4 gave up on,
  /// in quarantine order. Indices can repeat when the same column fails
  /// for several occupied orbitals or applies; consumers deduplicate.
  /// The warm-start chain uses the per-point delta of this list to
  /// re-randomize poisoned columns before the next quadrature point.
  std::vector<long> quarantined_column_indices;

  void merge(const solver::DynamicBlockReport& rep);
  /// Merge another stats object; `col0` shifts its quarantined column
  /// indices into this object's column frame (the rank offset when
  /// merging per-rank slices in par/parallel_rpa).
  void merge(const SternheimerStats& other, long col0 = 0);
};

class Chi0Applier {
 public:
  Chi0Applier(const dft::KsSystem& sys, SternheimerOptions opts);

  /// out = chi0(i omega) * v for a block of real vectors. `stats`
  /// (optional) accumulates solver statistics. `events` (optional)
  /// overrides the options-level event sink for this call — concurrent
  /// callers (the rank tasks of par/parallel_rpa) pass per-task logs here
  /// because EventLog itself is single-owner.
  void apply(const la::Matrix<double>& v, la::Matrix<double>& out,
             double omega, SternheimerStats* stats = nullptr,
             obs::EventLog* events = nullptr) const;

  [[nodiscard]] const dft::KsSystem& system() const { return sys_; }
  [[nodiscard]] const SternheimerOptions& options() const { return opts_; }
  SternheimerOptions& options() { return opts_; }

 private:
  const dft::KsSystem& sys_;
  SternheimerOptions opts_;
};

}  // namespace rsrpa::rpa
