#include "rpa/quadrature.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/eig.hpp"

namespace rsrpa::rpa {

std::vector<std::pair<double, double>> gauss_legendre(int n) {
  RSRPA_REQUIRE(n >= 1);
  std::vector<std::pair<double, double>> out(n);
  const int m = (n + 1) / 2;
  for (int i = 0; i < m; ++i) {
    // Chebyshev-based initial guess for the i-th root.
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
      double p0 = 1.0, p1 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * j + 1.0) * x * p1 - j * p2) / (j + 1.0);
      }
      pp = n * (x * p0 - p1) / (x * x - 1.0);
      const double dx = p0 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    out[static_cast<std::size_t>(i)] = {-x, w};          // ascending half
    out[static_cast<std::size_t>(n - 1 - i)] = {x, w};   // mirrored half
  }
  return out;
}

std::vector<std::pair<double, double>> gauss_legendre_golub_welsch(int n) {
  RSRPA_REQUIRE(n >= 1);
  // Jacobi matrix of the Legendre recurrence: zero diagonal, off-diagonal
  // beta_k = k / sqrt(4 k^2 - 1). Nodes are its eigenvalues; weights are
  // 2 * (first eigenvector component)^2.
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  std::vector<double> e(static_cast<std::size_t>(n) - 1);
  for (int k = 1; k < n; ++k)
    e[static_cast<std::size_t>(k - 1)] = k / std::sqrt(4.0 * k * k - 1.0);
  la::EigResult eig = la::tridiag_eig(std::move(d), std::move(e));
  std::vector<std::pair<double, double>> out(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double q0 = eig.vectors(0, static_cast<std::size_t>(j));
    out[static_cast<std::size_t>(j)] = {eig.values[static_cast<std::size_t>(j)],
                                        2.0 * q0 * q0};
  }
  return out;
}

std::vector<QuadPoint> rpa_frequency_quadrature(int ell) {
  const auto gl = gauss_legendre(ell);
  std::vector<QuadPoint> pts(static_cast<std::size_t>(ell));
  // Map [-1,1] -> [0,1]; ascending x gives descending omega = (1-x)/x,
  // which is already the paper's ordering (omega_1 largest at smallest x).
  for (int k = 0; k < ell; ++k) {
    const double x = 0.5 * (gl[static_cast<std::size_t>(k)].first + 1.0);
    const double w = 0.5 * gl[static_cast<std::size_t>(k)].second;
    QuadPoint& p = pts[static_cast<std::size_t>(k)];
    p.x01 = x;
    p.w01 = w;
    p.omega = (1.0 - x) / x;
    p.weight = w / (x * x);
  }
  return pts;
}

}  // namespace rsrpa::rpa
