// Subspace iteration with Chebyshev polynomial filtering on the
// symmetrized operator nu^{1/2} chi0(i omega) nu^{1/2} — Algorithm 5.
//
// The caller supplies V (in/out): a random block for the first quadrature
// point, the converged eigenvectors of the previous omega afterwards
// (paper SS III-F). Following Algorithm 5, a Rayleigh-Ritz + convergence
// check runs BEFORE any filtering, so an accurate warm start can converge
// with zero filter applications — the "skip polynomial filtering" effect
// visible as ncheb = 0 rows in the artifact log.
#pragma once

#include "rpa/nu_chi0.hpp"

namespace rsrpa::rpa {

struct SubspaceOptions {
  double tol = 5e-4;         ///< tau_SI for this quadrature point
  int max_filter_iter = 10;  ///< MAXIT_FILTERING
  int cheb_degree = 2;       ///< CHEB_DEGREE_RPA
};

struct SubspaceResult {
  std::vector<double> eigenvalues;  ///< ascending (most negative first)
  int filter_iterations = 0;        ///< "ncheb" — filter passes used
  double error = 0.0;               ///< Eq. (7) at exit
  bool converged = false;
  int eigensolve_collapses = 0;     ///< generalized eigensolve fallbacks
};

/// Run Algorithm 5 at frequency `omega`. `v` holds the initial subspace on
/// entry and the converged (orthonormal) eigenvector block on exit.
/// `events` (optional) records eigensolve collapses — the filtered block
/// going numerically rank-deficient and forcing the orthonormalize +
/// standard-eigensolve recovery path.
SubspaceResult subspace_iteration(const NuChi0Operator& op, double omega,
                                  la::Matrix<double>& v,
                                  const SubspaceOptions& opts,
                                  SternheimerStats* stats = nullptr,
                                  KernelTimers* timers = nullptr,
                                  obs::EventLog* events = nullptr);

}  // namespace rsrpa::rpa
