// Driver-side glue shared by compute_rpa_energy and run_parallel_rpa:
// capture/restore of the per-run state a RunCheckpoint persists, the
// checkpoint lifecycle events, and the warm-start decontamination step
// (re-randomizing quarantined subspace columns before the next
// quadrature point). Kept out of erpa.cpp so the serial and parallel
// sweeps wire the exact same behavior — resume-equivalence bugs from
// drifted copies are how runs stop being bitwise reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "io/checkpoint.hpp"
#include "rpa/erpa.hpp"

namespace rsrpa::rpa::detail {

/// Sorted, deduplicated V-column indices quarantined since `idx_before`
/// (a cursor into SternheimerStats::quarantined_column_indices taken at
/// the start of the quadrature point).
std::vector<long> quarantined_columns_since(const SternheimerStats& stern,
                                            std::size_t idx_before);

/// Warm-start hygiene: refill the quarantined columns of `v` from
/// decorrelated Rng::derive streams keyed on (quadrature point, column) —
/// never on the engine position or thread identity — and emit a
/// warm_start_reseed event into the result log. Without this the chain
/// of paper SS III-F carries initial-guess garbage from a degraded point
/// into every omega downstream of it. No-op for empty `cols`.
void reseed_quarantined_columns(la::Matrix<double>& v,
                                const std::vector<long>& cols,
                                const Rng& rng, int omega_index,
                                obs::EventLog& events);

/// Snapshot the driver state after `completed_points` quadrature points
/// into a RunCheckpoint (the caller adds the parallel extras, if any).
io::RunCheckpoint make_checkpoint(std::uint64_t fingerprint,
                                  int completed_points,
                                  const RpaOptions& opts,
                                  const RpaResult& result,
                                  const la::Matrix<double>& v,
                                  const Rng& rng);

/// Restore a loaded checkpoint into the driver state; validates that the
/// checkpoint came from the same driver flavor and sweep shape, emits
/// run_resumed into the lifecycle sink, and returns the index of the
/// first quadrature point still to run.
int restore_checkpoint(io::RunCheckpoint&& ck, const RpaOptions& opts,
                       bool parallel, RpaResult& result,
                       la::Matrix<double>& v, Rng& rng);

/// Post-write lifecycle: emit checkpoint_written into the sink and fire
/// the simulated-crash test hook (throws RunHalted) when armed for `k`.
void after_checkpoint_write(const CheckpointOptions& copts, int k);

}  // namespace rsrpa::rpa::detail
