#include "rpa/presets.hpp"

#include "dft/scf.hpp"

namespace rsrpa::rpa {

SystemPreset make_si_preset(std::size_t ncells, bool paper_scale) {
  SystemPreset p;
  p.name = "Si" + std::to_string(8 * ncells);
  p.ncells = ncells;
  if (paper_scale) {
    p.grid_per_cell = 15;
    p.n_eig_per_atom = 96;
    p.fd_radius = 6;
  }
  return p;
}

BuiltSystem build_system(const SystemPreset& preset, bool run_scf) {
  BuiltSystem out;
  out.preset = preset;

  Rng rng(preset.seed);
  ham::Crystal crystal =
      ham::make_silicon_chain(preset.ncells, preset.perturbation, rng);
  if (preset.vacancy) {
    crystal.remove_atom(4);  // a tetrahedral-site atom
    crystal.rebuild_bonds(ham::diamond_nn_distance(ham::kSiLatticeConstant));
  }

  const grid::Grid3D g(preset.grid_per_cell, preset.grid_per_cell,
                       preset.grid_per_cell * preset.ncells,
                       ham::kSiLatticeConstant, ham::kSiLatticeConstant,
                       ham::kSiLatticeConstant *
                           static_cast<double>(preset.ncells));
  out.h = std::make_shared<ham::Hamiltonian>(g, preset.fd_radius,
                                             std::move(crystal),
                                             ham::ModelParams{});
  // Per-job apply tuning before any orbital is computed: the ground state
  // and every downstream solve use one consistent schedule.
  if (preset.fused_apply >= 0) out.h->set_fused_apply(preset.fused_apply != 0);
  if (preset.tile_y > 0 || preset.tile_z > 0)
    out.h->set_fused_tiles(
        preset.tile_y > 0 ? preset.tile_y : grid::default_fused_tile_y(),
        preset.tile_z > 0 ? preset.tile_z : grid::default_fused_tile_z());
  out.klap = std::make_shared<poisson::KroneckerLaplacian>(g, preset.fd_radius);

  Rng eig_rng(preset.seed + 1);
  if (run_scf) {
    dft::ScfOptions sopts;
    dft::ScfResult scf =
        dft::run_scf(*out.h, *out.klap, preset.n_occ(), sopts, eig_rng);
    // Repackage with one extra state for the gap.
    out.ks = dft::make_ks_system(out.h, preset.n_occ(), sopts.eig, eig_rng);
  } else {
    out.ks = dft::make_ks_system(out.h, preset.n_occ(), dft::ChefsiOptions{},
                                 eig_rng);
  }
  return out;
}

RpaOptions BuiltSystem::default_rpa_options() const {
  RpaOptions opts;
  opts.n_eig = preset.n_eig();
  opts.ell = 8;
  opts.stern.tol = 1e-2;
  opts.cheb_degree = 2;
  opts.max_filter_iter = 10;
  return opts;
}

}  // namespace rsrpa::rpa
