// E_RPA via stochastic Lanczos quadrature — the paper's SS V future-work
// replacement for the dense generalized eigensolve.
//
// At each quadrature point the functional trace Tr[ln(1 - M) + M] with
// M = nu^{1/2} chi0(i omega) nu^{1/2} is estimated directly by SLQ: each
// Rademacher probe runs a short Lanczos recurrence in M (every step one
// Sternheimer pass over a single vector), and probes are INDEPENDENT — the
// embarrassing parallelism the paper wants at large processor counts,
// with no subspace, no Gram matrices, and no eigensolve.
//
// Trade-off: stochastic error ~1/sqrt(n_probes) instead of a subspace
// truncation error, and no warm start to exploit. The a6 bench compares
// both drivers head to head.
#pragma once

#include "obs/event_log.hpp"
#include "rpa/erpa.hpp"
#include "rpa/nu_chi0.hpp"

namespace rsrpa::rpa {

struct SlqRpaOptions {
  int ell = 8;             ///< quadrature points (Table II scheme)
  int n_probes = 16;       ///< Rademacher probes per frequency
  int lanczos_steps = 16;  ///< Lanczos iterations per probe
  SternheimerOptions stern;
  std::uint64_t seed = 0x51ab5eedULL;
  /// Cooperative cancel/preempt, polled at quadrature-point boundaries
  /// like the other drivers. Not owned.
  RunControl* control = nullptr;
};

/// Per-quadrature-point SLQ telemetry — the stochastic driver's analogue
/// of rpa::OmegaRecord (no subspace, so no filter/eigenvalue fields; the
/// error bar is the probe-sample spread instead).
struct SlqOmegaRecord {
  double omega = 0.0;
  double weight = 0.0;
  double e_term = 0.0;        ///< probe-mean trace estimate
  int n_probes = 0;
  int lanczos_steps = 0;
  /// Unbiased standard deviation of the per-probe estimates; the standard
  /// error of e_term is probe_stddev / sqrt(n_probes). 0 when n_probes=1.
  double probe_stddev = 0.0;
  long matvec_columns = 0;    ///< operator applies spent on this point
  double seconds = 0.0;
};

struct SlqRpaResult {
  double e_rpa = 0.0;
  double e_rpa_per_atom = 0.0;
  std::vector<double> e_terms;  ///< per-omega trace estimates (kept: a6 API)
  std::vector<SlqOmegaRecord> per_omega;
  obs::EventLog events;         ///< one slq_omega_estimate per point
  double total_seconds = 0.0;
  long matvec_columns = 0;      ///< total single-vector operator applies
};

SlqRpaResult compute_rpa_energy_slq(const dft::KsSystem& sys,
                                    const poisson::KroneckerLaplacian& klap,
                                    const SlqRpaOptions& opts);

}  // namespace rsrpa::rpa
