#include "rpa/checkpoint_driver.hpp"

#include <set>
#include <string>
#include <utility>

namespace rsrpa::rpa::detail {

std::vector<long> quarantined_columns_since(const SternheimerStats& stern,
                                            std::size_t idx_before) {
  const std::vector<long>& all = stern.quarantined_column_indices;
  if (idx_before >= all.size()) return {};
  const std::set<long> uniq(all.begin() + static_cast<std::ptrdiff_t>(idx_before),
                            all.end());
  return {uniq.begin(), uniq.end()};
}

void reseed_quarantined_columns(la::Matrix<double>& v,
                                const std::vector<long>& cols,
                                const Rng& rng, int omega_index,
                                obs::EventLog& events) {
  if (cols.empty()) return;
  for (long c : cols) {
    if (c < 0 || static_cast<std::size_t>(c) >= v.cols()) continue;
    // Stream id keyed on (point, column) only: the refill is identical
    // whether the run got here straight through or via a resume, and at
    // any thread count. omega_index + 1 keeps point 0 distinct from the
    // plain column streams used elsewhere.
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(omega_index) + 1) << 32 |
        static_cast<std::uint64_t>(c);
    rng.derive(stream).fill_uniform(v.col(static_cast<std::size_t>(c)));
  }
  events.emit(obs::events::kWarmStartReseed,
              "re-randomized quarantined warm-start columns before the "
              "next quadrature point",
              {{"omega_index", static_cast<double>(omega_index)},
               {"columns", static_cast<double>(cols.size())}});
}

io::RunCheckpoint make_checkpoint(std::uint64_t fingerprint,
                                  int completed_points,
                                  const RpaOptions& opts,
                                  const RpaResult& result,
                                  const la::Matrix<double>& v,
                                  const Rng& rng) {
  io::RunCheckpoint ck;
  ck.fingerprint = fingerprint;
  ck.completed_points = completed_points;
  ck.ell = opts.ell;
  ck.e_rpa_partial = result.e_rpa;
  ck.degraded = result.degraded;
  ck.converged = result.converged;
  ck.rng_state = rng.save_state();
  ck.per_omega = result.per_omega;
  ck.stern = result.stern;
  ck.timers = result.timers;
  ck.events = result.events;
  ck.v = v;
  return ck;
}

int restore_checkpoint(io::RunCheckpoint&& ck, const RpaOptions& opts,
                       bool parallel, RpaResult& result,
                       la::Matrix<double>& v, Rng& rng) {
  RSRPA_REQUIRE_MSG(ck.parallel == parallel,
                    std::string("checkpoint was written by the ") +
                        (ck.parallel ? "parallel" : "serial") +
                        " driver; refusing to resume in the other one");
  // Belt and braces: the fingerprint already covers these, but a stale
  // file loaded with expected_fingerprint == 0 must still fail loudly.
  RSRPA_REQUIRE_MSG(ck.ell == opts.ell, "checkpoint ell mismatch");
  RSRPA_REQUIRE_MSG(ck.v.rows() == v.rows() && ck.v.cols() == v.cols(),
                    "checkpoint subspace shape mismatch");
  const int completed = ck.completed_points;
  // Assign into the existing objects: the caller has already handed out
  // pointers to result.events (the solver telemetry sink), so the
  // containers must keep their addresses.
  result.e_rpa = ck.e_rpa_partial;
  result.converged = ck.converged;
  result.degraded = ck.degraded;
  result.per_omega = std::move(ck.per_omega);
  result.stern = std::move(ck.stern);
  result.timers = std::move(ck.timers);
  result.events = std::move(ck.events);
  v = std::move(ck.v);
  rng = Rng::load_state(ck.rng_state);
  if (opts.checkpoint.events != nullptr)
    opts.checkpoint.events->emit(
        obs::events::kRunResumed, "resumed from " + opts.checkpoint.path,
        {{"completed_points", static_cast<double>(completed)},
         {"ell", static_cast<double>(ck.ell)}});
  return completed;
}

void after_checkpoint_write(const CheckpointOptions& copts, int k) {
  if (copts.events != nullptr)
    copts.events->emit(obs::events::kCheckpointWritten,
                       "run checkpoint persisted to " + copts.path,
                       {{"omega_index", static_cast<double>(k)},
                        {"completed_points", static_cast<double>(k + 1)}});
  if (copts.halt_after_point == k)
    throw RunHalted("halt_after_point: simulated crash after checkpointing "
                    "quadrature point " +
                    std::to_string(k));
}

}  // namespace rsrpa::rpa::detail
