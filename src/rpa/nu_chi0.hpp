// The symmetrized dielectric-like operator nu^{1/2} chi0(i omega) nu^{1/2}.
//
// nu chi0 is non-Hermitian, but the similarity transform of paper SS III-A
// produces a real symmetric operator with the same spectrum, turning the
// subspace-iteration projected problem into a generalized SYMMETRIC one.
// Algorithm 7: V <- nu^{1/2} V (spectral, communication-free), Sternheimer
// solves for chi0, V <- nu^{1/2} V again. The per-kernel timers feed the
// Fig. 5 breakdown.
#pragma once

#include "common/timer.hpp"
#include "poisson/kronecker.hpp"
#include "rpa/chi0.hpp"

namespace rsrpa::rpa {

/// Names of the timing buckets used throughout the RPA stage (Fig. 5).
namespace kernels {
inline constexpr const char* kNuChi0 = "nu_chi0_apply";
inline constexpr const char* kMatmult = "matmult";
inline constexpr const char* kEigensolve = "eigensolve";
inline constexpr const char* kEvalError = "eval_error";
}  // namespace kernels

class NuChi0Operator {
 public:
  NuChi0Operator(const dft::KsSystem& sys,
                 const poisson::KroneckerLaplacian& klap,
                 SternheimerOptions stern_opts)
      : chi0_(sys, stern_opts), klap_(klap) {}

  /// out = nu^{1/2} chi0(i omega) nu^{1/2} in (Algorithm 7). `events`
  /// optionally overrides the options-level event sink for this call
  /// (per-task logs of concurrent callers; see Chi0Applier::apply).
  void apply(const la::Matrix<double>& in, la::Matrix<double>& out,
             double omega, SternheimerStats* stats = nullptr,
             KernelTimers* timers = nullptr,
             obs::EventLog* events = nullptr) const;

  [[nodiscard]] const Chi0Applier& chi0() const { return chi0_; }
  Chi0Applier& chi0() { return chi0_; }
  [[nodiscard]] const poisson::KroneckerLaplacian& nu() const { return klap_; }
  [[nodiscard]] std::size_t n_grid() const { return chi0_.system().n_grid(); }

 private:
  Chi0Applier chi0_;
  const poisson::KroneckerLaplacian& klap_;
};

}  // namespace rsrpa::rpa
