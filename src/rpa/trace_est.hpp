// Alternative functional-trace estimators — the approaches paper SS II
// lists beside the eigenvalue route, and the SS V future-work replacement
// for the poorly-scaling dense eigensolve.
//
// - hutchinson_trace: plain stochastic estimator of Tr(A).
// - slq_trace: stochastic Lanczos quadrature for Tr f(A) of a symmetric
//   operator (Golub & Meurant, paper ref [28]): each Rademacher probe runs
//   a short Lanczos recurrence whose tridiagonal eigendecomposition yields
//   Gauss quadrature nodes/weights for z^T f(A) z.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "solver/chebyshev.hpp"

namespace rsrpa::rpa {

/// Stochastic estimate of Tr(A) with `n_probes` Rademacher vectors.
double hutchinson_trace(const solver::BlockOpR& a, std::size_t n,
                        int n_probes, Rng& rng);

/// Stochastic Lanczos quadrature estimate of Tr f(A), A symmetric.
/// `lanczos_steps` Lanczos iterations per probe, full reorthogonalization
/// (the subspaces are small).
double slq_trace(const solver::BlockOpR& a, std::size_t n,
                 const std::function<double(double)>& f, int n_probes,
                 int lanczos_steps, Rng& rng);

/// The individual per-probe SLQ estimates (size n_probes); slq_trace is
/// their mean, computed in probe order, so the two entry points draw the
/// same values from `rng` and agree bitwise. The spread of the samples is
/// what the SLQ driver reports as its stochastic error bar.
std::vector<double> slq_trace_samples(const solver::BlockOpR& a, std::size_t n,
                                      const std::function<double(double)>& f,
                                      int n_probes, int lanczos_steps,
                                      Rng& rng);

}  // namespace rsrpa::rpa
