#include "rpa/trace_est.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"

namespace rsrpa::rpa {

double hutchinson_trace(const solver::BlockOpR& a, std::size_t n,
                        int n_probes, Rng& rng) {
  RSRPA_REQUIRE(n_probes >= 1 && n >= 1);
  la::Matrix<double> z(n, 1), az(n, 1);
  double sum = 0.0;
  for (int p = 0; p < n_probes; ++p) {
    rng.fill_rademacher(z.col(0));
    a(z, az);
    sum += la::dot(z.col(0), az.col(0));
  }
  return sum / n_probes;
}

double slq_trace(const solver::BlockOpR& a, std::size_t n,
                 const std::function<double(double)>& f, int n_probes,
                 int lanczos_steps, Rng& rng) {
  const std::vector<double> samples =
      slq_trace_samples(a, n, f, n_probes, lanczos_steps, rng);
  double total = 0.0;
  for (double s : samples) total += s;
  return total / n_probes;
}

std::vector<double> slq_trace_samples(const solver::BlockOpR& a, std::size_t n,
                                      const std::function<double(double)>& f,
                                      int n_probes, int lanczos_steps,
                                      Rng& rng) {
  RSRPA_REQUIRE(n_probes >= 1 && lanczos_steps >= 1 && n >= 1);
  const int m = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(lanczos_steps), n));

  la::Matrix<double> q(n, static_cast<std::size_t>(m) + 1);
  la::Matrix<double> zcol(n, 1), az(n, 1);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(n_probes));

  for (int p = 0; p < n_probes; ++p) {
    rng.fill_rademacher(zcol.col(0));
    const double znorm = la::nrm2(std::span<const double>(zcol.col(0)));

    std::vector<double> alpha, beta;
    for (std::size_t i = 0; i < n; ++i) q(i, 0) = zcol(i, 0) / znorm;

    int steps = 0;
    for (int k = 0; k < m; ++k) {
      // az = A q_k
      for (std::size_t i = 0; i < n; ++i) zcol(i, 0) = q(i, static_cast<std::size_t>(k));
      a(zcol, az);
      double ak = la::dot(q.col(static_cast<std::size_t>(k)), az.col(0));
      alpha.push_back(ak);
      // Full reorthogonalization (small m keeps this cheap and robust).
      for (int r = 0; r <= k; ++r) {
        const double c = la::dot(q.col(static_cast<std::size_t>(r)), az.col(0));
        la::axpy(-c, q.col(static_cast<std::size_t>(r)), az.col(0));
      }
      const double bk = la::nrm2(std::span<const double>(az.col(0)));
      ++steps;
      if (bk < 1e-12 || k + 1 == m) break;
      beta.push_back(bk);
      for (std::size_t i = 0; i < n; ++i)
        q(i, static_cast<std::size_t>(k) + 1) = az(i, 0) / bk;
    }

    // Gauss quadrature from the tridiagonal eigendecomposition:
    // z^T f(A) z ~ ||z||^2 sum_i (first component)^2 f(theta_i).
    alpha.resize(static_cast<std::size_t>(steps));
    beta.resize(static_cast<std::size_t>(steps) - 1);
    la::EigResult t = la::tridiag_eig(alpha, beta);
    double est = 0.0;
    for (std::size_t i = 0; i < t.values.size(); ++i) {
      const double tau = t.vectors(0, i);
      est += tau * tau * f(t.values[i]);
    }
    samples.push_back(znorm * znorm * est);
  }
  return samples;
}

}  // namespace rsrpa::rpa
