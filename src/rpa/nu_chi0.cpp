#include "rpa/nu_chi0.hpp"

namespace rsrpa::rpa {

void NuChi0Operator::apply(const la::Matrix<double>& in,
                           la::Matrix<double>& out, double omega,
                           SternheimerStats* stats, KernelTimers* timers,
                           obs::EventLog* events) const {
  RSRPA_REQUIRE(in.rows() == n_grid() && out.rows() == in.rows() &&
                out.cols() == in.cols());
  WallTimer total;
  la::Matrix<double> work = in;
  klap_.apply_nu_sqrt_block(work);  // V <- nu^{1/2} V
  chi0_.apply(work, out, omega, stats, events);  // V <- chi0 V (Sternheimer)
  klap_.apply_nu_sqrt_block(out);   // V <- nu^{1/2} V
  if (timers != nullptr) timers->add(kernels::kNuChi0, total.seconds());
}

}  // namespace rsrpa::rpa
