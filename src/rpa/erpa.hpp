// The top-level RPA correlation energy driver — Algorithms 1 and 6.
//
// Steps through the descending frequency grid of Table II, runs the
// filtered subspace iteration at each point (warm-starting from the
// previous point's eigenvectors), and accumulates
//
//   E_RPA = sum_k w_k / (2 pi) * sum_a [ ln(1 - mu_a) + mu_a ]
//
// over the n_eig most negative eigenvalues mu_a of nu chi0(i omega_k).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "obs/event_log.hpp"
#include "rpa/quadrature.hpp"
#include "rpa/subspace.hpp"

namespace rsrpa::rpa {

struct RpaOptions {
  std::size_t n_eig = 0;  ///< N_NUCHI_EIGS; required
  int ell = 8;            ///< N_OMEGA
  /// Per-quadrature-point subspace tolerances (TOL_EIG). Padded with the
  /// last entry if shorter than ell.
  std::vector<double> tol_eig = {4e-3, 2e-3, 5e-4, 5e-4,
                                 5e-4, 5e-4, 5e-4, 5e-4};
  int max_filter_iter = 10;  ///< MAXIT_FILTERING
  int cheb_degree = 2;       ///< CHEB_DEGREE_RPA
  SternheimerOptions stern;  ///< TOL_STERN_RES etc.
  bool warm_start = true;    ///< reuse eigenvectors across omega (SS III-F)
  std::uint64_t seed = 0x5ca1ab1e;
  /// When stern.fault.mode != kNone, restrict the injection to this
  /// quadrature-point index; -1 injects at every point. Lets the fault
  /// suite poison exactly one omega and check the rest stay clean.
  int fault_omega = -1;
};

struct OmegaRecord {
  double omega = 0.0;
  double weight = 0.0;
  double e_term = 0.0;       ///< Tr approximation at this omega
  int filter_iterations = 0; ///< ncheb
  double error = 0.0;        ///< Eq. (7) at exit
  bool converged = false;
  double seconds = 0.0;
  /// Eigenvalues with mu >= 1 (trace term undefined): how many were
  /// skipped from e_term, and the worst offender. Such a point is marked
  /// non-converged but the run continues (see accumulate_trace_terms).
  int invalid_terms = 0;
  double worst_mu = 0.0;
  /// Sternheimer columns quarantined by the recovery ladder while working
  /// on this point. > 0 marks the point degraded: its e_term was computed
  /// from solves where the quarantined columns still hold their initial
  /// guesses, so the point is non-converged but the run completes.
  long quarantined_columns = 0;
  /// Sternheimer operator traffic/work attributable to this quadrature
  /// point (delta of the run totals), exposing achieved arithmetic
  /// intensity per point: matvec_flops / matvec_bytes.
  double matvec_bytes = 0.0;
  double matvec_flops = 0.0;
  std::vector<double> eigenvalues;  ///< converged Ritz values (ascending)
};

struct RpaResult {
  double e_rpa = 0.0;           ///< total correlation energy (Ha)
  double e_rpa_per_atom = 0.0;  ///< filled by the caller via finalize()
  bool converged = true;        ///< all quadrature points converged
  /// Any quadrature point had quarantined Sternheimer columns; E_RPA is
  /// finite but carries the degraded points' approximation error.
  bool degraded = false;
  std::vector<OmegaRecord> per_omega;
  KernelTimers timers;          ///< Fig. 5 kernel breakdown
  SternheimerStats stern;       ///< Table IV statistics
  obs::EventLog events;         ///< fallbacks, collapses, domain violations
  double total_seconds = 0.0;
};

/// Compute E_RPA for the given Kohn-Sham system. `klap` must discretize
/// the same grid with the same stencil radius as the system Hamiltonian.
RpaResult compute_rpa_energy(const dft::KsSystem& sys,
                             const poisson::KroneckerLaplacian& klap,
                             const RpaOptions& opts);

/// The scalar trace model applied to each eigenvalue: ln(1 - mu) + mu.
/// Defined for mu < 1; returns quiet NaN for mu >= 1 (the caller decides
/// how to continue — the drivers skip the term and flag the point rather
/// than abort a multi-hour run).
double rpa_trace_term(double mu);

/// Sum rpa_trace_term over `eigenvalues`, recording telemetry into `rec`:
/// eigenvalues with mu >= 1 are skipped (not silently folded into the
/// energy), counted in rec.invalid_terms with the worst mu kept, the
/// record is marked non-converged, and a trace_term_domain event carrying
/// (omega_index, mu) is emitted into `events` when provided. Returns the
/// sum over the valid eigenvalues, which is also written to rec.e_term.
double accumulate_trace_terms(const std::vector<double>& eigenvalues,
                              int omega_index, OmegaRecord& rec,
                              obs::EventLog* events);

}  // namespace rsrpa::rpa
