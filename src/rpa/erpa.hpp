// The top-level RPA correlation energy driver — Algorithms 1 and 6.
//
// Steps through the descending frequency grid of Table II, runs the
// filtered subspace iteration at each point (warm-starting from the
// previous point's eigenvectors), and accumulates
//
//   E_RPA = sum_k w_k / (2 pi) * sum_a [ ln(1 - mu_a) + mu_a ]
//
// over the n_eig most negative eigenvalues mu_a of nu chi0(i omega_k).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/rng.hpp"
#include "obs/event_log.hpp"
#include "rpa/quadrature.hpp"
#include "rpa/subspace.hpp"

namespace rsrpa::rpa {

/// Thrown by the drivers when CheckpointOptions::halt_after_point fires:
/// the kill-and-resume tests' stand-in for a crash immediately after a
/// checkpoint reaches disk.
struct RunHalted : Error {
  using Error::Error;
};

/// Thrown at a quadrature-point boundary when RunControl::request_cancel
/// was seen. Everything up to and including the last completed point is
/// already checkpointed (when checkpointing is on), so the run is
/// resumable; rpacalc maps this to its distinct "interrupted" exit code.
struct RunCancelled : Error {
  using Error::Error;
};

/// Thrown at a quadrature-point boundary when RunControl::request_preempt
/// was seen: the suspend half of checkpoint-based preemption. The job
/// service resumes the run later from its per-point checkpoint; resumed
/// runs are bitwise identical to uninterrupted ones (PR 5 contract).
struct RunPreempted : Error {
  using Error::Error;
};

/// Cooperative run control, polled by both drivers at quadrature-point
/// boundaries — the only places the run state is a small consistent cut
/// (and where a checkpoint has just been written). Requests are sticky
/// until reset; a cancel is never downgraded to a preempt. request_cancel
/// is async-signal-safe (one lock-free atomic store), so rpacalc calls it
/// straight from its SIGINT/SIGTERM handler.
class RunControl {
 public:
  enum Request : int { kNone = 0, kPreempt = 1, kCancel = 2 };

  void request_cancel() {
    request_.store(kCancel, std::memory_order_release);
  }
  /// No-op when a cancel is already pending (cancel outranks preempt).
  void request_preempt() {
    int expected = kNone;
    request_.compare_exchange_strong(expected, kPreempt,
                                     std::memory_order_acq_rel);
  }
  [[nodiscard]] Request pending() const {
    return static_cast<Request>(request_.load(std::memory_order_acquire));
  }
  void reset() { request_.store(kNone, std::memory_order_release); }

 private:
  static_assert(std::atomic<int>::is_always_lock_free,
                "RunControl must stay signal-safe");
  std::atomic<int> request_{kNone};
};

/// The drivers' boundary poll: throw the matching control exception, or
/// return immediately when `control` is null / nothing is pending. Called
/// at the top of each quadrature-point iteration, so the previous point's
/// checkpoint (when enabled) is already on disk when this fires.
inline void check_run_control(const RunControl* control) {
  if (control == nullptr) return;
  switch (control->pending()) {
    case RunControl::kCancel:
      throw RunCancelled("run cancelled at quadrature-point boundary");
    case RunControl::kPreempt:
      throw RunPreempted("run preempted at quadrature-point boundary");
    case RunControl::kNone:
      break;
  }
}

/// Run-granularity crash recovery (io/checkpoint.hpp). With `path` set,
/// the drivers persist a versioned RunCheckpoint after every quadrature
/// point — warm-start subspace, partial E_RPA sum, completed per-omega
/// records, RNG state, config fingerprint — and, with `resume`, pick the
/// run back up from that file instead of starting over. Writes are
/// atomic (io::atomic_write), so a crash can never leave a torn
/// checkpoint behind.
struct CheckpointOptions {
  std::string path;     ///< empty = checkpointing disabled
  /// Load `path` before the first point when it exists; a missing file
  /// starts a fresh run (so `resume` can be passed unconditionally). A
  /// checkpoint whose fingerprint does not match this system + options
  /// is refused with an Error.
  bool resume = false;
  /// Lifecycle sink for checkpoint_written / run_resumed events. Kept
  /// SEPARATE from RpaResult::events on purpose: the result log is part
  /// of the bitwise resume-equivalence contract, while these events
  /// describe one process's I/O, not the computation. Not owned.
  obs::EventLog* events = nullptr;
  /// Test hook: throw RunHalted right after the checkpoint for this
  /// quadrature-point index is written (simulated crash). -1 = off.
  int halt_after_point = -1;
};

struct RpaOptions {
  std::size_t n_eig = 0;  ///< N_NUCHI_EIGS; required
  int ell = 8;            ///< N_OMEGA
  /// Per-quadrature-point subspace tolerances (TOL_EIG). Padded with the
  /// last entry if shorter than ell.
  std::vector<double> tol_eig = {4e-3, 2e-3, 5e-4, 5e-4,
                                 5e-4, 5e-4, 5e-4, 5e-4};
  int max_filter_iter = 10;  ///< MAXIT_FILTERING
  int cheb_degree = 2;       ///< CHEB_DEGREE_RPA
  SternheimerOptions stern;  ///< TOL_STERN_RES etc.
  bool warm_start = true;    ///< reuse eigenvectors across omega (SS III-F)
  std::uint64_t seed = 0x5ca1ab1e;
  /// When stern.fault.mode != kNone, restrict the injection to this
  /// quadrature-point index; -1 injects at every point. Lets the fault
  /// suite poison exactly one omega and check the rest stay clean.
  int fault_omega = -1;
  /// Crash-safe checkpoint/restart of the quadrature sweep. Excluded
  /// from the config fingerprint: where a run checkpoints (and whether
  /// it resumes) is process policy, not part of the computation.
  CheckpointOptions checkpoint;
  /// Cooperative cancel/preempt, polled at the top of every quadrature
  /// point (after the previous point's checkpoint hit disk). Like
  /// `checkpoint`, process policy — excluded from the fingerprint. Not
  /// owned; may be shared with a signal handler or the job service.
  RunControl* control = nullptr;
};

struct OmegaRecord {
  double omega = 0.0;
  double weight = 0.0;
  double e_term = 0.0;       ///< Tr approximation at this omega
  int filter_iterations = 0; ///< ncheb
  double error = 0.0;        ///< Eq. (7) at exit
  bool converged = false;
  double seconds = 0.0;
  /// Eigenvalues with mu >= 1 (trace term undefined): how many were
  /// skipped from e_term, and the worst offender. Such a point is marked
  /// non-converged but the run continues (see accumulate_trace_terms).
  int invalid_terms = 0;
  double worst_mu = 0.0;
  /// Sternheimer columns quarantined by the recovery ladder while working
  /// on this point. > 0 marks the point degraded: its e_term was computed
  /// from solves where the quarantined columns still hold their initial
  /// guesses, so the point is non-converged but the run completes.
  long quarantined_columns = 0;
  /// The distinct subspace (V) column indices behind that count, sorted.
  /// These are the columns the warm-start chain re-randomizes before the
  /// next quadrature point so one poisoned omega cannot contaminate the
  /// points downstream of it.
  std::vector<long> quarantined_column_indices;
  /// Sternheimer operator traffic/work attributable to this quadrature
  /// point (delta of the run totals), exposing achieved arithmetic
  /// intensity per point: matvec_flops / matvec_bytes.
  double matvec_bytes = 0.0;
  double matvec_flops = 0.0;
  std::vector<double> eigenvalues;  ///< converged Ritz values (ascending)
};

struct RpaResult {
  double e_rpa = 0.0;           ///< total correlation energy (Ha)
  double e_rpa_per_atom = 0.0;  ///< e_rpa / n_atoms, filled by the driver
                                ///< (all four backends populate it)
  bool converged = true;        ///< all quadrature points converged
  /// Any quadrature point had quarantined Sternheimer columns; E_RPA is
  /// finite but carries the degraded points' approximation error.
  bool degraded = false;
  std::vector<OmegaRecord> per_omega;
  KernelTimers timers;          ///< Fig. 5 kernel breakdown
  SternheimerStats stern;       ///< Table IV statistics
  obs::EventLog events;         ///< fallbacks, collapses, domain violations
  double total_seconds = 0.0;
};

/// Compute E_RPA for the given Kohn-Sham system. `klap` must discretize
/// the same grid with the same stencil radius as the system Hamiltonian.
RpaResult compute_rpa_energy(const dft::KsSystem& sys,
                             const poisson::KroneckerLaplacian& klap,
                             const RpaOptions& opts);

/// The scalar trace model applied to each eigenvalue: ln(1 - mu) + mu.
/// Defined for mu < 1; returns quiet NaN for mu >= 1 (the caller decides
/// how to continue — the drivers skip the term and flag the point rather
/// than abort a multi-hour run).
double rpa_trace_term(double mu);

/// Sum rpa_trace_term over `eigenvalues`, recording telemetry into `rec`:
/// eigenvalues with mu >= 1 are skipped (not silently folded into the
/// energy), counted in rec.invalid_terms with the worst mu kept, the
/// record is marked non-converged, and a trace_term_domain event carrying
/// (omega_index, mu) is emitted into `events` when provided. Returns the
/// sum over the valid eigenvalues, which is also written to rec.e_term.
double accumulate_trace_terms(const std::vector<double>& eigenvalues,
                              int omega_index, OmegaRecord& rec,
                              obs::EventLog* events);

/// Resolve TOL_EIG for quadrature point `k` (shared by the serial and
/// parallel drivers): an empty vector falls back to 5e-4, a vector
/// shorter than ell is padded with its last entry, and entries beyond
/// ell are ignored — with a one-time tol_eig_truncated warning emitted
/// into `events` the first call that sees the excess. `warned` (one bool
/// per run, owned by the driver loop) suppresses repeats; resumed runs
/// start it true because the restored event log already carries the
/// point-0 warning.
double tol_for_point(const RpaOptions& opts, int k,
                     obs::EventLog* events = nullptr, bool* warned = nullptr);

}  // namespace rsrpa::rpa
