#include "rpa/erpa.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>

#include "io/checkpoint.hpp"
#include "rpa/checkpoint_driver.hpp"
#include "solver/resilience.hpp"

namespace rsrpa::rpa {

double rpa_trace_term(double mu) {
  // ln(1 - mu) is undefined for mu >= 1. The physical spectrum of
  // nu chi0(i omega) is non-positive, so a mu there signals a broken
  // subspace (e.g. a wildly inexact Sternheimer solve) — recoverable by
  // the driver, not worth aborting the whole quadrature over.
  if (mu >= 1.0) return std::numeric_limits<double>::quiet_NaN();
  return std::log1p(-mu) + mu;
}

double accumulate_trace_terms(const std::vector<double>& eigenvalues,
                              int omega_index, OmegaRecord& rec,
                              obs::EventLog* events) {
  double sum = 0.0;
  for (double mu : eigenvalues) {
    if (mu >= 1.0) {
      ++rec.invalid_terms;
      rec.worst_mu = std::max(rec.worst_mu, mu);
      rec.converged = false;
      if (events != nullptr)
        events->emit(obs::events::kTraceTermDomain,
                     "ln(1 - mu) undefined: skipping eigenvalue",
                     {{"omega_index", static_cast<double>(omega_index)},
                      {"mu", mu}});
      continue;
    }
    sum += rpa_trace_term(mu);
  }
  rec.e_term = sum;
  return sum;
}

double tol_for_point(const RpaOptions& opts, int k, obs::EventLog* events,
                     bool* warned) {
  RSRPA_REQUIRE(k >= 0 && k < opts.ell);
  if (opts.tol_eig.empty()) return 5e-4;
  if (opts.tol_eig.size() > static_cast<std::size_t>(opts.ell) &&
      events != nullptr && (warned == nullptr || !*warned)) {
    events->emit(obs::events::kTolEigTruncated,
                 "TOL_EIG has more entries than N_OMEGA; the excess is "
                 "ignored",
                 {{"tol_eig_entries", static_cast<double>(opts.tol_eig.size())},
                  {"ell", static_cast<double>(opts.ell)}});
    if (warned != nullptr) *warned = true;
  }
  return opts.tol_eig[std::min(static_cast<std::size_t>(k),
                               opts.tol_eig.size() - 1)];
}

RpaResult compute_rpa_energy(const dft::KsSystem& sys,
                             const poisson::KroneckerLaplacian& klap,
                             const RpaOptions& opts) {
  RSRPA_REQUIRE_MSG(opts.n_eig >= 1 && opts.n_eig <= sys.n_grid(),
                    "n_eig must be in [1, n_d]");
  RSRPA_REQUIRE(opts.ell >= 1);

  WallTimer total;
  RpaResult result;
  // Route solver-level telemetry (single-column fallbacks) into the
  // result's event log for the lifetime of this call.
  SternheimerOptions stern_opts = opts.stern;
  stern_opts.events = &result.events;
  NuChi0Operator op(sys, klap, stern_opts);
  const std::vector<QuadPoint> quad = rpa_frequency_quadrature(opts.ell);

  // V carries the subspace across quadrature points (warm start).
  Rng rng(opts.seed);
  la::Matrix<double> v(sys.n_grid(), opts.n_eig);
  for (std::size_t j = 0; j < opts.n_eig; ++j) rng.fill_uniform(v.col(j));

  const CheckpointOptions& copts = opts.checkpoint;
  const bool checkpointing = !copts.path.empty();
  const std::uint64_t fingerprint =
      checkpointing ? io::run_fingerprint(sys, opts, 0) : 0;

  int k0 = 0;
  bool tol_warned = false;
  if (checkpointing && copts.resume && std::filesystem::exists(copts.path)) {
    io::RunCheckpoint ck = io::load_run_checkpoint(copts.path, fingerprint);
    k0 = detail::restore_checkpoint(std::move(ck), opts, /*parallel=*/false,
                                    result, v, rng);
    // The restored event log already carries point 0's one-time TOL_EIG
    // warning (if any); don't emit it twice.
    tol_warned = true;
  }

  // Fault injection can be restricted to one quadrature point; the scope
  // guard owns the per-point toggling of the live operator's fault mode
  // and restores the requested mode on every exit path.
  solver::FaultModeScope fault_scope(op.chi0().options().fault.mode);

  for (int k = k0; k < opts.ell; ++k) {
    check_run_control(opts.control);
    const QuadPoint& q = quad[static_cast<std::size_t>(k)];
    WallTimer omega_timer;

    if (fault_scope.requested() != solver::FaultMode::kNone)
      fault_scope.select_for_point(k, opts.fault_omega);

    if (!opts.warm_start && k > 0)
      for (std::size_t j = 0; j < opts.n_eig; ++j) rng.fill_uniform(v.col(j));

    SubspaceOptions sopts;
    sopts.tol = tol_for_point(opts, k, &result.events, &tol_warned);
    sopts.max_filter_iter = opts.max_filter_iter;
    sopts.cheb_degree = opts.cheb_degree;

    const long quarantined_before = result.stern.quarantined_columns;
    const std::size_t quarantine_idx_before =
        result.stern.quarantined_column_indices.size();
    const double bytes_before = result.stern.matvec_bytes;
    const double flops_before = result.stern.matvec_flops;
    SubspaceResult sub = subspace_iteration(op, q.omega, v, sopts,
                                            &result.stern, &result.timers,
                                            &result.events);

    OmegaRecord rec;
    rec.omega = q.omega;
    rec.weight = q.weight;
    rec.filter_iterations = sub.filter_iterations;
    rec.error = sub.error;
    rec.converged = sub.converged;
    rec.eigenvalues = sub.eigenvalues;
    accumulate_trace_terms(sub.eigenvalues, k, rec, &result.events);
    rec.quarantined_columns =
        result.stern.quarantined_columns - quarantined_before;
    rec.quarantined_column_indices =
        detail::quarantined_columns_since(result.stern, quarantine_idx_before);
    rec.matvec_bytes = result.stern.matvec_bytes - bytes_before;
    rec.matvec_flops = result.stern.matvec_flops - flops_before;
    if (rec.quarantined_columns > 0) {
      // The point's trace terms were computed from solves where the
      // quarantined columns still hold their initial guesses: finite, but
      // degraded. Flag it and keep going — one bad point must not kill
      // the quadrature.
      rec.converged = false;
      result.degraded = true;
      result.events.emit(
          obs::events::kQuadPointDegraded,
          "quadrature point computed with quarantined Sternheimer columns",
          {{"omega_index", static_cast<double>(k)},
           {"quarantined_columns",
            static_cast<double>(rec.quarantined_columns)}});
    }
    rec.seconds = omega_timer.seconds();
    result.e_rpa += q.weight * rec.e_term / (2.0 * M_PI);
    result.converged = result.converged && rec.converged;

    // Warm-start hygiene: a quarantined column's content is whatever the
    // recovery ladder froze it at — re-randomize before it seeds the next
    // point. Done before the checkpoint write so the persisted V already
    // includes the refill (resume needs no replay).
    if (opts.warm_start && k + 1 < opts.ell &&
        !rec.quarantined_column_indices.empty())
      detail::reseed_quarantined_columns(v, rec.quarantined_column_indices,
                                         rng, k, result.events);
    result.per_omega.push_back(std::move(rec));

    if (checkpointing) {
      io::save_run_checkpoint(
          copts.path,
          detail::make_checkpoint(fingerprint, k + 1, opts, result, v, rng));
      detail::after_checkpoint_write(copts, k);
    }
  }

  const std::size_t n_atoms = sys.h->crystal().n_atoms();
  result.e_rpa_per_atom = result.e_rpa / static_cast<double>(n_atoms);
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace rsrpa::rpa
