#include "rpa/erpa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rsrpa::rpa {

double rpa_trace_term(double mu) {
  // ln(1 - mu) is undefined for mu >= 1. The physical spectrum of
  // nu chi0(i omega) is non-positive, so a mu there signals a broken
  // subspace (e.g. a wildly inexact Sternheimer solve) — recoverable by
  // the driver, not worth aborting the whole quadrature over.
  if (mu >= 1.0) return std::numeric_limits<double>::quiet_NaN();
  return std::log1p(-mu) + mu;
}

double accumulate_trace_terms(const std::vector<double>& eigenvalues,
                              int omega_index, OmegaRecord& rec,
                              obs::EventLog* events) {
  double sum = 0.0;
  for (double mu : eigenvalues) {
    if (mu >= 1.0) {
      ++rec.invalid_terms;
      rec.worst_mu = std::max(rec.worst_mu, mu);
      rec.converged = false;
      if (events != nullptr)
        events->emit(obs::events::kTraceTermDomain,
                     "ln(1 - mu) undefined: skipping eigenvalue",
                     {{"omega_index", static_cast<double>(omega_index)},
                      {"mu", mu}});
      continue;
    }
    sum += rpa_trace_term(mu);
  }
  rec.e_term = sum;
  return sum;
}

RpaResult compute_rpa_energy(const dft::KsSystem& sys,
                             const poisson::KroneckerLaplacian& klap,
                             const RpaOptions& opts) {
  RSRPA_REQUIRE_MSG(opts.n_eig >= 1 && opts.n_eig <= sys.n_grid(),
                    "n_eig must be in [1, n_d]");
  RSRPA_REQUIRE(opts.ell >= 1);

  WallTimer total;
  RpaResult result;
  // Route solver-level telemetry (single-column fallbacks) into the
  // result's event log for the lifetime of this call.
  SternheimerOptions stern_opts = opts.stern;
  stern_opts.events = &result.events;
  NuChi0Operator op(sys, klap, stern_opts);
  const std::vector<QuadPoint> quad = rpa_frequency_quadrature(opts.ell);

  // V carries the subspace across quadrature points (warm start).
  Rng rng(opts.seed);
  la::Matrix<double> v(sys.n_grid(), opts.n_eig);
  for (std::size_t j = 0; j < opts.n_eig; ++j) rng.fill_uniform(v.col(j));

  // Fault injection can be restricted to one quadrature point; toggle the
  // operator's fault mode per point against the requested configuration.
  const solver::FaultMode requested_fault = opts.stern.fault.mode;

  for (int k = 0; k < opts.ell; ++k) {
    const QuadPoint& q = quad[static_cast<std::size_t>(k)];
    WallTimer omega_timer;

    if (requested_fault != solver::FaultMode::kNone)
      op.chi0().options().fault.mode =
          (opts.fault_omega < 0 || opts.fault_omega == k)
              ? requested_fault
              : solver::FaultMode::kNone;

    if (!opts.warm_start && k > 0)
      for (std::size_t j = 0; j < opts.n_eig; ++j) rng.fill_uniform(v.col(j));

    SubspaceOptions sopts;
    sopts.tol = opts.tol_eig.empty()
                    ? 5e-4
                    : opts.tol_eig[std::min<std::size_t>(
                          static_cast<std::size_t>(k), opts.tol_eig.size() - 1)];
    sopts.max_filter_iter = opts.max_filter_iter;
    sopts.cheb_degree = opts.cheb_degree;

    const long quarantined_before = result.stern.quarantined_columns;
    const double bytes_before = result.stern.matvec_bytes;
    const double flops_before = result.stern.matvec_flops;
    SubspaceResult sub = subspace_iteration(op, q.omega, v, sopts,
                                            &result.stern, &result.timers,
                                            &result.events);

    OmegaRecord rec;
    rec.omega = q.omega;
    rec.weight = q.weight;
    rec.filter_iterations = sub.filter_iterations;
    rec.error = sub.error;
    rec.converged = sub.converged;
    rec.eigenvalues = sub.eigenvalues;
    accumulate_trace_terms(sub.eigenvalues, k, rec, &result.events);
    rec.quarantined_columns =
        result.stern.quarantined_columns - quarantined_before;
    rec.matvec_bytes = result.stern.matvec_bytes - bytes_before;
    rec.matvec_flops = result.stern.matvec_flops - flops_before;
    if (rec.quarantined_columns > 0) {
      // The point's trace terms were computed from solves where the
      // quarantined columns still hold their initial guesses: finite, but
      // degraded. Flag it and keep going — one bad point must not kill
      // the quadrature.
      rec.converged = false;
      result.degraded = true;
      result.events.emit(
          obs::events::kQuadPointDegraded,
          "quadrature point computed with quarantined Sternheimer columns",
          {{"omega_index", static_cast<double>(k)},
           {"quarantined_columns",
            static_cast<double>(rec.quarantined_columns)}});
    }
    rec.seconds = omega_timer.seconds();
    result.e_rpa += q.weight * rec.e_term / (2.0 * M_PI);
    result.converged = result.converged && rec.converged;
    result.per_omega.push_back(std::move(rec));
  }

  const std::size_t n_atoms = sys.h->crystal().n_atoms();
  result.e_rpa_per_atom = result.e_rpa / static_cast<double>(n_atoms);
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace rsrpa::rpa
