#include "rpa/chi0.hpp"

#include <functional>

#include "common/rng.hpp"
#include "obs/event_log.hpp"
#include "sched/parallel_for.hpp"
#include "solver/galerkin_guess.hpp"
#include "solver/resilience.hpp"

namespace rsrpa::rpa {

namespace {

// Column grain for the Hadamard-product loops (RHS build, complex
// promotion, accumulation): writes are disjoint per column, so the
// fan-out is bitwise identical to the serial loops at any thread count.
std::size_t column_grain(std::size_t rows) {
  constexpr std::size_t kElemsPerTask = 1u << 17;
  return kElemsPerTask / std::max<std::size_t>(rows, 1) + 1;
}

}  // namespace

void SternheimerStats::merge(const solver::DynamicBlockReport& rep) {
  for (const auto& [size, count] : rep.block_size_counts())
    block_size_chunks[size] += count;
  total_chunks += static_cast<long>(rep.chunks.size());
  matvec_columns += rep.total_matvec_columns;
  matvec_bytes += rep.total_matvec_bytes;
  matvec_flops += rep.total_matvec_flops;
  seconds += rep.total_seconds;
  all_converged = all_converged && rep.all_converged;
  restarts += rep.total_restarts;
  deflations += rep.total_deflations;
  solver_swaps += rep.total_solver_swaps;
  quarantined_columns += static_cast<long>(rep.quarantined_columns.size());
  quarantined_column_indices.insert(quarantined_column_indices.end(),
                                    rep.quarantined_columns.begin(),
                                    rep.quarantined_columns.end());
}

void SternheimerStats::merge(const SternheimerStats& other, long col0) {
  for (const auto& [size, count] : other.block_size_chunks)
    block_size_chunks[size] += count;
  total_chunks += other.total_chunks;
  matvec_columns += other.matvec_columns;
  matvec_bytes += other.matvec_bytes;
  matvec_flops += other.matvec_flops;
  seconds += other.seconds;
  all_converged = all_converged && other.all_converged;
  restarts += other.restarts;
  deflations += other.deflations;
  solver_swaps += other.solver_swaps;
  quarantined_columns += other.quarantined_columns;
  for (long c : other.quarantined_column_indices)
    quarantined_column_indices.push_back(c + col0);
}

Chi0Applier::Chi0Applier(const dft::KsSystem& sys, SternheimerOptions opts)
    : sys_(sys), opts_(opts) {
  RSRPA_REQUIRE(sys_.n_occ() >= 1);
}

void Chi0Applier::apply(const la::Matrix<double>& v, la::Matrix<double>& out,
                        double omega, SternheimerStats* stats,
                        obs::EventLog* events) const {
  const std::size_t n = sys_.n_grid();
  const std::size_t s = v.cols();
  RSRPA_REQUIRE(v.rows() == n && out.rows() == n && out.cols() == s);
  RSRPA_REQUIRE_MSG(omega > 0.0,
                    "chi0(i omega): omega must be positive (the omega = 0 "
                    "coefficient matrix is singular)");

  solver::DynamicBlockOptions dopts;
  dopts.solver.tol = opts_.tol;
  dopts.solver.max_iter = opts_.max_iter;
  dopts.solver.stagnation_window = opts_.stagnation_window;
  dopts.solver.stagnation_factor = opts_.stagnation_factor;
  dopts.enabled = opts_.dynamic_block;
  dopts.fixed_block = opts_.fixed_block;
  dopts.max_block = opts_.max_block;
  dopts.resilience = opts_.resilience;
  dopts.events = events != nullptr ? events : opts_.events;

  out.zero();
  la::Matrix<la::cplx> b(n, s), y(n, s);
  la::Matrix<double> b_real(n, s);
  const std::size_t grain = column_grain(n);

  const ham::Hamiltonian& h = *sys_.h;
  // Hand the operator's per-column cost model to the solvers so their
  // reports (and through them SternheimerStats) carry bytes/flops.
  {
    const solver::ApplyCostModel cost =
        solver::shifted_apply_cost(h, h.fused_apply());
    dopts.solver.matvec_bytes_per_column = cost.bytes_per_column;
    dopts.solver.matvec_flops_per_column = cost.flops_per_column;
  }
  solver::ApplyCounters call_counters;
  for (std::size_t j = 0; j < sys_.n_occ(); ++j) {
    const double lambda = sys_.eigenvalues[j];
    auto psi = sys_.orbitals.col(j);

    // Right-hand side B_j = -(V . Psi_j), one task per column chunk.
    sched::parallel_for(
        0, s, grain,
        [&](std::size_t c) {
          auto vcol = v.col(c);
          auto bcol = b_real.col(c);
          for (std::size_t i = 0; i < n; ++i) bcol[i] = -vcol[i] * psi[i];
        });

    // Initial guess: Galerkin projection onto the occupied manifold
    // (Eq. 13) or zero.
    if (opts_.galerkin_guess) {
      y = solver::galerkin_initial_guess(sys_.orbitals, sys_.eigenvalues,
                                         lambda, omega, b_real);
    } else {
      y.zero();
    }
    sched::parallel_for(
        0, s, grain,
        [&](std::size_t c) {
          for (std::size_t i = 0; i < n; ++i) b(i, c) = {b_real(i, c), 0.0};
        });

    // Bind the Sternheimer coefficient operator as a first-class object:
    // every solve runs the fused single-sweep pipeline and the op
    // accumulates per-apply bytes/flops/seconds for this orbital.
    solver::ShiftedHamiltonianOp ham_op(h, lambda, omega);
    solver::BlockOpC op = std::cref(ham_op);
    if (opts_.fault.mode != solver::FaultMode::kNone &&
        (opts_.fault.orbital < 0 ||
         static_cast<std::size_t>(opts_.fault.orbital) == j)) {
      // One wrapper per (call, orbital): its apply counter starts at zero
      // for every Sternheimer solve and the stream is derived from the
      // orbital index, so fault placement is independent of the thread
      // schedule and of other orbitals' iteration counts.
      solver::FaultInjectionOptions fopts = opts_.fault;
      fopts.seed = Rng(opts_.fault.seed).derive(j).seed();
      op = solver::FaultInjectingOp(std::move(op), fopts);
    }
    solver::DynamicBlockReport rep = solver::solve_dynamic_block(op, b, y, dopts);
    if (stats != nullptr) stats->merge(rep);
    call_counters.merge(ham_op.counters());

    // Accumulate (4 / dv) Re(Psi_j . Y_j). Columns are disjoint; the
    // j-accumulation order within each column matches the serial loop.
    const double scale = 4.0 / h.grid().dv();
    sched::parallel_for(
        0, s, grain,
        [&](std::size_t c) {
          auto ocol = out.col(c);
          for (std::size_t i = 0; i < n; ++i)
            ocol[i] += scale * psi[i] * y(i, c).real();
        });
  }

  // One measured-intensity event per chi0 application: modeled traffic
  // and work plus wall time actually spent inside the operator, so the
  // bench reports (Fig. 5 / A1) can quote achieved arithmetic intensity.
  if (obs::EventLog* sink = events != nullptr ? events : opts_.events;
      sink != nullptr && call_counters.applies > 0) {
    sink->emit(obs::events::kApplyCounters,
               "shifted-Hamiltonian apply totals for one chi0 application",
               {{"omega", omega},
                {"applies", static_cast<double>(call_counters.applies)},
                {"columns", static_cast<double>(call_counters.columns)},
                {"bytes", call_counters.bytes},
                {"flops", call_counters.flops},
                {"seconds", call_counters.seconds},
                {"arithmetic_intensity",
                 call_counters.arithmetic_intensity()}});
  }
}

}  // namespace rsrpa::rpa
