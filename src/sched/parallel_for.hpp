// Data-parallel loops with explicit grain-size control.
//
// parallel_for_range(b, e, grain, body) splits [b, e) into chunks of at
// most `grain` indices and forks one task per chunk; body(cb, ce) handles
// one chunk. parallel_for(b, e, grain, body) is the per-index wrapper.
//
// Determinism contract: the CALLER guarantees chunk bodies write disjoint
// state (distinct columns, distinct slots). Under that contract results
// are bitwise identical at every thread count — including 1, where the
// chunks run inline in ascending order — because each index performs the
// exact same floating-point operations regardless of which lane runs its
// chunk. For reductions, where the combination ORDER is part of the
// result, use parallel_reduce (fixed-shape tree) instead of accumulating
// into shared state here.
//
// Grain: the smallest unit worth forking. One task per chunk is created
// eagerly (no lazy splitting), so choose grain such that the chunk body
// clearly outweighs ~1 us of queueing overhead. A grain that covers the
// whole range, or a serial pool, short-circuits to a plain loop.
#pragma once

#include <algorithm>
#include <cstddef>

#include "sched/task_group.hpp"

namespace rsrpa::sched {

/// body(chunk_begin, chunk_end) over chunks of at most `grain` indices.
template <class Body>
void parallel_for_range(std::size_t begin, std::size_t end, std::size_t grain,
                        Body&& body, ThreadPool& pool = global_pool()) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(grain, 1);
  // Task quota (thread_pool.hpp): fork at most `quota` chunk tasks by
  // enlarging the grain. Bitwise-safe under the parallel_for contract —
  // chunk boundaries never change what any single index computes, only
  // how indices are grouped into tasks.
  if (const int quota = current_task_quota(); quota > 0) {
    const std::size_t cap = static_cast<std::size_t>(quota);
    grain = std::max(grain, (end - begin + cap - 1) / cap);
  }
  if (pool.serial() || end - begin <= grain) {
    body(begin, end);
    return;
  }
  TaskGroup group(pool);
  for (std::size_t b = begin; b < end; b += grain) {
    const std::size_t e = std::min(b + grain, end);
    group.run([&body, b, e] { body(b, e); });
  }
  group.wait();
}

/// body(i) for every i in [begin, end), forked in chunks of `grain`.
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body, ThreadPool& pool = global_pool()) {
  parallel_for_range(
      begin, end, grain,
      [&body](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) body(i);
      },
      pool);
}

}  // namespace rsrpa::sched
