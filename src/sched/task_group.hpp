// Fork/join task group with exception capture and propagation.
//
// Usage:
//
//   sched::TaskGroup group;          // runs on the global pool
//   for (...) group.run([&] { ... });
//   group.wait();                    // joins; rethrows the first exception
//
// Semantics:
//  - run() never blocks. On a serial (1-lane) pool the task executes
//    immediately on the caller, in submission order — the inline mode
//    that keeps single-threaded runs identical to plain loops.
//  - Exceptions thrown by tasks are captured; the FIRST one (in
//    completion order) is rethrown from wait(). Later ones are dropped —
//    the group is a unit of work, not an error aggregator. In inline mode
//    the same contract holds: the exception surfaces at wait(), not at
//    run(), and tasks submitted after a failed one still execute.
//  - wait() help-runs queued tasks while waiting, so groups nest freely
//    on worker threads (a task may build and wait on its own group).
//  - The destructor joins outstanding tasks but swallows their
//    exceptions; call wait() on every code path that cares about errors.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>

#include "sched/thread_pool.hpp"

namespace rsrpa::sched {

class TaskGroup {
 public:
  /// The group inherits the calling thread's task quota (see
  /// TaskQuotaScope): its tasks re-install that quota on whatever lane
  /// runs them, so parallel regions nested inside the tasks stay capped.
  explicit TaskGroup(ThreadPool& pool = global_pool())
      : pool_(pool), quota_(current_task_quota()) {}
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Fan-out cap inherited at construction; 0 = unlimited.
  [[nodiscard]] int quota() const { return quota_; }

  /// Fork `f` into the group. `f` must stay valid until wait() returns
  /// (capture by reference only objects that outlive the group).
  template <class F>
  void run(F&& f) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    if (pool_.serial())
      pool_.execute_now(std::function<void()>(std::forward<F>(f)), this);
    else
      pool_.submit(std::function<void()>(std::forward<F>(f)), this);
  }

  /// Join all forked tasks, then rethrow the first captured exception.
  void wait();

  /// Tasks forked but not yet finished.
  [[nodiscard]] long pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class ThreadPool;

  /// Called by the pool on the executing thread: run `fn`, capture any
  /// exception, then mark one task finished.
  void run_task(std::function<void()>& fn) noexcept;
  void record_error(std::exception_ptr e);
  void finish_one();

  ThreadPool& pool_;
  int quota_ = 0;
  std::atomic<long> pending_{0};
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::exception_ptr error_;  ///< guarded by mu_
};

}  // namespace rsrpa::sched
