// Fixed-size thread pool with per-worker work-stealing deques — the
// execution substrate behind sched::TaskGroup / parallel_for /
// parallel_reduce and, through them, the concurrent stages of the RPA
// drivers (par/parallel_rpa rank slices, rpa/chi0 RHS blocks, la/blas
// tiled GEMM).
//
// Lane model: a pool configured for `threads` lanes spawns `threads - 1`
// worker threads; the caller thread is the last lane and participates by
// help-running queued tasks inside TaskGroup::wait(). `threads == 1` is
// the guaranteed-serial INLINE mode — no threads are spawned, no queues
// are touched, and every task runs immediately on the caller in submission
// order, which is what makes single-threaded runs exactly reproduce the
// pre-sched serial code path.
//
// Queue discipline: a worker pushes and pops its own deque at the back
// (LIFO, cache-warm); idle workers and helping callers steal from other
// deques at the front (FIFO, oldest first). Submissions from non-worker
// threads land in a shared external deque that workers also steal from.
//
// Determinism: the pool itself makes no ordering promises — determinism
// at any thread count is a property of the algorithms on top (disjoint
// writes in parallel_for, the fixed-shape combine tree in
// parallel_reduce), never of scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "sched/pool_stats.hpp"

namespace rsrpa::sched {

struct SchedOptions {
  /// Total concurrency (workers + caller lane). 0 = auto: the
  /// RSRPA_THREADS environment variable if set to a positive integer,
  /// otherwise std::thread::hardware_concurrency().
  int threads = 0;
};

/// Parse a thread-count spec ("4"). Returns 0 for null/empty/non-numeric/
/// non-positive input (meaning "not specified").
int parse_threads(const char* spec);

/// Resolve SchedOptions::threads to a concrete lane count >= 1.
int resolve_threads(const SchedOptions& opts);

class TaskGroup;

// ----------------------------- task quotas -----------------------------
//
// A task quota caps how many tasks a single parallel region may fork onto
// the shared pool, so one caller (a quota'd service job) cannot fan out
// over every lane while other callers wait. The quota is a thread-local
// value inherited by every TaskGroup built on the thread and re-installed
// on whichever worker thread runs the group's tasks — so nested parallel
// loops inside a quota'd region are capped too, no matter which lane they
// execute on. 0 means unlimited (the default).
//
// parallel_for_range honors the quota by enlarging its grain until at most
// `quota` chunk tasks are forked. That is bitwise-safe: the contract of
// parallel_for already requires each index to perform the same FP work
// regardless of chunking, and parallel_reduce's combine tree depends only
// on (range, grain) of the REDUCTION, never on how the chunk-index loop
// underneath is grouped into tasks. The cap is per parallel region, not a
// hard global thread count: independent nested regions of one job can
// momentarily overlap, but the fan-out of each is bounded.

/// Task quota of the current thread (inherited by new TaskGroups).
/// 0 = unlimited.
[[nodiscard]] int current_task_quota();

/// RAII quota installer for the calling thread: parallel regions entered
/// while the scope is alive fork at most `quota` tasks each (0 restores
/// unlimited). Service job runners wrap each job in one of these.
class TaskQuotaScope {
 public:
  explicit TaskQuotaScope(int quota);
  ~TaskQuotaScope();
  TaskQuotaScope(const TaskQuotaScope&) = delete;
  TaskQuotaScope& operator=(const TaskQuotaScope&) = delete;

 private:
  int prev_ = 0;
};

class ThreadPool {
 public:
  /// `threads` as in SchedOptions (0 = auto-resolve).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured lane count (>= 1).
  [[nodiscard]] int threads() const { return n_lanes_; }
  /// True in inline mode: tasks run on the caller, nothing is queued.
  [[nodiscard]] bool serial() const { return n_lanes_ == 1; }

  [[nodiscard]] PoolStats stats() const;
  void reset_stats();

  // ----- task plumbing (used by TaskGroup and the parallel algorithms) --

  /// Queue a task for the workers. `group` receives completion and
  /// exception notifications; it must outlive the task.
  void submit(std::function<void()> fn, TaskGroup* group);

  /// Run a task immediately on the calling thread (inline mode), with the
  /// same group bookkeeping as a queued task.
  void execute_now(std::function<void()> fn, TaskGroup* group);

  /// Try to run one queued task on the calling thread. Returns false if
  /// no task was available. This is the help-join primitive: waiting
  /// callers drain the queues instead of idling, so nested TaskGroups on
  /// worker threads cannot deadlock the pool.
  bool help_one();

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    WallTimer queued;  ///< started at submission; read at dequeue
  };

  struct LaneStats {
    std::atomic<long> tasks{0};
    std::atomic<long> steals{0};
    std::atomic<long> inline_tasks{0};
    std::atomic<double> busy_seconds{0.0};
    std::atomic<double> queue_seconds{0.0};
  };

  struct Deque {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t worker_index);
  /// Pop from the lane's own deque (back) or steal (front) from the
  /// others. `lane` may be the caller lane (owns the external deque).
  bool take_task(std::size_t lane, Task& out, bool& stolen);
  void run_task(Task&& task, std::size_t lane, bool stolen);
  [[nodiscard]] std::size_t caller_lane() const {
    return static_cast<std::size_t>(n_lanes_) - 1;
  }

  int n_lanes_ = 1;  ///< workers + 1 caller lane
  // deques_[w] for worker w in [0, n_lanes_-1); deques_[n_lanes_-1] is the
  // shared external deque fed by non-worker threads.
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::unique_ptr<LaneStats>> lane_stats_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<long> queued_{0};
  std::atomic<bool> stop_{false};
};

/// The process-wide pool used by default throughout the library.
///
/// First-use contract: the pool is built lazily, on the FIRST call, from
/// SchedOptions{} — i.e. RSRPA_THREADS if set, else the hardware count —
/// and its size is then fixed for the pool's lifetime. Later changes to
/// the environment have no effect; the only way to resize is
/// set_global_threads(), which is safe ONLY while no other thread is
/// using the pool (startup, single-threaded tests). Multi-tenant callers
/// therefore never resize the pool per job — they bound each job's share
/// of it with a TaskQuotaScope instead.
ThreadPool& global_pool();

/// Replace the global pool with one of `threads` lanes (0 = auto).
/// Intended for startup, benches and tests; not safe while other threads
/// are concurrently using the previous global pool.
void set_global_threads(int threads);

}  // namespace rsrpa::sched
