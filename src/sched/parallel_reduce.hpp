// Ordered parallel reduction with a FIXED-SHAPE pairwise combine tree.
//
// Floating-point addition is not associative, so a reduction whose
// combine order depends on scheduling produces run-to-run jitter — the
// classic reason "the same input" gives different energies at different
// thread counts. This reduction removes the schedule from the result:
//
//   1. [begin, end) is cut into ceil(n / grain) chunks — a function of
//      (n, grain) ONLY, never of the thread count;
//   2. map(chunk_begin, chunk_end) produces one partial per chunk, each
//      written to its own slot (disjoint; chunks may run in any order);
//   3. partials are combined level by level in a pairwise tree whose
//      shape is again fixed by the chunk count: level k combines slot
//      2i with slot 2i+1, an odd tail slot is carried up unchanged.
//
// Hence the result is BITWISE IDENTICAL at every thread count for the
// same (range, grain) — the deterministic-reduction guarantee the RPA
// drivers rely on (docs/REPRODUCING.md, "Threaded execution"). Note the
// tree result intentionally differs (at rounding level) from a serial
// left fold; determinism across schedules, not serial-fold equality, is
// the contract.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sched/parallel_for.hpp"

namespace rsrpa::sched {

/// Reduce [begin, end) with partials T = map(chunk_b, chunk_e) combined
/// by T = combine(left, right) over the fixed pairwise tree. Returns
/// `identity` for an empty range. `combine` runs serially on the caller
/// (tree depth is log2(n/grain); the partials carry the heavy work).
template <class T, class Map, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, Map&& map, Combine&& combine,
                  ThreadPool& pool = global_pool()) {
  if (end <= begin) return identity;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n_chunks = (end - begin + grain - 1) / grain;

  std::vector<T> parts;
  parts.reserve(n_chunks);
  for (std::size_t k = 0; k < n_chunks; ++k) parts.push_back(identity);
  parallel_for_range(
      0, n_chunks, 1,
      [&](std::size_t kb, std::size_t ke) {
        for (std::size_t k = kb; k < ke; ++k) {
          const std::size_t b = begin + k * grain;
          const std::size_t e = b + grain < end ? b + grain : end;
          parts[k] = map(b, e);
        }
      },
      pool);

  // Fixed pairwise tree: shape depends only on n_chunks.
  std::size_t width = n_chunks;
  while (width > 1) {
    const std::size_t half = width / 2;
    for (std::size_t i = 0; i < half; ++i)
      parts[i] = combine(std::move(parts[2 * i]), std::move(parts[2 * i + 1]));
    if (width % 2 == 1) parts[half] = std::move(parts[width - 1]);
    width = half + width % 2;
  }
  return std::move(parts[0]);
}

}  // namespace rsrpa::sched
