#include "sched/thread_pool.hpp"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "sched/task_group.hpp"

namespace rsrpa::sched {

namespace {

// Which pool (if any) the current thread is a worker of, and its lane.
// Thread-locals rather than pool members so multiple pools coexist (the
// stress tests build private pools next to the global one).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_lane = 0;

// Per-thread task quota (see thread_pool.hpp, "task quotas"). Set by
// TaskQuotaScope on job-runner threads and re-installed around each task
// by TaskGroup::run_task so nested parallel regions inherit it on
// whichever lane executes them.
thread_local int tls_quota = 0;

}  // namespace

int current_task_quota() { return tls_quota; }

TaskQuotaScope::TaskQuotaScope(int quota) : prev_(tls_quota) {
  tls_quota = quota > 0 ? quota : 0;
}

TaskQuotaScope::~TaskQuotaScope() { tls_quota = prev_; }

int parse_threads(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 0;
  int value = 0;
  const char* end = spec + std::strlen(spec);
  auto [ptr, ec] = std::from_chars(spec, end, value);
  if (ec != std::errc{} || ptr != end || value <= 0) return 0;
  return value;
}

int resolve_threads(const SchedOptions& opts) {
  if (opts.threads > 0) return opts.threads;
  if (const int env = parse_threads(std::getenv("RSRPA_THREADS")); env > 0)
    return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  SchedOptions opts;
  opts.threads = threads;
  n_lanes_ = resolve_threads(opts);
  deques_.reserve(static_cast<std::size_t>(n_lanes_));
  lane_stats_.reserve(static_cast<std::size_t>(n_lanes_));
  for (int i = 0; i < n_lanes_; ++i) {
    deques_.push_back(std::make_unique<Deque>());
    lane_stats_.push_back(std::make_unique<LaneStats>());
  }
  // Lanes [0, n_lanes_-1) get worker threads; the last lane is the
  // caller's (its deque is the external submission queue).
  for (std::size_t w = 0; w + 1 < static_cast<std::size_t>(n_lanes_); ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Defensive drain: a correctly used pool has no queued tasks here (every
  // TaskGroup joins in its destructor), but never strand a group.
  Task task;
  bool stolen = false;
  while (take_task(caller_lane(), task, stolen))
    run_task(std::move(task), caller_lane(), stolen);
}

void ThreadPool::submit(std::function<void()> fn, TaskGroup* group) {
  RSRPA_REQUIRE(group != nullptr);
  // Workers push to their own deque (back); foreign threads feed the
  // shared external deque.
  const std::size_t lane =
      tls_pool == this ? tls_lane : caller_lane();
  {
    Deque& dq = *deques_[lane];
    std::lock_guard<std::mutex> lk(dq.mu);
    dq.tasks.push_back(Task{std::move(fn), group, WallTimer{}});
  }
  queued_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
}

void ThreadPool::execute_now(std::function<void()> fn, TaskGroup* group) {
  RSRPA_REQUIRE(group != nullptr);
  const std::size_t lane = tls_pool == this ? tls_lane : caller_lane();
  LaneStats& ls = *lane_stats_[lane];
  ls.tasks.fetch_add(1, std::memory_order_relaxed);
  ls.inline_tasks.fetch_add(1, std::memory_order_relaxed);
  {
    WallClock busy(ls.busy_seconds);
    group->run_task(fn);
  }
}

bool ThreadPool::take_task(std::size_t lane, Task& out, bool& stolen) {
  // Own deque first, newest task (LIFO keeps nested fork/join depth-first
  // and cache-warm).
  {
    Deque& own = *deques_[lane];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      stolen = false;
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal the OLDEST task from the other lanes, round-robin from the next
  // lane over so victims spread out.
  const std::size_t n = deques_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Deque& victim = *deques_[(lane + k) % n];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      stolen = true;
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task&& task, std::size_t lane, bool stolen) {
  LaneStats& ls = *lane_stats_[lane];
  ls.tasks.fetch_add(1, std::memory_order_relaxed);
  if (stolen) ls.steals.fetch_add(1, std::memory_order_relaxed);
  atomic_add_seconds(ls.queue_seconds, task.queued.seconds());
  WallClock busy(ls.busy_seconds);
  task.group->run_task(task.fn);
}

bool ThreadPool::help_one() {
  const std::size_t lane = tls_pool == this ? tls_lane : caller_lane();
  Task task;
  bool stolen = false;
  if (!take_task(lane, task, stolen)) return false;
  if (tls_pool != this) {
    // A helping caller is not a worker, but steal accounting should still
    // attribute the task to the caller lane.
    LaneStats& ls = *lane_stats_[caller_lane()];
    ls.inline_tasks.fetch_add(1, std::memory_order_relaxed);
  }
  run_task(std::move(task), lane, stolen);
  return true;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tls_pool = this;
  tls_lane = worker_index;
  while (true) {
    Task task;
    bool stolen = false;
    if (take_task(worker_index, task, stolen)) {
      run_task(std::move(task), worker_index, stolen);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    std::unique_lock<std::mutex> lk(wake_mu_);
    // Timed predicate wait: a submission may race the sleep, so never
    // sleep unbounded on the notification alone.
    wake_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
  tls_pool = nullptr;
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.threads = n_lanes_;
  s.worker_busy_seconds.reserve(lane_stats_.size());
  s.worker_tasks.reserve(lane_stats_.size());
  for (const auto& lane : lane_stats_) {
    const long tasks = lane->tasks.load(std::memory_order_relaxed);
    const double busy = lane->busy_seconds.load(std::memory_order_relaxed);
    s.tasks += tasks;
    s.steals += lane->steals.load(std::memory_order_relaxed);
    s.inline_tasks += lane->inline_tasks.load(std::memory_order_relaxed);
    s.busy_seconds += busy;
    s.queue_seconds += lane->queue_seconds.load(std::memory_order_relaxed);
    s.worker_busy_seconds.push_back(busy);
    s.worker_tasks.push_back(tasks);
  }
  return s;
}

void ThreadPool::reset_stats() {
  for (auto& lane : lane_stats_) {
    lane->tasks.store(0, std::memory_order_relaxed);
    lane->steals.store(0, std::memory_order_relaxed);
    lane->inline_tasks.store(0, std::memory_order_relaxed);
    lane->busy_seconds.store(0.0, std::memory_order_relaxed);
    lane->queue_seconds.store(0.0, std::memory_order_relaxed);
  }
}

// ------------------------------ TaskGroup ------------------------------

TaskGroup::~TaskGroup() {
  // Join without rethrowing: the destructor must not throw, and wait()
  // was the place to observe errors.
  while (pending_.load(std::memory_order_acquire) > 0)
    if (!pool_.help_one()) std::this_thread::yield();
  // The last finisher decrements pending under mu_; acquiring it here
  // guarantees that thread has released the mutex before it is destroyed.
  std::lock_guard<std::mutex> lk(mu_);
}

void TaskGroup::wait() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!pool_.help_one()) {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait_for(lk, std::chrono::microseconds(200), [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void TaskGroup::run_task(std::function<void()>& fn) noexcept {
  // Install the group's quota for the duration of the task: the lane may
  // belong to a different (or no) quota'd region, and nested parallel
  // loops inside fn must see the quota of the region that forked them.
  const int saved_quota = tls_quota;
  tls_quota = quota_;
  try {
    fn();
  } catch (...) {
    record_error(std::current_exception());
  }
  tls_quota = saved_quota;
  finish_one();
}

void TaskGroup::record_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!error_) error_ = std::move(e);
}

void TaskGroup::finish_one() {
  // Decrement under the group mutex so a waiter that observes zero and
  // returns cannot destroy the group while this thread still notifies.
  std::lock_guard<std::mutex> lk(mu_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    done_cv_.notify_all();
}

// ----------------------------- global pool -----------------------------

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(0);
  return *g_pool;
}

void set_global_threads(int threads) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool.reset();  // join the old pool before the new one exists
  g_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace rsrpa::sched
