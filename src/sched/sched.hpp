// Umbrella header for the task-parallel runtime.
//
// The sched subsystem is the shared-memory concurrency substrate of the
// library: a fixed-size work-stealing ThreadPool, fork/join TaskGroup,
// grain-controlled parallel_for, and the deterministic fixed-shape
// parallel_reduce. Compute layers (par, rpa, la) include this header;
// thread count comes from SchedOptions / RSRPA_THREADS, and a 1-lane
// pool degenerates to exact serial execution.
#pragma once

#include "sched/parallel_for.hpp"    // IWYU pragma: export
#include "sched/parallel_reduce.hpp" // IWYU pragma: export
#include "sched/pool_stats.hpp"      // IWYU pragma: export
#include "sched/task_group.hpp"      // IWYU pragma: export
#include "sched/thread_pool.hpp"     // IWYU pragma: export
