// Execution statistics of the task-parallel runtime.
//
// Every task run through a ThreadPool (or inline on the caller when the
// pool is serial) is counted, together with its queue wait and run time,
// into a per-lane accumulator. PoolStats is the plain-data snapshot of
// those accumulators: it serializes through the obs RunReport machinery
// (obs::to_json in obs/run_report.hpp) so bench reports and parallel-run
// records can carry scheduler telemetry next to the solver telemetry.
//
// Lane convention: lanes [0, threads-1) are the pool's worker threads;
// the LAST lane aggregates work executed on caller threads — inline-mode
// tasks and tasks helped along inside TaskGroup::wait().
#pragma once

#include <cstddef>
#include <vector>

namespace rsrpa::sched {

struct PoolStats {
  int threads = 1;      ///< configured concurrency (workers + caller lane)
  long tasks = 0;       ///< tasks executed, over all lanes
  long steals = 0;      ///< tasks taken from another worker's deque
  long inline_tasks = 0;  ///< tasks run on a caller thread (serial mode
                          ///< or help-join inside TaskGroup::wait)
  double busy_seconds = 0.0;   ///< sum over lanes of task run time
  double queue_seconds = 0.0;  ///< sum over tasks of enqueue->start wait
  std::vector<double> worker_busy_seconds;  ///< per-lane busy time
  std::vector<long> worker_tasks;           ///< per-lane task counts

  /// Counters accumulated since `baseline` was snapshotted from the same
  /// pool. Used to attribute a pool-lifetime delta to one run. Falls back
  /// to *this when the pool was reconfigured in between (lane mismatch).
  [[nodiscard]] PoolStats since(const PoolStats& baseline) const {
    if (baseline.threads != threads ||
        baseline.worker_busy_seconds.size() != worker_busy_seconds.size())
      return *this;
    PoolStats out = *this;
    out.tasks -= baseline.tasks;
    out.steals -= baseline.steals;
    out.inline_tasks -= baseline.inline_tasks;
    out.busy_seconds -= baseline.busy_seconds;
    out.queue_seconds -= baseline.queue_seconds;
    for (std::size_t i = 0; i < out.worker_busy_seconds.size(); ++i)
      out.worker_busy_seconds[i] -= baseline.worker_busy_seconds[i];
    for (std::size_t i = 0; i < out.worker_tasks.size(); ++i)
      out.worker_tasks[i] -= baseline.worker_tasks[i];
    return out;
  }
};

}  // namespace rsrpa::sched
