#include "obs/event_log.hpp"

namespace rsrpa::obs {

std::size_t EventLog::count(const std::string& kind) const {
  std::size_t n = 0;
  for (const Event& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

void EventLog::merge(const EventLog& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

Json to_json(const Event& e) {
  Json j = Json::object();
  j["kind"] = e.kind;
  if (!e.detail.empty()) j["detail"] = e.detail;
  if (!e.fields.empty()) {
    Json f = Json::object();
    for (const auto& [name, value] : e.fields) f[name] = value;
    j["fields"] = std::move(f);
  }
  return j;
}

Json to_json(const EventLog& log) {
  Json arr = Json::array();
  for (const Event& e : log.events()) arr.push_back(to_json(e));
  return arr;
}

EventLog event_log_from_json(const Json& j) {
  EventLog log;
  for (const Json& ej : j.as_array()) {
    Event e;
    e.kind = ej.at("kind").as_string();
    if (const Json* d = ej.find("detail")) e.detail = d->as_string();
    if (const Json* f = ej.find("fields"))
      for (const auto& [name, value] : f->as_object())
        e.fields.emplace_back(name, value.as_double());
    log.emit(std::move(e));
  }
  return log;
}

}  // namespace rsrpa::obs
