// Minimal dependency-free JSON document type for run reports.
//
// Json is a tagged union of null / bool / integer / double / string /
// array / object. Objects preserve insertion order so reports read in the
// order they were built. dump() emits standards-conformant JSON (non-
// finite numbers become null, strings are escaped); parse() is the
// inverse, used by the round-trip tests and by external tooling that
// diffs `bench_out/*.json` across revisions. No third-party code — the
// container image has no JSON library and the ROADMAP forbids adding one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace rsrpa::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_int() const { return holds<std::int64_t>(); }
  [[nodiscard]] bool is_double() const { return holds<double>(); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<Array>(); }
  [[nodiscard]] bool is_object() const { return holds<Object>(); }

  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] std::int64_t as_int() const {
    return get<std::int64_t>("integer");
  }
  /// Numeric value as double, whether stored as integer or double.
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    return get<double>("number");
  }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const Array& as_array() const { return get<Array>("array"); }
  [[nodiscard]] const Object& as_object() const {
    return get<Object>("object");
  }

  /// Object access; inserts a null member on a mutable object if absent.
  Json& operator[](const std::string& key);
  /// Lookup without insertion; nullptr if absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Lookup that throws Error when the key is missing.
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Array append (element or builds via push_back on a fresh array()).
  void push_back(Json v);
  [[nodiscard]] std::size_t size() const;

  /// Serialize. indent < 0 gives the compact single-line form; indent >= 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a JSON document. Throws Error on malformed input or trailing
  /// garbage after the top-level value.
  static Json parse(const std::string& text);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(value_);
  }
  template <typename T>
  [[nodiscard]] const T& get(const char* what) const {
    RSRPA_REQUIRE_MSG(holds<T>(), std::string("Json value is not a ") + what);
    return std::get<T>(value_);
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Write `j` to `path` (pretty-printed, trailing newline), creating parent
/// directories as needed. Throws Error if the file cannot be written.
void write_json_file(const std::string& path, const Json& j);

/// Parse the JSON document stored at `path`. Throws Error if unreadable.
Json read_json_file(const std::string& path);

}  // namespace rsrpa::obs
