// Structured event log for solver telemetry.
//
// The drivers (erpa, parallel_rpa) and the solver stack (dynamic block
// selection, subspace iteration) emit discrete events — block-COCG
// breakdowns that trigger the single-column fallback, Rayleigh-Ritz
// eigensolve collapses, trace-term domain violations — into an EventLog
// carried by the run's result. Each event is a kind tag, a free-form
// detail string, and a flat numeric payload, so the whole log serializes
// losslessly to JSON (obs/run_report.hpp) and survives the round trip the
// bench reports rely on.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace rsrpa::obs {

/// Well-known event kinds. Free-form kinds are allowed; these are the
/// ones the stack emits and the reproduction docs reference.
namespace events {
inline constexpr const char* kSolverBreakdown = "solver_breakdown";
inline constexpr const char* kSingleColumnFallback = "single_column_fallback";
inline constexpr const char* kEigensolveCollapse = "eigensolve_collapse";
inline constexpr const char* kTraceTermDomain = "trace_term_domain";
// Recovery-ladder events (solver/resilience.hpp), in escalation order.
inline constexpr const char* kSolverRestart = "solver_restart";
inline constexpr const char* kBlockDeflation = "block_deflation";
inline constexpr const char* kSolverSwap = "solver_swap";
inline constexpr const char* kColumnQuarantine = "column_quarantine";
// Driver-level summary: a quadrature point with quarantined columns.
inline constexpr const char* kQuadPointDegraded = "quad_point_degraded";
// Per-apply telemetry of the fused shifted-Hamiltonian pipeline: one
// event per chi0 application with modeled bytes/flops, measured seconds,
// and the resulting arithmetic intensity.
inline constexpr const char* kApplyCounters = "apply_counters";
// Warm-start hygiene: quarantined subspace columns re-randomized before
// the next quadrature point (part of the result log — deterministic).
inline constexpr const char* kWarmStartReseed = "warm_start_reseed";
// One-time configuration warning: TOL_EIG has more entries than N_OMEGA
// and the excess is ignored (part of the result log — deterministic).
inline constexpr const char* kTolEigTruncated = "tol_eig_truncated";
// Run-checkpoint lifecycle (io/checkpoint.hpp). These go to the SEPARATE
// CheckpointOptions::events sink, never into RpaResult::events: the
// result log is covered by the bitwise resume-equivalence contract,
// while these describe one process's I/O, not the computation.
inline constexpr const char* kCheckpointWritten = "checkpoint_written";
inline constexpr const char* kRunResumed = "run_resumed";
// ISDF backend lifecycle (src/isdf). Selection reports the sketch shape
// and |R_kk| decay of the pivoted QR; rank_deficient fires when the
// sketch ran out of numerical rank before `nip` points were found; the
// fit event records the ridge the normal equations needed (0 = clean
// Cholesky).
inline constexpr const char* kIsdfPointsSelected = "isdf_points_selected";
inline constexpr const char* kIsdfRankDeficient = "isdf_rank_deficient";
inline constexpr const char* kIsdfFitRegularized = "isdf_fit_regularized";
// SLQ driver: one per quadrature point with the probe-mean trace estimate
// and its sample spread.
inline constexpr const char* kSlqOmegaEstimate = "slq_omega_estimate";
}  // namespace events

struct Event {
  std::string kind;
  std::string detail;
  /// Flat numeric payload, e.g. {{"omega_index", 3}, {"mu", 1.02}}.
  std::vector<std::pair<std::string, double>> fields;
};

class EventLog {
 public:
  void emit(Event e) { events_.push_back(std::move(e)); }
  void emit(std::string kind, std::string detail,
            std::vector<std::pair<std::string, double>> fields = {}) {
    events_.push_back(
        Event{std::move(kind), std::move(detail), std::move(fields)});
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  /// Number of events of the given kind.
  [[nodiscard]] std::size_t count(const std::string& kind) const;

  void merge(const EventLog& other);
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

Json to_json(const Event& e);
Json to_json(const EventLog& log);

/// Rebuild an EventLog from its to_json() form (round-trip inverse).
EventLog event_log_from_json(const Json& j);

}  // namespace rsrpa::obs
