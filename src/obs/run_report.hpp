// RunReport — the machine-readable counterpart of the free-form driver
// logs, and the JSON serializers for every telemetry struct in the stack.
//
// One RunReport corresponds to one run (a bench invocation, an RPA
// computation, a parallel sweep). The schema is documented in
// docs/REPRODUCING.md ("Run reports"); its stability contract is the
// `schema` tag below — bump it when a field changes meaning, never reuse
// a name for a different quantity. The tier-1 perf trajectory diffs these
// files across revisions, so keep fields append-only.
#pragma once

#include "direct/direct_rpa.hpp"
#include "isdf/erpa_isdf.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "par/parallel_rpa.hpp"
#include "rpa/erpa.hpp"
#include "rpa/erpa_slq.hpp"
#include "sched/pool_stats.hpp"
#include "solver/dynamic_block.hpp"

namespace rsrpa::obs {

inline constexpr const char* kRunReportSchema = "rsrpa.run_report/1";

/// {bucket: seconds, ...} in sorted bucket order.
Json to_json(const KernelTimers& timers);

/// Scheduler telemetry: threads, tasks, steals, per-worker busy seconds.
Json to_json(const sched::PoolStats& stats);

Json to_json(const solver::SolveReport& rep);
Json to_json(const solver::ChunkRecord& rec);
/// Chunks, totals, and the Table IV block-size histogram.
Json to_json(const solver::DynamicBlockReport& rep);

Json to_json(const rpa::SternheimerStats& stats);
Json to_json(const rpa::OmegaRecord& rec);
/// The full per-run record: energy, per-omega rows, Sternheimer stats,
/// kernel timers, and the event log.
Json to_json(const rpa::RpaResult& res);

/// Lossless inverses of the serializers above, used by the run-checkpoint
/// layer (io/checkpoint.hpp) to rebuild driver state. Doubles survive the
/// round trip bitwise (dump() emits the shortest representation that
/// from_chars parses back exactly); derived fields such as
/// arithmetic_intensity are recomputed, never parsed.
KernelTimers kernel_timers_from_json(const Json& j);
rpa::SternheimerStats sternheimer_stats_from_json(const Json& j);
rpa::OmegaRecord omega_record_from_json(const Json& j);

Json to_json(const par::KernelBreakdown& k);
/// Adds the per-rank measured seconds and per-rank merged timers on top
/// of the embedded RpaResult record.
Json to_json(const par::ParallelRpaResult& res);

// The other three backends' run records share the RpaResult field names
// (e_rpa, e_rpa_per_atom, converged, total_seconds, per_omega, timers,
// events) so obs tooling written against the Sternheimer report reads
// them unchanged; backend-specific extras are additive.
Json to_json(const direct::DirectRpaResult& res);
Json to_json(const rpa::SlqOmegaRecord& rec);
Json to_json(const rpa::SlqRpaResult& res);
Json to_json(const isdf::IsdfRpaResult& res);

class RunReport {
 public:
  /// `name` identifies the run (e.g. the bench binary name); it becomes
  /// the `name` field and the default file stem.
  explicit RunReport(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  Json& root() { return root_; }
  [[nodiscard]] const Json& root() const { return root_; }

  /// Set a top-level field.
  void set(const std::string& key, Json value) {
    root_[key] = std::move(value);
  }

  [[nodiscard]] std::string dump() const { return root_.dump(2); }
  /// Write to `path` (parent directories created). Pretty-printed.
  void write(const std::string& path) const { write_json_file(path, root_); }

 private:
  std::string name_;
  Json root_;
};

}  // namespace rsrpa::obs
