#include "obs/run_report.hpp"

namespace rsrpa::obs {

Json to_json(const KernelTimers& timers) {
  Json j = Json::object();
  for (const auto& [name, seconds] : timers.entries()) j[name] = seconds;
  return j;
}

Json to_json(const sched::PoolStats& stats) {
  Json j = Json::object();
  j["threads"] = stats.threads;
  j["tasks"] = stats.tasks;
  j["steals"] = stats.steals;
  j["inline_tasks"] = stats.inline_tasks;
  j["busy_seconds"] = stats.busy_seconds;
  j["queue_seconds"] = stats.queue_seconds;
  Json busy = Json::array();
  for (double s : stats.worker_busy_seconds) busy.push_back(s);
  j["worker_busy_seconds"] = std::move(busy);
  Json tasks = Json::array();
  for (long t : stats.worker_tasks) tasks.push_back(t);
  j["worker_tasks"] = std::move(tasks);
  return j;
}

Json to_json(const solver::SolveReport& rep) {
  Json j = Json::object();
  j["iterations"] = rep.iterations;
  j["relative_residual"] = rep.relative_residual;
  j["converged"] = rep.converged;
  j["matvec_columns"] = rep.matvec_columns;
  if (rep.matvec_bytes > 0.0 || rep.matvec_flops > 0.0) {
    j["matvec_bytes"] = rep.matvec_bytes;
    j["matvec_flops"] = rep.matvec_flops;
  }
  if (!rep.history.empty()) {
    Json h = Json::array();
    for (double r : rep.history) h.push_back(r);
    j["history"] = std::move(h);
  }
  return j;
}

Json to_json(const solver::ChunkRecord& rec) {
  Json j = Json::object();
  j["block_size"] = rec.block_size;
  j["n_rhs"] = rec.n_rhs;
  j["iterations"] = rec.iterations;
  j["matvec_columns"] = rec.matvec_columns;
  j["seconds"] = rec.seconds;
  j["converged"] = rec.converged;
  j["fallback"] = rec.fallback;
  j["restarts"] = rec.restarts;
  j["deflations"] = rec.deflations;
  j["solver_swaps"] = rec.solver_swaps;
  j["quarantined"] = rec.quarantined;
  return j;
}

Json to_json(const solver::DynamicBlockReport& rep) {
  Json j = Json::object();
  j["total_matvec_columns"] = rep.total_matvec_columns;
  if (rep.total_matvec_bytes > 0.0 || rep.total_matvec_flops > 0.0) {
    j["total_matvec_bytes"] = rep.total_matvec_bytes;
    j["total_matvec_flops"] = rep.total_matvec_flops;
  }
  j["total_seconds"] = rep.total_seconds;
  j["all_converged"] = rep.all_converged;

  // Table IV histogram, computed inline from the chunks (identical to
  // DynamicBlockReport::block_size_counts(), kept here so rsrpa_obs does
  // not link against rsrpa_solver).
  std::map<int, int> counts;
  int fallbacks = 0;
  for (const solver::ChunkRecord& c : rep.chunks) {
    ++counts[c.block_size];
    if (c.fallback) ++fallbacks;
  }
  Json hist = Json::object();
  for (const auto& [size, count] : counts)
    hist[std::to_string(size)] = count;
  j["block_size_counts"] = std::move(hist);
  j["fallback_chunks"] = fallbacks;
  j["total_restarts"] = rep.total_restarts;
  j["total_deflations"] = rep.total_deflations;
  j["total_solver_swaps"] = rep.total_solver_swaps;
  Json quarantined = Json::array();
  for (long c : rep.quarantined_columns) quarantined.push_back(c);
  j["quarantined_columns"] = std::move(quarantined);

  Json chunks = Json::array();
  for (const solver::ChunkRecord& c : rep.chunks) chunks.push_back(to_json(c));
  j["chunks"] = std::move(chunks);
  return j;
}

Json to_json(const rpa::SternheimerStats& stats) {
  Json j = Json::object();
  Json hist = Json::object();
  for (const auto& [size, count] : stats.block_size_chunks)
    hist[std::to_string(size)] = count;
  j["block_size_chunks"] = std::move(hist);
  j["total_chunks"] = stats.total_chunks;
  j["matvec_columns"] = stats.matvec_columns;
  if (stats.matvec_bytes > 0.0 || stats.matvec_flops > 0.0) {
    j["matvec_bytes"] = stats.matvec_bytes;
    j["matvec_flops"] = stats.matvec_flops;
    if (stats.matvec_bytes > 0.0)
      j["arithmetic_intensity"] = stats.matvec_flops / stats.matvec_bytes;
  }
  j["seconds"] = stats.seconds;
  j["all_converged"] = stats.all_converged;
  j["restarts"] = stats.restarts;
  j["deflations"] = stats.deflations;
  j["solver_swaps"] = stats.solver_swaps;
  j["quarantined_columns"] = stats.quarantined_columns;
  if (!stats.quarantined_column_indices.empty()) {
    Json idx = Json::array();
    for (long c : stats.quarantined_column_indices) idx.push_back(c);
    j["quarantined_column_indices"] = std::move(idx);
  }
  return j;
}

Json to_json(const rpa::OmegaRecord& rec) {
  Json j = Json::object();
  j["omega"] = rec.omega;
  j["weight"] = rec.weight;
  j["e_term"] = rec.e_term;
  j["filter_iterations"] = rec.filter_iterations;
  j["error"] = rec.error;
  j["converged"] = rec.converged;
  j["seconds"] = rec.seconds;
  if (rec.invalid_terms > 0) {
    j["invalid_terms"] = rec.invalid_terms;
    j["worst_mu"] = rec.worst_mu;
  }
  if (rec.quarantined_columns > 0)
    j["quarantined_columns"] = rec.quarantined_columns;
  if (!rec.quarantined_column_indices.empty()) {
    Json idx = Json::array();
    for (long c : rec.quarantined_column_indices) idx.push_back(c);
    j["quarantined_column_indices"] = std::move(idx);
  }
  if (rec.matvec_bytes > 0.0 || rec.matvec_flops > 0.0) {
    j["matvec_bytes"] = rec.matvec_bytes;
    j["matvec_flops"] = rec.matvec_flops;
    if (rec.matvec_bytes > 0.0)
      j["arithmetic_intensity"] = rec.matvec_flops / rec.matvec_bytes;
  }
  Json eig = Json::array();
  for (double mu : rec.eigenvalues) eig.push_back(mu);
  j["eigenvalues"] = std::move(eig);
  return j;
}

Json to_json(const rpa::RpaResult& res) {
  Json j = Json::object();
  j["e_rpa"] = res.e_rpa;
  j["e_rpa_per_atom"] = res.e_rpa_per_atom;
  j["converged"] = res.converged;
  j["degraded"] = res.degraded;
  j["total_seconds"] = res.total_seconds;
  Json per_omega = Json::array();
  for (const rpa::OmegaRecord& rec : res.per_omega)
    per_omega.push_back(to_json(rec));
  j["per_omega"] = std::move(per_omega);
  j["sternheimer"] = to_json(res.stern);
  j["timers"] = to_json(res.timers);
  j["events"] = to_json(res.events);
  return j;
}

Json to_json(const par::KernelBreakdown& k) {
  Json j = Json::object();
  j["nu_chi0"] = k.nu_chi0;
  j["matmult"] = k.matmult;
  j["eigensolve"] = k.eigensolve;
  j["eval_error"] = k.eval_error;
  j["total"] = k.total();
  return j;
}

Json to_json(const par::ParallelRpaResult& res) {
  Json j = Json::object();
  j["n_ranks"] = res.n_ranks;
  j["rpa"] = to_json(res.rpa);
  j["modeled"] = to_json(res.modeled);
  j["modeled_total_seconds"] = res.modeled_total_seconds;
  j["apply_work_seconds"] = res.apply_work_seconds;
  j["sched"] = to_json(res.sched_stats);

  // Per-rank measured seconds, plus each rank's timers merged into the
  // bucket convention of the serial driver so rank rows and the Fig. 5
  // breakdown share names.
  Json ranks = Json::array();
  for (std::size_t r = 0; r < res.n_ranks; ++r) {
    KernelTimers rank_timers;
    if (r < res.rank_apply_seconds.size())
      rank_timers.add(rpa::kernels::kNuChi0, res.rank_apply_seconds[r]);
    if (r < res.rank_error_seconds.size())
      rank_timers.add(rpa::kernels::kEvalError, res.rank_error_seconds[r]);
    Json rj = Json::object();
    rj["rank"] = r;
    rj["timers"] = to_json(rank_timers);
    ranks.push_back(std::move(rj));
  }
  j["ranks"] = std::move(ranks);
  return j;
}

Json to_json(const direct::DirectRpaResult& res) {
  Json j = Json::object();
  j["e_rpa"] = res.e_rpa;
  j["e_rpa_per_atom"] = res.e_rpa_per_atom;
  j["converged"] = true;  // the dense route has no iterative tolerance
  j["total_seconds"] = res.total_seconds;
  j["diagonalization_seconds"] = res.diagonalization_seconds;
  Json terms = Json::array();
  for (double e : res.e_terms) terms.push_back(e);
  j["e_terms"] = std::move(terms);
  return j;
}

Json to_json(const rpa::SlqOmegaRecord& rec) {
  Json j = Json::object();
  j["omega"] = rec.omega;
  j["weight"] = rec.weight;
  j["e_term"] = rec.e_term;
  j["n_probes"] = rec.n_probes;
  j["lanczos_steps"] = rec.lanczos_steps;
  j["probe_stddev"] = rec.probe_stddev;
  j["matvec_columns"] = rec.matvec_columns;
  j["seconds"] = rec.seconds;
  return j;
}

Json to_json(const rpa::SlqRpaResult& res) {
  Json j = Json::object();
  j["e_rpa"] = res.e_rpa;
  j["e_rpa_per_atom"] = res.e_rpa_per_atom;
  j["converged"] = true;  // stochastic: accuracy lives in probe_stddev
  j["total_seconds"] = res.total_seconds;
  j["matvec_columns"] = res.matvec_columns;
  Json per_omega = Json::array();
  for (const rpa::SlqOmegaRecord& rec : res.per_omega)
    per_omega.push_back(to_json(rec));
  j["per_omega"] = std::move(per_omega);
  j["events"] = to_json(res.events);
  return j;
}

Json to_json(const isdf::IsdfRpaResult& res) {
  Json j = Json::object();
  j["e_rpa"] = res.e_rpa;
  j["e_rpa_per_atom"] = res.e_rpa_per_atom;
  j["converged"] = res.converged;
  j["total_seconds"] = res.total_seconds;
  j["diagonalization_seconds"] = res.diagonalization_seconds;
  j["nip"] = res.nip;
  j["n_eig"] = res.n_eig;
  j["fit_ridge"] = res.fit_ridge;
  if (!res.r_diag.empty())
    j["r_decay"] = res.r_diag.back() / res.r_diag.front();
  Json points = Json::array();
  for (std::size_t p : res.points) points.push_back(static_cast<long>(p));
  j["points"] = std::move(points);
  Json per_omega = Json::array();
  for (const rpa::OmegaRecord& rec : res.per_omega)
    per_omega.push_back(to_json(rec));
  j["per_omega"] = std::move(per_omega);
  j["timers"] = to_json(res.timers);
  j["events"] = to_json(res.events);
  return j;
}

KernelTimers kernel_timers_from_json(const Json& j) {
  KernelTimers timers;
  for (const auto& [name, seconds] : j.as_object())
    timers.add(name, seconds.as_double());
  return timers;
}

rpa::SternheimerStats sternheimer_stats_from_json(const Json& j) {
  rpa::SternheimerStats stats;
  for (const auto& [size, count] : j.at("block_size_chunks").as_object())
    stats.block_size_chunks[std::stoi(size)] =
        static_cast<int>(count.as_int());
  stats.total_chunks = j.at("total_chunks").as_int();
  stats.matvec_columns = j.at("matvec_columns").as_int();
  if (const Json* b = j.find("matvec_bytes")) stats.matvec_bytes = b->as_double();
  if (const Json* f = j.find("matvec_flops")) stats.matvec_flops = f->as_double();
  stats.seconds = j.at("seconds").as_double();
  stats.all_converged = j.at("all_converged").as_bool();
  stats.restarts = j.at("restarts").as_int();
  stats.deflations = j.at("deflations").as_int();
  stats.solver_swaps = j.at("solver_swaps").as_int();
  stats.quarantined_columns = j.at("quarantined_columns").as_int();
  if (const Json* idx = j.find("quarantined_column_indices"))
    for (const Json& c : idx->as_array())
      stats.quarantined_column_indices.push_back(c.as_int());
  return stats;
}

rpa::OmegaRecord omega_record_from_json(const Json& j) {
  rpa::OmegaRecord rec;
  rec.omega = j.at("omega").as_double();
  rec.weight = j.at("weight").as_double();
  rec.e_term = j.at("e_term").as_double();
  rec.filter_iterations = static_cast<int>(j.at("filter_iterations").as_int());
  rec.error = j.at("error").as_double();
  rec.converged = j.at("converged").as_bool();
  rec.seconds = j.at("seconds").as_double();
  if (const Json* n = j.find("invalid_terms")) {
    rec.invalid_terms = static_cast<int>(n->as_int());
    rec.worst_mu = j.at("worst_mu").as_double();
  }
  if (const Json* q = j.find("quarantined_columns"))
    rec.quarantined_columns = q->as_int();
  if (const Json* idx = j.find("quarantined_column_indices"))
    for (const Json& c : idx->as_array())
      rec.quarantined_column_indices.push_back(c.as_int());
  if (const Json* b = j.find("matvec_bytes")) rec.matvec_bytes = b->as_double();
  if (const Json* f = j.find("matvec_flops")) rec.matvec_flops = f->as_double();
  for (const Json& mu : j.at("eigenvalues").as_array())
    rec.eigenvalues.push_back(mu.as_double());
  return rec;
}

RunReport::RunReport(std::string name) : name_(std::move(name)) {
  root_ = Json::object();
  root_["schema"] = kRunReportSchema;
  root_["name"] = name_;
}

}  // namespace rsrpa::obs
