#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rsrpa::obs {

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  RSRPA_REQUIRE_MSG(is_object(), "Json::operator[] on a non-object");
  Object& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj)
    if (k == key) return v;
  obj.emplace_back(key, Json());
  return obj.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_))
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* j = find(key);
  RSRPA_REQUIRE_MSG(j != nullptr, "Json: missing key " + key);
  return *j;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  RSRPA_REQUIRE_MSG(is_array(), "Json::push_back on a non-array");
  std::get<Array>(value_).push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_double(double v, std::string& out) {
  // JSON has no NaN/Inf literal; serialize them as null (the convention
  // the report schema documents for "not measured / undefined").
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  // Shortest round-trippable representation.
  auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
  // Ensure a double stays a double on re-parse (to_chars may print "42").
  if (out.find_first_of(".eE", out.size() - (res.ptr - buf)) ==
      std::string::npos)
    out += ".0";
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  // Recursive lambda over the variant.
  auto rec = [&](auto&& self, const Json& j, int depth) -> void {
    const auto pad = [&](int d) {
      if (indent >= 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(d * indent), ' ');
      }
    };
    if (j.is_null()) {
      out += "null";
    } else if (j.is_bool()) {
      out += j.as_bool() ? "true" : "false";
    } else if (j.is_int()) {
      out += std::to_string(j.as_int());
    } else if (j.is_double()) {
      dump_double(std::get<double>(j.value_), out);
    } else if (j.is_string()) {
      escape_string(j.as_string(), out);
    } else if (j.is_array()) {
      const Array& a = j.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out += ',';
        pad(depth + 1);
        self(self, a[i], depth + 1);
      }
      pad(depth);
      out += ']';
    } else {
      const Object& o = j.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) out += ',';
        pad(depth + 1);
        escape_string(o[i].first, out);
        out += indent >= 0 ? ": " : ":";
        self(self, o[i].second, depth + 1);
      }
      pad(depth);
      out += '}';
    }
  };
  rec(rec, *this, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json j = parse_value();
    skip_ws();
    RSRPA_REQUIRE_MSG(pos_ == s_.size(),
                      "JSON: trailing garbage at offset " +
                          std::to_string(pos_));
    return j;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode as UTF-8 (BMP only; reports only emit ASCII + \u00xx).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const char* first = s_.data() + start;
    const char* last = s_.data() + pos_;
    if (!is_double) {
      std::int64_t v = 0;
      auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc() && ptr == last) return Json(v);
      // Integer overflow: fall through to double.
    }
    double d = 0.0;
    auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) fail("malformed number");
    return Json(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

void write_json_file(const std::string& path, const Json& j) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  RSRPA_REQUIRE_MSG(out.good(), "cannot open " + path + " for writing");
  out << j.dump(2) << '\n';
  RSRPA_REQUIRE_MSG(out.good(), "failed writing " + path);
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  RSRPA_REQUIRE_MSG(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace rsrpa::obs
