#include "svc/driver.hpp"

#include "direct/direct_rpa.hpp"
#include "isdf/erpa_isdf.hpp"
#include "rpa/erpa.hpp"
#include "rpa/erpa_slq.hpp"
#include "rpa/quadrature.hpp"

namespace rsrpa::svc {

DriverRun run_driver(const JobSpec& spec, const rpa::BuiltSystem& sys,
                     const rpa::RpaOptions& stern_opts,
                     rpa::RunControl* control) {
  DriverRun out;
  out.method = spec.method;

  switch (spec.method) {
    case Method::kSternheimer: {
      out.rpa = rpa::compute_rpa_energy(sys.ks, *sys.klap, stern_opts);
      out.has_rpa = true;
      out.e_rpa = out.rpa.e_rpa;
      out.e_rpa_per_atom = out.rpa.e_rpa_per_atom;
      out.converged = out.rpa.converged;
      out.degraded = out.rpa.degraded;
      out.total_seconds = out.rpa.total_seconds;
      for (const rpa::OmegaRecord& rec : out.rpa.per_omega)
        out.per_omega.push_back(
            {rec.omega, rec.weight, rec.e_term, rec.converged, rec.seconds});
      out.report = obs::to_json(out.rpa);
      break;
    }
    case Method::kDirect: {
      direct::DirectRpaResult res = direct::compute_direct_rpa(
          *sys.ks.h, sys.ks.n_occ(), *sys.klap, stern_opts.ell,
          /*keep_spectra=*/false, spec.direct_n_keep, control);
      out.e_rpa = res.e_rpa;
      out.e_rpa_per_atom = res.e_rpa_per_atom;
      out.total_seconds = res.total_seconds;
      const auto quad = rpa::rpa_frequency_quadrature(stern_opts.ell);
      for (std::size_t k = 0; k < res.e_terms.size(); ++k)
        out.per_omega.push_back(
            {quad[k].omega, quad[k].weight, res.e_terms[k], true, 0.0});
      out.report = obs::to_json(res);
      break;
    }
    case Method::kIsdf: {
      isdf::IsdfRpaOptions opts = spec.isdf;
      opts.control = control;
      isdf::IsdfRpaResult res =
          isdf::compute_rpa_energy_isdf(sys.ks, *sys.klap, opts);
      out.e_rpa = res.e_rpa;
      out.e_rpa_per_atom = res.e_rpa_per_atom;
      out.converged = res.converged;
      out.total_seconds = res.total_seconds;
      for (const rpa::OmegaRecord& rec : res.per_omega)
        out.per_omega.push_back(
            {rec.omega, rec.weight, rec.e_term, rec.converged, rec.seconds});
      out.report = obs::to_json(res);
      break;
    }
    case Method::kSlq: {
      rpa::SlqRpaOptions opts = spec.slq;
      opts.control = control;
      rpa::SlqRpaResult res =
          rpa::compute_rpa_energy_slq(sys.ks, *sys.klap, opts);
      out.e_rpa = res.e_rpa;
      out.e_rpa_per_atom = res.e_rpa_per_atom;
      out.total_seconds = res.total_seconds;
      for (const rpa::SlqOmegaRecord& rec : res.per_omega)
        out.per_omega.push_back(
            {rec.omega, rec.weight, rec.e_term, true, rec.seconds});
      out.report = obs::to_json(res);
      break;
    }
  }
  return out;
}

}  // namespace rsrpa::svc
