// Job descriptions for the multi-tenant RPA job service.
//
// A job is one `.rpa` config (common/config.hpp — the same artifact
// key-value format rpacalc reads) mapped onto a SystemPreset + RpaOptions
// pair, plus the backend selector and the service-level keys:
//
//   METHOD       sternheimer | direct | isdf | slq        (default sternheimer)
//                which of the four E_RPA drivers runs this job; see
//                DESIGN.md "Choosing a backend"
//   DIRECT_FULL_TRACE  1 = direct sums the full spectrum (default, the
//                backend's historical meaning); 0 truncates to N_NUCHI_EIGS
//                for apples-to-apples comparisons
//   ISDF_NIP     explicit interpolation-point count (0 = from ISDF_C)
//   ISDF_C       nip = round(ISDF_C * n_occ) when ISDF_NIP is 0
//   ISDF_OVERSAMPLE  extra Gaussian sketch columns per side
//   ISDF_RIDGE   relative fit ridge (0 = only on Cholesky breakdown)
//   ISDF_SEED    point-selection RNG seed
//   ISDF_FULL_TRACE  1 = full compressed trace; 0 (default) truncates to
//                N_NUCHI_EIGS like the Sternheimer driver
//   SLQ_PROBES   Rademacher probes per frequency
//   SLQ_LANCZOS_STEPS  Lanczos iterations per probe
//   SLQ_SEED     probe RNG seed
//   PRIORITY     scheduling priority; higher runs first   (default 0)
//   THREADS      per-job task quota on the shared pool; 0 = uncapped
//                (sched::TaskQuotaScope semantics — a cap on in-flight
//                tasks, never a pool resize; bitwise-safe)
//   FUSED_APPLY  0 = reference multi-sweep apply, 1 = fused single-sweep;
//                unset inherits the process default (RSRPA_FUSED_APPLY)
//   TILE_Y       fused-sweep cache-block extents for this job's operator;
//   TILE_Z       unset/0 inherits RSRPA_TILE_Y / RSRPA_TILE_Z
//   DYNAMIC_BLOCK  1 = Algorithm 4 timing-driven block sizing (default);
//                  0 = fixed BLOCK_SIZE — required for bitwise-reproducible
//                  runs (the dynamic path keys off wall clock)
//   BLOCK_SIZE   Sternheimer block size when DYNAMIC_BLOCK is 0
//
// parse_job is the single .rpa -> options mapping in the tree: rpacalc
// and the job service both call it, so a config means the same thing run
// standalone or submitted to a server — which is what makes the soak
// bench's "every job matches its standalone run bitwise" check possible.
#pragma once

#include <string>

#include "common/config.hpp"
#include "isdf/erpa_isdf.hpp"
#include "rpa/erpa_slq.hpp"
#include "rpa/presets.hpp"

namespace rsrpa::svc {

/// The four E_RPA backends selectable per job (METHOD key / rpacalc).
enum class Method { kSternheimer, kDirect, kIsdf, kSlq };

/// Parse "sternheimer" | "direct" | "isdf" | "slq" (case-sensitive).
/// Throws Error on anything else.
Method method_from_string(const std::string& s);
/// The inverse: the canonical lowercase name.
const char* method_name(Method m);

struct JobSpec {
  rpa::SystemPreset preset;
  rpa::RpaOptions options;     ///< fully resolved (n_eig filled from preset)
  Method method = Method::kSternheimer;
  /// Resolved backend options for the non-Sternheimer methods. ell /
  /// n_eig / Sternheimer sub-options are kept in lockstep with `options`
  /// by parse_job so every backend answers the same physical question.
  rpa::SlqRpaOptions slq;
  isdf::IsdfRpaOptions isdf;
  std::size_t direct_n_keep = 0;  ///< 0 = full trace (DIRECT_FULL_TRACE 1)
  int priority = 0;            ///< higher = scheduled first
  int quota = 0;               ///< per-job task quota; 0 = uncapped
  std::string checkpoint;      ///< CHECKPOINT key; the service overrides
  bool resume = false;         ///< RESUME key
};

/// Map a parsed .rpa config onto a JobSpec. Defaults mirror
/// BuiltSystem::default_rpa_options so an empty config reproduces the
/// preset run exactly. Throws Error on malformed values (e.g. an unknown
/// FAULT_MODE) — validation happens here, before any system is built.
JobSpec parse_job(const Config& cfg);

/// Convenience: parse the .rpa file at `path`. Throws Error if unreadable.
JobSpec parse_job_file(const std::string& path);

}  // namespace rsrpa::svc
