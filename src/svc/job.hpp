// Job descriptions for the multi-tenant RPA job service.
//
// A job is one `.rpa` config (common/config.hpp — the same artifact
// key-value format rpacalc reads) mapped onto a SystemPreset + RpaOptions
// pair, plus the service-level keys that rpacalc ignores:
//
//   PRIORITY     scheduling priority; higher runs first   (default 0)
//   THREADS      per-job task quota on the shared pool; 0 = uncapped
//                (sched::TaskQuotaScope semantics — a cap on in-flight
//                tasks, never a pool resize; bitwise-safe)
//   FUSED_APPLY  0 = reference multi-sweep apply, 1 = fused single-sweep;
//                unset inherits the process default (RSRPA_FUSED_APPLY)
//   TILE_Y       fused-sweep cache-block extents for this job's operator;
//   TILE_Z       unset/0 inherits RSRPA_TILE_Y / RSRPA_TILE_Z
//   DYNAMIC_BLOCK  1 = Algorithm 4 timing-driven block sizing (default);
//                  0 = fixed BLOCK_SIZE — required for bitwise-reproducible
//                  runs (the dynamic path keys off wall clock)
//   BLOCK_SIZE   Sternheimer block size when DYNAMIC_BLOCK is 0
//
// parse_job is the single .rpa -> options mapping in the tree: rpacalc
// and the job service both call it, so a config means the same thing run
// standalone or submitted to a server — which is what makes the soak
// bench's "every job matches its standalone run bitwise" check possible.
#pragma once

#include <string>

#include "common/config.hpp"
#include "rpa/presets.hpp"

namespace rsrpa::svc {

struct JobSpec {
  rpa::SystemPreset preset;
  rpa::RpaOptions options;     ///< fully resolved (n_eig filled from preset)
  int priority = 0;            ///< higher = scheduled first
  int quota = 0;               ///< per-job task quota; 0 = uncapped
  std::string checkpoint;      ///< CHECKPOINT key; the service overrides
  bool resume = false;         ///< RESUME key
};

/// Map a parsed .rpa config onto a JobSpec. Defaults mirror
/// BuiltSystem::default_rpa_options so an empty config reproduces the
/// preset run exactly. Throws Error on malformed values (e.g. an unknown
/// FAULT_MODE) — validation happens here, before any system is built.
JobSpec parse_job(const Config& cfg);

/// Convenience: parse the .rpa file at `path`. Throws Error if unreadable.
JobSpec parse_job_file(const std::string& path);

}  // namespace rsrpa::svc
