#include "svc/service.hpp"

#include <algorithm>
#include <filesystem>

#include "obs/run_report.hpp"
#include "sched/thread_pool.hpp"
#include "svc/driver.hpp"

namespace fs = std::filesystem;

namespace rsrpa::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// pending_ order: strict priority first, FIFO (arrival seq) within one.
bool ahead(int pa, long sa, int pb, long sb) {
  if (pa != pb) return pa > pb;
  return sa < sb;
}

}  // namespace

JobService::JobService(ServiceOptions opts)
    : opts_(std::move(opts)), spool_(opts_.root) {
  RSRPA_REQUIRE_MSG(opts_.slots >= 1, "JobService needs at least one slot");
  RSRPA_REQUIRE_MSG(opts_.poll_ms >= 1, "poll_ms must be >= 1");

  // Crash recovery: a previous daemon's non-terminal jobs go back in the
  // queue, keeping their arrival order and counters. Runs that had
  // started resume from their per-point checkpoint; status.json is
  // atomic, so whatever state we read here is a state the old daemon
  // actually reached.
  std::vector<Job*> recovered;
  for (const std::string& id : spool_.list_jobs()) {
    if (!fs::exists(spool_.job_file(id))) continue;
    JobStatus st;
    if (spool_.has_status(id)) {
      st = spool_.read_status(id);
      if (st.state == JobState::kDone || st.state == JobState::kFailed ||
          st.state == JobState::kCancelled)
        continue;
    } else {
      // Crash between job-dir creation and the first status write: treat
      // as a fresh submission.
      st.id = id;
    }
    auto job = std::make_unique<Job>();
    job->status = st;
    try {
      job->spec = parse_job_file(spool_.job_file(id));
    } catch (const std::exception& e) {
      job->status.state = JobState::kFailed;
      job->status.error = e.what();
      spool_.write_status(job->status);
      jobs_.push_back(std::move(job));
      continue;
    }
    job->status.state = JobState::kQueued;
    job->status.priority = job->spec.priority;
    job->status.quota =
        job->spec.quota > 0 ? job->spec.quota : opts_.default_quota;
    job->enqueued_at = Clock::now();
    next_seq_ = std::max(next_seq_, job->status.seq + 1);
    spool_.write_status(job->status);
    recovered.push_back(job.get());
    jobs_.push_back(std::move(job));
  }
  std::sort(recovered.begin(), recovered.end(), [](Job* a, Job* b) {
    return ahead(a->status.priority, a->status.seq, b->status.priority,
                 b->status.seq);
  });
  pending_ = std::move(recovered);

  dispatcher_ = std::thread(&JobService::dispatcher_loop, this);
}

JobService::~JobService() { shutdown(true); }

std::string JobService::submit(const std::string& name,
                               const std::string& rpa_text) {
  std::unique_lock<std::mutex> lk(mu_);
  const std::string id = spool_.create_job(name, rpa_text);
  ingest_locked({id});
  cv_.notify_all();
  return id;
}

void JobService::cancel(const std::string& id) {
  std::unique_lock<std::mutex> lk(mu_);
  Job* job = find_locked(id);
  RSRPA_REQUIRE_MSG(job != nullptr, "cancel: unknown job " + id);
  if (job->status.state == JobState::kRunning) {
    job->control.request_cancel();
    return;
  }
  auto it = std::find(pending_.begin(), pending_.end(), job);
  if (it != pending_.end()) {
    pending_.erase(it);
    job->status.state = JobState::kCancelled;
    spool_.write_status(job->status);
    cv_.notify_all();
  }
}

void JobService::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return idle_locked(); });
}

void JobService::shutdown(bool preempt_running) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    stop_ = true;
    if (preempt_running)
      for (const std::unique_ptr<Job>& job : jobs_)
        if (job->status.state == JobState::kRunning) {
          job->preempt_requested = true;
          job->control.request_preempt();
        }
    cv_.notify_all();
  }
  dispatcher_.join();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return running_ == 0; });
  reap_locked();
  // Still-queued jobs stay `queued` in the spool: the next daemon on this
  // root picks them up.
  pending_.clear();
}

JobStatus JobService::status(const std::string& id) const {
  std::unique_lock<std::mutex> lk(mu_);
  const Job* job = find_locked(id);
  RSRPA_REQUIRE_MSG(job != nullptr, "status: unknown job " + id);
  return job->status;
}

std::vector<std::string> JobService::job_ids() const {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<std::string> ids;
  ids.reserve(jobs_.size());
  for (const std::unique_ptr<Job>& job : jobs_) ids.push_back(job->status.id);
  return ids;
}

int JobService::preemption_count() const {
  std::unique_lock<std::mutex> lk(mu_);
  return preemptions_total_;
}

void JobService::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    reap_locked();
    try {
      ingest_locked(spool_.poll_inbox());
    } catch (const std::exception&) {
      // A transient filesystem error while polling must not kill the
      // daemon; the next tick retries.
    }
    check_cancels_locked();
    schedule_locked();
    cv_.wait_for(lk, std::chrono::milliseconds(opts_.poll_ms));
  }
}

void JobService::reap_locked() {
  for (const std::unique_ptr<Job>& job : jobs_)
    if (job->thread_done && job->runner.joinable()) {
      job->runner.join();
      job->thread_done = false;
    }
}

void JobService::ingest_locked(const std::vector<std::string>& ids) {
  for (const std::string& id : ids) {
    auto job = std::make_unique<Job>();
    job->status.id = id;
    job->status.seq = next_seq_++;
    try {
      job->spec = parse_job_file(spool_.job_file(id));
    } catch (const std::exception& e) {
      job->status.state = JobState::kFailed;
      job->status.error = e.what();
      spool_.write_status(job->status);
      jobs_.push_back(std::move(job));
      continue;
    }
    job->status.state = JobState::kQueued;
    job->status.priority = job->spec.priority;
    job->status.quota =
        job->spec.quota > 0 ? job->spec.quota : opts_.default_quota;
    job->enqueued_at = Clock::now();
    spool_.write_status(job->status);
    Job* raw = job.get();
    jobs_.push_back(std::move(job));
    auto it = std::upper_bound(
        pending_.begin(), pending_.end(), raw, [](Job* a, Job* b) {
          return ahead(a->status.priority, a->status.seq,
                       b->status.priority, b->status.seq);
        });
    pending_.insert(it, raw);
  }
}

void JobService::check_cancels_locked() {
  for (const std::unique_ptr<Job>& up : jobs_) {
    Job* job = up.get();
    const JobState s = job->status.state;
    if (s == JobState::kDone || s == JobState::kFailed ||
        s == JobState::kCancelled)
      continue;
    if (!spool_.cancel_requested(job->status.id)) continue;
    if (s == JobState::kRunning) {
      job->control.request_cancel();
      continue;
    }
    auto it = std::find(pending_.begin(), pending_.end(), job);
    if (it != pending_.end()) {
      pending_.erase(it);
      job->status.state = JobState::kCancelled;
      spool_.write_status(job->status);
      cv_.notify_all();
    }
  }
}

void JobService::schedule_locked() {
  while (running_ < opts_.slots && !pending_.empty()) {
    Job* job = pending_.front();
    pending_.erase(pending_.begin());
    start_job_locked(*job);
  }
  if (pending_.empty()) return;

  // Every slot is busy and work is waiting: if the head of the queue
  // strictly outranks a running job, ask the lowest-ranked runner to
  // yield. The request lands at its next quadrature-point boundary — the
  // previous point's checkpoint is already durable there, so the victim
  // re-queues at zero lost work beyond the in-flight point.
  Job* head = pending_.front();
  Job* victim = nullptr;
  for (const std::unique_ptr<Job>& up : jobs_) {
    Job* job = up.get();
    if (job->status.state != JobState::kRunning || job->preempt_requested)
      continue;
    if (job->status.priority >= head->status.priority) continue;
    if (victim == nullptr || job->status.priority < victim->status.priority ||
        (job->status.priority == victim->status.priority &&
         job->status.seq > victim->status.seq))
      victim = job;
  }
  if (victim != nullptr) {
    victim->preempt_requested = true;
    victim->control.request_preempt();
  }
}

void JobService::start_job_locked(Job& job) {
  if (job.runner.joinable()) job.runner.join();  // a previous preempted run
  job.thread_done = false;
  job.preempt_requested = false;
  job.control.reset();
  job.status.state = JobState::kRunning;
  job.status.queue_seconds += seconds_since(job.enqueued_at);
  if (fs::exists(spool_.checkpoint_file(job.status.id))) ++job.status.resumes;
  spool_.write_status(job.status);
  ++running_;
  job.runner = std::thread(&JobService::run_job, this, std::ref(job));
}

void JobService::run_job(Job& job) {
  // Only spec and the immutable status fields (id, quota) are touched
  // without the lock; every mutable status field is written under mu_ in
  // the final block below.
  const Clock::time_point t0 = Clock::now();
  JobState final_state = JobState::kFailed;
  std::string error;
  DriverRun res;
  bool have_result = false;

  try {
    rpa::BuiltSystem sys = rpa::build_system(job.spec.preset);
    rpa::RpaOptions opts = job.spec.options;
    obs::EventLog ck_events;
    // Checkpoint/resume is a Sternheimer capability; the other backends
    // ignore these fields and a preempted non-Sternheimer job simply
    // restarts from scratch when re-scheduled (see svc/driver.hpp).
    opts.checkpoint.path = spool_.checkpoint_file(job.status.id);
    opts.checkpoint.resume = true;  // missing file starts fresh
    opts.checkpoint.events = &ck_events;
    opts.control = &job.control;
    // The job's share of the process-wide pool: a cap on in-flight tasks
    // inside every parallel region of this run. Captured by each
    // TaskGroup the run creates, so it follows the work, not the thread.
    sched::TaskQuotaScope quota(job.status.quota);
    res = run_driver(job.spec, sys, opts, &job.control);
    have_result = true;
    final_state = JobState::kDone;
  } catch (const rpa::RunPreempted&) {
    final_state = JobState::kPreempted;
  } catch (const rpa::RunCancelled&) {
    final_state = JobState::kCancelled;
  } catch (const std::exception& e) {
    error = e.what();
  }

  // The result endpoint: the same structured run report rpacalc-style
  // standalone runs produce, written before `done` becomes visible. The
  // Sternheimer payload keeps its historical "rpa" key; every method also
  // writes under its own name plus a "method" tag.
  if (have_result) {
    obs::RunReport report(job.status.id);
    report.set("method", method_name(res.method));
    if (res.method == Method::kSternheimer)
      report.set("rpa", res.report);
    else
      report.set(method_name(res.method), res.report);
    report.write(spool_.report_file(job.status.id));
  }

  const double run_secs = seconds_since(t0);
  std::unique_lock<std::mutex> lk(mu_);
  job.status.run_seconds += run_secs;
  job.status.state = final_state;
  if (final_state == JobState::kPreempted) {
    ++job.status.preemptions;
    ++preemptions_total_;
    job.enqueued_at = Clock::now();
    auto it = std::upper_bound(
        pending_.begin(), pending_.end(), &job, [](Job* a, Job* b) {
          return ahead(a->status.priority, a->status.seq,
                       b->status.priority, b->status.seq);
        });
    pending_.insert(it, &job);
  } else if (final_state == JobState::kDone) {
    job.status.e_rpa = res.e_rpa;
    job.status.converged = res.converged;
    job.status.degraded = res.degraded;
  } else if (final_state == JobState::kFailed) {
    job.status.error = error;
  }
  spool_.write_status(job.status);
  --running_;
  job.thread_done = true;
  cv_.notify_all();
}

bool JobService::idle_locked() const {
  return pending_.empty() && running_ == 0;
}

JobService::Job* JobService::find_locked(const std::string& id) const {
  for (const std::unique_ptr<Job>& job : jobs_)
    if (job->status.id == id) return job.get();
  return nullptr;
}

}  // namespace rsrpa::svc
