// One entry point, four backends.
//
// run_driver maps a JobSpec's METHOD onto the matching E_RPA driver and
// normalizes the four result shapes into a DriverRun: the shared scalars
// every caller needs (energy, convergence, timing), uniform per-omega
// rows for printing, and the backend's full structured run-report payload
// (obs::to_json of the native result). rpacalc and the job service both
// dispatch through here, so a config means the same thing standalone or
// submitted to a server — the PR-6 contract, extended to all methods.
//
// Checkpoint/resume is a Sternheimer-only capability: the other backends
// recompute from scratch, so service preemption of a non-Sternheimer job
// re-queues it at zero saved work (documented in DESIGN.md "Preemption
// boundaries"). All four backends poll RunControl at quadrature-point
// boundaries, so cancel/preempt latency is one point for every method.
#pragma once

#include "obs/run_report.hpp"
#include "rpa/presets.hpp"
#include "svc/job.hpp"

namespace rsrpa::svc {

/// One quadrature point, backend-agnostic.
struct DriverOmegaRow {
  double omega = 0.0;
  double weight = 0.0;
  double e_term = 0.0;
  bool converged = true;
  double seconds = 0.0;
};

struct DriverRun {
  Method method = Method::kSternheimer;
  double e_rpa = 0.0;
  double e_rpa_per_atom = 0.0;
  bool converged = true;
  bool degraded = false;  ///< Sternheimer quarantine; false elsewhere
  double total_seconds = 0.0;
  std::vector<DriverOmegaRow> per_omega;
  /// The backend's native run-report payload (obs::to_json of its result
  /// struct). Written under the method-name key of the report file.
  obs::Json report;
  /// The full Sternheimer result (method == kSternheimer only; the other
  /// backends' extras live in `report`).
  rpa::RpaResult rpa;
  bool has_rpa = false;
};

/// Run spec.method on the built system. `stern_opts` is the fully
/// resolved Sternheimer option set (checkpoint/control wired by the
/// caller); the non-Sternheimer backends take their options from `spec`
/// with `control` injected. Propagates RunCancelled/RunPreempted.
DriverRun run_driver(const JobSpec& spec, const rpa::BuiltSystem& sys,
                     const rpa::RpaOptions& stern_opts,
                     rpa::RunControl* control);

}  // namespace rsrpa::svc
