// The job service's on-disk state: a filesystem inbox plus one spool
// directory per job. Everything the daemon knows survives a crash here.
//
//   <root>/inbox/<name>.rpa          submission: drop a config, it runs
//   <root>/jobs/<id>/job.rpa         the config, moved out of the inbox
//   <root>/jobs/<id>/status.json     rsrpa.svc_status/1 (atomic replace)
//   <root>/jobs/<id>/checkpoint.ckpt io::RunCheckpoint, written after
//                                    every quadrature point — the
//                                    suspend/resume primitive behind
//                                    preemption AND daemon crash recovery
//   <root>/jobs/<id>/report.json     obs::RunReport of the finished run
//   <root>/jobs/<id>/cancel          marker: polled cooperative cancel
//
// status.json is the service's only source of truth about a job's
// lifecycle; it is written with io::atomic_write so a crash can never
// leave a torn status, and a restarted daemon re-queues every job whose
// state is not terminal (done/failed/cancelled) — resume picks runs back
// up from their checkpoints.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace rsrpa::svc {

inline constexpr const char* kStatusSchema = "rsrpa.svc_status/1";

/// Lifecycle states. queued/running/preempted are live (a restarted
/// daemon re-queues them); done/failed/cancelled are terminal.
enum class JobState { kQueued, kRunning, kPreempted, kDone, kFailed,
                      kCancelled };

const char* to_string(JobState s);
JobState job_state_from_string(const std::string& s);

/// The status.json payload. Counters accumulate across preemptions and
/// daemon restarts; timing fields are informational (wall-clock, not part
/// of any bitwise contract).
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  int priority = 0;
  int quota = 0;            ///< per-job task quota (0 = uncapped)
  long seq = 0;             ///< arrival order; FIFO tiebreak within priority
  int preemptions = 0;      ///< times suspended at a quadrature boundary
  int resumes = 0;          ///< times (re)started from an existing checkpoint
  double queue_seconds = 0.0;  ///< total time spent waiting for a slot
  double run_seconds = 0.0;    ///< total time spent computing
  double e_rpa = 0.0;          ///< valid when state == done
  bool converged = false;
  bool degraded = false;
  std::string error;           ///< valid when state == failed
};

obs::Json to_json(const JobStatus& st);
JobStatus job_status_from_json(const obs::Json& j);

/// Filesystem layout manager. Construction creates <root>/inbox and
/// <root>/jobs. All methods are const w.r.t. in-memory state; the
/// interesting mutations happen on disk. Not internally synchronized —
/// the service serializes access under its own lock.
class Spool {
 public:
  explicit Spool(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] std::string inbox_dir() const;
  [[nodiscard]] std::string job_dir(const std::string& id) const;
  [[nodiscard]] std::string job_file(const std::string& id) const;
  [[nodiscard]] std::string status_file(const std::string& id) const;
  [[nodiscard]] std::string checkpoint_file(const std::string& id) const;
  [[nodiscard]] std::string report_file(const std::string& id) const;
  [[nodiscard]] std::string cancel_file(const std::string& id) const;

  /// Move every inbox/*.rpa into a fresh job directory (id = file stem,
  /// uniquified with -2, -3, ... on collision). Returns the new ids in
  /// lexicographic inbox order. Files still being written are the
  /// submitter's problem: rename within one filesystem is atomic, so the
  /// convention is to write elsewhere and rename into the inbox.
  std::vector<std::string> poll_inbox();

  /// Create a job directly (tests/bench path: no inbox round-trip).
  /// Returns the uniquified id.
  std::string create_job(const std::string& name, const std::string& rpa_text);

  /// All job ids present under <root>/jobs, sorted.
  [[nodiscard]] std::vector<std::string> list_jobs() const;

  /// Atomic status replacement (tmp + fsync + rename).
  void write_status(const JobStatus& st) const;
  /// Throws Error when the file is missing or malformed.
  [[nodiscard]] JobStatus read_status(const std::string& id) const;
  [[nodiscard]] bool has_status(const std::string& id) const;

  [[nodiscard]] bool cancel_requested(const std::string& id) const;

 private:
  [[nodiscard]] std::string unique_id(const std::string& stem) const;
  std::string root_;
};

}  // namespace rsrpa::svc
