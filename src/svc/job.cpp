#include "svc/job.hpp"

namespace rsrpa::svc {

Method method_from_string(const std::string& s) {
  if (s == "sternheimer") return Method::kSternheimer;
  if (s == "direct") return Method::kDirect;
  if (s == "isdf") return Method::kIsdf;
  if (s == "slq") return Method::kSlq;
  throw Error("unknown METHOD '" + s +
              "' (expected sternheimer|direct|isdf|slq)");
}

const char* method_name(Method m) {
  switch (m) {
    case Method::kSternheimer: return "sternheimer";
    case Method::kDirect: return "direct";
    case Method::kIsdf: return "isdf";
    case Method::kSlq: return "slq";
  }
  return "sternheimer";
}

JobSpec parse_job(const Config& cfg) {
  JobSpec spec;

  // Validate method and fault mode before anything else: a typo in the
  // config should fail in milliseconds, not after a system build.
  spec.method = method_from_string(
      cfg.has("METHOD") ? cfg.get_string("METHOD") : "sternheimer");
  const solver::FaultMode fault_mode = solver::fault_mode_from_string(
      cfg.has("FAULT_MODE") ? cfg.get_string("FAULT_MODE") : "none");

  rpa::SystemPreset& preset = spec.preset;
  preset.ncells = static_cast<std::size_t>(cfg.get_int_or("N_CELLS", 1));
  preset.name = "Si" + std::to_string(8 * preset.ncells);
  preset.grid_per_cell =
      static_cast<std::size_t>(cfg.get_int_or("GRID_PER_CELL", 11));
  if (cfg.has("N_EIG_PER_ATOM"))
    preset.n_eig_per_atom =
        static_cast<std::size_t>(cfg.get_int("N_EIG_PER_ATOM"));
  preset.fd_radius = cfg.get_int_or("FD_RADIUS", 4);
  preset.perturbation = cfg.get_double_or("PERTURBATION", 0.01);
  preset.seed = static_cast<std::uint64_t>(cfg.get_int_or("SEED", 7));
  // Per-job apply tuning (satellite of the multi-tenant work): resolved
  // per Hamiltonian instance in build_system, never latched process-wide.
  preset.fused_apply = cfg.get_int_or("FUSED_APPLY", -1);
  preset.tile_y = static_cast<std::size_t>(cfg.get_int_or("TILE_Y", 0));
  preset.tile_z = static_cast<std::size_t>(cfg.get_int_or("TILE_Z", 0));

  rpa::RpaOptions& opts = spec.options;
  // Keep in lockstep with BuiltSystem::default_rpa_options: same defaults,
  // but resolvable from the preset alone (no system build needed to know
  // what a job will do).
  opts.n_eig = preset.n_eig();
  opts.ell = 8;
  opts.stern.tol = 1e-2;
  opts.cheb_degree = 2;
  opts.max_filter_iter = 10;

  if (cfg.has("N_NUCHI_EIGS"))
    opts.n_eig = static_cast<std::size_t>(cfg.get_int("N_NUCHI_EIGS"));
  opts.ell = cfg.get_int_or("N_OMEGA", opts.ell);
  if (cfg.has("TOL_EIG")) opts.tol_eig = cfg.get_doubles("TOL_EIG");
  opts.stern.tol = cfg.get_double_or("TOL_STERN_RES", opts.stern.tol);
  opts.max_filter_iter =
      cfg.get_int_or("MAXIT_FILTERING", opts.max_filter_iter);
  opts.cheb_degree = cfg.get_int_or("CHEB_DEGREE_RPA", opts.cheb_degree);
  opts.stern.galerkin_guess = cfg.get_int_or("FLAG_COCGINITIAL", 1) != 0;
  // Algorithm 4 block sizing is wall-clock-driven; jobs that must be
  // bitwise reproducible (the soak bench's standalone-equality check) pin
  // DYNAMIC_BLOCK: 0 with a fixed BLOCK_SIZE.
  opts.stern.dynamic_block = cfg.get_int_or("DYNAMIC_BLOCK", 1) != 0;
  opts.stern.fixed_block =
      cfg.get_int_or("BLOCK_SIZE", opts.stern.fixed_block);

  // Failure semantics: recovery ladder, stagnation detection, and the
  // deterministic fault-injection harness (chaos drills / soak tests).
  opts.stern.resilience.enabled = cfg.get_int_or("RESILIENCE", 1) != 0;
  opts.stern.resilience.max_restarts = cfg.get_int_or("MAX_RESTARTS", 1);
  opts.stern.stagnation_window = cfg.get_int_or("STAGNATION_WINDOW", 0);
  opts.stern.stagnation_factor = cfg.get_double_or("STAGNATION_FACTOR", 0.99);
  opts.stern.fault.mode = fault_mode;
  opts.stern.fault.at_apply = cfg.get_int_or("FAULT_AT_APPLY", 1);
  opts.stern.fault.period = cfg.get_int_or("FAULT_PERIOD", 0);
  opts.stern.fault.max_faults = cfg.get_int_or("FAULT_MAX", 1);
  opts.stern.fault.magnitude = cfg.get_double_or("FAULT_MAGNITUDE", 1e-2);
  opts.stern.fault.orbital = cfg.get_int_or("FAULT_ORBITAL", -1);
  opts.fault_omega = cfg.get_int_or("FAULT_OMEGA", -1);
  if (cfg.has("FAULT_SEED"))
    opts.stern.fault.seed =
        static_cast<std::uint64_t>(cfg.get_int("FAULT_SEED"));

  // Backend-specific options, kept in lockstep with the resolved shared
  // knobs (ell, n_eig, Sternheimer sub-options) so METHOD only changes
  // the route to the trace, not the question being asked.
  spec.slq.ell = opts.ell;
  spec.slq.stern = opts.stern;
  spec.slq.n_probes = cfg.get_int_or("SLQ_PROBES", spec.slq.n_probes);
  spec.slq.lanczos_steps =
      cfg.get_int_or("SLQ_LANCZOS_STEPS", spec.slq.lanczos_steps);
  if (cfg.has("SLQ_SEED"))
    spec.slq.seed = static_cast<std::uint64_t>(cfg.get_int("SLQ_SEED"));
  RSRPA_REQUIRE_MSG(spec.slq.n_probes >= 1 && spec.slq.lanczos_steps >= 1,
                    "SLQ_PROBES and SLQ_LANCZOS_STEPS must be >= 1");

  spec.isdf.ell = opts.ell;
  spec.isdf.n_eig =
      cfg.get_int_or("ISDF_FULL_TRACE", 0) != 0 ? 0 : opts.n_eig;
  spec.isdf.nip = static_cast<std::size_t>(cfg.get_int_or("ISDF_NIP", 0));
  spec.isdf.c_nip = cfg.get_double_or("ISDF_C", spec.isdf.c_nip);
  spec.isdf.oversample = static_cast<std::size_t>(
      cfg.get_int_or("ISDF_OVERSAMPLE", static_cast<int>(spec.isdf.oversample)));
  spec.isdf.ridge = cfg.get_double_or("ISDF_RIDGE", spec.isdf.ridge);
  if (cfg.has("ISDF_SEED"))
    spec.isdf.seed = static_cast<std::uint64_t>(cfg.get_int("ISDF_SEED"));
  RSRPA_REQUIRE_MSG(spec.isdf.c_nip > 0.0, "ISDF_C must be > 0");
  RSRPA_REQUIRE_MSG(spec.isdf.ridge >= 0.0, "ISDF_RIDGE must be >= 0");

  spec.direct_n_keep =
      cfg.get_int_or("DIRECT_FULL_TRACE", 1) != 0 ? 0 : opts.n_eig;

  // Service-level keys. The checkpoint pair is advisory for rpacalc; the
  // job service always pins a job's checkpoint to its spool directory.
  spec.priority = cfg.get_int_or("PRIORITY", 0);
  spec.quota = cfg.get_int_or("THREADS", 0);
  RSRPA_REQUIRE_MSG(spec.quota >= 0, "THREADS must be >= 0");
  if (cfg.has("CHECKPOINT")) spec.checkpoint = cfg.get_string("CHECKPOINT");
  spec.resume = cfg.get_int_or("RESUME", 0) != 0;

  return spec;
}

JobSpec parse_job_file(const std::string& path) {
  return parse_job(Config::parse_file(path));
}

}  // namespace rsrpa::svc
