#include "svc/job.hpp"

namespace rsrpa::svc {

JobSpec parse_job(const Config& cfg) {
  JobSpec spec;

  // Validate the fault mode before anything else: a typo in a chaos-drill
  // config should fail in milliseconds, not after a system build.
  const solver::FaultMode fault_mode = solver::fault_mode_from_string(
      cfg.has("FAULT_MODE") ? cfg.get_string("FAULT_MODE") : "none");

  rpa::SystemPreset& preset = spec.preset;
  preset.ncells = static_cast<std::size_t>(cfg.get_int_or("N_CELLS", 1));
  preset.name = "Si" + std::to_string(8 * preset.ncells);
  preset.grid_per_cell =
      static_cast<std::size_t>(cfg.get_int_or("GRID_PER_CELL", 11));
  if (cfg.has("N_EIG_PER_ATOM"))
    preset.n_eig_per_atom =
        static_cast<std::size_t>(cfg.get_int("N_EIG_PER_ATOM"));
  preset.fd_radius = cfg.get_int_or("FD_RADIUS", 4);
  preset.perturbation = cfg.get_double_or("PERTURBATION", 0.01);
  preset.seed = static_cast<std::uint64_t>(cfg.get_int_or("SEED", 7));
  // Per-job apply tuning (satellite of the multi-tenant work): resolved
  // per Hamiltonian instance in build_system, never latched process-wide.
  preset.fused_apply = cfg.get_int_or("FUSED_APPLY", -1);
  preset.tile_y = static_cast<std::size_t>(cfg.get_int_or("TILE_Y", 0));
  preset.tile_z = static_cast<std::size_t>(cfg.get_int_or("TILE_Z", 0));

  rpa::RpaOptions& opts = spec.options;
  // Keep in lockstep with BuiltSystem::default_rpa_options: same defaults,
  // but resolvable from the preset alone (no system build needed to know
  // what a job will do).
  opts.n_eig = preset.n_eig();
  opts.ell = 8;
  opts.stern.tol = 1e-2;
  opts.cheb_degree = 2;
  opts.max_filter_iter = 10;

  if (cfg.has("N_NUCHI_EIGS"))
    opts.n_eig = static_cast<std::size_t>(cfg.get_int("N_NUCHI_EIGS"));
  opts.ell = cfg.get_int_or("N_OMEGA", opts.ell);
  if (cfg.has("TOL_EIG")) opts.tol_eig = cfg.get_doubles("TOL_EIG");
  opts.stern.tol = cfg.get_double_or("TOL_STERN_RES", opts.stern.tol);
  opts.max_filter_iter =
      cfg.get_int_or("MAXIT_FILTERING", opts.max_filter_iter);
  opts.cheb_degree = cfg.get_int_or("CHEB_DEGREE_RPA", opts.cheb_degree);
  opts.stern.galerkin_guess = cfg.get_int_or("FLAG_COCGINITIAL", 1) != 0;
  // Algorithm 4 block sizing is wall-clock-driven; jobs that must be
  // bitwise reproducible (the soak bench's standalone-equality check) pin
  // DYNAMIC_BLOCK: 0 with a fixed BLOCK_SIZE.
  opts.stern.dynamic_block = cfg.get_int_or("DYNAMIC_BLOCK", 1) != 0;
  opts.stern.fixed_block =
      cfg.get_int_or("BLOCK_SIZE", opts.stern.fixed_block);

  // Failure semantics: recovery ladder, stagnation detection, and the
  // deterministic fault-injection harness (chaos drills / soak tests).
  opts.stern.resilience.enabled = cfg.get_int_or("RESILIENCE", 1) != 0;
  opts.stern.resilience.max_restarts = cfg.get_int_or("MAX_RESTARTS", 1);
  opts.stern.stagnation_window = cfg.get_int_or("STAGNATION_WINDOW", 0);
  opts.stern.stagnation_factor = cfg.get_double_or("STAGNATION_FACTOR", 0.99);
  opts.stern.fault.mode = fault_mode;
  opts.stern.fault.at_apply = cfg.get_int_or("FAULT_AT_APPLY", 1);
  opts.stern.fault.period = cfg.get_int_or("FAULT_PERIOD", 0);
  opts.stern.fault.max_faults = cfg.get_int_or("FAULT_MAX", 1);
  opts.stern.fault.magnitude = cfg.get_double_or("FAULT_MAGNITUDE", 1e-2);
  opts.stern.fault.orbital = cfg.get_int_or("FAULT_ORBITAL", -1);
  opts.fault_omega = cfg.get_int_or("FAULT_OMEGA", -1);
  if (cfg.has("FAULT_SEED"))
    opts.stern.fault.seed =
        static_cast<std::uint64_t>(cfg.get_int("FAULT_SEED"));

  // Service-level keys. The checkpoint pair is advisory for rpacalc; the
  // job service always pins a job's checkpoint to its spool directory.
  spec.priority = cfg.get_int_or("PRIORITY", 0);
  spec.quota = cfg.get_int_or("THREADS", 0);
  RSRPA_REQUIRE_MSG(spec.quota >= 0, "THREADS must be >= 0");
  if (cfg.has("CHECKPOINT")) spec.checkpoint = cfg.get_string("CHECKPOINT");
  spec.resume = cfg.get_int_or("RESUME", 0) != 0;

  return spec;
}

JobSpec parse_job_file(const std::string& path) {
  return parse_job(Config::parse_file(path));
}

}  // namespace rsrpa::svc
