// JobService — the multi-tenant RPA job scheduler behind rpaserved.
//
// One service owns one Spool and runs jobs on the process-wide sched
// pool. Tenancy is cooperative, built from three primitives this PR's
// satellite fixes made safe to combine:
//
//   isolation    every job gets its own Hamiltonian/system with per-
//                instance apply tuning (grid/stencil.hpp) — no latched
//                process-global configuration to fight over;
//   fair share   sched::TaskQuotaScope caps how many tasks a job's
//                parallel regions keep in flight on the shared pool —
//                a throughput cap, not a pool resize, and bitwise-safe;
//   preemption   rpa::RunControl::request_preempt makes the run throw
//                RunPreempted at the next quadrature-point boundary,
//                where the previous point's io::RunCheckpoint is already
//                on disk; the job goes back in the queue and a later
//                slot resumes it bitwise-identically (PR 5 contract).
//
// Scheduling: strict priority, FIFO within a priority (arrival seq).
// When every slot is busy and a strictly higher-priority job waits, the
// dispatcher preempts the lowest-priority running job. Preemption is
// only requested — latency is up to one quadrature point, by design
// (see DESIGN.md: a quadrature boundary is the only consistent cut).
//
// Threads: one dispatcher (inbox/cancel polling, reaping, scheduling) +
// one runner thread per running job. Runner threads never join
// themselves: they flag completion and the dispatcher reaps them.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpa/erpa.hpp"
#include "svc/job.hpp"
#include "svc/spool.hpp"

namespace rsrpa::svc {

struct ServiceOptions {
  std::string root;      ///< spool root directory (required)
  int slots = 2;         ///< max concurrently running jobs
  int default_quota = 0; ///< task quota for jobs without THREADS; 0 = uncapped
  int poll_ms = 25;      ///< dispatcher poll period (inbox, cancel markers)
};

class JobService {
 public:
  /// Opens (or creates) the spool, re-queues every non-terminal job left
  /// by a previous daemon (crash recovery — their checkpoints resume),
  /// and starts the dispatcher.
  explicit JobService(ServiceOptions opts);
  /// shutdown(true) if the caller did not shut down explicitly.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Submit a config directly (no inbox round-trip); returns the job id.
  std::string submit(const std::string& name, const std::string& rpa_text);

  /// Cooperative cancel: a queued job is dropped immediately; a running
  /// job stops at its next quadrature-point boundary (state: cancelled,
  /// checkpoint kept, so a re-submitted copy could resume it).
  void cancel(const std::string& id);

  /// Block until no job is queued or running. Returns immediately when
  /// the service is already idle.
  void wait_idle();

  /// Stop the dispatcher and all runners. With `preempt_running`, running
  /// jobs are suspended at their next boundary and left in the spool as
  /// `preempted` — a new JobService on the same root resumes them;
  /// otherwise running jobs are allowed to finish. Idempotent.
  void shutdown(bool preempt_running = true);

  [[nodiscard]] Spool& spool() { return spool_; }
  /// Live status snapshot (from memory, not a status.json re-read).
  [[nodiscard]] JobStatus status(const std::string& id) const;
  [[nodiscard]] std::vector<std::string> job_ids() const;
  /// Total preemptions served since construction (soak telemetry).
  [[nodiscard]] int preemption_count() const;

 private:
  struct Job {
    JobSpec spec;
    JobStatus status;
    rpa::RunControl control;
    std::thread runner;
    bool thread_done = false;   ///< runner finished; safe to join
    bool preempt_requested = false;
    std::chrono::steady_clock::time_point enqueued_at{};
  };

  void dispatcher_loop();
  void reap_locked();
  void ingest_locked(const std::vector<std::string>& ids);
  void check_cancels_locked();
  void schedule_locked();
  void start_job_locked(Job& job);
  void run_job(Job& job);   ///< runner-thread body (takes the lock itself)
  [[nodiscard]] bool idle_locked() const;
  [[nodiscard]] Job* find_locked(const std::string& id) const;

  ServiceOptions opts_;
  Spool spool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// All jobs this service knows, by arrival. Stable addresses (unique_ptr)
  /// because runners hold their Job* across the unlocked compute.
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<Job*> pending_;   ///< queued, sorted (priority desc, seq asc)
  int running_ = 0;
  long next_seq_ = 0;
  int preemptions_total_ = 0;
  bool stop_ = false;
  bool shut_down_ = false;
  std::thread dispatcher_;
};

}  // namespace rsrpa::svc
