#include "svc/spool.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "io/snapshot.hpp"

namespace fs = std::filesystem;

namespace rsrpa::svc {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPreempted: return "preempted";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobState job_state_from_string(const std::string& s) {
  if (s == "queued") return JobState::kQueued;
  if (s == "running") return JobState::kRunning;
  if (s == "preempted") return JobState::kPreempted;
  if (s == "done") return JobState::kDone;
  if (s == "failed") return JobState::kFailed;
  if (s == "cancelled") return JobState::kCancelled;
  throw Error("unknown job state: " + s);
}

obs::Json to_json(const JobStatus& st) {
  obs::Json j = obs::Json::object();
  j["schema"] = kStatusSchema;
  j["id"] = st.id;
  j["state"] = to_string(st.state);
  j["priority"] = st.priority;
  j["quota"] = st.quota;
  j["seq"] = st.seq;
  j["preemptions"] = st.preemptions;
  j["resumes"] = st.resumes;
  j["queue_seconds"] = st.queue_seconds;
  j["run_seconds"] = st.run_seconds;
  j["e_rpa"] = st.e_rpa;
  j["converged"] = st.converged;
  j["degraded"] = st.degraded;
  j["error"] = st.error;
  return j;
}

JobStatus job_status_from_json(const obs::Json& j) {
  RSRPA_REQUIRE_MSG(j.at("schema").as_string() == kStatusSchema,
                    "unsupported job status schema: " +
                        j.at("schema").as_string());
  JobStatus st;
  st.id = j.at("id").as_string();
  st.state = job_state_from_string(j.at("state").as_string());
  st.priority = static_cast<int>(j.at("priority").as_int());
  st.quota = static_cast<int>(j.at("quota").as_int());
  st.seq = static_cast<long>(j.at("seq").as_int());
  st.preemptions = static_cast<int>(j.at("preemptions").as_int());
  st.resumes = static_cast<int>(j.at("resumes").as_int());
  st.queue_seconds = j.at("queue_seconds").as_double();
  st.run_seconds = j.at("run_seconds").as_double();
  st.e_rpa = j.at("e_rpa").as_double();
  st.converged = j.at("converged").as_bool();
  st.degraded = j.at("degraded").as_bool();
  st.error = j.at("error").as_string();
  return st;
}

Spool::Spool(std::string root) : root_(std::move(root)) {
  RSRPA_REQUIRE_MSG(!root_.empty(), "spool root must not be empty");
  std::error_code ec;
  fs::create_directories(inbox_dir(), ec);
  RSRPA_REQUIRE_MSG(!ec, "cannot create spool inbox: " + inbox_dir());
  fs::create_directories(root_ + "/jobs", ec);
  RSRPA_REQUIRE_MSG(!ec, "cannot create spool jobs dir: " + root_ + "/jobs");
}

std::string Spool::inbox_dir() const { return root_ + "/inbox"; }
std::string Spool::job_dir(const std::string& id) const {
  return root_ + "/jobs/" + id;
}
std::string Spool::job_file(const std::string& id) const {
  return job_dir(id) + "/job.rpa";
}
std::string Spool::status_file(const std::string& id) const {
  return job_dir(id) + "/status.json";
}
std::string Spool::checkpoint_file(const std::string& id) const {
  return job_dir(id) + "/checkpoint.ckpt";
}
std::string Spool::report_file(const std::string& id) const {
  return job_dir(id) + "/report.json";
}
std::string Spool::cancel_file(const std::string& id) const {
  return job_dir(id) + "/cancel";
}

std::string Spool::unique_id(const std::string& stem) const {
  std::string id = stem.empty() ? std::string("job") : stem;
  if (!fs::exists(job_dir(id))) return id;
  for (int n = 2;; ++n) {
    std::string candidate = id + "-" + std::to_string(n);
    if (!fs::exists(job_dir(candidate))) return candidate;
  }
}

std::vector<std::string> Spool::poll_inbox() {
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(inbox_dir()))
    if (e.is_regular_file() && e.path().extension() == ".rpa")
      files.push_back(e.path());
  std::sort(files.begin(), files.end());

  std::vector<std::string> ids;
  for (const fs::path& p : files) {
    const std::string id = unique_id(p.stem().string());
    std::error_code ec;
    fs::create_directories(job_dir(id), ec);
    RSRPA_REQUIRE_MSG(!ec, "cannot create job dir: " + job_dir(id));
    fs::rename(p, job_file(id), ec);
    RSRPA_REQUIRE_MSG(!ec, "cannot move " + p.string() + " into spool");
    ids.push_back(id);
  }
  return ids;
}

std::string Spool::create_job(const std::string& name,
                              const std::string& rpa_text) {
  const std::string id = unique_id(name);
  std::error_code ec;
  fs::create_directories(job_dir(id), ec);
  RSRPA_REQUIRE_MSG(!ec, "cannot create job dir: " + job_dir(id));
  io::atomic_write(job_file(id),
                   [&](std::ostream& out) { out << rpa_text; });
  return id;
}

std::vector<std::string> Spool::list_jobs() const {
  std::vector<std::string> ids;
  const fs::path jobs = root_ + "/jobs";
  for (const fs::directory_entry& e : fs::directory_iterator(jobs))
    if (e.is_directory()) ids.push_back(e.path().filename().string());
  std::sort(ids.begin(), ids.end());
  return ids;
}

void Spool::write_status(const JobStatus& st) const {
  const obs::Json j = to_json(st);
  io::atomic_write(status_file(st.id),
                   [&](std::ostream& out) { out << j.dump(2) << "\n"; });
}

JobStatus Spool::read_status(const std::string& id) const {
  return job_status_from_json(obs::read_json_file(status_file(id)));
}

bool Spool::has_status(const std::string& id) const {
  return fs::exists(status_file(id));
}

bool Spool::cancel_requested(const std::string& id) const {
  return fs::exists(cancel_file(id));
}

}  // namespace rsrpa::svc
