// Iterative Poisson solver used as an independent cross-check of the
// Kronecker spectral solver (and as the fast Poisson building block the
// paper's future-work preconditioner relies on). Solves
//
//   -Laplacian(phi) = 4*pi*rho,   mean(phi) = 0
//
// with conjugate gradients on the matrix-free stencil operator, projecting
// the constant null space out of the right-hand side and iterates.
#pragma once

#include <span>

#include "grid/stencil.hpp"

namespace rsrpa::poisson {

struct PoissonCgReport {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// CG solve of -L phi = 4*pi*rho. `rho` is mean-projected internally; the
/// returned potential has zero mean, matching the spectral solver's
/// pseudo-inverse convention.
PoissonCgReport solve_poisson_cg(const grid::StencilLaplacian& lap,
                                 std::span<const double> rho,
                                 std::span<double> phi, double tol = 1e-10,
                                 int max_iter = 2000);

}  // namespace rsrpa::poisson
