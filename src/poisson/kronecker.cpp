#include "poisson/kronecker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "grid/fd.hpp"
#include "la/eig.hpp"

namespace rsrpa::poisson {

namespace {

// Dense periodic 1D FD Laplacian of radius r on n points with spacing h.
la::Matrix<double> laplacian_1d(std::size_t n, double h, int radius) {
  const std::vector<double> c = grid::fd_coefficients(radius);
  la::Matrix<double> l(n, n);
  const double ih2 = 1.0 / (h * h);
  const long nn = static_cast<long>(n);
  for (long i = 0; i < nn; ++i) {
    for (long k = -radius; k <= radius; ++k) {
      const long j = ((i + k) % nn + nn) % nn;
      l(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) +=
          c[static_cast<std::size_t>(std::abs(k))] * ih2;
    }
  }
  return l;
}

// --- Mode transforms ----------------------------------------------------
// The grid function v uses index ix + nx*(iy + ny*iz). Each transform
// contracts one mode with Q or Q^T and streams the x-fastest layout.

void mode_x(const la::Matrix<double>& q, bool transpose,
            std::span<const double> in, std::span<double> out,
            std::size_t nx, std::size_t nyz) {
  // out[jx, c] = sum_ix Qhat(ix, jx) in[ix, c], Qhat = Q if transpose (Q^T
  // from the left) else Q^T... concretely: transpose=true applies Q^T.
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t c = 0; c < nyz; ++c) {
    const double* vin = in.data() + c * nx;
    double* vout = out.data() + c * nx;
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double v = vin[ix];
      if (transpose) {
        // vout[jx] += Q(ix, jx) * v  — row ix of Q
        for (std::size_t jx = 0; jx < nx; ++jx) vout[jx] += q(ix, jx) * v;
      } else {
        // vout[jx] += Q(jx, ix) * v — column ix of Q (contiguous)
        const double* qcol = &q(0, ix);
        for (std::size_t jx = 0; jx < nx; ++jx) vout[jx] += qcol[jx] * v;
      }
    }
  }
}

void mode_y(const la::Matrix<double>& q, bool transpose,
            std::span<const double> in, std::span<double> out, std::size_t nx,
            std::size_t ny, std::size_t nz) {
  // transpose=true: out[ix, jy, iz] = sum_iy Q(iy, jy) in[ix, iy, iz]
  // transpose=false: out[ix, jy, iz] = sum_iy Q(jy, iy) in[ix, iy, iz]
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    const std::size_t zoff = nx * ny * iz;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double* vin = in.data() + zoff + nx * iy;
      for (std::size_t jy = 0; jy < ny; ++jy) {
        const double qv = transpose ? q(iy, jy) : q(jy, iy);
        if (qv == 0.0) continue;
        double* vout = out.data() + zoff + nx * jy;
        for (std::size_t ix = 0; ix < nx; ++ix) vout[ix] += qv * vin[ix];
      }
    }
  }
}

void mode_z(const la::Matrix<double>& q, bool transpose,
            std::span<const double> in, std::span<double> out, std::size_t nxy,
            std::size_t nz) {
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    const double* vin = in.data() + nxy * iz;
    for (std::size_t jz = 0; jz < nz; ++jz) {
      const double qv = transpose ? q(iz, jz) : q(jz, iz);
      if (qv == 0.0) continue;
      double* vout = out.data() + nxy * jz;
      for (std::size_t i = 0; i < nxy; ++i) vout[i] += qv * vin[i];
    }
  }
}

}  // namespace

KroneckerLaplacian::KroneckerLaplacian(const grid::Grid3D& g, int radius)
    : grid_(g) {
  la::EigResult ex = la::sym_eig(laplacian_1d(g.nx(), g.hx(), radius));
  la::EigResult ey = la::sym_eig(laplacian_1d(g.ny(), g.hy(), radius));
  la::EigResult ez = la::sym_eig(laplacian_1d(g.nz(), g.hz(), radius));
  qx_ = std::move(ex.vectors);
  qy_ = std::move(ey.vectors);
  qz_ = std::move(ez.vectors);
  dx_ = std::move(ex.values);
  dy_ = std::move(ey.values);
  dz_ = std::move(ez.values);

  double lam_min = 0.0;  // most negative eigenvalue of L
  double nz_min = std::numeric_limits<double>::max();
  const double scale = std::abs(dx_.front()) + std::abs(dy_.front()) +
                       std::abs(dz_.front());
  zero_tol_ = 1e-10 * std::max(scale, 1.0);
  for (double a : dx_)
    for (double b : dy_)
      for (double c : dz_) {
        const double lam = a + b + c;
        lam_min = std::min(lam_min, lam);
        if (-lam > zero_tol_) nz_min = std::min(nz_min, -lam);
      }
  neg_max_ = -lam_min;
  neg_min_nz_ = nz_min;
}

void KroneckerLaplacian::forward(std::span<const double> in,
                                 std::span<double> out) const {
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  std::vector<double> t1(in.size()), t2(in.size());
  mode_x(qx_, /*transpose=*/true, in, t1, nx, ny * nz);
  mode_y(qy_, /*transpose=*/true, t1, t2, nx, ny, nz);
  mode_z(qz_, /*transpose=*/true, t2, out, nx * ny, nz);
}

void KroneckerLaplacian::backward(std::span<const double> in,
                                  std::span<double> out) const {
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  std::vector<double> t1(in.size()), t2(in.size());
  mode_z(qz_, /*transpose=*/false, in, t1, nx * ny, nz);
  mode_y(qy_, /*transpose=*/false, t1, t2, nx, ny, nz);
  mode_x(qx_, /*transpose=*/false, t2, out, nx, ny * nz);
}

void KroneckerLaplacian::apply_spectral(const std::function<double(double)>& f,
                                        std::span<const double> in,
                                        std::span<double> out) const {
  RSRPA_REQUIRE(in.size() == grid_.size() && out.size() == grid_.size());
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  std::vector<double> hat(grid_.size());
  forward(in, hat);
  for (std::size_t iz = 0; iz < nz; ++iz)
    for (std::size_t iy = 0; iy < ny; ++iy)
      for (std::size_t ix = 0; ix < nx; ++ix)
        hat[grid_.index(ix, iy, iz)] *= f(dx_[ix] + dy_[iy] + dz_[iz]);
  backward(hat, out);
}

void KroneckerLaplacian::apply_nu(std::span<const double> in,
                                  std::span<double> out) const {
  const double tol = zero_tol_;
  apply_spectral(
      [tol](double lam) { return -lam > tol ? 4.0 * M_PI / (-lam) : 0.0; }, in,
      out);
}

void KroneckerLaplacian::apply_nu_sqrt(std::span<const double> in,
                                       std::span<double> out) const {
  const double tol = zero_tol_;
  apply_spectral(
      [tol](double lam) {
        return -lam > tol ? std::sqrt(4.0 * M_PI / (-lam)) : 0.0;
      },
      in, out);
}

void KroneckerLaplacian::apply_nu_inv_sqrt(std::span<const double> in,
                                           std::span<double> out) const {
  const double tol = zero_tol_;
  apply_spectral(
      [tol](double lam) {
        return -lam > tol ? std::sqrt(-lam / (4.0 * M_PI)) : 0.0;
      },
      in, out);
}

void KroneckerLaplacian::apply_laplacian(std::span<const double> in,
                                         std::span<double> out) const {
  apply_spectral([](double lam) { return lam; }, in, out);
}

void KroneckerLaplacian::apply_nu_sqrt_block(la::Matrix<double>& v) const {
  std::vector<double> tmp(v.rows());
  for (std::size_t j = 0; j < v.cols(); ++j) {
    apply_nu_sqrt(v.col(j), tmp);
    std::copy(tmp.begin(), tmp.end(), v.col(j).begin());
  }
}

void KroneckerLaplacian::apply_nu_block(la::Matrix<double>& v) const {
  std::vector<double> tmp(v.rows());
  for (std::size_t j = 0; j < v.cols(); ++j) {
    apply_nu(v.col(j), tmp);
    std::copy(tmp.begin(), tmp.end(), v.col(j).begin());
  }
}

void KroneckerLaplacian::apply_nu_inv_sqrt_block(la::Matrix<double>& v) const {
  std::vector<double> tmp(v.rows());
  for (std::size_t j = 0; j < v.cols(); ++j) {
    apply_nu_inv_sqrt(v.col(j), tmp);
    std::copy(tmp.begin(), tmp.end(), v.col(j).begin());
  }
}

}  // namespace rsrpa::poisson
