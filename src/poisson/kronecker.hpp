// Kronecker-product spectral decomposition of the FD Laplacian.
//
// On a periodic separable grid the discrete Laplacian factors as
//
//   L = Lx (x) I (x) I + I (x) Ly (x) I + I (x) I (x) Lz
//
// with small dense symmetric 1D operators per axis. Diagonalizing each
// 1D operator (Lx = Qx Dx Qx^T etc.) diagonalizes L, so any spectral
// function f(L) is applied with three mode transforms, a pointwise scale,
// and three transforms back (refs [35], [36] of the paper). This is how
// the library applies the Coulomb operator nu = -4*pi*L^{-1} and its
// square root nu^{1/2} — the similarity transform of paper SS III-A —
// without parallel communication.
//
// The zero eigenvalue of the periodic Laplacian (the constant mode, G = 0
// in reciprocal-space language) is handled as a pseudo-inverse: f maps it
// to 0. This is the standard Gamma-point regularization of the Coulomb
// singularity and is consistent because chi0 annihilates constants.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "grid/grid.hpp"
#include "la/matrix.hpp"

namespace rsrpa::poisson {

class KroneckerLaplacian {
 public:
  KroneckerLaplacian(const grid::Grid3D& g, int radius);

  [[nodiscard]] const grid::Grid3D& grid() const { return grid_; }

  /// out = f(L) in, where f is evaluated on each eigenvalue of L.
  void apply_spectral(const std::function<double(double)>& f,
                      std::span<const double> in, std::span<double> out) const;

  /// out = nu in with nu = 4*pi*(-L)^{-1} (zero mode -> 0).
  void apply_nu(std::span<const double> in, std::span<double> out) const;
  /// out = nu^{1/2} in.
  void apply_nu_sqrt(std::span<const double> in, std::span<double> out) const;
  /// out = nu^{-1/2} in = sqrt(-L/(4*pi)) in (zero mode -> 0 naturally).
  void apply_nu_inv_sqrt(std::span<const double> in,
                         std::span<double> out) const;
  /// out = L in, evaluated spectrally (testing / cross-checks).
  void apply_laplacian(std::span<const double> in, std::span<double> out) const;

  /// In-place column-wise block applications (the shapes used by the RPA
  /// operator: V <- nu^{1/2} V on an n_d x n_eig block).
  void apply_nu_sqrt_block(la::Matrix<double>& v) const;
  void apply_nu_block(la::Matrix<double>& v) const;
  void apply_nu_inv_sqrt_block(la::Matrix<double>& v) const;

  /// Solve the Poisson equation -L phi = 4*pi*rho (phi has zero mean).
  void solve_poisson(std::span<const double> rho, std::span<double> phi) const {
    apply_nu(rho, phi);
  }

  /// Extremes of the spectrum of -L (>= 0). Used for filter bounds.
  [[nodiscard]] double neg_laplacian_max() const { return neg_max_; }
  /// Smallest NONZERO eigenvalue of -L.
  [[nodiscard]] double neg_laplacian_min_nonzero() const { return neg_min_nz_; }

 private:
  void forward(std::span<const double> in, std::span<double> out) const;
  void backward(std::span<const double> in, std::span<double> out) const;

  grid::Grid3D grid_;
  la::Matrix<double> qx_, qy_, qz_;
  std::vector<double> dx_, dy_, dz_;
  double neg_max_ = 0.0, neg_min_nz_ = 0.0;
  double zero_tol_ = 0.0;
};

}  // namespace rsrpa::poisson
