#include "poisson/cg_poisson.hpp"

#include <cmath>
#include <vector>

#include "la/blas.hpp"

namespace rsrpa::poisson {

namespace {
void project_out_mean(std::span<double> x) {
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}
}  // namespace

PoissonCgReport solve_poisson_cg(const grid::StencilLaplacian& lap,
                                 std::span<const double> rho,
                                 std::span<double> phi, double tol,
                                 int max_iter) {
  const std::size_t n = rho.size();
  RSRPA_REQUIRE(phi.size() == n && n == lap.grid().size());

  std::vector<double> b(rho.begin(), rho.end());
  for (double& v : b) v *= 4.0 * M_PI;
  project_out_mean(b);

  std::fill(phi.begin(), phi.end(), 0.0);
  std::vector<double> r = b;  // residual for x = 0
  std::vector<double> p = r;
  std::vector<double> ap(n);

  const double bnorm = la::nrm2(std::span<const double>(b));
  PoissonCgReport rep;
  if (bnorm == 0.0) {
    rep.converged = true;
    return rep;
  }

  double rho_old = la::dot(r, r);
  for (int it = 0; it < max_iter; ++it) {
    // ap = -L p (negated stencil apply keeps the operator SPD on the
    // mean-free subspace).
    lap.apply<double>(p, ap);
    for (double& v : ap) v = -v;
    const double alpha = rho_old / la::dot(p, ap);
    la::axpy(alpha, p, phi);
    la::axpy(-alpha, ap, r);
    const double rnorm = la::nrm2(std::span<const double>(r));
    rep.iterations = it + 1;
    rep.relative_residual = rnorm / bnorm;
    if (rep.relative_residual <= tol) {
      rep.converged = true;
      break;
    }
    const double rho_new = la::dot(r, r);
    const double beta = rho_new / rho_old;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rho_old = rho_new;
  }
  project_out_mean(phi);
  return rep;
}

}  // namespace rsrpa::poisson
