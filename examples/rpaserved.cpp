// rpaserved — the persistent multi-tenant RPA job daemon.
//
// Watches <root>/inbox for .rpa configs (the same key-value format
// rpacalc reads, plus PRIORITY / THREADS / FUSED_APPLY / TILE_Y / TILE_Z;
// see docs/REPRODUCING.md, "Running the job service") and runs them on
// the shared thread pool under per-job quotas. Higher-priority arrivals
// preempt running jobs at quadrature-point boundaries via the run
// checkpoint; every job's spool directory carries its status.json,
// checkpoint and report.json.
//
//   ./examples/rpaserved --root /tmp/rpa [--slots 2] [--quota 0]
//                        [--poll-ms 25] [--drain]
//
//   --slots    max concurrently running jobs              (default 2)
//   --quota    default per-job task quota; 0 = uncapped   (default 0)
//   --poll-ms  inbox/cancel poll period in milliseconds   (default 25)
//   --drain    exit once the queue is empty instead of serving forever
//
// SIGINT/SIGTERM shut the daemon down cleanly: running jobs are
// preempted at their next boundary and left `preempted` in the spool, so
// restarting rpaserved on the same root resumes them from their
// checkpoints. To cancel a job, `touch <root>/jobs/<id>/cancel`.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "svc/service.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(stderr,
               "usage: rpaserved --root <dir> [--slots N] [--quota N] "
               "[--poll-ms M] [--drain]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsrpa;

  svc::ServiceOptions opts;
  bool drain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc)
      opts.root = argv[++i];
    else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc)
      opts.slots = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--quota") == 0 && i + 1 < argc)
      opts.default_quota = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--poll-ms") == 0 && i + 1 < argc)
      opts.poll_ms = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--drain") == 0)
      drain = true;
    else {
      usage();
      return 2;
    }
  }
  if (opts.root.empty()) {
    usage();
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    svc::JobService service(opts);
    std::printf("rpaserved: serving %s (slots %d, default quota %d)\n",
                opts.root.c_str(), opts.slots, opts.default_quota);
    if (drain) {
      // Process everything already spooled or arriving while we work,
      // then exit. Poll g_stop so a signal still wins over a long queue.
      while (g_stop == 0) {
        service.wait_idle();
        // One extra poll period: wait_idle can win the race against the
        // dispatcher ingesting a file that was already in the inbox.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2 * opts.poll_ms));
        bool empty = true;
        for (const std::string& id : service.job_ids()) {
          const svc::JobState s = service.status(id).state;
          if (s == svc::JobState::kQueued || s == svc::JobState::kRunning ||
              s == svc::JobState::kPreempted)
            empty = false;
        }
        if (empty) break;
      }
      service.shutdown(/*preempt_running=*/false);
    } else {
      while (g_stop == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::printf("rpaserved: signal received, preempting running jobs\n");
      service.shutdown(/*preempt_running=*/true);
    }

    int done = 0, failed = 0;
    for (const std::string& id : service.job_ids()) {
      const svc::JobState s = service.status(id).state;
      if (s == svc::JobState::kDone) ++done;
      if (s == svc::JobState::kFailed) ++failed;
    }
    std::printf("rpaserved: exiting (%d done, %d failed, %d preemptions)\n",
                done, failed, service.preemption_count());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "rpaserved: %s\n", e.what());
    return 2;
  }
}
