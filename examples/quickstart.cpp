// Quickstart: compute the RPA correlation energy of an 8-atom silicon
// cell end to end, printing a per-quadrature-point log in the style of
// the paper artifact's Si8.out.
//
//   ./examples/quickstart [--paper-scale]
//
// Default runs a reduced-mesh preset in well under a minute; --paper-scale
// selects the full Table I parameters (15^3 grid, 768 eigenvalues) which
// takes much longer on one core.
#include <cstdio>
#include <cstring>

#include "rpa/presets.hpp"

int main(int argc, char** argv) {
  using namespace rsrpa;
  const bool paper_scale =
      argc > 1 && std::strcmp(argv[1], "--paper-scale") == 0;

  rpa::SystemPreset preset = rpa::make_si_preset(1, paper_scale);
  std::printf("Building %s: n_d = %zu, n_s = %zu, n_eig = %zu\n",
              preset.name.c_str(), preset.n_grid(), preset.n_occ(),
              preset.n_eig());

  rpa::BuiltSystem sys = rpa::build_system(preset);
  std::printf("KS ground state: HOMO = %.4f Ha, LUMO = %.4f Ha, gap = %.4f Ha\n\n",
              sys.ks.homo, sys.ks.lumo, sys.ks.gap());

  rpa::RpaOptions opts = sys.default_rpa_options();
  rpa::RpaResult res = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);

  std::printf("%-3s %-10s %-10s %-6s %-14s %-11s %-9s\n", "k", "omega",
              "weight", "ncheb", "ErpaTerm(Ha)", "eig error", "time(s)");
  for (std::size_t k = 0; k < res.per_omega.size(); ++k) {
    const rpa::OmegaRecord& r = res.per_omega[k];
    std::printf("%-3zu %-10.3f %-10.3f %-6d %-14.5e %-11.3e %-9.2f\n", k + 1,
                r.omega, r.weight, r.filter_iterations, r.e_term, r.error,
                r.seconds);
  }

  std::printf("\nTotal RPA correlation energy: %.5e (Ha), %.5e (Ha/atom)\n",
              res.e_rpa, res.e_rpa_per_atom);
  std::printf("Total walltime: %.3f sec (converged: %s)\n", res.total_seconds,
              res.converged ? "yes" : "NO");

  std::printf("\nKernel breakdown:\n");
  for (const auto& [name, secs] : res.timers.entries())
    std::printf("  %-16s %8.3f s\n", name.c_str(), secs);

  std::printf("\nDynamic block size chunks (Table IV style):\n");
  for (const auto& [size, count] : res.stern.block_size_chunks)
    std::printf("  s = %-3d : %d\n", size, count);
  return res.converged ? 0 : 1;
}
