// rpacalc — the artifact-style command line driver.
//
// Mirrors the paper artifact's `rpacalc -name Si8` interface: reads
// <name>.rpa (the artifact's key-value format) plus optional system keys,
// runs the full pipeline, and writes a <name>.out report.
//
//   ./examples/rpacalc -name Si8            # reads Si8.rpa
//   ./examples/rpacalc -name Si8 --checkpoint Si8.ckpt --resume
//
// Recognized keys (artifact keys first, same semantics):
//   METHOD           sternheimer|direct|isdf|slq backend   (default sternheimer)
//   N_NUCHI_EIGS     total eigenvalues of nu chi0 to converge
//   N_OMEGA          quadrature points (Table II scheme)
//   TOL_EIG          per-omega subspace tolerances (list)
//   TOL_STERN_RES    Sternheimer relative-residual tolerance
//   MAXIT_FILTERING  max filter iterations per omega
//   CHEB_DEGREE_RPA  Chebyshev filter degree
//   FLAG_COCGINITIAL 1 = Galerkin initial guess (Eq. 13)
//   N_CELLS          silicon cells along z            (default 1)
//   GRID_PER_CELL    FD points per cell edge          (default 11)
//   FD_RADIUS        stencil radius                   (default 4)
//   PERTURBATION     atom jitter / lattice constant   (default 0.01)
//   SEED             crystal RNG seed                 (default 7)
//
// Failure-semantics keys (docs/REPRODUCING.md, "Failure semantics"):
//   RESILIENCE         1 = breakdown-recovery ladder on (default 1)
//   MAX_RESTARTS       rung-1 restart budget per block (default 1)
//   STAGNATION_WINDOW  iterations without improvement before breakdown
//                      (default 0 = off)
//   STAGNATION_FACTOR  required improvement per window (default 0.99)
//   FAULT_MODE         none|nan|perturb|zero            (default none)
//   FAULT_AT_APPLY     apply index of the first fault   (default 1)
//   FAULT_PERIOD       refire period; 0 = fire once     (default 0)
//   FAULT_MAX          total fault budget per orbital   (default 1)
//   FAULT_MAGNITUDE    perturbation scale               (default 1e-2)
//   FAULT_ORBITAL      occupied orbital to hit; -1 = all
//   FAULT_OMEGA        quadrature point to hit; -1 = all
//   FAULT_SEED         RNG base for perturbed matvecs
//
// Backend keys (docs/REPRODUCING.md, "Choosing a backend"):
//   DIRECT_FULL_TRACE  1 = full-spectrum trace (default); 0 truncates the
//                      direct trace to N_NUCHI_EIGS per omega
//   ISDF_NIP / ISDF_C  interpolation-point count, absolute or as c * n_occ
//   ISDF_OVERSAMPLE    extra sketch columns per side        (default 4)
//   ISDF_RIDGE         initial Gram-fit ridge               (default 0)
//   ISDF_SEED          sketch RNG seed
//   ISDF_FULL_TRACE    1 = whole compressed spectrum; default truncates
//                      like the Sternheimer driver
//   SLQ_PROBES / SLQ_LANCZOS_STEPS / SLQ_SEED  stochastic trace knobs
//
// Checkpoint/restart keys (docs/REPRODUCING.md, "Checkpoint and resume"):
//   CHECKPOINT  path of the run checkpoint, written atomically after every
//               quadrature point (default: off)
//   RESUME      1 = pick the run up from CHECKPOINT when the file exists
//               (missing file starts fresh; mismatched fingerprint refuses)
// The --checkpoint <path> and --resume flags override these keys.
// Checkpointing is Sternheimer-only; with another METHOD the keys are
// accepted but ignored (a warning is printed) and an interrupted run
// restarts from scratch.
//
// The key -> options mapping lives in svc::parse_job and the METHOD
// dispatch in svc::run_driver — both shared with the rpaserved job
// daemon, so a config means the same thing standalone or submitted to a
// server. Besides <name>.out, every run writes the backend's structured
// run report to <name>.report.json (schema: docs/REPRODUCING.md).
//
// SIGINT/SIGTERM request cooperative cancellation: the run stops at the
// next quadrature-point boundary (where the previous point's checkpoint,
// when enabled, is already durable) and rpacalc exits with status 3 —
// distinct from success (0), non-convergence (1) and config errors (2) —
// so an interrupted run is always resumable with --resume.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "obs/event_log.hpp"
#include "obs/run_report.hpp"
#include "svc/driver.hpp"
#include "svc/job.hpp"

namespace {

rsrpa::rpa::RunControl g_control;
void on_signal(int) { g_control.request_cancel(); }  // one atomic store

void usage() {
  std::fprintf(stderr,
               "usage: rpacalc -name <system> [--checkpoint <path>] "
               "[--resume]\n"
               "       (reads <system>.rpa, writes <system>.out)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsrpa;

  std::string name;
  std::string checkpoint_path;
  bool resume = false;
  bool resume_flag_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-name") == 0 && i + 1 < argc)
      name = argv[++i];
    else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc)
      checkpoint_path = argv[++i];
    else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      resume_flag_set = true;
    }
  }
  if (name.empty()) {
    usage();
    return 2;
  }

  Config cfg;
  svc::JobSpec spec;
  try {
    cfg = Config::parse_file(name + ".rpa");
    spec = svc::parse_job(cfg);
  } catch (const Error& e) {
    std::fprintf(stderr, "rpacalc: %s\n", e.what());
    return 2;
  }

  const rpa::SystemPreset& preset = spec.preset;
  std::printf("rpacalc: building %s (n_d = %zu, n_s = %zu)\n",
              preset.name.c_str(), preset.n_grid(), preset.n_occ());
  rpa::BuiltSystem sys = rpa::build_system(preset);

  rpa::RpaOptions opts = spec.options;

  // Crash-safe checkpoint/restart: flags override the .rpa keys. The
  // lifecycle events land in a process-local sink — they describe this
  // process's I/O, not the physics, and stay out of the result log.
  obs::EventLog ck_events;
  if (checkpoint_path.empty()) checkpoint_path = spec.checkpoint;
  if (!resume_flag_set) resume = spec.resume;
  if (!checkpoint_path.empty() && spec.method != svc::Method::kSternheimer) {
    // Only the Sternheimer driver has resumable per-point state; the
    // other backends recompute from scratch, so a checkpoint would be
    // dead weight. Accept the config but say so.
    std::fprintf(stderr,
                 "rpacalc: warning: METHOD %s does not checkpoint; "
                 "ignoring %s\n",
                 svc::method_name(spec.method), checkpoint_path.c_str());
    checkpoint_path.clear();
  }
  if (!checkpoint_path.empty()) {
    opts.checkpoint.path = checkpoint_path;
    opts.checkpoint.resume = resume;
    opts.checkpoint.events = &ck_events;
    std::printf("rpacalc: checkpointing to %s after every quadrature point"
                "%s\n",
                checkpoint_path.c_str(),
                resume ? " (resuming if present)" : "");
  }

  // Cooperative cancellation: Ctrl-C stops the run at the next
  // quadrature-point boundary instead of killing it mid-solve.
  opts.control = &g_control;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  svc::DriverRun run;
  try {
    run = svc::run_driver(spec, sys, opts, &g_control);
  } catch (const rpa::RunCancelled&) {
    if (!checkpoint_path.empty()) {
      std::size_t written = ck_events.count(obs::events::kCheckpointWritten);
      std::fprintf(stderr,
                   "rpacalc: interrupted at a quadrature-point boundary; "
                   "%zu checkpoint(s) at %s — rerun with --resume\n",
                   written, checkpoint_path.c_str());
    } else {
      std::fprintf(stderr,
                   "rpacalc: interrupted at a quadrature-point boundary "
                   "(no CHECKPOINT configured, progress discarded)\n");
    }
    return 3;
  }

  for (const obs::Event& e : ck_events.events())
    if (e.kind == obs::events::kRunResumed)
      std::printf("rpacalc: %s\n", e.detail.c_str());
  if (!checkpoint_path.empty())
    std::printf("rpacalc: wrote %zu checkpoint(s)\n",
                ck_events.count(obs::events::kCheckpointWritten));

  std::ostringstream out;
  out << "***************************************************************\n"
      << "                    rsrpa RPA calculation\n"
      << "***************************************************************\n";
  for (const std::string& key : cfg.keys())
    out << key << ": " << cfg.get_string(key) << "\n";
  out << "\n";
  char line[256];
  if (run.has_rpa) {
    // The original artifact-style per-omega rows, byte-for-byte — the
    // quickstart reference output depends on this format.
    for (std::size_t k = 0; k < run.rpa.per_omega.size(); ++k) {
      const rpa::OmegaRecord& r = run.rpa.per_omega[k];
      std::snprintf(line, sizeof line,
                    "omega %zu (value %.3f, weight %.3f)\n"
                    "ncheb %d | ErpaTerm %.5E Ha | eig error %.3E | %.2f s\n",
                    k + 1, r.omega, r.weight, r.filter_iterations, r.e_term,
                    r.error, r.seconds);
      out << line;
    }
  } else {
    // The other backends have no filter/residual columns; print the
    // backend-agnostic row (the extras live in <name>.report.json).
    out << "method: " << svc::method_name(run.method) << "\n";
    for (std::size_t k = 0; k < run.per_omega.size(); ++k) {
      const svc::DriverOmegaRow& r = run.per_omega[k];
      std::snprintf(line, sizeof line,
                    "omega %zu (value %.3f, weight %.3f)\n"
                    "ErpaTerm %.5E Ha | %.2f s\n",
                    k + 1, r.omega, r.weight, r.e_term, r.seconds);
      out << line;
    }
  }
  std::snprintf(line, sizeof line,
                "\nTotal RPA correlation energy: %.5E (Ha), %.5E (Ha/atom)\n"
                "Total walltime: %.3f sec\n",
                run.e_rpa, run.e_rpa_per_atom, run.total_seconds);
  out << line;
  if (run.has_rpa && run.degraded) {
    long quarantined = 0;
    for (const rpa::OmegaRecord& r : run.rpa.per_omega)
      quarantined += r.quarantined_columns;
    std::snprintf(line, sizeof line,
                  "WARNING: degraded run — %ld Sternheimer column(s) "
                  "quarantined (see the quad_point_degraded events)\n",
                  quarantined);
    out << line;
  }

  std::ofstream f(name + ".out");
  f << out.str();
  std::fputs(out.str().c_str(), stdout);
  std::printf("rpacalc: wrote %s.out\n", name.c_str());

  // The machine-readable counterpart: the backend's full run report under
  // its method-name key, same layout the job service persists.
  try {
    obs::RunReport report(name);
    report.set("method", obs::Json(svc::method_name(run.method)));
    report.set(svc::method_name(run.method), run.report);
    report.write(name + ".report.json");
    std::printf("rpacalc: wrote %s.report.json\n", name.c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "rpacalc: failed to write %s.report.json: %s\n",
                 name.c_str(), e.what());
  }
  return run.converged ? 0 : 1;
}
