// rpacalc — the artifact-style command line driver.
//
// Mirrors the paper artifact's `rpacalc -name Si8` interface: reads
// <name>.rpa (the artifact's key-value format) plus optional system keys,
// runs the full pipeline, and writes a <name>.out report.
//
//   ./examples/rpacalc -name Si8            # reads Si8.rpa
//   ./examples/rpacalc -name Si8 --checkpoint Si8.ckpt --resume
//
// Recognized keys (artifact keys first, same semantics):
//   N_NUCHI_EIGS     total eigenvalues of nu chi0 to converge
//   N_OMEGA          quadrature points (Table II scheme)
//   TOL_EIG          per-omega subspace tolerances (list)
//   TOL_STERN_RES    Sternheimer relative-residual tolerance
//   MAXIT_FILTERING  max filter iterations per omega
//   CHEB_DEGREE_RPA  Chebyshev filter degree
//   FLAG_COCGINITIAL 1 = Galerkin initial guess (Eq. 13)
//   N_CELLS          silicon cells along z            (default 1)
//   GRID_PER_CELL    FD points per cell edge          (default 11)
//   FD_RADIUS        stencil radius                   (default 4)
//   PERTURBATION     atom jitter / lattice constant   (default 0.01)
//   SEED             crystal RNG seed                 (default 7)
//
// Failure-semantics keys (docs/REPRODUCING.md, "Failure semantics"):
//   RESILIENCE         1 = breakdown-recovery ladder on (default 1)
//   MAX_RESTARTS       rung-1 restart budget per block (default 1)
//   STAGNATION_WINDOW  iterations without improvement before breakdown
//                      (default 0 = off)
//   STAGNATION_FACTOR  required improvement per window (default 0.99)
//   FAULT_MODE         none|nan|perturb|zero            (default none)
//   FAULT_AT_APPLY     apply index of the first fault   (default 1)
//   FAULT_PERIOD       refire period; 0 = fire once     (default 0)
//   FAULT_MAX          total fault budget per orbital   (default 1)
//   FAULT_MAGNITUDE    perturbation scale               (default 1e-2)
//   FAULT_ORBITAL      occupied orbital to hit; -1 = all
//   FAULT_OMEGA        quadrature point to hit; -1 = all
//   FAULT_SEED         RNG base for perturbed matvecs
//
// Checkpoint/restart keys (docs/REPRODUCING.md, "Checkpoint and resume"):
//   CHECKPOINT  path of the run checkpoint, written atomically after every
//               quadrature point (default: off)
//   RESUME      1 = pick the run up from CHECKPOINT when the file exists
//               (missing file starts fresh; mismatched fingerprint refuses)
// The --checkpoint <path> and --resume flags override these keys.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "obs/event_log.hpp"
#include "rpa/presets.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: rpacalc -name <system> [--checkpoint <path>] "
               "[--resume]\n"
               "       (reads <system>.rpa, writes <system>.out)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsrpa;

  std::string name;
  std::string checkpoint_path;
  bool resume = false;
  bool resume_flag_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-name") == 0 && i + 1 < argc)
      name = argv[++i];
    else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc)
      checkpoint_path = argv[++i];
    else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      resume_flag_set = true;
    }
  }
  if (name.empty()) {
    usage();
    return 2;
  }

  Config cfg;
  try {
    cfg = Config::parse_file(name + ".rpa");
  } catch (const Error& e) {
    std::fprintf(stderr, "rpacalc: %s\n", e.what());
    return 2;
  }

  // Validate the fault mode before paying for the system build: a typo in
  // a chaos-drill config should fail in milliseconds.
  solver::FaultMode fault_mode = solver::FaultMode::kNone;
  try {
    fault_mode = solver::fault_mode_from_string(
        cfg.has("FAULT_MODE") ? cfg.get_string("FAULT_MODE") : "none");
  } catch (const Error& e) {
    std::fprintf(stderr, "rpacalc: %s\n", e.what());
    return 2;
  }

  rpa::SystemPreset preset;
  preset.ncells = static_cast<std::size_t>(cfg.get_int_or("N_CELLS", 1));
  preset.name = "Si" + std::to_string(8 * preset.ncells);
  preset.grid_per_cell =
      static_cast<std::size_t>(cfg.get_int_or("GRID_PER_CELL", 11));
  preset.fd_radius = cfg.get_int_or("FD_RADIUS", 4);
  preset.perturbation = cfg.get_double_or("PERTURBATION", 0.01);
  preset.seed = static_cast<std::uint64_t>(cfg.get_int_or("SEED", 7));

  std::printf("rpacalc: building %s (n_d = %zu, n_s = %zu)\n",
              preset.name.c_str(), preset.n_grid(), preset.n_occ());
  rpa::BuiltSystem sys = rpa::build_system(preset);

  rpa::RpaOptions opts = sys.default_rpa_options();
  if (cfg.has("N_NUCHI_EIGS"))
    opts.n_eig = static_cast<std::size_t>(cfg.get_int("N_NUCHI_EIGS"));
  opts.ell = cfg.get_int_or("N_OMEGA", 8);
  if (cfg.has("TOL_EIG")) opts.tol_eig = cfg.get_doubles("TOL_EIG");
  opts.stern.tol = cfg.get_double_or("TOL_STERN_RES", 1e-2);
  opts.max_filter_iter = cfg.get_int_or("MAXIT_FILTERING", 10);
  opts.cheb_degree = cfg.get_int_or("CHEB_DEGREE_RPA", 2);
  opts.stern.galerkin_guess = cfg.get_int_or("FLAG_COCGINITIAL", 1) != 0;

  // Failure semantics: recovery ladder, stagnation detection, and the
  // deterministic fault-injection harness (chaos drills / tests).
  opts.stern.resilience.enabled = cfg.get_int_or("RESILIENCE", 1) != 0;
  opts.stern.resilience.max_restarts = cfg.get_int_or("MAX_RESTARTS", 1);
  opts.stern.stagnation_window = cfg.get_int_or("STAGNATION_WINDOW", 0);
  opts.stern.stagnation_factor = cfg.get_double_or("STAGNATION_FACTOR", 0.99);
  opts.stern.fault.mode = fault_mode;
  opts.stern.fault.at_apply = cfg.get_int_or("FAULT_AT_APPLY", 1);
  opts.stern.fault.period = cfg.get_int_or("FAULT_PERIOD", 0);
  opts.stern.fault.max_faults = cfg.get_int_or("FAULT_MAX", 1);
  opts.stern.fault.magnitude = cfg.get_double_or("FAULT_MAGNITUDE", 1e-2);
  opts.stern.fault.orbital = cfg.get_int_or("FAULT_ORBITAL", -1);
  opts.fault_omega = cfg.get_int_or("FAULT_OMEGA", -1);
  if (cfg.has("FAULT_SEED"))
    opts.stern.fault.seed = static_cast<std::uint64_t>(cfg.get_int("FAULT_SEED"));

  // Crash-safe checkpoint/restart: flags override the .rpa keys. The
  // lifecycle events land in a process-local sink — they describe this
  // process's I/O, not the physics, and stay out of the result log.
  obs::EventLog ck_events;
  if (checkpoint_path.empty() && cfg.has("CHECKPOINT"))
    checkpoint_path = cfg.get_string("CHECKPOINT");
  if (!resume_flag_set) resume = cfg.get_int_or("RESUME", 0) != 0;
  if (!checkpoint_path.empty()) {
    opts.checkpoint.path = checkpoint_path;
    opts.checkpoint.resume = resume;
    opts.checkpoint.events = &ck_events;
    std::printf("rpacalc: checkpointing to %s after every quadrature point"
                "%s\n",
                checkpoint_path.c_str(),
                resume ? " (resuming if present)" : "");
  }

  rpa::RpaResult res = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);

  for (const obs::Event& e : ck_events.events())
    if (e.kind == obs::events::kRunResumed)
      std::printf("rpacalc: %s\n", e.detail.c_str());
  if (!checkpoint_path.empty())
    std::printf("rpacalc: wrote %zu checkpoint(s)\n",
                ck_events.count(obs::events::kCheckpointWritten));

  std::ostringstream out;
  out << "***************************************************************\n"
      << "                    rsrpa RPA calculation\n"
      << "***************************************************************\n";
  for (const std::string& key : cfg.keys())
    out << key << ": " << cfg.get_string(key) << "\n";
  out << "\n";
  char line[256];
  for (std::size_t k = 0; k < res.per_omega.size(); ++k) {
    const rpa::OmegaRecord& r = res.per_omega[k];
    std::snprintf(line, sizeof line,
                  "omega %zu (value %.3f, weight %.3f)\n"
                  "ncheb %d | ErpaTerm %.5E Ha | eig error %.3E | %.2f s\n",
                  k + 1, r.omega, r.weight, r.filter_iterations, r.e_term,
                  r.error, r.seconds);
    out << line;
  }
  std::snprintf(line, sizeof line,
                "\nTotal RPA correlation energy: %.5E (Ha), %.5E (Ha/atom)\n"
                "Total walltime: %.3f sec\n",
                res.e_rpa, res.e_rpa_per_atom, res.total_seconds);
  out << line;
  if (res.degraded) {
    long quarantined = 0;
    for (const rpa::OmegaRecord& r : res.per_omega)
      quarantined += r.quarantined_columns;
    std::snprintf(line, sizeof line,
                  "WARNING: degraded run — %ld Sternheimer column(s) "
                  "quarantined (see the quad_point_degraded events)\n",
                  quarantined);
    out << line;
  }

  std::ofstream f(name + ".out");
  f << out.str();
  std::fputs(out.str().c_str(), stdout);
  std::printf("rpacalc: wrote %s.out\n", name.c_str());
  return res.converged ? 0 : 1;
}
