// Spectrum explorer: dump the exact nu chi0(i omega) spectra (the Fig. 1
// data) and the trace integrand to CSV for plotting.
//
//   ./examples/spectrum_explorer [out.csv]
//
// Columns: omega, index, eigenvalue, trace_term. One row per (omega,
// eigenvalue index). A second CSV (<out>.integrand.csv) holds the
// quadrature summary: omega, weight, Tr[f], contribution to E_RPA.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "direct/direct_rpa.hpp"
#include "rpa/presets.hpp"

int main(int argc, char** argv) {
  using namespace rsrpa;
  const std::string out_path = argc > 1 ? argv[1] : "spectra.csv";

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  preset.grid_per_cell = 8;
  preset.fd_radius = 3;
  rpa::BuiltSystem sys = rpa::build_system(preset);
  std::printf("System %s: n_d = %zu, n_s = %zu; diagonalizing...\n",
              preset.name.c_str(), preset.n_grid(), preset.n_occ());

  la::EigResult eig = direct::full_diagonalization(*sys.h);
  const auto quad = rpa::rpa_frequency_quadrature(8);

  std::ofstream csv(out_path);
  std::ofstream integrand(out_path + ".integrand.csv");
  csv << "omega,index,eigenvalue,trace_term\n";
  integrand << "omega,weight,trace,erpa_contribution\n";

  double e_total = 0.0;
  for (const rpa::QuadPoint& q : quad) {
    const std::vector<double> spec = direct::nu_chi0_spectrum(
        eig, sys.ks.n_occ(), q.omega, *sys.klap, sys.h->grid().dv());
    double trace = 0.0;
    for (std::size_t i = 0; i < spec.size(); ++i) {
      const double term = rpa::rpa_trace_term(spec[i]);
      trace += term;
      csv << q.omega << ',' << i << ',' << spec[i] << ',' << term << '\n';
    }
    const double contrib = q.weight * trace / (2.0 * M_PI);
    e_total += contrib;
    integrand << q.omega << ',' << q.weight << ',' << trace << ',' << contrib
              << '\n';
    std::printf("  omega %8.3f: mu_min = %9.4f, Tr[f] = %10.5f, "
                "contribution = %10.6f Ha\n",
                q.omega, spec.front(), trace, contrib);
  }
  std::printf("\nE_RPA (direct, full spectrum) = %.6f Ha\n", e_total);
  std::printf("Wrote %s and %s.integrand.csv\n", out_path.c_str(),
              out_path.c_str());
  return 0;
}
