// Vacancy formation energy study — the chemical-accuracy experiment of
// paper SS IV-A: the RPA correlation energy DIFFERENCE between a perturbed
// Si8 crystal and the same crystal with a vacancy (Si7). Absolute
// correlation energies are expensive to converge; relative energies
// between related systems reach chemical accuracy at loose parameters,
// which is the paper's point.
#include <cstdio>

#include "rpa/presets.hpp"

int main() {
  using namespace rsrpa;

  auto run = [](bool vacancy) {
    rpa::SystemPreset preset = rpa::make_si_preset(1, /*paper_scale=*/false);
    preset.vacancy = vacancy;
    preset.perturbation = 0.01;
    rpa::BuiltSystem sys = rpa::build_system(preset);
    rpa::RpaOptions opts = sys.default_rpa_options();
    rpa::RpaResult res = rpa::compute_rpa_energy(sys.ks, *sys.klap, opts);
    std::printf("%-6s: %2zu atoms, n_s = %2zu, gap = %.4f Ha, E_RPA = %+.6f Ha "
                "(%+.6f Ha/atom), %.1f s\n",
                vacancy ? "Si7(v)" : "Si8", preset.n_atoms(), preset.n_occ(),
                sys.ks.gap(), res.e_rpa, res.e_rpa_per_atom, res.total_seconds);
    return res;
  };

  std::printf("RPA correlation energy: pristine vs vacancy cell\n\n");
  rpa::RpaResult pristine = run(false);
  rpa::RpaResult vacancy = run(true);

  const double de_per_atom =
      pristine.e_rpa / 8.0 - vacancy.e_rpa / 7.0;
  std::printf("\nDelta E_RPA = %.5e Ha/atom\n", de_per_atom);
  std::printf("(paper SS IV-A reports 1.28e-3 Ha/atom for real silicon at "
              "full scale;\n the model reproduces the magnitude class, not "
              "the exact value)\n");
  return (pristine.converged && vacancy.converged) ? 0 : 1;
}
