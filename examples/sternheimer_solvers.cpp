// Solver playground: the complex-symmetric Krylov solvers on real
// Sternheimer systems of varying difficulty.
//
// Builds the Si8 model, then solves (H - lambda_j I + i omega_k I) Y = B
// for an easy index pair (j = 1, k = 1: definite, far from the origin)
// and the hardest pair (j = n_s, k = l: indefinite, eigenvalue ~omega_l
// from the origin), comparing COCG, COCR, GMRES and block COCG at several
// block sizes — the solver story of paper SS III-B.
#include <cstdio>

#include "rpa/presets.hpp"
#include "rpa/quadrature.hpp"
#include "solver/block_cocg.hpp"
#include "solver/cocr.hpp"
#include "solver/galerkin_guess.hpp"
#include "solver/gmres.hpp"

int main() {
  using namespace rsrpa;
  using la::cplx;

  rpa::SystemPreset preset = rpa::make_si_preset(1, false);
  rpa::BuiltSystem sys = rpa::build_system(preset);
  const auto quad = rpa::rpa_frequency_quadrature(8);
  const std::size_t n = sys.ks.n_grid();

  struct Case {
    const char* label;
    double lambda;
    double omega;
  };
  const Case cases[] = {
      {"easy   (j=1,  k=1)", sys.ks.eigenvalues.front(), quad.front().omega},
      {"hard   (j=ns, k=l)", sys.ks.eigenvalues.back(), quad.back().omega},
  };

  Rng rng(42);
  const double tol = 1e-6;

  for (const Case& c : cases) {
    std::printf("\n=== %s: lambda = %.4f, omega = %.4f ===\n", c.label,
                c.lambda, c.omega);
    solver::BlockOpC op = [&](const la::Matrix<cplx>& in,
                              la::Matrix<cplx>& out) {
      sys.h->apply_shifted_block(in, out, c.lambda, c.omega);
    };

    la::Matrix<double> b_real(n, 8);
    for (std::size_t j = 0; j < 8; ++j) rng.fill_uniform(b_real.col(j));

    // Single right-hand side: COCG vs COCR vs GMRES.
    std::vector<cplx> b1(n), y(n);
    for (std::size_t i = 0; i < n; ++i) b1[i] = {b_real(i, 0), 0.0};

    solver::SolverOptions sopts;
    sopts.tol = tol;
    sopts.max_iter = 20000;

    std::fill(y.begin(), y.end(), cplx{});
    auto rc = solver::cocg(op, b1, y, sopts);
    std::printf("  COCG        : %5d iters, relres %.2e\n", rc.iterations,
                rc.relative_residual);

    std::fill(y.begin(), y.end(), cplx{});
    auto rr = solver::cocr(op, b1, y, sopts);
    std::printf("  COCR        : %5d iters, relres %.2e\n", rr.iterations,
                rr.relative_residual);

    solver::GmresOptions gopts;
    gopts.tol = tol;
    gopts.max_iter = 20000;
    gopts.restart = 50;
    std::fill(y.begin(), y.end(), cplx{});
    auto rg = solver::gmres(op, b1, y, gopts);
    std::printf("  GMRES(50)   : %5d iters, relres %.2e\n", rg.iterations,
                rg.relative_residual);

    // Block COCG across block sizes, from the Galerkin initial guess.
    for (std::size_t s : {1u, 2u, 4u, 8u}) {
      la::Matrix<double> bs = b_real.slice_cols(0, s);
      la::Matrix<cplx> bblock(n, s);
      for (std::size_t j = 0; j < s; ++j)
        for (std::size_t i = 0; i < n; ++i) bblock(i, j) = {bs(i, j), 0.0};
      la::Matrix<cplx> yblock = solver::galerkin_initial_guess(
          sys.ks.orbitals, sys.ks.eigenvalues, c.lambda, c.omega, bs);
      auto rb = solver::block_cocg(op, bblock, yblock, sopts);
      std::printf("  blkCOCG s=%zu : %5d iters, relres %.2e "
                  "(Galerkin guess, %ld column matvecs)\n",
                  s, rb.iterations, rb.relative_residual, rb.matvec_columns);
    }
  }
  std::printf("\nNote the iteration gap between the easy and hard index "
              "pairs,\nand the iteration reduction from larger blocks on "
              "the hard pair.\n");
  return 0;
}
