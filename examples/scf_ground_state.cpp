// The KS-DFT substrate on its own: self-consistent ground state of the
// model silicon cell — the "prior KS-DFT calculation" whose occupied
// orbitals, energies and density the RPA stage consumes.
#include <cstdio>

#include "dft/density.hpp"
#include "dft/scf.hpp"
#include "dft/xc.hpp"
#include "hamiltonian/hamiltonian.hpp"
#include "poisson/kronecker.hpp"

int main() {
  using namespace rsrpa;

  Rng rng(7);
  ham::Crystal crystal = ham::make_silicon_chain(1, 0.01, rng);
  std::printf("Si8 diamond cell: %zu atoms, %zu bonds, %zu occupied orbitals\n",
              crystal.n_atoms(), crystal.bonds().size(), crystal.n_occupied());

  const grid::Grid3D g = grid::Grid3D::cubic(11, ham::kSiLatticeConstant);
  const int radius = 4;
  ham::Hamiltonian h(g, radius, crystal, ham::ModelParams{});
  poisson::KroneckerLaplacian pois(g, radius);

  std::printf("Grid: %zu^3 = %zu points, mesh %.3f Bohr, FD radius %d\n\n",
              g.nx(), g.size(), g.hx(), radius);

  dft::ScfOptions opts;
  const std::size_t n_occ = crystal.n_occupied();
  Rng scf_rng(13);
  dft::ScfResult res = dft::run_scf(h, pois, n_occ, opts, scf_rng);

  std::printf("SCF %s in %d cycles\n", res.converged ? "converged" : "did NOT converge",
              res.iterations);
  std::printf("Electron count: %.6f (expected %.1f)\n",
              dft::integrate(res.density, g), 2.0 * static_cast<double>(n_occ));
  std::printf("Band energy 2*sum(lambda): %.6f Ha\n", res.band_energy);
  std::printf("LDA XC energy:            %.6f Ha\n",
              dft::lda_exc_energy(res.density, g.dv()));

  std::printf("\nOccupied Kohn-Sham eigenvalues (Ha):\n");
  for (std::size_t j = 0; j < res.gs.eigenvalues.size(); ++j) {
    std::printf("  %8.4f", res.gs.eigenvalues[j]);
    if ((j + 1) % 4 == 0) std::printf("\n");
  }
  return res.converged ? 0 : 1;
}
