#!/usr/bin/env python3
"""Compare a fresh rsrpa.bench/1 report against a checked-in baseline.

Usage:
    bench_compare.py fresh.json baseline.json [--rel-tol 0.5]

The comparison is built for machine-to-machine drift, not bit equality:

  * Structure is append-only: every key present in the baseline must be
    present in the fresh report (extra keys in the fresh report are fine,
    the schema grows but never silently loses fields).
  * Every check recorded in the baseline must exist in the fresh report
    and pass there.
  * Numeric leaves are compared within a relative tolerance, except
    timing-like quantities (seconds, rates, iteration counts, speedups),
    which vary with machine and load and are reported informationally.

Exit status 0 when the fresh report is acceptable, 1 otherwise.
"""

import argparse
import json
import re
import sys

# Keys whose values are wall-clock dependent: reported, never failed on.
# block_size/chunks are included because the dynamic block-size ladder
# adapts to measured throughput, so its histogram varies with load.
TIMING_PAT = re.compile(
    r"seconds|_s$|time|iterations|GFLOP|GB/s|speedup|efficiency|/s$"
    r"|block_size|chunks|crossover",
    re.IGNORECASE)


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


class Comparison:
    def __init__(self, rel_tol):
        self.rel_tol = rel_tol
        self.failures = []
        self.notes = []

    def fail(self, msg):
        self.failures.append(msg)

    def note(self, msg):
        self.notes.append(msg)

    def compare(self, path, base, fresh):
        if isinstance(base, dict):
            if not isinstance(fresh, dict):
                self.fail(f"{path}: expected object, got {type(fresh).__name__}")
                return
            for key, bval in base.items():
                if key not in fresh:
                    if TIMING_PAT.search(f"{path}.{key}"):
                        self.note(f"{path}.{key}: absent from fresh report "
                                  "(timing-like, informational)")
                    else:
                        self.fail(f"{path}.{key}: missing from fresh report "
                                  "(schema is append-only)")
                    continue
                self.compare(f"{path}.{key}", bval, fresh[key])
        elif isinstance(base, list):
            if not isinstance(fresh, list):
                self.fail(f"{path}: expected array, got {type(fresh).__name__}")
                return
            if len(fresh) < len(base):
                self.fail(f"{path}: baseline has {len(base)} entries, "
                          f"fresh has {len(fresh)}")
                return
            for i, bval in enumerate(base):
                self.compare(f"{path}[{i}]", bval, fresh[i])
        elif is_number(base) and is_number(fresh):
            if TIMING_PAT.search(path):
                self.note(f"{path}: baseline {base:.6g}, fresh {fresh:.6g} "
                          "(timing-like, informational)")
                return
            scale = max(abs(base), abs(fresh), 1e-300)
            if abs(base - fresh) > self.rel_tol * scale:
                self.fail(f"{path}: baseline {base:.6g} vs fresh {fresh:.6g} "
                          f"exceeds rel tol {self.rel_tol}")
        elif base != fresh:
            self.fail(f"{path}: baseline {base!r} vs fresh {fresh!r}")


def compare_checks(base, fresh, cmp):
    fresh_checks = {c.get("name"): c.get("pass") for c in fresh.get("checks", [])}
    for check in base.get("checks", []):
        name = check.get("name")
        if name not in fresh_checks:
            cmp.fail(f"check '{name}' missing from fresh report")
        elif not fresh_checks[name]:
            cmp.fail(f"check '{name}' fails in fresh report")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument("--rel-tol", type=float, default=0.5,
                    help="relative tolerance for numeric fields (default 0.5)")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="print informational timing diffs")
    args = ap.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    cmp = Comparison(args.rel_tol)
    for report, label in ((fresh, "fresh"), (base, "baseline")):
        if report.get("schema") != "rsrpa.bench/1":
            cmp.fail(f"{label}: unexpected schema {report.get('schema')!r}")
    if base.get("bench") != fresh.get("bench"):
        cmp.fail(f"bench name mismatch: baseline {base.get('bench')!r} vs "
                 f"fresh {fresh.get('bench')!r}")

    compare_checks(base, fresh, cmp)
    cmp.compare("data", base.get("data", {}), fresh.get("data", {}))

    if args.verbose:
        for note in cmp.notes:
            print(f"  note: {note}")
    for failure in cmp.failures:
        print(f"  FAIL: {failure}")
    name = base.get("bench", "?")
    if cmp.failures:
        print(f"bench_compare: {name}: {len(cmp.failures)} failure(s)")
        return 1
    print(f"bench_compare: {name}: OK "
          f"({len(cmp.notes)} informational timing diffs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
